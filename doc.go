// Package repro is a from-scratch Go reproduction of "Evaluating
// Cluster-Based Network Servers" (Carrera and Bianchini, HPDC 2000).
//
// The repository contains the paper's analytic queuing model
// (internal/queuemodel), the L2S distributed locality-and-load-balancing
// request distribution algorithm (internal/core), the LARD and traditional
// baselines (internal/policy), a trace-driven cluster simulator
// (internal/server and its substrates), synthetic workloads matching the
// paper's Table 2 traces (internal/trace), and an experiment harness that
// regenerates every table and figure (internal/experiments).
//
// The benchmarks in bench_test.go regenerate each published table and
// figure; see DESIGN.md for the experiment index and EXPERIMENTS.md for
// measured-versus-published results.
package repro
