// Command l2sd runs a live L2S cluster over HTTP on loopback ports — the
// native server of the paper's conclusion. It serves a synthetic catalog,
// gossips load and server-set changes between nodes, and hands requests
// off by reverse proxying.
//
// Usage:
//
//	l2sd -nodes 4                       # run until interrupted
//	l2sd -nodes 4 -demo 10s             # drive built-in load, print stats
//	curl $(l2sd prints the URLs)/files/f/17
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/native"
	"repro/internal/trace"
	"repro/internal/zipf"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "cluster size")
		files   = flag.Int("files", 2000, "synthetic catalog size")
		avgKB   = flag.Float64("avgkb", 24, "mean file size in KB")
		cacheMB = flag.Int64("cache", 32, "per-node cache in MB")
		tHigh   = flag.Int("T", 20, "overload threshold (open requests)")
		tLow    = flag.Int("t", 10, "underload threshold")
		delta   = flag.Int("delta", 4, "load-broadcast drift")
		miss    = flag.Duration("misspenalty", 2*time.Millisecond, "artificial disk delay per cache miss")
		demo    = flag.Duration("demo", 0, "run a built-in load generator for this long, then exit")
		workers = flag.Int("workers", 64, "demo load-generator concurrency")
		alpha   = flag.Float64("alpha", 0.9, "demo request popularity exponent")
		replay  = flag.String("replay", "", "replay a paper trace (calgary, clarknet, nasa, rutgers) instead of synthetic demo load")
		scale   = flag.Float64("scale", 0.02, "request-count scale for -replay")
	)
	flag.Parse()

	store := native.SyntheticStore(*files, *avgKB, 1)
	var replayTrace *trace.Trace
	if *replay != "" {
		spec, err := trace.PaperTrace(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "l2sd:", err)
			os.Exit(1)
		}
		replayTrace, err = trace.Generate(spec.Scaled(*scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "l2sd:", err)
			os.Exit(1)
		}
		store = native.StoreFromTrace(replayTrace)
	}

	cluster, err := native.StartCluster(native.ClusterConfig{
		Nodes:      *nodes,
		Store:      store,
		CacheBytes: *cacheMB << 20,
		Opts: native.Options{
			T: *tHigh, LowT: *tLow, BroadcastDelta: *delta,
			ShrinkAfter: 20 * time.Second,
		},
		MissPenalty: *miss,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "l2sd:", err)
		os.Exit(1)
	}
	defer cluster.Shutdown()

	fmt.Printf("l2sd: %d-node L2S cluster serving %d files (~%.0f KB each)\n",
		*nodes, *files, *avgKB)
	for i, u := range cluster.URLs() {
		fmt.Printf("  node %d: %s/files/f/<id>   (stats: %s/statsz)\n", i, u, u)
	}

	if replayTrace != nil {
		fmt.Printf("l2sd: replaying %s (%d requests) with %d workers...\n",
			replayTrace.Name, replayTrace.NumRequests(), *workers)
		res, err := native.Replay(cluster, replayTrace, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "l2sd:", err)
			os.Exit(1)
		}
		fmt.Printf("l2sd: %d completed (%d errors) in %v: %.0f req/s\n",
			res.Completed, res.Errors, res.Wall.Round(time.Millisecond), res.Rate)
		printStats(cluster)
		return
	}

	if *demo > 0 {
		runDemo(cluster, *demo, *workers, *files, *alpha)
		printStats(cluster)
		return
	}

	fmt.Println("l2sd: ^C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	printStats(cluster)
}

// runDemo drives Zipf-popular requests through the cluster round robin.
func runDemo(cluster *native.Cluster, d time.Duration, workers, files int, alpha float64) {
	fmt.Printf("l2sd: driving load for %v with %d workers...\n", d, workers)
	dist := zipf.New(alpha, int64(files))
	stop := time.Now().Add(d)
	var done, errs atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := &http.Client{Timeout: 10 * time.Second}
			for time.Now().Before(stop) {
				id := dist.Sample(rng) - 1
				url := fmt.Sprintf("%s/files/f/%d", cluster.NextURL(), id)
				resp, err := client.Get(url)
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				done.Add(1)
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	fmt.Printf("l2sd: %d requests completed (%d errors), %.0f req/s\n",
		done.Load(), errs.Load(), float64(done.Load())/d.Seconds())
}

func printStats(cluster *native.Cluster) {
	fmt.Println("per-node statistics:")
	for i := 0; i < cluster.Len(); i++ {
		s := cluster.Node(i).Snapshot()
		fmt.Printf("  node %d: served=%-7d proxied-out=%-7d handoffs-in=%-7d hit-rate=%5.1f%% cache=%dKB gossip=%d\n",
			s.ID, s.Served, s.Proxied, s.Received, s.HitRate*100, s.CacheUsed>>10, s.GossipOut)
	}
	t := cluster.Totals()
	fmt.Printf("cluster: served=%d hit-rate=%.1f%% handoffs=%d gossip=%d fallbacks=%d\n",
		t.Served+t.Received, t.HitRate*100, t.Proxied, t.GossipOut, t.Fallbacks)
}
