// Command l2sd runs a live L2S cluster over HTTP on loopback ports — the
// native server of the paper's conclusion. It serves a synthetic catalog,
// gossips load and server-set changes between nodes, hands requests off by
// reverse proxying, and survives node crashes: heartbeat failure detection
// evicts dead nodes from server sets, hand-offs retry with backoff, and a
// restarted node rejoins through heartbeats and anti-entropy.
//
// Usage:
//
//	l2sd -nodes 4                       # run until interrupted
//	l2sd -nodes 4 -demo 10s             # drive built-in load, print stats
//	l2sd -nodes 4 -policy l2s:T=30,delta=8 -demo 10s     # spec-tuned thresholds
//	l2sd -nodes 4 -demo 10s -kill 2@3s -restart 4s   # crash + rejoin drill
//	l2sd -nodes 4 -demo 10s -droprate 0.1 -faultseed 7  # lossy gossip
//	curl $(l2sd prints the URLs)/files/f/17
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/native"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/zipf"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "cluster size")
		files   = flag.Int("files", 2000, "synthetic catalog size")
		avgKB   = flag.Float64("avgkb", 24, "mean file size in KB")
		cacheMB = flag.Int64("cache", 32, "per-node cache in MB")
		tHigh   = flag.Int("T", 20, "overload threshold (open requests)")
		tLow    = flag.Int("t", 10, "underload threshold")
		delta   = flag.Int("delta", 4, "load-broadcast drift")
		polSpec = flag.String("policy", "", "L2S policy spec, e.g. l2s:T=30,t=5,delta=8,shrink=10; keys override -T/-t/-delta")
		miss    = flag.Duration("misspenalty", 2*time.Millisecond, "artificial disk delay per cache miss")
		demo    = flag.Duration("demo", 0, "run a built-in load generator for this long, then exit")
		workers = flag.Int("workers", 64, "demo load-generator concurrency")
		alpha   = flag.Float64("alpha", 0.9, "demo request popularity exponent")
		replay  = flag.String("replay", "", "replay a paper trace (calgary, clarknet, nasa, rutgers) instead of synthetic demo load")
		scale   = flag.Float64("scale", 0.02, "request-count scale for -replay")

		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "health heartbeat period")

		kill       = flag.String("kill", "", "crash node n after d, format n@d (e.g. 2@3s)")
		restart    = flag.Duration("restart", 0, "restart the killed node this long after the kill (0 = never)")
		droprate   = flag.Float64("droprate", 0, "fault injection: drop this fraction of control messages")
		faultdelay = flag.Duration("faultdelay", 0, "fault injection: delay control messages up to this duration")
		duprate    = flag.Float64("duprate", 0, "fault injection: duplicate this fraction of control messages")
		faultseed  = flag.Int64("faultseed", 1, "fault injection / jitter RNG seed")
		jsonOut    = flag.Bool("json", false, "print final cluster stats as JSON")
		metrics    = flag.Bool("metrics", false, "dump every node's /metricsz Prometheus exposition with the final stats")
	)
	flag.Parse()

	// The daemon IS the l2s policy, so -policy accepts only the l2s family
	// of the shared spec grammar; its keys layer over the short flags.
	shrinkAfter := 20 * time.Second
	if *polSpec != "" {
		ps, err := policy.ParseSpec(*polSpec)
		if err != nil {
			fatal(err)
		}
		if ps.Name != "l2s" {
			fatal(fmt.Errorf("l2sd runs the l2s policy only, not %q (use clustersim to simulate other policies)", ps.Name))
		}
		base := policy.Options{L2S: core.Options{
			T: *tHigh, LowT: *tLow, BroadcastDelta: *delta,
			ShrinkAfter: shrinkAfter.Seconds(),
		}}
		co := ps.Options(base).L2S.(core.Options)
		if co.Oracle {
			fatal(fmt.Errorf("l2s:oracle is simulator-only: a live cluster has no true-load oracle"))
		}
		if err := co.Validate(); err != nil {
			fatal(err)
		}
		*tHigh, *tLow, *delta = co.T, co.LowT, co.BroadcastDelta
		shrinkAfter = time.Duration(co.ShrinkAfter * float64(time.Second))
	}

	store := native.SyntheticStore(*files, *avgKB, 1)
	var replayTrace *trace.Trace
	if *replay != "" {
		spec, err := trace.PaperTrace(*replay)
		if err != nil {
			fatal(err)
		}
		replayTrace, err = trace.Generate(spec.Scaled(*scale))
		if err != nil {
			fatal(err)
		}
		store = native.StoreFromTrace(replayTrace)
	}

	opts := []native.Option{
		native.WithNodes(*nodes),
		native.WithStore(store),
		native.WithCacheMB(*cacheMB),
		native.WithThresholds(*tHigh, *tLow),
		native.WithBroadcastDelta(*delta),
		native.WithShrinkAfter(shrinkAfter),
		native.WithMissPenalty(*miss),
		native.WithSeed(*faultseed),
		native.WithHealth(native.HealthOptions{
			HeartbeatEvery: *heartbeat,
			SyncEvery:      4 * *heartbeat,
			SuspectAfter:   1,
			DeadAfter:      3,
		}),
	}
	var fi *native.FaultInjector
	if *droprate > 0 || *faultdelay > 0 || *duprate > 0 {
		fi = native.NewFaultInjector(*faultseed)
		if err := fi.SetDropRate(*droprate); err != nil {
			fatal(err)
		}
		if err := fi.SetDelay(*faultdelay, 1); err != nil {
			fatal(err)
		}
		if err := fi.SetDupRate(*duprate); err != nil {
			fatal(err)
		}
		opts = append(opts, native.WithFaults(fi))
	}

	cluster, err := native.Start(opts...)
	if err != nil {
		fatal(err)
	}
	defer cluster.Shutdown()

	fmt.Printf("l2sd: %d-node L2S cluster serving %d files (~%.0f KB each)\n",
		*nodes, *files, *avgKB)
	for i, u := range cluster.URLs() {
		fmt.Printf("  node %d: %s/files/f/<id>   (stats: %s/statsz)\n", i, u, u)
	}
	if fi != nil {
		fmt.Printf("l2sd: fault injection on (drop=%.0f%% delay<=%v dup=%.0f%% seed=%d)\n",
			*droprate*100, *faultdelay, *duprate*100, *faultseed)
	}
	if err := scheduleKill(cluster, *kill, *restart); err != nil {
		fatal(err)
	}

	if replayTrace != nil {
		fmt.Printf("l2sd: replaying %s (%d requests) with %d workers...\n",
			replayTrace.Name, replayTrace.NumRequests(), *workers)
		res, err := native.Replay(cluster, replayTrace, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("l2sd: %d completed (%d errors, %d client retries) in %v: %.0f req/s\n",
			res.Completed, res.Errors, res.Retries, res.Wall.Round(time.Millisecond), res.Rate)
		printStats(cluster, fi, *jsonOut)
		dumpMetrics(cluster, *metrics)
		return
	}

	if *demo > 0 {
		runDemo(cluster, *demo, *workers, *files, *alpha)
		printStats(cluster, fi, *jsonOut)
		dumpMetrics(cluster, *metrics)
		return
	}

	fmt.Println("l2sd: ^C to stop")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	printStats(cluster, fi, *jsonOut)
	dumpMetrics(cluster, *metrics)
}

// dumpMetrics prints each node's Prometheus exposition — the same text
// /metricsz serves over HTTP, read straight from the node's registry so it
// works even after the HTTP listeners have begun shutting down.
func dumpMetrics(cluster *native.Cluster, enabled bool) {
	if !enabled {
		return
	}
	for i := 0; i < cluster.Len(); i++ {
		fmt.Printf("# node %d metrics\n", i)
		if err := cluster.Node(i).WriteMetrics(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "l2sd: metrics:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "l2sd:", err)
	os.Exit(1)
}

// scheduleKill parses -kill n@d and arms the crash (and optional restart)
// timers.
func scheduleKill(cluster *native.Cluster, spec string, restart time.Duration) error {
	if spec == "" {
		return nil
	}
	at := strings.IndexByte(spec, '@')
	if at < 0 {
		return fmt.Errorf("bad -kill %q, want n@duration (e.g. 2@3s)", spec)
	}
	node, err := strconv.Atoi(spec[:at])
	if err != nil || node < 0 || node >= cluster.Len() {
		return fmt.Errorf("bad -kill node %q, cluster has nodes 0..%d", spec[:at], cluster.Len()-1)
	}
	after, err := time.ParseDuration(spec[at+1:])
	if err != nil || after <= 0 {
		return fmt.Errorf("bad -kill delay %q", spec[at+1:])
	}
	time.AfterFunc(after, func() {
		fmt.Printf("l2sd: FAULT killing node %d\n", node)
		if err := cluster.Stop(node); err != nil {
			fmt.Fprintln(os.Stderr, "l2sd: kill:", err)
			return
		}
		if restart > 0 {
			time.AfterFunc(restart, func() {
				fmt.Printf("l2sd: FAULT restarting node %d\n", node)
				if err := cluster.Restart(node); err != nil {
					fmt.Fprintln(os.Stderr, "l2sd: restart:", err)
				}
			})
		}
	})
	return nil
}

// runDemo drives Zipf-popular requests through the cluster round robin.
func runDemo(cluster *native.Cluster, d time.Duration, workers, files int, alpha float64) {
	fmt.Printf("l2sd: driving load for %v with %d workers...\n", d, workers)
	dist := zipf.New(alpha, int64(files))
	stop := time.Now().Add(d)
	var done, errs atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := &http.Client{Timeout: 10 * time.Second}
			urls := cluster.URLs()
			for time.Now().Before(stop) {
				id := dist.Sample(rng) - 1
				path := fmt.Sprintf("/files/f/%d", id)
				// Like a round-robin-DNS client, retry a failed request
				// (transport error, truncated body, non-2xx) against the next
				// address; only a request that fails everywhere is an error.
				ok := false
				for attempt := 0; attempt <= len(urls); attempt++ {
					url := cluster.NextURL()
					if attempt > 0 {
						url = urls[(id+int64(attempt))%int64(len(urls))]
					}
					resp, err := client.Get(url + path)
					if err != nil {
						continue
					}
					_, cerr := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if cerr != nil || resp.StatusCode/100 != 2 {
						continue
					}
					ok = true
					break
				}
				if ok {
					done.Add(1)
				} else {
					errs.Add(1)
				}
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	fmt.Printf("l2sd: %d requests completed, %d errors, %.0f req/s\n",
		done.Load(), errs.Load(), float64(done.Load())/d.Seconds())
}

func printStats(cluster *native.Cluster, fi *native.FaultInjector, asJSON bool) {
	if asJSON {
		out := struct {
			Totals native.Stats       `json:"totals"`
			Nodes  []native.Stats     `json:"nodes"`
			Faults *native.FaultStats `json:"faults,omitempty"`
		}{Totals: cluster.Totals()}
		for i := 0; i < cluster.Len(); i++ {
			out.Nodes = append(out.Nodes, cluster.Node(i).Snapshot())
		}
		if fi != nil {
			fs := fi.Stats()
			out.Faults = &fs
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
		return
	}
	fmt.Println("per-node statistics:")
	for i := 0; i < cluster.Len(); i++ {
		s := cluster.Node(i).Snapshot()
		fmt.Printf("  node %d: served=%-7d proxied-out=%-7d handoffs-in=%-7d hit-rate=%5.1f%% cache=%dKB gossip=%d/%d-fail dead-peers=%d\n",
			s.ID, s.Served, s.Proxied, s.Received, s.HitRate*100, s.CacheUsed>>10, s.GossipOut, s.GossipFail, s.DeadPeers)
	}
	t := cluster.Totals()
	fmt.Printf("cluster: served=%d hit-rate=%.1f%% handoffs=%d retries=%d failovers=%d gossip=%d (%d failed, %d retried)\n",
		t.Served+t.Received, t.HitRate*100, t.Proxied, t.Retries, t.Failovers, t.GossipOut, t.GossipFail, t.GossipRetry)
	if fi != nil {
		fs := fi.Stats()
		fmt.Printf("faults injected: dropped=%d delayed=%d duplicated=%d blocked=%d\n",
			fs.Dropped, fs.Delayed, fs.Duplicated, fs.Blocked)
	}
}
