// Command benchjson runs the simulator's hot-path microbenchmarks
// in-process (via testing.Benchmark) and writes a machine-readable baseline
// so performance PRs can diff against a committed reference.
//
// Usage:
//
//	benchjson [-o BENCH_simcore.json] [-count 3]
//	benchjson -compare BENCH_simcore.json [-tolerance 0.10]
//	benchjson -o BENCH_simcore.json -hotpath BENCH_hotpath.json -label pr5
//
// Each benchmark runs count times and the fastest run is kept, which damps
// scheduler noise in the committed baseline. The output maps benchmark name
// to ns/op, B/op, allocs/op, and — for request-shaped benchmarks —
// wall-clock requests per second.
//
// With -compare, no file is written: the suite runs and every benchmark's
// ns/op is checked against the named baseline. A benchmark more than
// tolerance slower than its baseline entry fails the run (exit status 1),
// which is what `make bench-check` mechanizes. Benchmarks absent from the
// baseline are reported as new and do not fail.
//
// With -hotpath, the measurements are also appended to a trajectory file:
// a JSON array with one labeled entry per recorded point (one per PR, by
// convention), so the per-structure history accumulates next to the
// flat baseline. An entry with the same label is replaced in place.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/perf"
)

// Entry is one benchmark's measurement.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ReqsPerSec  float64 `json:"reqs_per_sec,omitempty"`
	Iterations  int     `json:"iterations"`
}

// TrajectoryPoint is one labeled measurement of the whole suite inside the
// hotpath trajectory file.
type TrajectoryPoint struct {
	Label   string           `json:"label"`
	Benches map[string]Entry `json:"benches"`
}

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output file (- for stdout)")
	count := flag.Int("count", 3, "runs per benchmark (fastest is kept)")
	compare := flag.String("compare", "", "baseline to check against instead of writing (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression in -compare mode")
	hotpath := flag.String("hotpath", "", "trajectory file to append this measurement to")
	label := flag.String("label", "HEAD", "label of the trajectory entry written with -hotpath")
	flag.Parse()

	entries := make(map[string]Entry)
	for _, bench := range perf.Benchmarks() {
		var best Entry
		for i := 0; i < *count; i++ {
			res := testing.Benchmark(bench.Fn)
			e := Entry{
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Iterations:  res.N,
			}
			if i == 0 || e.NsPerOp < best.NsPerOp {
				best = e
			}
		}
		if bench.Requests > 0 && best.NsPerOp > 0 {
			best.ReqsPerSec = float64(bench.Requests) * 1e9 / best.NsPerOp
		}
		entries[bench.Name] = best
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op %10d B/op %8d allocs/op\n",
			bench.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
	}

	if *compare != "" {
		os.Exit(compareBaseline(*compare, entries, *tolerance))
	}

	writeJSON(*out, entries)
	if *hotpath != "" {
		appendTrajectory(*hotpath, *label, entries)
	}
}

// compareBaseline reports every benchmark whose ns/op regressed beyond the
// tolerance and returns the process exit status.
func compareBaseline(path string, current map[string]Entry, tolerance float64) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	baseline := make(map[string]Entry)
	if err := json.Unmarshal(buf, &baseline); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	status := 0
	for _, bench := range perf.Benchmarks() {
		cur, ok := current[bench.Name]
		if !ok {
			continue
		}
		base, ok := baseline[bench.Name]
		if !ok || base.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "bench-check: %-24s new (no baseline entry)\n", bench.Name)
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSION"
			status = 1
		}
		fmt.Fprintf(os.Stderr, "bench-check: %-24s %12.1f vs %12.1f ns/op (%+.1f%%) %s\n",
			bench.Name, cur.NsPerOp, base.NsPerOp, (ratio-1)*100, verdict)
	}
	if status != 0 {
		fmt.Fprintf(os.Stderr, "bench-check: FAILED (tolerance %.0f%%)\n", tolerance*100)
	} else {
		fmt.Fprintf(os.Stderr, "bench-check: all benchmarks within %.0f%% of %s\n", tolerance*100, path)
	}
	return status
}

// appendTrajectory inserts (or replaces, when the label already exists) one
// labeled point in the hotpath trajectory file.
func appendTrajectory(path, label string, entries map[string]Entry) {
	var points []TrajectoryPoint
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &points); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", path, err))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}
	point := TrajectoryPoint{Label: label, Benches: entries}
	replaced := false
	for i := range points {
		if points[i].Label == label {
			points[i] = point
			replaced = true
			break
		}
	}
	if !replaced {
		points = append(points, point)
	}
	writeJSON(path, points)
}

func writeJSON(path string, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if path == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
