// Command benchjson runs the simulator's hot-path microbenchmarks
// in-process (via testing.Benchmark) and writes a machine-readable baseline
// so performance PRs can diff against a committed reference.
//
// Usage:
//
//	benchjson [-o BENCH_simcore.json] [-count 3]
//
// Each benchmark runs count times and the fastest run is kept, which damps
// scheduler noise in the committed baseline. The output maps benchmark name
// to ns/op, B/op, allocs/op, and — for request-shaped benchmarks —
// wall-clock requests per second.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/perf"
)

// Entry is one benchmark's measurement.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ReqsPerSec  float64 `json:"reqs_per_sec,omitempty"`
	Iterations  int     `json:"iterations"`
}

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output file (- for stdout)")
	count := flag.Int("count", 3, "runs per benchmark (fastest is kept)")
	flag.Parse()

	entries := make(map[string]Entry)
	for _, bench := range perf.Benchmarks() {
		var best Entry
		for i := 0; i < *count; i++ {
			res := testing.Benchmark(bench.Fn)
			e := Entry{
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Iterations:  res.N,
			}
			if i == 0 || e.NsPerOp < best.NsPerOp {
				best = e
			}
		}
		if bench.Requests > 0 && best.NsPerOp > 0 {
			best.ReqsPerSec = float64(bench.Requests) * 1e9 / best.NsPerOp
		}
		entries[bench.Name] = best
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op %10d B/op %8d allocs/op\n",
			bench.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
