// Command benchjson runs the simulator's hot-path microbenchmarks
// in-process (via testing.Benchmark) and writes a machine-readable baseline
// so performance PRs can diff against a committed reference.
//
// Usage:
//
//	benchjson [-o BENCH_simcore.json] [-count 3]
//	benchjson -compare BENCH_simcore.json [-tolerance 0.10]
//	benchjson -o BENCH_simcore.json -hotpath BENCH_hotpath.json -label pr5
//
// Each benchmark runs count times and the fastest run is kept, which damps
// scheduler noise in the committed baseline. The output maps benchmark name
// to ns/op, B/op, allocs/op, and — for request-shaped benchmarks —
// wall-clock requests per second.
//
// With -compare, no file is written: the suite runs and every benchmark's
// ns/op is checked against the named baseline. A benchmark more than
// tolerance slower than its baseline entry fails the run (exit status 1),
// which is what `make bench-check` mechanizes. Benchmarks absent from the
// baseline are reported as new and do not fail.
//
// With -hotpath, the measurements are also appended to a trajectory file:
// a JSON array with one labeled entry per recorded point (one per PR, by
// convention), so the per-structure history accumulates next to the
// flat baseline. An entry with the same label is replaced in place.
//
// Scaling trajectory:
//
//	benchjson -scale BENCH_scale.json [-headline]
//	benchjson -scale-compare BENCH_scale.json [-scale-tolerance 0.25]
//
// -scale runs the N x F scaling grid (full L2S cluster runs, not
// microbenchmarks) and writes one entry per point: ns/request,
// peak heap bytes per node, wall seconds, and the deterministic event and
// message counts. The flagship N=1024, F=10^7, 10^8-request point is only
// rerun with -headline (it takes minutes); without it, a prior headline
// entry in the file is carried over unchanged. -scale-compare reruns the
// grid (never the headline) and fails on ns/request or bytes/node
// regressions beyond the scale tolerance — and on ANY change in event,
// message, or gossip counts, which are deterministic and catch complexity
// regressions that wall-clock noise hides. The N1024-F1e7-chash point's
// gossip count is exactly zero by construction, so the gate also pins the
// consistent-hashing family's zero-coordination property.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"repro/internal/perf"
)

// Entry is one benchmark's measurement.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	ReqsPerSec  float64 `json:"reqs_per_sec,omitempty"`
	Iterations  int     `json:"iterations"`
}

// TrajectoryPoint is one labeled measurement of the whole suite inside the
// hotpath trajectory file.
type TrajectoryPoint struct {
	Label   string           `json:"label"`
	Benches map[string]Entry `json:"benches"`
}

func main() {
	out := flag.String("o", "BENCH_simcore.json", "output file (- for stdout)")
	count := flag.Int("count", 3, "runs per benchmark (fastest is kept)")
	compare := flag.String("compare", "", "baseline to check against instead of writing (exit 1 on regression)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional ns/op regression in -compare mode")
	hotpath := flag.String("hotpath", "", "trajectory file to append this measurement to")
	label := flag.String("label", "HEAD", "label of the trajectory entry written with -hotpath")
	scale := flag.String("scale", "", "run the scaling grid and write it to this file instead of the micro suite")
	scaleCompare := flag.String("scale-compare", "", "rerun the scaling grid and check it against this baseline (exit 1 on regression)")
	headline := flag.Bool("headline", false, "with -scale, also rerun the 10^8-request headline point")
	scaleTolerance := flag.Float64("scale-tolerance", 0.25, "allowed fractional regression in -scale-compare mode")
	countsOnly := flag.Bool("counts-only", false, "with -scale-compare, check only the deterministic event/message/gossip counts (skip the noisy ns/request and bytes/node tolerances)")
	flag.Parse()

	if *scale != "" || *scaleCompare != "" {
		os.Exit(runScale(*scale, *scaleCompare, *headline, *scaleTolerance, *countsOnly))
	}

	entries := make(map[string]Entry)
	for _, bench := range perf.Benchmarks() {
		var best Entry
		for i := 0; i < *count; i++ {
			res := testing.Benchmark(bench.Fn)
			e := Entry{
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				Iterations:  res.N,
			}
			if i == 0 || e.NsPerOp < best.NsPerOp {
				best = e
			}
		}
		if bench.Requests > 0 && best.NsPerOp > 0 {
			best.ReqsPerSec = float64(bench.Requests) * 1e9 / best.NsPerOp
		}
		entries[bench.Name] = best
		fmt.Fprintf(os.Stderr, "%-24s %12.1f ns/op %10d B/op %8d allocs/op\n",
			bench.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp)
	}

	if *compare != "" {
		os.Exit(compareBaseline(*compare, entries, *tolerance))
	}

	writeJSON(*out, entries)
	if *hotpath != "" {
		appendTrajectory(*hotpath, *label, entries)
	}
}

// runScale drives the scaling grid: write mode (path != "") measures every
// point and writes the file; compare mode (comparePath != "") measures the
// grid and checks it against the committed baseline. The headline point is
// only ever measured in write mode with -headline; otherwise a prior entry
// is preserved (write) or skipped (compare). countsOnly restricts compare
// mode to the deterministic counters, making it safe as a blocking gate on
// hardware where wall-clock tolerances flake.
func runScale(path, comparePath string, headline bool, tolerance float64, countsOnly bool) int {
	prior := make(map[string]perf.ScaleResult)
	priorPath := path
	if comparePath != "" {
		priorPath = comparePath
	}
	if buf, err := os.ReadFile(priorPath); err == nil {
		if err := json.Unmarshal(buf, &prior); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", priorPath, err))
		}
	} else if comparePath != "" || !os.IsNotExist(err) {
		fatal(err)
	}

	results := make(map[string]perf.ScaleResult)
	status := 0
	for _, p := range perf.ScaleGrid() {
		if p.Headline && (!headline || comparePath != "") {
			if old, ok := prior[p.Name]; ok && comparePath == "" {
				results[p.Name] = old
				fmt.Fprintf(os.Stderr, "bench-scale: %-26s carried over (rerun with -headline)\n", p.Name)
			}
			continue
		}
		if p.Headline {
			// The grid traces are no longer needed and the headline
			// trace alone is ~1 GB.
			perf.DropScaleTraces()
		}
		res, err := perf.RunScalePoint(p)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", p.Name, err))
		}
		results[p.Name] = res
		fmt.Fprintf(os.Stderr, "bench-scale: %-26s %10.0f ns/req %12d B/node %8.2fs wall\n",
			p.Name, res.NsPerRequest, res.BytesPerNode, res.WallSec)
		if comparePath != "" {
			status |= compareScalePoint(p.Name, res, prior, tolerance, countsOnly)
		}
	}
	perf.DropScaleTraces()

	if comparePath != "" {
		switch {
		case status != 0 && countsOnly:
			fmt.Fprintln(os.Stderr, "bench-scale-check: FAILED (count determinism)")
		case status != 0:
			fmt.Fprintf(os.Stderr, "bench-scale-check: FAILED (tolerance %.0f%%)\n", tolerance*100)
		case countsOnly:
			fmt.Fprintf(os.Stderr, "bench-scale-check: all grid-point counts match %s\n", comparePath)
		default:
			fmt.Fprintf(os.Stderr, "bench-scale-check: all grid points within %.0f%% of %s\n", tolerance*100, comparePath)
		}
		return status
	}
	writeJSON(path, results)
	return 0
}

// compareScalePoint checks one measured grid point against the baseline:
// ns/request and bytes/node within tolerance (skipped when countsOnly),
// event, message, and gossip counts exactly equal (they are deterministic
// for a given simulator version).
func compareScalePoint(name string, cur perf.ScaleResult, baseline map[string]perf.ScaleResult, tolerance float64, countsOnly bool) int {
	base, ok := baseline[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "bench-scale-check: %-26s new (no baseline entry)\n", name)
		return 0
	}
	status := 0
	if base.Events != cur.Events || base.Messages != cur.Messages || base.Gossip != cur.Gossip {
		fmt.Fprintf(os.Stderr, "bench-scale-check: %-26s DETERMINISM: events %d->%d messages %d->%d gossip %d->%d (regenerate with make bench-scale if intended)\n",
			name, base.Events, cur.Events, base.Messages, cur.Messages, base.Gossip, cur.Gossip)
		status = 1
	}
	if countsOnly {
		return status
	}
	if base.NsPerRequest > 0 {
		if ratio := cur.NsPerRequest / base.NsPerRequest; ratio > 1+tolerance {
			fmt.Fprintf(os.Stderr, "bench-scale-check: %-26s REGRESSION: %.0f vs %.0f ns/req (%+.1f%%)\n",
				name, cur.NsPerRequest, base.NsPerRequest, (ratio-1)*100)
			status = 1
		}
	}
	if base.BytesPerNode > 0 {
		if ratio := float64(cur.BytesPerNode) / float64(base.BytesPerNode); ratio > 1+tolerance {
			fmt.Fprintf(os.Stderr, "bench-scale-check: %-26s REGRESSION: %d vs %d B/node (%+.1f%%)\n",
				name, cur.BytesPerNode, base.BytesPerNode, (ratio-1)*100)
			status = 1
		}
	}
	return status
}

// compareBaseline reports every benchmark whose ns/op regressed beyond the
// tolerance and returns the process exit status.
func compareBaseline(path string, current map[string]Entry, tolerance float64) int {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	baseline := make(map[string]Entry)
	if err := json.Unmarshal(buf, &baseline); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	status := 0
	for _, bench := range perf.Benchmarks() {
		cur, ok := current[bench.Name]
		if !ok {
			continue
		}
		base, ok := baseline[bench.Name]
		if !ok || base.NsPerOp <= 0 {
			fmt.Fprintf(os.Stderr, "bench-check: %-24s new (no baseline entry)\n", bench.Name)
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSION"
			status = 1
		}
		fmt.Fprintf(os.Stderr, "bench-check: %-24s %12.1f vs %12.1f ns/op (%+.1f%%) %s\n",
			bench.Name, cur.NsPerOp, base.NsPerOp, (ratio-1)*100, verdict)
	}
	if status != 0 {
		fmt.Fprintf(os.Stderr, "bench-check: FAILED (tolerance %.0f%%)\n", tolerance*100)
	} else {
		fmt.Fprintf(os.Stderr, "bench-check: all benchmarks within %.0f%% of %s\n", tolerance*100, path)
	}
	return status
}

// appendTrajectory inserts (or replaces, when the label already exists) one
// labeled point in the hotpath trajectory file.
func appendTrajectory(path, label string, entries map[string]Entry) {
	var points []TrajectoryPoint
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &points); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", path, err))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}
	point := TrajectoryPoint{Label: label, Benches: entries}
	replaced := false
	for i := range points {
		if points[i].Label == label {
			points[i] = point
			replaced = true
			break
		}
	}
	if !replaced {
		points = append(points, point)
	}
	writeJSON(path, points)
}

func writeJSON(path string, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if path == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
