// Command qmodel solves the analytic queuing model of Section 3 and emits
// the data behind Figures 3-6 and the Section 3.2 memory and replication
// studies.
//
// Usage:
//
//	qmodel -figure 5                 # render one surface as CSV
//	qmodel -summary                  # peaks and named grid points
//	qmodel -point -hit 0.8 -size 8   # evaluate one operating point
//	qmodel -memory -replication      # section 3.2 sweeps
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/queuemodel"
)

func main() {
	var (
		figure      = flag.Int("figure", 0, "emit figure 3, 4, 5, or 6 as CSV")
		summary     = flag.Bool("summary", false, "print surface peaks and named points")
		point       = flag.Bool("point", false, "evaluate a single operating point")
		hit         = flag.Float64("hit", 0.8, "locality-oblivious hit rate for -point")
		size        = flag.Float64("size", 8, "average file size in KB for -point")
		nodes       = flag.Int("nodes", 16, "cluster size")
		memMB       = flag.Int64("mem", 128, "per-node memory in MB")
		replication = flag.Float64("r", 0, "replication fraction")
		util        = flag.Bool("util", false, "with -point: print per-center utilizations and latency")
		memory      = flag.Bool("memory", false, "run the section 3.2 memory sweep")
		replSweep   = flag.Bool("replication", false, "run the section 3.2 replication sweep")
		table1      = flag.Bool("table1", false, "print the Table 1 parameters")
	)
	flag.Parse()

	params := queuemodel.DefaultParams()
	params.Nodes = *nodes
	params.CacheBytes = *memMB << 20
	params.Replication = *replication

	did := false
	if *table1 {
		fmt.Print(experiments.Table1())
		did = true
	}
	if *figure != 0 {
		hits, sizes := queuemodel.DefaultGrid()
		var s queuemodel.Surface
		switch *figure {
		case 3:
			s = queuemodel.ObliviousSurface(params, hits, sizes)
		case 4:
			s = queuemodel.ConsciousSurface(params, hits, sizes)
		case 5:
			s = queuemodel.IncreaseSurface(params, hits, sizes)
		case 6:
			fig5 := queuemodel.IncreaseSurface(params, hits, sizes)
			fig := experiments.Figure6(fig5)
			fmt.Print(fig.CSV())
			return
		default:
			fmt.Fprintf(os.Stderr, "qmodel: no figure %d (want 3-6)\n", *figure)
			os.Exit(1)
		}
		if err := s.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "qmodel:", err)
			os.Exit(1)
		}
		return
	}
	if *summary {
		fig3, fig4, fig5 := experiments.ModelSurfaces()
		fmt.Print(experiments.SurfaceSummary(fig3))
		fmt.Print(experiments.SurfaceSummary(fig4))
		fmt.Print(experiments.SurfaceSummary(fig5))
		did = true
	}
	if *point {
		params.AvgFileKB = *size
		ob := params.Oblivious(*hit)
		co := params.Conscious(*hit)
		hlc, h := params.HitRates(*hit)
		q := params.ForwardFraction(h)
		fmt.Printf("point: N=%d C=%dMB R=%.0f%% Hlo=%.2f S=%gKB\n",
			params.Nodes, *memMB, params.Replication*100, *hit, *size)
		fmt.Printf("  oblivious:  %8.0f req/s (bottleneck %s)\n", ob.RequestsPerSec, ob.Bottleneck)
		fmt.Printf("  conscious:  %8.0f req/s (bottleneck %s, Hlc=%.3f, h=%.3f, Q=%.3f)\n",
			co.RequestsPerSec, co.Bottleneck, hlc, h, q)
		fmt.Printf("  increase:   %8.2fx\n", co.RequestsPerSec/ob.RequestsPerSec)
		if *util {
			fmt.Println("  conscious per-center utilization at the bound:")
			us := params.Utilizations(co.RequestsPerSec, hlc, q)
			for c := queuemodel.Center(0); int(c) < len(us); c++ {
				fmt.Printf("    %-8s %6.1f%%\n", c, us[c]*100)
			}
			lat := params.Latency(co.RequestsPerSec*0.9, hlc, q)
			fmt.Printf("  latency at 90%% of the bound: %.2f ms\n", lat*1000)
		}
		did = true
	}
	if *memory {
		fmt.Print(experiments.MemorySweep().Render())
		did = true
	}
	if *replSweep {
		fmt.Print(experiments.ReplicationSweep().Render())
		did = true
	}
	if !did {
		flag.Usage()
		os.Exit(2)
	}
}
