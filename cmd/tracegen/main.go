// Command tracegen generates, characterizes, and converts the WWW server
// workloads that drive the simulator.
//
// Usage:
//
//	tracegen -list                         # show the Table 2 specs
//	tracegen -trace nasa -scale 0.1 -out nasa.trace
//	tracegen -characterize nasa.trace      # Table 2 statistics of a file
//	tracegen -clf access.log -out real.trace
//	tracegen -files 50000 -avgfile 30 -avgreq 15 -alpha 0.9 -requests 1e6 -out custom.trace
//	tracegen -spec "churn:files=20000,filekb=16,reqs=500000,lifetime=10" -out churn.trace
//	tracegen -spec "flash:files=8000,filekb=20,reqs=300000,reqkb=12,alpha=0.9" -out flash.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the paper trace specs")
		specText = flag.String("spec", "", "generation spec, e.g. churn:files=20000,filekb=16,reqs=500000,lifetime=10 or clarknet:reqs=100000 (modes: stationary, churn, diurnal, flash)")
		name     = flag.String("trace", "", "paper trace to generate (calgary, clarknet, nasa, rutgers)")
		scale    = flag.Float64("scale", 1.0, "request-count scale factor")
		out      = flag.String("out", "", "output trace file")
		charFile = flag.String("characterize", "", "print Table 2 statistics for a trace file")
		clf      = flag.String("clf", "", "convert a Common Log Format access log")

		files    = flag.Int("files", 0, "custom: catalog size")
		avgFile  = flag.Float64("avgfile", 30, "custom: mean file size (KB)")
		avgReq   = flag.Float64("avgreq", 15, "custom: mean request size (KB)")
		alpha    = flag.Float64("alpha", 0.9, "custom: Zipf exponent")
		requests = flag.Float64("requests", 1e5, "custom: request count")
		locality = flag.Float64("locality", 0.3, "custom: temporal locality probability")
		seed     = flag.Int64("seed", 1, "custom: RNG seed")
	)
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-10s %8s %10s %10s %9s %6s\n", "name", "files", "avgfileKB", "requests", "avgreqKB", "alpha")
		for _, s := range trace.PaperTraces() {
			fmt.Printf("%-10s %8d %10.1f %10d %9.1f %6.2f\n",
				s.Name, s.Files, s.AvgFileKB, s.Requests, s.AvgReqKB, s.Alpha)
		}
	case *specText != "":
		spec, err := trace.ParseGenSpec(*specText)
		fatalIf(err)
		if *scale != 1.0 {
			spec = spec.Scaled(*scale)
		}
		fmt.Printf("spec: %s\n", spec.SpecString())
		tr, err := trace.Generate(spec)
		fatalIf(err)
		printCharacteristics(tr)
		writeOut(tr, *out)
	case *charFile != "":
		f, err := os.Open(*charFile)
		fatalIf(err)
		defer f.Close()
		tr, err := trace.Read(f)
		fatalIf(err)
		printCharacteristics(tr)
	case *clf != "":
		f, err := os.Open(*clf)
		fatalIf(err)
		defer f.Close()
		r, err := trace.NewLogReader(f) // transparent gzip
		fatalIf(err)
		tr, skipped, err := trace.ParseCLF(*clf, r)
		fatalIf(err)
		fmt.Printf("parsed %d requests (%d lines skipped)\n", tr.NumRequests(), skipped)
		printCharacteristics(tr)
		writeOut(tr, *out)
	case *name != "":
		spec, err := trace.PaperTrace(*name)
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(*scale))
		fatalIf(err)
		printCharacteristics(tr)
		writeOut(tr, *out)
	case *files > 0:
		tr, err := trace.Generate(trace.GenSpec{
			Name: "custom", Files: *files, AvgFileKB: *avgFile,
			Requests: int(*requests), AvgReqKB: *avgReq, Alpha: *alpha,
			LocalityP: *locality, Seed: *seed,
		})
		fatalIf(err)
		printCharacteristics(tr)
		writeOut(tr, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printCharacteristics(tr *trace.Trace) {
	ch := trace.Characterize(tr)
	fmt.Printf("trace %s: %d files (%.1f KB avg, %.0f MB total), %d requests (%.1f KB avg), fitted alpha %.2f\n",
		ch.Name, ch.CatalogFiles, ch.CatalogAvgKB, ch.CatalogMB, ch.NumRequests, ch.AvgReqKB, ch.Alpha)
}

func writeOut(tr *trace.Trace, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	fatalIf(err)
	defer f.Close()
	n, err := tr.WriteTo(f)
	fatalIf(err)
	fmt.Printf("wrote %s (%d bytes)\n", path, n)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
