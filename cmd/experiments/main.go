// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them in the order they appear in the paper. The
// output of a full run (-scale 0.2) is what EXPERIMENTS.md records.
//
// Usage:
//
//	experiments                 # everything at the default scale, all cores
//	experiments -workers 1      # identical output, one simulation at a time
//	experiments -scale 0.05     # quick pass
//	experiments -only figure8   # one experiment
//	experiments -only chash     # web-scale consistent-hashing sweep (runs only when named)
//	experiments -only scalefigs # Figure 7-10 families at N up to 1024 (runs only when named)
//	experiments -only churn     # shot-noise churn + diurnal study (runs only when named)
//	experiments -only flash     # flash-crowd study (runs only when named)
//	experiments -policy chash:vnodes=64,load=1.25,lard   # compare policy specs, then exit
//	experiments -csv            # machine-readable figures
//	experiments -progress       # report each finished simulation (and the
//	                            # process heap high-water mark) on stderr
//	experiments -series util.jsonl -trace trace.json   # instrumented run artifacts
//
// Simulations within an experiment run concurrently on a deterministic
// worker pool (internal/runner): the figures are bit-identical for every
// -workers value.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		scale    = flag.Float64("scale", 0.2, "request-count scale for the simulation figures")
		only     = flag.String("only", "", "run a single experiment (table1, figures3to6, table2, figure7..figure10, section5.2, sensitivity, memory, policies, persistent, failover, section6, heterogeneous, twotier, slownode, latency; chash, scalefigs, churn, and flash — the web-scale sweeps and the non-stationary workload studies — run only when named explicitly)")
		profiles = flag.String("profiles", "", "per-node hardware spec, e.g. 4xfast:2.0/1.5/125000/64MB,12xslow:1.0/1.0/125000/32MB: run the weighted-policy comparison on that cluster, then exit")
		policies = flag.String("policy", "", "comma-separated policy specs, e.g. chash:vnodes=64,load=1.25,lard:thigh=80: compare them on the clarknet workload, then exit")
		csv      = flag.Bool("csv", false, "emit figures as CSV instead of tables")
		chart    = flag.Bool("chart", false, "draw figures as ASCII charts too")
		workers  = flag.Int("workers", 0, "concurrent simulations (0: all cores, 1: sequential)")
		progress = flag.Bool("progress", false, "report each finished simulation and the heap high-water mark on stderr")

		seriesOut = flag.String("series", "", "write a time-series JSONL of an instrumented run to this file, then exit")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event file of an instrumented run to this file, then exit")
		seriesDt  = flag.Float64("seriesdt", 0.01, "sampling interval in simulated seconds for -series/-trace")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
		fatalIf(err)
		defer func() { fatalIf(stopProfiles()) }()
	}

	if *seriesOut != "" || *traceOut != "" {
		fatalIf(writeSeriesArtifacts(*seriesOut, *traceOut, *seriesDt, *scale))
		return
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.Workers = *workers
	if *progress {
		var heapMu sync.Mutex
		var heapHigh uint64
		opts.Progress = func(p runner.Progress) {
			status := "ok"
			if p.Job.Err != nil {
				status = "FAILED: " + p.Job.Err.Error()
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			heapMu.Lock()
			if ms.HeapAlloc > heapHigh {
				heapHigh = ms.HeapAlloc
			}
			high := heapHigh
			heapMu.Unlock()
			fmt.Fprintf(os.Stderr, "experiments: [%d/%d] %s (%v) heap %dMB (max %dMB) %s\n",
				p.Done, p.Total, p.Job.Key, p.Job.Elapsed.Round(time.Millisecond),
				ms.HeapAlloc>>20, high>>20, status)
		}
	}
	pool := opts.Pool()

	if *profiles != "" {
		specs, err := server.ParseProfiles(*profiles)
		fatalIf(err)
		spec, err := trace.PaperTrace("calgary")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.ProfileStudy(pool, tr, specs)
		fatalIf(err)
		fmt.Println(text)
		return
	}

	if *policies != "" {
		specs := policy.SplitSpecs(*policies)
		spec, err := trace.PaperTrace("clarknet")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.SpecStudy(pool, tr, specs, 16)
		fatalIf(err)
		fmt.Println(text)
		return
	}

	// The web-scale chash sweep (10^7-file catalog, clusters to 1024 nodes)
	// generates a large trace and runs minutes, so it never rides along with
	// the default everything pass: it runs only when asked for by name.
	if strings.EqualFold(*only, "chash") {
		start := time.Now()
		fig, _, text, err := experiments.ChashScaleStudy(pool,
			[]int{16, 64, 256, 1024}, 10_000_000, 300_000)
		fatalIf(err)
		fmt.Println(text)
		if *csv {
			fmt.Println(fig.CSV())
		} else {
			fmt.Println(fig.Render())
		}
		if *chart {
			fmt.Println(fig.Chart(60, 16))
		}
		fmt.Fprintf(os.Stderr, "experiments: done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The large-cluster figure sweep reruns the Figure 7-10 families at
	// N up to 1024; like chash it runs only when named (a -scale 1 pass is
	// what results/scale-figures.txt records).
	if strings.EqualFold(*only, "scalefigs") {
		start := time.Now()
		figs, _, text, err := experiments.ScaleFiguresStudy(pool,
			[]int{64, 256, 1024}, *scale)
		fatalIf(err)
		fmt.Println(text)
		for _, fig := range figs {
			if *csv {
				fmt.Println(fig.CSV())
			} else {
				fmt.Println(fig.Render())
			}
			if *chart {
				fmt.Println(fig.Chart(60, 16))
			}
		}
		fmt.Fprintf(os.Stderr, "experiments: done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	// The non-stationary studies (shot-noise churn, diurnal load, flash
	// crowds) likewise run only when named: they synthesize their own traces
	// and instrument every run with a time-series recorder.
	if strings.EqualFold(*only, "churn") {
		start := time.Now()
		_, text, err := experiments.ChurnStudy(pool, opts.Scale)
		fatalIf(err)
		fmt.Println(text)
		fmt.Fprintf(os.Stderr, "experiments: done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if strings.EqualFold(*only, "flash") {
		start := time.Now()
		_, text, err := experiments.FlashStudy(pool, opts.Scale)
		fatalIf(err)
		fmt.Println(text)
		fmt.Fprintf(os.Stderr, "experiments: done in %v\n", time.Since(start).Round(time.Millisecond))
		return
	}

	want := func(name string) bool {
		return *only == "" || strings.EqualFold(*only, name)
	}
	emit := func(fig experiments.Figure) {
		if *csv {
			fmt.Println(fig.CSV())
		} else {
			fmt.Println(fig.Render())
		}
		if *chart {
			fmt.Println(fig.Chart(60, 16))
		}
	}

	start := time.Now()

	if want("table1") {
		fmt.Println(experiments.Table1())
	}

	if want("figures3to6") {
		fig3, fig4, fig5 := experiments.ModelSurfaces()
		fmt.Print(experiments.SurfaceSummary(fig3))
		fmt.Print(experiments.SurfaceSummary(fig4))
		fmt.Print(experiments.SurfaceSummary(fig5))
		emit(experiments.Figure6(fig5))
		emit(experiments.MemorySweep())
		emit(experiments.ReplicationSweep())
	}

	if want("table2") {
		_, text := experiments.Table2(opts)
		fmt.Println(text)
	}

	var runs []*experiments.TraceRun
	for _, name := range []string{"calgary", "clarknet", "nasa", "rutgers"} {
		figID := experiments.FigureIDs[name]
		if !want(figID) && !want("section5.2") {
			continue
		}
		run, err := experiments.RunTrace(name, opts)
		fatalIf(err)
		runs = append(runs, run)
		if want(figID) {
			emit(run.ThroughputFigure(figID))
			fmt.Println(run.Summary())
		}
	}

	if want("section5.2") {
		for _, run := range runs {
			emit(run.MissRateFigure())
			emit(run.IdleTimeFigure())
			emit(run.ForwardingFigure())
		}
	}

	if want("sensitivity") {
		spec, err := trace.PaperTrace("calgary")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.L2SSensitivity(pool, tr, 16)
		fatalIf(err)
		fmt.Println(text)
	}

	if want("memory") {
		for _, name := range []string{"calgary", "nasa"} {
			spec, err := trace.PaperTrace(name)
			fatalIf(err)
			tr, err := trace.Generate(spec.Scaled(opts.Scale))
			fatalIf(err)
			_, text, err := experiments.MemoryScaling(pool, tr, opts.Nodes)
			fatalIf(err)
			fmt.Println(text)
		}
	}

	if want("policies") {
		spec, err := trace.PaperTrace("clarknet")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.PolicyComparison(pool, tr, 16)
		fatalIf(err)
		fmt.Println(text)
	}

	if want("persistent") {
		spec, err := trace.PaperTrace("clarknet")
		fatalIf(err)
		spec = spec.Scaled(opts.Scale / 2)
		spec.Clients = 5000
		tr, err := trace.Generate(spec)
		fatalIf(err)
		_, text, err := experiments.PersistentStudy(pool, tr, 16, 7)
		fatalIf(err)
		fmt.Println(text)
	}

	if want("failover") {
		spec, err := trace.PaperTrace("calgary")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		text, err := experiments.FailoverStudy(pool, tr, 16)
		fatalIf(err)
		fmt.Println(text)
		fig, err := experiments.FailoverTimeline(tr, 16, 3)
		fatalIf(err)
		fmt.Println(fig.Chart(60, 12))
	}

	if want("section6") {
		spec, err := trace.PaperTrace("clarknet")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.Section6Study(pool, tr, 16)
		fatalIf(err)
		fmt.Println(text)
	}

	if want("heterogeneous") {
		spec, err := trace.PaperTrace("calgary")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.HeterogeneousStudy(pool, tr, 16, 0.5)
		fatalIf(err)
		fmt.Println(text)
	}

	if want("twotier") {
		spec, err := trace.PaperTrace("calgary")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.TwoTierStudy(pool, tr, 16, 4)
		fatalIf(err)
		fmt.Println(text)
	}

	if want("slownode") {
		spec, err := trace.PaperTrace("calgary")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.SlowNodeStudy(pool, tr, 16, 5, 0.5)
		fatalIf(err)
		fmt.Println(text)
	}

	if want("latency") {
		spec, err := trace.PaperTrace("calgary")
		fatalIf(err)
		tr, err := trace.Generate(spec.Scaled(opts.Scale / 2))
		fatalIf(err)
		_, text, err := experiments.LatencyStudy(pool, tr, 16,
			[]float64{500, 1000, 2000, 3000, 4000, 5000})
		fatalIf(err)
		fmt.Println(text)
	}

	fmt.Fprintf(os.Stderr, "experiments: done in %v\n", time.Since(start).Round(time.Millisecond))
}

// writeSeriesArtifacts runs one instrumented simulation — the paper's
// calgary workload under L2S on 16 nodes — and exports the sampled
// time series as JSONL and/or Chrome trace_event JSON (load either into
// chrome://tracing or Perfetto).
func writeSeriesArtifacts(seriesOut, traceOut string, dt, scale float64) error {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		return err
	}
	tr, err := trace.Generate(spec.Scaled(scale))
	if err != nil {
		return err
	}
	rec := obs.NewSeries(dt)
	cfg := server.NewConfig(server.L2SServer, 16, server.WithSeed(1),
		server.WithSeries(rec))
	res, err := server.Run(cfg, tr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"experiments: instrumented run: %s on %d nodes, %.0f req/s, %d samples at dt=%gs\n",
		res.System, res.Nodes, res.Throughput, rec.Len(), dt)
	write := func(path string, emit func(w io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(seriesOut, rec.WriteJSONL); err != nil {
		return err
	}
	return write(traceOut, rec.WriteChromeTrace)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
