// Command clustersim runs one trace-driven cluster server simulation: pick
// a system (traditional, lard, l2s), a workload, and a cluster size, and it
// reports the Section 5 metrics.
//
// Usage:
//
//	clustersim -system l2s -trace calgary -nodes 16 -scale 0.2
//	clustersim -system lard -in real.trace -nodes 8 -mem 128
//	clustersim -system l2s -trace nasa -nodes 16 -fail 3 -failat 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		system   = flag.String("system", "l2s", "traditional, lard, lard-basic, lard-dispatch, l2s, hashing, random, or cached-dns")
		name     = flag.String("trace", "calgary", "paper trace to generate")
		in       = flag.String("in", "", "trace file (overrides -trace)")
		scale    = flag.Float64("scale", 0.2, "request-count scale for generated traces")
		nodes    = flag.Int("nodes", 16, "cluster size")
		memMB    = flag.Int64("mem", 32, "per-node memory in MB")
		window   = flag.Int("window", 12, "outstanding connections per node")
		warm     = flag.Float64("warm", 0.4, "warm-up fraction of the trace")
		failNode = flag.Int("fail", -1, "node to crash mid-run (-1: none)")
		failAt   = flag.Float64("failat", 0.5, "fraction of the trace at which the crash happens")
		t        = flag.Int("T", 20, "L2S overload threshold")
		lowT     = flag.Int("t", 10, "L2S underload threshold")
		delta    = flag.Int("delta", 4, "L2S load-broadcast delta")
		oracle   = flag.Bool("oracle", false, "L2S reads true remote loads (no gossip staleness)")
		persist  = flag.Bool("persistent", false, "HTTP/1.1 persistent connections")
		rpc      = flag.Float64("rpc", 7, "mean requests per persistent connection")
		dnsTTL   = flag.Int("dnsttl", 50, "cached-dns: requests per cached translation")
		dfs      = flag.Bool("dfs", false, "explicit distributed file system (remote disk reads)")
		rate     = flag.Float64("rate", 0, "open-loop Poisson arrival rate (0: saturation)")
		verbose  = flag.Bool("v", false, "per-node detail")
	)
	flag.Parse()

	var sys server.System
	var custom func(env policy.Env) policy.Distributor
	switch *system {
	case "traditional", "trad":
		sys = server.Traditional
	case "lard":
		sys = server.LARDServer
	case "lard-dispatch":
		sys = server.LARDDispatcher
	case "l2s":
		sys = server.L2SServer
	case "lard-basic":
		sys = server.LARDServer
	case "hashing":
		sys = server.CustomServer
		custom = func(env policy.Env) policy.Distributor { return policy.NewHashing(env) }
	case "random":
		sys = server.CustomServer
		custom = func(env policy.Env) policy.Distributor { return policy.NewRandom(env, 7) }
	case "cached-dns":
		sys = server.CustomServer
		ttl := *dnsTTL
		custom = func(env policy.Env) policy.Distributor { return policy.NewCachedDNS(env, ttl) }
	default:
		fmt.Fprintf(os.Stderr, "clustersim: unknown system %q\n", *system)
		os.Exit(2)
	}

	var tr *trace.Trace
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		fatalIf(err2)
		tr, err = trace.Read(f)
		f.Close()
	} else {
		var spec trace.GenSpec
		spec, err = trace.PaperTrace(*name)
		if err == nil {
			tr, err = trace.Generate(spec.Scaled(*scale))
		}
	}
	fatalIf(err)

	cfg := server.DefaultConfig(sys, *nodes)
	cfg.CacheBytes = *memMB << 20
	cfg.WindowPerNode = *window
	cfg.WarmFraction = *warm
	cfg.FailNode = *failNode
	cfg.FailAtFrac = *failAt
	cfg.L2S.T = *t
	cfg.L2S.LowT = *lowT
	cfg.L2S.BroadcastDelta = *delta
	cfg.L2S.Oracle = *oracle
	cfg.Persistent = *persist
	cfg.ReqsPerConn = *rpc
	cfg.DistributedFS = *dfs
	cfg.ArrivalRate = *rate
	cfg.CustomPolicy = custom
	if *system == "lard-basic" {
		cfg.LARD.Replication = false
	}

	r, err := server.Run(cfg, tr)
	fatalIf(err)

	fmt.Printf("system=%s nodes=%d trace=%s requests=%d mem=%dMB\n",
		r.System, r.Nodes, tr.Name, tr.NumRequests(), *memMB)
	fmt.Printf("throughput:      %10.0f req/s (measured over %.2f simulated s)\n", r.Throughput, r.SimTime)
	fmt.Printf("completed:       %10d   aborted: %d\n", r.Completed, r.Aborted)
	fmt.Printf("cache miss rate: %10.1f%%\n", r.MissRate*100)
	fmt.Printf("forwarded:       %10.1f%%\n", r.ForwardedFrac*100)
	fmt.Printf("cpu idle:        %10.1f%%  (mean util %.1f%%)\n", r.CPUIdle*100, r.MeanCPUUtil*100)
	fmt.Printf("router util:     %10.1f%%  disk util: %.1f%%\n", r.RouterUtil*100, r.MeanDiskUtil*100)
	fmt.Printf("mean load:       %10.1f connections/node (imbalance %.2f)\n", r.MeanLoad, r.LoadImbalance)
	fmt.Printf("latency:         %10.2f ms mean, %.2f ms p50, %.2f ms p99\n",
		r.LatencyMean*1000, r.LatencyP50*1000, r.LatencyP99*1000)
	fmt.Printf("control msgs:    %10d   events: %d\n", r.ControlMessages, r.Events)
	if r.L2S != nil {
		fmt.Printf("l2s: %d load broadcasts, %d set broadcasts, %d grows, %d shrinks, %.1f%% files replicated\n",
			r.L2S.LoadBroadcasts, r.L2S.SetBroadcasts, r.L2S.SetGrows, r.L2S.SetShrinks,
			r.L2S.ReplicatedFrac*100)
		sizes := make([]int, 0, len(r.L2S.SetSizes))
		for k := range r.L2S.SetSizes {
			sizes = append(sizes, k)
		}
		sort.Ints(sizes)
		fmt.Printf("l2s server-set sizes:")
		for _, k := range sizes {
			fmt.Printf(" %d:%d", k, r.L2S.SetSizes[k])
		}
		fmt.Println()
	}
	if *verbose {
		fmt.Println("per-node cpu utilization:")
		for i, u := range r.PerNodeCPUUtil {
			fmt.Printf("  node %2d: %5.1f%%\n", i, u*100)
		}
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}
