// Command clustersim runs trace-driven cluster server simulations: pick a
// distribution policy (or several), a workload, and a cluster size, and it
// reports the Section 5 metrics.
//
// Policies are resolved through the policy registry (policy.ParseSpec), so
// an unknown -system lists every valid name and alias. A system may be a
// bare name or a parameterized spec, name:key=value[,key=value...], e.g.
// "chash:vnodes=128,load=1.25,d=2". Multi-system comparison mode runs
// several policies over the same workload on a deterministic parallel
// worker pool and prints them side by side.
//
// Usage:
//
//	clustersim -system l2s -trace calgary -nodes 16 -scale 0.2
//	clustersim -system lard -in real.trace -nodes 8 -mem 128
//	clustersim -system chash:vnodes=64,load=1.25 -nodes 128
//	clustersim -system l2s -trace nasa -nodes 16 -fail 3 -failat 0.5
//	clustersim -system l2s,lard,chash-bounded -nodes 16  # comparison mode
//	clustersim -system all -workers 4                    # every policy
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

func main() {
	var (
		system   = flag.String("system", "l2s", "policy spec (name[:k=v,...]), comma-separated list, or \"all\" (valid: "+strings.Join(policy.NamesAndAliases(), ", ")+")")
		name     = flag.String("trace", "calgary", "paper trace to generate")
		in       = flag.String("in", "", "trace file (overrides -trace)")
		scale    = flag.Float64("scale", 0.2, "request-count scale for generated traces")
		nodes    = flag.Int("nodes", 16, "cluster size")
		profSpec = flag.String("profiles", "", "per-node hardware, e.g. 4xfast:2.0/1.5/125000/64MB,12xslow:1.0/1.0/125000/32MB (count must match -nodes)")
		memMB    = flag.Int64("mem", 32, "per-node memory in MB")
		window   = flag.Int("window", 12, "outstanding connections per node")
		warm     = flag.Float64("warm", 0.4, "warm-up fraction of the trace")
		failNode = flag.Int("fail", -1, "node to crash mid-run (-1: none)")
		failAt   = flag.Float64("failat", 0.5, "fraction of the trace at which the crash happens")
		t        = flag.Int("T", 20, "L2S overload threshold")
		lowT     = flag.Int("t", 10, "L2S underload threshold")
		delta    = flag.Int("delta", 4, "L2S load-broadcast delta")
		oracle   = flag.Bool("oracle", false, "L2S reads true remote loads (no gossip staleness)")
		persist  = flag.Bool("persistent", false, "HTTP/1.1 persistent connections")
		rpc      = flag.Float64("rpc", 7, "mean requests per persistent connection")
		dnsTTL   = flag.Int("dnsttl", 50, "cached-dns: requests per cached translation")
		dfs      = flag.Bool("dfs", false, "explicit distributed file system (remote disk reads)")
		rate     = flag.Float64("rate", 0, "open-loop Poisson arrival rate (0: saturation)")
		seed     = flag.Int64("seed", 0, "base RNG seed (0: policy defaults)")
		workers  = flag.Int("workers", 0, "concurrent simulations in comparison mode (0: all cores)")
		verbose  = flag.Bool("v", false, "per-node detail")

		seriesOut = flag.String("series", "", "write sampled per-resource time series as JSONL to this file (single-system mode)")
		chromeOut = flag.String("chrometrace", "", "write the sampled series as a Chrome trace_event file (single-system mode)")
		seriesDt  = flag.Float64("seriesdt", 0.01, "sampling interval in simulated seconds for -series/-chrometrace")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile (taken at exit) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" || *memProfile != "" {
		stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
		fatalIf(err)
		defer func() { fatalIf(stopProfiles()) }()
	}

	var tr *trace.Trace
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		fatalIf(err2)
		tr, err = trace.Read(f)
		f.Close()
	} else {
		var spec trace.GenSpec
		spec, err = trace.PaperTrace(*name)
		if err == nil {
			tr, err = trace.Generate(spec.Scaled(*scale))
		}
	}
	fatalIf(err)

	var profiles []server.NodeProfile
	if *profSpec != "" {
		profiles, err = server.ParseProfiles(*profSpec)
		fatalIf(err)
		if len(profiles) != *nodes {
			fatalIf(fmt.Errorf("-profiles describes %d nodes, -nodes is %d", len(profiles), *nodes))
		}
	}

	// Every policy is built by name through the registry; there is no
	// per-system construction code here.
	buildConfig := func(policyName string) server.Config {
		opts := []server.Option{
			server.WithPolicy(policyName),
			server.WithCacheBytes(*memMB << 20),
			server.WithWindow(*window),
			server.WithWarmFraction(*warm),
			server.WithDNSTTL(*dnsTTL),
			server.WithSeed(*seed),
		}
		if profiles != nil {
			opts = append(opts, server.WithProfiles(profiles...))
		}
		if *failNode >= 0 {
			opts = append(opts, server.WithFailure(*failNode, *failAt))
		}
		if *persist {
			opts = append(opts, server.WithPersistent(*rpc))
		}
		if *dfs {
			opts = append(opts, server.WithDistributedFS())
		}
		if *rate > 0 {
			opts = append(opts, server.WithArrivalRate(*rate))
		}
		cfg := server.NewConfig(server.CustomServer, *nodes, opts...)
		cfg.L2S.T = *t
		cfg.L2S.LowT = *lowT
		cfg.L2S.BroadcastDelta = *delta
		cfg.L2S.Oracle = *oracle
		return cfg
	}

	// SplitSpecs (not a raw comma split) keeps parameterized specs such as
	// "chash:vnodes=64,load=1.25" intact while still allowing lists.
	names := policy.SplitSpecs(*system)
	if *system == "all" {
		names = policy.Names()
	}
	if len(names) > 1 {
		if *seriesOut != "" || *chromeOut != "" {
			fatalIf(fmt.Errorf("-series/-chrometrace need a single system, got %q", *system))
		}
		compare(names, buildConfig, tr, *workers, *memMB)
		return
	}

	cfg := buildConfig(names[0])
	var rec *obs.Series
	if *seriesOut != "" || *chromeOut != "" {
		rec = obs.NewSeries(*seriesDt)
		cfg.Series = rec
	}
	r, err := server.Run(cfg, tr)
	fatalIf(err)
	fatalIf(writeSeries(rec, *seriesOut, *chromeOut))

	fmt.Printf("system=%s nodes=%d trace=%s requests=%d mem=%dMB\n",
		r.System, r.Nodes, tr.Name, tr.NumRequests(), *memMB)
	fmt.Printf("throughput:      %10.0f req/s (measured over %.2f simulated s)\n", r.Throughput, r.SimTime)
	fmt.Printf("completed:       %10d   aborted: %d\n", r.Completed, r.Aborted)
	fmt.Printf("cache miss rate: %10.1f%%\n", r.MissRate*100)
	fmt.Printf("forwarded:       %10.1f%%\n", r.ForwardedFrac*100)
	fmt.Printf("cpu idle:        %10.1f%%  (mean util %.1f%%)\n", r.CPUIdle*100, r.MeanCPUUtil*100)
	fmt.Printf("router util:     %10.1f%%  disk util: %.1f%%\n", r.RouterUtil*100, r.MeanDiskUtil*100)
	fmt.Printf("mean load:       %10.1f connections/node (imbalance %.2f)\n", r.MeanLoad, r.LoadImbalance)
	fmt.Printf("latency:         %10.2f ms mean, %.2f ms p50, %.2f ms p99\n",
		r.LatencyMean*1000, r.LatencyP50*1000, r.LatencyP99*1000)
	fmt.Printf("control msgs:    %10d   events: %d\n", r.ControlMessages, r.Events)
	if r.L2S != nil {
		fmt.Printf("l2s: %d load broadcasts, %d set broadcasts, %d grows, %d shrinks, %.1f%% files replicated\n",
			r.L2S.LoadBroadcasts, r.L2S.SetBroadcasts, r.L2S.SetGrows, r.L2S.SetShrinks,
			r.L2S.ReplicatedFrac*100)
		sizes := make([]int, 0, len(r.L2S.SetSizes))
		for k := range r.L2S.SetSizes {
			sizes = append(sizes, k)
		}
		sort.Ints(sizes)
		fmt.Printf("l2s server-set sizes:")
		for _, k := range sizes {
			fmt.Printf(" %d:%d", k, r.L2S.SetSizes[k])
		}
		fmt.Println()
	}
	if *verbose {
		fmt.Println("per-node cpu utilization:")
		for i, u := range r.PerNodeCPUUtil {
			fmt.Printf("  node %2d: %5.1f%%\n", i, u*100)
		}
	}
}

// writeSeries exports the recorded series to the requested artifact files.
func writeSeries(rec *obs.Series, seriesOut, chromeOut string) error {
	if rec == nil {
		return nil
	}
	write := func(path string, emit func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(seriesOut, rec.WriteJSONL); err != nil {
		return err
	}
	return write(chromeOut, rec.WriteChromeTrace)
}

// compare runs every named policy over the same workload on the parallel
// sweep runner and prints the Section 5 metrics side by side.
func compare(names []string, buildConfig func(string) server.Config, tr *trace.Trace, workers int, memMB int64) {
	jobs := make([]runner.Job, len(names))
	for i, n := range names {
		jobs[i] = runner.Job{Key: n, Config: buildConfig(n), Trace: tr}
	}
	start := time.Now()
	results := runner.NewPool(workers).Run(jobs)

	fmt.Printf("comparison on %s (%d requests), %d nodes, %d MB per node\n",
		tr.Name, tr.NumRequests(), jobs[0].Config.Nodes, memMB)
	fmt.Printf("  %-14s %10s %8s %8s %10s %8s %12s\n",
		"system", "req/s", "miss%", "fwd%", "imbalance", "idle%", "p50 ms")
	for _, jr := range results {
		if jr.Err != nil {
			fmt.Printf("  %-14s failed: %v\n", jr.Key, jr.Err)
			continue
		}
		r := jr.Result
		fmt.Printf("  %-14s %10.0f %8.1f %8.1f %10.2f %8.1f %12.2f\n",
			r.System, r.Throughput, r.MissRate*100, r.ForwardedFrac*100,
			r.LoadImbalance, r.CPUIdle*100, r.LatencyP50*1000)
	}
	fmt.Fprintf(os.Stderr, "clustersim: %d simulations in %v\n",
		len(jobs), time.Since(start).Round(time.Millisecond))
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "clustersim:", err)
		os.Exit(1)
	}
}
