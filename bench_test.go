package repro

// One benchmark per table and figure of the paper. Each bench regenerates
// its artifact (at a reduced trace scale for the simulation figures — use
// cmd/experiments for full-scale runs) and reports the headline numbers as
// custom benchmark metrics, so `go test -bench=.` doubles as a regression
// harness for the reproduction.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/queuemodel"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

// BenchmarkSimCoreServerRun surfaces the allocation-tracked end-to-end
// hot-path benchmark in the top-level suite; the full hot-path set lives in
// internal/perf and its committed baseline in BENCH_simcore.json (run
// `make bench-json` to regenerate, `make bench-hot` to inspect).
func BenchmarkSimCoreServerRun(b *testing.B) { perf.ServerRun(b) }

// benchPool is the sweep executor the study benches share. Workers=0 uses
// every core; results are identical to sequential, so the reported metrics
// do not depend on the parallelism.
func benchPool() *runner.Pool { return runner.NewPool(0) }

// benchOptions is the reduced scale used by the figure benches.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.05
	o.Nodes = []int{1, 8, 16}
	return o
}

func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure3ObliviousSurface(b *testing.B) {
	p := queuemodel.DefaultParams()
	hits, sizes := queuemodel.DefaultGrid()
	var peak float64
	for i := 0; i < b.N; i++ {
		s := queuemodel.ObliviousSurface(p, hits, sizes)
		peak, _, _ = s.Max()
	}
	b.ReportMetric(peak, "peak-req/s")
}

func BenchmarkFigure4ConsciousSurface(b *testing.B) {
	p := queuemodel.DefaultParams()
	hits, sizes := queuemodel.DefaultGrid()
	var peak float64
	for i := 0; i < b.N; i++ {
		s := queuemodel.ConsciousSurface(p, hits, sizes)
		peak, _, _ = s.Max()
	}
	b.ReportMetric(peak, "peak-req/s")
}

func BenchmarkFigure5IncreaseSurface(b *testing.B) {
	p := queuemodel.DefaultParams()
	hits, sizes := queuemodel.DefaultGrid()
	var peak float64
	for i := 0; i < b.N; i++ {
		s := queuemodel.IncreaseSurface(p, hits, sizes)
		peak, _, _ = s.Max()
	}
	b.ReportMetric(peak, "peak-gain")
}

func BenchmarkFigure6IncreaseSideView(b *testing.B) {
	p := queuemodel.DefaultParams()
	hits, sizes := queuemodel.DefaultGrid()
	s := queuemodel.IncreaseSurface(p, hits, sizes)
	b.ResetTimer()
	var maxv float64
	for i := 0; i < b.N; i++ {
		side := s.SideView()
		maxv = side[0]
		for _, v := range side {
			if v > maxv {
				maxv = v
			}
		}
	}
	b.ReportMetric(maxv, "peak-gain")
}

func BenchmarkModelMemorySweep(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.MemorySweep()
	}
	b.ReportMetric(fig.Series[0].Values[len(fig.X)-1], "peak-gain-512mb")
}

func BenchmarkModelReplicationSweep(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.ReplicationSweep()
	}
	b.ReportMetric(fig.Series[2].Values[0], "fwd%at-R0")
}

func BenchmarkTable2TraceCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chs, _ := experiments.Table2(experiments.Options{Scale: 0.02})
		if len(chs) != 4 {
			b.Fatal("missing traces")
		}
	}
}

// figureBench runs one Figures 7-10 trace sweep and reports the 16-node
// throughputs of all four curves.
func figureBench(b *testing.B, traceName string) {
	b.Helper()
	opts := benchOptions()
	var run *experiments.TraceRun
	for i := 0; i < b.N; i++ {
		var err error
		run, err = experiments.RunTrace(traceName, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(opts.Nodes) - 1
	b.ReportMetric(run.Model[last], "model-req/s")
	b.ReportMetric(run.Results["l2s"][last].Throughput, "l2s-req/s")
	b.ReportMetric(run.Results["lard"][last].Throughput, "lard-req/s")
	b.ReportMetric(run.Results["traditional"][last].Throughput, "trad-req/s")
}

func BenchmarkFigure7Calgary(b *testing.B)  { figureBench(b, "calgary") }
func BenchmarkFigure8Clarknet(b *testing.B) { figureBench(b, "clarknet") }
func BenchmarkFigure9NASA(b *testing.B)     { figureBench(b, "nasa") }
func BenchmarkFigure10Rutgers(b *testing.B) { figureBench(b, "rutgers") }

// benchTraceRun caches one calgary sweep for the Section 5.2 metric
// benches so each reports from the same underlying experiment.
func sec52Run(b *testing.B) *experiments.TraceRun {
	b.Helper()
	run, err := experiments.RunTrace("calgary", benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return run
}

func BenchmarkMissRates(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = sec52Run(b).MissRateFigure()
	}
	last := len(fig.X) - 1
	b.ReportMetric(fig.Series[0].Values[last], "l2s-miss%")
	b.ReportMetric(fig.Series[2].Values[last], "trad-miss%")
}

func BenchmarkIdleTimes(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = sec52Run(b).IdleTimeFigure()
	}
	last := len(fig.X) - 1
	b.ReportMetric(fig.Series[0].Values[last], "l2s-idle%")
	b.ReportMetric(fig.Series[1].Values[last], "lard-idle%")
}

func BenchmarkForwardingFractions(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = sec52Run(b).ForwardingFigure()
	}
	last := len(fig.X) - 1
	b.ReportMetric(fig.Series[0].Values[last], "l2s-fwd%")
	b.ReportMetric(fig.Series[1].Values[last], "lard-fwd%")
}

func BenchmarkMemoryScaling(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.08))
	b.ResetTimer()
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		figs, _, err = experiments.MemoryScaling(benchPool(), tr, []int{8, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	series := func(f experiments.Figure, label string) float64 {
		for _, s := range f.Series {
			if s.Label == label {
				return s.Values[len(s.Values)-1]
			}
		}
		return 0
	}
	b.ReportMetric(series(figs[0], "traditional"), "trad-32mb-req/s")
	b.ReportMetric(series(figs[1], "traditional"), "trad-128mb-req/s")
}

func BenchmarkL2SSensitivity(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.04))
	b.ResetTimer()
	var results map[string][]experiments.SensitivityResult
	for i := 0; i < b.N; i++ {
		results, _, err = experiments.L2SSensitivity(benchPool(), tr, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	deltas := results["broadcast-delta"]
	b.ReportMetric(deltas[0].Throughput, "delta1-req/s")
	b.ReportMetric(deltas[len(deltas)-1].Throughput, "delta16-req/s")
}

func BenchmarkFailover(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.04))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FailoverStudy(benchPool(), tr, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorEventRate measures raw simulator speed: events fired
// per wall-clock second for an L2S run, the number that bounds how large a
// trace the harness can replay.
func BenchmarkSimulatorEventRate(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.05))
	cfg := server.DefaultConfig(server.L2SServer, 16)
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		r, err := server.Run(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		events = r.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

func BenchmarkPolicyComparison(b *testing.B) {
	spec, err := trace.PaperTrace("clarknet")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.03))
	b.ResetTimer()
	var rows []experiments.PolicyRow
	for i := 0; i < b.N; i++ {
		rows, _, err = experiments.PolicyComparison(benchPool(), tr, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Policy == "l2s" {
			b.ReportMetric(r.Throughput, "l2s-req/s")
		}
		if r.Policy == "hashing" {
			b.ReportMetric(r.Imbalance, "hash-imbalance")
		}
	}
}

func BenchmarkLARDVariants(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.05))
	b.ResetTimer()
	var rows []experiments.PolicyRow
	for i := 0; i < b.N; i++ {
		rows, _, err = experiments.LARDVariants(benchPool(), tr, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Throughput, "lard-basic-req/s")
	b.ReportMetric(rows[1].Throughput, "lard-r-req/s")
}

func BenchmarkPersistentConnections(b *testing.B) {
	spec, err := trace.PaperTrace("clarknet")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.04))
	b.ResetTimer()
	var rows []experiments.PersistentRow
	for i := 0; i < b.N; i++ {
		rows, _, err = experiments.PersistentStudy(benchPool(), tr, 16, 7)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "lard" && r.Mode == "http/1.1" {
			b.ReportMetric(r.Throughput, "lard-p-req/s")
		}
		if r.System == "l2s" && r.Mode == "http/1.1" {
			b.ReportMetric(r.Throughput, "l2s-p-req/s")
		}
	}
}

func BenchmarkLatencyStudy(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.04))
	b.ResetTimer()
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig, _, err = experiments.LatencyStudy(benchPool(), tr, 16, []float64{500, 1500, 2500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.Series[0].Values[0]*1000, "sim-p500-ms")
	b.ReportMetric(fig.Series[1].Values[0]*1000, "model-p500-ms")
}

func BenchmarkHeterogeneousStudy(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.04))
	b.ResetTimer()
	var rows []experiments.PolicyRow
	for i := 0; i < b.N; i++ {
		rows, _, err = experiments.HeterogeneousStudy(benchPool(), tr, 16, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Throughput, "l2s-homog-req/s")
	b.ReportMetric(rows[1].Throughput, "l2s-mixed-req/s")
}

func BenchmarkSection6(b *testing.B) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "s6", Files: 1000, AvgFileKB: 5, Requests: 40000,
		AvgReqKB: 4, Alpha: 0.9, LocalityP: 0.3, Seed: 8,
	})
	b.ResetTimer()
	var rows []experiments.PolicyRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, _, err = experiments.Section6Study(benchPool(), tr, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Throughput, "lard-req/s")
	b.ReportMetric(rows[1].Throughput, "dispatch-req/s")
	b.ReportMetric(rows[2].Throughput, "l2s-req/s")
}

// BenchmarkSweepRunner measures the deterministic worker pool itself: a
// 3-system x 2-size sweep dispatched through internal/runner, the same
// path cmd/experiments and cmd/clustersim comparison mode use.
func BenchmarkSweepRunner(b *testing.B) {
	spec, err := trace.PaperTrace("calgary")
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.MustGenerate(spec.Scaled(0.03))
	var jobs []runner.Job
	for _, sys := range []server.System{server.L2SServer, server.LARDServer, server.Traditional} {
		for _, n := range []int{8, 16} {
			jobs = append(jobs, runner.Job{
				Key:    sys.String() + "/bench",
				Config: server.NewConfig(sys, n),
				Trace:  tr,
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, jr := range runner.NewPool(0).Run(jobs) {
			if jr.Err != nil {
				b.Fatal(jr.Err)
			}
		}
	}
}
