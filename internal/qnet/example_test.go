package qnet_test

import (
	"fmt"

	"repro/internal/qnet"
)

// A CPU feeding a disk with 30% of its completions, 60 jobs/s offered.
func ExampleNetwork_Solve() {
	n := &qnet.Network{
		Stations: []qnet.Station{
			{Name: "cpu", Rate: 100},
			{Name: "disk", Rate: 25},
		},
		Routing: [][]float64{
			{0, 0.3}, // 30% of CPU completions need the disk
			{0, 0},
		},
		Arrivals: []float64{60, 0},
	}
	a, err := n.Solve()
	if err != nil {
		panic(err)
	}
	fmt.Printf("cpu utilization:  %.2f\n", a.Utilizations[0])
	fmt.Printf("disk utilization: %.2f\n", a.Utilizations[1])
	fmt.Printf("bottleneck: %s\n", n.Stations[a.Bottleneck].Name)
	fmt.Printf("mean response time: %.1f ms\n", a.ResponseTime*1000)

	cap, _ := n.Capacity()
	fmt.Printf("saturation throughput: %.1f jobs/s\n", cap*60)
	// Output:
	// cpu utilization:  0.60
	// disk utilization: 0.72
	// bottleneck: disk
	// mean response time: 67.9 ms
	// saturation throughput: 83.3 jobs/s
}

// A closed system: 10 clients cycling through a CPU and a disk with 1 s of
// think time — the window-based saturation methodology, solved exactly.
func ExampleClosedNetwork_MVA() {
	c := &qnet.ClosedNetwork{
		Demands:   []float64{0.040, 0.030}, // CPU, disk seconds per request
		ThinkTime: 1,
	}
	r, err := c.MVA(10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput: %.2f req/s\n", r.Throughput)
	fmt.Printf("response time: %.0f ms\n", r.ResponseTime*1000)
	fmt.Printf("cpu utilization: %.2f\n", r.Utilizations[0])
	// Output:
	// throughput: 9.11 req/s
	// response time: 98 ms
	// cpu utilization: 0.36
}
