package qnet

import (
	"fmt"
	"math"
)

// ClosedNetwork is a product-form closed queueing network analyzed by
// exact Mean Value Analysis: a fixed population of customers cycles
// through queueing stations (single-server FCFS) and an optional delay
// (think-time) station. This is the analytic counterpart of the
// simulator's saturation methodology, where a fixed window of outstanding
// connections plays the customer population.
type ClosedNetwork struct {
	// Demands[i] is station i's total service demand per cycle (visit
	// ratio times service time), in seconds.
	Demands []float64
	// Servers[i] is the number of identical servers at station i (0 or 1
	// means one; values above 1 use the standard demand-scaling
	// approximation D/m with an m-fold queue).
	Servers []int
	// ThinkTime is the delay-station demand per cycle (no queueing).
	ThinkTime float64
}

// MVAResult is the steady state at one population size.
type MVAResult struct {
	Customers    int
	Throughput   float64   // cycles (requests) per second
	ResponseTime float64   // time per cycle excluding think time
	QueueLengths []float64 // mean customers at each station
	Utilizations []float64 // per-station utilization
	Bottleneck   int
}

// MVA runs exact Mean Value Analysis for populations 1..n and returns the
// result at population n.
func (c *ClosedNetwork) MVA(n int) (MVAResult, error) {
	results, err := c.MVASweep(n)
	if err != nil {
		return MVAResult{}, err
	}
	return results[len(results)-1], nil
}

// MVASweep runs exact MVA and returns results for every population
// 1..n — the throughput-versus-window curve in one recursion.
func (c *ClosedNetwork) MVASweep(n int) ([]MVAResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("qnet: MVA needs at least one customer, got %d", n)
	}
	if len(c.Demands) == 0 {
		return nil, fmt.Errorf("qnet: MVA needs at least one station")
	}
	if c.ThinkTime < 0 {
		return nil, fmt.Errorf("qnet: negative think time %v", c.ThinkTime)
	}
	k := len(c.Demands)
	demands := make([]float64, k)
	servers := make([]float64, k)
	for i, d := range c.Demands {
		if d < 0 {
			return nil, fmt.Errorf("qnet: negative demand %v at station %d", d, i)
		}
		demands[i] = d
		servers[i] = 1
		if i < len(c.Servers) && c.Servers[i] > 1 {
			servers[i] = float64(c.Servers[i])
		}
	}

	queue := make([]float64, k) // Q_i(n-1), starts at population 0
	out := make([]MVAResult, 0, n)
	for pop := 1; pop <= n; pop++ {
		r := MVAResult{
			Customers:    pop,
			QueueLengths: make([]float64, k),
			Utilizations: make([]float64, k),
		}
		var total float64
		resid := make([]float64, k)
		for i := 0; i < k; i++ {
			// Multi-server stations use the demand-scaling approximation:
			// effective per-server demand with queueing among m servers.
			d := demands[i] / servers[i]
			resid[i] = d * (1 + queue[i])
			total += resid[i]
		}
		r.ResponseTime = total
		r.Throughput = float64(pop) / (c.ThinkTime + total)
		best := -1.0
		for i := 0; i < k; i++ {
			queue[i] = r.Throughput * resid[i]
			r.QueueLengths[i] = queue[i]
			u := r.Throughput * demands[i] / servers[i]
			r.Utilizations[i] = u
			if u > best {
				best = u
				r.Bottleneck = i
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// AsymptoticBounds returns the classic balanced-job bounds on closed
// throughput: X(n) <= min(n/(Z + sum D), 1/Dmax), useful as a sanity
// envelope around the MVA recursion.
func (c *ClosedNetwork) AsymptoticBounds(n int) (upper float64) {
	var sum, dmax float64
	for i, d := range c.Demands {
		eff := d
		if i < len(c.Servers) && c.Servers[i] > 1 {
			eff = d / float64(c.Servers[i])
		}
		sum += d
		if eff > dmax {
			dmax = eff
		}
	}
	if dmax == 0 {
		return math.Inf(1)
	}
	light := float64(n) / (c.ThinkTime + sum)
	heavy := 1 / dmax
	if light < heavy {
		return light
	}
	return heavy
}
