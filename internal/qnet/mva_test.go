package qnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMVASingleStationSingleCustomer(t *testing.T) {
	c := &ClosedNetwork{Demands: []float64{0.1}}
	r, err := c.MVA(1)
	if err != nil {
		t.Fatal(err)
	}
	// One customer, one station: X = 1/D, R = D, Q = 1.
	if math.Abs(r.Throughput-10) > 1e-12 {
		t.Fatalf("X = %v, want 10", r.Throughput)
	}
	if math.Abs(r.ResponseTime-0.1) > 1e-12 {
		t.Fatalf("R = %v, want 0.1", r.ResponseTime)
	}
	if math.Abs(r.QueueLengths[0]-1) > 1e-12 {
		t.Fatalf("Q = %v, want 1", r.QueueLengths[0])
	}
}

func TestMVASingleStationSaturates(t *testing.T) {
	c := &ClosedNetwork{Demands: []float64{0.1}}
	r, err := c.MVA(50)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy population: X -> 1/D = 10, utilization -> 1.
	if math.Abs(r.Throughput-10) > 1e-9 {
		t.Fatalf("X = %v, want 10", r.Throughput)
	}
	if math.Abs(r.Utilizations[0]-1) > 1e-9 {
		t.Fatalf("rho = %v, want 1", r.Utilizations[0])
	}
}

func TestMVAKnownTwoStation(t *testing.T) {
	// Textbook: D1=0.2, D2=0.1, no think time.
	// n=1: R=0.3, X=3.333, Q1=2/3, Q2=1/3.
	// n=2: R1=0.2*(1+2/3)=1/3, R2=0.1*(4/3)=2/15, R=7/15, X=2/(7/15)=30/7.
	c := &ClosedNetwork{Demands: []float64{0.2, 0.1}}
	rs, err := c.MVASweep(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rs[0].Throughput-10.0/3.0) > 1e-12 {
		t.Fatalf("X(1) = %v, want 10/3", rs[0].Throughput)
	}
	if math.Abs(rs[1].Throughput-30.0/7.0) > 1e-12 {
		t.Fatalf("X(2) = %v, want 30/7", rs[1].Throughput)
	}
	if rs[1].Bottleneck != 0 {
		t.Fatalf("bottleneck = %d, want the 0.2s station", rs[1].Bottleneck)
	}
}

func TestMVAThinkTime(t *testing.T) {
	// Interactive system: N=1, Z=1s, D=0.1 -> X = 1/1.1.
	c := &ClosedNetwork{Demands: []float64{0.1}, ThinkTime: 1}
	r, err := c.MVA(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Throughput-1/1.1) > 1e-12 {
		t.Fatalf("X = %v, want %v", r.Throughput, 1/1.1)
	}
}

func TestMVAErrors(t *testing.T) {
	if _, err := (&ClosedNetwork{Demands: []float64{0.1}}).MVA(0); err == nil {
		t.Fatal("zero customers accepted")
	}
	if _, err := (&ClosedNetwork{}).MVA(1); err == nil {
		t.Fatal("no stations accepted")
	}
	if _, err := (&ClosedNetwork{Demands: []float64{-1}}).MVA(1); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, err := (&ClosedNetwork{Demands: []float64{1}, ThinkTime: -1}).MVA(1); err == nil {
		t.Fatal("negative think time accepted")
	}
}

// Property: MVA throughput is increasing in population, never exceeds the
// asymptotic bounds, and Little's law holds (sum of queue lengths plus
// thinking customers equals the population).
func TestPropertyMVAInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		c := &ClosedNetwork{
			Demands:   make([]float64, k),
			ThinkTime: rng.Float64(),
		}
		for i := range c.Demands {
			c.Demands[i] = 0.01 + rng.Float64()*0.5
		}
		n := 1 + rng.Intn(30)
		rs, err := c.MVASweep(n)
		if err != nil {
			return false
		}
		prev := 0.0
		for _, r := range rs {
			if r.Throughput < prev-1e-12 {
				return false
			}
			prev = r.Throughput
			if r.Throughput > c.AsymptoticBounds(r.Customers)+1e-9 {
				return false
			}
			var q float64
			for _, v := range r.QueueLengths {
				q += v
			}
			thinking := r.Throughput * c.ThinkTime
			if math.Abs(q+thinking-float64(r.Customers)) > 1e-6 {
				return false
			}
			for _, u := range r.Utilizations {
				if u < 0 || u > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// MVA must converge, as population grows, to the open network's capacity
// for the same demands — the saturation bound of the paper's model.
func TestMVAConvergesToOpenCapacity(t *testing.T) {
	demands := []float64{0.004, 0.002, 0.0005}
	closed := &ClosedNetwork{Demands: demands}
	r, err := closed.MVA(200)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / 0.004 // bottleneck capacity
	if math.Abs(r.Throughput-want)/want > 0.01 {
		t.Fatalf("X(200) = %v, want about %v", r.Throughput, want)
	}
}
