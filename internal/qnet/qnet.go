// Package qnet solves open Jackson networks of M/M/m queues: the general
// form of the "system of equations" the paper's Section 3 model
// instantiates for its cluster (Figure 2). It computes per-station flows
// from the traffic equations, utilizations, mean queue lengths and
// response times, the network's bottleneck, and its capacity (the largest
// scaling of the external arrivals that keeps every station stable) — the
// quantity the paper uses as its throughput bound.
package qnet

import (
	"fmt"
	"math"
)

// Station is one service center: an M/M/m queue.
type Station struct {
	Name    string
	Rate    float64 // service rate mu per server, jobs/second
	Servers int     // number of identical servers (0 means 1)
}

// Network is an open Jackson network.
type Network struct {
	Stations []Station

	// Routing[i][j] is the probability that a job completing service at
	// station i proceeds to station j; the remainder, 1 - sum_j, leaves
	// the network.
	Routing [][]float64

	// Arrivals[i] is the external (Poisson) arrival rate into station i.
	Arrivals []float64
}

// Validate checks the network's shape and stochastic constraints.
func (n *Network) Validate() error {
	k := len(n.Stations)
	if k == 0 {
		return fmt.Errorf("qnet: no stations")
	}
	if len(n.Routing) != k || len(n.Arrivals) != k {
		return fmt.Errorf("qnet: routing (%d) and arrivals (%d) must match %d stations",
			len(n.Routing), len(n.Arrivals), k)
	}
	for i, s := range n.Stations {
		if s.Rate <= 0 {
			return fmt.Errorf("qnet: station %d (%s) has non-positive rate", i, s.Name)
		}
		if s.Servers < 0 {
			return fmt.Errorf("qnet: station %d (%s) has negative servers", i, s.Name)
		}
		if len(n.Routing[i]) != k {
			return fmt.Errorf("qnet: routing row %d has %d entries, want %d", i, len(n.Routing[i]), k)
		}
		var rowSum float64
		for j, p := range n.Routing[i] {
			if p < 0 || p > 1 {
				return fmt.Errorf("qnet: routing[%d][%d] = %v outside [0,1]", i, j, p)
			}
			rowSum += p
		}
		if rowSum > 1+1e-9 {
			return fmt.Errorf("qnet: routing row %d sums to %v > 1", i, rowSum)
		}
		if n.Arrivals[i] < 0 {
			return fmt.Errorf("qnet: negative arrival rate at station %d", i)
		}
	}
	return nil
}

func (n *Network) servers(i int) int {
	if n.Stations[i].Servers <= 0 {
		return 1
	}
	return n.Stations[i].Servers
}

// Flows solves the traffic equations
//
//	lambda_j = a_j + sum_i lambda_i * Routing[i][j]
//
// by Gaussian elimination on (I - R^T) lambda = a, returning the total
// arrival rate into each station.
func (n *Network) Flows() ([]float64, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	k := len(n.Stations)
	// Build the augmented matrix for (I - R^T) lambda = a.
	m := make([][]float64, k)
	for i := 0; i < k; i++ {
		m[i] = make([]float64, k+1)
		for j := 0; j < k; j++ {
			v := -n.Routing[j][i] // transpose
			if i == j {
				v += 1
			}
			m[i][j] = v
		}
		m[i][k] = n.Arrivals[i]
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("qnet: traffic equations are singular (recurrent routing with no exit?)")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < k; r++ {
			factor := m[r][col] / m[col][col]
			for c := col; c <= k; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	flows := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		v := m[i][k]
		for j := i + 1; j < k; j++ {
			v -= m[i][j] * flows[j]
		}
		flows[i] = v / m[i][i]
		if flows[i] < -1e-9 {
			return nil, fmt.Errorf("qnet: negative flow %v at station %d", flows[i], i)
		}
		if flows[i] < 0 {
			flows[i] = 0
		}
	}
	return flows, nil
}

// Analysis is the steady-state solution of the network.
type Analysis struct {
	Flows        []float64 // total arrival rate per station
	Utilizations []float64 // rho per station (per server)
	MeanJobs     []float64 // L per station
	Residence    []float64 // W per station (time per visit)
	Stable       bool
	Bottleneck   int     // station with the highest utilization
	ResponseTime float64 // mean time in network per external job (if stable)
	Throughput   float64 // total external arrival rate
}

// Solve computes the steady state. Unstable networks (any rho >= 1)
// return Stable=false with utilizations filled in and the queue-dependent
// quantities set to +Inf.
func (n *Network) Solve() (Analysis, error) {
	flows, err := n.Flows()
	if err != nil {
		return Analysis{}, err
	}
	k := len(n.Stations)
	a := Analysis{
		Flows:        flows,
		Utilizations: make([]float64, k),
		MeanJobs:     make([]float64, k),
		Residence:    make([]float64, k),
		Stable:       true,
	}
	var totalExternal, totalJobs float64
	for _, v := range n.Arrivals {
		totalExternal += v
	}
	a.Throughput = totalExternal
	best := -1.0
	for i := 0; i < k; i++ {
		m := float64(n.servers(i))
		rho := flows[i] / (n.Stations[i].Rate * m)
		a.Utilizations[i] = rho
		if rho > best {
			best = rho
			a.Bottleneck = i
		}
		if rho >= 1 {
			a.Stable = false
			a.MeanJobs[i] = math.Inf(1)
			a.Residence[i] = math.Inf(1)
			continue
		}
		// M/M/m mean jobs: m*rho + C(m, m*rho) * rho/(1-rho), with C the
		// Erlang-C waiting probability.
		c := erlangC(n.servers(i), flows[i]/n.Stations[i].Rate)
		l := m*rho + c*rho/(1-rho)
		a.MeanJobs[i] = l
		if flows[i] > 0 {
			a.Residence[i] = l / flows[i] // Little's law per station
		}
		totalJobs += l
	}
	if a.Stable && totalExternal > 0 {
		a.ResponseTime = totalJobs / totalExternal // Little's law, network-wide
	} else if !a.Stable {
		a.ResponseTime = math.Inf(1)
	}
	return a, nil
}

// erlangC returns the probability a job waits in an M/M/m queue with
// offered load u = lambda/mu (in Erlangs).
func erlangC(m int, u float64) float64 {
	if m == 1 {
		return u // for M/M/1, P(wait) = rho
	}
	rho := u / float64(m)
	if rho >= 1 {
		return 1
	}
	// Sum_{k=0}^{m-1} u^k/k! and u^m/m!.
	term := 1.0
	var sum float64
	for k := 0; k < m; k++ {
		sum += term
		term *= u / float64(k+1)
	}
	top := term / (1 - rho) // u^m/m! / (1-rho)
	return top / (sum + top)
}

// Capacity returns the largest factor by which the external arrivals can
// be scaled while every station stays strictly stable — the network's
// saturation throughput is Capacity() * sum(Arrivals). This is the
// generalization of the paper's throughput bound.
func (n *Network) Capacity() (float64, error) {
	flows, err := n.Flows()
	if err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for i, f := range flows {
		if f <= 0 {
			continue
		}
		cap := n.Stations[i].Rate * float64(n.servers(i)) / f
		if cap < best {
			best = cap
		}
	}
	return best, nil
}
