package qnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mm1 builds a single M/M/1 queue.
func mm1(lambda, mu float64) *Network {
	return &Network{
		Stations: []Station{{Name: "q", Rate: mu}},
		Routing:  [][]float64{{0}},
		Arrivals: []float64{lambda},
	}
}

func TestMM1ClosedForm(t *testing.T) {
	a, err := mm1(0.5, 1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Stable {
		t.Fatal("rho=0.5 must be stable")
	}
	if math.Abs(a.Utilizations[0]-0.5) > 1e-12 {
		t.Fatalf("rho = %v, want 0.5", a.Utilizations[0])
	}
	// L = rho/(1-rho) = 1, W = 1/(mu-lambda) = 2.
	if math.Abs(a.MeanJobs[0]-1) > 1e-12 {
		t.Fatalf("L = %v, want 1", a.MeanJobs[0])
	}
	if math.Abs(a.ResponseTime-2) > 1e-12 {
		t.Fatalf("W = %v, want 2", a.ResponseTime)
	}
}

func TestMM1Unstable(t *testing.T) {
	a, err := mm1(2, 1).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Stable {
		t.Fatal("rho=2 must be unstable")
	}
	if !math.IsInf(a.ResponseTime, 1) {
		t.Fatal("unstable response time must be +Inf")
	}
}

func TestTandemQueues(t *testing.T) {
	// Two M/M/1 stations in series: W = 1/(mu1-l) + 1/(mu2-l).
	n := &Network{
		Stations: []Station{{Name: "a", Rate: 2}, {Name: "b", Rate: 3}},
		Routing:  [][]float64{{0, 1}, {0, 0}},
		Arrivals: []float64{1, 0},
	}
	a, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Flows[1]-1) > 1e-12 {
		t.Fatalf("downstream flow = %v, want 1", a.Flows[1])
	}
	want := 1/(2.0-1) + 1/(3.0-1)
	if math.Abs(a.ResponseTime-want) > 1e-12 {
		t.Fatalf("W = %v, want %v", a.ResponseTime, want)
	}
	if a.Bottleneck != 0 {
		t.Fatalf("bottleneck = %d, want the slower station 0", a.Bottleneck)
	}
}

func TestFeedbackQueue(t *testing.T) {
	// M/M/1 with probability p of rejoining: effective lambda = a/(1-p).
	p := 0.25
	n := &Network{
		Stations: []Station{{Name: "q", Rate: 4}},
		Routing:  [][]float64{{p}},
		Arrivals: []float64{1.5},
	}
	flows, err := n.Flows()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.5 / (1 - p); math.Abs(flows[0]-want) > 1e-9 {
		t.Fatalf("flow = %v, want %v", flows[0], want)
	}
}

func TestJacksonTwoStation(t *testing.T) {
	// A classic textbook example: two stations with cross routing.
	n := &Network{
		Stations: []Station{{Name: "cpu", Rate: 10}, {Name: "io", Rate: 5}},
		Routing: [][]float64{
			{0, 0.5}, // half the CPU completions go to IO
			{0.4, 0}, // 40% of IO completions return to CPU
		},
		Arrivals: []float64{2, 0},
	}
	flows, err := n.Flows()
	if err != nil {
		t.Fatal(err)
	}
	// lambda_cpu = 2 + 0.4*lambda_io; lambda_io = 0.5*lambda_cpu
	// => lambda_cpu = 2 / (1 - 0.2) = 2.5, lambda_io = 1.25.
	if math.Abs(flows[0]-2.5) > 1e-9 || math.Abs(flows[1]-1.25) > 1e-9 {
		t.Fatalf("flows = %v, want [2.5 1.25]", flows)
	}
}

func TestMMmErlang(t *testing.T) {
	// M/M/2 with lambda=1, mu=1: rho=0.5. Known closed form:
	// P(wait) = C(2,1) = (u^2/2!)/((1-rho)*(1+u) + u^2/2!) with u=1:
	// = 0.5/(0.5*2 + 0.5) = 1/3; L = 2*0.5 + (1/3)*0.5/0.5 = 4/3.
	n := &Network{
		Stations: []Station{{Name: "q", Rate: 1, Servers: 2}},
		Routing:  [][]float64{{0}},
		Arrivals: []float64{1},
	}
	a, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MeanJobs[0]-4.0/3.0) > 1e-9 {
		t.Fatalf("M/M/2 L = %v, want 4/3", a.MeanJobs[0])
	}
}

func TestCapacity(t *testing.T) {
	// Tandem: bottleneck is the slower station; capacity scales arrivals
	// until it saturates.
	n := &Network{
		Stations: []Station{{Name: "a", Rate: 2}, {Name: "b", Rate: 3}},
		Routing:  [][]float64{{0, 1}, {0, 0}},
		Arrivals: []float64{1, 0},
	}
	c, err := n.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-2) > 1e-12 {
		t.Fatalf("capacity factor = %v, want 2 (saturating station a)", c)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []*Network{
		{}, // no stations
		{Stations: []Station{{Rate: 1}}, Routing: [][]float64{{0}}, Arrivals: nil},
		{Stations: []Station{{Rate: 0}}, Routing: [][]float64{{0}}, Arrivals: []float64{1}},
		{Stations: []Station{{Rate: 1}}, Routing: [][]float64{{1.5}}, Arrivals: []float64{1}},
		{Stations: []Station{{Rate: 1}}, Routing: [][]float64{{-0.1}}, Arrivals: []float64{1}},
		{Stations: []Station{{Rate: 1}}, Routing: [][]float64{{0}}, Arrivals: []float64{-1}},
		{Stations: []Station{{Rate: 1, Servers: -1}}, Routing: [][]float64{{0}}, Arrivals: []float64{1}},
	}
	for i, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestSingularRouting(t *testing.T) {
	// A job that never leaves: lambda has no finite solution.
	n := &Network{
		Stations: []Station{{Rate: 1}},
		Routing:  [][]float64{{1}},
		Arrivals: []float64{1},
	}
	if _, err := n.Flows(); err == nil {
		t.Fatal("recurrent routing should be rejected")
	}
}

// Property: for random feed-forward networks, flows are nonnegative and
// Little's law holds network-wide (ResponseTime * Throughput = total mean
// jobs) whenever the network is stable.
func TestPropertyLittlesLaw(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		n := &Network{
			Stations: make([]Station, k),
			Routing:  make([][]float64, k),
			Arrivals: make([]float64, k),
		}
		for i := 0; i < k; i++ {
			n.Stations[i] = Station{Rate: 5 + rng.Float64()*10, Servers: 1 + rng.Intn(2)}
			n.Routing[i] = make([]float64, k)
			// Feed-forward: route only to higher-numbered stations.
			budget := 0.9
			for j := i + 1; j < k; j++ {
				p := rng.Float64() * budget / float64(k)
				n.Routing[i][j] = p
				budget -= p
			}
			n.Arrivals[i] = rng.Float64()
		}
		a, err := n.Solve()
		if err != nil {
			return false
		}
		if !a.Stable {
			return true // nothing to check
		}
		var totalJobs float64
		for _, l := range a.MeanJobs {
			totalJobs += l
		}
		return math.Abs(a.ResponseTime*a.Throughput-totalJobs) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: capacity is exactly the scale at which the bottleneck hits
// utilization 1: scaling arrivals by capacity*(1-eps) stays stable and by
// capacity*(1+eps) does not.
func TestPropertyCapacityIsCritical(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := &Network{
			Stations: []Station{
				{Rate: 1 + rng.Float64()*5},
				{Rate: 1 + rng.Float64()*5},
			},
			Routing:  [][]float64{{0, rng.Float64() * 0.9}, {0, 0}},
			Arrivals: []float64{0.1 + rng.Float64(), rng.Float64() * 0.5},
		}
		c, err := n.Capacity()
		if err != nil {
			return false
		}
		scale := func(f float64) *Network {
			cp := *n
			cp.Arrivals = []float64{n.Arrivals[0] * f, n.Arrivals[1] * f}
			return &cp
		}
		under, err1 := scale(c * 0.999).Solve()
		over, err2 := scale(c * 1.001).Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		return under.Stable && !over.Stable
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
