package native

import (
	"sync"
	"time"
)

// Options are the L2S parameters of the native server, mirroring
// core.Options with wall-clock durations.
type Options struct {
	T              int           // overload threshold (open requests)
	LowT           int           // underload threshold for set shrinking
	BroadcastDelta int           // load drift triggering a gossip broadcast
	ShrinkAfter    time.Duration // server-set stability window
}

// DefaultOptions returns the paper's parameters (T=20, t=10, delta=4) with
// a shrink window suited to live traffic.
func DefaultOptions() Options {
	return Options{T: 20, LowT: 10, BroadcastDelta: 4, ShrinkAfter: 20 * time.Second}
}

// state is one node's replica of the cluster's distribution state: its
// view of every node's load (its own is authoritative, the others are the
// last gossiped values) and its replica of the per-file server sets.
// It implements the L2S decision rules of Section 4.
type state struct {
	mu   sync.Mutex
	self int
	n    int
	opts Options

	loads    []int // loads[self] authoritative, others gossiped
	lastSent int   // own load at the last broadcast

	sets map[string]*fileSet

	now func() time.Time // injectable clock for tests
}

type fileSet struct {
	nodes    []int
	modified time.Time
	version  uint64
}

// update renders the set as a gossipable full-state message.
func (f *fileSet) update(path string) *SetUpdate {
	return &SetUpdate{Path: path, Nodes: append([]int(nil), f.nodes...), Version: f.version}
}

func newState(self, n int, opts Options) *state {
	return &state{
		self:  self,
		n:     n,
		opts:  opts,
		loads: make([]int, n),
		sets:  make(map[string]*fileSet),
		now:   time.Now,
	}
}

// decision is the outcome of running the distribution algorithm for one
// request at this node.
type decision struct {
	Service int // node that must serve the request

	// Set changes to gossip (nil when the set was untouched).
	SetChanged *SetUpdate
}

// decide runs the L2S algorithm for a request for path, given the set of
// currently live nodes. It mutates the local server-set replica and
// reports any change that must be gossiped.
func (s *state) decide(path string, alive func(int) bool) decision {
	s.mu.Lock()
	defer s.mu.Unlock()

	load := func(n int) int { return s.loads[n] }
	overloaded := func(n int) bool { return load(n) > s.opts.T }

	set := s.sets[path]
	dirty := false
	if set != nil && len(set.nodes) > 0 {
		// Repair: evict members this replica believes are dead, so traffic
		// stops flowing at crashed nodes and the change gossips outward.
		if kept := keepAlive(set.nodes, alive); len(kept) != len(set.nodes) {
			set.nodes = kept
			set.modified = s.now()
			set.version++
			dirty = true
		}
	}

	if set == nil || len(set.nodes) == 0 {
		var base uint64
		if set != nil {
			base = set.version
		}
		svc := s.self
		if overloaded(s.self) || !alive(s.self) {
			if m := argminAlive(s.n, load, alive); m >= 0 {
				svc = m
			}
		}
		set = &fileSet{nodes: []int{svc}, modified: s.now(), version: base + 1}
		s.sets[path] = set
		return decision{Service: svc, SetChanged: set.update(path)}
	}

	var svc int
	switch {
	case contains(set.nodes, s.self) && !overloaded(s.self) && alive(s.self):
		svc = s.self
	default:
		n := argminMember(set.nodes, load, alive)
		if overloaded(s.self) && overloaded(n) {
			if m := argminAlive(s.n, load, alive); m >= 0 && !contains(set.nodes, m) {
				set.nodes = append(set.nodes, m)
				set.modified = s.now()
				set.version++
				dirty = true
				n = m
			}
		}
		svc = n
	}

	if len(set.nodes) > 1 && load(svc) < s.opts.LowT &&
		s.now().Sub(set.modified) > s.opts.ShrinkAfter {
		removeMostLoaded(set, svc, load)
		set.modified = s.now()
		set.version++
		dirty = true
	}
	var changed *SetUpdate
	if dirty {
		changed = set.update(path)
	}
	return decision{Service: svc, SetChanged: changed}
}

// setLocalLoad records this node's own load and reports whether the drift
// since the last broadcast reached the gossip threshold (in which case the
// caller must broadcast and the baseline resets).
func (s *state) setLocalLoad(v int) (broadcast bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads[s.self] = v
	drift := v - s.lastSent
	if drift < 0 {
		drift = -drift
	}
	if drift >= s.opts.BroadcastDelta {
		s.lastSent = v
		return true
	}
	return false
}

// applyLoad installs a gossiped load value for a peer.
func (s *state) applyLoad(node, load int) {
	if node < 0 || node >= s.n || node == s.self {
		return
	}
	s.mu.Lock()
	s.loads[node] = load
	s.mu.Unlock()
}

// applySet installs a gossiped server-set replica. Replicas carry a
// version; an incoming update wins only when its version is newer, or when
// versions tie and its member list orders strictly higher (a deterministic
// tie-break, so concurrent same-version writers converge on one value).
// An empty member list is a tombstone: the next decision for the path
// rebuilds the set at a higher version.
func (s *state) applySet(u SetUpdate) {
	if u.Path == "" {
		return
	}
	for _, n := range u.Nodes {
		if n < 0 || n >= s.n {
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur := s.sets[u.Path]; cur != nil {
		if u.Version < cur.version {
			return
		}
		if u.Version == cur.version && cmpNodes(u.Nodes, cur.nodes) <= 0 {
			return
		}
	}
	s.sets[u.Path] = &fileSet{
		nodes:    append([]int(nil), u.Nodes...),
		modified: s.now(),
		version:  u.Version,
	}
}

// evictNode removes a (now dead) node from every server set, bumping each
// touched set's version so the repair wins over stale replicas elsewhere.
// It returns the surviving non-empty sets that changed, for gossiping.
func (s *state) evictNode(dead int) []SetUpdate {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []SetUpdate
	for path, set := range s.sets {
		if !contains(set.nodes, dead) {
			continue
		}
		kept := make([]int, 0, len(set.nodes)-1)
		for _, n := range set.nodes {
			if n != dead {
				kept = append(kept, n)
			}
		}
		set.nodes = kept
		set.modified = s.now()
		set.version++
		if len(kept) > 0 {
			out = append(out, *set.update(path))
		}
	}
	return out
}

// exportSets snapshots every server set for anti-entropy sync, tombstones
// (emptied sets awaiting a rebuild) included — a tombstone must propagate,
// or a replica holding one at a high version would reject peers' live sets
// forever while never sharing its own.
func (s *state) exportSets() []SetUpdate {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SetUpdate, 0, len(s.sets))
	for path, set := range s.sets {
		out = append(out, *set.update(path))
	}
	return out
}

// serverSet returns a copy of the replica's set for a path.
func (s *state) serverSet(path string) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.sets[path]
	if set == nil {
		return nil
	}
	return append([]int(nil), set.nodes...)
}

// viewLoad returns this replica's view of a node's load.
func (s *state) viewLoad(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads[n]
}

// keepAlive filters a member list down to the nodes alive believes in; it
// returns the input slice unchanged when nothing was filtered.
func keepAlive(nodes []int, alive func(int) bool) []int {
	for i, n := range nodes {
		if !alive(n) {
			kept := append([]int(nil), nodes[:i]...)
			for _, m := range nodes[i+1:] {
				if alive(m) {
					kept = append(kept, m)
				}
			}
			return kept
		}
	}
	return nodes
}

// cmpNodes totally orders member lists (by length, then elementwise) so
// same-version replicas can tie-break deterministically.
func cmpNodes(a, b []int) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

func contains(nodes []int, n int) bool {
	for _, v := range nodes {
		if v == n {
			return true
		}
	}
	return false
}

func argminAlive(n int, load func(int) int, alive func(int) bool) int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for i := 0; i < n; i++ {
		if !alive(i) {
			continue
		}
		if l := load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

func argminMember(nodes []int, load func(int) int, alive func(int) bool) int {
	best, bestLoad := -1, int(^uint(0)>>1)
	for _, n := range nodes {
		if !alive(n) {
			continue
		}
		if l := load(n); l < bestLoad {
			best, bestLoad = n, l
		}
	}
	if best < 0 {
		return nodes[0]
	}
	return best
}

func removeMostLoaded(set *fileSet, keep int, load func(int) int) {
	worst, worstLoad, at := -1, -1, -1
	for i, n := range set.nodes {
		if n == keep {
			continue
		}
		if l := load(n); l > worstLoad {
			worst, worstLoad, at = n, l, i
		}
	}
	if worst >= 0 {
		set.nodes = append(set.nodes[:at], set.nodes[at+1:]...)
	}
}
