// Functional-option construction for the live cluster, mirroring the
// simulator's server.NewConfig: native.Start(native.WithNodes(4),
// native.WithStore(st), ...). Options validate eagerly and Start returns
// the first error instead of silently substituting defaults.
package native

import (
	"errors"
	"fmt"
	"time"
)

// Option configures Start. Options validate their arguments; Start returns
// the first error.
type Option func(*clusterConfig) error

// clusterConfig is the resolved configuration Start builds nodes from.
type clusterConfig struct {
	nodes        int
	store        Store
	cacheBytes   int64
	l2s          Options
	missPenalty  time.Duration
	servePenalty time.Duration
	health       HealthOptions
	retry        RetryPolicy
	faults       *FaultInjector
	seed         int64
}

func defaultClusterConfig() clusterConfig {
	return clusterConfig{
		nodes:      1,
		cacheBytes: 32 << 20,
		l2s:        DefaultOptions(),
		health:     DefaultHealthOptions(),
		retry:      DefaultRetryPolicy(),
		seed:       1,
	}
}

// WithNodes sets the cluster size.
func WithNodes(n int) Option {
	return func(c *clusterConfig) error {
		if n < 1 {
			return fmt.Errorf("native: need at least one node, got %d", n)
		}
		c.nodes = n
		return nil
	}
}

// WithStore sets the backing content source (required).
func WithStore(s Store) Option {
	return func(c *clusterConfig) error {
		if s == nil {
			return errors.New("native: WithStore needs a non-nil store")
		}
		c.store = s
		return nil
	}
}

// WithCacheBytes sets the per-node main-memory cache capacity.
func WithCacheBytes(bytes int64) Option {
	return func(c *clusterConfig) error {
		if bytes <= 0 {
			return fmt.Errorf("native: cache capacity must be positive, got %d", bytes)
		}
		c.cacheBytes = bytes
		return nil
	}
}

// WithCacheMB sets the per-node cache capacity in megabytes.
func WithCacheMB(mb int64) Option {
	return func(c *clusterConfig) error {
		if mb <= 0 {
			return fmt.Errorf("native: cache capacity must be positive, got %d MB", mb)
		}
		c.cacheBytes = mb << 20
		return nil
	}
}

// WithThresholds sets the L2S overload threshold T and underload threshold
// t (the paper's Section 4 parameters).
func WithThresholds(T, lowT int) Option {
	return func(c *clusterConfig) error {
		if T <= 0 || lowT < 0 || lowT >= T {
			return fmt.Errorf("native: thresholds need T > t >= 0, got T=%d t=%d", T, lowT)
		}
		c.l2s.T, c.l2s.LowT = T, lowT
		return nil
	}
}

// WithBroadcastDelta sets the load drift that triggers a gossip broadcast.
func WithBroadcastDelta(d int) Option {
	return func(c *clusterConfig) error {
		if d < 1 {
			return fmt.Errorf("native: broadcast delta must be >= 1, got %d", d)
		}
		c.l2s.BroadcastDelta = d
		return nil
	}
}

// WithShrinkAfter sets the server-set stability window before shrinking.
func WithShrinkAfter(d time.Duration) Option {
	return func(c *clusterConfig) error {
		if d <= 0 {
			return fmt.Errorf("native: shrink window must be positive, got %v", d)
		}
		c.l2s.ShrinkAfter = d
		return nil
	}
}

// WithL2S replaces all L2S tunables at once.
func WithL2S(o Options) Option {
	return func(c *clusterConfig) error {
		if o.T <= 0 || o.LowT < 0 || o.LowT >= o.T {
			return fmt.Errorf("native: L2S options need T > t >= 0, got T=%d t=%d", o.T, o.LowT)
		}
		if o.BroadcastDelta < 1 {
			return fmt.Errorf("native: L2S options need BroadcastDelta >= 1, got %d", o.BroadcastDelta)
		}
		if o.ShrinkAfter <= 0 {
			return fmt.Errorf("native: L2S options need a positive ShrinkAfter, got %v", o.ShrinkAfter)
		}
		c.l2s = o
		return nil
	}
}

// WithMissPenalty sets the artificial per-miss disk delay.
func WithMissPenalty(d time.Duration) Option {
	return func(c *clusterConfig) error {
		if d < 0 {
			return fmt.Errorf("native: miss penalty must be >= 0, got %v", d)
		}
		c.missPenalty = d
		return nil
	}
}

// WithServePenalty sets the artificial per-serve transmit delay.
func WithServePenalty(d time.Duration) Option {
	return func(c *clusterConfig) error {
		if d < 0 {
			return fmt.Errorf("native: serve penalty must be >= 0, got %v", d)
		}
		c.servePenalty = d
		return nil
	}
}

// WithHealth replaces the failure-detection tuning.
func WithHealth(h HealthOptions) Option {
	return func(c *clusterConfig) error {
		if err := h.validate(); err != nil {
			return err
		}
		c.health = h
		return nil
	}
}

// WithRetry replaces the hand-off/control retry budget.
func WithRetry(r RetryPolicy) Option {
	return func(c *clusterConfig) error {
		if err := r.validate(); err != nil {
			return err
		}
		c.retry = r
		return nil
	}
}

// WithFaults wires a fault injector into every node's outbound transports.
func WithFaults(fi *FaultInjector) Option {
	return func(c *clusterConfig) error {
		if fi == nil {
			return errors.New("native: WithFaults needs a non-nil injector")
		}
		c.faults = fi
		return nil
	}
}

// WithSeed seeds backoff jitter deterministically (node i derives seed+i).
func WithSeed(seed int64) Option {
	return func(c *clusterConfig) error {
		if seed == 0 {
			return errors.New("native: seed must be non-zero")
		}
		c.seed = seed
		return nil
	}
}
