// Per-node observability: every native node owns an obs.Registry holding
// its request, cache, hand-off, and gossip counters — the same counters
// Stats always reported, re-homed onto the shared metrics layer — plus
// point-in-time gauges and a request-latency histogram. The registry is
// served in Prometheus text format at /metricsz, next to the pprof
// endpoints, so a running cluster can be scraped and profiled node by node.
package native

import (
	"io"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// RequestBuckets are the request_seconds histogram bounds, in seconds.
var RequestBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// nodeMetrics is one node's instrument set, all registered on reg.
type nodeMetrics struct {
	reg *obs.Registry

	served    *obs.Counter // requests served locally
	proxied   *obs.Counter // requests handed off to another node
	received  *obs.Counter // hand-offs served on behalf of others
	hits      *obs.Counter
	misses    *obs.Counter
	retries   *obs.Counter // hand-off delivery retries
	failovers *obs.Counter // hand-off failures served locally instead

	gossipSent    *obs.Counter
	gossipFailed  *obs.Counter
	gossipRetries *obs.Counter

	load      *obs.Gauge // open requests, refreshed at scrape time
	cacheUsed *obs.Gauge // cache bytes resident, refreshed at scrape time

	request *obs.Histogram // public request latency at this entry node
}

func newNodeMetrics() *nodeMetrics {
	reg := obs.NewRegistry()
	return &nodeMetrics{
		reg:           reg,
		served:        reg.Counter("requests_served_total"),
		proxied:       reg.Counter("requests_proxied_total"),
		received:      reg.Counter("handoffs_received_total"),
		hits:          reg.Counter("cache_hits_total"),
		misses:        reg.Counter("cache_misses_total"),
		retries:       reg.Counter("handoff_retries_total"),
		failovers:     reg.Counter("failovers_total"),
		gossipSent:    reg.Counter("gossip_sent_total"),
		gossipFailed:  reg.Counter("gossip_failed_total"),
		gossipRetries: reg.Counter("gossip_retries_total"),
		load:          reg.Gauge("load"),
		cacheUsed:     reg.Gauge("cache_used_bytes"),
		request:       reg.Histogram("request_seconds", RequestBuckets),
	}
}

// Metrics returns the node's metric registry (for tests and embedding in a
// larger process; HTTP scraping goes through /metricsz).
func (n *Node) Metrics() *obs.Registry { return n.metrics.reg }

// WriteMetrics writes the node's Prometheus text exposition. Gauges are
// refreshed first: they are point-in-time readings, so scrape time is the
// only time that matters.
func (n *Node) WriteMetrics(w io.Writer) error {
	n.metrics.load.Set(float64(n.Load()))
	n.metrics.cacheUsed.Set(float64(n.cache.used()))
	return n.metrics.reg.WritePrometheus(w)
}

// handleMetrics serves WriteMetrics at /metricsz.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = n.WriteMetrics(w)
}

// registerDebug mounts /metricsz and the standard pprof endpoints on the
// node's mux. The node serves on its own mux rather than
// http.DefaultServeMux, so the pprof handlers are wired explicitly.
func (n *Node) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("/metricsz", n.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
