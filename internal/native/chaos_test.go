package native

import (
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/trace"
)

// Fast failure detection + tight retry budget so chaos tests converge in
// well under a second of wall clock per phase.
func chaosHealth() HealthOptions {
	return HealthOptions{
		HeartbeatEvery: 20 * time.Millisecond,
		SyncEvery:      40 * time.Millisecond,
		SuspectAfter:   1,
		DeadAfter:      2,
	}
}

func chaosRetry() RetryPolicy {
	return RetryPolicy{Attempts: 2, Base: 2 * time.Millisecond, Max: 10 * time.Millisecond}
}

// setsExclude reports whether every server set known to the node avoids the
// given member, returning an offending path for diagnostics.
func setsExclude(n *Node, paths []string, member int) (bool, string) {
	for _, p := range paths {
		for _, m := range n.ServerSet(p) {
			if m == member {
				return false, p
			}
		}
	}
	return true, ""
}

// TestChaosKillNodeMidReplay is the acceptance drill: 1 of 4 nodes is
// crashed abruptly in the middle of a trace replay while 10% of gossip is
// being dropped on a seeded schedule. The replay must finish with zero
// client-visible errors, and at quiesce every survivor must consider the
// dead node dead and hold server sets naming live nodes only.
func TestChaosKillNodeMidReplay(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "chaos", Files: 120, AvgFileKB: 4, Requests: 4000,
		AvgReqKB: 3, Alpha: 1, Seed: 7,
	})
	fi := NewFaultInjector(42)
	if err := fi.SetDropRate(0.10); err != nil {
		t.Fatal(err)
	}
	c, err := Start(
		WithNodes(4),
		WithStore(StoreFromTrace(tr)),
		WithCacheMB(4),
		WithHealth(chaosHealth()),
		WithRetry(chaosRetry()),
		WithFaults(fi),
		WithSeed(7),
		WithServePenalty(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	const victim = 3
	done := make(chan struct{})
	var res ReplayResult
	var rerr error
	go func() {
		defer close(done)
		res, rerr = Replay(c, tr, 12)
	}()

	// Crash the victim while the replay is in full flight.
	time.Sleep(120 * time.Millisecond)
	if err := c.Stop(victim); err != nil {
		t.Error(err)
	}
	<-done
	if rerr != nil {
		t.Fatal(rerr)
	}
	if res.Errors != 0 {
		t.Fatalf("%d client-visible errors after node kill (want 0; %d completed, %d retries)",
			res.Errors, res.Completed, res.Retries)
	}
	if res.Completed != uint64(tr.NumRequests()) {
		t.Fatalf("completed %d of %d", res.Completed, tr.NumRequests())
	}
	if fi.Stats().Dropped == 0 {
		t.Fatal("fault schedule never dropped a message at 10% drop rate")
	}

	// Quiesce: every survivor marks the victim dead and repairs its sets.
	paths := c.cfg.store.Paths()
	deadline := time.Now().Add(8 * time.Second)
	for {
		converged := true
		var why string
		for i := 0; i < c.Len() && converged; i++ {
			if i == victim {
				continue
			}
			n := c.Node(i)
			if n.PeerHealth(victim) != PeerDead {
				converged, why = false, fmt.Sprintf("node %d has not marked %d dead", i, victim)
				continue
			}
			if ok, p := setsExclude(n, paths, victim); !ok {
				converged, why = false, fmt.Sprintf("node %d still routes %s to dead node %d", i, p, victim)
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reconverged: %s", why)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Fresh traffic is served by survivors only.
	for i := 0; i < 20; i++ {
		resp, err := http.Get(c.Node(0).cfg.Peers[0] + fmt.Sprintf("/files/f/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if by := resp.Header.Get("X-Served-By"); by == fmt.Sprint(victim) {
			t.Fatalf("dead node %d served a post-quiesce request", victim)
		}
	}
}

// TestChaosGossipDropDelayConverges drives traffic under a seeded schedule
// of dropped, delayed, and duplicated control messages, then stops the
// faults and asserts the cluster's replicated state converges: every load
// view drains to zero and every server-set replica agrees across nodes.
func TestChaosGossipDropDelayConverges(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "drops", Files: 64, AvgFileKB: 4, Requests: 900,
		AvgReqKB: 3, Alpha: 1, Seed: 11,
	})
	fi := NewFaultInjector(7)
	if err := fi.SetDropRate(0.25); err != nil {
		t.Fatal(err)
	}
	if err := fi.SetDelay(3*time.Millisecond, 0.3); err != nil {
		t.Fatal(err)
	}
	if err := fi.SetDupRate(0.1); err != nil {
		t.Fatal(err)
	}
	c, err := Start(
		WithNodes(3),
		WithStore(StoreFromTrace(tr)),
		WithCacheMB(2),
		WithHealth(chaosHealth()),
		WithRetry(chaosRetry()),
		WithFaults(fi),
		WithSeed(11),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	res, err := Replay(c, tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d client-visible errors under gossip faults (want 0)", res.Errors)
	}
	st := fi.Stats()
	if st.Dropped == 0 || st.Delayed == 0 {
		t.Fatalf("fault schedule barely fired: %+v", st)
	}

	// Faults cease; the cluster must reconverge on its own.
	fi.Stop()
	paths := c.cfg.store.Paths()
	deadline := time.Now().Add(8 * time.Second)
	for {
		why := converged(c, paths)
		if why == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state never converged after faults stopped: %s", why)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// converged checks full state agreement: all peers alive everywhere, every
// load view zero, and identical server-set replicas on every node. It
// returns "" on convergence, else a diagnostic.
func converged(c *Cluster, paths []string) string {
	for i := 0; i < c.Len(); i++ {
		n := c.Node(i)
		for j := 0; j < c.Len(); j++ {
			if i == j {
				continue
			}
			if n.PeerHealth(j) == PeerDead {
				return fmt.Sprintf("node %d still believes %d dead", i, j)
			}
			if l := n.state.viewLoad(j); l != 0 {
				return fmt.Sprintf("node %d sees load %d at idle node %d", i, l, j)
			}
		}
	}
	for _, p := range paths {
		ref := c.Node(0).ServerSet(p)
		for i := 1; i < c.Len(); i++ {
			got := c.Node(i).ServerSet(p)
			if len(got) != len(ref) {
				return fmt.Sprintf("set %s differs: node 0 %v vs node %d %v", p, ref, i, got)
			}
			for k := range got {
				if got[k] != ref[k] {
					return fmt.Sprintf("set %s differs: node 0 %v vs node %d %v", p, ref, i, got)
				}
			}
		}
	}
	return ""
}

// TestChaosCrashRecovery kills a node, lets the cluster reconverge, then
// restarts it and asserts the rejoin: peers mark it alive again, and
// anti-entropy rebuilds the newcomer's server-set replica so it routes
// requests like everyone else.
func TestChaosCrashRecovery(t *testing.T) {
	c, err := Start(
		WithNodes(3),
		WithStore(testStore(32)),
		WithCacheMB(1),
		WithHealth(chaosHealth()),
		WithRetry(chaosRetry()),
		WithSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	// Seed some server sets.
	for i := 0; i < 32; i++ {
		get(t, c.URLs()[i%3]+fmt.Sprintf("/files/f/%d", i))
	}

	const victim = 2
	if err := c.Stop(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "survivors never marked the victim dead", func() bool {
		return c.Node(0).PeerHealth(victim) == PeerDead && c.Node(1).PeerHealth(victim) == PeerDead
	})

	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "rejoined node never marked alive", func() bool {
		return c.Node(0).PeerHealth(victim) == PeerAlive && c.Node(1).PeerHealth(victim) == PeerAlive
	})
	// Anti-entropy must hand the newcomer a server-set replica.
	waitFor(t, 5*time.Second, "rejoined node never received state via anti-entropy", func() bool {
		for i := 0; i < 32; i++ {
			if len(c.Node(victim).ServerSet(fmt.Sprintf("/f/%d", i))) > 0 {
				return true
			}
		}
		return false
	})
	// And the newcomer serves traffic correctly.
	resp, body := get(t, c.URLs()[victim]+"/files/f/5")
	if resp.StatusCode != http.StatusOK || string(body) != "content-of-5" {
		t.Fatalf("rejoined node misserved: %d %q", resp.StatusCode, body)
	}
}

func waitFor(t *testing.T, d time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
