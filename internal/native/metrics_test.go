package native

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestMetricsEndpoint drives requests through a live cluster and scrapes
// every node's /metricsz: the exposition must parse under the strict
// Prometheus reader, carry the expected metric families, and agree with the
// node's own Snapshot counters.
func TestMetricsEndpoint(t *testing.T) {
	c := startTestCluster(t, 2, DefaultOptions())
	for i := 0; i < 20; i++ {
		resp, _ := get(t, c.URLs()[i%2]+fmt.Sprintf("/files/f/%d", i%8))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}

	var totalServed uint64
	for i := 0; i < 2; i++ {
		resp, body := get(t, c.URLs()[i]+"/metricsz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("node %d: /metricsz status %d", i, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("node %d: content type %q", i, ct)
		}
		scrape, err := obs.ParsePrometheus(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("node %d: exposition does not parse: %v\n%s", i, err, body)
		}
		for _, fam := range []string{
			"requests_served_total", "requests_proxied_total",
			"handoffs_received_total", "cache_hits_total", "cache_misses_total",
			"handoff_retries_total", "failovers_total",
			"gossip_sent_total", "gossip_failed_total", "gossip_retries_total",
			"load", "cache_used_bytes",
		} {
			if _, ok := scrape.Values[fam]; !ok {
				t.Errorf("node %d: missing metric %s", i, fam)
			}
		}
		if scrape.Types["request_seconds"] != "histogram" {
			t.Errorf("node %d: request_seconds type %q, want histogram",
				i, scrape.Types["request_seconds"])
		}
		snap := c.Node(i).Snapshot()
		if got := scrape.Values["requests_served_total"]; got != float64(snap.Served) {
			t.Errorf("node %d: scraped served %v, Snapshot says %d", i, got, snap.Served)
		}
		if got := scrape.Values["cache_hits_total"]; got != float64(snap.Hits) {
			t.Errorf("node %d: scraped hits %v, Snapshot says %d", i, got, snap.Hits)
		}
		totalServed += uint64(scrape.Values["requests_served_total"])
		if reqs := scrape.Values["request_seconds_count"]; reqs == 0 {
			t.Errorf("node %d: request_seconds histogram empty", i)
		}
	}
	// Every public request is served exactly once, wherever it lands.
	if totalServed != 20 {
		t.Errorf("cluster served %d requests in total, want 20", totalServed)
	}
}

// TestPprofEndpoints checks the profiling handlers are mounted on the
// node mux.
func TestPprofEndpoints(t *testing.T) {
	c := startTestCluster(t, 1, DefaultOptions())
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, _ := get(t, c.URLs()[0]+path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}
