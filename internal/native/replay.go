package native

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ReplayResult summarizes a trace replay against a live cluster.
type ReplayResult struct {
	Completed uint64
	Errors    uint64 // client-visible failures after all retries
	Retries   uint64 // transparent client-side retries (next DNS address)
	Wall      time.Duration
	Rate      float64 // completed requests per wall-clock second
}

// StoreFromTrace builds a MemStore whose files mirror a simulator trace's
// catalog: file id i becomes /f/<i> with the trace's size. Contents are
// synthetic bytes.
func StoreFromTrace(tr *trace.Trace) *MemStore {
	files := make(map[string][]byte, tr.NumFiles())
	for i, size := range tr.Sizes {
		body := make([]byte, size)
		for j := range body {
			body[j] = byte('a' + (i+j)%26)
		}
		files[fmt.Sprintf("/f/%d", i)] = body
	}
	return NewMemStore(files)
}

// Replay drives a trace's request stream through the live cluster with the
// given concurrency, entering round robin — the native-server analogue of
// the simulator's saturation methodology. Requests preserve the trace's
// order per worker (workers interleave).
func Replay(cluster *Cluster, tr *trace.Trace, concurrency int) (ReplayResult, error) {
	if concurrency < 1 {
		return ReplayResult{}, fmt.Errorf("native: replay needs concurrency >= 1")
	}
	if err := tr.Validate(); err != nil {
		return ReplayResult{}, err
	}
	start := time.Now()
	var idx, completed, errs, retried atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				i := idx.Add(1) - 1
				if i >= uint64(tr.NumRequests()) {
					return
				}
				path := fmt.Sprintf("/files/f/%d", tr.Requests[i])
				// A real client whose connection fails (or whose response is
				// truncated by a node crash) retries against the next address
				// round-robin DNS gave it. Retries walk the address list in
				// order so every node is tried before giving up; only a
				// request that fails at every address is a client-visible
				// error.
				urls := cluster.URLs()
				ok := false
				for attempt := 0; attempt <= len(urls); attempt++ {
					var url string
					if attempt == 0 {
						url = cluster.NextURL()
					} else {
						retried.Add(1)
						url = urls[(int(i)+attempt)%len(urls)]
					}
					resp, err := client.Get(url + path)
					if err != nil {
						continue
					}
					_, cerr := io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if cerr != nil || resp.StatusCode >= http.StatusInternalServerError {
						continue
					}
					ok = resp.StatusCode == http.StatusOK
					break
				}
				if ok {
					completed.Add(1)
				} else {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	res := ReplayResult{
		Completed: completed.Load(),
		Errors:    errs.Load(),
		Retries:   retried.Load(),
		Wall:      wall,
	}
	if wall > 0 {
		res.Rate = float64(res.Completed) / wall.Seconds()
	}
	return res, nil
}
