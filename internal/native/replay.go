package native

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ReplayResult summarizes a trace replay against a live cluster.
type ReplayResult struct {
	Completed uint64
	Errors    uint64
	Wall      time.Duration
	Rate      float64 // completed requests per wall-clock second
}

// StoreFromTrace builds a MemStore whose files mirror a simulator trace's
// catalog: file id i becomes /f/<i> with the trace's size. Contents are
// synthetic bytes.
func StoreFromTrace(tr *trace.Trace) *MemStore {
	files := make(map[string][]byte, tr.NumFiles())
	for i, size := range tr.Sizes {
		body := make([]byte, size)
		for j := range body {
			body[j] = byte('a' + (i+j)%26)
		}
		files[fmt.Sprintf("/f/%d", i)] = body
	}
	return NewMemStore(files)
}

// Replay drives a trace's request stream through the live cluster with the
// given concurrency, entering round robin — the native-server analogue of
// the simulator's saturation methodology. Requests preserve the trace's
// order per worker (workers interleave).
func Replay(cluster *Cluster, tr *trace.Trace, concurrency int) (ReplayResult, error) {
	if concurrency < 1 {
		return ReplayResult{}, fmt.Errorf("native: replay needs concurrency >= 1")
	}
	if err := tr.Validate(); err != nil {
		return ReplayResult{}, err
	}
	start := time.Now()
	var idx, completed, errs atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				i := idx.Add(1) - 1
				if i >= uint64(tr.NumRequests()) {
					return
				}
				url := fmt.Sprintf("%s/files/f/%d", cluster.NextURL(), tr.Requests[i])
				resp, err := client.Get(url)
				if err != nil {
					errs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					completed.Add(1)
				} else {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	res := ReplayResult{
		Completed: completed.Load(),
		Errors:    errs.Load(),
		Wall:      wall,
	}
	if wall > 0 {
		res.Rate = float64(res.Completed) / wall.Seconds()
	}
	return res, nil
}
