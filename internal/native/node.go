package native

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures one native node.
type Config struct {
	ID         int
	Peers      []string // base URLs indexed by node id (self included)
	Store      Store
	CacheBytes int64
	Opts       Options

	// MissPenalty is an artificial delay applied on every cache miss,
	// standing in for the disk of the paper's nodes. Zero disables it
	// (an in-memory store has no real disk to wait for).
	MissPenalty time.Duration

	// ServePenalty is an artificial delay applied on every local serve,
	// standing in for reply transmit processing; it gives demo clusters a
	// realistic load profile. Zero disables it.
	ServePenalty time.Duration

	// Health tunes failure detection; the zero value means
	// DefaultHealthOptions.
	Health HealthOptions

	// Retry bounds hand-off and control-message delivery attempts; the
	// zero value means DefaultRetryPolicy.
	Retry RetryPolicy

	// Faults, when non-nil, wraps the node's outbound transports with the
	// fault-injection schedule.
	Faults *FaultInjector

	// Seed drives backoff jitter deterministically; zero derives one from
	// the node id.
	Seed int64
}

// Node is one cluster member: an HTTP server with its own cache, its own
// replica of the distribution state, a gossip client, and a failure
// detector for its peers.
type Node struct {
	cfg    Config
	state  *state
	gossip *gossiper
	cache  *contentCache
	client *http.Client
	health *healthTracker
	rng    *lockedRand

	open atomic.Int64 // requests being serviced here (the load metric)

	// metrics owns every other counter the node keeps (see metrics.go);
	// Snapshot and /statsz read the same registry /metricsz exposes.
	metrics *nodeMetrics

	stop     chan struct{}
	stopOnce sync.Once

	syncMu sync.Mutex
	syncRR int // round-robin cursor for anti-entropy peers

	mux *http.ServeMux
}

// NewNode builds the node; Serve it with an http.Server (Cluster does this
// for you).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("native: node needs a store")
	}
	if cfg.ID < 0 || cfg.ID >= len(cfg.Peers) {
		return nil, fmt.Errorf("native: node id %d outside peer list of %d", cfg.ID, len(cfg.Peers))
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 32 << 20
	}
	if cfg.Opts.T == 0 {
		cfg.Opts = DefaultOptions()
	}
	if cfg.Health == (HealthOptions{}) {
		cfg.Health = DefaultHealthOptions()
	}
	if cfg.Retry == (RetryPolicy{}) {
		cfg.Retry = DefaultRetryPolicy()
	}
	if err := cfg.Health.validate(); err != nil {
		return nil, err
	}
	if err := cfg.Retry.validate(); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) + 1
	}
	var transport http.RoundTripper
	if cfg.Faults != nil {
		transport = cfg.Faults.transport(nil)
	}
	rng := newLockedRand(cfg.Seed)
	m := newNodeMetrics()
	n := &Node{
		cfg:     cfg,
		metrics: m,
		state:   newState(cfg.ID, len(cfg.Peers), cfg.Opts),
		gossip:  newGossiper(cfg.ID, cfg.Peers, cfg.Retry, transport, rng, m),
		cache:   newContentCache(cfg.CacheBytes),
		client:  &http.Client{Timeout: 10 * time.Second, Transport: transport},
		health:  newHealthTracker(cfg.ID, len(cfg.Peers), cfg.Health),
		rng:     rng,
		stop:    make(chan struct{}),
	}
	n.health.onDead = n.peerDied
	n.gossip.onResult = func(peer int, ok bool) {
		if ok {
			n.health.observeSuccess(peer)
		} else {
			n.health.observeFailure(peer)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/files/", n.handleFiles)
	mux.HandleFunc("/local/", n.handleLocal)
	mux.HandleFunc(loadPath, n.handleLoadUpdate)
	mux.HandleFunc(setPath, n.handleSetUpdate)
	mux.HandleFunc(pingPath, n.handlePing)
	mux.HandleFunc(syncPath, n.handleSync)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/statsz", n.handleStats)
	n.registerDebug(mux)
	n.mux = mux
	return n, nil
}

// startLoops launches the heartbeat and anti-entropy goroutine; stopLoops
// (idempotent) halts it. The Cluster drives both.
func (n *Node) startLoops() { go n.gossipLoop() }

func (n *Node) stopLoops() { n.stopOnce.Do(func() { close(n.stop) }) }

// gossipLoop drives active failure detection and state anti-entropy:
// heartbeats go to every peer (dead ones included — that is how a
// restarted node is re-detected), and each sync tick pushes the full
// server-set state to one peer, round robin.
func (n *Node) gossipLoop() {
	hb := time.NewTicker(n.cfg.Health.HeartbeatEvery)
	defer hb.Stop()
	sync := time.NewTicker(n.cfg.Health.SyncEvery)
	defer sync.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-hb.C:
			n.gossip.broadcast(pingPath, &Ping{Node: n.cfg.ID, Load: n.Load()}, nil, 1)
		case <-sync.C:
			n.syncToPeer()
		}
	}
}

// syncToPeer pushes this replica's full server-set state to the next peer
// in round-robin order. Dead peers are not skipped: a rejoining node
// recovers its state through exactly this path.
func (n *Node) syncToPeer() {
	sets := n.state.exportSets()
	if len(sets) == 0 || len(n.cfg.Peers) < 2 {
		return
	}
	n.syncMu.Lock()
	peer := n.syncRR % len(n.cfg.Peers)
	n.syncRR++
	if peer == n.cfg.ID {
		peer = n.syncRR % len(n.cfg.Peers)
		n.syncRR++
	}
	n.syncMu.Unlock()
	n.gossip.sendTo(peer, syncPath, sets, 1)
}

// peerDied is the failure detector's dead-transition hook: evict the peer
// from every server set and gossip the repaired sets so the cluster
// reconverges on live replicas only.
func (n *Node) peerDied(peer int) {
	updates := n.state.evictNode(peer)
	if len(updates) > 0 {
		go n.gossip.broadcast(syncPath, updates, n.peerDead, 0)
	}
}

// peerDead is the skip filter for routine gossip.
func (n *Node) peerDead(i int) bool { return !n.health.alive(i) }

// Handler returns the node's HTTP handler.
func (n *Node) Handler() http.Handler { return n.mux }

// ID returns the node's cluster id.
func (n *Node) ID() int { return n.cfg.ID }

// Load returns the node's current open-request count.
func (n *Node) Load() int { return int(n.open.Load()) }

// ServerSet exposes the node's replica of a file's server set (tests).
func (n *Node) ServerSet(path string) []int { return n.state.serverSet(path) }

// PeerHealth exposes the node's belief about a peer (tests, /statsz).
func (n *Node) PeerHealth(i int) PeerState { return n.health.state(i) }

// alive reports whether this node believes peer i is up.
func (n *Node) alive(i int) bool { return n.health.alive(i) }

// MarkDead records that a peer is down immediately, bypassing the failure
// budget (the failure detector normally does this itself).
func (n *Node) MarkDead(i int) { n.health.forceDead(i) }

// handleFiles is the public entry point: run the distribution algorithm,
// then serve locally or hand off.
func (n *Node) handleFiles(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/files")
	if path == "" || path == "/" {
		http.Error(w, "missing file path", http.StatusBadRequest)
		return
	}
	start := time.Now()
	defer func() { n.metrics.request.Observe(time.Since(start).Seconds()) }()
	dec := n.state.decide(path, n.alive)
	if dec.SetChanged != nil {
		go n.gossip.broadcast(setPath, dec.SetChanged, n.peerDead, 0)
	}
	if dec.Service == n.cfg.ID {
		n.metrics.served.Inc()
		n.serveLocal(w, path)
		return
	}
	n.metrics.proxied.Inc()
	if err := n.proxyWithRetry(dec.Service, path, w); err != nil {
		if errors.Is(err, errProxyStarted) {
			// The peer died mid-response: the status line is already on the
			// wire, so nothing can be rewritten. The client sees a truncated
			// body and retries against another entry node.
			return
		}
		// The chosen node is unreachable: the failure detector has been
		// told on every attempt; serve the client ourselves and let the
		// next decision rebuild the server set.
		n.metrics.failovers.Inc()
		n.metrics.served.Inc()
		n.serveLocal(w, path)
	}
}

// handleLocal serves a hand-off on behalf of another node, without
// re-running distribution.
func (n *Node) handleLocal(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/local")
	n.metrics.received.Inc()
	n.serveLocal(w, path)
}

// serveLocal is the data path: cache, store on a miss, respond.
func (n *Node) serveLocal(w http.ResponseWriter, path string) {
	n.trackLoad(1)
	defer n.trackLoad(-1)

	content, ok := n.cache.get(path)
	if ok {
		n.metrics.hits.Inc()
	} else {
		n.metrics.misses.Inc()
		var found bool
		content, found = n.cfg.Store.Get(path)
		if !found {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if n.cfg.MissPenalty > 0 {
			time.Sleep(n.cfg.MissPenalty)
		}
		n.cache.put(path, content)
	}
	if n.cfg.ServePenalty > 0 {
		time.Sleep(n.cfg.ServePenalty)
	}
	w.Header().Set("X-Served-By", fmt.Sprintf("%d", n.cfg.ID))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(content)
}

// trackLoad adjusts the open-request count and gossips it when it has
// drifted far enough.
func (n *Node) trackLoad(delta int64) {
	v := int(n.open.Add(delta))
	if n.state.setLocalLoad(v) {
		go n.gossip.broadcast(loadPath, &LoadUpdate{Node: n.cfg.ID, Load: v}, n.peerDead, 0)
	}
}

// errProxyStarted marks a hand-off that failed after response bytes were
// already written: no local fallback is possible.
var errProxyStarted = errors.New("native: hand-off failed mid-response")

// proxyWithRetry relays the request to the service node with bounded
// exponential backoff + jitter, feeding every outcome to the failure
// detector. It gives up early once the peer is declared dead.
func (n *Node) proxyWithRetry(svc int, path string, w http.ResponseWriter) error {
	base := n.cfg.Peers[svc]
	if base == "" {
		return fmt.Errorf("native: no address for node %d", svc)
	}
	for attempt := 1; ; attempt++ {
		started, err := n.proxyOnce(base, path, w)
		if err == nil {
			n.health.observeSuccess(svc)
			return nil
		}
		n.health.observeFailure(svc)
		if started {
			return errProxyStarted
		}
		if attempt >= n.cfg.Retry.Attempts || !n.health.alive(svc) {
			return err
		}
		n.metrics.retries.Inc()
		time.Sleep(n.cfg.Retry.backoff(attempt, n.rng))
	}
}

// proxyOnce relays the request to the service node's internal endpoint and
// streams the response back — the user-level equivalent of connection
// hand-off. started reports whether any part of the response reached the
// client (after which a retry or fallback would corrupt it).
func (n *Node) proxyOnce(base, path string, w http.ResponseWriter) (started bool, err error) {
	resp, err := n.client.Get(base + "/local" + path)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Forwarded-By", fmt.Sprintf("%d", n.cfg.ID))
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		return true, err
	}
	return true, nil
}

func (n *Node) handleLoadUpdate(w http.ResponseWriter, r *http.Request) {
	var u LoadUpdate
	if err := decodeJSON(r, &u, 1<<10); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n.state.applyLoad(u.Node, u.Load)
	w.WriteHeader(http.StatusOK)
}

func (n *Node) handleSetUpdate(w http.ResponseWriter, r *http.Request) {
	var u SetUpdate
	if err := decodeJSON(r, &u, 1<<16); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n.applyFilteredSet(u)
	w.WriteHeader(http.StatusOK)
}

// applyFilteredSet installs a gossiped set after dropping members this node
// believes are dead; a filtered update gets a version bump so the local
// repair outranks the stale original during anti-entropy.
func (n *Node) applyFilteredSet(u SetUpdate) {
	if len(u.Nodes) > 0 {
		if kept := keepAlive(u.Nodes, n.alive); len(kept) != len(u.Nodes) {
			u.Nodes = kept
			u.Version++
		}
	}
	n.state.applySet(u)
}

// handlePing receives a gossip heartbeat: proof the sender is alive (the
// rejoin path for restarted nodes) plus a fresh load sample.
func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	var u Ping
	if err := decodeJSON(r, &u, 1<<10); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n.health.observeSuccess(u.Node)
	n.state.applyLoad(u.Node, u.Load)
	w.WriteHeader(http.StatusOK)
}

// handleSync receives a peer's full server-set state (anti-entropy) and
// merges it version by version.
func (n *Node) handleSync(w http.ResponseWriter, r *http.Request) {
	var us []SetUpdate
	if err := decodeJSON(r, &us, 1<<22); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, u := range us {
		n.applyFilteredSet(u)
	}
	w.WriteHeader(http.StatusOK)
}

// Stats is one node's observable state. Field vocabulary matches the
// simulator's server.Result where the concepts overlap (Served, Proxied,
// Received, HitRate), plus the fault-tolerance counters: Retries (hand-off
// delivery retries), Failovers (hand-offs exhausted and served locally),
// and DeadPeers (peers this node currently believes dead).
type Stats struct {
	ID          int     `json:"id"`
	Load        int     `json:"load"`
	Served      uint64  `json:"served"`
	Proxied     uint64  `json:"proxied"`
	Received    uint64  `json:"received"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Retries     uint64  `json:"retries"`
	Failovers   uint64  `json:"failovers"`
	DeadPeers   int     `json:"dead_peers"`
	HitRate     float64 `json:"hit_rate"`
	CacheUsed   int64   `json:"cache_used"`
	GossipOut   uint64  `json:"gossip_out"`
	GossipFail  uint64  `json:"gossip_fail"`
	GossipRetry uint64  `json:"gossip_retry"`
}

// Snapshot returns current statistics.
func (n *Node) Snapshot() Stats {
	hits, misses := n.metrics.hits.Value(), n.metrics.misses.Value()
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	sent, failed, retried := n.gossip.stats()
	return Stats{
		ID:          n.cfg.ID,
		Load:        n.Load(),
		Served:      n.metrics.served.Value(),
		Proxied:     n.metrics.proxied.Value(),
		Received:    n.metrics.received.Value(),
		Hits:        hits,
		Misses:      misses,
		Retries:     n.metrics.retries.Value(),
		Failovers:   n.metrics.failovers.Value(),
		DeadPeers:   n.health.deadCount(),
		HitRate:     rate,
		CacheUsed:   n.cache.used(),
		GossipOut:   sent,
		GossipFail:  failed,
		GossipRetry: retried,
	}
}

// PeerView is one row of a node's cluster view: its belief about a peer.
type PeerView struct {
	Node  int    `json:"node"`
	State string `json:"state"`
	Load  int    `json:"load"` // this node's (possibly stale) view
}

// ClusterView is the full cluster snapshot a node serves at /statsz: its
// own counters plus its view of every peer's health and load.
type ClusterView struct {
	Self  Stats      `json:"self"`
	Peers []PeerView `json:"peers"`
}

// ClusterSnapshot returns the node's view of the whole cluster.
func (n *Node) ClusterSnapshot() ClusterView {
	states := n.health.snapshot()
	view := ClusterView{Self: n.Snapshot(), Peers: make([]PeerView, 0, len(states))}
	for i, s := range states {
		if i == n.cfg.ID {
			continue
		}
		view.Peers = append(view.Peers, PeerView{Node: i, State: s.String(), Load: n.state.viewLoad(i)})
	}
	return view
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.ClusterSnapshot())
}

// contentCache is a thread-safe byte-capacity LRU holding file contents.
type contentCache struct {
	mu       sync.Mutex
	capacity int64
	size     int64
	order    *list.List
	items    map[string]*list.Element
}

type contentEntry struct {
	path string
	body []byte
}

func newContentCache(capacity int64) *contentCache {
	return &contentCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *contentCache) get(path string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[path]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(contentEntry).body, true
}

func (c *contentCache) put(path string, body []byte) {
	size := int64(len(body))
	if size > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[path]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.size+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(contentEntry)
		c.order.Remove(back)
		delete(c.items, e.path)
		c.size -= int64(len(e.body))
	}
	c.items[path] = c.order.PushFront(contentEntry{path: path, body: body})
	c.size += size
}

func (c *contentCache) used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
