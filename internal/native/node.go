package native

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures one native node.
type Config struct {
	ID         int
	Peers      []string // base URLs indexed by node id (self included)
	Store      Store
	CacheBytes int64
	Opts       Options

	// MissPenalty is an artificial delay applied on every cache miss,
	// standing in for the disk of the paper's nodes. Zero disables it
	// (an in-memory store has no real disk to wait for).
	MissPenalty time.Duration

	// ServePenalty is an artificial delay applied on every local serve,
	// standing in for reply transmit processing; it gives demo clusters a
	// realistic load profile. Zero disables it.
	ServePenalty time.Duration
}

// Node is one cluster member: an HTTP server with its own cache, its own
// replica of the distribution state, and a gossip client.
type Node struct {
	cfg    Config
	state  *state
	gossip *gossiper
	cache  *contentCache
	client *http.Client

	open atomic.Int64 // requests being serviced here (the load metric)

	served    atomic.Uint64 // requests served locally
	proxied   atomic.Uint64 // requests handed off to another node
	received  atomic.Uint64 // hand-offs served on behalf of others
	hits      atomic.Uint64
	misses    atomic.Uint64
	fallbacks atomic.Uint64 // proxy failures served locally instead

	deadMu sync.RWMutex
	dead   map[int]bool

	mux *http.ServeMux
}

// NewNode builds the node; Serve it with an http.Server (Cluster does this
// for you).
func NewNode(cfg Config) (*Node, error) {
	if cfg.Store == nil {
		return nil, errors.New("native: node needs a store")
	}
	if cfg.ID < 0 || cfg.ID >= len(cfg.Peers) {
		return nil, fmt.Errorf("native: node id %d outside peer list of %d", cfg.ID, len(cfg.Peers))
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 32 << 20
	}
	if cfg.Opts.T == 0 {
		cfg.Opts = DefaultOptions()
	}
	n := &Node{
		cfg:    cfg,
		state:  newState(cfg.ID, len(cfg.Peers), cfg.Opts),
		gossip: newGossiper(cfg.ID, cfg.Peers),
		cache:  newContentCache(cfg.CacheBytes),
		client: &http.Client{Timeout: 10 * time.Second},
		dead:   make(map[int]bool),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/files/", n.handleFiles)
	mux.HandleFunc("/local/", n.handleLocal)
	mux.HandleFunc(loadPath, n.handleLoadUpdate)
	mux.HandleFunc(setPath, n.handleSetUpdate)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/statsz", n.handleStats)
	n.mux = mux
	return n, nil
}

// Handler returns the node's HTTP handler.
func (n *Node) Handler() http.Handler { return n.mux }

// ID returns the node's cluster id.
func (n *Node) ID() int { return n.cfg.ID }

// Load returns the node's current open-request count.
func (n *Node) Load() int { return int(n.open.Load()) }

// ServerSet exposes the node's replica of a file's server set (tests).
func (n *Node) ServerSet(path string) []int { return n.state.serverSet(path) }

// alive reports whether this node believes peer i is up.
func (n *Node) alive(i int) bool {
	if i == n.cfg.ID {
		return true
	}
	n.deadMu.RLock()
	defer n.deadMu.RUnlock()
	return !n.dead[i]
}

// MarkDead records that a peer is down (also set automatically when a
// hand-off to it fails).
func (n *Node) MarkDead(i int) {
	n.deadMu.Lock()
	n.dead[i] = true
	n.deadMu.Unlock()
}

// handleFiles is the public entry point: run the distribution algorithm,
// then serve locally or hand off.
func (n *Node) handleFiles(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/files")
	if path == "" || path == "/" {
		http.Error(w, "missing file path", http.StatusBadRequest)
		return
	}
	dec := n.state.decide(path, n.alive)
	if dec.SetChanged != nil {
		go n.gossip.broadcast(setPath, dec.SetChanged)
	}
	if dec.Service == n.cfg.ID {
		n.served.Add(1)
		n.serveLocal(w, path)
		return
	}
	n.proxied.Add(1)
	if err := n.proxyTo(dec.Service, path, w); err != nil {
		// The chosen node is unreachable: remember that, serve the client
		// ourselves, and let the next decision rebuild the server set.
		n.MarkDead(dec.Service)
		n.fallbacks.Add(1)
		n.served.Add(1)
		n.serveLocal(w, path)
	}
}

// handleLocal serves a hand-off on behalf of another node, without
// re-running distribution.
func (n *Node) handleLocal(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/local")
	n.received.Add(1)
	n.serveLocal(w, path)
}

// serveLocal is the data path: cache, store on a miss, respond.
func (n *Node) serveLocal(w http.ResponseWriter, path string) {
	n.trackLoad(1)
	defer n.trackLoad(-1)

	content, ok := n.cache.get(path)
	if ok {
		n.hits.Add(1)
	} else {
		n.misses.Add(1)
		var found bool
		content, found = n.cfg.Store.Get(path)
		if !found {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		if n.cfg.MissPenalty > 0 {
			time.Sleep(n.cfg.MissPenalty)
		}
		n.cache.put(path, content)
	}
	if n.cfg.ServePenalty > 0 {
		time.Sleep(n.cfg.ServePenalty)
	}
	w.Header().Set("X-Served-By", fmt.Sprintf("%d", n.cfg.ID))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(content)
}

// trackLoad adjusts the open-request count and gossips it when it has
// drifted far enough.
func (n *Node) trackLoad(delta int64) {
	v := int(n.open.Add(delta))
	if n.state.setLocalLoad(v) {
		go n.gossip.broadcast(loadPath, &LoadUpdate{Node: n.cfg.ID, Load: v})
	}
}

// proxyTo relays the request to the service node's internal endpoint and
// streams the response back — the user-level equivalent of connection
// hand-off.
func (n *Node) proxyTo(svc int, path string, w http.ResponseWriter) error {
	base := n.cfg.Peers[svc]
	if base == "" {
		return fmt.Errorf("native: no address for node %d", svc)
	}
	resp, err := n.client.Get(base + "/local" + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Forwarded-By", fmt.Sprintf("%d", n.cfg.ID))
	w.WriteHeader(resp.StatusCode)
	_, err = io.Copy(w, resp.Body)
	return err
}

func (n *Node) handleLoadUpdate(w http.ResponseWriter, r *http.Request) {
	var u LoadUpdate
	if err := decodeJSON(r, &u, 1<<10); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n.state.applyLoad(u.Node, u.Load)
	w.WriteHeader(http.StatusOK)
}

func (n *Node) handleSetUpdate(w http.ResponseWriter, r *http.Request) {
	var u SetUpdate
	if err := decodeJSON(r, &u, 1<<16); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n.state.applySet(u)
	w.WriteHeader(http.StatusOK)
}

// Stats is the node's observable state, served at /statsz.
type Stats struct {
	ID        int     `json:"id"`
	Load      int     `json:"load"`
	Served    uint64  `json:"served"`
	Proxied   uint64  `json:"proxied"`
	Received  uint64  `json:"received"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Fallbacks uint64  `json:"fallbacks"`
	HitRate   float64 `json:"hit_rate"`
	CacheUsed int64   `json:"cache_used"`
	GossipOut uint64  `json:"gossip_out"`
}

// Snapshot returns current statistics.
func (n *Node) Snapshot() Stats {
	hits, misses := n.hits.Load(), n.misses.Load()
	var rate float64
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	sent, _ := n.gossip.stats()
	return Stats{
		ID:        n.cfg.ID,
		Load:      n.Load(),
		Served:    n.served.Load(),
		Proxied:   n.proxied.Load(),
		Received:  n.received.Load(),
		Hits:      hits,
		Misses:    misses,
		Fallbacks: n.fallbacks.Load(),
		HitRate:   rate,
		CacheUsed: n.cache.used(),
		GossipOut: sent,
	}
}

func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(n.Snapshot())
}

// contentCache is a thread-safe byte-capacity LRU holding file contents.
type contentCache struct {
	mu       sync.Mutex
	capacity int64
	size     int64
	order    *list.List
	items    map[string]*list.Element
}

type contentEntry struct {
	path string
	body []byte
}

func newContentCache(capacity int64) *contentCache {
	return &contentCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *contentCache) get(path string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[path]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(contentEntry).body, true
}

func (c *contentCache) put(path string, body []byte) {
	size := int64(len(body))
	if size > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[path]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.size+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(contentEntry)
		c.order.Remove(back)
		delete(c.items, e.path)
		c.size -= int64(len(e.body))
	}
	c.items[path] = c.order.PushFront(contentEntry{path: path, body: body})
	c.size += size
}

func (c *contentCache) used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
