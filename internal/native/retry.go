package native

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds how hard the node tries to deliver hand-offs and
// control messages before declaring failure.
type RetryPolicy struct {
	// Attempts is the total number of tries, the first included.
	Attempts int
	// Base is the backoff before the second attempt; it doubles each
	// further attempt (with jitter) up to Max.
	Base time.Duration
	// Max caps a single backoff sleep.
	Max time.Duration
}

// DefaultRetryPolicy returns the live-traffic retry budget: three attempts
// with 10 ms initial backoff capped at 200 ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Base: 10 * time.Millisecond, Max: 200 * time.Millisecond}
}

func (p RetryPolicy) validate() error {
	if p.Attempts < 1 {
		return fmt.Errorf("native: retry attempts must be >= 1, got %d", p.Attempts)
	}
	if p.Base <= 0 {
		return fmt.Errorf("native: retry base backoff must be positive, got %v", p.Base)
	}
	if p.Max < p.Base {
		return fmt.Errorf("native: retry max backoff (%v) must be >= base (%v)", p.Max, p.Base)
	}
	return nil
}

// backoff returns the sleep before attempt attempt+1 (attempt counts from
// 1): exponential doubling with full jitter in [d/2, d], capped at Max.
func (p RetryPolicy) backoff(attempt int, rng *lockedRand) time.Duration {
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// lockedRand is a mutex-guarded rand.Rand shared by a node's goroutines,
// seeded deterministically so fault schedules and jitter are reproducible.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}

func (l *lockedRand) Float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}
