package native

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStartValidation(t *testing.T) {
	st := testStore(4)
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"no store", []Option{WithNodes(2)}, "store"},
		{"zero nodes", []Option{WithNodes(0), WithStore(st)}, "at least one node"},
		{"nil store", []Option{WithStore(nil)}, "non-nil store"},
		{"bad cache", []Option{WithStore(st), WithCacheBytes(0)}, "cache"},
		{"bad cache mb", []Option{WithStore(st), WithCacheMB(-1)}, "cache"},
		{"inverted thresholds", []Option{WithStore(st), WithThresholds(5, 9)}, "T > t"},
		{"zero delta", []Option{WithStore(st), WithBroadcastDelta(0)}, "delta"},
		{"zero shrink", []Option{WithStore(st), WithShrinkAfter(0)}, "shrink"},
		{"bad l2s", []Option{WithStore(st), WithL2S(Options{T: 0})}, "T > t"},
		{"negative miss", []Option{WithStore(st), WithMissPenalty(-time.Second)}, "miss penalty"},
		{"negative serve", []Option{WithStore(st), WithServePenalty(-time.Second)}, "serve penalty"},
		{"bad heartbeat", []Option{WithStore(st), WithHealth(HealthOptions{})}, "heartbeat"},
		{"bad dead budget", []Option{WithStore(st), WithHealth(HealthOptions{
			HeartbeatEvery: time.Second, SyncEvery: time.Second, SuspectAfter: 3, DeadAfter: 1,
		})}, "DeadAfter"},
		{"bad retry", []Option{WithStore(st), WithRetry(RetryPolicy{Attempts: 0})}, "attempts"},
		{"bad backoff", []Option{WithStore(st), WithRetry(RetryPolicy{
			Attempts: 2, Base: time.Second, Max: time.Millisecond,
		})}, "max backoff"},
		{"nil faults", []Option{WithStore(st), WithFaults(nil)}, "injector"},
		{"zero seed", []Option{WithStore(st), WithSeed(0)}, "seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := Start(tc.opts...)
			if err == nil {
				c.Shutdown()
				t.Fatalf("Start accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestStartFunctionalOptions(t *testing.T) {
	c, err := Start(
		WithNodes(2),
		WithStore(testStore(8)),
		WithCacheMB(1),
		WithThresholds(20, 10),
		WithBroadcastDelta(4),
		WithShrinkAfter(time.Minute),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	resp, body := get(t, c.URLs()[0]+"/files/f/3")
	if resp.StatusCode != http.StatusOK || string(body) != "content-of-3" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
}

// TestStartMinimalOptions keeps the minimal entry point honest: a cluster
// built from just a size and a store must work with defaults applied.
func TestStartMinimalOptions(t *testing.T) {
	c, err := Start(WithNodes(2), WithStore(testStore(8)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	resp, body := get(t, c.URLs()[1]+"/files/f/1")
	if resp.StatusCode != http.StatusOK || string(body) != "content-of-1" {
		t.Fatalf("shim cluster misserved: %d %q", resp.StatusCode, body)
	}
}

func TestFaultInjectorValidation(t *testing.T) {
	fi := NewFaultInjector(1)
	if err := fi.SetDropRate(1.5); err == nil {
		t.Fatal("drop rate > 1 accepted")
	}
	if err := fi.SetDelay(-time.Second, 0.5); err == nil {
		t.Fatal("negative delay accepted")
	}
	if err := fi.SetDelay(time.Second, 2); err == nil {
		t.Fatal("delay rate > 1 accepted")
	}
	if err := fi.SetDupRate(-0.1); err == nil {
		t.Fatal("negative dup rate accepted")
	}
}

// TestFaultInjectorKillRevive exercises the transport-seam kill: traffic to
// a killed node fails at every wrapped transport without the node actually
// going down, and Revive restores it.
func TestFaultInjectorKillRevive(t *testing.T) {
	fi := NewFaultInjector(1)
	c, err := Start(
		WithNodes(2),
		WithStore(testStore(8)),
		WithCacheMB(1),
		WithFaults(fi),
		WithHealth(chaosHealth()),
		WithRetry(chaosRetry()),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	fi.Kill(1)
	// Node 0's hand-offs and gossip to node 1 now fail; requests entering
	// node 0 must still succeed via failover.
	c.Node(0).state.applySet(SetUpdate{Path: "/f/2", Nodes: []int{1}, Version: 1})
	resp, body := get(t, c.URLs()[0]+"/files/f/2")
	if resp.StatusCode != http.StatusOK || string(body) != "content-of-2" {
		t.Fatalf("request failed under injected kill: %d %q", resp.StatusCode, body)
	}
	if fi.Stats().Blocked == 0 {
		t.Fatal("kill never blocked a request")
	}
	waitFor(t, 5*time.Second, "node 0 never marked killed peer dead", func() bool {
		return c.Node(0).PeerHealth(1) == PeerDead
	})

	fi.Revive(1)
	waitFor(t, 5*time.Second, "revived peer never marked alive", func() bool {
		return c.Node(0).PeerHealth(1) == PeerAlive
	})
}
