package native

import (
	"fmt"
	"io"
	"net/http"
	"repro/internal/trace"
	"sync"
	"testing"
	"time"
)

func testStore(files int) *MemStore {
	m := make(map[string][]byte, files)
	for i := 0; i < files; i++ {
		m[fmt.Sprintf("/f/%d", i)] = []byte(fmt.Sprintf("content-of-%d", i))
	}
	return NewMemStore(m)
}

func startTestCluster(t *testing.T, nodes int, opts Options) *Cluster {
	t.Helper()
	c, err := Start(
		WithNodes(nodes),
		WithStore(testStore(64)),
		WithCacheBytes(1<<20),
		WithL2S(opts),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp, body
}

func TestServeFile(t *testing.T) {
	c := startTestCluster(t, 3, DefaultOptions())
	resp, body := get(t, c.URLs()[0]+"/files/f/7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if string(body) != "content-of-7" {
		t.Fatalf("body %q", body)
	}
	if resp.Header.Get("X-Served-By") == "" {
		t.Fatal("missing X-Served-By")
	}
}

func TestNotFound(t *testing.T) {
	c := startTestCluster(t, 2, DefaultOptions())
	resp, _ := get(t, c.URLs()[0]+"/files/no/such/file")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, c.URLs()[0]+"/files/")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for empty path", resp.StatusCode)
	}
}

func TestLocalityStickiness(t *testing.T) {
	c := startTestCluster(t, 4, DefaultOptions())
	// Ask different nodes for the same file: all replies must come from
	// the same service node (the file's server set has one member under
	// light load).
	var servedBy string
	for i := 0; i < 8; i++ {
		entry := c.URLs()[i%4]
		resp, _ := get(t, entry+"/files/f/3")
		by := resp.Header.Get("X-Served-By")
		if servedBy == "" {
			servedBy = by
		} else if by != servedBy {
			t.Fatalf("request %d served by %s, want sticky %s", i, by, servedBy)
		}
	}
}

func TestHandoffHappens(t *testing.T) {
	c := startTestCluster(t, 4, DefaultOptions())
	// Prime the file at its first server via node 0.
	resp, _ := get(t, c.URLs()[0]+"/files/f/5")
	owner := resp.Header.Get("X-Served-By")
	// A request entering at a different node must be forwarded (header
	// X-Forwarded-By set) yet still served by the owner.
	var forwarded bool
	for i := 0; i < 4; i++ {
		entry := c.URLs()[i]
		resp, _ := get(t, entry+"/files/f/5")
		if resp.Header.Get("X-Served-By") != owner {
			t.Fatalf("served by %s, want %s", resp.Header.Get("X-Served-By"), owner)
		}
		if resp.Header.Get("X-Forwarded-By") != "" {
			forwarded = true
		}
	}
	if !forwarded {
		t.Fatal("no hand-off observed from non-owner entry nodes")
	}
}

func TestCacheHitsAccumulate(t *testing.T) {
	c := startTestCluster(t, 2, DefaultOptions())
	for i := 0; i < 10; i++ {
		get(t, c.URLs()[0]+"/files/f/1")
	}
	totals := c.Totals()
	if totals.Hits < 8 {
		t.Fatalf("hits = %d, want most of 10 repeated requests", totals.Hits)
	}
	if totals.Misses < 1 {
		t.Fatal("first access must miss")
	}
}

func TestGossipUpdatesPeerViews(t *testing.T) {
	c := startTestCluster(t, 3, Options{T: 20, LowT: 10, BroadcastDelta: 1, ShrinkAfter: time.Minute})
	// Drive concurrent slow-ish requests through node 1 to move its load,
	// with delta=1 every change broadcasts.
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(c.URLs()[1] + fmt.Sprintf("/files/f/%d", i%32))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	// Allow gossip to drain.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		sent, _, _ := c.Node(1).gossip.stats()
		if sent > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("node 1 never gossiped a load update")
}

func TestControlEndpointsValidate(t *testing.T) {
	c := startTestCluster(t, 2, DefaultOptions())
	resp, err := http.Post(c.URLs()[0]+loadPath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty control body accepted: %d", resp.StatusCode)
	}
}

func TestAppliedSetUpdateRedirectsTraffic(t *testing.T) {
	c := startTestCluster(t, 3, DefaultOptions())
	// Tell node 0 that file /f/9 lives on node 2.
	c.Node(0).state.applySet(SetUpdate{Path: "/f/9", Nodes: []int{2}})
	resp, _ := get(t, c.URLs()[0]+"/files/f/9")
	if by := resp.Header.Get("X-Served-By"); by != "2" {
		t.Fatalf("served by %s, want node 2 per the installed set", by)
	}
}

func TestFailoverFallsBackLocally(t *testing.T) {
	c := startTestCluster(t, 3, DefaultOptions())
	// Route /f/4 to node 2, then crash node 2.
	c.Node(0).state.applySet(SetUpdate{Path: "/f/4", Nodes: []int{2}})
	if err := c.Stop(2); err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, c.URLs()[0]+"/files/f/4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after peer crash", resp.StatusCode)
	}
	if string(body) != "content-of-4" {
		t.Fatalf("wrong content after failover: %q", body)
	}
	if c.Node(0).Snapshot().Failovers == 0 {
		t.Fatal("failover not recorded")
	}
	// Subsequent requests avoid the dead node entirely.
	resp, _ = get(t, c.URLs()[0]+"/files/f/4")
	if by := resp.Header.Get("X-Served-By"); by == "2" {
		t.Fatal("dead node still selected")
	}
}

func TestReplicationUnderHotspot(t *testing.T) {
	// Low threshold + a miss penalty so open requests accumulate: a single
	// hot file must gain a second server.
	c, err := Start(
		WithNodes(3),
		WithStore(testStore(8)),
		WithCacheBytes(1<<20),
		WithL2S(Options{T: 2, LowT: 1, BroadcastDelta: 1, ShrinkAfter: time.Minute}),
		WithServePenalty(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	// Pin the hot file to node 0, then hammer it through node 0 itself so
	// its open-request count rises past T and the algorithm replicates.
	for i := 0; i < 3; i++ {
		c.Node(i).state.applySet(SetUpdate{Path: "/f/0", Nodes: []int{0}})
	}
	var wg sync.WaitGroup
	for i := 0; i < 120; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(c.URLs()[0] + "/files/f/0")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	grew := false
	for i := 0; i < 3; i++ {
		if len(c.Node(i).ServerSet("/f/0")) > 1 {
			grew = true
		}
	}
	if !grew {
		t.Fatal("hot file's server set never replicated under overload")
	}
}

func TestStatszEndpoint(t *testing.T) {
	c := startTestCluster(t, 2, DefaultOptions())
	get(t, c.URLs()[0]+"/files/f/2")
	resp, body := get(t, c.URLs()[0]+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statsz status %d", resp.StatusCode)
	}
	if len(body) == 0 || body[0] != '{' {
		t.Fatalf("statsz body %q", body)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := Start(WithNodes(0), WithStore(testStore(1))); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := Start(WithNodes(1)); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := NewNode(Config{Store: testStore(1), Peers: nil}); err == nil {
		t.Fatal("bad node id accepted")
	}
}

func TestSyntheticStore(t *testing.T) {
	s := SyntheticStore(50, 10, 1)
	if len(s.Paths()) != 50 {
		t.Fatalf("paths = %d", len(s.Paths()))
	}
	b, ok := s.Get("/f/0")
	if !ok || len(b) < 64 {
		t.Fatalf("file 0 missing or too small: %d", len(b))
	}
	s.Put("/extra", []byte("x"))
	if _, ok := s.Get("/extra"); !ok {
		t.Fatal("Put did not store")
	}
}

func TestContentCacheEviction(t *testing.T) {
	cc := newContentCache(100)
	cc.put("/a", make([]byte, 60))
	cc.put("/b", make([]byte, 60)) // evicts /a
	if _, ok := cc.get("/a"); ok {
		t.Fatal("/a should have been evicted")
	}
	if _, ok := cc.get("/b"); !ok {
		t.Fatal("/b missing")
	}
	cc.put("/huge", make([]byte, 1000)) // larger than capacity: ignored
	if _, ok := cc.get("/huge"); ok {
		t.Fatal("oversize content cached")
	}
	if cc.used() != 60 {
		t.Fatalf("used = %d, want 60", cc.used())
	}
}

func TestRoundRobinURLs(t *testing.T) {
	c := startTestCluster(t, 3, DefaultOptions())
	a, b, d := c.NextURL(), c.NextURL(), c.NextURL()
	if a == b || b == d || a == d {
		t.Fatal("round robin did not rotate")
	}
	if c.NextURL() != a {
		t.Fatal("rotation did not wrap")
	}
}

func TestReplayTrace(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "replay", Files: 100, AvgFileKB: 4, Requests: 1500,
		AvgReqKB: 3, Alpha: 1, Seed: 9,
	})
	c, err := Start(
		WithNodes(3),
		WithStore(StoreFromTrace(tr)),
		WithCacheMB(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	res, err := Replay(c, tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != uint64(tr.NumRequests()) {
		t.Fatalf("completed %d of %d (errors %d)", res.Completed, tr.NumRequests(), res.Errors)
	}
	if res.Rate <= 0 {
		t.Fatal("no rate measured")
	}
	// Repeated Zipf requests must hit caches.
	if c.Totals().HitRate < 0.5 {
		t.Fatalf("hit rate %.2f too low for a Zipf replay", c.Totals().HitRate)
	}
}

func TestStoreFromTraceSizes(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "s", Files: 10, AvgFileKB: 8, Requests: 10, AvgReqKB: 8, Alpha: 1, Seed: 1,
	})
	st := StoreFromTrace(tr)
	for i, size := range tr.Sizes {
		b, ok := st.Get(fmt.Sprintf("/f/%d", i))
		if !ok || int64(len(b)) != size {
			t.Fatalf("file %d: got %d bytes, want %d", i, len(b), size)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	c := startTestCluster(t, 2, DefaultOptions())
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "v", Files: 5, AvgFileKB: 4, Requests: 10, AvgReqKB: 4, Alpha: 1, Seed: 1,
	})
	if _, err := Replay(c, tr, 0); err == nil {
		t.Fatal("zero concurrency accepted")
	}
}
