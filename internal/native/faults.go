package native

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault-injection errors, distinguishable in logs and tests.
var (
	errFaultDropped = errors.New("faultinject: control message dropped")
	errFaultKilled  = errors.New("faultinject: destination node killed")
)

// FaultInjector is a deterministic network-fault layer: it wraps the HTTP
// transports of every node in a cluster (see WithFaults) and, on a seeded
// schedule, drops, delays, or duplicates control messages and blackholes
// traffic to killed nodes. The data plane (/files, /local) only sees kills;
// drop/delay/duplicate apply to /control/* messages, mirroring the paper's
// concern with gossip robustness.
//
// All knobs are safe to flip while the cluster is running, which is how
// chaos tests start and stop fault schedules.
type FaultInjector struct {
	rng *lockedRand

	mu        sync.Mutex
	dropRate  float64
	delayRate float64
	maxDelay  time.Duration
	dupRate   float64
	killed    map[int]bool
	hosts     map[string]int // host:port -> node id

	dropped    atomic.Uint64
	delayed    atomic.Uint64
	duplicated atomic.Uint64
	blocked    atomic.Uint64
}

// NewFaultInjector returns an injector whose schedule is driven by the
// given seed. With no knobs set it is transparent.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{
		rng:    newLockedRand(seed),
		killed: make(map[int]bool),
		hosts:  make(map[string]int),
	}
}

// SetDropRate drops the given fraction of control messages (0..1).
func (f *FaultInjector) SetDropRate(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("native: drop rate must be in [0,1], got %g", p)
	}
	f.mu.Lock()
	f.dropRate = p
	f.mu.Unlock()
	return nil
}

// SetDelay delays the given fraction of control messages by a uniformly
// random duration in (0, max].
func (f *FaultInjector) SetDelay(max time.Duration, rate float64) error {
	if max < 0 {
		return fmt.Errorf("native: delay must be >= 0, got %v", max)
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("native: delay rate must be in [0,1], got %g", rate)
	}
	f.mu.Lock()
	f.maxDelay, f.delayRate = max, rate
	f.mu.Unlock()
	return nil
}

// SetDupRate duplicates the given fraction of control messages: the copy is
// delivered first, then the original. Control handlers are idempotent, so
// duplication must be invisible.
func (f *FaultInjector) SetDupRate(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("native: dup rate must be in [0,1], got %g", p)
	}
	f.mu.Lock()
	f.dupRate = p
	f.mu.Unlock()
	return nil
}

// Kill blackholes all injected traffic to the node (connection attempts
// fail immediately), simulating a crash at the transport seam.
func (f *FaultInjector) Kill(node int) {
	f.mu.Lock()
	f.killed[node] = true
	f.mu.Unlock()
}

// Revive undoes Kill.
func (f *FaultInjector) Revive(node int) {
	f.mu.Lock()
	delete(f.killed, node)
	f.mu.Unlock()
}

// Stop clears every fault: rates to zero, killed set emptied. Counters are
// preserved.
func (f *FaultInjector) Stop() {
	f.mu.Lock()
	f.dropRate, f.delayRate, f.dupRate = 0, 0, 0
	f.maxDelay = 0
	f.killed = make(map[int]bool)
	f.mu.Unlock()
}

// FaultStats counts the faults injected so far.
type FaultStats struct {
	Dropped    uint64 `json:"dropped"`
	Delayed    uint64 `json:"delayed"`
	Duplicated uint64 `json:"duplicated"`
	Blocked    uint64 `json:"blocked"` // requests refused because the target was killed
}

// Stats returns the injected-fault counters.
func (f *FaultInjector) Stats() FaultStats {
	return FaultStats{
		Dropped:    f.dropped.Load(),
		Delayed:    f.delayed.Load(),
		Duplicated: f.duplicated.Load(),
		Blocked:    f.blocked.Load(),
	}
}

// register maps node base URLs to ids so the injector can tell which node
// a request targets. The cluster calls this at start (and again on
// restart, which reuses the address).
func (f *FaultInjector) register(urls []string) {
	f.mu.Lock()
	for id, u := range urls {
		f.hosts[strings.TrimPrefix(u, "http://")] = id
	}
	f.mu.Unlock()
}

// transport wraps base with the fault schedule.
func (f *FaultInjector) transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{f: f, base: base}
}

type faultTransport struct {
	f    *FaultInjector
	base http.RoundTripper
}

// plan is one message's drawn fate.
type plan struct {
	kill  bool
	drop  bool
	dup   bool
	delay time.Duration
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.f.draw(req)
	if p.kill {
		t.f.blocked.Add(1)
		return nil, errFaultKilled
	}
	if p.drop {
		t.f.dropped.Add(1)
		return nil, errFaultDropped
	}
	if p.delay > 0 {
		t.f.delayed.Add(1)
		time.Sleep(p.delay)
	}
	if p.dup {
		t.f.duplicated.Add(1)
		t.sendCopy(req)
	}
	return t.base.RoundTrip(req)
}

// draw rolls the fault schedule for one request under the injector lock.
func (f *FaultInjector) draw(req *http.Request) plan {
	var p plan
	f.mu.Lock()
	if id, known := f.hosts[req.URL.Host]; known && f.killed[id] {
		f.mu.Unlock()
		p.kill = true
		return p
	}
	control := strings.HasPrefix(req.URL.Path, "/control/")
	drop, delayRate, maxDelay, dup := f.dropRate, f.delayRate, f.maxDelay, f.dupRate
	f.mu.Unlock()
	if !control {
		return p
	}
	if drop > 0 && f.rng.Float64() < drop {
		p.drop = true
		return p
	}
	if delayRate > 0 && maxDelay > 0 && f.rng.Float64() < delayRate {
		p.delay = time.Duration(f.rng.Int63n(int64(maxDelay))) + 1
	}
	if dup > 0 && f.rng.Float64() < dup {
		p.dup = true
	}
	return p
}

// sendCopy synchronously delivers a duplicate of the request, discarding
// the response; failures of the copy are silent, as with real duplicated
// datagrams.
func (t *faultTransport) sendCopy(req *http.Request) {
	clone := req.Clone(req.Context())
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return
		}
		clone.Body = body
	}
	resp, err := t.base.RoundTrip(clone)
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
