// Package native is a working implementation of the L2S server over real
// HTTP — the "native version of our server" the paper's conclusion
// announces. Each node is an http.Server with its own main-memory cache,
// its own view of cluster load, and its own replica of the file server
// sets; nodes gossip load changes and server-set modifications over HTTP
// control endpoints and hand requests off to each other by reverse
// proxying (the user-level stand-in for TCP hand-off).
//
// The package is self-contained and uses only the standard library; the
// cluster runs happily inside one process (each node on its own loopback
// port), which is how cmd/l2sd and the tests use it.
package native

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Store is a node's backing content source — the distributed file system
// of the paper's cluster, reduced to an interface. Implementations must be
// safe for concurrent use.
type Store interface {
	// Get returns the content of a file, or false if it does not exist.
	Get(path string) ([]byte, bool)
	// Paths lists all stored paths, for catalog endpoints.
	Paths() []string
}

// MemStore is an immutable in-memory Store.
type MemStore struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemStore builds a store from a path-to-content map.
func NewMemStore(files map[string][]byte) *MemStore {
	copied := make(map[string][]byte, len(files))
	for k, v := range files {
		copied[k] = v
	}
	return &MemStore{files: copied}
}

// SyntheticStore generates a store with the given number of files whose
// sizes follow the same popular-files-are-smaller shape as the trace
// generator: file i is named /f/<i> and sized around avgKB.
func SyntheticStore(files int, avgKB float64, seed int64) *MemStore {
	rng := rand.New(rand.NewSource(seed))
	m := make(map[string][]byte, files)
	for i := 0; i < files; i++ {
		size := int(avgKB * 1024 * (0.25 + rng.ExpFloat64()))
		if size < 64 {
			size = 64
		}
		body := make([]byte, size)
		for j := range body {
			body[j] = byte('a' + (i+j)%26)
		}
		m[fmt.Sprintf("/f/%d", i)] = body
	}
	return NewMemStore(m)
}

// Get implements Store.
func (s *MemStore) Get(path string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.files[path]
	return b, ok
}

// Paths implements Store.
func (s *MemStore) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.files))
	for k := range s.files {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Put adds or replaces a file (for tests and dynamic catalogs).
func (s *MemStore) Put(path string, content []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[path] = content
}
