package native

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// ClusterConfig configures an in-process cluster: every node gets its own
// loopback listener, cache, and state replica.
type ClusterConfig struct {
	Nodes        int
	Store        Store
	CacheBytes   int64
	Opts         Options
	MissPenalty  time.Duration
	ServePenalty time.Duration
}

// Cluster is a running set of native nodes.
type Cluster struct {
	nodes     []*Node
	servers   []*http.Server
	listeners []net.Listener
	urls      []string

	rrMu sync.Mutex
	rr   int
}

// StartCluster launches cfg.Nodes nodes on ephemeral loopback ports and
// wires them together. Call Shutdown when done.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("native: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("native: cluster needs a store")
	}
	c := &Cluster{}

	// Reserve a listener (and thus an address) per node first, so every
	// node can be born knowing the full peer list.
	for i := 0; i < cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.closeListeners()
			return nil, fmt.Errorf("native: listening: %w", err)
		}
		c.listeners = append(c.listeners, ln)
		c.urls = append(c.urls, "http://"+ln.Addr().String())
	}

	for i := 0; i < cfg.Nodes; i++ {
		node, err := NewNode(Config{
			ID:           i,
			Peers:        c.urls,
			Store:        cfg.Store,
			CacheBytes:   cfg.CacheBytes,
			Opts:         cfg.Opts,
			MissPenalty:  cfg.MissPenalty,
			ServePenalty: cfg.ServePenalty,
		})
		if err != nil {
			c.closeListeners()
			return nil, err
		}
		srv := &http.Server{Handler: node.Handler()}
		c.nodes = append(c.nodes, node)
		c.servers = append(c.servers, srv)
		go func(srv *http.Server, ln net.Listener) {
			_ = srv.Serve(ln)
		}(srv, c.listeners[i])
	}
	return c, nil
}

func (c *Cluster) closeListeners() {
	for _, ln := range c.listeners {
		_ = ln.Close()
	}
}

// URLs returns each node's base URL.
func (c *Cluster) URLs() []string {
	out := make([]string, len(c.urls))
	copy(out, c.urls)
	return out
}

// Node returns the i'th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Len returns the cluster size.
func (c *Cluster) Len() int { return len(c.nodes) }

// NextURL returns node base URLs in round-robin order — the client-side
// stand-in for round-robin DNS.
func (c *Cluster) NextURL() string {
	c.rrMu.Lock()
	defer c.rrMu.Unlock()
	u := c.urls[c.rr]
	c.rr = (c.rr + 1) % len(c.urls)
	return u
}

// Stop crashes one node — abruptly, as a real crash would: the listener
// and all its connections close immediately. The rest of the cluster is
// untouched.
func (c *Cluster) Stop(i int) error {
	return c.servers[i].Close()
}

// Shutdown stops every node.
func (c *Cluster) Shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	for _, srv := range c.servers {
		_ = srv.Shutdown(ctx)
	}
}

// Totals aggregates node statistics.
func (c *Cluster) Totals() Stats {
	var total Stats
	total.ID = -1
	for _, n := range c.nodes {
		s := n.Snapshot()
		total.Served += s.Served
		total.Proxied += s.Proxied
		total.Received += s.Received
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Fallbacks += s.Fallbacks
		total.GossipOut += s.GossipOut
	}
	if total.Hits+total.Misses > 0 {
		total.HitRate = float64(total.Hits) / float64(total.Hits+total.Misses)
	}
	return total
}
