package native

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Cluster is a running set of native nodes.
type Cluster struct {
	cfg  clusterConfig
	urls []string // immutable after Start

	mu        sync.RWMutex
	nodes     []*Node
	servers   []*http.Server
	listeners []net.Listener

	rrMu sync.Mutex
	rr   int
}

// Start launches a cluster of nodes on ephemeral loopback ports and wires
// them together: shared catalog, per-node caches and state replicas,
// gossip with bounded retry, heartbeat failure detection, and server-set
// anti-entropy. Call Shutdown when done.
func Start(opts ...Option) (*Cluster, error) {
	cfg := defaultClusterConfig()
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.store == nil {
		return nil, fmt.Errorf("native: cluster needs a store (use WithStore)")
	}
	c := &Cluster{cfg: cfg}

	// Reserve a listener (and thus an address) per node first, so every
	// node can be born knowing the full peer list.
	for i := 0; i < cfg.nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.closeListeners()
			return nil, fmt.Errorf("native: listening: %w", err)
		}
		c.listeners = append(c.listeners, ln)
		c.urls = append(c.urls, "http://"+ln.Addr().String())
	}
	if cfg.faults != nil {
		cfg.faults.register(c.urls)
	}

	for i := 0; i < cfg.nodes; i++ {
		node, err := c.newNode(i)
		if err != nil {
			c.closeListeners()
			return nil, err
		}
		srv := &http.Server{Handler: node.Handler()}
		c.nodes = append(c.nodes, node)
		c.servers = append(c.servers, srv)
		node.startLoops()
		go func(srv *http.Server, ln net.Listener) {
			_ = srv.Serve(ln)
		}(srv, c.listeners[i])
	}
	return c, nil
}

// newNode builds node i from the cluster's resolved configuration.
func (c *Cluster) newNode(i int) (*Node, error) {
	return NewNode(Config{
		ID:           i,
		Peers:        c.urls,
		Store:        c.cfg.store,
		CacheBytes:   c.cfg.cacheBytes,
		Opts:         c.cfg.l2s,
		MissPenalty:  c.cfg.missPenalty,
		ServePenalty: c.cfg.servePenalty,
		Health:       c.cfg.health,
		Retry:        c.cfg.retry,
		Faults:       c.cfg.faults,
		Seed:         c.cfg.seed + int64(i),
	})
}

func (c *Cluster) closeListeners() {
	for _, ln := range c.listeners {
		_ = ln.Close()
	}
}

// URLs returns each node's base URL.
func (c *Cluster) URLs() []string {
	out := make([]string, len(c.urls))
	copy(out, c.urls)
	return out
}

// Node returns the i'th node (the current incarnation, after any Restart).
func (c *Cluster) Node(i int) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes[i]
}

// Len returns the cluster size.
func (c *Cluster) Len() int { return len(c.urls) }

// NextURL returns node base URLs in round-robin order — the client-side
// stand-in for round-robin DNS.
func (c *Cluster) NextURL() string {
	c.rrMu.Lock()
	defer c.rrMu.Unlock()
	u := c.urls[c.rr]
	c.rr = (c.rr + 1) % len(c.urls)
	return u
}

// Stop crashes one node — abruptly, as a real crash would: the listener
// and all its connections close immediately, in-flight responses are
// truncated, and nothing is drained. The rest of the cluster detects the
// death through its failure detectors.
func (c *Cluster) Stop(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[i].stopLoops()
	return c.servers[i].Close()
}

// Restart brings a previously stopped node back on its old address with a
// cold cache and empty state — crash recovery. The rejoining node
// announces itself through heartbeats; peers mark it alive again and
// anti-entropy restores its server-set replica.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	addr := strings.TrimPrefix(c.urls[i], "http://")
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("native: restarting node %d: %w", i, err)
	}
	node, err := c.newNode(i)
	if err != nil {
		_ = ln.Close()
		return err
	}
	srv := &http.Server{Handler: node.Handler()}
	c.listeners[i], c.nodes[i], c.servers[i] = ln, node, srv
	node.startLoops()
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Shutdown drains every node gracefully: gossip loops stop first (so the
// cluster stops advertising), then each HTTP server finishes its in-flight
// requests before closing, bounded by a three-second deadline.
func (c *Cluster) Shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		n.stopLoops()
	}
	for _, srv := range c.servers {
		_ = srv.Shutdown(ctx)
	}
}

// Totals aggregates node statistics. DeadPeers is the worst single node's
// view (beliefs differ per node; summing them would double-count).
func (c *Cluster) Totals() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total Stats
	total.ID = -1
	for _, n := range c.nodes {
		s := n.Snapshot()
		total.Served += s.Served
		total.Proxied += s.Proxied
		total.Received += s.Received
		total.Hits += s.Hits
		total.Misses += s.Misses
		total.Retries += s.Retries
		total.Failovers += s.Failovers
		total.GossipOut += s.GossipOut
		total.GossipFail += s.GossipFail
		total.GossipRetry += s.GossipRetry
		if s.DeadPeers > total.DeadPeers {
			total.DeadPeers = s.DeadPeers
		}
	}
	if total.Hits+total.Misses > 0 {
		total.HitRate = float64(total.Hits) / float64(total.Hits+total.Misses)
	}
	return total
}
