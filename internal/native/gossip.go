package native

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Control-plane messages. All are tiny JSON documents POSTed to the peers'
// control endpoints — the HTTP equivalent of the paper's M-VIA
// point-to-point broadcasts. Handlers are idempotent, so retried or
// duplicated deliveries are harmless.

// LoadUpdate announces a node's current open-request count.
type LoadUpdate struct {
	Node int `json:"node"`
	Load int `json:"load"`
}

// SetUpdate announces a modification to a file's server set. Version is a
// per-path monotonic counter; replicas keep the highest version they have
// seen (see state.applySet).
type SetUpdate struct {
	Path    string `json:"path"`
	Nodes   []int  `json:"nodes"`
	Version uint64 `json:"version"`
}

// Ping is the gossip heartbeat: proof of life plus a fresh load sample, so
// heartbeats double as load anti-entropy.
type Ping struct {
	Node int `json:"node"`
	Load int `json:"load"`
}

const (
	loadPath = "/control/load"
	setPath  = "/control/set"
	pingPath = "/control/ping"
	syncPath = "/control/sync"
)

// gossiper pushes control messages to the cluster's peers with bounded
// retry and reports per-peer delivery outcomes to the failure detector.
type gossiper struct {
	self    int
	peers   []string // base URLs, indexed by node id; peers[self] unused
	client  *http.Client
	timeout time.Duration
	retry   RetryPolicy
	rng     *lockedRand

	// onResult is invoked once per delivery attempt with the outcome; the
	// node wires it to its health tracker.
	onResult func(peer int, ok bool)

	// Delivery counters, homed on the owning node's metric registry:
	// messages attempted (not per-retry), messages undelivered after the
	// retry budget, and extra attempts beyond the first.
	sent, failures, retries *obs.Counter
}

func newGossiper(self int, peers []string, retry RetryPolicy, transport http.RoundTripper, rng *lockedRand, m *nodeMetrics) *gossiper {
	if rng == nil {
		rng = newLockedRand(int64(self) + 1)
	}
	if m == nil {
		m = newNodeMetrics()
	}
	return &gossiper{
		sent:     m.gossipSent,
		failures: m.gossipFailed,
		retries:  m.gossipRetries,
		self:     self,
		peers:    peers,
		client:   &http.Client{Timeout: 2 * time.Second, Transport: transport},
		timeout:  2 * time.Second,
		retry:    retry,
		rng:      rng,
	}
}

// broadcast POSTs the JSON document to every peer concurrently and returns
// when all deliveries have been attempted. skip (optional) suppresses
// individual peers — the node passes its dead-peer filter for load and set
// gossip but not for heartbeats, which must keep probing dead peers to
// notice a rejoin. attempts caps delivery tries for this message; <= 0
// means the full retry budget.
func (g *gossiper) broadcast(path string, doc any, skip func(int) bool, attempts int) {
	body, err := json.Marshal(doc)
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for id, base := range g.peers {
		if id == g.self || base == "" || (skip != nil && skip(id)) {
			continue
		}
		wg.Add(1)
		go func(id int, base string) {
			defer wg.Done()
			g.send(id, base+path, body, attempts)
		}(id, base)
	}
	wg.Wait()
}

// sendTo delivers one document to one peer.
func (g *gossiper) sendTo(peer int, path string, doc any, attempts int) bool {
	base := g.peers[peer]
	if peer == g.self || base == "" {
		return false
	}
	body, err := json.Marshal(doc)
	if err != nil {
		return false
	}
	return g.send(peer, base+path, body, attempts)
}

// send delivers one message with bounded exponential backoff + jitter.
// Every attempt's outcome feeds the failure detector, so a run of losses
// advances the peer through suspect to dead even within one message.
func (g *gossiper) send(peer int, url string, body []byte, attempts int) bool {
	if attempts <= 0 {
		attempts = g.retry.Attempts
	}
	g.sent.Inc()
	for attempt := 1; ; attempt++ {
		ok := g.post(url, body)
		if g.onResult != nil {
			g.onResult(peer, ok)
		}
		if ok {
			return true
		}
		if attempt >= attempts {
			g.failures.Inc()
			return false
		}
		g.retries.Inc()
		time.Sleep(g.retry.backoff(attempt, g.rng))
	}
}

func (g *gossiper) post(url string, body []byte) bool {
	ctx, cancel := context.WithTimeout(context.Background(), g.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// stats reports how many control messages were sent, how many exhausted
// their retry budget, and how many retry attempts were spent.
func (g *gossiper) stats() (sent, failures, retries uint64) {
	return g.sent.Value(), g.failures.Value(), g.retries.Value()
}

// decodeJSON is a bounded JSON body decoder for the control handlers.
func decodeJSON(r *http.Request, into any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("native: decoding control message: %w", err)
	}
	return nil
}
