package native

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Control-plane messages. Both are tiny JSON documents POSTed to the
// peers' control endpoints — the HTTP equivalent of the paper's M-VIA
// point-to-point broadcasts.

// LoadUpdate announces a node's current open-request count.
type LoadUpdate struct {
	Node int `json:"node"`
	Load int `json:"load"`
}

// SetUpdate announces a modification to a file's server set.
type SetUpdate struct {
	Path  string `json:"path"`
	Nodes []int  `json:"nodes"`
}

const (
	loadPath = "/control/load"
	setPath  = "/control/set"
)

// gossiper pushes control messages to the cluster's peers.
type gossiper struct {
	self    int
	peers   []string // base URLs, indexed by node id; peers[self] unused
	client  *http.Client
	timeout time.Duration

	mu       sync.Mutex
	sent     uint64
	failures uint64
}

func newGossiper(self int, peers []string) *gossiper {
	return &gossiper{
		self:    self,
		peers:   peers,
		client:  &http.Client{Timeout: 2 * time.Second},
		timeout: 2 * time.Second,
	}
}

// broadcast POSTs the JSON document to every live peer concurrently and
// returns when all deliveries have been attempted.
func (g *gossiper) broadcast(path string, doc any) {
	body, err := json.Marshal(doc)
	if err != nil {
		return
	}
	var wg sync.WaitGroup
	for id, base := range g.peers {
		if id == g.self || base == "" {
			continue
		}
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			g.post(url, body)
		}(base + path)
	}
	wg.Wait()
}

func (g *gossiper) post(url string, body []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), g.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	g.mu.Lock()
	g.sent++
	if err != nil || resp.StatusCode != http.StatusOK {
		g.failures++
	}
	g.mu.Unlock()
	if err == nil {
		resp.Body.Close()
	}
}

// stats reports how many control messages were sent and how many failed.
func (g *gossiper) stats() (sent, failures uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sent, g.failures
}

// decodeJSON is a bounded JSON body decoder for the control handlers.
func decodeJSON(r *http.Request, into any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("native: decoding control message: %w", err)
	}
	return nil
}
