package native

import (
	"fmt"
	"sync"
	"time"
)

// PeerState is one node's belief about a peer's availability.
type PeerState int

const (
	// PeerAlive peers receive hand-offs and gossip normally.
	PeerAlive PeerState = iota
	// PeerSuspect peers have missed at least SuspectAfter consecutive
	// deliveries; they stay in server sets but are watched.
	PeerSuspect
	// PeerDead peers have missed DeadAfter consecutive deliveries; they are
	// evicted from server sets and skipped for hand-offs until a heartbeat
	// reaches them again (rejoin).
	PeerDead
)

func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	}
	return "unknown"
}

// HealthOptions tunes failure detection and anti-entropy.
type HealthOptions struct {
	// HeartbeatEvery is the period of the gossip heartbeat each node
	// broadcasts to every peer (dead ones included — that is how a
	// restarted node is re-detected).
	HeartbeatEvery time.Duration
	// SyncEvery is the period of server-set anti-entropy: each tick the
	// node pushes its full set state to one peer, round robin.
	SyncEvery time.Duration
	// SuspectAfter is the number of consecutive delivery failures that
	// mark a peer suspect.
	SuspectAfter int
	// DeadAfter is the number of consecutive delivery failures that mark a
	// peer dead. Must be >= SuspectAfter.
	DeadAfter int
}

// DefaultHealthOptions returns the live-traffic failure-detection tuning:
// half-second heartbeats, two-second anti-entropy, suspect on the first
// miss, dead on the third.
func DefaultHealthOptions() HealthOptions {
	return HealthOptions{
		HeartbeatEvery: 500 * time.Millisecond,
		SyncEvery:      2 * time.Second,
		SuspectAfter:   1,
		DeadAfter:      3,
	}
}

func (h HealthOptions) validate() error {
	if h.HeartbeatEvery <= 0 {
		return fmt.Errorf("native: heartbeat period must be positive, got %v", h.HeartbeatEvery)
	}
	if h.SyncEvery <= 0 {
		return fmt.Errorf("native: sync period must be positive, got %v", h.SyncEvery)
	}
	if h.SuspectAfter < 1 {
		return fmt.Errorf("native: SuspectAfter must be >= 1, got %d", h.SuspectAfter)
	}
	if h.DeadAfter < h.SuspectAfter {
		return fmt.Errorf("native: DeadAfter (%d) must be >= SuspectAfter (%d)", h.DeadAfter, h.SuspectAfter)
	}
	return nil
}

// healthTracker is one node's failure detector: consecutive delivery
// failures move a peer alive -> suspect -> dead; any successful delivery or
// received heartbeat moves it back to alive. Transitions fire callbacks
// (outside the lock) so the owner can repair server sets.
type healthTracker struct {
	mu     sync.Mutex
	self   int
	opts   HealthOptions
	states []PeerState
	fails  []int

	onDead  func(peer int) // fired on transition to PeerDead
	onAlive func(peer int) // fired on transition dead -> alive (rejoin)
}

func newHealthTracker(self, n int, opts HealthOptions) *healthTracker {
	return &healthTracker{
		self:   self,
		opts:   opts,
		states: make([]PeerState, n),
		fails:  make([]int, n),
	}
}

// observeSuccess records direct evidence that a peer is up (a delivery
// succeeded, or a heartbeat arrived from it).
func (h *healthTracker) observeSuccess(peer int) {
	if peer < 0 || peer >= len(h.states) || peer == h.self {
		return
	}
	h.mu.Lock()
	was := h.states[peer]
	h.states[peer] = PeerAlive
	h.fails[peer] = 0
	cb := h.onAlive
	h.mu.Unlock()
	if was == PeerDead && cb != nil {
		cb(peer)
	}
}

// observeFailure records a delivery failure and advances the peer through
// the suspect/dead lifecycle.
func (h *healthTracker) observeFailure(peer int) {
	if peer < 0 || peer >= len(h.states) || peer == h.self {
		return
	}
	h.mu.Lock()
	h.fails[peer]++
	was := h.states[peer]
	switch {
	case h.fails[peer] >= h.opts.DeadAfter:
		h.states[peer] = PeerDead
	case h.fails[peer] >= h.opts.SuspectAfter:
		if was == PeerAlive {
			h.states[peer] = PeerSuspect
		}
	}
	now := h.states[peer]
	cb := h.onDead
	h.mu.Unlock()
	if was != PeerDead && now == PeerDead && cb != nil {
		cb(peer)
	}
}

// forceDead marks a peer dead immediately, bypassing the failure budget.
func (h *healthTracker) forceDead(peer int) {
	if peer < 0 || peer >= len(h.states) || peer == h.self {
		return
	}
	h.mu.Lock()
	was := h.states[peer]
	h.states[peer] = PeerDead
	h.fails[peer] = h.opts.DeadAfter
	cb := h.onDead
	h.mu.Unlock()
	if was != PeerDead && cb != nil {
		cb(peer)
	}
}

// alive reports whether the peer should still receive traffic (suspect
// peers do; dead ones do not). A node always trusts itself.
func (h *healthTracker) alive(peer int) bool {
	if peer == h.self {
		return true
	}
	if peer < 0 || peer >= len(h.states) {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[peer] != PeerDead
}

// state returns the belief about one peer.
func (h *healthTracker) state(peer int) PeerState {
	if peer == h.self {
		return PeerAlive
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[peer]
}

// deadCount returns how many peers are currently believed dead.
func (h *healthTracker) deadCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for i, s := range h.states {
		if i != h.self && s == PeerDead {
			n++
		}
	}
	return n
}

// snapshot copies the per-peer states.
func (h *healthTracker) snapshot() []PeerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PeerState(nil), h.states...)
}
