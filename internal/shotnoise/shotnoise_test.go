package shotnoise

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"
)

func baseSpec() Spec {
	return Spec{
		Rate:         20,
		Horizon:      200,
		MeanRequests: 50,
		Lifetime:     5,
		Seed:         7,
	}
}

// TestDeterminism: same seed, byte-identical process across repeated runs
// and across GOMAXPROCS settings — generation is strictly sequential.
func TestDeterminism(t *testing.T) {
	ref := MustGenerate(baseSpec())
	for run := 0; run < 3; run++ {
		got := MustGenerate(baseSpec())
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("run %d differs from reference", run)
		}
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		got := MustGenerate(baseSpec())
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("GOMAXPROCS=%d changed the realization", procs)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := MustGenerate(baseSpec())
	s := baseSpec()
	s.Seed = 8
	b := MustGenerate(s)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical realizations")
	}
}

// TestProcessInvariants: the property every realization must satisfy —
// sorted times inside [0, Horizon), document ids in range, and (with a cap)
// no more than MaxDocs arrivals.
func TestProcessInvariants(t *testing.T) {
	specs := []Spec{
		baseSpec(),
		{Rate: 5, Horizon: 50, MeanRequests: 10, Lifetime: 100, Seed: 1},
		{Rate: 100, Horizon: 10, MeanRequests: 3, Lifetime: 0.5, WeightShape: 1.5, Seed: 2},
		{Rate: 10, Horizon: 40, MeanRequests: 20, Lifetime: 2, MaxDocs: 25, Seed: 3},
		{Rate: 0, Horizon: 30, Lifetime: 10, Seed: 4,
			Initial: []Doc{{Weight: 40}, {Weight: 10}, {Weight: 90}}},
	}
	for i, spec := range specs {
		p := MustGenerate(spec)
		if spec.MaxDocs > 0 && len(p.Docs) > spec.MaxDocs {
			t.Errorf("spec %d: %d docs exceed cap %d", i, len(p.Docs), spec.MaxDocs)
		}
		if len(p.Times) != len(p.DocOf) {
			t.Fatalf("spec %d: %d times for %d doc ids", i, len(p.Times), len(p.DocOf))
		}
		if p.NumRequests() != len(p.Times) {
			t.Fatalf("spec %d: NumRequests disagrees", i)
		}
		if !sort.Float64sAreSorted(p.Times) {
			t.Errorf("spec %d: request times not sorted", i)
		}
		for k, tm := range p.Times {
			if tm < 0 || tm >= spec.Horizon {
				t.Fatalf("spec %d: request %d at %v outside [0, %v)", i, k, tm, spec.Horizon)
			}
			id := p.DocOf[k]
			if id < 0 || int(id) >= len(p.Docs) {
				t.Fatalf("spec %d: request %d references doc %d of %d", i, k, id, len(p.Docs))
			}
			if tm < p.Docs[id].Arrival {
				t.Fatalf("spec %d: request %d at %v precedes its document's arrival %v",
					i, k, tm, p.Docs[id].Arrival)
			}
		}
	}
}

// TestDocArrivalStatistics: arrivals are Poisson(Rate) over the horizon —
// count near Rate*Horizon, exponential gaps with mean 1/Rate and CV ~ 1.
func TestDocArrivalStatistics(t *testing.T) {
	spec := Spec{Rate: 50, Horizon: 400, MeanRequests: 1, Lifetime: 1, Seed: 11}
	p := MustGenerate(spec)
	n := len(p.Docs)
	want := spec.Rate * spec.Horizon
	if math.Abs(float64(n)-want)/want > 0.05 {
		t.Errorf("doc count %d vs expected %.0f", n, want)
	}
	var gaps []float64
	for i := 1; i < n; i++ {
		gaps = append(gaps, p.Docs[i].Arrival-p.Docs[i-1].Arrival)
	}
	mean, cv2 := meanCV2(gaps)
	if math.Abs(mean-1/spec.Rate)/(1/spec.Rate) > 0.05 {
		t.Errorf("mean arrival gap %v vs 1/rate %v", mean, 1/spec.Rate)
	}
	if cv2 < 0.9 || cv2 > 1.1 {
		t.Errorf("arrival gap CV^2 %v, want ~1 (exponential)", cv2)
	}
}

// TestRequestCountMoments: for fixed weights a document arriving early in a
// long horizon emits Poisson(V) requests — sample mean and variance of the
// per-document counts must both be near V.
func TestRequestCountMoments(t *testing.T) {
	spec := Spec{Rate: 25, Horizon: 400, MeanRequests: 40, Lifetime: 2, Seed: 13}
	p := MustGenerate(spec)
	counts := make([]float64, len(p.Docs))
	for _, id := range p.DocOf {
		counts[id]++
	}
	// Only documents arriving well before the horizon edge, so truncation
	// (q < 1) is negligible and the count law is exactly Poisson(V).
	var full []float64
	for i, d := range p.Docs {
		if d.Arrival < spec.Horizon-10*spec.Lifetime {
			full = append(full, counts[i])
		}
	}
	if len(full) < 1000 {
		t.Fatalf("only %d untruncated documents", len(full))
	}
	mean, v := meanVar(full)
	if math.Abs(mean-spec.MeanRequests)/spec.MeanRequests > 0.03 {
		t.Errorf("mean requests per doc %v vs V=%v", mean, spec.MeanRequests)
	}
	if math.Abs(v-spec.MeanRequests)/spec.MeanRequests > 0.10 {
		t.Errorf("variance of requests per doc %v vs Poisson variance %v", v, spec.MeanRequests)
	}
}

// TestRequestAgeDistribution: request ages follow the exponential profile —
// for untruncated documents the mean age is the lifetime.
func TestRequestAgeDistribution(t *testing.T) {
	spec := Spec{Rate: 25, Horizon: 400, MeanRequests: 40, Lifetime: 3, Seed: 17}
	p := MustGenerate(spec)
	var sum float64
	var n int
	for k, tm := range p.Times {
		d := p.Docs[p.DocOf[k]]
		if d.Arrival < spec.Horizon-12*spec.Lifetime {
			sum += tm - d.Arrival
			n++
		}
	}
	mean := sum / float64(n)
	if math.Abs(mean-spec.Lifetime)/spec.Lifetime > 0.03 {
		t.Errorf("mean request age %v vs lifetime %v", mean, spec.Lifetime)
	}
}

// TestParetoWeights: WeightShape > 1 draws Pareto weights with the
// requested mean and a heavy tail (max far above the mean).
func TestParetoWeights(t *testing.T) {
	spec := Spec{Rate: 50, Horizon: 400, MeanRequests: 30, Lifetime: 1, WeightShape: 1.8, Seed: 19}
	p := MustGenerate(spec)
	var sum, max float64
	xm := spec.MeanRequests * (spec.WeightShape - 1) / spec.WeightShape
	for _, d := range p.Docs {
		sum += d.Weight
		if d.Weight > max {
			max = d.Weight
		}
		if d.Weight < xm {
			t.Fatalf("weight %v below the Pareto scale %v", d.Weight, xm)
		}
	}
	mean := sum / float64(len(p.Docs))
	if math.Abs(mean-spec.MeanRequests)/spec.MeanRequests > 0.15 {
		t.Errorf("mean weight %v vs requested %v", mean, spec.MeanRequests)
	}
	if max < 5*spec.MeanRequests {
		t.Errorf("max weight %v shows no heavy tail (mean %v)", max, spec.MeanRequests)
	}
}

// TestInitialDocs: initial documents are pinned to arrival 0 and dominate a
// zero-rate process.
func TestInitialDocs(t *testing.T) {
	spec := Spec{Rate: 0, Horizon: 100, Lifetime: 20, Seed: 23,
		Initial: []Doc{{Arrival: 99, Weight: 500}, {Weight: 100}}}
	p := MustGenerate(spec)
	if len(p.Docs) != 2 {
		t.Fatalf("got %d docs, want the 2 initial ones", len(p.Docs))
	}
	for i, d := range p.Docs {
		if d.Arrival != 0 {
			t.Errorf("initial doc %d arrival %v, want forced 0", i, d.Arrival)
		}
	}
	if p.NumRequests() == 0 {
		t.Fatal("initial docs emitted no requests")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Spec{
		{Rate: -1, Horizon: 1, MeanRequests: 1, Lifetime: 1},
		{Rate: math.Inf(1), Horizon: 1, MeanRequests: 1, Lifetime: 1},
		{Rate: 1, Horizon: 0, MeanRequests: 1, Lifetime: 1},
		{Rate: 1, Horizon: math.Inf(1), MeanRequests: 1, Lifetime: 1},
		{Rate: 1, Horizon: 1, MeanRequests: 0, Lifetime: 1},
		{Rate: 1, Horizon: 1, MeanRequests: 1, Lifetime: 0},
		{Rate: 1, Horizon: 1, MeanRequests: 1, Lifetime: math.NaN()},
		{Rate: 1, Horizon: 1, MeanRequests: 1, Lifetime: 1, WeightShape: 1},
		{Rate: 1, Horizon: 1, MeanRequests: 1, Lifetime: 1, MaxDocs: -2},
		{Rate: 0, Horizon: 1, Lifetime: 1},
		{Rate: 0, Horizon: 1, Lifetime: 1, Initial: []Doc{{Weight: 0}}},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if err := baseSpec().Validate(); err != nil {
		t.Errorf("base spec rejected: %v", err)
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate did not panic on an invalid spec")
		}
	}()
	MustGenerate(Spec{})
}

// TestPoissonSampler: both branches of the sampler (Knuth below mean 30,
// PTRS above) produce the right mean and variance.
func TestPoissonSampler(t *testing.T) {
	for _, mean := range []float64{0, 0.5, 4, 29.5, 31, 80, 400} {
		rng := rand.New(rand.NewSource(int64(mean*10) + 3))
		n := 20000
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(poisson(rng, mean))
		}
		m, v := meanVar(samples)
		if mean == 0 {
			if m != 0 {
				t.Errorf("poisson(0) drew %v", m)
			}
			continue
		}
		sigma := math.Sqrt(mean / float64(n))
		if math.Abs(m-mean) > 5*sigma {
			t.Errorf("poisson(%v): mean %v off by > 5 sigma", mean, m)
		}
		if math.Abs(v-mean)/mean > 0.1 {
			t.Errorf("poisson(%v): variance %v, want ~mean", mean, v)
		}
	}
}

func meanVar(xs []float64) (mean, variance float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs) - 1)
	return mean, variance
}

func meanCV2(xs []float64) (mean, cv2 float64) {
	m, v := meanVar(xs)
	return m, v / (m * m)
}
