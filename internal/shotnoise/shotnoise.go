// Package shotnoise synthesizes non-stationary request processes under the
// shot-noise (cluster point process) popularity model of Olmos, Graham &
// Simonian (Cache Miss Estimation for Non-Stationary Request Processes,
// arXiv:1511.07392): documents arrive as a Poisson process, and each
// arriving document emits its own Poisson stream of requests whose
// intensity decays exponentially over a finite lifetime. The hot set
// therefore rotates continuously — the regime the paper's stationary Zipf
// evaluation could not reach.
//
// Generation is deterministic and seedable like internal/zipf: one
// math/rand source consumed in a fixed order, so the same Spec produces a
// byte-identical Process on every run and under any GOMAXPROCS. The
// matching analytic miss probability lives in internal/queuemodel
// (ShotNoise.LRUMiss), which conformance tests pin against simulated runs
// over traces synthesized here.
package shotnoise

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Doc is one document of the process: its arrival time and its weight V —
// the expected number of requests it would emit over an infinite horizon.
type Doc struct {
	Arrival float64
	Weight  float64
}

// Spec parameterizes the process. Time is in arbitrary units (the simulator
// treats request order as the workload; open-loop runs impose wall time
// separately).
type Spec struct {
	// Rate is the document arrival rate (documents per time unit). Zero
	// means no churn arrivals — only Initial documents emit requests.
	Rate float64

	// Horizon is the synthesis window (0, Horizon]. Documents arrive within
	// it and requests beyond it are not generated.
	Horizon float64

	// MeanRequests is E[V], the expected requests per arriving document.
	MeanRequests float64

	// Lifetime is the mean of the exponential intensity profile: document
	// aged a emits requests at rate Weight * exp(-a/Lifetime) / Lifetime.
	// Long lifetimes recover a stationary workload; short ones churn fast.
	Lifetime float64

	// WeightShape selects the weight distribution of arriving documents:
	// 0 draws every weight equal to MeanRequests (the fixed-volume model
	// with a closed-form analytic); a value > 1 draws Pareto(WeightShape)
	// weights with mean MeanRequests, the heavy-tailed popularity mix of
	// real catalogs.
	WeightShape float64

	// MaxDocs, when positive, caps the number of arriving documents: later
	// arrivals are discarded, modeling a finite universe.
	MaxDocs int

	// Initial holds documents already present at time 0 with age 0 —
	// e.g. a pre-existing catalog whose popularity then decays. Their
	// Weight fields are used as-is; Arrival fields are ignored (forced 0).
	Initial []Doc

	Seed int64
}

// Validate reports parameter errors.
func (s Spec) Validate() error {
	switch {
	case s.Rate < 0 || math.IsInf(s.Rate, 0) || math.IsNaN(s.Rate):
		return fmt.Errorf("shotnoise: document rate %v must be finite and >= 0", s.Rate)
	case !(s.Horizon > 0) || math.IsInf(s.Horizon, 0):
		return fmt.Errorf("shotnoise: horizon %v must be positive and finite", s.Horizon)
	case !(s.Lifetime > 0) || math.IsInf(s.Lifetime, 0):
		return fmt.Errorf("shotnoise: lifetime %v must be positive and finite", s.Lifetime)
	case s.Rate > 0 && (!(s.MeanRequests > 0) || math.IsInf(s.MeanRequests, 0)):
		return fmt.Errorf("shotnoise: mean requests %v must be positive and finite", s.MeanRequests)
	case s.WeightShape != 0 && !(s.WeightShape > 1):
		return fmt.Errorf("shotnoise: weight shape %v must be 0 (fixed) or > 1 (Pareto)", s.WeightShape)
	case s.MaxDocs < 0:
		return fmt.Errorf("shotnoise: negative document cap %d", s.MaxDocs)
	case s.Rate == 0 && len(s.Initial) == 0:
		return fmt.Errorf("shotnoise: no documents: zero rate and no initial catalog")
	}
	for i, d := range s.Initial {
		if !(d.Weight > 0) || math.IsInf(d.Weight, 0) {
			return fmt.Errorf("shotnoise: initial document %d has weight %v, need > 0", i, d.Weight)
		}
	}
	return nil
}

// Process is one realization: the documents, and the request stream sorted
// by time. DocOf[k] indexes Docs for request k.
type Process struct {
	Docs  []Doc
	Times []float64
	DocOf []int32
}

// NumRequests returns the number of requests in the realization.
func (p *Process) NumRequests() int { return len(p.Times) }

// Generate realizes the process. The draw order is fixed — document
// arrivals and weights first, then each document's request count and times
// in document order — so a seed pins the output bytes exactly.
func Generate(spec Spec) (*Process, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	docs := make([]Doc, 0, len(spec.Initial)+16)
	for _, d := range spec.Initial {
		docs = append(docs, Doc{Arrival: 0, Weight: d.Weight})
	}
	if spec.Rate > 0 {
		for t := rng.ExpFloat64() / spec.Rate; t < spec.Horizon; t += rng.ExpFloat64() / spec.Rate {
			if spec.MaxDocs > 0 && len(docs) >= spec.MaxDocs {
				break
			}
			docs = append(docs, Doc{Arrival: t, Weight: drawWeight(rng, spec)})
		}
	}

	p := &Process{Docs: docs}
	for id, d := range docs {
		// Requests within the horizon: the profile mass a document of age
		// Horizon-Arrival has emitted is q = 1 - exp(-(Horizon-Arrival)/L),
		// so the in-window count is Poisson(Weight*q) and each time is an
		// inverse-CDF draw from the truncated exponential profile.
		q := -math.Expm1(-(spec.Horizon - d.Arrival) / spec.Lifetime)
		n := poisson(rng, d.Weight*q)
		for k := 0; k < n; k++ {
			age := -spec.Lifetime * math.Log1p(-rng.Float64()*q)
			p.Times = append(p.Times, d.Arrival+age)
			p.DocOf = append(p.DocOf, int32(id))
		}
	}
	sortByTime(p)
	return p, nil
}

// MustGenerate is Generate for specs known valid at compile time.
func MustGenerate(spec Spec) *Process {
	p, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// drawWeight samples one document weight: fixed, or Pareto with the spec's
// shape scaled to mean MeanRequests.
func drawWeight(rng *rand.Rand, spec Spec) float64 {
	if spec.WeightShape == 0 {
		return spec.MeanRequests
	}
	// Pareto(x_m, k) has mean x_m*k/(k-1); inverse CDF x_m*u^(-1/k).
	xm := spec.MeanRequests * (spec.WeightShape - 1) / spec.WeightShape
	u := 1 - rng.Float64() // (0, 1], avoids u = 0
	return xm * math.Pow(u, -1/spec.WeightShape)
}

// poisson draws a Poisson variate. Knuth's product method below mean 30
// (exact, and cheap at the per-document means this package sees); above it,
// the rejection sampler PTRS of Hörmann (1993), which is exact and O(1).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		limit := math.Exp(-mean)
		n := 0
		for prod := rng.Float64(); prod > limit; prod *= rng.Float64() {
			n++
		}
		return n
	}
	// PTRS ("Poisson Transformed Rejection with Squeeze").
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mean)-mean-lg {
			return int(k)
		}
	}
}

// sortByTime orders the request stream by (time, insertion order): ties —
// measure-zero but possible in floating point — break deterministically.
func sortByTime(p *Process) {
	idx := make([]int32, len(p.Times))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return p.Times[idx[a]] < p.Times[idx[b]]
	})
	times := make([]float64, len(p.Times))
	docs := make([]int32, len(p.DocOf))
	for i, j := range idx {
		times[i] = p.Times[j]
		docs[i] = p.DocOf[j]
	}
	p.Times, p.DocOf = times, docs
}
