// Package fastmap provides an open-addressed hash table specialized for the
// simulator's hottest lookups: int32 keys (file ids) mapped to small values.
//
// The runtime's map[int32]V pays for genericity on every access — interface
// hashing through the maphash seed, bucket overflow chains, and a tophash
// probe — none of which the simulator needs. This table is a single flat
// array probed linearly from a multiplicative hash, so the common case (the
// key is where the hash says, or one slot over) is one multiply, one shift,
// and one or two cache lines.
//
// Lookups, inserts, and deletes are strictly by key, so replacing a runtime
// map with a Map cannot reorder or change any computation that consumes the
// results: the simulator's outputs are bit-identical by construction.
//
// Deletion uses backward-shift compaction instead of tombstones: probe
// sequences stay as short as the load factor allows no matter how much
// insert/delete churn the table has seen, which matters for the LRU's
// eviction-heavy steady state.
package fastmap

import (
	"fmt"
	"math"
)

// empty marks an unoccupied slot. The key space is all of int32 except this
// one reserved value; Put panics on it rather than silently corrupting the
// table. File ids are non-negative, so the simulator never gets near it.
const empty int32 = math.MinInt32

// minCap keeps tiny tables a few cache lines wide instead of degenerate.
const minCap = 16

// Map is an open-addressed int32→V hash table. The zero value is not
// usable; call New. Map is not safe for concurrent use.
type Map[V any] struct {
	keys  []int32
	vals  []V
	n     int
	mask  uint32 // len(keys)-1; len is always a power of two
	shift uint   // 64 - log2(len(keys)), for multiply-shift hashing
	grows int    // rehash count, for Reserve tests and sizing diagnostics
}

// New returns a Map sized so that hint insertions do not trigger a grow.
func New[V any](hint int) *Map[V] {
	capacity := minCap
	// Grow happens above 1/2 load, so size for hint <= 1/2 * capacity.
	for capacity < hint*2 {
		capacity *= 2
	}
	m := &Map[V]{}
	m.init(capacity)
	return m
}

func (m *Map[V]) init(capacity int) {
	m.keys = make([]int32, capacity)
	m.vals = make([]V, capacity)
	for i := range m.keys {
		m.keys[i] = empty
	}
	m.mask = uint32(capacity - 1)
	m.shift = 64 - uint(log2(capacity))
}

func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// home returns the preferred slot for key k: a Fibonacci multiply-shift
// hash, which spreads the sequential file ids of a rank-ordered catalog
// across the table instead of clustering them.
func (m *Map[V]) home(k int32) uint32 {
	return uint32((uint64(uint32(k)) * 0x9e3779b97f4a7c15) >> m.shift)
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.n }

// Cap returns the number of insertions the table can absorb before the next
// rehash (half the slot count, the grow threshold).
func (m *Map[V]) Cap() int { return len(m.keys) / 2 }

// Grows returns how many times the table has rehash-doubled since New (or
// since the last Reserve large enough to rebuild it). A correctly pre-sized
// table reports zero.
func (m *Map[V]) Grows() int { return m.grows }

// Reserve grows the table, if needed, so that it can hold n live entries
// without any further rehash. Existing entries are preserved; lookups,
// inserts, and deletes are strictly by key, so a Reserve can never change
// any computation that consumes the map (only Range's unspecified iteration
// order may differ). Reserving for a catalog-sized key set up front turns a
// dozen rehash-doublings of a growing table into one allocation.
func (m *Map[V]) Reserve(n int) {
	capacity := len(m.keys)
	for capacity < n*2 {
		capacity *= 2
	}
	if capacity == len(m.keys) {
		return
	}
	m.rehash(capacity)
	m.grows = 0
}

// Get returns the value stored for k and whether it is present.
func (m *Map[V]) Get(k int32) (V, bool) {
	keys := m.keys
	for i := m.home(k); ; i = (i + 1) & m.mask {
		if keys[i] == k {
			return m.vals[i], true
		}
		if keys[i] == empty {
			var zero V
			return zero, false
		}
	}
}

// Contains reports whether k is present.
func (m *Map[V]) Contains(k int32) bool {
	keys := m.keys
	for i := m.home(k); ; i = (i + 1) & m.mask {
		if keys[i] == k {
			return true
		}
		if keys[i] == empty {
			return false
		}
	}
}

// Put stores v for k, replacing any previous value.
func (m *Map[V]) Put(k int32, v V) {
	if k == empty {
		panic(fmt.Sprintf("fastmap: key %d is reserved", k))
	}
	if (m.n+1)*2 > len(m.keys) {
		m.grow()
	}
	keys := m.keys
	for i := m.home(k); ; i = (i + 1) & m.mask {
		if keys[i] == k {
			m.vals[i] = v
			return
		}
		if keys[i] == empty {
			keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
	}
}

// Delete removes k, reporting whether it was present. Removal compacts the
// probe cluster in place (backward shift), so no tombstones accumulate.
func (m *Map[V]) Delete(k int32) bool {
	keys := m.keys
	i := m.home(k)
	for {
		if keys[i] == empty {
			return false
		}
		if keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	// Shift later cluster members back over the hole when their home
	// position permits it (i lies cyclically between home(j) and j).
	var zero V
	j := i
	for {
		j = (j + 1) & m.mask
		if keys[j] == empty {
			break
		}
		h := m.home(keys[j])
		if ((j - h) & m.mask) >= ((j - i) & m.mask) {
			keys[i] = keys[j]
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	keys[i] = empty
	m.vals[i] = zero
	m.n--
	return true
}

// Range calls fn for every entry until fn returns false. The iteration
// order is the table's internal slot order: deterministic for a given
// insert/delete history, but otherwise unspecified.
func (m *Map[V]) Range(fn func(k int32, v V) bool) {
	for i, k := range m.keys {
		if k == empty {
			continue
		}
		if !fn(k, m.vals[i]) {
			return
		}
	}
}

// grow doubles the table and reinserts every live entry.
func (m *Map[V]) grow() {
	m.grows++
	m.rehash(len(m.keys) * 2)
}

// rehash rebuilds the table at the given power-of-two capacity.
func (m *Map[V]) rehash(capacity int) {
	oldKeys, oldVals := m.keys, m.vals
	n := m.n
	m.init(capacity)
	m.n = n
	for i, k := range oldKeys {
		if k == empty {
			continue
		}
		keys := m.keys
		for j := m.home(k); ; j = (j + 1) & m.mask {
			if keys[j] == empty {
				keys[j] = k
				m.vals[j] = oldVals[i]
				break
			}
		}
	}
}
