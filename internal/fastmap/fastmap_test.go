package fastmap

import (
	"math"
	"math/rand"
	"testing"
)

// TestDifferentialChurn drives a Map and the built-in map through the same
// randomized insert/overwrite/delete/lookup history and demands identical
// answers at every step — the same discipline the LRU differential test
// applies to the intrusive list.
func TestDifferentialChurn(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		m := New[int64](0)
		ref := make(map[int32]int64)
		const keyspace = 600 // small enough that deletes hit often
		for op := 0; op < 200_000; op++ {
			k := int32(rng.Intn(keyspace))
			switch rng.Intn(4) {
			case 0, 1: // insert/overwrite
				v := rng.Int63()
				m.Put(k, v)
				ref[k] = v
			case 2: // delete
				got := m.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("seed %d op %d: Delete(%d)=%v want %v", seed, op, k, got, want)
				}
				delete(ref, k)
			case 3: // lookup
				gv, gok := m.Get(k)
				wv, wok := ref[k]
				if gok != wok || gv != wv {
					t.Fatalf("seed %d op %d: Get(%d)=(%v,%v) want (%v,%v)", seed, op, k, gv, gok, wv, wok)
				}
				if m.Contains(k) != wok {
					t.Fatalf("seed %d op %d: Contains(%d) != %v", seed, op, k, wok)
				}
			}
			if m.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len=%d want %d", seed, op, m.Len(), len(ref))
			}
		}
		// Full sweep: every surviving key agrees, and Range visits each
		// exactly once.
		seen := make(map[int32]bool)
		m.Range(func(k int32, v int64) bool {
			if seen[k] {
				t.Fatalf("seed %d: Range visited %d twice", seed, k)
			}
			seen[k] = true
			if wv, ok := ref[k]; !ok || wv != v {
				t.Fatalf("seed %d: Range(%d)=%v want (%v,%v)", seed, k, v, wv, ok)
			}
			return true
		})
		if len(seen) != len(ref) {
			t.Fatalf("seed %d: Range visited %d keys, want %d", seed, len(seen), len(ref))
		}
	}
}

// TestDeleteBackwardShift targets the compaction path with keys forced into
// one probe cluster: after deleting from the middle of the cluster, every
// remaining key must still be reachable.
func TestDeleteBackwardShift(t *testing.T) {
	m := New[int](64)
	// Sequential keys: the multiplicative hash spreads them, so collide a
	// cluster deliberately by filling past half of a fixed table.
	keys := make([]int32, 0, 24)
	for k := int32(0); k < 24; k++ {
		m.Put(k, int(k)*10)
		keys = append(keys, k)
	}
	for _, del := range []int32{5, 0, 23, 11, 12, 13} {
		if !m.Delete(del) {
			t.Fatalf("Delete(%d) missed", del)
		}
		for _, k := range keys {
			deleted := false
			for _, d := range []int32{5, 0, 23, 11, 12, 13} {
				if d == k {
					deleted = true
				}
			}
			v, ok := m.Get(k)
			if deleted && ok && v != int(k)*10 {
				t.Fatalf("deleted key %d resurfaced with %d", k, v)
			}
			if !deleted && (!ok || v != int(k)*10) {
				t.Fatalf("key %d lost after deleting %d: (%v,%v)", k, del, v, ok)
			}
		}
		keys2 := keys[:0]
		for _, k := range keys {
			if k != del {
				keys2 = append(keys2, k)
			}
		}
		keys = keys2
	}
}

// TestGrowPreservesEntries fills far past the initial capacity.
func TestGrowPreservesEntries(t *testing.T) {
	m := New[int32](0)
	const n = 50_000
	for k := int32(0); k < n; k++ {
		m.Put(k, -k)
	}
	if m.Len() != n {
		t.Fatalf("Len=%d want %d", m.Len(), n)
	}
	for k := int32(0); k < n; k++ {
		if v, ok := m.Get(k); !ok || v != -k {
			t.Fatalf("Get(%d)=(%v,%v) after grow", k, v, ok)
		}
	}
}

// TestNewHint checks hint sizing never makes an unusable table and a zero
// value of operations behave on an empty map.
func TestNewHint(t *testing.T) {
	for _, hint := range []int{-1, 0, 1, 15, 16, 17, 1000} {
		m := New[string](hint)
		if _, ok := m.Get(1); ok {
			t.Fatalf("hint %d: phantom entry", hint)
		}
		if m.Delete(1) {
			t.Fatalf("hint %d: deleted from empty map", hint)
		}
		m.Put(1, "x")
		if v, _ := m.Get(1); v != "x" {
			t.Fatalf("hint %d: lost insert", hint)
		}
	}
}

// TestReservedKeyPanics pins the reserved-sentinel contract.
func TestReservedKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Put(reserved) did not panic")
		}
	}()
	New[int](0).Put(math.MinInt32, 1)
}

// TestRangeEarlyStop checks Range honors a false return.
func TestRangeEarlyStop(t *testing.T) {
	m := New[int](0)
	for k := int32(0); k < 10; k++ {
		m.Put(k, 0)
	}
	visits := 0
	m.Range(func(int32, int) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("Range visited %d entries after false", visits)
	}
}
