package fastmap

import (
	"math/rand"
	"testing"
)

// TestReserveZeroRehash pins the Reserve contract that makes F=10^7 catalogs
// affordable: a table pre-sized for n insertions performs zero rehashes while
// absorbing them, at any n the simulator uses (catalog indexes, server-set
// tables, reuse trackers).
func TestReserveZeroRehash(t *testing.T) {
	for _, n := range []int{1, 100, 10_000, 1_000_000} {
		m := New[int32](0)
		m.Reserve(n)
		for k := int32(0); k < int32(n); k++ {
			m.Put(k, k)
		}
		if m.Grows() != 0 {
			t.Fatalf("n=%d: %d rehashes after Reserve(%d)", n, m.Grows(), n)
		}
		if m.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, m.Len())
		}
	}
}

// TestReservePreservesEntries reserves over a live table and checks every
// entry survives the rebuild, including after further churn.
func TestReservePreservesEntries(t *testing.T) {
	m := New[int64](0)
	ref := make(map[int32]int64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5_000; i++ {
		k := int32(rng.Intn(20_000))
		m.Put(k, int64(k)*3)
		ref[k] = int64(k) * 3
	}
	m.Reserve(200_000)
	if m.Len() != len(ref) {
		t.Fatalf("Len=%d want %d after Reserve", m.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("Get(%d)=(%v,%v) want %v after Reserve", k, got, ok, v)
		}
	}
	// Shrinking or equal reserves are no-ops.
	before := m.Cap()
	m.Reserve(10)
	if m.Cap() != before {
		t.Fatalf("Reserve(10) shrank table: cap %d -> %d", before, m.Cap())
	}
	for i := 0; i < 150_000; i++ {
		m.Put(int32(100_000+i), int64(i))
	}
	if m.Grows() != 0 {
		t.Fatalf("%d rehashes filling a Reserve(200000) table to %d entries",
			m.Grows(), m.Len())
	}
}

// TestGrowDifferentialMillionKeys drives the grow path through ≥10^6 keys —
// sixteen rehash-doublings from the minimum table — against the built-in map,
// interleaving deletes so backward-shift compaction runs between grows.
func TestGrowDifferentialMillionKeys(t *testing.T) {
	if testing.Short() {
		t.Skip("million-key differential in -short mode")
	}
	const n = 1 << 20
	m := New[int32](0)
	ref := make(map[int32]int32, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		k := int32(rng.Intn(2 * n))
		m.Put(k, k^0x5a5a)
		ref[k] = k ^ 0x5a5a
		if i%16 == 15 {
			d := int32(rng.Intn(2 * n))
			got := m.Delete(d)
			_, want := ref[d]
			if got != want {
				t.Fatalf("op %d: Delete(%d)=%v want %v", i, d, got, want)
			}
			delete(ref, d)
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", m.Len(), len(ref))
	}
	if m.Grows() == 0 {
		t.Fatal("grow path never exercised")
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("Get(%d)=(%v,%v) want %v", k, got, ok, v)
		}
	}
}

// BenchmarkGrowMillionKeys measures building a million-key table from the
// minimum size — every rehash-doubling included — which is what a catalog
// index pays when it is not Reserved.
func BenchmarkGrowMillionKeys(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New[int32](0)
		for k := int32(0); k < 1_000_000; k++ {
			m.Put(k, k)
		}
	}
}

// BenchmarkReserveMillionKeys is the same build after Reserve: the delta
// against BenchmarkGrowMillionKeys is the cost of the rehash-doublings.
func BenchmarkReserveMillionKeys(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New[int32](0)
		m.Reserve(1_000_000)
		for k := int32(0); k < 1_000_000; k++ {
			m.Put(k, k)
		}
	}
}
