package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestNodeConnectionAccounting(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 3, 1<<20)
	if n.ID != 3 || n.Load() != 0 {
		t.Fatalf("fresh node: id=%d load=%d", n.ID, n.Load())
	}
	n.AddConnection()
	n.AddConnection()
	if n.Load() != 2 {
		t.Fatalf("Load = %d, want 2", n.Load())
	}
	n.RemoveConnection()
	if n.Load() != 1 {
		t.Fatalf("Load = %d, want 1", n.Load())
	}
}

func TestNodeRemoveWithoutAddPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("RemoveConnection on idle node did not panic")
		}
	}()
	n.RemoveConnection()
}

func TestNodeMeanLoad(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, 1<<20)
	// Load 1 over [0,10), load 3 over [10,20).
	n.AddConnection()
	eng.Schedule(10, func() { n.AddConnection(); n.AddConnection() })
	eng.Schedule(20, func() {})
	eng.Run()
	if got := n.MeanLoad(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("MeanLoad = %v, want 2", got)
	}
	if n.MaxLoad() != 3 {
		t.Fatalf("MaxLoad = %v, want 3", n.MaxLoad())
	}
}

func TestNodeCPUIdle(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, 1<<20)
	n.CPU.Acquire(4, nil)
	eng.Schedule(10, func() {})
	eng.Run()
	if got := n.CPUIdle(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("CPUIdle = %v, want 0.6", got)
	}
}

func TestNodeFail(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, 1<<20)
	if n.Failed() {
		t.Fatal("fresh node must be alive")
	}
	n.Fail()
	if !n.Failed() {
		t.Fatal("Fail() did not mark the node")
	}
}

func TestNodeResetStats(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, 1<<20)
	n.Cache.Access(1, 100)
	n.CPU.Acquire(1, nil)
	eng.Run()
	n.AddConnection()
	n.ResetStats()
	if n.Cache.Stats().Total != 0 {
		t.Fatal("ResetStats must clear cache stats")
	}
	if !n.Cache.Contains(1) {
		t.Fatal("ResetStats must keep cache contents")
	}
	if n.Load() != 1 {
		t.Fatal("ResetStats must keep open connections")
	}
}
