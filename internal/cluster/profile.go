package cluster

import "fmt"

// Profile describes one node's hardware relative to the Table 1 baseline.
// The paper assumes "all cluster nodes are equally powerful"; a Profile
// relaxes that per node and per resource, which is what real fleets —
// mixed hardware generations, SSD tiers in front of disk tiers, one
// underprovisioned straggler — look like.
//
// The zero value of every field selects the baseline: speeds of 0 (or the
// explicit 1) mean "Table 1 rate", LinkKBps 0 means "the cluster network's
// configured link rate", CacheBytes 0 means "the cluster-wide default".
type Profile struct {
	// CPUSpeed is the node's relative CPU speed: all CPU service times at
	// the node divide by it. 0 or 1 is the baseline.
	CPUSpeed float64
	// DiskSpeed is the node's relative disk speed: all disk service times
	// at the node divide by it. 0 or 1 is the baseline; an SSD tier is a
	// large value here.
	DiskSpeed float64
	// LinkKBps is the node's network-interface line rate in KB/s. It
	// bounds wire serialization of intra-cluster transfers touching the
	// node and scales the size-dependent part of its NI service times.
	// 0 selects the cluster network's configured link rate.
	LinkKBps float64
	// CacheBytes is the node's main-memory file cache. 0 selects the
	// cluster-wide default.
	CacheBytes int64
}

// DefaultProfile returns the explicit Table 1 baseline: unit speeds,
// default link, default cache.
func DefaultProfile() Profile { return Profile{CPUSpeed: 1, DiskSpeed: 1} }

// Validate reports profile errors. Zero fields are legal (they select
// defaults); negative ones are not.
func (p Profile) Validate() error {
	switch {
	case p.CPUSpeed < 0:
		return fmt.Errorf("cluster: negative CPU speed %v", p.CPUSpeed)
	case p.DiskSpeed < 0:
		return fmt.Errorf("cluster: negative disk speed %v", p.DiskSpeed)
	case p.LinkKBps < 0:
		return fmt.Errorf("cluster: negative link rate %v", p.LinkKBps)
	case p.CacheBytes < 0:
		return fmt.Errorf("cluster: negative cache size %d", p.CacheBytes)
	}
	return nil
}

// Normalized returns the profile with zero speed fields replaced by the
// baseline 1. LinkKBps and CacheBytes stay 0 when defaulted — their
// concrete values belong to the network and server configuration.
func (p Profile) Normalized() Profile {
	if p.CPUSpeed == 0 {
		p.CPUSpeed = 1
	}
	if p.DiskSpeed == 0 {
		p.DiskSpeed = 1
	}
	return p
}
