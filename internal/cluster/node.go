// Package cluster models the hardware of one cluster node as used by the
// trace-driven simulator of Section 5: a CPU, a disk, and full-duplex
// network interfaces, each a contended FCFS service center, plus the node's
// main-memory file cache and its open-connection count (the load metric of
// both L2S and LARD).
package cluster

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Node is one cluster workstation.
type Node struct {
	ID    int
	CPU   *sim.Resource
	Disk  *sim.Resource
	NIIn  *sim.Resource // receive side of the network interface
	NIOut *sim.Resource // send side of the network interface
	Cache *cache.LRU

	open     int // open connections being serviced (the load metric)
	loadHist stats.TimeWeighted
	eng      *sim.Engine
	profile  Profile

	failed   bool
	failHook func()
}

// NewNode builds a baseline node with the given cache capacity in bytes.
func NewNode(eng *sim.Engine, id int, cacheBytes int64) *Node {
	p := DefaultProfile()
	p.CacheBytes = cacheBytes
	return NewProfiledNode(eng, id, p)
}

// NewProfiledNode builds a node from a hardware profile. The profile's
// CacheBytes must be resolved (positive or zero for an empty cache) by the
// caller; speeds are normalized so the zero value means baseline.
func NewProfiledNode(eng *sim.Engine, id int, p Profile) *Node {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	n := &Node{
		ID:      id,
		CPU:     sim.NewResource(eng, fmt.Sprintf("cpu%d", id), 1),
		Disk:    sim.NewResource(eng, fmt.Sprintf("disk%d", id), 1),
		NIIn:    sim.NewResource(eng, fmt.Sprintf("ni-in%d", id), 1),
		NIOut:   sim.NewResource(eng, fmt.Sprintf("ni-out%d", id), 1),
		Cache:   cache.NewLRU(p.CacheBytes),
		eng:     eng,
		profile: p.Normalized(),
	}
	n.loadHist.Set(0, 0)
	return n
}

// Profile returns the node's normalized hardware profile.
func (n *Node) Profile() Profile { return n.profile }

// CPUTime scales a baseline CPU service time by the node's CPU speed.
// Division by the baseline speed 1 is exact, so homogeneous runs are
// bit-identical to the pre-profile simulator.
func (n *Node) CPUTime(base float64) float64 { return base / n.profile.CPUSpeed }

// DiskTime scales a baseline disk service time by the node's disk speed.
func (n *Node) DiskTime(base float64) float64 { return base / n.profile.DiskSpeed }

// LinkKBps returns the node's NI line rate, or 0 when it uses the cluster
// network's default.
func (n *Node) LinkKBps() float64 { return n.profile.LinkKBps }

// Load returns the node's current number of open connections.
func (n *Node) Load() int { return n.open }

// AddConnection registers a newly assigned connection.
func (n *Node) AddConnection() {
	n.open++
	n.loadHist.Set(float64(n.open), n.eng.Now())
}

// RemoveConnection registers a completed connection.
func (n *Node) RemoveConnection() {
	if n.open == 0 {
		panic(fmt.Sprintf("cluster: node %d closing a connection it does not have", n.ID))
	}
	n.open--
	n.loadHist.Set(float64(n.open), n.eng.Now())
}

// MeanLoad returns the time-averaged open-connection count.
func (n *Node) MeanLoad() float64 { return n.loadHist.Average(n.eng.Now()) }

// MaxLoad returns the peak open-connection count.
func (n *Node) MaxLoad() float64 { return n.loadHist.Max() }

// CPUIdle returns the fraction of time the CPU has been idle.
func (n *Node) CPUIdle() float64 { return 1 - n.CPU.Utilization() }

// Fail marks the node as crashed. Resources keep draining queued work (the
// simulator does not rewind history), but policies must stop selecting the
// node, and new arrivals at it are aborted.
func (n *Node) Fail() {
	if n.failed {
		return
	}
	n.failed = true
	if n.failHook != nil {
		n.failHook()
	}
}

// SetFailHook registers a callback invoked once, synchronously, when the
// node fails. The network uses it to keep its dense live-node index in step
// with Fail without rescanning the fleet per broadcast; there is a single
// slot, so the last registration wins.
func (n *Node) SetFailHook(fn func()) { n.failHook = fn }

// Failed reports whether the node has crashed.
func (n *Node) Failed() bool { return n.failed }

// ResetStats starts a fresh measurement interval on all of the node's
// resources and its cache, preserving queue and cache state. Used at the
// end of cache warm-up.
func (n *Node) ResetStats() {
	n.CPU.ResetStats()
	n.Disk.ResetStats()
	n.NIIn.ResetStats()
	n.NIOut.ResetStats()
	n.Cache.ResetStats()
	n.loadHist.Reset(n.eng.Now())
}
