package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Scrape is a parsed Prometheus text exposition: sample values keyed by
// their full series name (including the label section for histogram
// buckets, e.g. `lat_bucket{le="0.5"}`), plus the declared type of each
// metric family.
type Scrape struct {
	Values map[string]float64
	Types  map[string]string
}

// ParsePrometheus parses Prometheus text exposition format (as served by
// /metricsz) strictly enough to act as a validity assertion in tests: every
// sample line must parse as `name[{labels}] value`, metric names must be
// syntactically valid, every sample must belong to a family declared by a
// preceding `# TYPE` line, and histogram bucket counts must be cumulative.
func ParsePrometheus(r io.Reader) (*Scrape, error) {
	s := &Scrape{Values: make(map[string]float64), Types: make(map[string]string)}
	lastBucket := make(map[string]uint64) // histogram name -> last cumulative count
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !ValidMetricName(name) {
					return nil, fmt.Errorf("obs: line %d: invalid metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown metric type %q", lineNo, kind)
				}
				if _, dup := s.Types[name]; dup {
					return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %q", lineNo, name)
				}
				s.Types[name] = kind
			}
			continue // other comments (e.g. HELP) are ignored
		}
		key, name, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		family := baseFamily(name, s.Types)
		if family == "" {
			return nil, fmt.Errorf("obs: line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		if _, dup := s.Values[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate sample %q", lineNo, key)
		}
		s.Values[key] = value
		if s.Types[family] == "histogram" && strings.HasSuffix(name, "_bucket") {
			cum := uint64(value)
			if float64(cum) != value || value < 0 {
				return nil, fmt.Errorf("obs: line %d: non-integer bucket count %v", lineNo, value)
			}
			if prev, ok := lastBucket[family]; ok && cum < prev {
				return nil, fmt.Errorf("obs: line %d: histogram %q bucket counts not cumulative", lineNo, family)
			}
			lastBucket[family] = cum
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSample splits one exposition sample line into its full key (name
// plus label section), bare metric name, and value.
func parseSample(line string) (key, name string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("malformed labels in %q", line)
		}
		name, key, rest = line[:i], line[:j+1], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name, key, rest = fields[0], fields[0], fields[1]
	}
	if !ValidMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", "", 0, fmt.Errorf("malformed sample value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	return key, name, v, nil
}

func parseValue(s string) (float64, error) {
	// Prometheus spells infinities +Inf/-Inf, which ParseFloat accepts too.
	return strconv.ParseFloat(s, 64)
}

// baseFamily maps a sample name to its declared family: the name itself,
// or — for histogram series — the name with its _bucket/_sum/_count suffix
// stripped. It returns "" when no declaration matches.
func baseFamily(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return ""
}
