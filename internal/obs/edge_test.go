package obs

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// failWriter errors on the first write, exercising the error returns of
// every exposition writer.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink closed") }

func TestHistogramIntrospection(t *testing.T) {
	var nilH *Histogram
	if b := nilH.Bounds(); b != nil {
		t.Fatalf("nil histogram Bounds = %v", b)
	}
	if c := nilH.BucketCount(0); c != 0 {
		t.Fatalf("nil histogram BucketCount = %d", c)
	}

	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	bounds := h.Bounds()
	if len(bounds) != 2 || bounds[0] != 1 || bounds[1] != 2 {
		t.Fatalf("Bounds = %v", bounds)
	}
	bounds[0] = -1 // must be a copy
	if h.Bounds()[0] != 1 {
		t.Fatal("Bounds returned aliased storage")
	}
	for i, want := range []uint64{1, 1, 1} { // two finite buckets + overflow
		if got := h.BucketCount(i); got != want {
			t.Fatalf("bucket %d count = %d, want %d", i, got, want)
		}
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("second Gauge lookup built a new instrument")
	}
	if r.Histogram("h", []float64{1}) != r.Histogram("h", []float64{1}) {
		t.Fatal("second Histogram lookup built a new instrument")
	}
}

func TestHistogramReregisterPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{1, 2})
	for _, bounds := range [][]float64{{1}, {1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("re-registering with bounds %v did not panic", bounds)
				}
			}()
			r.Histogram("h", bounds)
		}()
	}
}

func TestWritePrometheusInfinities(t *testing.T) {
	r := NewRegistry()
	r.Gauge("up").Set(math.Inf(1))
	r.Gauge("down").Set(math.Inf(-1))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "up +Inf") || !strings.Contains(out, "down -Inf") {
		t.Fatalf("infinities not rendered in Prometheus form:\n%s", out)
	}
}

func TestWritersPropagateErrors(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	if err := r.WritePrometheus(failWriter{}); err == nil {
		t.Error("counter write error swallowed")
	}

	rh := NewRegistry()
	rh.Histogram("h", []float64{1}).Observe(0.5)
	if err := rh.WritePrometheus(failWriter{}); err == nil {
		t.Error("histogram write error swallowed")
	}

	rec := NewSeries(1)
	rec.Record(0, 0.5, 0, "cpu_util", 1)
	if err := rec.WriteJSONL(failWriter{}); err == nil {
		t.Error("JSONL write error swallowed")
	}
	if err := rec.WriteChromeTrace(failWriter{}); err == nil {
		t.Error("Chrome trace write error swallowed")
	}
}

func TestParsePrometheusMoreRejects(t *testing.T) {
	bad := []string{
		"# TYPE x\n",                                   // malformed TYPE comment
		"# TYPE x counter extra\nx 1\n",                // malformed TYPE comment (too long)
		"# TYPE x counter\n# TYPE x gauge\nx 1\n",      // duplicate TYPE
		"# TYPE h histogram\nh_bucket{le=\"1\" 5\n",    // unbalanced labels
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5.5\n", // fractional bucket count
	}
	for _, text := range bad {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("parsed invalid exposition without error:\n%s", text)
		}
	}
	// HELP comments and blank lines are legal noise.
	good := "# HELP x helpful words\n\n# TYPE x counter\nx 3\n"
	s, err := ParsePrometheus(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Values["x"] != 3 {
		t.Fatalf("x = %v, want 3", s.Values["x"])
	}
}
