package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts CPU profiling to cpuPath and arranges a heap profile
// at memPath; either path may be empty to skip that profile. The returned
// stop function flushes and closes the outputs and must be called exactly
// once (typically deferred in main) — the heap profile is written at stop
// time, after a GC, so it reflects live memory at the end of the run.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
