// Package obs is the unified observability layer shared by the simulator
// and the native cluster: counters, gauges, and fixed-bucket histograms
// collected in a Registry and exported in Prometheus text exposition
// format, plus simulated-time series recording (see series.go).
//
// The layer is zero-cost when disabled. Every instrument is used through a
// pointer whose nil value is a valid no-op: (*Counter)(nil).Inc() performs
// one predictable branch and allocates nothing, so hot paths instrument
// unconditionally and pay nothing until a Registry is attached. Instruments
// update with atomics, so the native cluster's request handlers can share
// them across goroutines; the Prometheus writer takes a consistent-enough
// snapshot without stopping the world.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The nil Counter is a
// valid no-op sink.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric. The nil Gauge is a valid no-op
// sink.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 for the nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram in the Prometheus style: bucket i
// counts observations v <= bounds[i], with an implicit +Inf bucket at the
// end. The nil Histogram is a valid no-op sink.
type Histogram struct {
	name   string
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 for the nil Histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for the nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (nil for the nil Histogram).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCount returns the count of bucket i, where i == len(Bounds()) is
// the +Inf overflow bucket.
func (h *Histogram) BucketCount(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.counts[i].Load()
}

// Registry holds named instruments and renders them as Prometheus text.
// The nil Registry hands out nil instruments, so construction sites need no
// enabled/disabled branches either.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	histories map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		histories: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns the nil no-op Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkName(name)
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil registry
// returns the nil no-op Gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkName(name)
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given strictly increasing bucket bounds (the +Inf bucket is implicit).
// Re-registering a name with different bounds panics: two call sites
// disagreeing about buckets is a programming error. A nil registry returns
// the nil no-op Histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histories[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with %d bounds, had %d", name, len(bounds), len(h.bounds)))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	r.checkName(name)
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i, b := range bounds {
		if math.IsNaN(b) || (i > 0 && bounds[i-1] >= b) {
			panic(fmt.Sprintf("obs: histogram %q bounds must be strictly increasing, got %v", name, bounds))
		}
	}
	h := &Histogram{name: name, bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.histories[name] = h
	return h
}

// checkName enforces Prometheus metric-name syntax and cross-kind
// uniqueness; callers hold r.mu.
func (r *Registry) checkName(name string) {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	_, c := r.counters[name]
	_, g := r.gauges[name]
	_, h := r.histories[name]
	if c || g || h {
		panic(fmt.Sprintf("obs: metric %q already registered as a different kind", name))
	}
}

// ValidMetricName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format (version 0.0.4), sorted by metric name so output is
// deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histories))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histories {
		names = append(names, n)
	}
	sort.Strings(names)
	counters, gauges, histories := r.counters, r.gauges, r.histories
	r.mu.Unlock()

	for _, n := range names {
		var err error
		switch {
		case counters[n] != nil:
			c := counters[n]
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value())
		case gauges[n] != nil:
			g := gauges[n]
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, formatFloat(g.Value()))
		default:
			err = histories[n].writePrometheus(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (h *Histogram) writePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", h.name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		h.name, cum, h.name, formatFloat(h.Sum()), h.name, h.Count())
	return err
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
