package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Sample is one time-series observation: metric's value v over the
// simulated-time interval (t-dt, t]. Node is the cluster node the sample
// belongs to, or ClusterWide for whole-cluster signals.
type Sample struct {
	T      float64 `json:"t"`
	Dt     float64 `json:"dt"`
	Node   int     `json:"node"`
	Metric string  `json:"metric"`
	V      float64 `json:"v"`
}

// ClusterWide is the Node value of samples that describe the whole cluster
// (router utilization, throughput, forwarding fraction).
const ClusterWide = -1

// Series records interval-sampled time series from a simulation run: the
// driver registers an engine probe at the Series' interval and appends one
// batch of samples per tick. The recorder is single-threaded, like the
// simulation itself; do not share one Series between parallel runs. The nil
// Series is a valid no-op sink.
type Series struct {
	interval float64
	samples  []Sample
}

// NewSeries returns a recorder whose probe interval is the given number of
// simulated seconds.
func NewSeries(interval float64) *Series {
	if !(interval > 0) || math.IsInf(interval, 0) {
		panic(fmt.Sprintf("obs: series interval must be positive and finite, got %v", interval))
	}
	return &Series{interval: interval}
}

// Interval returns the configured sampling interval (0 for the nil Series).
func (s *Series) Interval() float64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// Record appends one sample. The nil Series discards it.
func (s *Series) Record(t, dt float64, node int, metric string, v float64) {
	if s == nil {
		return
	}
	s.samples = append(s.samples, Sample{T: t, Dt: dt, Node: node, Metric: metric, V: v})
}

// Len returns the number of recorded samples.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.samples)
}

// Samples returns the recorded samples in recording order. The slice is
// shared, not copied; treat it as read-only.
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// WeightedMean returns the dt-weighted mean of one (node, metric) series —
// the time average of the sampled signal. It returns 0 when no matching
// samples exist.
func (s *Series) WeightedMean(node int, metric string) float64 {
	if s == nil {
		return 0
	}
	var num, den float64
	for i := range s.samples {
		sm := &s.samples[i]
		if sm.Node != node || sm.Metric != metric {
			continue
		}
		num += sm.V * sm.Dt
		den += sm.Dt
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Metrics returns the distinct metric names recorded, sorted.
func (s *Series) Metrics() []string {
	if s == nil {
		return nil
	}
	seen := make(map[string]bool)
	for i := range s.samples {
		seen[s.samples[i].Metric] = true
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// WriteJSONL writes one JSON document per sample, in recording order — the
// artifact format behind the -series CLI flags.
func (s *Series) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range s.Samples() {
		if err := enc.Encode(&s.samples[i]); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace writes the series in Chrome trace_event format, loadable
// in chrome://tracing or Perfetto. Each sample becomes a counter ("ph":"C")
// event; each node is a process (cluster-wide signals are process 0), so
// the trace viewer draws one counter track per (node, metric). Timestamps
// are simulated microseconds.
func (s *Series) WriteChromeTrace(w io.Writer) error {
	samples := s.Samples()
	events := make([]chromeEvent, 0, len(samples)+8)
	named := make(map[int]bool)
	procName := func(node int) string {
		if node == ClusterWide {
			return "cluster"
		}
		return fmt.Sprintf("node %d", node)
	}
	for i := range samples {
		sm := &samples[i]
		pid := sm.Node + 1 // ClusterWide (-1) maps to process 0
		if !named[pid] {
			named[pid] = true
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": procName(sm.Node)},
			})
		}
		events = append(events, chromeEvent{
			Name: sm.Metric, Ph: "C", Pid: pid, Ts: sm.T * 1e6,
			Args: map[string]any{"value": sm.V},
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
