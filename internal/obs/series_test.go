package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSeriesRecordAndWeightedMean(t *testing.T) {
	s := NewSeries(0.5)
	if s.Interval() != 0.5 {
		t.Fatalf("interval = %v", s.Interval())
	}
	// Signal 1 for 1s, then 3 for 1s: time average 2.
	s.Record(1, 1, 0, "util", 1)
	s.Record(2, 1, 0, "util", 3)
	s.Record(2, 1, 1, "util", 10)        // other node must not mix in
	s.Record(2, 1, ClusterWide, "tp", 5) // other metric must not mix in
	if got := s.WeightedMean(0, "util"); got != 2 {
		t.Fatalf("weighted mean = %v, want 2", got)
	}
	if got := s.WeightedMean(0, "absent"); got != 0 {
		t.Fatalf("weighted mean of absent series = %v, want 0", got)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
	if got := s.Metrics(); len(got) != 2 || got[0] != "tp" || got[1] != "util" {
		t.Fatalf("metrics = %v", got)
	}
}

func TestSeriesNil(t *testing.T) {
	var s *Series
	s.Record(1, 1, 0, "m", 2)
	if s.Len() != 0 || s.Samples() != nil || s.Interval() != 0 || s.WeightedMean(0, "m") != 0 || s.Metrics() != nil {
		t.Fatalf("nil series is not inert")
	}
	var sb strings.Builder
	if err := s.WriteJSONL(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteJSONL wrote %q err %v", sb.String(), err)
	}
	if err := s.WriteChromeTrace(&sb); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
}

func TestNewSeriesPanics(t *testing.T) {
	for _, iv := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSeries(%v) did not panic", iv)
				}
			}()
			NewSeries(iv)
		}()
	}
}

func TestWriteJSONL(t *testing.T) {
	s := NewSeries(1)
	s.Record(0.25, 0.25, 2, "cpu_util", 0.75)
	s.Record(0.5, 0.25, ClusterWide, "throughput", 123)
	var sb strings.Builder
	if err := s.WriteJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	var got Sample
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	want := Sample{T: 0.25, Dt: 0.25, Node: 2, Metric: "cpu_util", V: 0.75}
	if got != want {
		t.Fatalf("sample = %+v, want %+v", got, want)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	s := NewSeries(1)
	s.Record(1, 1, 0, "cpu_util", 0.5)
	s.Record(1, 1, ClusterWide, "throughput", 42)
	s.Record(2, 1, 0, "cpu_util", 0.75)
	var sb strings.Builder
	if err := s.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Ts   float64        `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, counters int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "process_name" {
				t.Fatalf("unexpected metadata event %+v", ev)
			}
		case "C":
			counters++
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter event without value: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 { // node 0 and cluster
		t.Fatalf("got %d process_name events, want 2", meta)
	}
	if counters != 3 {
		t.Fatalf("got %d counter events, want 3", counters)
	}
	// Timestamps are microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" && ev.Name == "throughput" && ev.Ts != 1e6 {
			t.Fatalf("throughput ts = %v, want 1e6", ev.Ts)
		}
	}
}
