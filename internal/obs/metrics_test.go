package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}

	g := r.Gauge("load")
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1, 2, 100} {
		h.Observe(v)
	}
	// le semantics: v <= bound lands in that bucket.
	want := []uint64{2, 2, 1, 1} // (<=0.1)x2, (<=1)x2, (<=10)x1, +Inf x1
	for i, w := range want {
		if got := h.BucketCount(i); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+1+2+100; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if again := r.Histogram("lat", []float64{0.1, 1, 10}); again != h {
		t.Fatalf("re-registration returned a different histogram")
	}
}

func TestRegistryPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter("0bad") }},
		{"empty name", func(r *Registry) { r.Gauge("") }},
		{"kind clash", func(r *Registry) { r.Counter("x"); r.Gauge("x") }},
		{"no bounds", func(r *Registry) { r.Histogram("h", nil) }},
		{"unsorted bounds", func(r *Registry) { r.Histogram("h", []float64{1, 1}) }},
		{"bounds mismatch", func(r *Registry) {
			r.Histogram("h", []float64{1, 2})
			r.Histogram("h", []float64{1, 3})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic")
				}
			}()
			tc.f(NewRegistry())
		})
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(9)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil instruments recorded something")
	}
	if h.Bounds() != nil {
		t.Fatalf("nil histogram has bounds")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", sb.String(), err)
	}
}

// TestNilInstrumentsAllocFree is the zero-cost-when-disabled guarantee: the
// disabled (nil) instruments must not allocate on any hot-path operation.
func TestNilInstrumentsAllocFree(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
		s *Series
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		h.Observe(0.25)
		s.Record(1, 0.5, 0, "m", 2)
		_ = r.Counter("x")
	})
	if allocs != 0 {
		t.Fatalf("nil observability path allocates %v per op, want 0", allocs)
	}
}

// TestEnabledCounterAllocFree: even enabled, steady-state updates must not
// allocate (construction may).
func TestEnabledCounterAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{0.1, 1, 10})
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(2)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("enabled instrument updates allocate %v per op, want 0", allocs)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("histogram count=%d sum=%v, want 8000", h.Count(), h.Sum())
	}
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total").Add(7)
	r.Gauge("load").Set(2.5)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	sc, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, text)
	}
	checks := map[string]float64{
		"served_total":                  7,
		"load":                          2.5,
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    2,
		`lat_seconds_bucket{le="+Inf"}`: 3,
		"lat_seconds_sum":               50.55,
		"lat_seconds_count":             3,
	}
	for k, want := range checks {
		if got, ok := sc.Values[k]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v\n%s", k, got, ok, want, text)
		}
	}
	types := map[string]string{"served_total": "counter", "load": "gauge", "lat_seconds": "histogram"}
	for k, want := range types {
		if got := sc.Types[k]; got != want {
			t.Errorf("type of %s = %q, want %q", k, got, want)
		}
	}
}

func TestParsePrometheusRejects(t *testing.T) {
	bad := []string{
		"no_type_decl 5\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx 1 2 3\n",
		"# TYPE 9bad counter\n9bad 1\n",
		"# TYPE x widget\nx 1\n",
		"# TYPE x counter\nx 1\nx 2\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n",
	}
	for _, text := range bad {
		if _, err := ParsePrometheus(strings.NewReader(text)); err == nil {
			t.Errorf("parsed invalid exposition without error:\n%s", text)
		}
	}
}

func TestValidMetricName(t *testing.T) {
	valid := []string{"a", "A_b:c", "_x", "x9"}
	invalid := []string{"", "9x", "a-b", "a b", "a\n"}
	for _, n := range valid {
		if !ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = false, want true", n)
		}
	}
	for _, n := range invalid {
		if ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = true, want false", n)
		}
	}
}
