package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/cache"
)

// ParseCLF reads a WWW server access log in Common Log Format,
//
//	host ident user [date] "METHOD /path PROTO" status bytes
//
// and reduces it to a Trace the way the paper prepares its traces: only
// successful, complete GET requests with a known response size are kept
// ("we eliminated all incomplete requests in the traces"), each distinct
// path becomes a file, and a file's size is the largest response size seen
// for it (earlier truncated transfers are dropped by the status filter).
//
// Lines that fail to parse are skipped; the returned count reports them.
func ParseCLF(name string, r io.Reader) (*Trace, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	ids := make(map[string]cache.FileID)
	var sizes []int64
	var reqs []cache.FileID
	skipped := 0

	for sc.Scan() {
		line := sc.Text()
		path, status, size, ok := parseCLFLine(line)
		if !ok || status != 200 || size <= 0 {
			if line != "" {
				skipped++
			}
			continue
		}
		id, seen := ids[path]
		if !seen {
			id = cache.FileID(len(sizes))
			ids[path] = id
			sizes = append(sizes, size)
		} else if size > sizes[id] {
			sizes[id] = size
		}
		reqs = append(reqs, id)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: reading CLF log: %w", err)
	}
	if len(reqs) == 0 {
		return nil, skipped, fmt.Errorf("trace %s: no usable requests in log", name)
	}
	t := &Trace{Name: name, Sizes: sizes, Requests: reqs}
	return t, skipped, t.Validate()
}

// parseCLFLine extracts the request path, status, and byte count from one
// CLF line. It tolerates missing ident/user fields and quotes inside the
// request line by anchoring on the quoted request section.
func parseCLFLine(line string) (path string, status int, size int64, ok bool) {
	open := strings.IndexByte(line, '"')
	if open < 0 {
		return "", 0, 0, false
	}
	close := strings.LastIndexByte(line, '"')
	if close <= open {
		return "", 0, 0, false
	}
	request := line[open+1 : close]
	rest := strings.Fields(line[close+1:])
	if len(rest) < 2 {
		return "", 0, 0, false
	}
	st, err := strconv.Atoi(rest[0])
	if err != nil {
		return "", 0, 0, false
	}
	if rest[1] == "-" {
		return "", 0, 0, false
	}
	sz, err := strconv.ParseInt(rest[1], 10, 64)
	if err != nil || sz <= 0 {
		// A zero or negative byte count marks an incomplete transfer; the
		// paper's preparation drops those, so the parser rejects them.
		return "", 0, 0, false
	}
	parts := strings.Fields(request)
	if len(parts) < 2 || parts[0] != "GET" {
		return "", 0, 0, false
	}
	// Strip query strings: the paper's servers cache static files.
	p := parts[1]
	if q := strings.IndexByte(p, '?'); q >= 0 {
		p = p[:q]
	}
	if p == "" {
		// A bare "?" query with no path names no file.
		return "", 0, 0, false
	}
	return p, st, sz, true
}

// NewLogReader wraps r with transparent gzip decompression when the stream
// starts with the gzip magic — the Internet Traffic Archive distributes the
// paper's traces gzipped.
func NewLogReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReader(r)
	magic, err := br.Peek(2)
	if err != nil {
		// Too short to be compressed; hand back what we have.
		return br, nil
	}
	if magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip log: %w", err)
		}
		return zr, nil
	}
	return br, nil
}
