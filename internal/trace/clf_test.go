package trace

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"
	"testing/quick"
)

const sampleLog = `host1 - - [01/Mar/2000:00:00:01 -0500] "GET /index.html HTTP/1.0" 200 5120
host2 - - [01/Mar/2000:00:00:02 -0500] "GET /img/logo.gif HTTP/1.0" 200 2048
host1 - - [01/Mar/2000:00:00:03 -0500] "GET /index.html HTTP/1.0" 200 5120
host3 - - [01/Mar/2000:00:00:04 -0500] "GET /index.html HTTP/1.0" 304 -
host3 - - [01/Mar/2000:00:00:05 -0500] "POST /cgi-bin/form HTTP/1.0" 200 100
host4 - - [01/Mar/2000:00:00:06 -0500] "GET /missing.html HTTP/1.0" 404 230
garbage line without quotes
host5 - - [01/Mar/2000:00:00:07 -0500] "GET /big.mpg?quality=hi HTTP/1.0" 200 1048576
`

func TestParseCLF(t *testing.T) {
	tr, skipped, err := ParseCLF("sample", strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	// Kept: index.html x2, logo.gif, big.mpg. Skipped: 304, POST, 404, garbage.
	if tr.NumRequests() != 4 {
		t.Fatalf("requests = %d, want 4", tr.NumRequests())
	}
	if tr.NumFiles() != 3 {
		t.Fatalf("files = %d, want 3", tr.NumFiles())
	}
	if skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
	// Both index.html requests must map to the same id.
	if tr.Requests[0] != tr.Requests[2] {
		t.Fatal("same path must map to the same file id")
	}
	if tr.Size(tr.Requests[0]) != 5120 {
		t.Fatalf("index.html size = %d", tr.Size(tr.Requests[0]))
	}
}

func TestParseCLFQueryStringStripped(t *testing.T) {
	log := `h - - [d] "GET /a?x=1 HTTP/1.0" 200 10
h - - [d] "GET /a?x=2 HTTP/1.0" 200 10
`
	tr, _, err := ParseCLF("q", strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumFiles() != 1 {
		t.Fatalf("files = %d, want 1 (query strings stripped)", tr.NumFiles())
	}
}

func TestParseCLFSizeGrowsToMax(t *testing.T) {
	log := `h - - [d] "GET /a HTTP/1.0" 200 100
h - - [d] "GET /a HTTP/1.0" 200 300
h - - [d] "GET /a HTTP/1.0" 200 200
`
	tr, _, err := ParseCLF("m", strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Sizes[0] != 300 {
		t.Fatalf("size = %d, want the maximum 300", tr.Sizes[0])
	}
}

func TestParseCLFEmpty(t *testing.T) {
	if _, _, err := ParseCLF("empty", strings.NewReader("")); err == nil {
		t.Fatal("empty log should error")
	}
}

func TestParseCLFLineEdgeCases(t *testing.T) {
	bad := []string{
		``,
		`no quotes here 200 100`,
		`h - - [d] "GET" 200 100`,
		`h - - [d] "GET /a HTTP/1.0" xyz 100`,
		`h - - [d] "GET /a HTTP/1.0" 200 abc`,
		`h - - [d] "GET /a HTTP/1.0"`,
		`h - - [d] "HEAD /a HTTP/1.0" 200 100`,
	}
	for _, line := range bad {
		if _, _, _, ok := parseCLFLine(line); ok {
			t.Errorf("parseCLFLine(%q) accepted a bad line", line)
		}
	}
	path, status, size, ok := parseCLFLine(`h - - [d] "GET /a/b.html HTTP/1.1" 200 42`)
	if !ok || path != "/a/b.html" || status != 200 || size != 42 {
		t.Fatalf("parse = %q %d %d %v", path, status, size, ok)
	}
}

// Property: the parser never panics on arbitrary input lines.
func TestPropertyParseCLFLineTotal(t *testing.T) {
	prop := func(line string) bool {
		parseCLFLine(line) // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := MustGenerate(smallSpec())
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Alpha != tr.Alpha {
		t.Fatalf("header mismatch: %q %v", got.Name, got.Alpha)
	}
	if len(got.Sizes) != len(tr.Sizes) || len(got.Requests) != len(tr.Requests) {
		t.Fatal("length mismatch")
	}
	for i := range tr.Sizes {
		if got.Sizes[i] != tr.Sizes[i] {
			t.Fatalf("size %d mismatch", i)
		}
	}
	for i := range tr.Requests {
		if got.Requests[i] != tr.Requests[i] {
			t.Fatalf("request %d mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not a trace file at all")); err == nil {
		t.Fatal("garbage should fail to parse")
	}
	if _, err := Read(strings.NewReader("L2ST\x09\x00\x00\x00")); err == nil {
		t.Fatal("bad version should fail")
	}
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestNewLogReaderGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(sampleLog))
	zw.Close()
	r, err := NewLogReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := ParseCLF("gz", r)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRequests() != 4 {
		t.Fatalf("requests = %d, want 4", tr.NumRequests())
	}
}

func TestNewLogReaderPlain(t *testing.T) {
	r, err := NewLogReader(strings.NewReader(sampleLog))
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := ParseCLF("plain", r)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumRequests() != 4 {
		t.Fatalf("requests = %d", tr.NumRequests())
	}
}

func TestNewLogReaderTiny(t *testing.T) {
	if _, err := NewLogReader(strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
}
