package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
)

// Merge combines several traces into one hosting-service workload — the
// scenario the paper's introduction motivates, where "WWW pages from a
// large number of renters (individuals or corporations) are managed by the
// same set of nodes". Catalogs are concatenated (file ids offset so the
// renters' files stay distinct) and the request streams are interleaved at
// random, weighted by each trace's length, preserving every stream's
// internal order (and therefore its temporal locality).
func Merge(name string, seed int64, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: nothing to merge")
	}
	for _, t := range traces {
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("trace: merging %s: %w", t.Name, err)
		}
	}

	var totalFiles, totalReqs int
	hasClients := true
	for _, t := range traces {
		totalFiles += t.NumFiles()
		totalReqs += t.NumRequests()
		if t.Clients == nil {
			hasClients = false
		}
	}

	out := &Trace{
		Name:     name,
		Sizes:    make([]int64, 0, totalFiles),
		Requests: make([]cache.FileID, 0, totalReqs),
	}
	if hasClients {
		out.Clients = make([]int32, 0, totalReqs)
	}

	offsets := make([]int, len(traces))         // file-id offset per trace
	clientOffsets := make([]int32, len(traces)) // client-id offset per trace
	var fileOff int
	var clientOff int32
	for i, t := range traces {
		offsets[i] = fileOff
		out.Sizes = append(out.Sizes, t.Sizes...)
		fileOff += t.NumFiles()
		clientOffsets[i] = clientOff
		if hasClients {
			maxClient := int32(-1)
			for _, c := range t.Clients {
				if c > maxClient {
					maxClient = c
				}
			}
			clientOff += maxClient + 1
		}
	}

	// Weighted random interleave preserving per-trace order.
	rng := rand.New(rand.NewSource(seed))
	pos := make([]int, len(traces))
	remaining := totalReqs
	for remaining > 0 {
		// Draw a trace proportionally to its remaining requests.
		pick := rng.Intn(remaining)
		var src int
		for i, t := range traces {
			left := t.NumRequests() - pos[i]
			if pick < left {
				src = i
				break
			}
			pick -= left
		}
		t := traces[src]
		i := pos[src]
		pos[src]++
		remaining--
		out.Requests = append(out.Requests, t.Requests[i]+cache.FileID(offsets[src]))
		if hasClients {
			out.Clients = append(out.Clients, t.Clients[i]+clientOffsets[src])
		}
	}
	return out, out.Validate()
}
