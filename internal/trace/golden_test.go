package trace

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// Golden-stability regression: every stationary GenSpec must produce a
// byte-identical trace across refactors of Generate. The hashes below were
// computed before the non-stationary modes (churn/diurnal/flash) were added;
// the stationary path branches before a single RNG draw, so these pins must
// never need regeneration. If this test fails, the stationary generator's
// behavior changed — fix the code, do not update the hashes.
var stationaryGoldenSHA256 = map[string]string{
	"calgary":        "40c2ba1950d63cee50a50699a1dfb96e583bdaec8b9884243d1d25e0bf1c378f",
	"clarknet":       "6a47f19fe723bcd6201c8ac42124b95db4a14128347dc88aaf5ad37e39d804fd",
	"nasa":           "b88dd653f3bf20ff2e325050474197001f24893f51e22fb0f1a07c7d58069ac6",
	"rutgers":        "380ef604e1b17c1ece0b106f3fbf2d4833a7d6a562d127e699bc7fc54a187164",
	"custom-plain":   "1a8ef4dd523754c1deab64f96ffbcd7b1d764f2b6aabead6c7c05bc35008f8a1",
	"custom-clients": "a8f7652f8964d1421dd196da8d7a705c64e8146565946ec29f50f04961e12f52",
}

// stationaryGoldenSpecs returns the pinned specs: the four Table 2 traces at
// 2% scale (same code path, test-sized) plus two custom specs covering the
// head-boost and client-tagging branches.
func stationaryGoldenSpecs() []GenSpec {
	var specs []GenSpec
	for _, s := range PaperTraces() {
		specs = append(specs, s.Scaled(0.02))
	}
	return append(specs,
		GenSpec{Name: "custom-plain", Files: 5000, AvgFileKB: 20, Requests: 40000,
			AvgReqKB: 12, Alpha: 0.9, LocalityP: 0.3, Seed: 21},
		GenSpec{Name: "custom-clients", Files: 3000, AvgFileKB: 30, Requests: 30000,
			AvgReqKB: 18, Alpha: 1.1, LocalityP: 0.2, HeadBoost: 0.4, HeadFiles: 150,
			Clients: 500, ClientAlpha: 1.2, Seed: 22},
	)
}

func TestStationaryGenerateGolden(t *testing.T) {
	for _, spec := range stationaryGoldenSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, ok := stationaryGoldenSHA256[spec.Name]
			if !ok {
				t.Fatalf("no pinned hash for %s", spec.Name)
			}
			tr, err := Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			h := sha256.New()
			if _, err := tr.WriteTo(h); err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%x", h.Sum(nil)); got != want {
				t.Errorf("stationary trace %s changed: sha256 %s, pinned %s", spec.Name, got, want)
			}
		})
	}
}
