package trace

import (
	"reflect"
	"testing"

	"repro/internal/cache"
)

func churnSpec() GenSpec {
	return GenSpec{Name: "churn-test", Mode: ModeChurn, Files: 4000, AvgFileKB: 16,
		Requests: 60000, Horizon: 200, DocLifetime: 8, Seed: 31}
}

func flashSpec() GenSpec {
	return GenSpec{Name: "flash-test", Mode: ModeFlash, Files: 2000, AvgFileKB: 20,
		Requests: 50000, AvgReqKB: 12, Alpha: 0.9, LocalityP: 0.2,
		FlashStart: 0.4, FlashDur: 0.15, FlashFrac: 0.6, Seed: 33}
}

// TestChurnGenerate: the realization validates, fills the request budget,
// references a bounded catalog, and is deterministic in the seed.
func TestChurnGenerate(t *testing.T) {
	for _, spec := range []GenSpec{
		churnSpec(),
		{Mode: ModeChurn, Files: 1000, AvgFileKB: 8, Requests: 20000, Seed: 5}, // all-default knobs
		{Mode: ModeChurn, Files: 2000, AvgFileKB: 8, Requests: 20000,
			Horizon: 100, DocRate: 18, DocLifetime: 4, WeightShape: 1.6, Seed: 6},
		{Mode: ModeChurn, Files: 500, AvgFileKB: 8, Requests: 5000, Clients: 100, Seed: 7},
	} {
		tr, err := Generate(spec)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("churn trace invalid: %v", err)
		}
		if len(tr.Requests) != spec.Requests {
			t.Errorf("got %d requests, want %d", len(tr.Requests), spec.Requests)
		}
		if len(tr.Sizes) > spec.Files {
			t.Errorf("catalog %d exceeds the Files cap %d", len(tr.Sizes), spec.Files)
		}
		if spec.Clients > 0 && len(tr.Clients) != spec.Requests {
			t.Errorf("got %d client tags, want %d", len(tr.Clients), spec.Requests)
		}
		again := MustGenerate(spec)
		if !reflect.DeepEqual(tr, again) {
			t.Error("same churn spec generated different traces")
		}
	}
}

// TestChurnRotatesHotSet: the defining non-stationary property — the most
// popular documents of the first quarter and the last quarter of the stream
// barely overlap, where a stationary Zipf trace keeps the same head.
func TestChurnRotatesHotSet(t *testing.T) {
	tr := MustGenerate(churnSpec())
	n := len(tr.Requests)
	head := func(part []cache.FileID) map[cache.FileID]bool {
		counts := make(map[cache.FileID]int)
		for _, id := range part {
			counts[id]++
		}
		top := make(map[cache.FileID]bool)
		for k := 0; k < 20; k++ {
			var best cache.FileID = -1
			for id, c := range counts {
				if !top[id] && (best < 0 || c > counts[best]) {
					best = id
				}
			}
			top[best] = true
		}
		return top
	}
	early := head(tr.Requests[:n/4])
	late := head(tr.Requests[3*n/4:])
	overlap := 0
	for id := range early {
		if late[id] {
			overlap++
		}
	}
	if overlap > 5 {
		t.Errorf("hot sets overlap in %d of 20 top documents; churn should rotate them", overlap)
	}
}

// TestChurnErrors: churn-mode validation failures.
func TestChurnErrors(t *testing.T) {
	bad := []GenSpec{
		func() GenSpec { s := churnSpec(); s.LocalityP = 0.3; return s }(),
		func() GenSpec { s := churnSpec(); s.HeadBoost = 0.2; return s }(),
		// A tiny explicit per-document volume cannot fill the request budget.
		func() GenSpec { s := churnSpec(); s.DocMeanReqs = 0.001; return s }(),
		{Mode: ModeChurn, Files: 100, AvgFileKB: 8, Requests: 100, WeightShape: 0.5},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("churn spec %d accepted: %+v", i, s)
		}
	}
}

// TestFlashGenerate: the flash file is the appended catalog entry, absent
// before the window, near the target fraction inside it, and decaying after;
// the stream before the window is byte-identical to the stationary stream.
func TestFlashGenerate(t *testing.T) {
	spec := flashSpec()
	tr := MustGenerate(spec)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	stationary := spec
	stationary.Mode = ModeStationary
	stationary.FlashStart, stationary.FlashDur, stationary.FlashFrac = 0, 0, 0
	base := MustGenerate(stationary)

	if len(tr.Sizes) != len(base.Sizes)+1 {
		t.Fatalf("flash catalog has %d files, want stationary+1 = %d", len(tr.Sizes), len(base.Sizes)+1)
	}
	flashID := cache.FileID(len(base.Sizes))
	n := len(tr.Requests)
	start := int(spec.FlashStart * float64(n))
	end := start + int(spec.FlashDur*float64(n))

	if !reflect.DeepEqual(tr.Requests[:start], base.Requests[:start]) {
		t.Error("pre-flash stream differs from the stationary stream")
	}
	frac := func(lo, hi int) float64 {
		hits := 0
		for _, id := range tr.Requests[lo:hi] {
			if id == flashID {
				hits++
			}
		}
		return float64(hits) / float64(hi-lo)
	}
	if f := frac(0, start); f != 0 {
		t.Errorf("flash file requested before its window (frac %v)", f)
	}
	if f := frac(start, end); f < spec.FlashFrac-0.05 || f > spec.FlashFrac+0.05 {
		t.Errorf("in-window flash fraction %v, want ~%v", f, spec.FlashFrac)
	}
	tailEnd := end + (end-start)*3
	if f := frac(end, tailEnd); f >= spec.FlashFrac/2 {
		t.Errorf("post-window flash fraction %v did not decay", f)
	}
	if f := frac(tailEnd, n); f > 0.02 {
		t.Errorf("late-stream flash fraction %v, want ~0", f)
	}
	if !reflect.DeepEqual(tr, MustGenerate(spec)) {
		t.Error("same flash spec generated different traces")
	}
}

func TestFlashErrors(t *testing.T) {
	bad := []GenSpec{
		func() GenSpec { s := flashSpec(); s.FlashFrac = 1; return s }(),
		func() GenSpec { s := flashSpec(); s.FlashStart = 1; return s }(),
		func() GenSpec { s := flashSpec(); s.FlashStart = 0.9; s.FlashDur = 0.2; return s }(),
		func() GenSpec { s := flashSpec(); s.FlashDur = -1; return s }(),
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("flash spec %d accepted: %+v", i, s)
		}
	}
}

// TestDiurnalGenerate: diurnal mode is the stationary content verbatim —
// only the arrival-rate shape (consumed by open-loop runs) differs.
func TestDiurnalGenerate(t *testing.T) {
	spec := GenSpec{Name: "d", Mode: ModeDiurnal, Files: 1000, AvgFileKB: 20,
		Requests: 5000, AvgReqKB: 12, Alpha: 0.9, DiurnalAmp: 0.5, DiurnalPeriods: 2, Seed: 9}
	tr := MustGenerate(spec)
	stationary := spec
	stationary.Mode = ModeStationary
	stationary.DiurnalAmp, stationary.DiurnalPeriods = 0, 0
	if !reflect.DeepEqual(tr, MustGenerate(stationary)) {
		t.Error("diurnal content differs from the stationary stream")
	}
	for i, s := range []GenSpec{
		func() GenSpec { s := spec; s.DiurnalAmp = 1.5; return s }(),
		func() GenSpec { s := spec; s.DiurnalPeriods = -2; return s }(),
	} {
		if _, err := Generate(s); err == nil {
			t.Errorf("diurnal spec %d accepted: %+v", i, s)
		}
	}
}

func TestUnknownModeError(t *testing.T) {
	if _, err := Generate(GenSpec{Mode: "wavelet", Files: 10, AvgFileKB: 1, Requests: 10}); err == nil {
		t.Error("unknown mode accepted")
	}
}
