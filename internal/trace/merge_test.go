package trace

import (
	"testing"
)

func TestMergeCombinesCatalogsAndStreams(t *testing.T) {
	a := MustGenerate(GenSpec{Name: "a", Files: 100, AvgFileKB: 20, Requests: 5000, AvgReqKB: 10, Alpha: 1, Seed: 1})
	b := MustGenerate(GenSpec{Name: "b", Files: 50, AvgFileKB: 40, Requests: 2500, AvgReqKB: 30, Alpha: 0.8, Seed: 2})
	m, err := Merge("hosting", 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFiles() != 150 {
		t.Fatalf("files = %d, want 150", m.NumFiles())
	}
	if m.NumRequests() != 7500 {
		t.Fatalf("requests = %d, want 7500", m.NumRequests())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Requests from b must reference the offset catalog: sizes preserved.
	for i, sz := range b.Sizes {
		if m.Sizes[100+i] != sz {
			t.Fatalf("catalog offset broken at %d", i)
		}
	}
}

func TestMergePreservesPerTraceOrder(t *testing.T) {
	a := MustGenerate(GenSpec{Name: "a", Files: 10, AvgFileKB: 5, Requests: 300, AvgReqKB: 5, Alpha: 1, Seed: 3})
	b := MustGenerate(GenSpec{Name: "b", Files: 10, AvgFileKB: 5, Requests: 300, AvgReqKB: 5, Alpha: 1, Seed: 4})
	m, err := Merge("m", 7, a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the subsequence belonging to each source and compare.
	var gotA, gotB []int32
	for _, f := range m.Requests {
		if int(f) < 10 {
			gotA = append(gotA, int32(f))
		} else {
			gotB = append(gotB, int32(f)-10)
		}
	}
	if len(gotA) != 300 || len(gotB) != 300 {
		t.Fatalf("split %d/%d, want 300/300", len(gotA), len(gotB))
	}
	for i := range gotA {
		if gotA[i] != int32(a.Requests[i]) {
			t.Fatal("trace a's order not preserved")
		}
		if gotB[i] != int32(b.Requests[i]) {
			t.Fatal("trace b's order not preserved")
		}
	}
}

func TestMergeClients(t *testing.T) {
	a := MustGenerate(GenSpec{Name: "a", Files: 10, AvgFileKB: 5, Requests: 200, AvgReqKB: 5, Alpha: 1, Clients: 5, Seed: 5})
	b := MustGenerate(GenSpec{Name: "b", Files: 10, AvgFileKB: 5, Requests: 200, AvgReqKB: 5, Alpha: 1, Clients: 5, Seed: 6})
	m, err := Merge("m", 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Clients == nil {
		t.Fatal("clients lost in merge")
	}
	// Client ids from b are offset past a's: no collisions.
	seenHigh := false
	for i, f := range m.Requests {
		c := m.Clients[i]
		if int(f) >= 10 && c < 5 {
			t.Fatal("client collision across renters")
		}
		if c >= 5 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Fatal("no offset clients observed")
	}
	// If any input lacks clients, the merge drops them.
	c := MustGenerate(GenSpec{Name: "c", Files: 10, AvgFileKB: 5, Requests: 100, AvgReqKB: 5, Alpha: 1, Seed: 7})
	m2, err := Merge("m2", 1, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Clients != nil {
		t.Fatal("partial client info must not survive a merge")
	}
}

func TestMergeDeterministic(t *testing.T) {
	a := MustGenerate(GenSpec{Name: "a", Files: 10, AvgFileKB: 5, Requests: 500, AvgReqKB: 5, Alpha: 1, Seed: 1})
	m1, _ := Merge("m", 42, a, a)
	m2, _ := Merge("m", 42, a, a)
	for i := range m1.Requests {
		if m1.Requests[i] != m2.Requests[i] {
			t.Fatal("merge not deterministic")
		}
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge("x", 1); err == nil {
		t.Fatal("empty merge accepted")
	}
	invalid := &Trace{Name: "bad", Sizes: []int64{0}, Requests: nil}
	if _, err := Merge("x", 1, invalid); err == nil {
		t.Fatal("invalid input accepted")
	}
}
