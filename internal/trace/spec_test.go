package trace

import (
	"strings"
	"testing"
)

func TestParseGenSpecModes(t *testing.T) {
	cases := []struct {
		in   string
		want GenSpec
	}{
		{"stationary:files=5000,filekb=20,reqs=40000,reqkb=12,alpha=0.9,localp=0.3,seed=21",
			GenSpec{Files: 5000, AvgFileKB: 20, Requests: 40000, AvgReqKB: 12,
				Alpha: 0.9, LocalityP: 0.3, Seed: 21}},
		{"churn:files=20000,filekb=16,reqs=500000,lifetime=10,horizon=400,docrate=45,shape=1.6,seed=3",
			GenSpec{Mode: ModeChurn, Files: 20000, AvgFileKB: 16, Requests: 500000,
				DocLifetime: 10, Horizon: 400, DocRate: 45, WeightShape: 1.6, Seed: 3}},
		{"diurnal:files=1000,filekb=20,reqs=5000,reqkb=12,alpha=0.9,amp=0.7,periods=3",
			GenSpec{Mode: ModeDiurnal, Files: 1000, AvgFileKB: 20, Requests: 5000,
				AvgReqKB: 12, Alpha: 0.9, DiurnalAmp: 0.7, DiurnalPeriods: 3}},
		{"flash:files=1000,filekb=20,reqs=5000,reqkb=12,alpha=0.9,fstart=0.5,fdur=0.1,ffrac=0.8",
			GenSpec{Mode: ModeFlash, Files: 1000, AvgFileKB: 20, Requests: 5000,
				AvgReqKB: 12, Alpha: 0.9, FlashStart: 0.5, FlashDur: 0.1, FlashFrac: 0.8}},
		{"clarknet", mustPaperTrace(t, "clarknet")},
		{" calgary : reqs = 1000 ", withRequests(mustPaperTrace(t, "calgary"), 1000)},
		{"churn:name=rotate,files=100,filekb=8,reqs=200", GenSpec{Mode: ModeChurn,
			Name: "rotate", Files: 100, AvgFileKB: 8, Requests: 200}},
	}
	for _, c := range cases {
		got, err := ParseGenSpec(c.in)
		if err != nil {
			t.Errorf("ParseGenSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseGenSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func mustPaperTrace(t *testing.T, name string) GenSpec {
	t.Helper()
	s, err := PaperTrace(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func withRequests(s GenSpec, n int) GenSpec {
	s.Requests = n
	return s
}

func TestParseGenSpecErrors(t *testing.T) {
	bad := []string{
		"",
		":files=1",
		"no-such-mode",
		"stationary:",
		"stationary:files",
		"stationary:files=",
		"stationary:files=0",
		"stationary:files=abc",
		"stationary:files=1e3", // ints are decimal integers
		"stationary:localp=1",
		"stationary:alpha=NaN",
		"stationary:alpha=+Inf",
		"stationary:filekb=0",
		"stationary:files=1,files=2",
		"stationary:horizon=10", // churn-only key
		"churn:reqkb=12",        // zipf-content key not valid for churn
		"churn:shape=1",
		"churn:shape=0.5",
		"diurnal:amp=1",
		"flash:ffrac=0",
		"flash:ffrac=1",
		"flash:fstart=1",
		"stationary:name=",
		"stationary:seed=abc",
		"stationary:" + strings.Repeat("x", maxGenSpecLen),
	}
	for _, s := range bad {
		if spec, err := ParseGenSpec(s); err == nil {
			t.Errorf("ParseGenSpec(%q) accepted: %+v", s, spec)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []string{
		"stationary:files=5000,filekb=20,reqs=40000,reqkb=12,alpha=0.9,localp=0.3,seed=21",
		"churn:files=20000,filekb=16,reqs=500000,lifetime=10,shape=1.6,seed=3",
		"diurnal:files=1000,filekb=20,reqs=5000,reqkb=12,amp=0.7,periods=3",
		"flash:name=viral,files=1000,filekb=20,reqs=5000,reqkb=12,fstart=0.5,fdur=0.1,ffrac=0.8",
		"nasa",
		"rutgers:clients=500,clientalpha=1.2",
	}
	for _, in := range specs {
		spec, err := ParseGenSpec(in)
		if err != nil {
			t.Fatalf("ParseGenSpec(%q): %v", in, err)
		}
		canon := spec.SpecString()
		again, err := ParseGenSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, in, err)
		}
		if again != spec {
			t.Errorf("round trip of %q: %+v -> %q -> %+v", in, spec, canon, again)
		}
		if again.SpecString() != canon {
			t.Errorf("canonical form not a fixed point: %q -> %q", canon, again.SpecString())
		}
	}
	// The zero spec renders as the bare stationary mode.
	if got := (GenSpec{}).SpecString(); got != "stationary" {
		t.Errorf("zero spec renders as %q", got)
	}
}

// TestSpecStringPaperTraces: every paper trace's canonical form re-parses
// to the published spec, so CLIs can log and replay them verbatim.
func TestSpecStringPaperTraces(t *testing.T) {
	for _, s := range PaperTraces() {
		again, err := ParseGenSpec(s.SpecString())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if again != s {
			t.Errorf("%s: canonical form %q re-parses to %+v", s.Name, s.SpecString(), again)
		}
	}
}
