package trace

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file is the generation-spec grammar: the single string form in which
// CLIs (cmd/tracegen -spec, the experiment drivers) name a synthetic
// workload together with its tunables, mirroring the policy-spec grammar of
// internal/policy. A spec reads
//
//	mode[:key=value,key=value,...]
//
// where mode is one of stationary, churn, diurnal, flash — or the name of a
// paper trace (calgary, clarknet, nasa, rutgers), which starts from that
// trace's published parameters and applies the overrides on top. Examples:
//
//	churn:files=20000,reqs=500000,lifetime=10,seed=3
//	flash:files=8000,filekb=20,reqs=300000,reqkb=12,alpha=0.9,ffrac=0.7
//	clarknet:reqs=100000
//
// Keys are typed and range-checked per mode; ParseGenSpec never generates a
// trace, it only builds the validated GenSpec. SpecString is the canonical
// inverse: it emits a form that re-parses to the identical spec, which the
// fuzz harness holds as an invariant.

// maxGenSpecLen bounds accepted spec text; real specs are tens of bytes.
const maxGenSpecLen = 512

// genParam is one typed, range-checked key of the grammar. Int values are
// parsed as decimal integers; both kinds travel as float64 (exact for every
// in-range int the grammar admits).
type genParam struct {
	key   string
	isInt bool

	min, max         float64
	minExcl, maxExcl bool

	// check, when set, replaces the min/max range test (e.g. the Pareto
	// shape's "0 or > 1" domain).
	check func(v float64) error

	get func(s GenSpec) float64
	set func(s *GenSpec, v float64)
}

func (p genParam) inRange(v float64) error {
	if p.check != nil {
		return p.check(v)
	}
	ok := !math.IsNaN(v) &&
		(v > p.min || (!p.minExcl && v == p.min)) &&
		(v < p.max || (!p.maxExcl && v == p.max))
	if !ok {
		lo, hi := "[", "]"
		if p.minExcl {
			lo = "("
		}
		if p.maxExcl {
			hi = ")"
		}
		return fmt.Errorf("value %v out of range %s%v, %v%s", v, lo, p.min, p.max, hi)
	}
	return nil
}

// commonGenParams are accepted by every mode.
var commonGenParams = []genParam{
	{key: "files", isInt: true, min: 1, max: 5e7,
		get: func(s GenSpec) float64 { return float64(s.Files) },
		set: func(s *GenSpec, v float64) { s.Files = int(v) }},
	{key: "filekb", min: 0, minExcl: true, max: 1e6,
		get: func(s GenSpec) float64 { return s.AvgFileKB },
		set: func(s *GenSpec, v float64) { s.AvgFileKB = v }},
	{key: "reqs", isInt: true, min: 1, max: 1e9,
		get: func(s GenSpec) float64 { return float64(s.Requests) },
		set: func(s *GenSpec, v float64) { s.Requests = int(v) }},
	{key: "sigma", min: 0, max: 10,
		get: func(s GenSpec) float64 { return s.SizeSigma },
		set: func(s *GenSpec, v float64) { s.SizeSigma = v }},
	{key: "clients", isInt: true, min: 0, max: 1e8,
		get: func(s GenSpec) float64 { return float64(s.Clients) },
		set: func(s *GenSpec, v float64) { s.Clients = int(v) }},
	{key: "clientalpha", min: 0, minExcl: true, max: 5,
		get: func(s GenSpec) float64 { return s.ClientAlpha },
		set: func(s *GenSpec, v float64) { s.ClientAlpha = v }},
}

// zipfGenParams shape the stationary Zipf content; they apply to every mode
// except churn, whose popularity structure comes from the shot-noise model.
var zipfGenParams = []genParam{
	{key: "reqkb", min: 0, minExcl: true, max: 1e6,
		get: func(s GenSpec) float64 { return s.AvgReqKB },
		set: func(s *GenSpec, v float64) { s.AvgReqKB = v }},
	{key: "alpha", min: 0, max: 5,
		get: func(s GenSpec) float64 { return s.Alpha },
		set: func(s *GenSpec, v float64) { s.Alpha = v }},
	{key: "localp", min: 0, max: 1, maxExcl: true,
		get: func(s GenSpec) float64 { return s.LocalityP },
		set: func(s *GenSpec, v float64) { s.LocalityP = v }},
	{key: "depth", isInt: true, min: 1, max: 1e7,
		get: func(s GenSpec) float64 { return float64(s.LocalityDepth) },
		set: func(s *GenSpec, v float64) { s.LocalityDepth = int(v) }},
	{key: "headboost", min: 0, max: 1, maxExcl: true,
		get: func(s GenSpec) float64 { return s.HeadBoost },
		set: func(s *GenSpec, v float64) { s.HeadBoost = v }},
	{key: "headfiles", isInt: true, min: 1, max: 5e7,
		get: func(s GenSpec) float64 { return float64(s.HeadFiles) },
		set: func(s *GenSpec, v float64) { s.HeadFiles = int(v) }},
}

var churnGenParams = []genParam{
	{key: "horizon", min: 0, minExcl: true, max: 1e9,
		get: func(s GenSpec) float64 { return s.Horizon },
		set: func(s *GenSpec, v float64) { s.Horizon = v }},
	{key: "docrate", min: 0, minExcl: true, max: 1e9,
		get: func(s GenSpec) float64 { return s.DocRate },
		set: func(s *GenSpec, v float64) { s.DocRate = v }},
	{key: "lifetime", min: 0, minExcl: true, max: 1e9,
		get: func(s GenSpec) float64 { return s.DocLifetime },
		set: func(s *GenSpec, v float64) { s.DocLifetime = v }},
	{key: "docreqs", min: 0, max: 1e9,
		get: func(s GenSpec) float64 { return s.DocMeanReqs },
		set: func(s *GenSpec, v float64) { s.DocMeanReqs = v }},
	{key: "shape",
		check: func(v float64) error {
			if v == 0 || (v > 1 && v <= 100) {
				return nil
			}
			return fmt.Errorf("value %v must be 0 (fixed weights) or in (1, 100] (Pareto)", v)
		},
		get: func(s GenSpec) float64 { return s.WeightShape },
		set: func(s *GenSpec, v float64) { s.WeightShape = v }},
}

var diurnalGenParams = []genParam{
	{key: "amp", min: 0, minExcl: true, max: 1, maxExcl: true,
		get: func(s GenSpec) float64 { return s.DiurnalAmp },
		set: func(s *GenSpec, v float64) { s.DiurnalAmp = v }},
	{key: "periods", min: 0, minExcl: true, max: 1e4,
		get: func(s GenSpec) float64 { return s.DiurnalPeriods },
		set: func(s *GenSpec, v float64) { s.DiurnalPeriods = v }},
}

var flashGenParams = []genParam{
	{key: "fstart", min: 0, max: 1, maxExcl: true,
		get: func(s GenSpec) float64 { return s.FlashStart },
		set: func(s *GenSpec, v float64) { s.FlashStart = v }},
	{key: "fdur", min: 0, minExcl: true, max: 1,
		get: func(s GenSpec) float64 { return s.FlashDur },
		set: func(s *GenSpec, v float64) { s.FlashDur = v }},
	{key: "ffrac", min: 0, minExcl: true, max: 1, maxExcl: true,
		get: func(s GenSpec) float64 { return s.FlashFrac },
		set: func(s *GenSpec, v float64) { s.FlashFrac = v }},
}

// genParamsFor returns the ordered key set a mode accepts; the order is the
// canonical emission order of SpecString.
func genParamsFor(mode string) []genParam {
	params := append([]genParam(nil), commonGenParams...)
	if mode != ModeChurn {
		params = append(params, zipfGenParams...)
	}
	switch mode {
	case ModeChurn:
		params = append(params, churnGenParams...)
	case ModeDiurnal:
		params = append(params, diurnalGenParams...)
	case ModeFlash:
		params = append(params, flashGenParams...)
	}
	return params
}

func findGenParam(params []genParam, key string) (genParam, bool) {
	for _, p := range params {
		if p.key == key {
			return p, true
		}
	}
	return genParam{}, false
}

func genParamKeys(params []genParam) string {
	keys := make([]string, 0, len(params)+2)
	keys = append(keys, "name", "seed")
	for _, p := range params {
		keys = append(keys, p.key)
	}
	return strings.Join(keys, ", ")
}

// ParseGenSpec parses and validates a generation spec without synthesizing
// a trace. Unknown modes, unknown keys, malformed values, and out-of-range
// values are all errors that name the accepted alternatives.
func ParseGenSpec(s string) (GenSpec, error) {
	if len(s) > maxGenSpecLen {
		return GenSpec{}, fmt.Errorf("trace: spec longer than %d bytes", maxGenSpecLen)
	}
	head, paramText, hasParams := strings.Cut(s, ":")
	head = strings.TrimSpace(head)
	if head == "" {
		return GenSpec{}, fmt.Errorf("trace: empty mode in spec %q", s)
	}
	var spec GenSpec
	switch head {
	case "stationary":
		spec.Mode = ModeStationary
	case ModeChurn, ModeDiurnal, ModeFlash:
		spec.Mode = head
	default:
		ps, err := PaperTrace(head)
		if err != nil {
			return GenSpec{}, fmt.Errorf("trace: unknown mode %q (valid: stationary, churn, diurnal, flash, or a paper trace: calgary, clarknet, nasa, rutgers)", head)
		}
		spec = ps
	}
	params := genParamsFor(spec.Mode)
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(paramText) == "" {
		return GenSpec{}, fmt.Errorf("trace: spec %q has an empty parameter list", s)
	}
	seen := make(map[string]bool)
	for _, kv := range strings.Split(paramText, ",") {
		keyText, valText, ok := strings.Cut(kv, "=")
		key := strings.TrimSpace(keyText)
		val := strings.TrimSpace(valText)
		if !ok || key == "" {
			return GenSpec{}, fmt.Errorf("trace: parameter %q in spec %q is not key=value", kv, s)
		}
		if seen[key] {
			return GenSpec{}, fmt.Errorf("trace: parameter %q repeated in spec %q", key, s)
		}
		seen[key] = true
		switch key {
		case "name":
			if val == "" {
				return GenSpec{}, fmt.Errorf("trace: empty name in spec %q", s)
			}
			spec.Name = val
			continue
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return GenSpec{}, fmt.Errorf("trace: seed %q is not an integer", val)
			}
			spec.Seed = n
			continue
		}
		p, found := findGenParam(params, key)
		if !found {
			return GenSpec{}, fmt.Errorf("trace: mode %s has no parameter %q (accepted: %s)",
				modeLabel(spec.Mode), key, genParamKeys(params))
		}
		var v float64
		if p.isInt {
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return GenSpec{}, fmt.Errorf("trace: parameter %s=%q is not an integer", key, val)
			}
			v = float64(n)
		} else {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsInf(f, 0) {
				return GenSpec{}, fmt.Errorf("trace: parameter %s=%q is not a finite number", key, val)
			}
			v = f
		}
		if err := p.inRange(v); err != nil {
			return GenSpec{}, fmt.Errorf("trace: parameter %s: %v", key, err)
		}
		p.set(&spec, v)
	}
	return spec, nil
}

// modeLabel names a mode for display; the stationary mode's storage form is
// the empty string.
func modeLabel(mode string) string {
	if mode == ModeStationary {
		return "stationary"
	}
	return mode
}

// SpecString renders the canonical spec text: mode, then every non-zero
// field in grammar order. ParseGenSpec(s.SpecString()) reconstructs the
// identical spec — the fuzz harness pins this round trip.
func (s GenSpec) SpecString() string {
	var parts []string
	if s.Name != "" {
		parts = append(parts, "name="+s.Name)
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	for _, p := range genParamsFor(s.Mode) {
		if v := p.get(s); v != 0 {
			var text string
			if p.isInt {
				text = strconv.FormatInt(int64(v), 10)
			} else {
				text = strconv.FormatFloat(v, 'g', -1, 64)
			}
			parts = append(parts, p.key+"="+text)
		}
	}
	if len(parts) == 0 {
		return modeLabel(s.Mode)
	}
	return modeLabel(s.Mode) + ":" + strings.Join(parts, ",")
}
