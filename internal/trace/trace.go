// Package trace provides the WWW request workloads that drive the cluster
// simulator: a synthetic generator calibrated to the paper's Table 2 trace
// characteristics, a Common Log Format parser for users who have the real
// logs, workload characterization (the statistics of Table 2), and a binary
// on-disk format.
package trace

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/zipf"
)

// Trace is a server access log reduced to what the simulator consumes: a
// file catalog with sizes and an ordered stream of requests.
type Trace struct {
	Name  string
	Alpha float64 // nominal Zipf exponent used for generation (0 if parsed)

	// Sizes holds the response size in bytes for each file; the file's
	// cache.FileID is its index.
	Sizes []int64

	// Requests is the ordered stream of requested file ids.
	Requests []cache.FileID

	// Clients, when non-nil, holds the client id behind each request
	// (parallel to Requests). Client identity drives the cached-DNS
	// arrival model and HTTP/1.1 persistent connections; traces without
	// it behave as if every request came from a distinct client.
	Clients []int32
}

// NumFiles returns the catalog size.
func (t *Trace) NumFiles() int { return len(t.Sizes) }

// NumRequests returns the number of requests.
func (t *Trace) NumRequests() int { return len(t.Requests) }

// Size returns the size in bytes of the given file.
func (t *Trace) Size(id cache.FileID) int64 { return t.Sizes[id] }

// Validate checks internal consistency: every request must reference a
// cataloged file and every size must be positive.
func (t *Trace) Validate() error {
	for i, s := range t.Sizes {
		if s <= 0 {
			return fmt.Errorf("trace %s: file %d has non-positive size %d", t.Name, i, s)
		}
	}
	for i, r := range t.Requests {
		if int(r) < 0 || int(r) >= len(t.Sizes) {
			return fmt.Errorf("trace %s: request %d references unknown file %d", t.Name, i, r)
		}
	}
	if t.Clients != nil && len(t.Clients) != len(t.Requests) {
		return fmt.Errorf("trace %s: %d client ids for %d requests",
			t.Name, len(t.Clients), len(t.Requests))
	}
	return nil
}

// Client returns the client id of request i, or i itself (every request a
// distinct client) when the trace carries no client information.
func (t *Trace) Client(i int) int32 {
	if t.Clients == nil {
		return int32(i)
	}
	return t.Clients[i]
}

// Truncate returns a prefix of the trace with at most n requests, sharing
// the catalog. It is used to scale experiments down.
func (t *Trace) Truncate(n int) *Trace {
	if n >= len(t.Requests) {
		return t
	}
	short := &Trace{
		Name:     t.Name,
		Alpha:    t.Alpha,
		Sizes:    t.Sizes,
		Requests: t.Requests[:n],
	}
	if t.Clients != nil {
		short.Clients = t.Clients[:n]
	}
	return short
}

// Characteristics are the per-trace statistics the paper reports in
// Table 2, plus the working set size discussed in Section 5.1.
type Characteristics struct {
	Name            string
	CatalogFiles    int     // files in the catalog (Table 2's file count)
	NumFiles        int     // distinct files actually requested
	AvgFileKB       float64 // mean size over distinct requested files
	CatalogAvgKB    float64 // mean size over the whole catalog
	NumRequests     int
	AvgReqKB        float64 // mean size over requests
	Alpha           float64 // fitted Zipf exponent of the popularity distribution
	WorkingSetMB    float64 // total bytes of distinct requested files
	CatalogMB       float64 // total bytes of the catalog
	MaxFileKB       float64
	RequestsPerFile float64
}

// Characterize computes the Table 2 statistics for a trace.
func Characterize(t *Trace) Characteristics {
	counts := make([]int64, len(t.Sizes))
	var reqBytes float64
	for _, id := range t.Requests {
		counts[id]++
		reqBytes += float64(t.Sizes[id])
	}
	var files int
	var fileBytes, maxKB float64
	for id, c := range counts {
		if c == 0 {
			continue
		}
		files++
		sz := float64(t.Sizes[id])
		fileBytes += sz
		if kb := sz / 1024; kb > maxKB {
			maxKB = kb
		}
	}
	var catalogBytes float64
	for _, s := range t.Sizes {
		catalogBytes += float64(s)
	}
	ch := Characteristics{
		Name:         t.Name,
		CatalogFiles: len(t.Sizes),
		NumFiles:     files,
		NumRequests:  len(t.Requests),
		WorkingSetMB: fileBytes / (1 << 20),
		CatalogMB:    catalogBytes / (1 << 20),
		MaxFileKB:    maxKB,
		Alpha:        zipf.FitAlpha(counts),
	}
	if len(t.Sizes) > 0 {
		ch.CatalogAvgKB = catalogBytes / float64(len(t.Sizes)) / 1024
	}
	if files > 0 {
		ch.AvgFileKB = fileBytes / float64(files) / 1024
		ch.RequestsPerFile = float64(len(t.Requests)) / float64(files)
	}
	if len(t.Requests) > 0 {
		ch.AvgReqKB = reqBytes / float64(len(t.Requests)) / 1024
	}
	return ch
}
