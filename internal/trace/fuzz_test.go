package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseCLFLine: the log-line parser must be total — no panics, and
// accepted lines must produce sane fields.
func FuzzParseCLFLine(f *testing.F) {
	f.Add(`h - - [d] "GET /a HTTP/1.0" 200 42`)
	f.Add(`h - - [d] "GET /a?q=1 HTTP/1.1" 200 1`)
	f.Add(`garbage`)
	f.Add(`"" 200 5`)
	f.Add(`h "GET" -`)
	f.Fuzz(func(t *testing.T, line string) {
		path, status, size, ok := parseCLFLine(line)
		if !ok {
			return
		}
		if path == "" {
			t.Fatalf("accepted line %q with empty path", line)
		}
		if size <= 0 {
			t.Fatalf("accepted line %q with size %d", line, size)
		}
		if strings.ContainsRune(path, '?') {
			t.Fatalf("query string survived: %q", path)
		}
		_ = status
	})
}

// FuzzRead: the binary trace decoder must never panic or accept corrupt
// data as a valid trace.
func FuzzRead(f *testing.F) {
	// Seed with a real serialized trace and some corruptions of it.
	tr := MustGenerate(GenSpec{
		Name: "seed", Files: 10, AvgFileKB: 4, Requests: 50, AvgReqKB: 4, Alpha: 1, Seed: 1,
	})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("L2ST"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 20 {
		corrupt[18] ^= 0xff
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the trace invariants.
		if err := got.Validate(); err != nil {
			t.Fatalf("decoded an invalid trace: %v", err)
		}
	})
}
