package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// FuzzParseCLFLine: the log-line parser must be total — no panics, and
// accepted lines must produce sane fields that survive a round trip
// through a canonical re-serialization of the same record.
func FuzzParseCLFLine(f *testing.F) {
	f.Add(`h - - [d] "GET /a HTTP/1.0" 200 42`)
	f.Add(`h - - [d] "GET /a?q=1 HTTP/1.1" 200 1`)
	f.Add(`h - - [d] "GET /a HTTP/1.0" 200 -5`)
	f.Add(`h - - [d] "GET /a HTTP/1.0" 304 0`)
	f.Add(`garbage`)
	f.Add(`"" 200 5`)
	f.Add(`h "GET" -`)
	f.Fuzz(func(t *testing.T, line string) {
		path, status, size, ok := parseCLFLine(line)
		if !ok {
			return
		}
		if path == "" {
			t.Fatalf("accepted line %q with empty path", line)
		}
		if size <= 0 {
			t.Fatalf("accepted line %q with size %d", line, size)
		}
		if strings.ContainsRune(path, '?') {
			t.Fatalf("query string survived: %q", path)
		}
		// Round trip: write the extracted record back as a canonical CLF
		// line and reparse. The triple must be preserved exactly (the
		// extracted path is a whitespace-free field with queries already
		// stripped, so canonicalization loses nothing).
		canon := fmt.Sprintf(`host - - [01/Jan/2000:00:00:00 +0000] "GET %s HTTP/1.0" %d %d`,
			path, status, size)
		p2, st2, sz2, ok2 := parseCLFLine(canon)
		if !ok2 {
			t.Fatalf("canonical form of %q rejected: %q", line, canon)
		}
		if p2 != path || st2 != status || sz2 != size {
			t.Fatalf("round trip changed (%q,%d,%d) -> (%q,%d,%d)",
				path, status, size, p2, st2, sz2)
		}
	})
}

// FuzzRead: the binary trace decoder must never panic or accept corrupt
// data as a valid trace.
func FuzzRead(f *testing.F) {
	// Seed with a real serialized trace and some corruptions of it.
	tr := MustGenerate(GenSpec{
		Name: "seed", Files: 10, AvgFileKB: 4, Requests: 50, AvgReqKB: 4, Alpha: 1, Seed: 1,
	})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("L2ST"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 20 {
		corrupt[18] ^= 0xff
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the trace invariants.
		if err := got.Validate(); err != nil {
			t.Fatalf("decoded an invalid trace: %v", err)
		}
	})
}
