package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/cache"
)

// Binary trace format, little-endian:
//
//	magic   [4]byte  "L2ST"
//	version uint32   2
//	alpha   float64
//	nameLen uint32, name bytes
//	files   uint32, sizes []int64
//	reqs    uint32, requests []uint32
//	clients uint32, client ids []int32   (version >= 2; 0 = none)
//
// Version 1 files (without the trailing client section) still load.
const (
	traceMagic   = "L2ST"
	traceVersion = 2
)

// WriteTo serializes the trace in the package's binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(traceMagic); err != nil {
		return n, err
	}
	n += 4
	if err := write(uint32(traceVersion)); err != nil {
		return n, err
	}
	if err := write(math.Float64bits(t.Alpha)); err != nil {
		return n, err
	}
	if err := write(uint32(len(t.Name))); err != nil {
		return n, err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return n, err
	}
	n += int64(len(t.Name))
	if err := write(uint32(len(t.Sizes))); err != nil {
		return n, err
	}
	if err := write(t.Sizes); err != nil {
		return n, err
	}
	if err := write(uint32(len(t.Requests))); err != nil {
		return n, err
	}
	reqs := make([]uint32, len(t.Requests))
	for i, r := range t.Requests {
		reqs[i] = uint32(r)
	}
	if err := write(reqs); err != nil {
		return n, err
	}
	if err := write(uint32(len(t.Clients))); err != nil {
		return n, err
	}
	if len(t.Clients) > 0 {
		if err := write(t.Clients); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read deserializes a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version < 1 || version > traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var alphaBits uint64
	if err := binary.Read(br, binary.LittleEndian, &alphaBits); err != nil {
		return nil, err
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var files uint32
	if err := binary.Read(br, binary.LittleEndian, &files); err != nil {
		return nil, err
	}
	if files > 1<<28 {
		return nil, fmt.Errorf("trace: implausible file count %d", files)
	}
	sizes := make([]int64, files)
	if err := binary.Read(br, binary.LittleEndian, sizes); err != nil {
		return nil, err
	}
	var nreq uint32
	if err := binary.Read(br, binary.LittleEndian, &nreq); err != nil {
		return nil, err
	}
	if nreq > 1<<30 {
		return nil, fmt.Errorf("trace: implausible request count %d", nreq)
	}
	raw := make([]uint32, nreq)
	if err := binary.Read(br, binary.LittleEndian, raw); err != nil {
		return nil, err
	}
	reqs := make([]cache.FileID, nreq)
	for i, v := range raw {
		reqs[i] = cache.FileID(v)
	}
	t := &Trace{
		Name:     string(name),
		Alpha:    math.Float64frombits(alphaBits),
		Sizes:    sizes,
		Requests: reqs,
	}
	if version >= 2 {
		var nclients uint32
		if err := binary.Read(br, binary.LittleEndian, &nclients); err != nil {
			return nil, err
		}
		if nclients > 0 {
			if nclients != nreq {
				return nil, fmt.Errorf("trace: %d client ids for %d requests", nclients, nreq)
			}
			clients := make([]int32, nclients)
			if err := binary.Read(br, binary.LittleEndian, clients); err != nil {
				return nil, err
			}
			t.Clients = clients
		}
	}
	return t, t.Validate()
}
