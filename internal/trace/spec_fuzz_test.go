package trace

import (
	"testing"
)

// FuzzParseGenSpec drives the generation-spec parser with hostile input and
// checks the invariants every accepted spec must satisfy: a known mode, a
// canonical SpecString that re-parses to the identical spec (and is itself
// a fixed point), and — for small accepted specs — a Generate call that
// either errors cleanly or produces a trace passing Validate.
func FuzzParseGenSpec(f *testing.F) {
	f.Add("stationary:files=5000,filekb=20,reqs=40000,reqkb=12,alpha=0.9,localp=0.3,seed=21")
	f.Add("churn:files=2000,filekb=16,reqs=5000,lifetime=10,horizon=100,docrate=18,seed=3")
	f.Add("churn:files=500,filekb=8,reqs=1000,shape=1.6")
	f.Add("diurnal:files=1000,filekb=20,reqs=5000,reqkb=12,alpha=0.9,amp=0.7,periods=3")
	f.Add("flash:files=1000,filekb=20,reqs=5000,reqkb=12,alpha=0.9,fstart=0.5,fdur=0.1,ffrac=0.8")
	f.Add("calgary")
	f.Add("clarknet:reqs=1000")
	f.Add(" nasa : clients = 50 ")
	f.Add("flash:name=viral,files=100,filekb=4,reqs=500,reqkb=4")
	f.Add("churn:docreqs=40,files=200,filekb=8,reqs=400")
	f.Add("stationary:files=1,files=2")
	f.Add("stationary:localp=1")
	f.Add("stationary:alpha=NaN")
	f.Add("stationary:alpha=+Inf")
	f.Add("churn:reqkb=12")
	f.Add("churn:shape=0.5")
	f.Add("diurnal:amp=1")
	f.Add("flash:fstart=0.99,fdur=0.5")
	f.Add("stationary:seed=-9223372036854775808")
	f.Add("no-such-mode")
	f.Add(",,,")
	f.Add("stationary:")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseGenSpec(s)
		if err != nil {
			return
		}
		switch spec.Mode {
		case ModeStationary, ModeChurn, ModeDiurnal, ModeFlash:
		default:
			t.Fatalf("accepted %q with unknown mode %q", s, spec.Mode)
		}
		canon := spec.SpecString()
		if len(canon) > maxGenSpecLen+64 {
			t.Fatalf("accepted %q with oversized canonical form", s)
		}
		again, err := ParseGenSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q does not re-parse: %v", canon, s, err)
		}
		if again != spec {
			t.Fatalf("canonical form not faithful: %q -> %+v -> %q -> %+v", s, spec, canon, again)
		}
		if again.SpecString() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, again.SpecString())
		}
		if generableInFuzz(spec) {
			// Generation must never panic on an accepted small spec; clean
			// errors (e.g. a churn realization shorter than Requests) are
			// fine, but a produced trace must validate.
			tr, err := Generate(spec)
			if err == nil {
				if verr := tr.Validate(); verr != nil {
					t.Fatalf("accepted %q generated an invalid trace: %v", s, verr)
				}
			}
		}
	})
}

// generableInFuzz bounds the work a fuzz iteration may do: small catalogs
// and streams, bounded churn populations, and no near-1 Pareto shapes
// (their infinite-variance weights can make single documents enormous).
func generableInFuzz(s GenSpec) bool {
	if s.Files > 2000 || s.Requests > 2000 || s.Clients > 2000 {
		return false
	}
	if s.Mode == ModeChurn {
		if s.DocMeanReqs > 50 {
			return false
		}
		if s.WeightShape != 0 && s.WeightShape < 1.5 {
			return false
		}
		if s.DocRate != 0 && s.Horizon != 0 && s.DocRate*s.Horizon > 5000 {
			return false
		}
	}
	return true
}
