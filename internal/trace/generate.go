package trace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/shotnoise"
	"repro/internal/zipf"
)

// GenSpec describes a synthetic workload. The defaults of PaperTraces match
// the four traces of Table 2 (Calgary, Clarknet, NASA, Rutgers); arbitrary
// specs allow what-if workloads (e.g. the larger hosting-service working
// sets the paper's introduction motivates).
type GenSpec struct {
	Name      string
	Files     int     // catalog size
	AvgFileKB float64 // mean file size over the catalog
	Requests  int     // number of requests to generate
	AvgReqKB  float64 // mean response size over requests
	Alpha     float64 // Zipf exponent of popularity

	// SizeSigma is the sigma of the lognormal noise multiplied into file
	// sizes; 0 selects the default of 1.0. Real WWW file sizes are heavy
	// tailed; a lognormal body is the standard first-order fit.
	SizeSigma float64

	// LocalityP is the probability that a request re-references one of the
	// LocalityDepth most recent requests instead of sampling the Zipf law.
	// Real traces exhibit temporal locality beyond pure popularity
	// (Arlitt & Williamson); this knob reproduces the sequential-server
	// miss rates the paper reports (9-28% at 32 MB).
	LocalityP     float64
	LocalityDepth int // 0 selects the default of 1000

	// HeadBoost adds extra probability mass to the most popular HeadFiles
	// files: with probability HeadBoost a request picks one of them
	// uniformly instead of sampling the Zipf law. Real WWW traces
	// concentrate more traffic on their hottest documents than their
	// fitted Zipf exponent implies (the fit is dominated by the body);
	// this knob reproduces the per-node hit rates of the paper's
	// multi-node traditional server, where temporal locality is diluted
	// across nodes and concentration is what remains.
	HeadBoost float64
	HeadFiles int // 0 selects the default of Files/20

	// Clients, when positive, tags every request with a client identity.
	// Client activity is itself Zipf-distributed (exponent ClientAlpha,
	// default 1): a few heavy clients dominate, which is what makes DNS
	// translation caching skew load in practice.
	Clients     int
	ClientAlpha float64

	// Mode selects the synthesis family. "" (or "stationary") is the fixed
	// Zipf catalog above. "churn" rotates the hot set under the shot-noise
	// popularity model of internal/shotnoise (Olmos/Graham/Simonian).
	// "diurnal" keeps the stationary content but records a sinusoidal
	// arrival-rate shape for open-loop runs (server.DiurnalSchedule consumes
	// it). "flash" overlays a flash crowd on the stationary stream: one cold
	// file spikes to a large traffic fraction for a bounded window, then
	// decays. Stationary specs never read the fields below and stay
	// byte-identical across this extension (golden_test.go pins them).
	Mode string

	// Shot-noise churn (Mode "churn"), in trace time units. The catalog is
	// the realized document population (capped at Files); AvgReqKB, the
	// locality knobs, and HeadBoost do not apply — the model supplies its
	// own temporal structure.
	Horizon     float64 // synthesis window (default 400)
	DocRate     float64 // document arrivals per time unit (default 0.9*Files/Horizon)
	DocLifetime float64 // mean intensity lifetime (default Horizon/20)
	DocMeanReqs float64 // E[V] requests per document (default: sized to Requests)
	WeightShape float64 // 0: fixed document weights; > 1: Pareto with mean DocMeanReqs

	// Diurnal rate shape (Mode "diurnal"); the request content is exactly
	// the stationary stream — only the open-loop arrival rate varies.
	DiurnalAmp     float64 // relative amplitude in (0,1) (default 0.5)
	DiurnalPeriods float64 // full sine periods across the run (default 2)

	// Flash crowd (Mode "flash"): a file absent from the stationary catalog
	// captures FlashFrac of traffic from FlashStart for FlashDur (fractions
	// of the request stream), then decays exponentially.
	FlashStart float64 // window start as a fraction of the stream (default 0.4)
	FlashDur   float64 // plateau length as a fraction of the stream (default 0.15)
	FlashFrac  float64 // peak traffic fraction captured (default 0.6)

	Seed int64
}

func (s GenSpec) withDefaults() GenSpec {
	if s.SizeSigma == 0 {
		s.SizeSigma = 1.0
	}
	// A spec without a mean request size gets the catalog mean: requests
	// sized like the files they hit, no size-popularity correlation. (The
	// churn generator sizes files itself and never reads AvgReqKB.)
	if s.AvgReqKB == 0 && s.Mode != ModeChurn {
		s.AvgReqKB = s.AvgFileKB
	}
	if s.LocalityDepth == 0 {
		s.LocalityDepth = 1000
	}
	if s.HeadFiles == 0 {
		s.HeadFiles = s.Files / 20
		if s.HeadFiles < 1 {
			s.HeadFiles = 1
		}
	}
	if s.ClientAlpha == 0 {
		s.ClientAlpha = 1
	}
	switch s.Mode {
	case ModeChurn:
		if s.Horizon == 0 {
			s.Horizon = 400
		}
		if s.DocRate == 0 && s.Files > 0 && s.Horizon > 0 {
			s.DocRate = 0.9 * float64(s.Files) / s.Horizon
		}
		if s.DocLifetime == 0 {
			s.DocLifetime = s.Horizon / 20
		}
	case ModeDiurnal:
		if s.DiurnalAmp == 0 {
			s.DiurnalAmp = 0.5
		}
		if s.DiurnalPeriods == 0 {
			s.DiurnalPeriods = 2
		}
	case ModeFlash:
		if s.FlashStart == 0 {
			s.FlashStart = 0.4
		}
		if s.FlashDur == 0 {
			s.FlashDur = 0.15
		}
		if s.FlashFrac == 0 {
			s.FlashFrac = 0.6
		}
	}
	return s
}

// Scaled returns a copy of the spec with the request count multiplied by
// factor (catalog untouched), for fast test and bench runs.
func (s GenSpec) Scaled(factor float64) GenSpec {
	s.Requests = int(float64(s.Requests) * factor)
	if s.Requests < 1 {
		s.Requests = 1
	}
	return s
}

// PaperTraces returns generation specs matching the four WWW server traces
// of Table 2. The locality (LocalityP) and concentration (HeadBoost)
// parameters are calibrated against two published observables: the
// sequential-server miss rates at 32 MB (9-28%, Section 5.1) and the
// multi-node traditional-server behavior implied by Figures 7-10 (real
// trace heads carry more traffic than their fitted Zipf exponents, which
// a pure Zipf synthetic would miss).
func PaperTraces() []GenSpec {
	return []GenSpec{
		{Name: "calgary", Files: 8397, AvgFileKB: 42.9, Requests: 567895, AvgReqKB: 19.7, Alpha: 1.08,
			LocalityP: 0.35, HeadBoost: 0.10, HeadFiles: 400, Seed: 11},
		{Name: "clarknet", Files: 35885, AvgFileKB: 11.6, Requests: 3053525, AvgReqKB: 11.9, Alpha: 0.78,
			LocalityP: 0.30, HeadBoost: 0.65, HeadFiles: 1000, Seed: 12},
		{Name: "nasa", Files: 5500, AvgFileKB: 53.7, Requests: 3147719, AvgReqKB: 47.0, Alpha: 0.91,
			LocalityP: 0.25, HeadBoost: 0.55, HeadFiles: 300, Seed: 13},
		{Name: "rutgers", Files: 24098, AvgFileKB: 30.5, Requests: 535021, AvgReqKB: 26.2, Alpha: 0.79,
			LocalityP: 0.45, HeadBoost: 0.35, HeadFiles: 800, Seed: 14},
	}
}

// PaperTrace returns the spec for one of the Table 2 traces by name.
func PaperTrace(name string) (GenSpec, error) {
	for _, s := range PaperTraces() {
		if s.Name == name {
			return s, nil
		}
	}
	return GenSpec{}, fmt.Errorf("trace: unknown paper trace %q", name)
}

// The synthesis modes of GenSpec.Mode. ModeStationary is the zero value, so
// every pre-existing spec is stationary by construction.
const (
	ModeStationary = ""
	ModeChurn      = "churn"
	ModeDiurnal    = "diurnal"
	ModeFlash      = "flash"
)

// Generate synthesizes a trace matching the spec. In the stationary mode:
//
//   - popularity follows a Zipf-like law with the requested alpha;
//   - file sizes follow size(rank i) = A * i^beta * lognormal noise, with A
//     and beta solved so that the catalog mean matches AvgFileKB and the
//     popularity-weighted mean matches AvgReqKB (beta > 0 encodes the
//     empirical fact that popular files are smaller);
//   - with probability LocalityP a request re-references a recent request
//     (temporal locality), otherwise it samples the Zipf law.
//
// ModeDiurnal generates the identical stationary content (the rate shape
// only affects open-loop timing); ModeChurn synthesizes a shot-noise
// process; ModeFlash overlays a flash crowd on the stationary stream.
func Generate(spec GenSpec) (*Trace, error) {
	spec = spec.withDefaults()
	if spec.Files < 1 {
		return nil, fmt.Errorf("trace %s: need at least one file", spec.Name)
	}
	if spec.Requests < 1 {
		return nil, fmt.Errorf("trace %s: need at least one request", spec.Name)
	}
	if spec.AvgFileKB <= 0 {
		return nil, fmt.Errorf("trace %s: sizes must be positive", spec.Name)
	}
	switch spec.Mode {
	case ModeStationary:
		return generateStationary(spec)
	case ModeChurn:
		return generateChurn(spec)
	case ModeDiurnal:
		if !(spec.DiurnalAmp > 0 && spec.DiurnalAmp < 1) {
			return nil, fmt.Errorf("trace %s: diurnal amplitude %v must be in (0,1)", spec.Name, spec.DiurnalAmp)
		}
		if !(spec.DiurnalPeriods > 0) || math.IsInf(spec.DiurnalPeriods, 0) {
			return nil, fmt.Errorf("trace %s: diurnal periods %v must be positive and finite", spec.Name, spec.DiurnalPeriods)
		}
		return generateStationary(spec)
	case ModeFlash:
		return generateFlash(spec)
	default:
		return nil, fmt.Errorf("trace %s: unknown mode %q (valid: stationary, churn, diurnal, flash)", spec.Name, spec.Mode)
	}
}

// generateStationary is the original fixed-catalog Zipf generator. Its RNG
// draw sequence is pinned by golden_test.go and must never change.
func generateStationary(spec GenSpec) (*Trace, error) {
	if spec.AvgReqKB <= 0 {
		return nil, fmt.Errorf("trace %s: sizes must be positive", spec.Name)
	}
	if spec.LocalityP < 0 || spec.LocalityP >= 1 {
		return nil, fmt.Errorf("trace %s: LocalityP must be in [0,1)", spec.Name)
	}
	if spec.HeadBoost < 0 || spec.HeadBoost >= 1 {
		return nil, fmt.Errorf("trace %s: HeadBoost must be in [0,1)", spec.Name)
	}
	if spec.HeadFiles > spec.Files {
		spec.HeadFiles = spec.Files
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Popularity weights p_i over ranks.
	pop := zipf.New(spec.Alpha, int64(spec.Files))

	// Effective popularity including the head boost, used for size
	// calibration: p_eff(i) = B/K for i <= K, plus (1-B)*p_zipf(i).
	pEff := func(rank int64) float64 {
		p := (1 - spec.HeadBoost) * pop.P(rank)
		if rank <= int64(spec.HeadFiles) {
			p += spec.HeadBoost / float64(spec.HeadFiles)
		}
		return p
	}

	// Lognormal noise with mean 1.
	noise := make([]float64, spec.Files)
	for i := range noise {
		noise[i] = math.Exp(spec.SizeSigma*rng.NormFloat64() - spec.SizeSigma*spec.SizeSigma/2)
	}

	beta := solveBeta(pEff, noise, spec.AvgReqKB/spec.AvgFileKB)

	// Scale to the catalog mean.
	shape := make([]float64, spec.Files)
	var mean float64
	for i := range shape {
		shape[i] = math.Pow(float64(i+1), beta) * noise[i]
		mean += shape[i]
	}
	mean /= float64(spec.Files)
	scale := spec.AvgFileKB * 1024 / mean

	sizes := make([]int64, spec.Files)
	for i := range sizes {
		sz := int64(math.Round(shape[i] * scale))
		if sz < 64 {
			sz = 64 // no zero-byte responses
		}
		sizes[i] = sz
	}

	// Request stream: Zipf sampling with a boosted head and LRU-stack
	// temporal locality.
	reqs := make([]cache.FileID, spec.Requests)
	for k := range reqs {
		if k > 0 && spec.LocalityP > 0 && rng.Float64() < spec.LocalityP {
			depth := spec.LocalityDepth
			if depth > k {
				depth = k
			}
			reqs[k] = reqs[k-1-rng.Intn(depth)]
			continue
		}
		if spec.HeadBoost > 0 && rng.Float64() < spec.HeadBoost {
			reqs[k] = cache.FileID(rng.Intn(spec.HeadFiles))
			continue
		}
		// Rank r maps to file id r-1 (the catalog is rank-ordered).
		reqs[k] = cache.FileID(pop.Sample(rng) - 1)
	}

	t := &Trace{Name: spec.Name, Alpha: spec.Alpha, Sizes: sizes, Requests: reqs}

	if spec.Clients > 0 {
		cdist := zipf.New(spec.ClientAlpha, int64(spec.Clients))
		clients := make([]int32, spec.Requests)
		for k := range clients {
			clients[k] = int32(cdist.Sample(rng) - 1)
		}
		t.Clients = clients
	}

	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// generateChurn synthesizes a shot-noise trace: documents arrive over the
// horizon (capped at Files), each emitting requests at an exponentially
// decaying intensity, and the time-ordered stream is truncated to the first
// Requests entries. DocMeanReqs defaults to the volume that makes the
// expected realization ~15% longer than Requests, so truncation succeeds
// with margin; a realization that still comes up short is an error, not a
// silent short trace.
func generateChurn(spec GenSpec) (*Trace, error) {
	if spec.LocalityP != 0 || spec.HeadBoost != 0 {
		return nil, fmt.Errorf("trace %s: locality and head-boost do not apply to churn mode", spec.Name)
	}
	meanReqs := spec.DocMeanReqs
	if meanReqs == 0 {
		if !(spec.DocRate > 0) || !(spec.Horizon > 0) || !(spec.DocLifetime > 0) {
			return nil, fmt.Errorf("trace %s: churn mode needs positive docrate, horizon, lifetime", spec.Name)
		}
		// Expected in-window requests per unit weight:
		// Int_0^W (1 - e^{-(W-t)/L}) dt = W - L*(1 - e^{-W/L}).
		eff := spec.Horizon + spec.DocLifetime*math.Expm1(-spec.Horizon/spec.DocLifetime)
		meanReqs = 1.15 * float64(spec.Requests) / (spec.DocRate * eff)
	}
	proc, err := shotnoise.Generate(shotnoise.Spec{
		Rate:         spec.DocRate,
		Horizon:      spec.Horizon,
		MeanRequests: meanReqs,
		Lifetime:     spec.DocLifetime,
		WeightShape:  spec.WeightShape,
		MaxDocs:      spec.Files,
		Seed:         spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", spec.Name, err)
	}
	if proc.NumRequests() < spec.Requests {
		return nil, fmt.Errorf("trace %s: shot-noise realization has %d requests, need %d (raise docreqs, docrate, or horizon)",
			spec.Name, proc.NumRequests(), spec.Requests)
	}

	// Catalog: one file per realized document, lognormal sizes around the
	// mean. Size-rank correlation has no meaning when ranks churn, so
	// AvgReqKB is not consumed here.
	rng := rand.New(rand.NewSource(spec.Seed + 1))
	sizes := make([]int64, len(proc.Docs))
	for i := range sizes {
		noise := math.Exp(spec.SizeSigma*rng.NormFloat64() - spec.SizeSigma*spec.SizeSigma/2)
		sz := int64(math.Round(noise * spec.AvgFileKB * 1024))
		if sz < 64 {
			sz = 64
		}
		sizes[i] = sz
	}

	reqs := make([]cache.FileID, spec.Requests)
	for k := range reqs {
		reqs[k] = cache.FileID(proc.DocOf[k])
	}
	t := &Trace{Name: spec.Name, Alpha: spec.Alpha, Sizes: sizes, Requests: reqs}
	attachClients(t, spec, rng)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// generateFlash generates the stationary stream with identical draws, then
// overlays the crowd: one appended cold file captures FlashFrac of requests
// over the plateau window and an exponential tail after it. The overlay
// consumes a separate RNG stream, so the underlying stationary content is
// the exact byte-identical stationary trace.
func generateFlash(spec GenSpec) (*Trace, error) {
	if !(spec.FlashFrac > 0 && spec.FlashFrac < 1) {
		return nil, fmt.Errorf("trace %s: flash fraction %v must be in (0,1)", spec.Name, spec.FlashFrac)
	}
	if spec.FlashStart < 0 || spec.FlashStart >= 1 {
		return nil, fmt.Errorf("trace %s: flash start %v must be in [0,1)", spec.Name, spec.FlashStart)
	}
	if !(spec.FlashDur > 0) || spec.FlashStart+spec.FlashDur > 1 {
		return nil, fmt.Errorf("trace %s: flash window [%v, %v+%v] must fit in [0,1]",
			spec.Name, spec.FlashStart, spec.FlashStart, spec.FlashDur)
	}
	t, err := generateStationary(spec)
	if err != nil {
		return nil, err
	}
	flashID := cache.FileID(len(t.Sizes))
	t.Sizes = append(t.Sizes, int64(math.Round(spec.AvgFileKB*1024)))

	frng := rand.New(rand.NewSource(spec.Seed + 101))
	n := len(t.Requests)
	start := int(spec.FlashStart * float64(n))
	dur := int(spec.FlashDur * float64(n))
	if dur < 1 {
		dur = 1
	}
	end := start + dur
	tail := float64(dur) / 3
	for k := start; k < n; k++ {
		p := spec.FlashFrac
		if k >= end {
			p *= math.Exp(-float64(k-end) / tail)
			if p < 1e-3 {
				break
			}
		}
		if frng.Float64() < p {
			t.Requests[k] = flashID
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustGenerate is Generate for specs known valid at compile time.
func MustGenerate(spec GenSpec) *Trace {
	t, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// attachClients tags the trace's requests with Zipf-distributed client
// identities when the spec asks for them. The stationary generator keeps
// its historical inline equivalent (its draw order is golden-pinned); this
// helper serves the non-stationary modes.
func attachClients(t *Trace, spec GenSpec, rng *rand.Rand) {
	if spec.Clients <= 0 {
		return
	}
	cdist := zipf.New(spec.ClientAlpha, int64(spec.Clients))
	clients := make([]int32, len(t.Requests))
	for k := range clients {
		clients[k] = int32(cdist.Sample(rng) - 1)
	}
	t.Clients = clients
}

// solveBeta finds the size-rank exponent beta such that the ratio of the
// popularity-weighted mean size to the unweighted mean size equals target.
// The ratio is strictly decreasing in beta (larger beta inflates unpopular
// high-rank files, which the uniform mean weights more heavily), so a
// bisection converges.
func solveBeta(pEff func(int64) float64, noise []float64, target float64) float64 {
	ratio := func(beta float64) float64 {
		var weighted, uniform float64
		for i, x := range noise {
			s := math.Pow(float64(i+1), beta) * x
			weighted += pEff(int64(i+1)) * s
			uniform += s
		}
		uniform /= float64(len(noise))
		return weighted / uniform
	}
	lo, hi := -3.0, 5.0
	if ratio(lo) < target { // even strongly inverted sizes cannot reach it
		return lo
	}
	if ratio(hi) > target {
		return hi
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if ratio(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
