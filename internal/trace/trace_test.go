package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cache"
)

func smallSpec() GenSpec {
	return GenSpec{
		Name: "small", Files: 500, AvgFileKB: 40, Requests: 20000,
		AvgReqKB: 20, Alpha: 1.0, Seed: 1,
	}
}

func TestGenerateMatchesSpecMeans(t *testing.T) {
	tr := MustGenerate(smallSpec())
	ch := Characterize(tr)
	// Catalog mean is matched by construction up to rounding.
	catalogMean := 0.0
	for _, s := range tr.Sizes {
		catalogMean += float64(s)
	}
	catalogMean /= float64(len(tr.Sizes)) * 1024
	if math.Abs(catalogMean-40)/40 > 0.01 {
		t.Fatalf("catalog mean = %.2f KB, want 40", catalogMean)
	}
	// Request mean is matched in expectation; allow sampling noise.
	if math.Abs(ch.AvgReqKB-20)/20 > 0.15 {
		t.Fatalf("request mean = %.2f KB, want about 20", ch.AvgReqKB)
	}
	if tr.NumFiles() != 500 || tr.NumRequests() != 20000 {
		t.Fatalf("sizes/requests = %d/%d", tr.NumFiles(), tr.NumRequests())
	}
}

func TestGeneratePopularFilesAreSmaller(t *testing.T) {
	tr := MustGenerate(smallSpec())
	// With AvgReq < AvgFile the top popularity decile must be smaller on
	// average than the bottom decile.
	n := len(tr.Sizes)
	var top, bottom float64
	for i := 0; i < n/10; i++ {
		top += float64(tr.Sizes[i])
		bottom += float64(tr.Sizes[n-1-i])
	}
	if top >= bottom {
		t.Fatalf("top decile (%v) should be smaller than bottom decile (%v)", top, bottom)
	}
}

func TestGenerateInvertedSizesWhenReqLarger(t *testing.T) {
	spec := smallSpec()
	spec.AvgReqKB = 80 // popular files larger than average
	tr := MustGenerate(spec)
	ch := Characterize(tr)
	if ch.AvgReqKB < ch.AvgFileKB {
		t.Fatalf("AvgReq %.1f should exceed AvgFile %.1f", ch.AvgReqKB, ch.AvgFileKB)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallSpec())
	b := MustGenerate(smallSpec())
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("lengths differ")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs: %d vs %d", i, a.Requests[i], b.Requests[i])
		}
	}
}

func TestGenerateLocalityRaisesHitRate(t *testing.T) {
	base := smallSpec()
	local := base
	local.LocalityP = 0.5
	missRate := func(tr *Trace) float64 {
		c := cache.NewLRU(2 << 20) // deliberately tiny: 2 MB
		for _, id := range tr.Requests {
			c.Access(id, tr.Size(id))
		}
		return 1 - c.HitRate()
	}
	mBase := missRate(MustGenerate(base))
	mLocal := missRate(MustGenerate(local))
	if mLocal >= mBase {
		t.Fatalf("locality should reduce misses: base %.3f, local %.3f", mBase, mLocal)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := map[string]GenSpec{
		"no-files":    {Name: "x", Files: 0, AvgFileKB: 1, Requests: 1, AvgReqKB: 1, Alpha: 1},
		"no-requests": {Name: "x", Files: 1, AvgFileKB: 1, Requests: 0, AvgReqKB: 1, Alpha: 1},
		"bad-size":    {Name: "x", Files: 1, AvgFileKB: 0, Requests: 1, AvgReqKB: 1, Alpha: 1},
		"bad-p":       {Name: "x", Files: 1, AvgFileKB: 1, Requests: 1, AvgReqKB: 1, Alpha: 1, LocalityP: 1.5},
	}
	for name, spec := range cases {
		if _, err := Generate(spec); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestScaled(t *testing.T) {
	s := smallSpec().Scaled(0.1)
	if s.Requests != 2000 {
		t.Fatalf("Scaled requests = %d, want 2000", s.Requests)
	}
	if smallSpec().Scaled(0).Requests != 1 {
		t.Fatal("Scaled should floor at 1 request")
	}
}

func TestPaperTraceLookup(t *testing.T) {
	if _, err := PaperTrace("nasa"); err != nil {
		t.Fatal(err)
	}
	if _, err := PaperTrace("nope"); err == nil {
		t.Fatal("unknown trace should error")
	}
}

// Table 2 reproduction at generation scale: all four paper traces must
// match the published characteristics. Uses a scaled request count to stay
// fast; popularity and size distributions do not depend on trace length.
func TestPaperTracesMatchTable2(t *testing.T) {
	want := map[string]struct {
		files                int
		avgFile, avgReq      float64
		workingLo, workingHi float64
	}{
		"calgary":  {8397, 42.9, 19.7, 250, 450},
		"clarknet": {35885, 11.6, 11.9, 330, 500},
		"nasa":     {5500, 53.7, 47.0, 230, 350},
		"rutgers":  {24098, 30.5, 26.2, 600, 820},
	}
	for _, spec := range PaperTraces() {
		spec := spec.Scaled(0.2)
		tr := MustGenerate(spec)
		ch := Characterize(tr)
		w := want[spec.Name]
		if tr.NumFiles() != w.files {
			t.Errorf("%s: files = %d, want %d", spec.Name, tr.NumFiles(), w.files)
		}
		catalogMean := 0.0
		for _, s := range tr.Sizes {
			catalogMean += float64(s)
		}
		catalogMean /= float64(len(tr.Sizes)) * 1024
		if math.Abs(catalogMean-w.avgFile)/w.avgFile > 0.02 {
			t.Errorf("%s: catalog mean = %.1f KB, want %.1f", spec.Name, catalogMean, w.avgFile)
		}
		if math.Abs(ch.AvgReqKB-w.avgReq)/w.avgReq > 0.2 {
			t.Errorf("%s: request mean = %.1f KB, want about %.1f", spec.Name, ch.AvgReqKB, w.avgReq)
		}
		ws := float64(tr.NumFiles()) * catalogMean / 1024
		if ws < w.workingLo || ws > w.workingHi {
			t.Errorf("%s: working set = %.0f MB, want in [%v, %v]", spec.Name, ws, w.workingLo, w.workingHi)
		}
		// The paper: working sets from 288 MB to 717 MB across the traces.
		if ws < 200 || ws > 850 {
			t.Errorf("%s: working set %.0f MB outside the paper's band", spec.Name, ws)
		}
	}
}

// Section 5.1: "cache miss rates between 9 and 28% assuming a sequential
// server with 32 MBytes of main memory" (after cache warm-up).
func TestPaperTracesSequentialMissRates(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length traces are slow")
	}
	for _, spec := range PaperTraces() {
		spec := spec.Scaled(0.25)
		tr := MustGenerate(spec)
		c := cache.NewLRU(32 << 20)
		warm := len(tr.Requests) / 3
		for _, id := range tr.Requests[:warm] {
			c.Warm(id, tr.Size(id))
		}
		for _, id := range tr.Requests[warm:] {
			c.Access(id, tr.Size(id))
		}
		miss := 1 - c.HitRate()
		t.Logf("%s: sequential 32MB miss rate = %.1f%%", spec.Name, miss*100)
		if miss < 0.05 || miss > 0.35 {
			t.Errorf("%s: miss rate %.1f%% far outside the paper's 9-28%% band", spec.Name, miss*100)
		}
	}
}

func TestCharacterizeFitsAlpha(t *testing.T) {
	spec := smallSpec()
	spec.Alpha = 0.9
	spec.Requests = 100000
	ch := Characterize(MustGenerate(spec))
	if math.Abs(ch.Alpha-0.9) > 0.2 {
		t.Fatalf("fitted alpha = %.2f, want about 0.9", ch.Alpha)
	}
}

func TestTruncate(t *testing.T) {
	tr := MustGenerate(smallSpec())
	short := tr.Truncate(100)
	if short.NumRequests() != 100 {
		t.Fatalf("Truncate gave %d requests", short.NumRequests())
	}
	if short.NumFiles() != tr.NumFiles() {
		t.Fatal("Truncate must share the catalog")
	}
	if tr.Truncate(1<<30) != tr {
		t.Fatal("oversize Truncate should return the original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := MustGenerate(smallSpec())
	bad := *tr
	bad.Requests = append([]cache.FileID{cache.FileID(len(tr.Sizes))}, tr.Requests...)
	if bad.Validate() == nil {
		t.Fatal("out-of-range request must fail validation")
	}
	bad2 := *tr
	bad2.Sizes = append([]int64{0}, tr.Sizes[1:]...)
	if bad2.Validate() == nil {
		t.Fatal("zero size must fail validation")
	}
}

func TestGenerateClients(t *testing.T) {
	spec := smallSpec()
	spec.Clients = 50
	tr := MustGenerate(spec)
	if tr.Clients == nil || len(tr.Clients) != tr.NumRequests() {
		t.Fatal("client ids missing or misaligned")
	}
	counts := make(map[int32]int)
	for i := range tr.Requests {
		c := tr.Client(i)
		if c < 0 || c >= 50 {
			t.Fatalf("client %d out of range", c)
		}
		counts[c]++
	}
	// Zipf activity: the busiest client well above the average.
	busiest := 0
	for _, n := range counts {
		if n > busiest {
			busiest = n
		}
	}
	if busiest < 3*tr.NumRequests()/50 {
		t.Errorf("busiest client only %d requests; expected a heavy hitter", busiest)
	}
}

func TestClientWithoutClientInfo(t *testing.T) {
	tr := MustGenerate(smallSpec())
	if tr.Client(7) != 7 {
		t.Fatal("traces without client info must treat every request as a distinct client")
	}
}

func TestClientsRoundTripAndTruncate(t *testing.T) {
	spec := smallSpec()
	spec.Clients = 20
	tr := MustGenerate(spec)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clients == nil || got.Clients[5] != tr.Clients[5] {
		t.Fatal("clients lost in round trip")
	}
	short := tr.Truncate(10)
	if len(short.Clients) != 10 {
		t.Fatal("Truncate must cut client ids too")
	}
}

func TestValidateClientLengthMismatch(t *testing.T) {
	tr := MustGenerate(smallSpec())
	bad := *tr
	bad.Clients = []int32{1, 2, 3}
	if bad.Validate() == nil {
		t.Fatal("client/request length mismatch must fail validation")
	}
}
