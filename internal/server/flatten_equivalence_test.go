package server

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

// flattenTrace is the workload of the above-fan-out equivalence cases: big
// enough that every policy's broadcasts exceed DefaultBatchFanout receivers
// at N=64 and N=256 and that server sets, evictions, and forwarding all
// engage; small enough to run every registered policy twice at both sizes.
func flattenTrace(requests int) *trace.Trace {
	return trace.MustGenerate(trace.GenSpec{
		Name: "flatten-equiv", Files: 2000, AvgFileKB: 6, Requests: requests,
		AvgReqKB: 5, Alpha: 0.8, LocalityP: 0.3, Seed: 23,
	})
}

// TestFlattenedGossipEquivalence pins the tentpole's end-to-end exactness
// claim: running with the registered-fleet flat broadcast path
// (Net.FlattenGossip, the default) produces a server.Result EXACTLY equal —
// every counter, every float bit, gossip and event counts included — to the
// unflattened batched path, for every registered policy at N in {8, 64,
// 256} plus the optional simulator modes. At 8 nodes broadcasts ride the
// per-pair path, so the case set doubles as a no-regression check below the
// fan-out threshold; at 64 and 256 every broadcast is flattened.
func TestFlattenedGossipEquivalence(t *testing.T) {
	type tcase struct {
		name string
		cfg  Config
		tr   *trace.Trace
	}
	var cases []tcase

	small := equivalenceTrace()
	smallCases := equivalenceCases()
	smallNames := make([]string, 0, len(smallCases))
	for name := range smallCases {
		smallNames = append(smallNames, name)
	}
	sort.Strings(smallNames)
	for _, name := range smallNames {
		cases = append(cases, tcase{"n8/" + name, smallCases[name], small})
	}

	big := flattenTrace(24_000)
	for _, n := range []int{64, 256} {
		for _, name := range policy.Names() {
			cases = append(cases, tcase{
				fmt.Sprintf("n%d/policy/%s", n, name),
				NewConfig(CustomServer, n,
					WithPolicy(name), WithSeed(42), WithCacheBytes(2<<20)),
				big,
			})
		}
	}
	// A mid-run crash exercises the live-index maintenance of the flat
	// path (fail hook, dead-sender and dead-receiver bookkeeping) above
	// the fan-out threshold.
	cases = append(cases, tcase{
		"n64/mode/failure",
		NewConfig(L2SServer, 64,
			WithSeed(17), WithCacheBytes(2<<20), WithFailure(3, 0.6)),
		big,
	})

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			flatCfg := tc.cfg
			flatCfg.Net.FlattenGossip = true
			flat, err := Run(flatCfg, tc.tr)
			if err != nil {
				t.Fatal(err)
			}
			eagerCfg := tc.cfg
			eagerCfg.Net.FlattenGossip = false
			eager, err := Run(eagerCfg, tc.tr)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(flat, eager) {
				fj, _ := json.Marshal(flat)
				ej, _ := json.Marshal(eager)
				t.Errorf("flattened result diverged\n flat:  %s\n  (gossip %d, events %d)\n eager: %s\n  (gossip %d, events %d)",
					fj, flat.GossipMessages, flat.Events, ej, eager.GossipMessages, eager.Events)
			}
		})
	}
}
