package server

import (
	"math"
	"math/rand"
	"repro/internal/cluster"

	"repro/internal/cache"
	"repro/internal/policy"
)

// Persistent-connection (HTTP/1.1) support. Section 4 of the paper notes
// that L2S and LARD handle persistent connections "by slightly modifying
// the algorithms" along the lines of Aron et al.: a connection stays bound
// to the node that accepted its first request (the owner), and requests
// whose content is cached elsewhere are served by back-end forwarding —
// the caching node reads the file and ships it across the cluster network
// to the owner, which transmits it to the client. The client-facing
// connection never moves, so hand-off happens once per connection at most,
// while content locality is preserved per request at the cost of an
// internal data transfer.

// geometricLength draws a connection length with the given mean (at least
// 1 request).
func geometricLength(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := rng.Float64()
	k := 1 + int(math.Floor(math.Log(1-u)/math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// injectConnection starts the next connection: a geometric run of
// consecutive trace requests riding one client connection.
func (d *driver) injectConnection() {
	count := geometricLength(d.connRNG, d.cfg.ReqsPerConn)
	if rest := d.tr.NumRequests() - d.next; count > rest {
		count = rest
	}
	first := d.next
	d.next += count
	d.inflight++
	d.startConnection(first, count)
}

// startConnection establishes the connection at its initial node, binds it
// to an owner via the first request's distribution decision, then serves
// the requests in order.
func (d *driver) startConnection(first, count int) {
	f0 := d.tr.Requests[first]
	if ca, ok := d.dist.(policy.ClientAware); ok {
		ca.SetNextClient(d.tr.Client(first))
	}
	n0 := d.dist.Initial(f0)

	d.net.RouterIn(d.cfg.Costs.ReqKB, func() {
		node0 := d.nodes[n0]
		if node0.Failed() {
			d.abortConnectionUnassigned()
			return
		}
		node0.NIIn.Acquire(d.niIn, func() {
			cpuCost := d.parse
			if n0 == d.dist.FrontEnd() {
				cpuCost = d.cfg.FECostSec
			}
			node0.CPU.Acquire(d.cpu(n0, cpuCost), func() {
				owner := d.dist.Service(n0, f0)
				d.nodes[owner].AddConnection()
				d.dist.OnAssign(owner)
				if owner == n0 {
					d.serveConnRequest(owner, first, count, 0, true)
					return
				}
				// Hand the whole connection off once.
				fwdCost := d.fwd
				if n0 == d.dist.FrontEnd() {
					fwdCost = 0
				}
				node0.CPU.Acquire(d.cpu(n0, fwdCost), func() {
					d.net.Send(node0, d.nodes[owner], d.cfg.Costs.ReqKB, func() {
						d.serveConnRequest(owner, first, count, 0, true)
					})
				})
			})
		})
	})
}

// serveConnRequest serves request number i of the connection at the owner
// node, then recurses to the next request or closes the connection.
// handedOff marks whether the connection itself was handed off (counted
// once as a forward).
func (d *driver) serveConnRequest(owner, first, count, i int, firstCall bool) {
	if i >= count {
		d.closeConnection(owner, first, count)
		return
	}
	idx := first + i
	f := d.tr.Requests[idx]
	node := d.nodes[owner]
	if node.Failed() {
		d.abortConnectionAssigned(owner, f)
		return
	}
	skb := float64(d.tr.Size(f)) / 1024
	t0 := d.eng.Now()
	d.assigned++
	d.m.assigned.Inc()

	next := func() {
		d.completed++
		d.m.completed.Inc()
		d.lastDone = d.eng.Now()
		if d.measuring {
			d.latency.Add(d.eng.Now() - t0)
			d.m.latency.Observe(d.eng.Now() - t0)
			d.recordTimeline()
		}
		d.serveConnRequest(owner, first, count, i+1, false)
	}

	// Each request arrives from the client over the persistent connection
	// and is parsed at the owner. The first request was already parsed
	// during establishment.
	arrive := func(then func()) {
		if firstCall && i == 0 {
			then()
			return
		}
		d.net.RouterIn(d.cfg.Costs.ReqKB, func() {
			node.NIIn.Acquire(d.niIn, func() {
				node.CPU.Acquire(d.cpu(owner, d.parse), then)
			})
		})
	}

	arrive(func() {
		svc := d.dist.Service(owner, f)
		if svc == owner || !d.env().Alive(svc) {
			d.serveLocallyOnConn(node, f, skb, next)
			return
		}
		// Back-end forwarding: the caching node reads the file and ships
		// it to the owner, which transmits it to the client.
		d.forwarded++
		d.m.forwarded.Inc()
		node.CPU.Acquire(d.cpu(owner, d.fwd), func() {
			d.net.Send(node, d.nodes[svc], d.cfg.Costs.ReqKB, func() {
				d.remoteRead(svc, f, skb, func() {
					// Data crosses the cluster network: sender NI-out and
					// wire time scale with the file, receiver pays NI-in.
					remote := d.nodes[svc]
					remote.NIOut.Acquire(d.niOut(svc, skb), func() {
						wire := d.net.WireTime(remote, node, skb)
						d.eng.Schedule(wire, func() {
							node.NIIn.Acquire(d.niOut(owner, skb), func() {
								d.transmit(node, skb, func() {
									node.NIOut.Acquire(d.niOut(owner, skb), func() {
										d.net.RouterOut(skb, next)
									})
								})
							})
						})
					})
				})
			})
		})
	})
}

// serveLocallyOnConn is the local service path of a persistent-connection
// request: cache, disk on miss, transmit, NI out, router out.
func (d *driver) serveLocallyOnConn(node nodeRef, f cache.FileID, skb float64, next func()) {
	hit := node.Cache.Access(f, d.tr.Size(f))
	finish := func() {
		d.transmit(node, skb, func() {
			node.NIOut.Acquire(d.niOut(node.ID, skb), func() {
				d.net.RouterOut(skb, next)
			})
		})
	}
	if hit {
		finish()
	} else {
		d.fetch(node.ID, f, skb, finish)
	}
}

// remoteRead fetches the file into the remote node's cache (disk on miss)
// and charges a small CPU cost for the read-and-ship work.
func (d *driver) remoteRead(svc int, f cache.FileID, skb float64, done func()) {
	remote := d.nodes[svc]
	hit := remote.Cache.Access(f, d.tr.Size(f))
	then := func() {
		remote.CPU.Acquire(d.cfg.Net.MsgCPU, done)
	}
	if hit {
		then()
	} else {
		d.fetch(svc, f, skb, then)
	}
}

func (d *driver) closeConnection(owner, first, count int) {
	d.nodes[owner].RemoveConnection()
	d.dist.OnComplete(owner, d.tr.Requests[first])
	d.inflight--
	d.connections++
	d.connReqs += uint64(count)
	if !d.openLoop {
		d.inject()
	}
}

func (d *driver) abortConnectionUnassigned() {
	d.inflight--
	d.aborted++
	d.m.aborted.Inc()
	if !d.openLoop {
		d.inject()
	}
}

func (d *driver) abortConnectionAssigned(owner int, f cache.FileID) {
	d.nodes[owner].RemoveConnection()
	d.dist.OnComplete(owner, f)
	d.inflight--
	d.aborted++
	d.m.aborted.Inc()
	if !d.openLoop {
		d.inject()
	}
}

// nodeRef aliases the node type for the local service helper.
type nodeRef = *cluster.Node

func (d *driver) env() policy.Env { return d }
