package server

import "math"

// RateSegment is one piece of a piecewise-constant open-loop arrival
// profile: Rate requests per second offered for Duration seconds. A zero
// Rate is a silent interval (a nightly trough); the schedule as a whole
// must offer some traffic.
type RateSegment struct {
	Duration float64
	Rate     float64
}

// DiurnalSchedule builds a sinusoidal arrival profile — the open-loop
// realization of the trace package's diurnal mode: segments slices of one
// period of mean*(1 + relAmp*sin) sampled at each slice midpoint. The
// driver cycles the schedule, so one period describes any run length.
// relAmp must lie in [0, 1): the trough rate stays positive, which keeps
// every segment's expected arrival count nonzero.
func DiurnalSchedule(mean, relAmp, period float64, segments int) []RateSegment {
	if !(mean > 0) || relAmp < 0 || relAmp >= 1 || !(period > 0) || segments < 1 {
		return nil
	}
	sched := make([]RateSegment, segments)
	dur := period / float64(segments)
	for i := range sched {
		mid := (float64(i) + 0.5) / float64(segments)
		sched[i] = RateSegment{
			Duration: dur,
			Rate:     mean * (1 + relAmp*math.Sin(2*math.Pi*mid)),
		}
	}
	return sched
}
