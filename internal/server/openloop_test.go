package server

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// uniformTrace builds a workload of uniformly popular, equally sized files.
func uniformTrace(sizes []int64, requests int) *trace.Trace {
	rng := rand.New(rand.NewSource(3))
	reqs := make([]cache.FileID, requests)
	for i := range reqs {
		reqs[i] = cache.FileID(rng.Intn(len(sizes)))
	}
	return &trace.Trace{Name: "uniform", Sizes: sizes, Requests: reqs}
}

func TestOpenLoopThroughputTracksOfferedLoad(t *testing.T) {
	tr := testTrace(30000)
	cfg := DefaultConfig(L2SServer, 8)
	cfg.ArrivalRate = 500 // well under capacity (~3000 req/s at 8 nodes)
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Completed throughput equals the offered rate (within Poisson noise).
	if r.Throughput < 450 || r.Throughput > 550 {
		t.Fatalf("throughput %v, want about the offered 500 req/s", r.Throughput)
	}
	if r.Completed != uint64(tr.NumRequests())-uint64(cfg.WarmFraction*float64(tr.NumRequests())) &&
		r.Completed == 0 {
		t.Fatalf("completed = %d", r.Completed)
	}
}

func TestOpenLoopLatencyGrowsWithLoad(t *testing.T) {
	tr := testTrace(30000)
	latencyAt := func(rate float64) float64 {
		cfg := DefaultConfig(L2SServer, 8)
		cfg.ArrivalRate = rate
		r, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return r.LatencyMean
	}
	low := latencyAt(300)
	high := latencyAt(2200)
	if low <= 0 {
		t.Fatal("no latency measured")
	}
	if high <= low {
		t.Fatalf("latency must grow with offered load: %v at 300/s vs %v at 2200/s", low, high)
	}
}

func TestOpenLoopLatencyNearModelAtLightLoad(t *testing.T) {
	// At light load queueing is negligible, so the simulated mean response
	// time must approach the model's zero-load service time for the same
	// workload shape (single node, everything cached, uniform size).
	sizes := make([]int64, 20)
	for i := range sizes {
		sizes[i] = 16 << 10
	}
	tr := uniformTrace(sizes, 20000)

	cfg := DefaultConfig(Traditional, 1)
	cfg.ArrivalRate = 20 // ~4% utilization
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.Costs
	p.Nodes = 1
	p.AvgFileKB = 16
	want := p.Latency(20, 1, 0)
	if r.LatencyMean < want*0.7 || r.LatencyMean > want*1.5 {
		t.Fatalf("light-load latency %v, model predicts %v", r.LatencyMean, want)
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	tr := testTrace(10000)
	cfg := DefaultConfig(Traditional, 4)
	cfg.ArrivalRate = 400
	a, _ := Run(cfg, tr)
	b, _ := Run(cfg, tr)
	if a.Throughput != b.Throughput || a.LatencyMean != b.LatencyMean {
		t.Fatal("open-loop runs must be deterministic")
	}
}

func TestOpenLoopValidation(t *testing.T) {
	tr := testTrace(100)
	cfg := DefaultConfig(Traditional, 2)
	cfg.ArrivalRate = -1
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("negative arrival rate accepted")
	}
}
