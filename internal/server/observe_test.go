package server

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"

	"repro/internal/obs"
)

// TestObservedRunMatchesGolden re-runs every pinned equivalence case with a
// series recorder and a metrics registry attached and demands the Result stay
// byte-identical to the committed goldens: observation must never perturb the
// simulation, down to the last float bit.
func TestObservedRunMatchesGolden(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}

	tr := equivalenceTrace()
	cases := equivalenceCases()
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		cfg := cases[name]
		rec := obs.NewSeries(0.01)
		reg := obs.NewRegistry()
		cfg.Series = rec
		cfg.Metrics = reg
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry", name)
			continue
		}
		if string(js) != string(w) {
			t.Errorf("%s: observed Result diverged from golden\n got: %s\nwant: %s",
				name, js, w)
		}
		if rec.Len() == 0 {
			t.Errorf("%s: series recorded no samples", name)
		}
		if reg.Counter("requests_completed_total").Value() == 0 {
			t.Errorf("%s: completed counter never incremented", name)
		}
	}
}

// TestSeriesAgreesWithResult checks the exactness contract: the dt-weighted
// mean of each sampled utilization series telescopes to the corresponding
// Result aggregate to within 1e-9.
func TestSeriesAgreesWithResult(t *testing.T) {
	tr := equivalenceTrace()
	rec := obs.NewSeries(0.005)
	cfg := NewConfig(L2SServer, 8, WithSeed(42), WithCacheBytes(2<<20),
		WithSeries(rec))
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no samples recorded")
	}

	const tol = 1e-9
	var diskSum float64
	for i := 0; i < cfg.Nodes; i++ {
		cpu := rec.WeightedMean(i, SeriesCPUUtil)
		if d := math.Abs(cpu - res.PerNodeCPUUtil[i]); d > tol {
			t.Errorf("node %d: series cpu_util mean %v vs Result %v (diff %g)",
				i, cpu, res.PerNodeCPUUtil[i], d)
		}
		diskSum += rec.WeightedMean(i, SeriesDiskUtil)
	}
	if d := math.Abs(diskSum/float64(cfg.Nodes) - res.MeanDiskUtil); d > tol {
		t.Errorf("series disk util mean %v vs Result.MeanDiskUtil %v (diff %g)",
			diskSum/float64(cfg.Nodes), res.MeanDiskUtil, d)
	}
	router := rec.WeightedMean(obs.ClusterWide, SeriesRouterUtil)
	if d := math.Abs(router - res.RouterUtil); d > tol {
		t.Errorf("series router_util mean %v vs Result.RouterUtil %v (diff %g)",
			router, res.RouterUtil, d)
	}
}

// TestRunMetricsMirrorsResult runs with no warm-up so the mirrored counters
// and the measured Result count the same events exactly, and checks the
// registry's Prometheus exposition round-trips through the strict parser.
func TestRunMetricsMirrorsResult(t *testing.T) {
	tr := equivalenceTrace()
	reg := obs.NewRegistry()
	cfg := NewConfig(L2SServer, 8, WithSeed(42), WithCacheBytes(2<<20),
		WithWarmFraction(0), WithMetrics(reg))
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("requests_completed_total").Value(); got != res.Completed {
		t.Errorf("completed counter %d, Result.Completed %d", got, res.Completed)
	}
	if got := reg.Counter("requests_aborted_total").Value(); got != res.Aborted {
		t.Errorf("aborted counter %d, Result.Aborted %d", got, res.Aborted)
	}
	if got := reg.Counter("net_messages_total").Value(); got != res.ControlMessages {
		t.Errorf("messages counter %d, Result.ControlMessages %d", got, res.ControlMessages)
	}
	assigned := reg.Counter("requests_assigned_total").Value()
	forwarded := reg.Counter("requests_forwarded_total").Value()
	if assigned == 0 {
		t.Fatal("no assignments counted")
	}
	if got := float64(forwarded) / float64(assigned); math.Abs(got-res.ForwardedFrac) > 1e-12 {
		t.Errorf("counter forward frac %v, Result.ForwardedFrac %v", got, res.ForwardedFrac)
	}
	hits := reg.Counter("cache_hits_total").Value()
	misses := reg.Counter("cache_misses_total").Value()
	if hits+misses == 0 {
		t.Fatal("no cache accesses counted")
	}
	if got := float64(misses) / float64(hits+misses); math.Abs(got-res.MissRate) > 1e-12 {
		t.Errorf("counter miss rate %v, Result.MissRate %v", got, res.MissRate)
	}
	h := reg.Histogram("request_latency_seconds", LatencyBuckets)
	if h.Count() != res.Completed {
		t.Errorf("latency histogram has %d observations, want %d", h.Count(), res.Completed)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("write exposition: %v", err)
	}
	scrape, err := obs.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, buf.String())
	}
	if got := scrape.Values["requests_completed_total"]; got != float64(res.Completed) {
		t.Errorf("scraped completed %v, want %d", got, res.Completed)
	}
}

// TestSeriesArtifacts exercises the two export formats on a real run's
// series: every JSONL line must be a valid Sample document, and the Chrome
// trace must be well-formed JSON with counter events for every node.
func TestSeriesArtifacts(t *testing.T) {
	tr := equivalenceTrace()
	rec := obs.NewSeries(0.01)
	cfg := NewConfig(L2SServer, 4, WithSeed(3), WithCacheBytes(2<<20),
		WithSeries(rec))
	if _, err := Run(cfg, tr); err != nil {
		t.Fatal(err)
	}

	var jsonl bytes.Buffer
	if err := rec.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(jsonl.Bytes(), "\n"), []byte("\n"))
	if len(lines) != rec.Len() {
		t.Fatalf("JSONL has %d lines for %d samples", len(lines), rec.Len())
	}
	var s obs.Sample
	if err := json.Unmarshal(lines[0], &s); err != nil {
		t.Fatalf("first JSONL line invalid: %v", err)
	}

	var chrome bytes.Buffer
	if err := rec.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid JSON: %v", err)
	}
	pids := make(map[int]bool)
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" {
			pids[ev.Pid] = true
		}
	}
	for i := 0; i <= cfg.Nodes; i++ { // pid 0 is cluster-wide, 1..N the nodes
		if !pids[i] {
			t.Errorf("chrome trace has no counter events for pid %d", i)
		}
	}
}
