package server_test

import (
	"fmt"

	"repro/internal/server"
	"repro/internal/trace"
)

// Simulate an L2S cluster over a synthetic workload and read off the
// Section 5 metrics.
func ExampleRun() {
	workload := trace.MustGenerate(trace.GenSpec{
		Name: "example", Files: 400, AvgFileKB: 20, Requests: 20000,
		AvgReqKB: 12, Alpha: 0.9, Seed: 1,
	})

	cfg := server.DefaultConfig(server.L2SServer, 4)
	result, err := server.Run(cfg, workload)
	if err != nil {
		panic(err)
	}
	fmt.Printf("system: %s on %d nodes\n", result.System, result.Nodes)
	fmt.Printf("measured the post-warm-up 60%% of the trace: %v\n",
		result.Completed >= 12000 && result.Aborted == 0)
	fmt.Printf("forwarded some requests: %v\n", result.ForwardedFrac > 0)
	fmt.Printf("cache misses below 10%%: %v\n", result.MissRate < 0.10)
	// Output:
	// system: l2s on 4 nodes
	// measured the post-warm-up 60% of the trace: true
	// forwarded some requests: true
	// cache misses below 10%: true
}
