package server

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

func persistentConfig(sys System, nodes int) Config {
	cfg := DefaultConfig(sys, nodes)
	cfg.Persistent = true
	cfg.ReqsPerConn = 5
	return cfg
}

func TestGeometricLengthMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		k := geometricLength(rng, 7)
		if k < 1 {
			t.Fatal("length below 1")
		}
		sum += float64(k)
	}
	if mean := sum / n; math.Abs(mean-7) > 0.2 {
		t.Fatalf("mean connection length = %v, want about 7", mean)
	}
	if geometricLength(rng, 1) != 1 {
		t.Fatal("mean 1 must always give single-request connections")
	}
	if geometricLength(rng, 0.5) != 1 {
		t.Fatal("mean below 1 must clamp to 1")
	}
}

func TestPersistentConservation(t *testing.T) {
	tr := testTrace(20000)
	for _, sys := range []System{Traditional, LARDServer, L2SServer} {
		cfg := persistentConfig(sys, 4)
		cfg.WarmFraction = 0
		r, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed != uint64(tr.NumRequests()) {
			t.Errorf("%v: completed %d of %d requests", sys, r.Completed, tr.NumRequests())
		}
		if r.Connections == 0 {
			t.Errorf("%v: no connections recorded", sys)
		}
		if math.Abs(r.ReqsPerConn-5) > 1 {
			t.Errorf("%v: measured %.1f requests/connection, want about 5", sys, r.ReqsPerConn)
		}
	}
}

func TestPersistentRaisesLARDCeiling(t *testing.T) {
	// With persistence the front-end handles connections, not requests, so
	// LARD's throughput ceiling rises by about the requests-per-connection
	// factor. Use a small-file workload where the ceiling binds.
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "tiny", Files: 400, AvgFileKB: 4, Requests: 60000,
		AvgReqKB: 3, Alpha: 1.0, LocalityP: 0.3, Seed: 7,
	})
	plain, err := Run(DefaultConfig(LARDServer, 16), tr)
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := Run(persistentConfig(LARDServer, 16), tr)
	if err != nil {
		t.Fatal(err)
	}
	if persistent.Throughput < plain.Throughput*1.5 {
		t.Fatalf("persistence should lift LARD's FE ceiling: %v -> %v",
			plain.Throughput, persistent.Throughput)
	}
}

func TestPersistentReducesForwardingAndLatency(t *testing.T) {
	tr := testTrace(30000)
	plain, err := Run(DefaultConfig(L2SServer, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := Run(persistentConfig(L2SServer, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-off happens at most once per connection; per-request internal
	// forwards remain (back-end forwarding), but connection establishment
	// costs amortize, so median latency falls.
	if persistent.LatencyP50 >= plain.LatencyP50 {
		t.Errorf("persistent p50 %v not below per-request p50 %v",
			persistent.LatencyP50, plain.LatencyP50)
	}
	if persistent.Throughput < plain.Throughput*0.7 {
		t.Errorf("persistence collapsed L2S throughput: %v -> %v",
			plain.Throughput, persistent.Throughput)
	}
}

func TestPersistentTraditionalUnaffected(t *testing.T) {
	tr := testTrace(20000)
	plain, _ := Run(DefaultConfig(Traditional, 8), tr)
	persistent, _ := Run(persistentConfig(Traditional, 8), tr)
	// The traditional server never forwards, so persistence only removes
	// per-request establishment costs; throughput stays within 15%.
	if math.Abs(persistent.Throughput-plain.Throughput)/plain.Throughput > 0.15 {
		t.Errorf("traditional moved too much: %v -> %v", plain.Throughput, persistent.Throughput)
	}
	if persistent.ForwardedFrac != 0 {
		t.Error("traditional must not forward under persistence")
	}
}

func TestPersistentDeterministic(t *testing.T) {
	tr := testTrace(10000)
	cfg := persistentConfig(L2SServer, 4)
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Connections != b.Connections {
		t.Fatal("persistent runs must be deterministic")
	}
}

func TestPersistentValidation(t *testing.T) {
	tr := testTrace(100)
	cfg := DefaultConfig(L2SServer, 2)
	cfg.Persistent = true
	cfg.ReqsPerConn = 0.5
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("ReqsPerConn below 1 must be rejected")
	}
}

func TestLatencyMetricsPopulated(t *testing.T) {
	tr := testTrace(20000)
	r, err := Run(DefaultConfig(L2SServer, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.LatencyMean <= 0 || r.LatencyP50 <= 0 || r.LatencyP99 <= 0 {
		t.Fatalf("latency metrics missing: %+v", r)
	}
	if r.LatencyP99 < r.LatencyP50 {
		t.Fatal("p99 below p50")
	}
	if r.LoadImbalance < 1 {
		t.Fatalf("imbalance %v below 1", r.LoadImbalance)
	}
}

func TestClientAwarePolicyReceivesClients(t *testing.T) {
	spec := trace.GenSpec{
		Name: "clients", Files: 300, AvgFileKB: 20, Requests: 20000,
		AvgReqKB: 12, Alpha: 0.9, Clients: 40, Seed: 3,
	}
	tr := trace.MustGenerate(spec)
	cfg := DefaultConfig(CustomServer, 8)
	cfg.CustomPolicy = newCachedDNSFactory(50)
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// 40 Zipf-active clients pinned by DNS caching over 8 nodes must show
	// measurable imbalance compared to fewest-connections.
	base, _ := Run(DefaultConfig(Traditional, 8), tr)
	if r.LoadImbalance <= base.LoadImbalance {
		t.Errorf("cached DNS imbalance %v not above traditional %v",
			r.LoadImbalance, base.LoadImbalance)
	}
}

// newCachedDNSFactory adapts policy.NewCachedDNS to a CustomPolicy.
func newCachedDNSFactory(ttl int) func(env policy.Env) policy.Distributor {
	return func(env policy.Env) policy.Distributor {
		return policy.NewCachedDNS(env, ttl)
	}
}
