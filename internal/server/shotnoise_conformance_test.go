package server

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cache"
	"repro/internal/queuemodel"
	"repro/internal/shotnoise"
	"repro/internal/trace"
)

// Conformance suite for the shot-noise workload against Olmos, Graham &
// Simonian (Cache Miss Estimation for Non-Stationary Request Processes,
// arXiv:1511.07392): the full simulator — router, node, byte-LRU cache —
// replaying a synthesized shot-noise trace on one node must reproduce the
// model's analytic miss probability, and in the long-lifetime limit recover
// the stationary Che/Ji-Quan-Tan reference of PR 8. Both tests measure the
// whole stream (WarmFraction 0): the analytic counts each document's
// compulsory miss, so warm-up must not be discarded.

const (
	snConfFileBytes = 4096
	snConfDocRate   = 25.0
	snConfHorizon   = 200.0
	snConfMeanReqs  = 50.0
	snConfLifetime  = 5.0
)

// snTrace wraps a shot-noise realization as an equal-sized-file trace, so a
// byte-LRU of C*snConfFileBytes is exactly the model's C-document LRU.
func snTrace(p *shotnoise.Process) *trace.Trace {
	sizes := make([]int64, len(p.Docs))
	for i := range sizes {
		sizes[i] = snConfFileBytes
	}
	reqs := make([]cache.FileID, len(p.DocOf))
	for i, id := range p.DocOf {
		reqs[i] = cache.FileID(id)
	}
	tr := &trace.Trace{Name: "shotnoise-conformance", Sizes: sizes, Requests: reqs}
	if err := tr.Validate(); err != nil {
		panic(err)
	}
	return tr
}

// snMissRate replays the trace through the real single-node simulator.
func snMissRate(t *testing.T, tr *trace.Trace, cacheDocs int) float64 {
	t.Helper()
	cfg := NewConfig(CustomServer, 1,
		WithPolicy("chash"), WithSeed(42), WithWarmFraction(0),
		WithCacheBytes(int64(cacheDocs)*snConfFileBytes))
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res.MissRate
}

// TestShotNoiseMissMatchesOlmosGrahamSimonian pins the simulated miss ratio
// on a churned trace to the model's closed form at three cache sizes
// spanning miss ratios from ~50% down to ~10%.
func TestShotNoiseMissMatchesOlmosGrahamSimonian(t *testing.T) {
	p := shotnoise.MustGenerate(shotnoise.Spec{
		Rate: snConfDocRate, Horizon: snConfHorizon,
		MeanRequests: snConfMeanReqs, Lifetime: snConfLifetime, Seed: 9,
	})
	tr := snTrace(p)
	model := queuemodel.ShotNoise{
		DocRate: snConfDocRate, MeanRequests: snConfMeanReqs, Lifetime: snConfLifetime,
	}
	for _, c := range []int{150, 400, 800} {
		sim := snMissRate(t, tr, c)
		analytic := model.LRUMiss(float64(c))
		t.Logf("cache %4d docs: sim %.4f, analytic %.4f", c, sim, analytic)
		if rel := math.Abs(sim-analytic) / analytic; rel > 0.10 {
			t.Errorf("cache %d: sim miss %.4f vs analytic %.4f: rel %.3f > 0.10",
				c, sim, analytic, rel)
		}
	}
}

// TestShotNoiseStationaryLimitRecoversChe: freeze the churn — a fixed
// catalog of Zipf-weighted documents whose lifetime vastly exceeds the
// horizon is an IRM Zipf stream, and the simulated miss ratio must recover
// the stationary Che reference (queuemodel.LRUZipfMissChe) that PR 8's
// conformance suite pins for consistent hashing.
func TestShotNoiseStationaryLimitRecoversChe(t *testing.T) {
	const (
		m        = 20000
		alpha    = 0.8
		lifetime = 1e6
		horizon  = 1000.0
		requests = 300000.0
	)
	var hm float64
	for i := 1; i <= m; i++ {
		hm += math.Pow(float64(i), -alpha)
	}
	docs := make([]shotnoise.Doc, m)
	for i := range docs {
		p := math.Pow(float64(i+1), -alpha) / hm
		// Weight such that the in-window emission p*requests: the window
		// burns only horizon/lifetime of each document's total volume.
		docs[i] = shotnoise.Doc{Weight: requests * p * lifetime / horizon}
	}
	p := shotnoise.MustGenerate(shotnoise.Spec{
		Rate: 0, Horizon: horizon, Lifetime: lifetime, Seed: 5, Initial: docs,
	})
	tr := snTrace(p)
	for _, c := range []int{500, 2000} {
		sim := snMissRate(t, tr, c)
		che := queuemodel.LRUZipfMissChe(alpha, m, float64(c))
		t.Logf("cache %4d docs: sim %.4f, Che %.4f", c, sim, che)
		if rel := math.Abs(sim-che) / che; rel > 0.10 {
			t.Errorf("cache %d: sim miss %.4f vs Che %.4f: rel %.3f > 0.10", c, sim, che, rel)
		}
	}
}

// TestScheduleArrivals: the piecewise-constant open-loop schedule delivers
// its rate profile — a run under a two-segment schedule completes, reports
// open-loop latency, and a cycling one-period diurnal schedule reproduces
// the configured mean rate in aggregate throughput.
func TestScheduleArrivals(t *testing.T) {
	spec := trace.GenSpec{Name: "sched", Files: 2000, AvgFileKB: 16, Requests: 30000,
		AvgReqKB: 10, Alpha: 0.9, Seed: 3}
	tr := trace.MustGenerate(spec)

	sched := DiurnalSchedule(400, 0.6, 60, 12)
	if len(sched) != 12 {
		t.Fatalf("DiurnalSchedule built %d segments", len(sched))
	}
	var mean float64
	for _, seg := range sched {
		if seg.Duration <= 0 || seg.Rate <= 0 {
			t.Fatalf("bad segment %+v", seg)
		}
		mean += seg.Rate
	}
	mean /= float64(len(sched))
	if math.Abs(mean-400)/400 > 0.01 {
		t.Errorf("schedule mean rate %v, want 400", mean)
	}

	cfg := NewConfig(Traditional, 4, WithSeed(7), WithArrivalSchedule(sched))
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// The measured interval covers whole cycles plus change; aggregate
	// completion rate must sit near the schedule mean (the cluster keeps up
	// at this load), well below the trough/peak extremes.
	if res.Throughput < 400*(1-0.6) || res.Throughput > 400*(1+0.6) {
		t.Errorf("throughput %v outside the schedule's rate envelope [160, 640]", res.Throughput)
	}
	if math.Abs(res.Throughput-400)/400 > 0.15 {
		t.Errorf("throughput %v, want ~schedule mean 400", res.Throughput)
	}
	if res.LatencyP99 <= 0 {
		t.Error("open-loop run reported no latency")
	}

	// Mutual exclusion and malformed schedules fail Validate.
	bad := NewConfig(Traditional, 4, WithArrivalRate(100), WithArrivalSchedule(sched))
	if err := bad.Validate(); err == nil {
		t.Error("ArrivalRate + ArrivalSchedule must fail Validate")
	}
	for i, s := range [][]RateSegment{
		{{Duration: 0, Rate: 10}},
		{{Duration: 1, Rate: -1}},
		{{Duration: 1, Rate: 0}, {Duration: 2, Rate: 0}},
		{{Duration: math.Inf(1), Rate: 5}},
	} {
		c := NewConfig(Traditional, 4, WithArrivalSchedule(s))
		if err := c.Validate(); err == nil {
			t.Errorf("schedule %d accepted: %+v", i, s)
		}
	}

	// Zero-rate troughs are legal and are skipped whole by the sampler.
	gated := []RateSegment{{Duration: 0.05, Rate: 800}, {Duration: 0.05, Rate: 0}}
	cfg = NewConfig(Traditional, 4, WithSeed(7), WithArrivalSchedule(gated))
	if res, err = Run(cfg, tr); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Throughput-400)/400 > 0.15 {
		t.Errorf("gated schedule throughput %v, want ~400", res.Throughput)
	}

	if DiurnalSchedule(0, 0.5, 60, 8) != nil || DiurnalSchedule(100, 1, 60, 8) != nil ||
		DiurnalSchedule(100, 0.5, 0, 8) != nil || DiurnalSchedule(100, 0.5, 60, 0) != nil {
		t.Error("DiurnalSchedule accepted out-of-domain parameters")
	}
}

func init() {
	// Guard the conformance regime: ~5000 documents over the horizon with
	// a ~250k-request realization; the asserted cache points must stay well
	// inside the realized document population.
	if snConfDocRate*snConfHorizon != 5000 {
		panic(fmt.Sprintf("shot-noise conformance constants drifted: %v docs expected",
			snConfDocRate*snConfHorizon))
	}
}
