// Functional-option construction for Config: sweep code describes a grid
// point as NewConfig(system, nodes, opts...) instead of mutating struct
// fields in place, which keeps job construction side-effect free and makes
// grids declarative. The Config struct stays exported and settable for
// compatibility; an Option is just func(*Config), so one-off tweaks can be
// written inline.
package server

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/queuemodel"
)

// Option mutates a Config under construction in NewConfig.
type Option func(*Config)

// NewConfig returns the paper's simulation setup for the given system and
// cluster size — 32 MB caches, Table 1 costs, M-VIA messaging, L2S with
// T=20/t=10/delta=4, LARD with the published parameters, and a 5000
// request/s front-end — with the given options applied on top.
func NewConfig(system System, nodes int, opts ...Option) Config {
	cfg := Config{
		System:           system,
		Nodes:            nodes,
		CacheBytes:       32 << 20,
		Costs:            queuemodel.DefaultParams(),
		Net:              netsim.DefaultConfig(),
		L2S:              core.DefaultOptions(),
		LARD:             policy.DefaultLARDOptions(),
		FECostSec:        0.0002,
		DispatchQuerySec: 0.0001,
		WindowPerNode:    12,
		WarmFraction:     0.4,
		CPUChunkKB:       8,
		FailNode:         -1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithSeed sets the run's base RNG seed: it seeds the open-loop arrival
// process, persistent-connection lengths, and any seedable policy, except
// where a more specific seed field was set explicitly.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithCacheBytes sets the per-node main memory.
func WithCacheBytes(bytes int64) Option {
	return func(c *Config) { c.CacheBytes = bytes }
}

// WithFailure crashes the given node after atFrac of the trace has been
// injected.
func WithFailure(node int, atFrac float64) Option {
	return func(c *Config) { c.FailNode, c.FailAtFrac = node, atFrac }
}

// WithWindow sets the per-node outstanding-connection budget.
func WithWindow(perNode int) Option {
	return func(c *Config) { c.WindowPerNode = perNode }
}

// WithWarmFraction sets the cache warm-up fraction of the trace.
func WithWarmFraction(f float64) Option {
	return func(c *Config) { c.WarmFraction = f }
}

// WithMaxRequests truncates the trace.
func WithMaxRequests(n int) Option {
	return func(c *Config) { c.MaxRequests = n }
}

// WithArrivalRate switches to an open-loop Poisson arrival process at the
// given requests per second.
func WithArrivalRate(rate float64) Option {
	return func(c *Config) { c.ArrivalRate = rate }
}

// WithArrivalSchedule switches to an open-loop inhomogeneous Poisson
// process with the given piecewise-constant rate profile (cycled over the
// run); see DiurnalSchedule for the sinusoidal profile of diurnal mode.
func WithArrivalSchedule(sched []RateSegment) Option {
	return func(c *Config) { c.ArrivalSchedule = sched }
}

// WithPersistent enables HTTP/1.1-style persistent connections with the
// given mean requests per connection.
func WithPersistent(reqsPerConn float64) Option {
	return func(c *Config) { c.Persistent, c.ReqsPerConn = true, reqsPerConn }
}

// WithCPUSpeeds gives each node a relative CPU speed.
func WithCPUSpeeds(speeds []float64) Option {
	return func(c *Config) { c.CPUSpeeds = speeds }
}

// WithDistributedFS models the distributed file system explicitly: cache
// misses fetch from the file's home disk across the cluster network.
func WithDistributedFS() Option {
	return func(c *Config) { c.DistributedFS = true }
}

// WithTimelineBucket records a throughput time series with buckets of the
// given simulated width.
func WithTimelineBucket(seconds float64) Option {
	return func(c *Config) { c.TimelineBucket = seconds }
}

// WithL2S replaces the L2S tunables.
func WithL2S(opts core.Options) Option {
	return func(c *Config) { c.L2S = opts }
}

// WithLARD replaces the LARD execution parameters.
func WithLARD(opts policy.LARDOptions) Option {
	return func(c *Config) { c.LARD = opts }
}

// WithPolicy runs a registered distribution policy by name (see
// policy.Names): the system becomes CustomServer and the distributor is
// built by policy.New at run time, configured from the Config's LARD, L2S,
// Seed, DNSTTL, and DispatchQuerySec fields. Unknown names surface from
// Run as an error listing the valid ones.
func WithPolicy(name string) Option {
	return func(c *Config) { c.System, c.Policy = CustomServer, name }
}

// WithCustomPolicy runs a caller-supplied distributor.
func WithCustomPolicy(mk func(env policy.Env) policy.Distributor) Option {
	return func(c *Config) { c.System, c.CustomPolicy = CustomServer, mk }
}

// WithDNSTTL sets the cached-dns policy's requests per cached translation.
func WithDNSTTL(requests int) Option {
	return func(c *Config) { c.DNSTTL = requests }
}

// WithSeries attaches a time-series recorder: per-resource utilization,
// cache hit rates, queue depths, load, and forwarding fraction are sampled
// every rec.Interval() simulated seconds during the measurement phase.
// Observation never perturbs the simulation. A Series must not be shared
// between parallel sweep jobs.
func WithSeries(rec *obs.Series) Option {
	return func(c *Config) { c.Series = rec }
}

// WithMetrics mirrors run counters and a request-latency histogram onto the
// registry (see Config.Metrics).
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}
