package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/queuemodel"
	"repro/internal/trace"
)

// NodeProfile describes one node's hardware relative to the Table 1
// baseline (see cluster.Profile for field semantics). The paper assumes
// "all cluster nodes are equally powerful"; profiles relax that so
// mixed-generation and multi-tier clusters can be simulated.
type NodeProfile = cluster.Profile

// DefaultNodeProfile returns the explicit baseline profile.
func DefaultNodeProfile() NodeProfile { return cluster.DefaultProfile() }

// WithProfiles gives each node a hardware profile; exactly one per node.
// This supersedes the deprecated WithCPUSpeeds, which it can express as
// profiles with only CPUSpeed set.
func WithProfiles(profiles ...NodeProfile) Option {
	return func(c *Config) { c.Profiles = profiles }
}

// UniformProfiles returns n copies of one profile.
func UniformProfiles(n int, p NodeProfile) []NodeProfile {
	out := make([]NodeProfile, n)
	for i := range out {
		out[i] = p
	}
	return out
}

// Tiered profiles the cluster as two hardware tiers: the first split nodes
// get the fast profile and the rest the slow one — the
// small-fast-tier-fronting-big-slow-tier shape of the two-tier study.
// split is clamped to [0, Nodes]; apply it after any option that changes
// Nodes.
func Tiered(fast, slow NodeProfile, split int) Option {
	return func(c *Config) {
		if split < 0 {
			split = 0
		}
		if split > c.Nodes {
			split = c.Nodes
		}
		profiles := make([]NodeProfile, c.Nodes)
		for i := range profiles {
			if i < split {
				profiles[i] = fast
			} else {
				profiles[i] = slow
			}
		}
		c.Profiles = profiles
	}
}

// resolvedProfiles returns the run's per-node profiles, normalized, or nil
// for a fully homogeneous run. The deprecated CPUSpeeds field maps onto
// profiles with only CPUSpeed set, which is bit-identical to its
// historical behavior (TestCPUSpeedsShimBitIdentical): every other
// resource divides by exactly 1.0.
func (c Config) resolvedProfiles() []cluster.Profile {
	if c.Profiles != nil {
		out := make([]cluster.Profile, len(c.Profiles))
		for i, p := range c.Profiles {
			out[i] = p.Normalized()
		}
		return out
	}
	if c.CPUSpeeds != nil {
		out := make([]cluster.Profile, len(c.CPUSpeeds))
		for i, s := range c.CPUSpeeds {
			out[i] = cluster.Profile{CPUSpeed: s, DiskSpeed: 1}
		}
		return out
	}
	return nil
}

// weightReferenceHit is the cache hit rate at which capacity weights are
// computed. The weighted policies need relative node capacities, and a
// node's bottleneck (CPU vs disk) depends on its hit rate; 0.9 is the
// locality-conscious regime the paper's evaluation operates in, and the
// weights are insensitive to the exact choice (DESIGN.md).
const weightReferenceHit = 0.9

// capacityWeights returns each node's relative capacity, normalized to
// mean 1: the heterogeneous queueing model's per-node saturation rates
// (queuemodel.NodeCapacities) at the reference hit rate, for the trace's
// mean request size. Uniform profiles yield all-ones.
func capacityWeights(profiles []cluster.Profile, costs queuemodel.Params, tr *trace.Trace) []float64 {
	var reqBytes float64
	for _, id := range tr.Requests {
		reqBytes += float64(tr.Size(id))
	}
	p := costs
	p.Nodes = len(profiles)
	if n := len(tr.Requests); n > 0 {
		p.AvgFileKB = reqBytes / float64(n) / 1024
	}
	per := p.NodeCapacities(profiles, weightReferenceHit, 0)
	w := make([]float64, len(per))
	var sum float64
	for i, nb := range per {
		w[i] = nb.RequestsPerSec
		sum += w[i]
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	mean := sum / float64(len(w))
	for i := range w {
		w[i] /= mean
	}
	return w
}

// maxParsedNodes bounds the node count a -profiles spec can expand to, so
// a hostile count ("999999999xfast:...") cannot exhaust memory.
const maxParsedNodes = 65536

// ParseProfiles parses the unified -profiles CLI spec shared by
// cmd/experiments and cmd/clustersim: comma-separated groups of
//
//	[COUNTx][name:]CPU/DISK[/LINK[/CACHE]]
//
// where CPU and DISK are relative speeds (1 = Table 1 baseline), LINK is
// the NI line rate in KB/s (0 = network default), and CACHE is a byte
// size with an optional KB/MB/GB suffix (0 = cluster default). Empty
// trailing fields select their defaults. Example:
//
//	4xfast:2.0/1.5/125000/64MB,12xslow:1.0/1.0/125000/32MB
//
// expands to 16 profiles. The total node count is capped at 65536.
func ParseProfiles(spec string) ([]NodeProfile, error) {
	var out []NodeProfile
	for _, group := range strings.Split(spec, ",") {
		group = strings.TrimSpace(group)
		if group == "" {
			return nil, fmt.Errorf("profiles: empty group in %q", spec)
		}
		count := 1
		if i := strings.IndexByte(group, 'x'); i >= 0 {
			if n, err := strconv.Atoi(group[:i]); err == nil {
				if n < 1 {
					return nil, fmt.Errorf("profiles: count %d in group %q", n, group)
				}
				count = n
				group = group[i+1:]
			}
		}
		if i := strings.IndexByte(group, ':'); i >= 0 {
			// The name before the colon is a label for humans; only the
			// fields after it matter.
			group = group[i+1:]
		}
		p, err := parseProfileFields(group)
		if err != nil {
			return nil, err
		}
		if len(out)+count > maxParsedNodes {
			return nil, fmt.Errorf("profiles: spec expands past %d nodes", maxParsedNodes)
		}
		for i := 0; i < count; i++ {
			out = append(out, p)
		}
	}
	return out, nil
}

// parseProfileFields parses the CPU/DISK[/LINK[/CACHE]] tail of one group.
func parseProfileFields(s string) (NodeProfile, error) {
	fields := strings.Split(s, "/")
	if len(fields) < 2 || len(fields) > 4 {
		return NodeProfile{}, fmt.Errorf("profiles: group %q needs CPU/DISK[/LINK[/CACHE]]", s)
	}
	speed := func(name, v string) (float64, error) {
		if v == "" {
			return 0, nil
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil || x < 0 || x > 1e6 {
			return 0, fmt.Errorf("profiles: bad %s speed %q", name, v)
		}
		return x, nil
	}
	var p NodeProfile
	var err error
	if p.CPUSpeed, err = speed("cpu", fields[0]); err != nil {
		return NodeProfile{}, err
	}
	if p.DiskSpeed, err = speed("disk", fields[1]); err != nil {
		return NodeProfile{}, err
	}
	if len(fields) >= 3 {
		if p.LinkKBps, err = speed("link", fields[2]); err != nil {
			return NodeProfile{}, err
		}
	}
	if len(fields) == 4 {
		if p.CacheBytes, err = parseByteSize(fields[3]); err != nil {
			return NodeProfile{}, err
		}
	}
	return p.Normalized(), nil
}

// parseByteSize parses a cache size: a number with an optional KB, MB, or
// GB suffix (case-insensitive; bare K/M/G also accepted). No suffix means
// bytes. Empty means the default (0).
func parseByteSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	num := s
	for _, suf := range []struct {
		tag string
		m   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}} {
		if strings.HasSuffix(upper, suf.tag) {
			mult = suf.m
			num = s[:len(s)-len(suf.tag)]
			break
		}
	}
	x, err := strconv.ParseFloat(num, 64)
	if err != nil || x < 0 || x > 1e12 {
		return 0, fmt.Errorf("profiles: bad cache size %q", s)
	}
	return int64(x * float64(mult)), nil
}
