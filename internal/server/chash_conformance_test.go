package server

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/queuemodel"
	"repro/internal/trace"
	"repro/internal/zipf"
)

// Conformance suite for the consistent-hashing policy family against
// Ji/Quan/Tan (Asymptotic Miss Ratio of LRU Caching with Consistent
// Hashing, arXiv:1801.02436): hash-partitioned LRU over n servers has,
// asymptotically, the miss ratio of ONE pooled LRU of the combined
// capacity. The tests run the real simulator — ring, per-node LRU caches,
// forwarding — and pin its measured miss ratio to the theory at a small
// cache/catalog ratio (x/m = 1%), plus the partition-insensitivity claim
// itself and the zero-gossip property that motivates the family.

// chashZipfTrace builds an exact theorem-setting trace: iid Zipf(alpha)
// requests over m equal-sized files, with none of trace.Generate's size
// noise or locality mixing.
func chashZipfTrace(alpha float64, m, requests int, seed int64) *trace.Trace {
	sizes := make([]int64, m)
	for i := range sizes {
		sizes[i] = chashFileBytes
	}
	dist := zipf.New(alpha, int64(m))
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]cache.FileID, requests)
	for i := range reqs {
		reqs[i] = cache.FileID(dist.Sample(rng) - 1) // rank 1 = file 0
	}
	tr := &trace.Trace{Name: "chash-conformance", Alpha: alpha, Sizes: sizes, Requests: reqs}
	if err := tr.Validate(); err != nil {
		panic(err)
	}
	return tr
}

const (
	chashAlpha     = 1.5
	chashCatalog   = 200_000
	chashFileBytes = 4096
	chashNodeCache = 1_024_000 // 250 files per node
	chashNodes     = 8
	chashRequests  = 300_000
)

// chashMissRate runs one chash-family configuration over the theorem trace
// and returns the measured miss ratio.
func chashMissRate(t *testing.T, tr *trace.Trace, policy string, nodes int, cacheBytes int64) Result {
	t.Helper()
	cfg := NewConfig(CustomServer, nodes,
		WithPolicy(policy), WithSeed(42), WithCacheBytes(cacheBytes))
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChashMissRatioMatchesJiQuanTan pins the simulated 8-node chash miss
// ratio to the theory at x/m = 2000/200000: within 10% of the finite-
// catalog Che reference (the theorem's curve before the m -> infinity
// truncation) and within 25% of the closed-form asymptotic itself, whose
// extra gap is exactly the catalog tail the closed form drops (verified to
// vanish with m in the queuemodel tests).
func TestChashMissRatioMatchesJiQuanTan(t *testing.T) {
	tr := chashZipfTrace(chashAlpha, chashCatalog, chashRequests, 9)
	totalFiles := float64(chashNodes) * chashNodeCache / chashFileBytes
	che := queuemodel.LRUZipfMissChe(chashAlpha, chashCatalog, totalFiles)
	asym := queuemodel.LRUZipfMissAsymptotic(chashAlpha, chashCatalog, totalFiles)

	res := chashMissRate(t, tr, "chash", chashNodes, chashNodeCache)
	t.Logf("sim miss %.5f, Che %.5f, asymptotic %.5f", res.MissRate, che, asym)
	if rel := math.Abs(res.MissRate-che) / che; rel > 0.10 {
		t.Errorf("8-node chash miss %.5f vs Che %.5f: rel %.3f > 0.10", res.MissRate, che, rel)
	}
	if rel := math.Abs(res.MissRate-asym) / asym; rel > 0.25 {
		t.Errorf("8-node chash miss %.5f vs asymptotic %.5f: rel %.3f > 0.25", res.MissRate, asym, rel)
	}
}

// TestChashPartitionInsensitivity is the theorem's actual claim: splitting
// cache and key space 8 ways behind the ring costs (asymptotically)
// nothing versus one pooled LRU of the same total capacity.
func TestChashPartitionInsensitivity(t *testing.T) {
	tr := chashZipfTrace(chashAlpha, chashCatalog, chashRequests, 9)
	parted := chashMissRate(t, tr, "chash", chashNodes, chashNodeCache)
	pooled := chashMissRate(t, tr, "chash", 1, chashNodes*chashNodeCache)
	t.Logf("8-way miss %.5f, pooled miss %.5f", parted.MissRate, pooled.MissRate)
	if rel := math.Abs(parted.MissRate-pooled.MissRate) / pooled.MissRate; rel > 0.10 {
		t.Errorf("partitioned %.5f vs pooled %.5f: rel %.3f > 0.10",
			parted.MissRate, pooled.MissRate, rel)
	}
}

// TestChashSendsZeroGossip: every chash variant makes all decisions from
// local hashes and true loads, so the policy control-message count is
// exactly zero, while L2S pays for its broadcast-fresh view. (Hand-off
// traffic for forwarded requests appears in ControlMessages for both.)
func TestChashSendsZeroGossip(t *testing.T) {
	tr := chashZipfTrace(chashAlpha, 20_000, 30_000, 5)
	for _, p := range []string{"chash", "chash-bounded", "chash-d", "chash-d2",
		"chash:vnodes=64,load=1.5,d=2"} {
		res := chashMissRate(t, tr, p, chashNodes, chashNodeCache)
		if res.GossipMessages != 0 {
			t.Errorf("%s sent %d gossip messages, want exactly 0", p, res.GossipMessages)
		}
	}
	l2s := chashMissRate(t, tr, "l2s", chashNodes, chashNodeCache)
	if l2s.GossipMessages == 0 {
		t.Error("l2s must gossip; counter seems disconnected")
	}
	if l2s.GossipMessages > l2s.ControlMessages {
		t.Errorf("gossip %d cannot exceed total messages %d",
			l2s.GossipMessages, l2s.ControlMessages)
	}
}

// TestChashBoundedImprovesImbalance: on the same trace, bounded loads must
// not lose much hit rate versus pure chash while reducing the peak/mean
// load imbalance — the design point of the bounded-load ring.
func TestChashBoundedImprovesImbalance(t *testing.T) {
	tr := chashZipfTrace(chashAlpha, chashCatalog, chashRequests, 9)
	pure := chashMissRate(t, tr, "chash", chashNodes, chashNodeCache)
	bounded := chashMissRate(t, tr, "chash-bounded", chashNodes, chashNodeCache)
	t.Logf("pure imbalance %.3f miss %.4f; bounded imbalance %.3f miss %.4f",
		pure.LoadImbalance, pure.MissRate, bounded.LoadImbalance, bounded.MissRate)
	if bounded.LoadImbalance >= pure.LoadImbalance {
		t.Errorf("bounded loads did not reduce imbalance: %.3f vs %.3f",
			bounded.LoadImbalance, pure.LoadImbalance)
	}
}

// TestChashSpecReachesRun: a parameterized spec string flows through
// Config.Policy into construction, and a bad one fails Validate eagerly
// with the family's accepted keys in the error.
func TestChashSpecReachesRun(t *testing.T) {
	tr := chashZipfTrace(chashAlpha, 20_000, 20_000, 5)
	cfg := NewConfig(CustomServer, 4,
		WithPolicy("chash:vnodes=32,d=2"), WithSeed(1), WithCacheBytes(chashNodeCache))
	res, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "chash" {
		t.Errorf("spec built %q", res.System)
	}
	bad := NewConfig(CustomServer, 4, WithPolicy("chash:fanout=2"))
	if err := bad.Validate(); err == nil {
		t.Error("unknown spec key must fail Config.Validate")
	}
	if _, err := Run(bad, tr); err == nil {
		t.Error("unknown spec key must fail Run")
	}
}

func init() {
	// Guard the constants against silent drift: the conformance regime is
	// x/m = 1% with 250 files per node.
	if chashNodes*chashNodeCache/chashFileBytes != 2000 {
		panic(fmt.Sprintf("chash conformance constants drifted: total %d files",
			chashNodes*chashNodeCache/chashFileBytes))
	}
}
