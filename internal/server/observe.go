// Observability wiring for the simulator: run counters mirrored onto an
// obs.Registry and interval-sampled time series recorded through an engine
// probe. Both are strictly read-only with respect to simulation state — an
// instrumented run is bit-identical to an uninstrumented one (guarded by
// TestObservedRunMatchesGolden) — and both cost nothing when disabled: the
// counters are nil no-ops and the probe is never registered.
package server

import (
	"repro/internal/cache"
	"repro/internal/obs"
)

// Series metric names, per node unless marked cluster-wide (obs.ClusterWide).
const (
	SeriesCPUUtil      = "cpu_util"
	SeriesDiskUtil     = "disk_util"
	SeriesNIInUtil     = "ni_in_util"
	SeriesNIOutUtil    = "ni_out_util"
	SeriesCacheHitRate = "cache_hit_rate"
	SeriesQueueCPU     = "queue_cpu"    // jobs queued or in service at the CPU
	SeriesLoad         = "load"         // open connections
	SeriesRouterUtil   = "router_util"  // cluster-wide
	SeriesThroughput   = "throughput"   // cluster-wide, completions/s
	SeriesForwardFrac  = "forward_frac" // cluster-wide
)

// LatencyBuckets are the request-latency histogram bounds used by
// Config.Metrics, in seconds.
var LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// runMetrics is the driver's set of mirrored counters; the zero value (all
// nil) is the disabled path.
type runMetrics struct {
	completed *obs.Counter
	aborted   *obs.Counter
	assigned  *obs.Counter
	forwarded *obs.Counter
	latency   *obs.Histogram
}

// bindMetrics points the driver's counter mirrors, every node cache, and
// the network at reg. Counters accumulate over the whole run (warm-up
// included) and are not zeroed when measurement begins; the latency
// histogram observes measured completions only, like Result's latency
// statistics.
func (d *driver) bindMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.m.completed = reg.Counter("requests_completed_total")
	d.m.aborted = reg.Counter("requests_aborted_total")
	d.m.assigned = reg.Counter("requests_assigned_total")
	d.m.forwarded = reg.Counter("requests_forwarded_total")
	d.m.latency = reg.Histogram("request_latency_seconds", LatencyBuckets)
	cm := cache.Metrics{
		Hits:          reg.Counter("cache_hits_total"),
		Misses:        reg.Counter("cache_misses_total"),
		Evictions:     reg.Counter("cache_evictions_total"),
		Invalidations: reg.Counter("cache_invalidations_total"),
	}
	for _, n := range d.nodes {
		n.Cache.SetMetrics(cm)
	}
	d.net.SetMetrics(reg.Counter("net_messages_total"))
}

// seriesProbe samples the cluster's state on the recorder's interval.
// Utilizations are computed from cumulative busy-time deltas, so each
// sample is the exact utilization over its interval, and the dt-weighted
// mean of a resource's samples telescopes to the resource's own
// end-of-run Utilization() (the 1e-9 agreement asserted by
// TestSeriesAgreesWithResult).
type seriesProbe struct {
	d      *driver
	rec    *obs.Series
	active bool
	lastT  float64

	// Cumulative baselines at the previous sample. Busy-time baselines
	// start at zero, not at the post-ResetStats reading: ResetStats leaves
	// the future-committed portion of queued service in busy, and charging
	// it to the first interval is exactly what makes the telescoped mean
	// equal Utilization().
	cpu, disk, niIn, niOut []float64
	hits, total            []uint64
	router                 float64
	completed              uint64
	assigned, forwarded    uint64
}

// startSeries registers the sampling probe. Sampling waits for the
// measurement phase (begin()).
func (d *driver) startSeries(rec *obs.Series) {
	if rec == nil {
		return
	}
	n := len(d.nodes)
	sp := &seriesProbe{
		d: d, rec: rec,
		cpu: make([]float64, n), disk: make([]float64, n),
		niIn: make([]float64, n), niOut: make([]float64, n),
		hits: make([]uint64, n), total: make([]uint64, n),
	}
	d.series = sp
	d.eng.Probe(rec.Interval(), sp.sample)
}

// begin starts sampling at the measurement epoch. All baselines are zero:
// node and network statistics were just reset, and busy-time baselines are
// zero by the exactness convention above.
func (sp *seriesProbe) begin() {
	sp.active = true
	sp.lastT = sp.d.eng.Now()
	for i := range sp.cpu {
		sp.cpu[i], sp.disk[i], sp.niIn[i], sp.niOut[i] = 0, 0, 0, 0
		sp.hits[i], sp.total[i] = 0, 0
	}
	sp.router = 0
	sp.completed, sp.assigned, sp.forwarded = 0, 0, 0
}

// sample records one batch of samples covering (lastT, t]. It reads
// simulation state and writes only to the recorder and its own baselines.
func (sp *seriesProbe) sample(t float64) {
	if !sp.active {
		return
	}
	dt := t - sp.lastT
	if dt <= 0 {
		return
	}
	d := sp.d
	rec := sp.rec
	for i, n := range d.nodes {
		// All node resources have one server, so interval utilization is
		// the busy-time delta over dt.
		cpu, disk := n.CPU.BusyTime(), n.Disk.BusyTime()
		niIn, niOut := n.NIIn.BusyTime(), n.NIOut.BusyTime()
		rec.Record(t, dt, i, SeriesCPUUtil, (cpu-sp.cpu[i])/dt)
		rec.Record(t, dt, i, SeriesDiskUtil, (disk-sp.disk[i])/dt)
		rec.Record(t, dt, i, SeriesNIInUtil, (niIn-sp.niIn[i])/dt)
		rec.Record(t, dt, i, SeriesNIOutUtil, (niOut-sp.niOut[i])/dt)
		sp.cpu[i], sp.disk[i], sp.niIn[i], sp.niOut[i] = cpu, disk, niIn, niOut

		s := n.Cache.Stats()
		if dTotal := s.Total - sp.total[i]; dTotal > 0 {
			rec.Record(t, dt, i, SeriesCacheHitRate, float64(s.Hits-sp.hits[i])/float64(dTotal))
		}
		sp.hits[i], sp.total[i] = s.Hits, s.Total

		rec.Record(t, dt, i, SeriesQueueCPU, float64(n.CPU.InSystem()))
		rec.Record(t, dt, i, SeriesLoad, float64(n.Load()))
	}

	router := d.net.Router.BusyTime()
	rec.Record(t, dt, obs.ClusterWide, SeriesRouterUtil, (router-sp.router)/dt)
	sp.router = router

	rec.Record(t, dt, obs.ClusterWide, SeriesThroughput, float64(d.completed-sp.completed)/dt)
	sp.completed = d.completed

	if dAssigned := d.assigned - sp.assigned; dAssigned > 0 {
		rec.Record(t, dt, obs.ClusterWide, SeriesForwardFrac,
			float64(d.forwarded-sp.forwarded)/float64(dAssigned))
	}
	sp.assigned, sp.forwarded = d.assigned, d.forwarded

	sp.lastT = t
}

// flush records the final partial interval at the end of the run, so the
// series covers the full measurement window [measStart, Now].
func (sp *seriesProbe) flush() {
	if sp != nil {
		sp.sample(sp.d.eng.Now())
	}
}
