// Package server is the trace-driven cluster server simulator of Section 5:
// it drives a request-distribution policy (traditional, LARD, or L2S) over
// a WWW trace on a simulated cluster, at saturation, and measures
// throughput, cache miss rate, CPU idle time, and the fraction of forwarded
// requests — the four quantities the paper's evaluation reports.
//
// Saturation methodology: the paper disregards trace timing and schedules a
// new request "as soon as the router and network interface buffers would
// accept them". The simulator reproduces this with a connection window: a
// fixed number of outstanding connections per node is kept in flight, and
// every completion immediately injects the next trace request.
package server

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/queuemodel"
)

// System selects the server under test.
type System int

// The three systems of the paper's evaluation.
const (
	Traditional System = iota
	LARDServer
	LARDDispatcher // Section 6's scalable LARD variant (Aron et al. 2000)
	L2SServer
	CustomServer // uses Config.CustomPolicy
)

// String names the system.
func (s System) String() string {
	switch s {
	case Traditional:
		return "traditional"
	case LARDServer:
		return "lard"
	case LARDDispatcher:
		return "lard-dispatch"
	case L2SServer:
		return "l2s"
	case CustomServer:
		return "custom"
	}
	return fmt.Sprintf("system(%d)", int(s))
}

// Config describes one simulation run.
type Config struct {
	System     System
	Nodes      int
	CacheBytes int64 // per-node main memory (Section 5.1: 32 MB)

	// Costs supplies the Table 1 service-time constants. AvgFileKB is
	// ignored: the simulator uses each request's actual size.
	Costs queuemodel.Params
	// Net supplies the communication constants (M-VIA over Gigabit).
	Net netsim.Config

	L2S  core.Options
	LARD policy.LARDOptions

	// FECostSec is the front-end CPU time per request for LARD's accept,
	// parse, and hand-off, calibrated to the ~5000 requests/second
	// front-end ceiling both the paper and the LARD paper report.
	FECostSec float64

	// DispatchQuerySec is the dispatcher CPU time per decision query for
	// the LARDDispatcher system (its saturation point; Section 6 notes it
	// is "much less serious" than the original front-end's).
	DispatchQuerySec float64

	// WindowPerNode is the per-node outstanding-connection budget that
	// implements the saturation methodology.
	WindowPerNode int

	// ArrivalRate, when positive, switches from the paper's saturation
	// methodology to an open-loop Poisson arrival process at this many
	// requests per second. Latency then measures true client-perceived
	// response time at a given offered load (and can be compared against
	// the analytic model's M/M/1 Latency). WindowPerNode is ignored.
	ArrivalRate float64
	// ArrivalSeed seeds the Poisson process.
	ArrivalSeed int64

	// ArrivalSchedule, when non-empty, switches to an open-loop
	// inhomogeneous Poisson process with this piecewise-constant rate
	// profile (in requests per second, segment durations in seconds). The
	// schedule cycles when the trace outlasts it, so one diurnal period
	// describes an arbitrarily long run. Mutually exclusive with
	// ArrivalRate; DiurnalSchedule builds the sinusoidal profile of the
	// trace package's diurnal mode.
	ArrivalSchedule []RateSegment

	// WarmFraction is the fraction of the trace used to warm caches before
	// measurement begins, mirroring the paper's warm-up pass.
	WarmFraction float64

	// CPUChunkKB is the transmit-processing quantum: reply CPU work is
	// charged in chunks of this many kilobytes so that transmissions
	// interleave with request parsing and forwarding, as in the LARD
	// paper's cost model (40 us per 512 bytes). Zero selects 8 KB; a large
	// value degenerates to whole-reply FCFS occupancy.
	CPUChunkKB float64

	// MaxRequests truncates the trace when positive.
	MaxRequests int

	// FailNode, when >= 0, crashes that node after FailAtFrac of the trace
	// has been injected — used to compare availability (L2S has no single
	// point of failure; LARD's front-end is one).
	FailNode   int
	FailAtFrac float64

	// Persistent enables HTTP/1.1-style persistent connections: each
	// connection carries several requests (geometrically distributed with
	// mean ReqsPerConn) and stays bound to the node that accepted it.
	// Requests whose content lives elsewhere are served by back-end
	// forwarding in the style of Aron et al.: the caching node reads the
	// file and ships it to the connection's node, which transmits it to
	// the client. Section 4 of the paper defers persistent connections to
	// exactly this mechanism.
	Persistent  bool
	ReqsPerConn float64 // mean requests per connection (default 7)
	PersistSeed int64   // RNG seed for connection lengths

	// Profiles, when non-nil, gives each node a hardware profile — relative
	// CPU and disk speeds, NI line rate, and cache size (see NodeProfile).
	// The paper assumes "all cluster nodes are equally powerful"; profiles
	// model mixed-generation and multi-tier clusters. A node's zero fields
	// fall back to the baseline (speed 1, Net.LinkKBps, CacheBytes).
	Profiles []NodeProfile

	// CPUSpeeds, when non-nil, gives each node a relative CPU speed.
	//
	// Deprecated: use Profiles (WithProfiles). CPUSpeeds maps onto uniform
	// profiles with only CPUSpeed set — bit-identical to its historical
	// behavior (TestCPUSpeedsShimBitIdentical) — and cannot express
	// disk/NIC/memory asymmetry. It is ignored when Profiles is also set.
	CPUSpeeds []float64

	// DistributedFS models the cluster's distributed file system
	// explicitly: every file has a home disk (hashed over the nodes), and
	// a cache miss at another node fetches the file from the home node's
	// disk across the cluster network. When false (the default, matching
	// the paper's evaluation), misses read a local disk — the behavior of
	// a DFS with locally replicated storage.
	DistributedFS bool

	// TimelineBucket, when positive, records a throughput time series with
	// buckets of this many simulated seconds — useful for watching the
	// failure experiments (Result.Timeline).
	TimelineBucket float64

	// CustomPolicy builds the distributor when System == CustomServer.
	CustomPolicy func(env policy.Env) policy.Distributor

	// Policy, when non-empty, selects a registered distribution policy
	// instead of the System's default; it takes precedence over System for
	// distributor construction and is the CLI-facing route into the policy
	// registry. It accepts a full policy spec — a name plus per-family
	// parameters, e.g. "chash:vnodes=256,load=1.25" (see policy.ParseSpec);
	// spec parameters are applied on top of the tunables assembled from
	// this Config. CustomPolicy, when also set, wins over Policy.
	Policy string

	// Seed is the run's base RNG seed. It fills ArrivalSeed and
	// PersistSeed when those are zero and seeds seedable policies (e.g.
	// random); sweep runners derive it per job so grid points are
	// reproducible independent of execution order.
	Seed int64

	// DNSTTL is the cached-dns policy's requests per cached translation
	// (zero selects its default of 50).
	DNSTTL int

	// Series, when non-nil, records per-resource utilization, cache hit
	// rate, queue depth, load, and forwarding-fraction time series at the
	// recorder's simulated-time interval, over the measurement phase.
	// Observation never perturbs the simulation: a run with Series attached
	// is bit-identical to one without. The recorder is single-threaded —
	// do not share one Series between parallel sweep jobs.
	Series *obs.Series

	// Metrics, when non-nil, mirrors run counters (completions, aborts,
	// forwards, cache hits/misses/evictions, network messages) and a
	// request-latency histogram onto the registry. Like Series, it never
	// perturbs the simulation, and must not be shared between parallel
	// jobs.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's simulation setup for the given system
// and cluster size; it is NewConfig with no options.
func DefaultConfig(system System, nodes int) Config {
	return NewConfig(system, nodes)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("server: need at least one node, got %d", c.Nodes)
	case c.CacheBytes < 0:
		return fmt.Errorf("server: negative cache size %d", c.CacheBytes)
	case c.WindowPerNode < 1:
		return fmt.Errorf("server: window per node must be >= 1, got %d", c.WindowPerNode)
	case c.WarmFraction < 0 || c.WarmFraction > 0.95:
		return fmt.Errorf("server: warm fraction %v outside [0, 0.95]", c.WarmFraction)
	case c.System == LARDServer && c.FECostSec <= 0:
		return fmt.Errorf("server: LARD needs a positive front-end cost")
	case c.System == CustomServer && c.CustomPolicy == nil && c.Policy == "":
		return fmt.Errorf("server: CustomServer needs a CustomPolicy or a Policy name")
	case c.Net.RouterKBps <= 0 || c.Net.LinkKBps <= 0:
		return fmt.Errorf("server: network rates must be positive: %+v", c.Net)
	case c.FailNode >= c.Nodes:
		return fmt.Errorf("server: fail node %d outside cluster of %d", c.FailNode, c.Nodes)
	case c.Persistent && c.ReqsPerConn < 1:
		return fmt.Errorf("server: persistent connections need ReqsPerConn >= 1, got %v", c.ReqsPerConn)
	case c.ArrivalRate < 0:
		return fmt.Errorf("server: negative arrival rate %v", c.ArrivalRate)
	case c.ArrivalRate > 0 && len(c.ArrivalSchedule) > 0:
		return fmt.Errorf("server: ArrivalRate and ArrivalSchedule are mutually exclusive")
	}
	if len(c.ArrivalSchedule) > 0 {
		anyPositive := false
		for i, seg := range c.ArrivalSchedule {
			if !(seg.Duration > 0) || math.IsInf(seg.Duration, 0) {
				return fmt.Errorf("server: arrival segment %d duration %v must be positive and finite", i, seg.Duration)
			}
			if seg.Rate < 0 || math.IsInf(seg.Rate, 0) || math.IsNaN(seg.Rate) {
				return fmt.Errorf("server: arrival segment %d rate %v must be finite and >= 0", i, seg.Rate)
			}
			anyPositive = anyPositive || seg.Rate > 0
		}
		if !anyPositive {
			return fmt.Errorf("server: arrival schedule has no positive-rate segment")
		}
	}
	if c.CPUSpeeds != nil && c.Profiles == nil {
		if len(c.CPUSpeeds) != c.Nodes {
			return fmt.Errorf("server: %d CPU speeds for %d nodes", len(c.CPUSpeeds), c.Nodes)
		}
		for i, s := range c.CPUSpeeds {
			if s <= 0 {
				return fmt.Errorf("server: node %d has non-positive CPU speed %v", i, s)
			}
		}
	}
	if c.Profiles != nil {
		if len(c.Profiles) != c.Nodes {
			return fmt.Errorf("server: %d profiles for %d nodes", len(c.Profiles), c.Nodes)
		}
		for i, p := range c.Profiles {
			if err := p.Validate(); err != nil {
				return fmt.Errorf("server: node %d: %w", i, err)
			}
		}
	}
	// Bad policy tunables used to surface as constructor panics mid-run;
	// validating them here lets one bad grid point fail with an error
	// instead of killing a whole parallel sweep. Zero values are legal:
	// construction replaces them with the published defaults.
	if c.System == L2SServer && c.L2S != (core.Options{}) {
		if err := c.L2S.Validate(); err != nil {
			return err
		}
	}
	if (c.System == LARDServer || c.System == LARDDispatcher) && c.LARD != (policy.LARDOptions{}) {
		if err := c.LARD.Validate(); err != nil {
			return err
		}
	}
	// Policy is a full spec string; parse it eagerly so an unknown name or
	// out-of-range parameter fails the grid point, not the whole sweep.
	if c.Policy != "" {
		if _, err := policy.ParseSpec(c.Policy); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	return nil
}

// policyName returns the registry name of the distributor this Config
// selects: the explicit Policy override when set, the System's name
// otherwise.
func (c Config) policyName() string {
	if c.Policy != "" {
		return c.Policy
	}
	return c.System.String()
}

// policyOptions assembles the registry options from the Config's fields.
func (c Config) policyOptions() policy.Options {
	return policy.Options{
		LARD:             c.LARD,
		DispatchQuerySec: c.DispatchQuerySec,
		Seed:             c.Seed,
		DNSTTL:           c.DNSTTL,
		L2S:              c.L2S,
	}
}

// Result reports what one run measured (all statistics cover only the
// post-warm-up measurement interval).
type Result struct {
	System string
	Nodes  int

	Throughput float64 // completed requests per second
	Completed  uint64
	Aborted    uint64 // requests lost to crashed nodes

	MissRate      float64 // aggregate cache miss rate at the service nodes
	ForwardedFrac float64 // fraction of requests serviced away from their initial node

	MeanCPUUtil    float64
	CPUIdle        float64 // 1 - MeanCPUUtil, the paper's idle-time metric
	PerNodeCPUUtil []float64
	RouterUtil     float64
	MeanDiskUtil   float64
	MeanLoad       float64 // time-averaged open connections per node

	// LoadImbalance is the peak-to-mean ratio of per-node time-averaged
	// loads: 1.0 is perfect balance.
	LoadImbalance float64

	// Response-time statistics over the measurement interval, in seconds.
	LatencyMean float64
	LatencyP50  float64
	LatencyP99  float64

	// Persistent-connection statistics (Persistent mode only).
	Connections uint64  // connections completed
	ReqsPerConn float64 // measured requests per connection

	ControlMessages uint64  // intra-cluster messages (hand-offs + gossip)
	SimTime         float64 // simulated seconds measured
	Events          uint64  // events the engine fired

	// GossipMessages counts only the policy's own control traffic (load
	// reports, server-set broadcasts) — the messages a zero-coordination
	// policy like chash avoids. Excluded from JSON so the pre-gossip
	// equivalence goldens stay byte-identical; BENCH_scale.json carries it
	// via perf.ScaleResult.
	GossipMessages uint64 `json:"-"`

	// Timeline holds completions per second for consecutive buckets of
	// TimelineBucket simulated seconds (empty unless configured).
	Timeline       []float64
	TimelineBucket float64

	L2S *core.Stats // control-plane stats when System == L2SServer
}
