package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/policy"
	"repro/internal/trace"
)

// The equivalence goldens pin the exact Result of server.Run — every float
// bit included — for all registered policies plus the simulator's optional
// modes, on a fixed-seed trace. encoding/json emits the shortest
// round-trippable decimal for a float64, so byte equality of the JSON is bit
// equality of the Result. The goldens were generated from the pointer-heap
// engine and container/list LRU that preceded the pooled, index-based
// implementations; the test therefore proves the allocation-free core
// reproduces the original simulator exactly.
//
// Regenerate (only when results are *supposed* to change) with:
//
//	go test ./internal/server -run TestRunEquivalenceGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the server.Run equivalence goldens")

const goldenPath = "testdata/run_golden.json"

// equivalenceTrace is the fixed workload all golden cases share: big enough
// to exercise warm-up, eviction, forwarding, and every policy's control
// traffic; small enough to keep the test fast.
func equivalenceTrace() *trace.Trace {
	return trace.MustGenerate(trace.GenSpec{
		Name: "equiv", Files: 800, AvgFileKB: 6, Requests: 9000,
		AvgReqKB: 5, Alpha: 0.8, LocalityP: 0.3, Seed: 20,
	})
}

// equivalenceCases enumerates the pinned configurations: every registered
// policy at 8 nodes, plus one case per optional simulator mode.
func equivalenceCases() map[string]Config {
	cases := make(map[string]Config)
	for _, name := range policy.Names() {
		cases["policy/"+name] = NewConfig(CustomServer, 8,
			WithPolicy(name), WithSeed(42), WithCacheBytes(2<<20))
	}
	cases["mode/persistent-l2s"] = NewConfig(L2SServer, 8,
		WithSeed(7), WithCacheBytes(2<<20), WithPersistent(5))
	cases["mode/persistent-lard"] = NewConfig(LARDServer, 8,
		WithSeed(7), WithCacheBytes(2<<20), WithPersistent(5))
	cases["mode/open-loop"] = NewConfig(L2SServer, 8,
		WithSeed(11), WithCacheBytes(2<<20), WithArrivalRate(2000))
	cases["mode/distributed-fs"] = NewConfig(L2SServer, 8,
		WithSeed(13), WithCacheBytes(2<<20), WithDistributedFS())
	cases["mode/failure"] = NewConfig(L2SServer, 8,
		WithSeed(17), WithCacheBytes(2<<20), WithFailure(3, 0.6),
		WithTimelineBucket(0.05))
	cases["mode/heterogeneous"] = NewConfig(L2SServer, 4,
		WithSeed(19), WithCacheBytes(2<<20),
		WithCPUSpeeds([]float64{1, 1, 0.5, 2}))
	return cases
}

// TestCPUSpeedsShimBitIdentical pins the deprecation contract of
// Config.CPUSpeeds: the shim maps onto uniform-disk profiles with bit-for-
// bit identical results, so callers can migrate to WithProfiles without a
// golden change. Byte equality of the JSON is bit equality of the Result.
func TestCPUSpeedsShimBitIdentical(t *testing.T) {
	tr := equivalenceTrace()
	speeds := []float64{1, 1, 0.5, 2}
	legacy := NewConfig(L2SServer, 4,
		WithSeed(19), WithCacheBytes(2<<20), WithCPUSpeeds(speeds))
	profiles := make([]NodeProfile, len(speeds))
	for i, s := range speeds {
		profiles[i] = NodeProfile{CPUSpeed: s, DiskSpeed: 1}
	}
	modern := NewConfig(L2SServer, 4,
		WithSeed(19), WithCacheBytes(2<<20), WithProfiles(profiles...))

	a, err := Run(legacy, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(modern, tr)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("CPUSpeeds shim diverged from WithProfiles\n legacy: %s\nmodern: %s", aj, bj)
	}
}

// TestUniformProfilesMatchGolden proves the profile plumbing is a true
// no-op at baseline hardware: every pre-heterogeneity golden case rerun
// with explicit uniform NodeProfile{1, 1, default, default} profiles must
// reproduce the committed golden bytes exactly. (Weighted policies are
// excluded: uniform profiles legitimately switch them from their nil-
// weight degraded mode to all-ones weights.)
func TestUniformProfilesMatchGolden(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens: %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}

	tr := equivalenceTrace()
	cases := equivalenceCases()
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		switch name {
		case "policy/l2s-weighted", "policy/lard-weighted", "policy/wlc",
			"mode/heterogeneous": // already profiled
			continue
		}
		cfg := cases[name]
		cfg.Profiles = UniformProfiles(cfg.Nodes, NodeProfile{CPUSpeed: 1, DiskSpeed: 1})
		res, err := Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		js, _ := json.Marshal(res)
		if string(js) != string(want[name]) {
			t.Errorf("%s: uniform profiles diverged from golden\n got: %s\nwant: %s",
				name, js, want[name])
		}
	}
}

func TestRunEquivalenceGolden(t *testing.T) {
	tr := equivalenceTrace()
	cases := equivalenceCases()

	got := make(map[string]json.RawMessage, len(cases))
	names := make([]string, 0, len(cases))
	for name := range cases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res, err := Run(cases[name], tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		got[name] = js
	}

	if *updateGolden {
		var buf []byte
		buf = append(buf, "{\n"...)
		for i, name := range names {
			buf = append(buf, fmt.Sprintf("  %q: %s", name, got[name])...)
			if i < len(names)-1 {
				buf = append(buf, ',')
			}
			buf = append(buf, '\n')
		}
		buf = append(buf, "}\n"...)
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d goldens to %s", len(names), goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (run with -update-golden to generate): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d cases, run produced %d", len(want), len(got))
	}
	for _, name := range names {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: no golden entry (run with -update-golden)", name)
			continue
		}
		// Byte equality of the compact JSON is bit equality of the Result.
		if string(got[name]) != string(w) {
			t.Errorf("%s: Result diverged from golden\n got: %s\nwant: %s",
				name, got[name], w)
		}
	}
}
