package server

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestNewConfigMatchesDefaultConfig(t *testing.T) {
	if got, want := NewConfig(L2SServer, 8), DefaultConfig(L2SServer, 8); got.CacheBytes != want.CacheBytes ||
		got.WindowPerNode != want.WindowPerNode || got.WarmFraction != want.WarmFraction ||
		got.FailNode != want.FailNode || got.L2S != want.L2S || got.LARD != want.LARD {
		t.Errorf("NewConfig without options diverges from DefaultConfig:\n%+v\n%+v", got, want)
	}
}

func TestOptionsApply(t *testing.T) {
	cfg := NewConfig(LARDServer, 4,
		WithSeed(99),
		WithCacheBytes(128<<20),
		WithFailure(2, 0.25),
		WithWindow(20),
		WithWarmFraction(0.1),
		WithPersistent(5),
		WithArrivalRate(1200),
		WithDistributedFS(),
		WithDNSTTL(75),
	)
	if cfg.Seed != 99 || cfg.CacheBytes != 128<<20 || cfg.FailNode != 2 ||
		cfg.FailAtFrac != 0.25 || cfg.WindowPerNode != 20 || cfg.WarmFraction != 0.1 ||
		!cfg.Persistent || cfg.ReqsPerConn != 5 || cfg.ArrivalRate != 1200 ||
		!cfg.DistributedFS || cfg.DNSTTL != 75 {
		t.Errorf("options not applied: %+v", cfg)
	}
}

func TestWithPolicySetsCustomSystem(t *testing.T) {
	cfg := NewConfig(Traditional, 4, WithPolicy("hashing"))
	if cfg.System != CustomServer || cfg.Policy != "hashing" {
		t.Errorf("WithPolicy: system=%v policy=%q", cfg.System, cfg.Policy)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("named-policy config must validate: %v", err)
	}
}

func TestValidateRejectsUnnamedCustom(t *testing.T) {
	cfg := NewConfig(CustomServer, 4)
	if err := cfg.Validate(); err == nil {
		t.Error("CustomServer without Policy or CustomPolicy must fail validation")
	}
}

func TestRunReturnsErrorNotPanic(t *testing.T) {
	tr := testTrace(2000)

	// An unknown policy name surfaces the registry listing as an error.
	if _, err := Run(NewConfig(CustomServer, 4, WithPolicy("bogus")), tr); err == nil ||
		!strings.Contains(err.Error(), "valid:") {
		t.Errorf("unknown policy should list valid names, got %v", err)
	}

	// Bad L2S thresholds fail Validate instead of panicking inside New.
	bad := NewConfig(L2SServer, 4)
	bad.L2S.LowT = bad.L2S.T + 1
	if _, err := Run(bad, tr); err == nil {
		t.Error("inverted L2S thresholds must return an error")
	}

	// Bad LARD thresholds likewise.
	badLard := NewConfig(LARDServer, 4)
	badLard.LARD.TLow = -1
	if _, err := Run(badLard, tr); err == nil {
		t.Error("negative LARD threshold must return an error")
	}

	// A panicking custom policy is recovered and reported, not propagated.
	boom := NewConfig(CustomServer, 4, WithCustomPolicy(func(policy.Env) policy.Distributor {
		panic("boom")
	}))
	if _, err := Run(boom, tr); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("panicking CustomPolicy should become an error, got %v", err)
	}
}

func TestSeedFillsArrivalAndPersistSeeds(t *testing.T) {
	tr := testTrace(4000)
	a := NewConfig(L2SServer, 4, WithSeed(7), WithArrivalRate(1500))
	b := NewConfig(L2SServer, 4, WithSeed(7), WithArrivalRate(1500))
	ra, err := Run(a, tr)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(b, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Error("same seed must reproduce the identical result")
	}
	c := NewConfig(L2SServer, 4, WithSeed(8), WithArrivalRate(1500))
	rc, err := Run(c, tr)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(ra, rc) {
		t.Error("different seeds should perturb an open-loop run")
	}
}
