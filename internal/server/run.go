package server

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// driver wires the cluster model, network, and distribution policy
// together and implements policy.Env.
type driver struct {
	cfg   Config
	eng   *sim.Engine
	tr    *trace.Trace
	nodes []*cluster.Node
	net   *netsim.Network
	dist  policy.Distributor

	// Precomputed per-operation costs.
	niIn, parse, fwd float64

	// Per-node hardware, nil for a homogeneous run: resolved profiles and
	// each node's effective NI per-KB rate (Costs.NIOutKBps capped by the
	// profile's line rate).
	profiles  []cluster.Profile
	niOutKBps []float64

	next     int // next trace request to inject
	inflight int
	warmIdx  int
	failIdx  int

	measuring bool
	measStart float64
	lastDone  float64

	completed uint64
	aborted   uint64
	assigned  uint64
	forwarded uint64
	gossip    uint64 // policy control messages (Env sends + broadcast copies)

	latency *stats.Histogram

	// Persistent-connection state.
	connRNG     *rand.Rand
	connections uint64
	connReqs    uint64

	// Open-loop arrival state. A non-empty schedule replaces the constant
	// ArrivalRate with a piecewise-constant profile; schedIdx/schedRemain
	// track the position inside the (cycling) schedule.
	openLoop    bool
	arrivalRNG  *rand.Rand
	arrivalFn   func() // pre-bound inject-and-reschedule callback
	schedIdx    int
	schedRemain float64

	// Timeline buckets (completions per TimelineBucket interval).
	buckets []uint64

	// Observability (see observe.go): nil/zero means disabled.
	m      runMetrics
	series *seriesProbe

	// Cached optional-interface views of the policy, resolved once at
	// setup instead of type-asserted per request.
	clientAware policy.ClientAware
	dispatched  policy.Dispatched

	// Free lists of pooled per-request and per-reply jobs; the simulation is
	// single-threaded, so plain stacks suffice.
	reqPool []*requestJob
	txPool  []*transmitJob
	lrPool  []*loadReportJob
}

// loadReportJob is the pooled state of one in-flight load broadcast sent
// through the policy.LoadReporter path: the reporting node, the announced
// load, and the sink to hand them back to, with a single pre-bound deliver
// method value instead of a closure per broadcast.
type loadReportJob struct {
	d       *driver
	from    int
	load    int
	sink    policy.LoadReportSink
	deliver func()
}

func (d *driver) getLoadReportJob() *loadReportJob {
	if n := len(d.lrPool); n > 0 {
		j := d.lrPool[n-1]
		d.lrPool = d.lrPool[:n-1]
		return j
	}
	j := &loadReportJob{d: d}
	j.deliver = func() {
		sink, from, load := j.sink, j.from, j.load
		j.sink = nil
		// Release before applying: the sink may immediately broadcast again
		// (load drifted while in flight) and reuse this very job.
		j.d.lrPool = append(j.d.lrPool, j)
		sink.ApplyLoadReport(from, load)
	}
	return j
}

// requestJob is the pooled state of one non-persistent request's lifecycle:
// router in, initial node NI and CPU, distribution decision, optional
// hand-off, service, reply out. Each stage is a method-value callback
// created once per pooled object, replacing the chain of per-request
// closures the driver used to allocate.
type requestJob struct {
	d       *driver
	f       cache.FileID
	skb     float64
	t0      float64
	n0, svc int

	afterRouterIn, afterNIIn, afterParse, decide, afterFwd,
	serve, finish, afterTransmit, afterNIOut, afterRouterOut func()
}

func (d *driver) getRequestJob() *requestJob {
	if n := len(d.reqPool); n > 0 {
		j := d.reqPool[n-1]
		d.reqPool = d.reqPool[:n-1]
		return j
	}
	j := &requestJob{d: d}
	j.afterRouterIn = func() {
		d := j.d
		node0 := d.nodes[j.n0]
		if node0.Failed() {
			j.release()
			d.abortUnassigned()
			return
		}
		node0.NIIn.Acquire(d.niIn, j.afterNIIn)
	}
	j.afterNIIn = func() {
		d := j.d
		cpuCost := d.parse
		if j.n0 == d.dist.FrontEnd() {
			// The front-end's accept+parse+hand-off budget.
			cpuCost = d.cfg.FECostSec
		}
		d.nodes[j.n0].CPU.Acquire(d.cpu(j.n0, cpuCost), j.afterParse)
	}
	j.afterParse = func() {
		j.d.consultDispatcher(j.n0, j.decide)
	}
	j.decide = func() {
		d := j.d
		svc := d.dist.Service(j.n0, j.f)
		j.svc = svc
		d.nodes[svc].AddConnection()
		d.dist.OnAssign(svc)
		d.assigned++
		d.m.assigned.Inc()
		if svc == j.n0 {
			j.serve()
			return
		}
		d.forwarded++
		d.m.forwarded.Inc()
		fwdCost := d.fwd
		if j.n0 == d.dist.FrontEnd() {
			fwdCost = 0 // already inside the front-end budget
		}
		d.nodes[j.n0].CPU.Acquire(d.cpu(j.n0, fwdCost), j.afterFwd)
	}
	j.afterFwd = func() {
		d := j.d
		d.net.Send(d.nodes[j.n0], d.nodes[j.svc], d.cfg.Costs.ReqKB, j.serve)
	}
	j.serve = func() {
		// Service at the chosen node: cache lookup, disk on a miss.
		d := j.d
		node := d.nodes[j.svc]
		if node.Failed() {
			n, f := j.svc, j.f
			j.release()
			d.abortAssigned(n, f)
			return
		}
		hit := node.Cache.Access(j.f, d.tr.Size(j.f))
		if hit {
			j.finish()
		} else {
			d.fetch(j.svc, j.f, j.skb, j.finish)
		}
	}
	j.finish = func() {
		j.d.transmit(j.d.nodes[j.svc], j.skb, j.afterTransmit)
	}
	j.afterTransmit = func() {
		d := j.d
		d.nodes[j.svc].NIOut.Acquire(d.niOut(j.svc, j.skb), j.afterNIOut)
	}
	j.afterNIOut = func() {
		j.d.net.RouterOut(j.skb, j.afterRouterOut)
	}
	j.afterRouterOut = func() {
		d, n, f, t0 := j.d, j.svc, j.f, j.t0
		j.release()
		d.complete(n, f, t0)
	}
	return j
}

func (j *requestJob) release() {
	j.d.reqPool = append(j.d.reqPool, j)
}

// transmitJob is the pooled state of one reply's chunked CPU transmit
// processing (see driver.transmit).
type transmitJob struct {
	d         *driver
	node      *cluster.Node
	remaining float64
	chunk     float64
	first     bool
	done      func()

	step func()
}

func (d *driver) getTransmitJob() *transmitJob {
	if n := len(d.txPool); n > 0 {
		j := d.txPool[n-1]
		d.txPool = d.txPool[:n-1]
		return j
	}
	j := &transmitJob{d: d}
	j.step = func() {
		if j.remaining <= 0 {
			d, done := j.d, j.done
			j.node, j.done = nil, nil
			d.txPool = append(d.txPool, j)
			done()
			return
		}
		kb := j.chunk
		if kb > j.remaining {
			kb = j.remaining
		}
		j.remaining -= kb
		cost := kb / j.d.cfg.Costs.ReplyKBps
		if j.first {
			cost += j.d.cfg.Costs.ReplyFixed
			j.first = false
		}
		j.node.CPU.Acquire(j.d.cpu(j.node.ID, cost), j.step)
	}
	return j
}

// Run simulates one configuration over a trace and reports the measured
// results. It never panics: configuration errors — including ones the
// model layers assert with panics — come back as errors, so one bad grid
// point cannot kill a whole sweep.
func Run(cfg Config, tr *trace.Trace) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = Result{}, fmt.Errorf("server: %s on %d nodes: %v", cfg.policyName(), cfg.Nodes, r)
		}
	}()
	if cfg.Persistent && cfg.ReqsPerConn == 0 {
		cfg.ReqsPerConn = 7
	}
	if cfg.Seed != 0 {
		if cfg.ArrivalSeed == 0 {
			cfg.ArrivalSeed = cfg.Seed
		}
		if cfg.PersistSeed == 0 {
			cfg.PersistSeed = cfg.Seed
		}
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.MaxRequests > 0 {
		tr = tr.Truncate(cfg.MaxRequests)
	}
	if tr.NumRequests() == 0 {
		return Result{}, fmt.Errorf("server: empty trace")
	}

	d := &driver{
		cfg:     cfg,
		eng:     sim.NewEngine(),
		tr:      tr,
		net:     nil,
		niIn:    cfg.Costs.NIInTime(),
		parse:   cfg.Costs.ParseTime(),
		fwd:     cfg.Costs.ForwardTime(),
		latency: stats.NewHistogram(),
	}
	if cfg.Persistent {
		d.connRNG = rand.New(rand.NewSource(cfg.PersistSeed + 1))
	}
	d.net = netsim.New(d.eng, cfg.Net)
	d.profiles = cfg.resolvedProfiles()
	d.nodes = make([]*cluster.Node, cfg.Nodes)
	for i := range d.nodes {
		if d.profiles == nil {
			d.nodes[i] = cluster.NewNode(d.eng, i, cfg.CacheBytes)
			continue
		}
		p := d.profiles[i]
		if p.CacheBytes == 0 {
			p.CacheBytes = cfg.CacheBytes
		}
		d.nodes[i] = cluster.NewProfiledNode(d.eng, i, p)
	}
	if d.profiles != nil {
		d.niOutKBps = make([]float64, cfg.Nodes)
		for i, p := range d.profiles {
			d.niOutKBps[i] = cfg.Costs.NIOutKBps
			if p.LinkKBps > 0 && p.LinkKBps < d.niOutKBps[i] {
				d.niOutKBps[i] = p.LinkKBps
			}
		}
	}
	if cfg.Net.FlattenGossip {
		// Flat broadcast path: gossip fan-outs charge receivers through
		// dense per-fleet banks, bit-identical to the unregistered network
		// (TestFlattenedGossipEquivalence).
		d.net.RegisterFleet(d.nodes)
	}

	popts := cfg.policyOptions()
	// Pre-size per-file policy state: a policy sees at most one set per
	// distinct file, and no more files than there are requests.
	popts.Files = tr.NumFiles()
	if r := tr.NumRequests(); r < popts.Files {
		popts.Files = r
	}
	if d.profiles != nil {
		// Weighted policies scale their thresholds and selections by
		// relative node capacity; unweighted ones ignore this.
		popts.Weights = capacityWeights(d.profiles, cfg.Costs, tr)
	}
	if cfg.System == CustomServer && cfg.CustomPolicy != nil {
		d.dist = cfg.CustomPolicy(d)
	} else {
		// The policy name is a full spec ("chash:vnodes=256,load=1.25"):
		// parsed parameters are applied on top of the Options assembled
		// above, so a plain name builds exactly what NewNamed would.
		spec, err := policy.ParseSpec(cfg.policyName())
		if err != nil {
			return Result{}, fmt.Errorf("server: %w", err)
		}
		dist, err := spec.Build(d, popts)
		if err != nil {
			return Result{}, fmt.Errorf("server: %w", err)
		}
		d.dist = dist
	}
	d.clientAware, _ = d.dist.(policy.ClientAware)
	d.dispatched, _ = d.dist.(policy.Dispatched)

	d.bindMetrics(cfg.Metrics)
	d.startSeries(cfg.Series)

	d.warmIdx = int(cfg.WarmFraction * float64(tr.NumRequests()))
	d.failIdx = -1
	if cfg.FailNode >= 0 {
		d.failIdx = int(cfg.FailAtFrac * float64(tr.NumRequests()))
	}
	if d.warmIdx == 0 {
		d.beginMeasurement()
	}

	if cfg.ArrivalRate > 0 || len(cfg.ArrivalSchedule) > 0 {
		// Open loop: Poisson arrivals at the offered rate (constant, or the
		// piecewise-constant schedule), independent of completions.
		d.openLoop = true
		d.arrivalRNG = rand.New(rand.NewSource(cfg.ArrivalSeed + 7))
		if len(cfg.ArrivalSchedule) > 0 {
			d.schedRemain = cfg.ArrivalSchedule[0].Duration
		}
		d.scheduleArrival()
	} else {
		// Closed loop at saturation: prime the connection window; every
		// completion injects the next request.
		window := cfg.WindowPerNode * cfg.Nodes
		for i := 0; i < window && d.next < tr.NumRequests(); i++ {
			d.inject()
		}
	}
	d.eng.Run()
	d.series.flush()

	return d.result(), nil
}

// scheduleArrival plants the next open-loop Poisson arrival.
func (d *driver) scheduleArrival() {
	if d.next >= d.tr.NumRequests() {
		return
	}
	if d.arrivalFn == nil {
		d.arrivalFn = func() {
			d.inject()
			d.scheduleArrival()
		}
	}
	d.eng.Schedule(d.nextArrivalGap(), d.arrivalFn)
}

// nextArrivalGap draws the time to the next open-loop arrival. With a
// constant rate this is one exponential; with a schedule it walks a
// unit-rate exponential across the piecewise-constant profile (the standard
// inversion for an inhomogeneous Poisson process), cycling the schedule so
// a one-period profile covers any run length. Zero-rate segments absorb no
// work and are skipped whole.
func (d *driver) nextArrivalGap() float64 {
	sched := d.cfg.ArrivalSchedule
	if len(sched) == 0 {
		return d.arrivalRNG.ExpFloat64() / d.cfg.ArrivalRate
	}
	e := d.arrivalRNG.ExpFloat64() // unit-rate exponential "work"
	gap := 0.0
	for {
		seg := sched[d.schedIdx]
		if seg.Rate > 0 {
			if need := e / seg.Rate; need <= d.schedRemain {
				d.schedRemain -= need
				return gap + need
			}
			e -= d.schedRemain * seg.Rate
		}
		gap += d.schedRemain
		d.schedIdx = (d.schedIdx + 1) % len(sched)
		d.schedRemain = sched[d.schedIdx].Duration
	}
}

// inject starts the next trace request (or, in persistent mode, the next
// connection worth of requests), if any remain.
func (d *driver) inject() {
	if d.next >= d.tr.NumRequests() {
		return
	}
	if d.next >= d.warmIdx && !d.measuring {
		d.beginMeasurement()
	}
	if d.failIdx >= 0 && d.next >= d.failIdx && d.cfg.FailNode >= 0 &&
		!d.nodes[d.cfg.FailNode].Failed() {
		d.nodes[d.cfg.FailNode].Fail()
	}
	if d.cfg.Persistent {
		d.injectConnection()
		return
	}
	idx := d.next
	d.next++
	d.start(idx)
}

func (d *driver) beginMeasurement() {
	d.measuring = true
	d.measStart = d.eng.Now()
	d.lastDone = d.eng.Now()
	for _, n := range d.nodes {
		n.ResetStats()
	}
	d.net.ResetStats()
	d.completed, d.aborted, d.assigned, d.forwarded = 0, 0, 0, 0
	d.gossip = 0
	d.connections, d.connReqs = 0, 0
	d.latency = stats.NewHistogram()
	d.buckets = nil
	if d.series != nil {
		d.series.begin()
	}
}

// start runs the connection lifecycle: router in, initial node NI and CPU,
// distribution decision, optional hand-off, service, reply out. The
// lifecycle's stages live on a pooled requestJob, so steady-state request
// processing allocates nothing in the driver.
func (d *driver) start(idx int) {
	d.inflight++
	f := d.tr.Requests[idx]
	if d.clientAware != nil {
		d.clientAware.SetNextClient(d.tr.Client(idx))
	}
	j := d.getRequestJob()
	j.f = f
	j.n0 = d.dist.Initial(f)
	j.skb = float64(d.tr.Size(f)) / 1024
	j.t0 = d.eng.Now()
	d.net.RouterIn(d.cfg.Costs.ReqKB, j.afterRouterIn)
}

// consultDispatcher charges the decision query of a Dispatched policy (a
// message round trip to the dispatcher plus its per-query CPU), then calls
// decide. Policies without a dispatcher decide immediately.
func (d *driver) consultDispatcher(n0 int, decide func()) {
	if d.dispatched == nil {
		decide()
		return
	}
	disp, cpuSec := d.dispatched.Dispatcher()
	if disp < 0 || disp == n0 || d.nodes[disp].Failed() {
		if disp >= 0 && disp != n0 {
			// Dispatcher down: the whole scheme stalls, like LARD's
			// front-end; abort the request.
			d.abortUnassigned()
			return
		}
		decide()
		return
	}
	node0 := d.nodes[n0]
	d.net.Send(node0, d.nodes[disp], d.cfg.Costs.ReqKB, func() {
		d.nodes[disp].CPU.Acquire(d.cpu(disp, cpuSec), func() {
			d.net.Send(d.nodes[disp], node0, d.cfg.Costs.ReqKB, func() {
				decide()
			})
		})
	})
}

// fetch brings a missed file into node n: from its local disk, or — with
// an explicit distributed file system — from the file's home disk across
// the cluster network.
func (d *driver) fetch(n int, f cache.FileID, skb float64, done func()) {
	node := d.nodes[n]
	if !d.cfg.DistributedFS {
		node.Disk.Acquire(d.disk(n, d.cfg.Costs.DiskTime(skb)), done)
		return
	}
	home := fileHome(f, len(d.nodes))
	if home == n || d.nodes[home].Failed() {
		node.Disk.Acquire(d.disk(n, d.cfg.Costs.DiskTime(skb)), done)
		return
	}
	remote := d.nodes[home]
	// Small read request to the home node, the disk read there, then the
	// data crosses the cluster network (size-dependent NI and wire time).
	d.net.Send(node, remote, d.cfg.Costs.ReqKB, func() {
		remote.Disk.Acquire(d.disk(home, d.cfg.Costs.DiskTime(skb)), func() {
			remote.NIOut.Acquire(d.niOut(home, skb), func() {
				wire := d.net.WireTime(remote, node, skb)
				d.eng.Schedule(wire, func() {
					node.NIIn.Acquire(d.niOut(n, skb), func() {
						node.CPU.Acquire(d.cfg.Net.MsgCPU, done)
					})
				})
			})
		})
	})
}

// cpu scales a CPU cost by node n's relative speed. The nil fast path and
// the exactness of division by 1.0 keep homogeneous runs bit-identical.
func (d *driver) cpu(n int, base float64) float64 {
	if d.profiles == nil {
		return base
	}
	return base / d.profiles[n].CPUSpeed
}

// disk scales a disk service time by node n's relative disk speed.
func (d *driver) disk(n int, base float64) float64 {
	if d.profiles == nil {
		return base
	}
	return base / d.profiles[n].DiskSpeed
}

// niOut is the NI time to move a reply of skb kilobytes at node n's
// effective line rate. With default profiles the expression is exactly
// Costs.NIOutTime, so homogeneous runs are bit-identical.
func (d *driver) niOut(n int, skb float64) float64 {
	if d.niOutKBps == nil {
		return d.cfg.Costs.NIOutTime(skb)
	}
	return d.cfg.Costs.NIOutFixed + skb/d.niOutKBps[n]
}

// fileHome spreads files over the cluster's disks (splitmix64 finalizer).
func fileHome(f cache.FileID, n int) int {
	x := uint64(f) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// transmit charges the CPU for reply transmit processing (mu_m) in
// CPUChunkKB quanta. Each chunk re-enters the FCFS CPU queue, so concurrent
// transmissions and request parsing interleave at chunk granularity — the
// behavior implied by the per-512-byte transmit cost of the LARD paper the
// parameters come from.
func (d *driver) transmit(node *cluster.Node, skb float64, done func()) {
	// Fixed per-reply cost up front, then the per-byte portion in chunks,
	// all carried by a pooled job instead of a per-reply closure.
	j := d.getTransmitJob()
	j.node = node
	j.remaining = skb
	j.chunk = d.cfg.CPUChunkKB
	if j.chunk <= 0 {
		j.chunk = 8
	}
	j.first = true
	j.done = done
	j.step()
}

func (d *driver) complete(n int, f cache.FileID, t0 float64) {
	d.nodes[n].RemoveConnection()
	d.dist.OnComplete(n, f)
	d.inflight--
	d.completed++
	d.m.completed.Inc()
	d.lastDone = d.eng.Now()
	if d.measuring {
		d.latency.Add(d.eng.Now() - t0)
		d.m.latency.Observe(d.eng.Now() - t0)
		d.recordTimeline()
	}
	if !d.openLoop {
		d.inject()
	}
}

// recordTimeline counts this completion in its timeline bucket.
func (d *driver) recordTimeline() {
	w := d.cfg.TimelineBucket
	if w <= 0 {
		return
	}
	idx := int((d.eng.Now() - d.measStart) / w)
	for len(d.buckets) <= idx {
		d.buckets = append(d.buckets, 0)
	}
	d.buckets[idx]++
}

// abortUnassigned drops a request that died before a service node was
// chosen (e.g. it arrived at a crashed node).
func (d *driver) abortUnassigned() {
	d.inflight--
	d.aborted++
	d.m.aborted.Inc()
	if !d.openLoop {
		d.inject()
	}
}

// abortAssigned drops a request whose service node crashed after
// assignment.
func (d *driver) abortAssigned(n int, f cache.FileID) {
	d.nodes[n].RemoveConnection()
	d.dist.OnComplete(n, f)
	d.inflight--
	d.aborted++
	d.m.aborted.Inc()
	if !d.openLoop {
		d.inject()
	}
}

func (d *driver) result() Result {
	elapsed := d.lastDone - d.measStart
	r := Result{
		System:          d.dist.Name(),
		Nodes:           d.cfg.Nodes,
		Completed:       d.completed,
		Aborted:         d.aborted,
		ControlMessages: d.net.Messages(),
		GossipMessages:  d.gossip,
		SimTime:         elapsed,
		Events:          d.eng.Fired(),
	}
	if elapsed > 0 {
		r.Throughput = float64(d.completed) / elapsed
	}
	if d.assigned > 0 {
		r.ForwardedFrac = float64(d.forwarded) / float64(d.assigned)
	}

	var hits, total uint64
	var cpu, disk, load float64
	r.PerNodeCPUUtil = make([]float64, len(d.nodes))
	for i, n := range d.nodes {
		s := n.Cache.Stats()
		hits += s.Hits
		total += s.Total
		r.PerNodeCPUUtil[i] = n.CPU.Utilization()
		cpu += r.PerNodeCPUUtil[i]
		disk += n.Disk.Utilization()
		load += n.MeanLoad()
	}
	if total > 0 {
		r.MissRate = 1 - float64(hits)/float64(total)
	}
	n := float64(len(d.nodes))
	r.MeanCPUUtil = cpu / n
	r.CPUIdle = 1 - r.MeanCPUUtil
	r.MeanDiskUtil = disk / n
	r.MeanLoad = load / n
	r.RouterUtil = d.net.Router.Utilization()

	var peakLoad float64
	for _, node := range d.nodes {
		if m := node.MeanLoad(); m > peakLoad {
			peakLoad = m
		}
	}
	if r.MeanLoad > 0 {
		r.LoadImbalance = peakLoad / r.MeanLoad
	}

	r.LatencyMean = d.latency.Mean()
	r.LatencyP50 = d.latency.Quantile(0.5)
	r.LatencyP99 = d.latency.Quantile(0.99)

	r.Connections = d.connections
	if d.connections > 0 {
		r.ReqsPerConn = float64(d.connReqs) / float64(d.connections)
	}

	if w := d.cfg.TimelineBucket; w > 0 {
		r.TimelineBucket = w
		r.Timeline = make([]float64, len(d.buckets))
		for i, c := range d.buckets {
			r.Timeline[i] = float64(c) / w
		}
	}

	if l2s, ok := d.dist.(*core.L2S); ok {
		s := l2s.Stats()
		r.L2S = &s
	}
	return r
}

// policy.Env implementation.

// N implements policy.Env.
func (d *driver) N() int { return d.cfg.Nodes }

// Now implements policy.Env.
func (d *driver) Now() float64 { return d.eng.Now() }

// Load implements policy.Env.
func (d *driver) Load(n int) int { return d.nodes[n].Load() }

// Alive implements policy.Env.
func (d *driver) Alive(n int) bool { return !d.nodes[n].Failed() }

// SendControl implements policy.Env: a 4-byte control message.
func (d *driver) SendControl(from, to int, onDeliver func()) {
	if d.nodes[from].Failed() || d.nodes[to].Failed() {
		return
	}
	d.gossip++
	d.net.Send(d.nodes[from], d.nodes[to], 0.004, onDeliver)
}

// BroadcastControl implements policy.Env.
func (d *driver) BroadcastControl(from int, onDeliver func()) {
	if d.nodes[from].Failed() {
		return
	}
	d.gossip += uint64(d.net.Broadcast(d.nodes[from], d.nodes, 0.004, onDeliver))
}

// BroadcastLoadReport implements policy.LoadReporter: the same broadcast as
// BroadcastControl, carrying (from, load) on a pooled job back to the sink
// at delivery time instead of in a per-broadcast closure.
func (d *driver) BroadcastLoadReport(from, load int, sink policy.LoadReportSink) {
	if d.nodes[from].Failed() {
		return
	}
	j := d.getLoadReportJob()
	j.from, j.load, j.sink = from, load, sink
	d.gossip += uint64(d.net.Broadcast(d.nodes[from], d.nodes, 0.004, j.deliver))
}

// PairRateKBps implements policy.PairRater for proximity-aware dispatch:
// the effective line rate between two nodes, or the uncapped configured
// link bandwidth for a node talking to itself (no wire is crossed).
func (d *driver) PairRateKBps(a, b int) float64 {
	if a == b {
		return d.net.Config().LinkKBps
	}
	return d.net.LinkRate(d.nodes[a], d.nodes[b])
}

var (
	_ policy.Env          = (*driver)(nil)
	_ policy.PairRater    = (*driver)(nil)
	_ policy.LoadReporter = (*driver)(nil)
)
