package server

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/queuemodel"
	"repro/internal/trace"
)

func TestParseProfilesIssueExample(t *testing.T) {
	got, err := ParseProfiles("4xfast:2.0/1.5/125000/64MB,12xslow:1.0/1.0/125000/32MB")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("expanded to %d profiles, want 16", len(got))
	}
	fast := NodeProfile{CPUSpeed: 2, DiskSpeed: 1.5, LinkKBps: 125000, CacheBytes: 64 << 20}
	slow := NodeProfile{CPUSpeed: 1, DiskSpeed: 1, LinkKBps: 125000, CacheBytes: 32 << 20}
	for i, p := range got {
		want := fast
		if i >= 4 {
			want = slow
		}
		if p != want {
			t.Fatalf("profile %d = %+v, want %+v", i, p, want)
		}
	}
}

func TestParseProfilesShortForms(t *testing.T) {
	cases := []struct {
		spec string
		want []NodeProfile
	}{
		{"1.0/1.0", []NodeProfile{{CPUSpeed: 1, DiskSpeed: 1}}},
		{"2/0.5", []NodeProfile{{CPUSpeed: 2, DiskSpeed: 0.5}}},
		// Empty fields and zero select defaults (normalized to speed 1).
		{"/", []NodeProfile{{CPUSpeed: 1, DiskSpeed: 1}}},
		{"0/0/0", []NodeProfile{{CPUSpeed: 1, DiskSpeed: 1}}},
		// Counts without names, names without counts.
		{"2x1.5/1", []NodeProfile{{CPUSpeed: 1.5, DiskSpeed: 1}, {CPUSpeed: 1.5, DiskSpeed: 1}}},
		{"ssd:1/8", []NodeProfile{{CPUSpeed: 1, DiskSpeed: 8}}},
		// Cache suffixes.
		{"1/1//512KB", []NodeProfile{{CPUSpeed: 1, DiskSpeed: 1, CacheBytes: 512 << 10}}},
		{"1/1//2g", []NodeProfile{{CPUSpeed: 1, DiskSpeed: 1, CacheBytes: 2 << 30}}},
		{"1/1//1048576", []NodeProfile{{CPUSpeed: 1, DiskSpeed: 1, CacheBytes: 1 << 20}}},
		// Two single-node groups.
		{"2/2,1/1", []NodeProfile{{CPUSpeed: 2, DiskSpeed: 2}, {CPUSpeed: 1, DiskSpeed: 1}}},
	}
	for _, tc := range cases {
		got, err := ParseProfiles(tc.spec)
		if err != nil {
			t.Errorf("ParseProfiles(%q): %v", tc.spec, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseProfiles(%q) = %d profiles, want %d", tc.spec, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseProfiles(%q)[%d] = %+v, want %+v", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseProfilesErrors(t *testing.T) {
	bad := []string{
		"",                        // empty spec
		"1/1,",                    // trailing empty group
		"1",                       // missing disk field
		"1/1/1/1/1",               // too many fields
		"-1/1",                    // negative speed
		"a/1",                     // non-numeric
		"1/1//64XB",               // bad suffix
		"1/1//-4MB",               // negative cache
		"0x1/1",                   // zero count
		"999999999x1/1",           // count past the node cap
		"2000x1/1," + "65000x1/1", // cumulative count past the cap
	}
	for _, spec := range bad {
		if got, err := ParseProfiles(spec); err == nil {
			t.Errorf("ParseProfiles(%q) accepted: %d profiles", spec, len(got))
		}
	}
}

// FuzzParseProfiles: the spec parser must be total — no panics, bounded
// output, and every accepted profile must validate and be normalized.
func FuzzParseProfiles(f *testing.F) {
	f.Add("4xfast:2.0/1.5/125000/64MB,12xslow:1.0/1.0/125000/32MB")
	f.Add("1/1")
	f.Add("2x/,3x0/0")
	f.Add("ssd:1/8//1GB")
	f.Add("x:/")
	f.Add("9999999999999999999x1/1")
	f.Add(",,,")
	f.Add("1e3/1e-3/1e9/1e9")
	f.Fuzz(func(t *testing.T, spec string) {
		profiles, err := ParseProfiles(spec)
		if err != nil {
			return
		}
		if len(profiles) == 0 || len(profiles) > maxParsedNodes {
			t.Fatalf("accepted %q with %d profiles", spec, len(profiles))
		}
		for i, p := range profiles {
			if err := p.Validate(); err != nil {
				t.Fatalf("accepted %q with invalid profile %d: %v", spec, i, err)
			}
			if p != p.Normalized() {
				t.Fatalf("accepted %q with unnormalized profile %d: %+v", spec, i, p)
			}
			if math.IsInf(p.CPUSpeed, 0) || math.IsNaN(p.CPUSpeed) ||
				math.IsInf(p.DiskSpeed, 0) || math.IsNaN(p.DiskSpeed) ||
				math.IsInf(p.LinkKBps, 0) || math.IsNaN(p.LinkKBps) {
				t.Fatalf("accepted %q with non-finite profile %d: %+v", spec, i, p)
			}
		}
	})
}

func TestTieredOption(t *testing.T) {
	fast := NodeProfile{CPUSpeed: 2, DiskSpeed: 8, CacheBytes: 64 << 20}
	slow := NodeProfile{CPUSpeed: 1, DiskSpeed: 1}
	cfg := NewConfig(L2SServer, 6, Tiered(fast, slow, 2))
	if len(cfg.Profiles) != 6 {
		t.Fatalf("Tiered built %d profiles for 6 nodes", len(cfg.Profiles))
	}
	for i, p := range cfg.Profiles {
		want := slow
		if i < 2 {
			want = fast
		}
		if p != want {
			t.Fatalf("node %d profile %+v, want %+v", i, p, want)
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Splits are clamped, not rejected.
	if cfg := NewConfig(L2SServer, 4, Tiered(fast, slow, 99)); cfg.Profiles[3] != fast {
		t.Error("oversized split not clamped to all-fast")
	}
	if cfg := NewConfig(L2SServer, 4, Tiered(fast, slow, -1)); cfg.Profiles[0] != slow {
		t.Error("negative split not clamped to all-slow")
	}
}

func TestConfigValidateProfiles(t *testing.T) {
	if err := NewConfig(L2SServer, 4, WithProfiles(UniformProfiles(3, DefaultNodeProfile())...)).Validate(); err == nil {
		t.Error("wrong profile count accepted")
	}
	bad := UniformProfiles(4, DefaultNodeProfile())
	bad[2].DiskSpeed = -1
	err := NewConfig(L2SServer, 4, WithProfiles(bad...)).Validate()
	if err == nil || !strings.Contains(err.Error(), "node 2") {
		t.Errorf("invalid profile error = %v, want node index", err)
	}
}

// TestCapacityWeightsOrdering: faster nodes get proportionally larger
// weights, the mean is 1, and uniform profiles yield exactly all-ones.
func TestCapacityWeightsOrdering(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "w", Files: 200, AvgFileKB: 6, Requests: 2000, AvgReqKB: 5, Alpha: 0.8, Seed: 4,
	})
	costs := queuemodel.DefaultParams()

	profiles := []cluster.Profile{
		{CPUSpeed: 2, DiskSpeed: 2},
		{CPUSpeed: 1, DiskSpeed: 1},
		{CPUSpeed: 0.5, DiskSpeed: 0.5},
	}
	w := capacityWeights(profiles, costs, tr)
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Fatalf("weights not ordered by speed: %v", w)
	}
	var sum float64
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum/3-1) > 1e-12 {
		t.Errorf("weights mean %v, want 1", sum/3)
	}

	// Uniform profiles: equal capacities normalize to 1 (up to the
	// rounding of the capacity sum).
	uniform := capacityWeights(UniformProfiles(5, DefaultNodeProfile()), costs, tr)
	for i, x := range uniform {
		if math.Abs(x-1) > 1e-12 {
			t.Errorf("uniform weight[%d] = %v, want 1", i, x)
		}
	}
}
