package server

import (
	"math/rand"

	"math"
	"repro/internal/cache"
	"testing"

	"repro/internal/policy"
	"repro/internal/qnet"
	"repro/internal/trace"
)

// testTrace returns a small workload with enough reuse to exercise caching:
// 800 files of ~20 KB with a 500 MB-scale shape compressed to test size.
func testTrace(requests int) *trace.Trace {
	return trace.MustGenerate(trace.GenSpec{
		Name: "test", Files: 800, AvgFileKB: 30, Requests: requests,
		AvgReqKB: 15, Alpha: 1.0, LocalityP: 0.3, Seed: 42,
	})
}

func TestRunConservation(t *testing.T) {
	tr := testTrace(20000)
	for _, sys := range []System{Traditional, LARDServer, L2SServer} {
		cfg := DefaultConfig(sys, 4)
		cfg.WarmFraction = 0 // measure everything
		r, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed+r.Aborted != uint64(tr.NumRequests()) {
			t.Errorf("%v: completed %d + aborted %d != %d requests",
				sys, r.Completed, r.Aborted, tr.NumRequests())
		}
		if r.Aborted != 0 {
			t.Errorf("%v: %d aborted without failures", sys, r.Aborted)
		}
		if r.Throughput <= 0 {
			t.Errorf("%v: throughput %v", sys, r.Throughput)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(10000)
	cfg := DefaultConfig(L2SServer, 8)
	a, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.MissRate != b.MissRate ||
		a.Events != b.Events || a.ControlMessages != b.ControlMessages {
		t.Fatalf("runs differ: %+v vs %+v", a, b)
	}
}

func TestSingleNodeSystemsCoincide(t *testing.T) {
	tr := testTrace(15000)
	var thr []float64
	for _, sys := range []System{Traditional, LARDServer, L2SServer} {
		r, err := Run(DefaultConfig(sys, 1), tr)
		if err != nil {
			t.Fatal(err)
		}
		thr = append(thr, r.Throughput)
		if r.ForwardedFrac != 0 {
			t.Errorf("%v on one node forwarded %.1f%%", sys, r.ForwardedFrac*100)
		}
	}
	for i := 1; i < len(thr); i++ {
		if math.Abs(thr[i]-thr[0])/thr[0] > 0.02 {
			t.Fatalf("single-node throughputs diverge: %v", thr)
		}
	}
}

func TestForwardingFractions(t *testing.T) {
	tr := testTrace(20000)
	trad, err := Run(DefaultConfig(Traditional, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	if trad.ForwardedFrac != 0 {
		t.Errorf("traditional forwarded %.1f%%, want 0", trad.ForwardedFrac*100)
	}
	lard, err := Run(DefaultConfig(LARDServer, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	if lard.ForwardedFrac != 1 {
		t.Errorf("LARD forwarded %.1f%%, want 100%%", lard.ForwardedFrac*100)
	}
	l2s, err := Run(DefaultConfig(L2SServer, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	if l2s.ForwardedFrac <= 0 || l2s.ForwardedFrac >= 1 {
		t.Errorf("L2S forwarded %.1f%%, want strictly between 0 and 100%%",
			l2s.ForwardedFrac*100)
	}
	if l2s.ForwardedFrac >= lard.ForwardedFrac {
		t.Error("L2S must forward fewer requests than LARD")
	}
}

func TestLocalityConsciousMissRatesLower(t *testing.T) {
	tr := testTrace(30000)
	trad, _ := Run(DefaultConfig(Traditional, 8), tr)
	l2s, _ := Run(DefaultConfig(L2SServer, 8), tr)
	lard, _ := Run(DefaultConfig(LARDServer, 8), tr)
	if l2s.MissRate >= trad.MissRate {
		t.Errorf("L2S miss %.1f%% not below traditional %.1f%%",
			l2s.MissRate*100, trad.MissRate*100)
	}
	if lard.MissRate >= trad.MissRate {
		t.Errorf("LARD miss %.1f%% not below traditional %.1f%%",
			lard.MissRate*100, trad.MissRate*100)
	}
}

func TestL2SOutperformsAtScale(t *testing.T) {
	tr := testTrace(40000)
	trad, _ := Run(DefaultConfig(Traditional, 16), tr)
	lard, _ := Run(DefaultConfig(LARDServer, 16), tr)
	l2s, _ := Run(DefaultConfig(L2SServer, 16), tr)
	if l2s.Throughput <= lard.Throughput {
		t.Errorf("L2S %v not above LARD %v at 16 nodes", l2s.Throughput, lard.Throughput)
	}
	if l2s.Throughput <= trad.Throughput {
		t.Errorf("L2S %v not above traditional %v at 16 nodes", l2s.Throughput, trad.Throughput)
	}
}

func TestLARDFrontEndCeiling(t *testing.T) {
	// With plentiful nodes and tiny files, LARD saturates near
	// 1/FECostSec = 5000 requests/s.
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "tiny", Files: 400, AvgFileKB: 4, Requests: 40000,
		AvgReqKB: 3, Alpha: 1.0, LocalityP: 0.3, Seed: 7,
	})
	r, err := Run(DefaultConfig(LARDServer, 16), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput < 3500 || r.Throughput > 5300 {
		t.Fatalf("LARD throughput %v, want near the 5000/s front-end ceiling", r.Throughput)
	}
	// And the front-end (node 0) is the busiest CPU.
	fe := r.PerNodeCPUUtil[0]
	for i, u := range r.PerNodeCPUUtil[1:] {
		if u > fe {
			t.Fatalf("back-end %d CPU %.2f busier than front-end %.2f", i+1, u, fe)
		}
	}
}

func TestThroughputScalesWithNodes(t *testing.T) {
	tr := testTrace(30000)
	prev := 0.0
	for _, n := range []int{1, 4, 16} {
		r, err := Run(DefaultConfig(L2SServer, n), tr)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput <= prev {
			t.Fatalf("L2S throughput at %d nodes (%v) not above %v", n, r.Throughput, prev)
		}
		prev = r.Throughput
	}
}

func TestL2SNodeFailureDegradesGracefully(t *testing.T) {
	tr := testTrace(30000)
	base, _ := Run(DefaultConfig(L2SServer, 8), tr)
	cfg := DefaultConfig(L2SServer, 8)
	cfg.FailNode = 3
	cfg.FailAtFrac = 0.5
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Requests in flight at the failed node are lost, but the server keeps
	// operating: the completion count stays close to the total.
	lost := float64(r.Aborted) / float64(tr.NumRequests())
	if lost > 0.05 {
		t.Errorf("L2S lost %.1f%% of requests to one node failure", lost*100)
	}
	if r.Throughput < base.Throughput*0.5 {
		t.Errorf("L2S throughput collapsed after one node failure: %v vs %v",
			r.Throughput, base.Throughput)
	}
}

func TestLARDFrontEndFailureIsFatal(t *testing.T) {
	tr := testTrace(30000)
	cfg := DefaultConfig(LARDServer, 8)
	cfg.FailNode = 0 // the front-end
	cfg.FailAtFrac = 0.5
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Every request after the failure dies: the single point of failure.
	if float64(r.Aborted) < 0.4*float64(tr.NumRequests()) {
		t.Errorf("only %d of %d requests lost after front-end failure",
			r.Aborted, tr.NumRequests())
	}
}

func TestWarmFractionReducesMissRate(t *testing.T) {
	tr := testTrace(30000)
	cold := DefaultConfig(Traditional, 4)
	cold.WarmFraction = 0
	warm := DefaultConfig(Traditional, 4)
	warm.WarmFraction = 0.5
	rc, _ := Run(cold, tr)
	rw, _ := Run(warm, tr)
	if rw.MissRate >= rc.MissRate {
		t.Errorf("warmed miss %.1f%% not below cold %.1f%%",
			rw.MissRate*100, rc.MissRate*100)
	}
}

func TestMaxRequestsTruncates(t *testing.T) {
	tr := testTrace(30000)
	cfg := DefaultConfig(Traditional, 2)
	cfg.MaxRequests = 5000
	cfg.WarmFraction = 0
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 5000 {
		t.Fatalf("Completed = %d, want 5000", r.Completed)
	}
}

func TestCustomPolicy(t *testing.T) {
	tr := testTrace(5000)
	cfg := DefaultConfig(CustomServer, 4)
	cfg.CustomPolicy = func(env policy.Env) policy.Distributor {
		return policy.NewFewestConnections(env)
	}
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.System != "traditional" {
		t.Fatalf("System = %q", r.System)
	}
}

func TestL2SStatsExposed(t *testing.T) {
	tr := testTrace(20000)
	r, err := Run(DefaultConfig(L2SServer, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.L2S == nil {
		t.Fatal("L2S stats missing")
	}
	if r.L2S.LoadBroadcasts == 0 {
		t.Error("expected load broadcasts under saturation")
	}
	if len(r.L2S.SetSizes) == 0 {
		t.Error("expected server sets to exist")
	}
}

func TestMeanLoadWithinWindow(t *testing.T) {
	tr := testTrace(20000)
	cfg := DefaultConfig(L2SServer, 4)
	r, _ := Run(cfg, tr)
	if r.MeanLoad <= 0 || r.MeanLoad > float64(cfg.WindowPerNode)+1 {
		t.Fatalf("MeanLoad = %v, window per node = %d", r.MeanLoad, cfg.WindowPerNode)
	}
}

func TestUtilizationsBounded(t *testing.T) {
	tr := testTrace(20000)
	for _, sys := range []System{Traditional, LARDServer, L2SServer} {
		r, _ := Run(DefaultConfig(sys, 8), tr)
		if r.MeanCPUUtil < 0 || r.MeanCPUUtil > 1+1e-9 {
			t.Errorf("%v: CPU util %v", sys, r.MeanCPUUtil)
		}
		if r.RouterUtil < 0 || r.RouterUtil > 1+1e-9 {
			t.Errorf("%v: router util %v", sys, r.RouterUtil)
		}
		if math.Abs(r.CPUIdle-(1-r.MeanCPUUtil)) > 1e-12 {
			t.Errorf("%v: idle inconsistent with util", sys)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tr := testTrace(100)
	bad := []Config{
		{System: Traditional, Nodes: 0, WindowPerNode: 1},
		{System: Traditional, Nodes: 2, WindowPerNode: 0},
		{System: Traditional, Nodes: 2, WindowPerNode: 1, WarmFraction: 0.99},
		{System: LARDServer, Nodes: 2, WindowPerNode: 1, FECostSec: 0},
		{System: CustomServer, Nodes: 2, WindowPerNode: 1},
		{System: Traditional, Nodes: 2, WindowPerNode: 1, FailNode: 5},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, tr); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestSystemString(t *testing.T) {
	if Traditional.String() != "traditional" || LARDServer.String() != "lard" ||
		L2SServer.String() != "l2s" || CustomServer.String() != "custom" {
		t.Fatal("system names wrong")
	}
	if System(42).String() == "" {
		t.Fatal("unknown system must still render")
	}
}

// Cross-validation against the analytic model: in a regime the model
// captures exactly (uniform file size, everything cached, no forwarding),
// the simulator must approach the model's CPU-bound throughput.
func TestSimulatorMatchesModelCPUBound(t *testing.T) {
	// 50 files of exactly 16 KB: fits easily in a 32 MB cache, so the
	// measured interval is all hits.
	sizes := make([]int64, 50)
	for i := range sizes {
		sizes[i] = 16 << 10
	}
	reqs := make([]cache.FileID, 60000)
	rng := rand.New(rand.NewSource(1))
	for i := range reqs {
		reqs[i] = cache.FileID(rng.Intn(len(sizes)))
	}
	tr := &trace.Trace{Name: "uniform", Sizes: sizes, Requests: reqs}

	cfg := DefaultConfig(Traditional, 4)
	cfg.WindowPerNode = 24 // enough concurrency to saturate
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.MissRate > 0.001 {
		t.Fatalf("expected all hits, miss rate %v", r.MissRate)
	}

	p := cfg.Costs
	p.Nodes = 4
	p.AvgFileKB = 16
	bound := p.Bound(1, 0).RequestsPerSec
	if r.Throughput > bound*1.01 {
		t.Fatalf("simulator %v exceeds the model bound %v", r.Throughput, bound)
	}
	if r.Throughput < bound*0.90 {
		t.Fatalf("simulator %v far below the model bound %v (should saturate)", r.Throughput, bound)
	}
}

func TestDistributedFSCostsThroughput(t *testing.T) {
	// A miss-heavy workload: the DFS's remote disk reads must cost
	// something but not change correctness.
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "missy", Files: 5000, AvgFileKB: 30, Requests: 30000,
		AvgReqKB: 25, Alpha: 0.6, Seed: 4,
	})
	local, err := Run(DefaultConfig(Traditional, 8), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Traditional, 8)
	cfg.DistributedFS = true
	dfs, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if dfs.Completed+dfs.Aborted == 0 {
		t.Fatal("no requests completed under DFS")
	}
	if dfs.Throughput > local.Throughput*1.02 {
		t.Fatalf("remote disk reads should not be faster: %v vs %v",
			dfs.Throughput, local.Throughput)
	}
	if dfs.Throughput < local.Throughput*0.5 {
		t.Fatalf("DFS collapsed throughput: %v vs %v", dfs.Throughput, local.Throughput)
	}
	// The DFS moves data over the cluster network, so messages appear even
	// for the traditional server.
	if dfs.ControlMessages == 0 {
		t.Fatal("DFS fetches should use the cluster network")
	}
	if local.ControlMessages != 0 {
		t.Fatal("traditional server without DFS must not message")
	}
}

func TestFileHomeSpreads(t *testing.T) {
	counts := make([]int, 8)
	for f := 0; f < 8000; f++ {
		h := fileHome(cache.FileID(f), 8)
		if h < 0 || h >= 8 {
			t.Fatalf("home %d out of range", h)
		}
		counts[h]++
	}
	for n, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("node %d homes %d files, expected near 1000", n, c)
		}
	}
}

func TestHeterogeneousCPUSpeeds(t *testing.T) {
	tr := testTrace(30000)
	base, err := Run(DefaultConfig(L2SServer, 4), tr)
	if err != nil {
		t.Fatal(err)
	}
	// Two fast nodes, two half-speed nodes.
	cfg := DefaultConfig(L2SServer, 4)
	cfg.CPUSpeeds = []float64{1, 1, 0.5, 0.5}
	het, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Slower hardware means lower throughput, but connection-count load
	// balancing adapts: the cluster must retain well over half the
	// homogeneous throughput (naive equal spread would be capped by the
	// slow nodes).
	if het.Throughput >= base.Throughput {
		t.Fatalf("heterogeneous %v not below homogeneous %v", het.Throughput, base.Throughput)
	}
	if het.Throughput < base.Throughput*0.55 {
		t.Fatalf("throughput collapsed on mixed hardware: %v vs %v",
			het.Throughput, base.Throughput)
	}
	// The fast nodes end up busier in absolute work terms: their CPU time
	// per unit utilization covers twice the requests, so utilization
	// should be comparable or higher on slow nodes, not pathologically
	// imbalanced.
	if het.LoadImbalance > 3 {
		t.Fatalf("load imbalance %v too high", het.LoadImbalance)
	}
}

func TestCPUSpeedsValidation(t *testing.T) {
	tr := testTrace(100)
	cfg := DefaultConfig(Traditional, 2)
	cfg.CPUSpeeds = []float64{1}
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("length mismatch accepted")
	}
	cfg.CPUSpeeds = []float64{1, 0}
	if _, err := Run(cfg, tr); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestTimelineShowsFailureDip(t *testing.T) {
	tr := testTrace(30000)
	cfg := DefaultConfig(L2SServer, 8)
	cfg.TimelineBucket = 0.5
	cfg.FailNode = 3
	cfg.FailAtFrac = 0.7
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) < 4 {
		t.Fatalf("timeline too short: %d buckets", len(r.Timeline))
	}
	// Steady state before the failure, reduced capacity after: the last
	// full bucket must be below the early steady-state level.
	early := r.Timeline[1]
	late := r.Timeline[len(r.Timeline)-2]
	if early <= 0 || late <= 0 {
		t.Fatalf("timeline has empty buckets: %v", r.Timeline)
	}
	if late >= early {
		t.Errorf("no throughput dip after node failure: early %v, late %v", early, late)
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	tr := testTrace(5000)
	r, err := Run(DefaultConfig(Traditional, 2), tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) != 0 {
		t.Fatal("timeline recorded without being configured")
	}
}

// Section 6: the dispatcher-based LARD variant accepts connections on all
// serving nodes, so it escapes the original front-end's ~5000 req/s accept
// ceiling — but its dispatcher remains a (higher) bottleneck and a single
// point of failure, and L2S still wins.
func TestLARDDispatcherScalesPastFrontEnd(t *testing.T) {
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "tiny", Files: 400, AvgFileKB: 4, Requests: 60000,
		AvgReqKB: 3, Alpha: 1.0, LocalityP: 0.3, Seed: 7,
	})
	lard, err := Run(DefaultConfig(LARDServer, 16), tr)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := Run(DefaultConfig(LARDDispatcher, 16), tr)
	if err != nil {
		t.Fatal(err)
	}
	if disp.Throughput < lard.Throughput*1.2 {
		t.Fatalf("dispatcher variant %v should outscale the front-end %v",
			disp.Throughput, lard.Throughput)
	}
	l2s, err := Run(DefaultConfig(L2SServer, 16), tr)
	if err != nil {
		t.Fatal(err)
	}
	if l2s.Throughput <= disp.Throughput {
		t.Fatalf("L2S %v should still beat the dispatcher variant %v",
			l2s.Throughput, disp.Throughput)
	}
	if disp.ForwardedFrac < 0.85 {
		t.Fatalf("dispatcher variant forwards nearly everything, got %.1f%%",
			disp.ForwardedFrac*100)
	}
}

func TestLARDDispatcherSinglePointOfFailure(t *testing.T) {
	tr := testTrace(30000)
	cfg := DefaultConfig(LARDDispatcher, 8)
	cfg.FailNode = 0 // the dispatcher
	cfg.FailAtFrac = 0.5
	r, err := Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if float64(r.Aborted) < 0.4*float64(tr.NumRequests()) {
		t.Errorf("only %d of %d requests lost after dispatcher failure",
			r.Aborted, tr.NumRequests())
	}
}

func TestLARDDispatcherSingleNode(t *testing.T) {
	tr := testTrace(5000)
	r, err := Run(DefaultConfig(LARDDispatcher, 1), tr)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed == 0 || r.ForwardedFrac != 0 {
		t.Fatalf("single-node dispatcher: %+v", r)
	}
}

// Cross-validation against closed-network theory: a single-node cluster
// with a window of W outstanding connections is a closed queueing network
// with W customers. Exact MVA (with exponential-service assumptions) lower
// bounds the deterministic-service simulator, and the asymptotic bound
// caps both, so the simulated throughput must fall in between at every
// window size.
func TestWindowThroughputMatchesMVA(t *testing.T) {
	sizes := make([]int64, 50)
	for i := range sizes {
		sizes[i] = 16 << 10
	}
	tr := uniformTrace(sizes, 40000)

	costs := DefaultConfig(Traditional, 1).Costs
	const skb = 16.0
	closed := &qnet.ClosedNetwork{
		Demands: []float64{
			costs.RouterTime(costs.ReqKB) + costs.RouterTime(skb), // router in+out
			costs.NIInTime(),
			costs.ParseTime() + costs.ReplyTime(skb), // CPU
			costs.NIOutTime(skb),
		},
	}
	for _, w := range []int{1, 2, 4, 8, 16} {
		cfg := DefaultConfig(Traditional, 1)
		cfg.WindowPerNode = w
		r, err := Run(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		mva, err := closed.MVA(w)
		if err != nil {
			t.Fatal(err)
		}
		upper := closed.AsymptoticBounds(w)
		if r.Throughput < mva.Throughput*0.98 {
			t.Errorf("window %d: simulated %v below the MVA prediction %v",
				w, r.Throughput, mva.Throughput)
		}
		if r.Throughput > upper*1.02 {
			t.Errorf("window %d: simulated %v above the asymptotic bound %v",
				w, r.Throughput, upper)
		}
	}
}
