package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d, want 5", m.N())
	}
	if m.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", m.Mean())
	}
	if math.Abs(m.Var()-2.5) > 1e-12 {
		t.Fatalf("Var = %v, want 2.5", m.Var())
	}
	if m.Min() != 1 || m.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", m.Min(), m.Max())
	}
	if m.Sum() != 15 {
		t.Fatalf("Sum = %v, want 15", m.Sum())
	}
}

func TestMeanEmpty(t *testing.T) {
	var m Mean
	if m.Mean() != 0 || m.Var() != 0 || m.Stddev() != 0 {
		t.Fatal("empty Mean should report zeros")
	}
}

// Property: Welford's mean/variance match the naive two-pass computation.
func TestPropertyMeanMatchesNaive(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 2
		xs := make([]float64, count)
		var m Mean
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1000
			m.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		naiveMean := sum / float64(count)
		var ss float64
		for _, x := range xs {
			ss += (x - naiveMean) * (x - naiveMean)
		}
		naiveVar := ss / float64(count-1)
		return math.Abs(m.Mean()-naiveMean) < 1e-6 &&
			math.Abs(m.Var()-naiveVar) < 1e-4*math.Max(1, naiveVar)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestPropertyMeanMerge(t *testing.T) {
	prop := func(seed int64, na, nb uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var a, b, all Mean
		for i := 0; i < int(na%50)+1; i++ {
			x := rng.Float64() * 100
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(nb%50)+1; i++ {
			x := rng.Float64() * 100
			b.Add(x)
			all.Add(x)
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	w.Set(2, 0)  // value 2 over [0, 10)
	w.Set(4, 10) // value 4 over [10, 20)
	if got := w.Average(20); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Average(20) = %v, want 3", got)
	}
	if w.Min() != 2 || w.Max() != 4 {
		t.Fatalf("Min/Max = %v/%v, want 2/4", w.Min(), w.Max())
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(100, 0)
	w.Set(2, 10)
	w.Reset(10)
	w.Set(4, 20)
	if got := w.Average(30); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Average after reset = %v, want 3", got)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var w TimeWeighted
	w.Set(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("Set with earlier time did not panic")
		}
	}()
	w.Set(2, 5)
}

// Property: the time average always lies within [min, max] of the values.
func TestPropertyTimeWeightedBounds(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var w TimeWeighted
		tcur := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		count := int(n%30) + 2
		for i := 0; i < count; i++ {
			v := rng.Float64() * 50
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			w.Set(v, tcur)
			tcur += rng.Float64() + 0.01
		}
		avg := w.Average(tcur)
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if h.N() != 1000 {
		t.Fatalf("N = %d", h.N())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("Mean = %v, want 500.5", h.Mean())
	}
	// Log buckets give coarse quantiles: p50 must land within a factor of 2.
	p50 := h.Quantile(0.5)
	if p50 < 250 || p50 > 1000 {
		t.Fatalf("p50 = %v, expected within a factor of 2 of 500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 495 {
		t.Fatalf("p99 = %v, should be near the top", p99)
	}
	if h.Quantile(1) < h.Quantile(0.5) {
		t.Fatal("quantiles must be monotone")
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Add(0)
	h.Add(0)
	h.Add(8)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("median with majority zeros = %v, want 0", q)
	}
	if h.String() == "" {
		t.Fatal("String should render a summary")
	}
}

// Property: quantiles are nondecreasing in q.
func TestPropertyHistogramMonotoneQuantiles(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		for i := 0; i < int(n%200)+1; i++ {
			h.Add(rng.ExpFloat64() * 100)
		}
		last := -1.0
		for q := 0.1; q <= 1.0; q += 0.1 {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	if math.Abs(r.Value()-2.0/3.0) > 1e-12 {
		t.Fatalf("Value = %v, want 2/3", r.Value())
	}
	var other Ratio
	other.Observe(false)
	r.Merge(other)
	if r.Total != 4 || r.Hits != 2 {
		t.Fatalf("after merge: %+v", r)
	}
}
