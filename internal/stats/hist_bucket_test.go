package stats

import (
	"math"
	"testing"
)

// TestBucketOfIsExactFloor pins the Frexp bucketing to the mathematical
// floor(log2 x) at the places float arithmetic gets it wrong: exact powers
// of two (which belong to their own bucket, not the one below), values one
// ulp either side of a power of two, and subnormals.
func TestBucketOfIsExactFloor(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{1, 0},
		{2, 1},
		{math.Nextafter(2, 0), 0}, // just below 2: math.Log2 rounds this to 1.0
		{math.Nextafter(2, 3), 1}, // just above 2
		{0.5, -1},
		{math.Nextafter(1, 0), -1}, // just below 1
		{1 << 20, 20},
		{math.Nextafter(1<<20, 0), 19},
		{math.SmallestNonzeroFloat64, -1074},
		{math.MaxFloat64, 1023},
		{3, 1},
		{1.5e-9, -30},
	}
	for _, c := range cases {
		if got := bucketOf(c.x); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// TestBucketIndexInRange sweeps the representable positive range and checks
// every sample lands inside the fixed bucket array.
func TestBucketIndexInRange(t *testing.T) {
	h := NewHistogram()
	for _, x := range []float64{
		math.SmallestNonzeroFloat64, 1e-300, 1e-9, 1, 1e9, 1e300, math.MaxFloat64,
	} {
		h.Add(x) // panics on an out-of-range index
	}
	if h.N() != 7 {
		t.Fatalf("N=%d", h.N())
	}
}

// TestHistogramQuantileMatchesMapSemantics re-verifies the quantile walk on
// the slice-backed buckets: the answer must be the geometric midpoint of
// the first bucket whose cumulative count reaches the target, scanning
// buckets in ascending exponent order exactly as the sorted-key map walk
// did.
func TestHistogramQuantileMatchesMapSemantics(t *testing.T) {
	h := NewHistogram()
	// 10 samples in [1,2), 80 in [8,16), 10 in [1024,2048).
	for i := 0; i < 10; i++ {
		h.Add(1.5)
	}
	for i := 0; i < 80; i++ {
		h.Add(9)
	}
	for i := 0; i < 10; i++ {
		h.Add(1500)
	}
	if got, want := h.Quantile(0.05), math.Pow(2, 0)*math.Sqrt2; got != want {
		t.Fatalf("p05=%v want %v", got, want)
	}
	if got, want := h.Quantile(0.5), math.Pow(2, 3)*math.Sqrt2; got != want {
		t.Fatalf("p50=%v want %v", got, want)
	}
	if got, want := h.Quantile(0.99), math.Pow(2, 10)*math.Sqrt2; got != want {
		t.Fatalf("p99=%v want %v", got, want)
	}
	if got, want := h.Quantile(1), math.Pow(2, 10)*math.Sqrt2; got != want {
		t.Fatalf("p100=%v want %v", got, want)
	}
}
