package stats

import (
	"strings"
	"testing"
)

// Edge-of-contract behavior: empty merges, pre-measurement reads, and
// quantile requests at and beyond the sampled range.

func TestMeanMergeEmptySides(t *testing.T) {
	var a, b Mean
	a.Add(3)
	a.Add(5)
	before := a

	a.Merge(&b) // empty other: no-op
	if a != before {
		t.Fatalf("merging an empty Mean changed the receiver: %+v -> %+v", before, a)
	}

	b.Merge(&a) // empty receiver: becomes a copy
	if b.N() != 2 || b.Mean() != 4 || b.Min() != 3 || b.Max() != 5 {
		t.Fatalf("merge into empty Mean: n=%d mean=%v min=%v max=%v", b.N(), b.Mean(), b.Min(), b.Max())
	}
}

func TestTimeWeightedValueAndEarlyAverage(t *testing.T) {
	var w TimeWeighted
	if got := w.Average(5); got != 0 {
		t.Fatalf("average before any sample = %v, want the zero value", got)
	}
	w.Set(3, 10)
	if got := w.Value(); got != 3 {
		t.Fatalf("Value = %v, want 3", got)
	}
	// Asking for the average at (or before) the measurement start cannot
	// divide by the zero-length window; it reports the current value.
	if got := w.Average(10); got != 3 {
		t.Fatalf("average over empty window = %v, want current value 3", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	for _, x := range []float64{3, 3, 3, 100} {
		h.Add(x)
	}
	// q=0 still means "some sample": the smallest one's bucket.
	if got, want := h.Quantile(0), h.Quantile(0.25); got != want {
		t.Fatalf("Quantile(0) = %v, want the first bucket estimate %v", got, want)
	}
	// Beyond-range q is defensive territory: the estimate must not escape
	// the top bucket's upper edge.
	if got := h.Quantile(2); got < h.Quantile(1) {
		t.Fatalf("Quantile(2) = %v fell below Quantile(1) = %v", got, h.Quantile(1))
	}
}

func TestHistogramStringEmpty(t *testing.T) {
	h := NewHistogram()
	if s := h.String(); !strings.Contains(s, "empty") {
		t.Fatalf("empty histogram renders as %q", s)
	}
	h.Add(4)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Fatalf("histogram summary %q missing the sample count", s)
	}
}
