// Package stats provides the small statistics toolkit used throughout the
// simulator and the experiment harness: streaming means and variances,
// time-weighted averages for load processes, and logarithmic histograms for
// latency-like quantities.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean accumulates a streaming mean and variance using Welford's algorithm,
// which stays numerically stable over millions of samples.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (m *Mean) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Mean returns the sample mean, or 0 with no samples.
func (m *Mean) Mean() float64 { return m.mean }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (m *Mean) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Stddev returns the sample standard deviation.
func (m *Mean) Stddev() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest sample, or 0 with no samples.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest sample, or 0 with no samples.
func (m *Mean) Max() float64 { return m.max }

// Sum returns the total of all samples.
func (m *Mean) Sum() float64 { return m.mean * float64(m.n) }

// Merge folds other into m, as if all of other's samples had been added.
func (m *Mean) Merge(other *Mean) {
	if other.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *other
		return
	}
	n := m.n + other.n
	delta := other.mean - m.mean
	mean := m.mean + delta*float64(other.n)/float64(n)
	m.m2 += other.m2 + delta*delta*float64(m.n)*float64(other.n)/float64(n)
	m.mean = mean
	m.n = n
	if other.min < m.min {
		m.min = other.min
	}
	if other.max > m.max {
		m.max = other.max
	}
}

// TimeWeighted tracks the time average of a piecewise-constant signal, such
// as the number of open connections at a node.
type TimeWeighted struct {
	value float64
	last  float64
	area  float64
	start float64
	began bool
	min   float64
	max   float64
}

// Set records that the signal changed to v at time t. Times must be
// nondecreasing.
func (w *TimeWeighted) Set(v, t float64) {
	if !w.began {
		w.start, w.last, w.began = t, t, true
		w.min, w.max = v, v
	}
	if t < w.last {
		panic(fmt.Sprintf("stats: time went backwards (%v < %v)", t, w.last))
	}
	w.area += w.value * (t - w.last)
	w.last = t
	w.value = v
	if v < w.min {
		w.min = v
	}
	if v > w.max {
		w.max = v
	}
}

// Value returns the current signal value.
func (w *TimeWeighted) Value() float64 { return w.value }

// Average returns the time-weighted average of the signal over [start, t].
func (w *TimeWeighted) Average(t float64) float64 {
	if !w.began || t <= w.start {
		return w.value
	}
	area := w.area + w.value*(t-w.last)
	return area / (t - w.start)
}

// Min returns the smallest value the signal has taken.
func (w *TimeWeighted) Min() float64 { return w.min }

// Max returns the largest value the signal has taken.
func (w *TimeWeighted) Max() float64 { return w.max }

// Reset restarts the measurement interval at time t, keeping the current
// value.
func (w *TimeWeighted) Reset(t float64) {
	w.area = 0
	w.start, w.last = t, t
	w.min, w.max = w.value, w.value
	w.began = true
}

// The bucket array spans every positive float64: bucket k counts samples in
// [2^(k+minExp), 2^(k+minExp+1)). minExp is the exponent of the smallest
// subnormal; 2^maxExp is the leading power of the largest finite float64.
// The full span is 2098 buckets — 16 KB per histogram — which buys an
// unconditional array increment per sample with no range bookkeeping.
const (
	histMinExp  = -1074
	histMaxExp  = 1023
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram is a base-2 logarithmic histogram for positive quantities whose
// interesting range spans several orders of magnitude (latencies, sizes).
// Buckets are a flat array indexed by exponent, so recording a sample is an
// increment, not a map access; this sits on the simulator's per-completion
// path.
type Histogram struct {
	buckets []uint64
	lo, hi  int // occupied bucket index range; lo > hi while empty
	count   uint64
	sum     float64
	zero    uint64 // samples <= 0
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make([]uint64, histBuckets), lo: histBuckets, hi: -1}
}

// Add records a sample.
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	if x <= 0 {
		h.zero++
		return
	}
	b := bucketOf(x) - histMinExp
	h.buckets[b]++
	if b < h.lo {
		h.lo = b
	}
	if b > h.hi {
		h.hi = b
	}
}

// bucketOf returns floor(log2(x)) for positive x, exactly: Frexp decomposes
// x as frac * 2^exp with frac in [0.5, 1), so the floor is exp-1 with no
// float rounding involved (math.Log2 can round up to an integer for x just
// below a power of two, misplacing the sample by one bucket).
func bucketOf(x float64) int {
	_, exp := math.Frexp(x)
	return exp - 1
}

// N returns the number of samples.
func (h *Histogram) N() uint64 { return h.count }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1), using the
// geometric midpoint of the containing bucket. With no samples it returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64 = h.zero
	if cum >= target {
		return 0
	}
	for b := h.lo; b <= h.hi; b++ {
		cum += h.buckets[b]
		if cum >= target {
			lo := math.Pow(2, float64(b+histMinExp))
			return lo * math.Sqrt2 // geometric midpoint of [2^k, 2^(k+1))
		}
	}
	return math.Pow(2, float64(h.hi+histMinExp+1))
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99))
	return b.String()
}

// Ratio is a hit/total counter pair, used for cache hit rates and forwarded
// request fractions.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Observe records one event, counted as a hit when hit is true.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when empty.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Merge folds other into r.
func (r *Ratio) Merge(other Ratio) {
	r.Hits += other.Hits
	r.Total += other.Total
}
