package policy

import (
	"math/rand"
)

// Hashing is the strict locality-conscious server sketched in the paper's
// introduction: every file is pinned to exactly one node by a hash of its
// identity, with no replication and no attention to load. It maximizes the
// effective cache (each file cached once) but, as the paper observes, "can
// produce severe load imbalance" — the strawman that motivates combining
// locality with load balancing.
type Hashing struct {
	env Env
	rr  *RoundRobin
}

// NewHashing builds the strict-locality policy. Connections arrive round
// robin (as with L2S) and are always forwarded to the file's home node.
func NewHashing(env Env) *Hashing {
	return &Hashing{env: env, rr: NewRoundRobin(env)}
}

// Name implements Distributor.
func (p *Hashing) Name() string { return "hashing" }

// FrontEnd implements Distributor.
func (p *Hashing) FrontEnd() int { return -1 }

// Initial implements Distributor.
func (p *Hashing) Initial(f FileID) int { return p.rr.Next() }

// Service implements Distributor: the file's home node, dead nodes
// rehashed by linear probing.
func (p *Hashing) Service(initial int, f FileID) int {
	n := p.env.N()
	home := int(mix(uint64(f))) % n
	if home < 0 {
		home += n
	}
	for i := 0; i < n; i++ {
		cand := (home + i) % n
		if p.env.Alive(cand) {
			return cand
		}
	}
	return initial
}

// OnAssign implements Distributor.
func (p *Hashing) OnAssign(n int) {}

// OnComplete implements Distributor.
func (p *Hashing) OnComplete(n int, f FileID) {}

// mix is a 64-bit finalizer (splitmix64) giving a well-spread hash of the
// file id.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Random assigns each connection to a uniformly random node that services
// it locally — the weakest load-balancing baseline, equivalent to DNS
// round robin as seen by the server when client-side caching randomizes
// arrival order.
type Random struct {
	env Env
	rng *rand.Rand
}

// NewRandom builds the random policy with a deterministic seed.
func NewRandom(env Env, seed int64) *Random {
	return &Random{env: env, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Distributor.
func (p *Random) Name() string { return "random" }

// FrontEnd implements Distributor.
func (p *Random) FrontEnd() int { return -1 }

// Initial implements Distributor.
func (p *Random) Initial(f FileID) int {
	n := p.env.N()
	for i := 0; i < 4*n; i++ {
		cand := p.rng.Intn(n)
		if p.env.Alive(cand) {
			return cand
		}
	}
	return 0
}

// Service implements Distributor.
func (p *Random) Service(initial int, f FileID) int { return initial }

// OnAssign implements Distributor.
func (p *Random) OnAssign(n int) {}

// OnComplete implements Distributor.
func (p *Random) OnComplete(n int, f FileID) {}

// CachedDNS models round-robin DNS with translation caching, the scheme
// the paper's Section 2 criticizes: intermediate name servers and clients
// cache the translated address, so a client keeps hitting the same node
// for the lifetime of its cache entry, and popular resolvers cause
// significant load imbalance. Each client is pinned to the node the DNS
// rotation handed it for TTLRequests consecutive requests.
type CachedDNS struct {
	env         Env
	rr          *RoundRobin
	TTLRequests int

	pinned    map[int32]int // client -> node
	remaining map[int32]int // client -> requests left on the cached entry

	// NextClient must be set by the driver before each Initial call when
	// client identities are available; otherwise a single shared cache
	// entry is used (the worst case).
	NextClient int32
}

// NewCachedDNS builds the cached-DNS arrival model.
func NewCachedDNS(env Env, ttlRequests int) *CachedDNS {
	return &CachedDNS{
		env:         env,
		rr:          NewRoundRobin(env),
		TTLRequests: ttlRequests,
		pinned:      make(map[int32]int),
		remaining:   make(map[int32]int),
	}
}

// Name implements Distributor.
func (p *CachedDNS) Name() string { return "cached-dns" }

// FrontEnd implements Distributor.
func (p *CachedDNS) FrontEnd() int { return -1 }

// Initial implements Distributor: the client's cached translation, renewed
// from the round-robin rotation when it expires.
func (p *CachedDNS) Initial(f FileID) int {
	c := p.NextClient
	if left, ok := p.remaining[c]; ok && left > 0 && p.env.Alive(p.pinned[c]) {
		p.remaining[c] = left - 1
		return p.pinned[c]
	}
	n := p.rr.Next()
	p.pinned[c] = n
	p.remaining[c] = p.TTLRequests - 1
	return n
}

// Service implements Distributor: each node serves what lands on it.
func (p *CachedDNS) Service(initial int, f FileID) int { return initial }

// OnAssign implements Distributor.
func (p *CachedDNS) OnAssign(n int) {}

// OnComplete implements Distributor.
func (p *CachedDNS) OnComplete(n int, f FileID) {}
