package policy

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Options carries every tunable a registered policy constructor may need.
// The zero value selects the published defaults for each policy, so callers
// only set the fields they care about.
type Options struct {
	// LARD configures the lard, lard-basic, and lard-dispatch policies.
	// The zero value selects DefaultLARDOptions.
	LARD LARDOptions

	// DispatchQuerySec is the dispatcher CPU time per decision query for
	// lard-dispatch; zero or negative selects the calibrated 100 us.
	DispatchQuerySec float64

	// Seed drives the random policy; zero selects the historical seed 7.
	Seed int64

	// DNSTTL is the cached-dns policy's requests per cached translation;
	// zero or negative selects 50.
	DNSTTL int

	// L2S carries core.Options for the l2s policy. It is declared any
	// because package core builds on this package (core cannot be imported
	// from here); core's registration asserts the concrete type. nil
	// selects core.DefaultOptions.
	L2S any

	// Files hints the number of distinct files the policy will see, so
	// per-file indexes (the LARD and L2S server-set tables) pre-size once
	// instead of rehash-doubling a dozen times at 10^7-file catalogs. The
	// simulator fills it with min(catalog size, request count); zero means
	// unknown and is always safe.
	Files int

	// Weights gives each node's relative capacity, normalized to mean 1.
	// The simulator fills it from the node hardware profiles; the weighted
	// policies (wlc, lard-weighted, l2s-weighted) scale their thresholds
	// and selections by it. nil means a homogeneous cluster, and makes
	// every weighted policy behave exactly like its unweighted base.
	Weights []float64

	// Chash configures the consistent-hashing family (chash, chash-bounded,
	// chash-d). The zero value selects each name's published defaults.
	Chash ChashOptions
}

// NodeWeights returns o.Weights validated against the cluster size: nil
// (or a wrong-sized slice, which cannot arise through server.Run) falls
// back to nil, the uniform cluster.
func (o Options) NodeWeights(n int) []float64 {
	if len(o.Weights) != n {
		return nil
	}
	return o.Weights
}

// lard returns the LARD options with the zero value replaced by the
// published defaults.
func (o Options) lard() LARDOptions {
	if o.LARD == (LARDOptions{}) {
		return DefaultLARDOptions()
	}
	return o.LARD
}

// Factory builds one distributor over an environment. Factories must
// validate their options and return an error rather than panic: sweeps
// construct policies for machine-generated grid points.
type Factory func(env Env, opts Options) (Distributor, error)

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
	aliases   map[string]string
	params    map[string][]Param
}{
	factories: make(map[string]Factory),
	aliases:   make(map[string]string),
	params:    make(map[string][]Param),
}

// Register adds a named policy constructor to the registry. It panics on a
// duplicate name; registration happens from package init functions, so a
// collision is a programming error.
func Register(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry.factories[name] = f
}

// RegisterAlias makes alias resolve to the policy registered under name.
// Aliases are accepted by ParseSpec and NewNamed but not listed by Names;
// NamesAndAliases lists them marked with their targets.
func RegisterAlias(alias, name string) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[alias]; dup {
		panic(fmt.Sprintf("policy: alias %q collides with a registered policy", alias))
	}
	registry.aliases[alias] = name
}

// NewNamed constructs the named distribution policy over env from a
// pre-assembled Options. Unknown names return an error listing every valid
// name and alias.
//
// Deprecated: parse a policy spec instead — New(ParseSpec(name), env) is
// bit-identical for every plain name and additionally accepts per-family
// parameters ("chash:vnodes=256"). NewNamed remains for callers that build
// Options structs directly.
func NewNamed(name string, env Env, opts Options) (Distributor, error) {
	registry.RLock()
	if target, ok := registry.aliases[name]; ok {
		name = target
	}
	f, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (valid: %s)",
			name, strings.Join(NamesAndAliases(), ", "))
	}
	return f(env, opts)
}

// Names returns every registered policy name, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("traditional", func(env Env, _ Options) (Distributor, error) {
		return NewFewestConnections(env), nil
	})
	RegisterAlias("trad", "traditional")
	Register("lard", func(env Env, o Options) (Distributor, error) {
		l := o.lard()
		if err := l.Validate(); err != nil {
			return nil, err
		}
		d := NewLARD(env, l)
		d.ReserveFiles(o.Files)
		return d, nil
	})
	Register("lard-basic", func(env Env, o Options) (Distributor, error) {
		l := o.lard()
		l.Replication = false
		if err := l.Validate(); err != nil {
			return nil, err
		}
		d := NewLARD(env, l)
		d.ReserveFiles(o.Files)
		return d, nil
	})
	Register("lard-dispatch", func(env Env, o Options) (Distributor, error) {
		l := o.lard()
		if err := l.Validate(); err != nil {
			return nil, err
		}
		query := o.DispatchQuerySec
		if query <= 0 {
			query = 0.0001
		}
		d := NewDispatchLARD(env, l, query)
		d.ReserveFiles(o.Files)
		return d, nil
	})
	Register("hashing", func(env Env, _ Options) (Distributor, error) {
		return NewHashing(env), nil
	})
	Register("random", func(env Env, o Options) (Distributor, error) {
		seed := o.Seed
		if seed == 0 {
			seed = 7
		}
		return NewRandom(env, seed), nil
	})
	Register("cached-dns", func(env Env, o Options) (Distributor, error) {
		ttl := o.DNSTTL
		if ttl <= 0 {
			ttl = 50
		}
		return NewCachedDNS(env, ttl), nil
	})

	RegisterParams("lard", lardParams()...)
	RegisterParams("lard-basic", lardParams()[:4]...) // replication is forced off
	RegisterParams("lard-dispatch", append(lardParams(),
		Param{Key: "query", Kind: FloatParam, Min: 0, Max: 1, MinExcl: true,
			Doc:   "dispatcher CPU seconds per decision query",
			Apply: func(o *Options, v float64) { o.DispatchQuerySec = v }})...)
	RegisterParams("random",
		Param{Key: "seed", Kind: IntParam, Min: 1, Max: 1 << 53,
			Doc:   "RNG seed for the uniform node draw",
			Apply: func(o *Options, v float64) { o.Seed = int64(v) }})
	RegisterParams("cached-dns",
		Param{Key: "ttl", Kind: IntParam, Min: 1, Max: 1e9,
			Doc:   "requests served per cached DNS translation",
			Apply: func(o *Options, v float64) { o.DNSTTL = int(v) }})
}

// lardParams declares the spec parameters shared by the LARD family. Each
// Apply materializes the published defaults before overwriting one field,
// so "lard:thigh=80" keeps the default TLow rather than a zero one.
func lardParams() []Param {
	set := func(f func(*LARDOptions, float64)) func(*Options, float64) {
		return func(o *Options, v float64) {
			l := o.lard()
			f(&l, v)
			o.LARD = l
		}
	}
	return []Param{
		{Key: "tlow", Kind: IntParam, Min: 1, Max: 1e6,
			Doc:   "load below which any server is acceptable",
			Apply: set(func(l *LARDOptions, v float64) { l.TLow = int(v) })},
		{Key: "thigh", Kind: IntParam, Min: 1, Max: 1e6,
			Doc:   "load above which requests migrate away",
			Apply: set(func(l *LARDOptions, v float64) { l.THigh = int(v) })},
		{Key: "shrink", Kind: FloatParam, Min: 0, Max: 1e6,
			Doc:   "seconds of inactivity before a server set shrinks",
			Apply: set(func(l *LARDOptions, v float64) { l.ShrinkAfter = v })},
		{Key: "batch", Kind: IntParam, Min: 1, Max: 1e6,
			Doc:   "load-update batch size",
			Apply: set(func(l *LARDOptions, v float64) { l.UpdateBatch = int(v) })},
		{Key: "replication", Kind: BoolParam,
			Doc:   "replicate hot files across a server set",
			Apply: set(func(l *LARDOptions, v float64) { l.Replication = v != 0 })},
	}
}
