package policy

import (
	"fmt"
	"math"
	"sort"
)

// The chash family dispatches the way 2026-scale CDNs do: a consistent-hash
// ring with virtual nodes pins each file to an owner, and every decision is
// a local hash computation — no front-end, no broadcast load dissemination,
// zero control messages. Three registered names select the published
// presets:
//
//	chash          pure consistent hashing (the web-scale form of "hashing")
//	chash-bounded  consistent hashing with bounded loads: an owner above
//	               c x mean load spills to the next distinct ring successor
//	chash-d        power-of-d choices: hash to d candidate owners, take the
//	               least loaded (alias chash-d2)
//
// All tunables are reachable on any of the names via the spec grammar
// ("chash:vnodes=256,load=1.25,d=2"); the presets only change defaults.
// Ji/Quan/Tan (arXiv:1801.02436) prove the miss ratio of LRU behind
// consistent hashing is asymptotically that of one pooled LRU of the
// aggregate capacity — the conformance test in internal/server pins the
// simulator to that curve. The proximity bias follows Pourmiri et al.:
// among the d candidates, weight load by the line rate back to the
// arrival node.

// ChashOptions are the tunables of the consistent-hashing family. The zero
// value of each field selects that field's default at construction, so the
// three registered presets only fill what the caller left unset.
type ChashOptions struct {
	// VNodes is the number of ring points per unit of node capacity
	// (default 128). A node with weight w gets max(1, round(VNodes*w)).
	VNodes int
	// BoundC > 0 enables bounded loads with limit BoundC x mean load
	// (must exceed 1; chash-bounded defaults it to 1.25).
	BoundC float64
	// D > 1 enables power-of-d choices (chash-d defaults it to 2).
	D int
	// Proximity biases the d-choice pick by the per-pair line rate back to
	// the arrival node, when the environment can rate pairs (PairRater).
	Proximity bool
}

// Validate reports option errors. It expects defaults already applied, so
// zero VNodes or D is invalid here.
func (o ChashOptions) Validate() error {
	if o.VNodes < 1 || o.VNodes > 4096 {
		return fmt.Errorf("policy: chash vnodes %d outside [1, 4096]", o.VNodes)
	}
	if o.BoundC != 0 && (o.BoundC <= 1 || o.BoundC > 8) {
		return fmt.Errorf("policy: chash load factor %g outside (1, 8]", o.BoundC)
	}
	if o.D < 1 || o.D > 16 {
		return fmt.Errorf("policy: chash d %d outside [1, 16]", o.D)
	}
	return nil
}

// ringPoint is one virtual node on the ring: a node id at a hash position.
// 16 bytes, pointer-free; a 1024-node ring at the default density is 128k
// points (2 MB) built once per run.
type ringPoint struct {
	hash    uint64
	node    int32
	replica int32
}

// CHash is the consistent-hashing distributor. Connections arrive round
// robin (an L4 switch spraying an anycast VIP); Service walks the ring from
// the file's hash to its owner. The ring is a pure function of cluster size,
// capacity weights, and vnode density — independent of the run seed and of
// GOMAXPROCS, so two runs with the same cluster shape build byte-identical
// rings.
type CHash struct {
	env      Env
	rr       *RoundRobin
	name     string
	opts     ChashOptions
	ring     []ringPoint
	salts    []uint64 // per-choice key salts for power-of-d
	rates    PairRater
	inflight int // cluster-wide open connections, kept via OnAssign/OnComplete

	// visited/epoch dedupe distinct nodes during bounded spill walks
	// without clearing an array per request.
	visited []uint32
	epoch   uint32
}

// NewCHash builds a consistent-hash distributor. weights follows
// Options.Weights (nil = uniform); opts must already have defaults applied.
func NewCHash(name string, env Env, opts ChashOptions, weights []float64) *CHash {
	p := &CHash{
		env:     env,
		rr:      NewRoundRobin(env),
		name:    name,
		opts:    opts,
		ring:    buildRing(env.N(), opts.VNodes, weights),
		visited: make([]uint32, env.N()),
	}
	p.salts = make([]uint64, opts.D)
	for j := range p.salts {
		// Salt 0 is the identity so d=1 degrades exactly to plain chash.
		if j > 0 {
			p.salts[j] = mix(0x713b1b2c4e5f6071 + uint64(j))
		}
	}
	if opts.Proximity {
		if pr, ok := env.(PairRater); ok {
			p.rates = pr
		}
	}
	return p
}

// buildRing places max(1, round(vnodes*w_i)) points per node and sorts them
// by (hash, node, replica). The full ordering (not just hash) makes the
// ring deterministic even across hash collisions, and no map iteration or
// RNG is involved anywhere — determinism by construction.
func buildRing(n, vnodes int, weights []float64) []ringPoint {
	pts := make([]ringPoint, 0, n*vnodes)
	for i := 0; i < n; i++ {
		v := vnodes
		if weights != nil {
			v = int(math.Round(float64(vnodes) * weights[i]))
			if v < 1 {
				v = 1
			}
		}
		for r := 0; r < v; r++ {
			pts = append(pts, ringPoint{hash: pointHash(i, r), node: int32(i), replica: int32(r)})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		if pts[a].node != pts[b].node {
			return pts[a].node < pts[b].node
		}
		return pts[a].replica < pts[b].replica
	})
	return pts
}

// pointHash positions virtual node (node, replica) on the ring — a pure
// function of the two ids, like production rings keyed on member identity.
func pointHash(node, replica int) uint64 {
	return mix(mix(uint64(node)+1) ^ (uint64(replica)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909))
}

// Name implements Distributor.
func (p *CHash) Name() string { return p.name }

// FrontEnd implements Distributor: no dedicated front-end.
func (p *CHash) FrontEnd() int { return -1 }

// Initial implements Distributor: round-robin arrival, like L2S.
func (p *CHash) Initial(f FileID) int { return p.rr.Next() }

// Service implements Distributor: the ring owner of f, adjusted by the
// enabled variant. If the whole cluster is down it falls back to initial
// (the simulator aborts the request).
func (p *CHash) Service(initial int, f FileID) int {
	var cand int
	switch {
	case p.opts.D > 1:
		cand = p.dChoice(initial, f)
	case p.opts.BoundC > 0:
		cand = p.bounded(p.ringIndex(mix(uint64(f))))
	default:
		cand, _ = p.aliveOwner(p.ringIndex(mix(uint64(f))))
	}
	if cand < 0 {
		return initial
	}
	return cand
}

// ringIndex returns the index of the first ring point at or clockwise of
// key.
func (p *CHash) ringIndex(key uint64) int {
	ring := p.ring
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= key })
	if i == len(ring) {
		i = 0
	}
	return i
}

// aliveOwner walks clockwise from ring index idx to the first live node and
// returns (node, pointsWalked), or (-1, 0) with no node alive.
func (p *CHash) aliveOwner(idx int) (int, int) {
	ring := p.ring
	for k := 0; k < len(ring); k++ {
		cand := int(ring[(idx+k)%len(ring)].node)
		if p.env.Alive(cand) {
			return cand, k
		}
	}
	return -1, 0
}

// bounded walks clockwise from idx over distinct live nodes and returns the
// first whose load stays under the bounded-load limit
// BoundC x (inflight+1)/N — the "consistent hashing with bounded loads"
// spill rule, with the mean taken over the nominal cluster size. When every
// live node is at the limit (the bound is infeasible this instant) it
// returns the least-loaded one seen, preserving work conservation.
func (p *CHash) bounded(idx int) int {
	limit := p.opts.BoundC * float64(p.inflight+1) / float64(p.env.N())
	p.bumpEpoch()
	ring := p.ring
	n := p.env.N()
	best, bestLoad, distinct := -1, math.Inf(1), 0
	for k := 0; k < len(ring) && distinct < n; k++ {
		cand := int(ring[(idx+k)%len(ring)].node)
		if p.visited[cand] == p.epoch {
			continue
		}
		p.visited[cand] = p.epoch
		distinct++
		if !p.env.Alive(cand) {
			continue
		}
		l := float64(p.env.Load(cand))
		if l < limit {
			return cand
		}
		if l < bestLoad {
			best, bestLoad = cand, l
		}
	}
	return best
}

// dChoice hashes f with d salts to d candidate owners and picks the
// best-scoring one: raw load, or load weighted by the inverse line rate
// back to the arrival node when proximity biasing is active (Pourmiri et
// al.'s proximity-aware d choices — on a homogeneous network the scores
// reduce to plain least-loaded). With bounded loads also enabled, an
// over-limit winner spills along the ring from its own position.
func (p *CHash) dChoice(initial int, f FileID) int {
	best, bestIdx := -1, 0
	bestScore := math.Inf(1)
	for j := 0; j < p.opts.D; j++ {
		idx := p.ringIndex(mix(uint64(f) ^ p.salts[j]))
		cand, walked := p.aliveOwner(idx)
		if cand < 0 {
			return -1 // nothing alive anywhere on the ring
		}
		score := float64(p.env.Load(cand) + 1)
		if p.rates != nil {
			score /= p.rates.PairRateKBps(initial, cand)
		}
		if score < bestScore {
			best, bestIdx, bestScore = cand, (idx+walked)%len(p.ring), score
		}
	}
	if p.opts.BoundC > 0 && best >= 0 {
		limit := p.opts.BoundC * float64(p.inflight+1) / float64(p.env.N())
		if float64(p.env.Load(best)) >= limit {
			return p.bounded(bestIdx)
		}
	}
	return best
}

// bumpEpoch advances the visited stamp, clearing the array on the (once
// per 4 billion requests) wraparound.
func (p *CHash) bumpEpoch() {
	p.epoch++
	if p.epoch == 0 {
		for i := range p.visited {
			p.visited[i] = 0
		}
		p.epoch = 1
	}
}

// OnAssign implements Distributor: track cluster-wide in-flight load for
// the bounded-load mean.
func (p *CHash) OnAssign(n int) { p.inflight++ }

// OnComplete implements Distributor.
func (p *CHash) OnComplete(n int, f FileID) { p.inflight-- }

// newCHashFactory builds the factory for one preset: defaults are applied,
// then the preset fills its signature knob only if the caller left it zero.
func newCHashFactory(name string, preset func(*ChashOptions)) Factory {
	return func(env Env, o Options) (Distributor, error) {
		co := o.Chash
		if co.VNodes == 0 {
			co.VNodes = 128
		}
		if co.D == 0 {
			co.D = 1
		}
		preset(&co)
		if err := co.Validate(); err != nil {
			return nil, err
		}
		return NewCHash(name, env, co, o.NodeWeights(env.N())), nil
	}
}

func init() {
	Register("chash", newCHashFactory("chash", func(*ChashOptions) {}))
	Register("chash-bounded", newCHashFactory("chash-bounded", func(c *ChashOptions) {
		if c.BoundC == 0 {
			c.BoundC = 1.25
		}
	}))
	Register("chash-d", newCHashFactory("chash-d", func(c *ChashOptions) {
		if c.D <= 1 {
			c.D = 2
		}
	}))
	RegisterAlias("chash-d2", "chash-d")

	for _, name := range []string{"chash", "chash-bounded", "chash-d"} {
		RegisterParams(name, chashParams()...)
	}
}

// chashParams declares the spec parameters shared by the whole chash
// family — every preset accepts every knob; names only change defaults.
func chashParams() []Param {
	return []Param{
		{Key: "vnodes", Kind: IntParam, Min: 1, Max: 4096,
			Doc:   "ring points per unit of node capacity",
			Apply: func(o *Options, v float64) { o.Chash.VNodes = int(v) }},
		{Key: "load", Kind: FloatParam, Min: 1, Max: 8, MinExcl: true,
			Doc:   "bounded-load factor c (limit = c x mean load)",
			Apply: func(o *Options, v float64) { o.Chash.BoundC = v }},
		{Key: "d", Kind: IntParam, Min: 1, Max: 16,
			Doc:   "power-of-d candidate owners per file",
			Apply: func(o *Options, v float64) { o.Chash.D = int(v) }},
		{Key: "prox", Kind: BoolParam,
			Doc:   "bias d-choices by per-pair line rate",
			Apply: func(o *Options, v float64) { o.Chash.Proximity = v != 0 }},
	}
}
