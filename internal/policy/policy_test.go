package policy

import (
	"testing"
)

// fakeEnv is a deterministic in-memory Env for policy unit tests: control
// messages deliver immediately (or after Step() when deferred is true).
type fakeEnv struct {
	n      int
	now    float64
	loads  []int
	dead   []bool
	queue  []func() // deferred deliveries
	defer_ bool
	sent   int
}

func newFakeEnv(n int) *fakeEnv {
	return &fakeEnv{n: n, loads: make([]int, n), dead: make([]bool, n)}
}

func (e *fakeEnv) N() int           { return e.n }
func (e *fakeEnv) Now() float64     { return e.now }
func (e *fakeEnv) Load(n int) int   { return e.loads[n] }
func (e *fakeEnv) Alive(n int) bool { return !e.dead[n] }

func (e *fakeEnv) SendControl(from, to int, onDeliver func()) {
	e.sent++
	e.deliver(onDeliver)
}

func (e *fakeEnv) BroadcastControl(from int, onDeliver func()) {
	e.sent += e.n - 1
	e.deliver(onDeliver)
}

func (e *fakeEnv) deliver(fn func()) {
	if fn == nil {
		return
	}
	if e.defer_ {
		e.queue = append(e.queue, fn)
		return
	}
	fn()
}

func (e *fakeEnv) flush() {
	q := e.queue
	e.queue = nil
	for _, fn := range q {
		fn()
	}
}

func TestFewestConnectionsPicksLeastLoaded(t *testing.T) {
	env := newFakeEnv(4)
	p := NewFewestConnections(env)
	env.loads = []int{5, 2, 7, 3}
	if got := p.Initial(0); got != 1 {
		t.Fatalf("Initial = %d, want 1", got)
	}
	if p.Service(1, 0) != 1 {
		t.Fatal("traditional must service at the initial node")
	}
	if p.FrontEnd() != -1 {
		t.Fatal("traditional has no front-end")
	}
}

func TestFewestConnectionsRotatesTies(t *testing.T) {
	env := newFakeEnv(4)
	p := NewFewestConnections(env)
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		seen[p.Initial(0)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("tied loads should rotate over all nodes, got %v", seen)
	}
}

func TestFewestConnectionsSkipsDead(t *testing.T) {
	env := newFakeEnv(3)
	p := NewFewestConnections(env)
	env.dead[0] = true
	env.loads = []int{0, 4, 2}
	if got := p.Initial(0); got != 2 {
		t.Fatalf("Initial = %d, want 2 (node 0 dead)", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	env := newFakeEnv(3)
	r := NewRoundRobin(env)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, r.Next())
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsDead(t *testing.T) {
	env := newFakeEnv(3)
	r := NewRoundRobin(env)
	env.dead[1] = true
	var got []int
	for i := 0; i < 4; i++ {
		got = append(got, r.Next())
	}
	want := []int{0, 2, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestLARDRoutesEverythingThroughFrontEnd(t *testing.T) {
	env := newFakeEnv(4)
	l := NewLARD(env, DefaultLARDOptions())
	if l.FrontEnd() != 0 {
		t.Fatalf("FrontEnd = %d, want 0", l.FrontEnd())
	}
	for f := FileID(0); f < 10; f++ {
		if got := l.Initial(f); got != 0 {
			t.Fatalf("Initial = %d, want front-end 0", got)
		}
		svc := l.Service(0, f)
		if svc == 0 {
			t.Fatal("front-end must not service requests")
		}
	}
}

func TestLARDSingleNodeDegenerates(t *testing.T) {
	env := newFakeEnv(1)
	l := NewLARD(env, DefaultLARDOptions())
	if l.FrontEnd() != -1 {
		t.Fatal("single-node LARD has no front-end")
	}
	if l.Initial(1) != 0 || l.Service(0, 1) != 0 {
		t.Fatal("single-node LARD must serve locally")
	}
	l.OnComplete(0, 1) // must not send messages
	if env.sent != 0 {
		t.Fatal("single-node LARD must not message anyone")
	}
}

func TestLARDStickyAssignment(t *testing.T) {
	env := newFakeEnv(5)
	l := NewLARD(env, DefaultLARDOptions())
	first := l.Service(0, 42)
	l.OnAssign(first)
	// Subsequent requests for the same target stay on the same back-end
	// while it is not overloaded.
	for i := 0; i < 10; i++ {
		got := l.Service(0, 42)
		if got != first {
			t.Fatalf("request %d moved to %d, want sticky %d", i, got, first)
		}
		l.OnAssign(got)
	}
	// Distinct targets spread across back-ends (least-loaded placement).
	other := l.Service(0, 43)
	if other == first {
		t.Fatalf("new target placed on the loaded node %d", first)
	}
}

func TestLARDReplicatesWhenOverloaded(t *testing.T) {
	env := newFakeEnv(5)
	opts := DefaultLARDOptions()
	l := NewLARD(env, opts)
	first := l.Service(0, 7)
	// Push the assigned node past THigh while others stay idle.
	for i := 0; i <= opts.THigh; i++ {
		l.OnAssign(first)
	}
	second := l.Service(0, 7)
	if second == first {
		t.Fatal("overloaded server set did not replicate")
	}
	if sizes := l.SetSizes(); sizes[2] != 1 {
		t.Fatalf("set sizes = %v, want one set of size 2", sizes)
	}
}

func TestLARDBasicReassignsInsteadOfReplicating(t *testing.T) {
	env := newFakeEnv(5)
	opts := DefaultLARDOptions()
	opts.Replication = false
	l := NewLARD(env, opts)
	first := l.Service(0, 7)
	for i := 0; i <= opts.THigh; i++ {
		l.OnAssign(first)
	}
	second := l.Service(0, 7)
	if second == first {
		t.Fatal("overloaded server did not move")
	}
	if sizes := l.SetSizes(); sizes[1] != 1 || sizes[2] != 0 {
		t.Fatalf("basic LARD must keep singleton sets, got %v", sizes)
	}
	if l.Name() != "lard-basic" {
		t.Fatalf("Name = %q", l.Name())
	}
}

func TestLARDShrinksStableSets(t *testing.T) {
	env := newFakeEnv(5)
	opts := DefaultLARDOptions()
	l := NewLARD(env, opts)
	first := l.Service(0, 7)
	for i := 0; i <= opts.THigh; i++ {
		l.OnAssign(first)
	}
	l.Service(0, 7) // replicates
	env.now = opts.ShrinkAfter + 1
	l.Service(0, 7)
	if sizes := l.SetSizes(); sizes[1] != 1 {
		t.Fatalf("stable set did not shrink: %v", sizes)
	}
}

func TestLARDBatchedLoadUpdates(t *testing.T) {
	env := newFakeEnv(3)
	env.defer_ = true
	opts := DefaultLARDOptions()
	l := NewLARD(env, opts)
	svc := l.Service(0, 1)
	for i := 0; i < 8; i++ {
		l.OnAssign(svc)
	}
	// Three completions: below the batch of 4, no message.
	for i := 0; i < 3; i++ {
		l.OnComplete(svc, 1)
	}
	if env.sent != 0 {
		t.Fatalf("sent %d messages before the batch filled", env.sent)
	}
	l.OnComplete(svc, 1)
	if env.sent != 1 {
		t.Fatalf("sent %d messages, want 1 after 4 completions", env.sent)
	}
	before := l.feLoad[svc]
	env.flush()
	if l.feLoad[svc] != before-4 {
		t.Fatalf("front-end view = %d, want %d", l.feLoad[svc], before-4)
	}
}

func TestLARDAvoidsDeadBackends(t *testing.T) {
	env := newFakeEnv(4)
	l := NewLARD(env, DefaultLARDOptions())
	svc := l.Service(0, 9)
	env.dead[svc] = true
	got := l.Service(0, 9)
	if got == svc {
		t.Fatal("LARD kept routing to a dead back-end")
	}
}

func TestLARDBadThresholdsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad thresholds did not panic")
		}
	}()
	NewLARD(newFakeEnv(2), LARDOptions{TLow: 10, THigh: 5, UpdateBatch: 4})
}

func TestDispatchLARDStructure(t *testing.T) {
	env := newFakeEnv(5)
	d := NewDispatchLARD(env, DefaultLARDOptions(), 0.0001)
	if d.Name() != "lard-dispatch" {
		t.Fatalf("Name = %q", d.Name())
	}
	if d.FrontEnd() != 0 {
		t.Fatal("dispatcher must be node 0")
	}
	// Connections never land on the dispatcher.
	for i := 0; i < 20; i++ {
		if d.Initial(0) == 0 {
			t.Fatal("connection accepted at the dispatcher")
		}
	}
	// Decisions never pick the dispatcher as service node.
	for f := FileID(0); f < 20; f++ {
		if svc := d.Service(d.Initial(f), f); svc == 0 {
			t.Fatal("dispatcher chosen as service node")
		}
	}
	node, cpu := d.Dispatcher()
	if node != 0 || cpu != 0.0001 {
		t.Fatalf("Dispatcher = (%d, %v)", node, cpu)
	}
}

func TestDispatchLARDSingleNode(t *testing.T) {
	env := newFakeEnv(1)
	d := NewDispatchLARD(env, DefaultLARDOptions(), 0.0001)
	if d.FrontEnd() != -1 || d.Initial(0) != 0 || d.Service(0, 0) != 0 {
		t.Fatal("single-node dispatcher must degenerate to local service")
	}
}
