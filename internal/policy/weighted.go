package policy

// Heterogeneity-aware policy variants. On a cluster with per-node hardware
// profiles, the simulator derives each node's relative capacity from the
// analytic model (server.Run fills Options.Weights, normalized to mean 1)
// and these variants compare load/weight instead of raw load: a node with
// twice the capacity is considered equally loaded at twice the
// connections. With nil weights every variant reduces exactly to its
// unweighted base, because each comparison divides by exactly 1.0.

// WLC is weighted least connections — the heterogeneity-aware form of the
// traditional server: an idealized layer-4 switch assigns every new
// connection to the live node minimizing load/weight, rotating among ties.
// Nothing is ever forwarded, so it isolates what capacity-aware assignment
// alone buys on a heterogeneous cluster.
type WLC struct {
	env     Env
	weights []float64
	next    int // rotating tie-break so simultaneous arrivals spread out
}

// NewWLC builds the weighted-least-connections policy. weights must have
// one entry per node (see Options.Weights); nil means uniform capacities,
// which makes WLC behave exactly like FewestConnections.
func NewWLC(env Env, weights []float64) *WLC {
	p := &WLC{env: env}
	if len(weights) == env.N() {
		p.weights = weights
	}
	return p
}

// Name implements Distributor.
func (p *WLC) Name() string { return "wlc" }

// FrontEnd implements Distributor: no dedicated front-end.
func (p *WLC) FrontEnd() int { return -1 }

func (p *WLC) weight(n int) float64 {
	if p.weights == nil {
		return 1
	}
	return p.weights[n]
}

// Initial assigns the connection to the live node with the lowest
// capacity-scaled load, rotating among ties.
func (p *WLC) Initial(f FileID) int {
	n := p.env.N()
	best := -1
	var bestLoad float64
	for i := 0; i < n; i++ {
		cand := (p.next + i) % n
		if !p.env.Alive(cand) {
			continue
		}
		if l := float64(p.env.Load(cand)) / p.weight(cand); best < 0 || l < bestLoad {
			best, bestLoad = cand, l
		}
	}
	if best < 0 {
		best = 0 // whole cluster down; the simulator aborts the request
	}
	p.next = (best + 1) % n
	return best
}

// Service implements Distributor: the initial node services the request.
func (p *WLC) Service(initial int, f FileID) int { return initial }

// OnAssign implements Distributor.
func (p *WLC) OnAssign(n int) {}

// OnComplete implements Distributor.
func (p *WLC) OnComplete(n int, f FileID) {}

func init() {
	Register("wlc", func(env Env, o Options) (Distributor, error) {
		return NewWLC(env, o.NodeWeights(env.N())), nil
	})
	Register("lard-weighted", func(env Env, o Options) (Distributor, error) {
		l := o.lard()
		if err := l.Validate(); err != nil {
			return nil, err
		}
		d := NewWeightedLARD(env, l, o.NodeWeights(env.N()))
		d.ReserveFiles(o.Files)
		return d, nil
	})
	RegisterParams("lard-weighted", lardParams()...)
}
