package policy

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/policy/policytest"
)

func TestChashPresets(t *testing.T) {
	env := policytest.New(8)
	for name, want := range map[string]ChashOptions{
		"chash":         {VNodes: 128, D: 1},
		"chash-bounded": {VNodes: 128, BoundC: 1.25, D: 1},
		"chash-d":       {VNodes: 128, D: 2},
	} {
		d, err := NewNamed(name, env, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := d.(*CHash)
		if p.opts != want {
			t.Errorf("%s defaults %+v, want %+v", name, p.opts, want)
		}
		if p.Name() != name {
			t.Errorf("%s reports Name %q", name, p.Name())
		}
	}
}

func TestChashOptionsValidate(t *testing.T) {
	for _, bad := range []ChashOptions{
		{VNodes: 0, D: 1},
		{VNodes: 5000, D: 1},
		{VNodes: 128, D: 0},
		{VNodes: 128, D: 17},
		{VNodes: 128, D: 1, BoundC: 1},
		{VNodes: 128, D: 1, BoundC: 9},
	} {
		if bad.Validate() == nil {
			t.Errorf("%+v must fail validation", bad)
		}
	}
	good := ChashOptions{VNodes: 128, D: 2, BoundC: 1.25}
	if err := good.Validate(); err != nil {
		t.Errorf("%+v: %v", good, err)
	}
}

// TestRingDeterministic pins the weighted-vnode ring as a pure function of
// cluster shape: byte-identical across repeated builds and across
// GOMAXPROCS settings (no map iteration, RNG, or goroutine order anywhere
// in construction).
func TestRingDeterministic(t *testing.T) {
	weights := []float64{2, 1, 0.5, 0.5, 1, 1, 1, 1}
	ref := buildRing(8, 128, weights)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		if got := buildRing(8, 128, weights); !reflect.DeepEqual(got, ref) {
			t.Fatalf("ring differs at GOMAXPROCS=%d", procs)
		}
	}
	if got := buildRing(8, 128, append([]float64(nil), weights...)); !reflect.DeepEqual(got, ref) {
		t.Fatal("ring differs across identical rebuilds")
	}
}

func TestRingWeightedVnodeCounts(t *testing.T) {
	weights := []float64{2, 1, 0.25, 0.001}
	ring := buildRing(4, 128, weights)
	counts := make([]int, 4)
	for _, pt := range ring {
		counts[pt.node]++
	}
	want := []int{256, 128, 32, 1} // max(1, round(128*w))
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("vnode counts %v, want %v", counts, want)
	}
}

func TestChashOwnerStableAndLocalityPreserving(t *testing.T) {
	env := policytest.New(8)
	d, err := NewNamed("chash", env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The owner of a file never moves while membership is stable,
	// regardless of load or which node the connection arrived at.
	for f := FileID(0); f < 200; f++ {
		first := d.Service(0, f)
		env.Loads[first] = 1000
		if again := d.Service(3, f); again != first {
			t.Fatalf("file %d moved %d -> %d with stable membership", f, first, again)
		}
		env.Loads[first] = 0
	}
}

func TestChashSkipsDeadNodes(t *testing.T) {
	env := policytest.New(8)
	d, _ := NewNamed("chash", env, Options{})
	owners := make([]int, 100)
	for f := range owners {
		owners[f] = d.Service(0, FileID(f))
	}
	dead := owners[0]
	env.Dead[dead] = true
	moved := 0
	for f := range owners {
		got := d.Service(0, FileID(f))
		if got == dead {
			t.Fatalf("file %d assigned to dead node %d", f, dead)
		}
		if got != owners[f] {
			moved++
		}
	}
	// Consistent hashing's point: only the dead node's files move.
	for f := range owners {
		if owners[f] != dead && d.Service(0, FileID(f)) != owners[f] {
			t.Fatalf("file %d owned by live node %d moved anyway", f, owners[f])
		}
	}
	if moved == 0 {
		t.Fatal("no files were owned by the dead node; test vacuous")
	}
}

func TestChashBoundedSpillsOverloadedOwner(t *testing.T) {
	env := policytest.New(8)
	d, err := NewNamed("chash-bounded", env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := d.(*CHash)
	const f = FileID(42)
	owner := d.Service(0, f)
	// Mean load 4 => limit 1.25 * (32+1)/8 ~ 5.16. Overload the owner.
	for i := range env.Loads {
		env.Loads[i] = 4
	}
	p.inflight = 32
	env.Loads[owner] = 40
	spilled := d.Service(0, f)
	if spilled == owner {
		t.Fatalf("owner %d over the bound must spill", owner)
	}
	if float64(env.Loads[spilled]) >= 1.25*33/8 {
		t.Fatalf("spilled to node %d which is itself over the limit", spilled)
	}
	// Under the limit the owner keeps its file.
	env.Loads[owner] = 4
	if got := d.Service(0, f); got != owner {
		t.Fatalf("owner under the bound must keep the file, got %d", got)
	}
}

func TestChashBoundedAllOverloadedPicksLeastLoaded(t *testing.T) {
	env := policytest.New(4)
	d, _ := NewNamed("chash-bounded", env, Options{})
	p := d.(*CHash)
	p.inflight = 400
	for i := range env.Loads {
		env.Loads[i] = 200 + 10*i // everyone far over limit 1.25*401/4
	}
	if got := d.Service(0, FileID(7)); got != 0 {
		t.Fatalf("infeasible bound must fall back to least-loaded node 0, got %d", got)
	}
}

func TestChashDPicksLeastLoadedCandidate(t *testing.T) {
	env := policytest.New(8)
	d, err := NewNamed("chash-d", env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for f := FileID(0); f < 100; f++ {
		// Make candidate loads distinct: whatever the d candidates are, the
		// chosen one must have load <= the plain-chash owner's.
		for i := range env.Loads {
			env.Loads[i] = i * 10
		}
		got := d.Service(0, f)
		plain, _ := NewNamed("chash", env, Options{})
		owner := plain.Service(0, f)
		if env.Loads[got] > env.Loads[owner] {
			t.Fatalf("file %d: d-choices picked load %d over owner load %d",
				f, env.Loads[got], env.Loads[owner])
		}
	}
}

func TestChashDOneDegradesToPlain(t *testing.T) {
	env := policytest.New(8)
	plain, _ := NewNamed("chash", env, Options{})
	one, err := New(MustParseSpec("chash:d=1"), env)
	if err != nil {
		t.Fatal(err)
	}
	for f := FileID(0); f < 500; f++ {
		if plain.Service(0, f) != one.Service(0, f) {
			t.Fatalf("file %d diverged", f)
		}
	}
	// The chash-d preset refills d<=1 back to its signature default.
	d2, err := New(MustParseSpec("chash-d:d=1"), env)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.(*CHash).opts.D; got != 2 {
		t.Fatalf("chash-d with d=1 kept D=%d, preset should restore 2", got)
	}
}

// rateEnv wraps the fake Env with per-pair line rates for proximity tests.
type rateEnv struct {
	*policytest.Env
	rate func(a, b int) float64
}

func (e *rateEnv) PairRateKBps(a, b int) float64 { return e.rate(a, b) }

func TestChashProximityBiasesTowardFastPairs(t *testing.T) {
	base := policytest.New(8)
	env := &rateEnv{Env: base, rate: func(a, b int) float64 { return 128000 }}
	d, err := New(MustParseSpec("chash:d=4,prox=true"), env)
	if err != nil {
		t.Fatal(err)
	}
	p := d.(*CHash)
	if p.rates == nil {
		t.Fatal("proximity policy did not pick up the PairRater environment")
	}
	moved := 0
	for f := FileID(0); f < 50; f++ {
		env.rate = func(a, b int) float64 { return 128000 }
		fast := d.Service(0, f) // uniform rates: plain least-loaded choice
		// Make every pair involving that winner crawl: unless all d
		// candidates hash to the same node, the pick must move.
		env.rate = func(a, b int) float64 {
			if b == fast {
				return 1
			}
			return 128000
		}
		if d.Service(0, f) != fast {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("proximity bias never moved a pick off a 128000x slower link")
	}
}

func TestChashProximityWithoutRaterFallsBack(t *testing.T) {
	d, err := New(MustParseSpec("chash:d=2,prox=true"), policytest.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if d.(*CHash).rates != nil {
		t.Fatal("plain Env cannot rate pairs; rates must stay nil")
	}
	if got := d.Service(0, FileID(3)); got < 0 || got > 7 {
		t.Fatalf("fallback service out of range: %d", got)
	}
}

func TestChashInflightTracking(t *testing.T) {
	env := policytest.New(4)
	d, _ := NewNamed("chash-bounded", env, Options{})
	p := d.(*CHash)
	d.OnAssign(1)
	d.OnAssign(2)
	if p.inflight != 2 {
		t.Fatalf("inflight %d after two assigns", p.inflight)
	}
	d.OnComplete(1, FileID(0))
	if p.inflight != 1 {
		t.Fatalf("inflight %d after a completion", p.inflight)
	}
}

func TestChashRoundRobinArrival(t *testing.T) {
	env := policytest.New(4)
	d, _ := NewNamed("chash", env, Options{})
	if d.FrontEnd() != -1 {
		t.Fatal("chash has no dedicated front-end")
	}
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[d.Initial(FileID(i))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("round-robin arrival hit %d of 4 nodes", len(seen))
	}
}
