package policy

// FewestConnections is the traditional, locality-oblivious server of the
// paper's evaluation: an idealized layer-4 switch assigns every new
// connection to the node with the fewest open connections, and each node
// services its own requests from an independent cache. Nothing is ever
// forwarded.
type FewestConnections struct {
	env  Env
	next int // rotating tie-break so simultaneous arrivals spread out
	all  []int
}

// NewFewestConnections builds the traditional policy.
func NewFewestConnections(env Env) *FewestConnections {
	all := make([]int, env.N())
	for i := range all {
		all[i] = i
	}
	return &FewestConnections{env: env, all: all}
}

// Name implements Distributor.
func (p *FewestConnections) Name() string { return "traditional" }

// FrontEnd implements Distributor: no dedicated front-end.
func (p *FewestConnections) FrontEnd() int { return -1 }

// Initial assigns the connection to the least-loaded live node, rotating
// among ties.
func (p *FewestConnections) Initial(f FileID) int {
	n := p.env.N()
	best, bestLoad := -1, int(^uint(0)>>1)
	for i := 0; i < n; i++ {
		cand := (p.next + i) % n
		if !p.env.Alive(cand) {
			continue
		}
		if l := p.env.Load(cand); l < bestLoad {
			best, bestLoad = cand, l
		}
	}
	if best < 0 {
		best = 0 // whole cluster down; the simulator aborts the request
	}
	p.next = (best + 1) % n
	return best
}

// Service implements Distributor: the initial node services the request.
func (p *FewestConnections) Service(initial int, f FileID) int { return initial }

// OnAssign implements Distributor.
func (p *FewestConnections) OnAssign(n int) {}

// OnComplete implements Distributor.
func (p *FewestConnections) OnComplete(n int, f FileID) {}

// RoundRobin models request arrival via round-robin DNS, the standard
// mechanism L2S assumes for spreading connections over the cluster. Dead
// nodes are skipped (the paper's DNS would eventually stop handing out a
// crashed node's address).
type RoundRobin struct {
	env  Env
	next int
}

// NewRoundRobin builds a round-robin arrival policy over all nodes.
func NewRoundRobin(env Env) *RoundRobin {
	return &RoundRobin{env: env}
}

// Next returns the next node in rotation, skipping dead nodes.
func (r *RoundRobin) Next() int {
	n := r.env.N()
	for i := 0; i < n; i++ {
		cand := (r.next + i) % n
		if r.env.Alive(cand) {
			r.next = (cand + 1) % n
			return cand
		}
	}
	return 0
}
