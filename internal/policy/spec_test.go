package policy

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecPlainNamesMatchRegistry(t *testing.T) {
	for _, name := range Names() {
		spec, err := ParseSpec(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if spec.Name != name || spec.String() != name {
			t.Errorf("%s parsed to %q (canonical %q)", name, spec.Name, spec)
		}
	}
}

func TestParseSpecResolvesAliases(t *testing.T) {
	for alias, want := range map[string]string{"trad": "traditional", "chash-d2": "chash-d"} {
		spec, err := ParseSpec(alias)
		if err != nil {
			t.Fatalf("%s: %v", alias, err)
		}
		if spec.Name != want {
			t.Errorf("alias %s resolved to %q, want %q", alias, spec.Name, want)
		}
	}
}

func TestParseSpecExample(t *testing.T) {
	spec, err := ParseSpec("chash:vnodes=64,load=1.25,d=2,prox=true")
	if err != nil {
		t.Fatal(err)
	}
	got := spec.Options(Options{}).Chash
	want := ChashOptions{VNodes: 64, BoundC: 1.25, D: 2, Proximity: true}
	if got != want {
		t.Fatalf("spec applied %+v, want %+v", got, want)
	}
	d, err := New(spec, newFakeEnv(4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "chash" {
		t.Errorf("built %q", d.Name())
	}
}

func TestSpecOptionsKeepFamilyDefaults(t *testing.T) {
	spec := MustParseSpec("lard:thigh=80")
	l := spec.Options(Options{}).LARD
	if l.THigh != 80 {
		t.Errorf("thigh not applied: %+v", l)
	}
	if l.TLow != 25 || l.UpdateBatch != 4 || !l.Replication {
		t.Errorf("setting one key must keep published defaults for the rest: %+v", l)
	}
}

func TestSpecStringRoundTrips(t *testing.T) {
	for _, s := range []string{
		"chash:vnodes=64,load=1.25,d=2,prox=true",
		"lard:tlow=10,thigh=80",
		"lard-dispatch:query=0.0002",
		"random:seed=99",
		"cached-dns:ttl=10",
	} {
		spec := MustParseSpec(s)
		if spec.String() != s {
			t.Errorf("canonical form of %q is %q", s, spec)
		}
		again := MustParseSpec(spec.String())
		if again.String() != spec.String() ||
			!reflect.DeepEqual(again.Options(Options{}), spec.Options(Options{})) {
			t.Errorf("%q did not round-trip", s)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",                     // empty name
		"   ",                  // blank name
		"nope",                 // unknown policy
		"nope:vnodes=1",        // unknown policy with params
		"chash:",               // empty parameter list
		"chash:vnodes",         // not key=value
		"chash:=1",             // empty key
		"chash:fanout=3",       // unknown key
		"traditional:vnodes=1", // family with no params
		"chash:vnodes=0",       // below range
		"chash:vnodes=5000",    // above range
		"chash:vnodes=1e2",     // not an integer
		"chash:vnodes=12abc",   // trailing garbage
		"chash:load=1",         // exclusive lower bound
		"chash:load=9",         // above range
		"chash:load=nan",       // not finite
		"chash:load=+Inf",      // not finite
		"chash:d=0",            // below range
		"chash:d=17",           // above range
		"chash:prox=maybe",     // not a bool
		"chash:d=2,d=3",        // repeated key
		"lard:tlow=0",          // below range
		"chash:vnodes=" + strings.Repeat("1", 600), // over length cap
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) must fail", bad)
		}
	}
}

func TestParseSpecUnknownKeyListsAccepted(t *testing.T) {
	_, err := ParseSpec("chash:fanout=3")
	if err == nil {
		t.Fatal("unknown key must error")
	}
	for _, key := range []string{"vnodes", "load", "d", "prox"} {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("error should list accepted key %q: %v", key, err)
		}
	}
}

func TestParseSpecUnknownNameListsAliases(t *testing.T) {
	_, err := ParseSpec("no-such-policy")
	if err == nil {
		t.Fatal("unknown policy must error")
	}
	msg := err.Error()
	for _, want := range []string{"trad (= traditional)", "chash-d2 (= chash-d)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("unknown-policy error should advertise %q: %v", want, err)
		}
	}
	for _, n := range Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("unknown-policy error missing %q: %v", n, err)
		}
	}
}

func TestNamesAndAliasesSortedAndMarked(t *testing.T) {
	all := NamesAndAliases()
	got := map[string]bool{}
	for _, n := range all {
		got[n] = true
	}
	for _, name := range Names() {
		if !got[name] {
			t.Errorf("NamesAndAliases missing canonical %q", name)
		}
	}
	if !got["trad (= traditional)"] {
		t.Errorf("NamesAndAliases must mark aliases: %v", all)
	}
}

func TestSpecBuildMatchesNewNamed(t *testing.T) {
	for _, name := range Names() {
		if name == "l2s" || name == "l2s-weighted" {
			continue // registered by package core, not linked into this test
		}
		env := newFakeEnv(4)
		viaSpec, err := New(MustParseSpec(name), env)
		if err != nil {
			t.Errorf("%s via spec: %v", name, err)
			continue
		}
		viaName, err := NewNamed(name, env, Options{})
		if err != nil {
			t.Errorf("%s via NewNamed: %v", name, err)
			continue
		}
		if viaSpec.Name() != viaName.Name() {
			t.Errorf("%s: spec built %q, NewNamed built %q", name, viaSpec.Name(), viaName.Name())
		}
	}
}

func TestSplitSpecs(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []string
	}{
		{"l2s", []string{"l2s"}},
		{"l2s,lard", []string{"l2s", "lard"}},
		{"chash:vnodes=64,load=1.25,l2s", []string{"chash:vnodes=64,load=1.25", "l2s"}},
		{"lard,chash:d=2,prox=true,trad", []string{"lard", "chash:d=2,prox=true", "trad"}},
		{"chash:vnodes=64,hashing,l2s:delta=8", []string{"chash:vnodes=64", "hashing", "l2s:delta=8"}},
	} {
		if got := SplitSpecs(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitSpecs(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRegisterParamsRejectsUnknownPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RegisterParams on an unregistered name must panic")
		}
	}()
	RegisterParams("never-registered", Param{Key: "x", Apply: func(*Options, float64) {}})
}
