package policy

import "repro/internal/fastmap"

// fileSet is FileSets' per-file record, 16 bytes and pointer-free: the
// common single-server set is stored inline in first, and only replicated
// sets point (by index, not pointer) into the spill arena.
type fileSet struct {
	first    int32 // the sole member when spill < 0
	spill    int32 // index into the spill arena, or -1
	modified float64
}

// FileSets maps files to their server sets — the per-file state both LARD/R
// and L2S maintain. At paper scale a map of heap-allocated node slices is
// fine; at F=10^7 it is the simulator's largest allocation (a pointer, a
// slice header, and a backing array per file, all GC-scanned). FileSets
// stores the dominant single-server case inline in a flat open-addressed
// table and spills only replicated sets (a small fraction of files under
// both algorithms) to a free-listed arena, cutting per-file cost to 16
// contiguous bytes with zero GC pressure.
//
// Members keep strict insertion order — growth appends, shrinking removes
// by position — so policies that scan sets in order decide identically to
// the slice-per-file representation they replace.
type FileSets struct {
	m     *fastmap.Map[fileSet]
	spill [][]int32
	free  []int32  // recycled spill slots
	one   [1]int32 // scratch backing for singleton views
}

// NewFileSets returns an empty table pre-sized for hint files (0 for
// grow-as-needed).
func NewFileSets(hint int) *FileSets {
	fs := &FileSets{m: fastmap.New[fileSet](0)}
	if hint > 0 {
		fs.m.Reserve(hint)
	}
	return fs
}

// Len returns the number of files with a set.
func (s *FileSets) Len() int { return s.m.Len() }

// Reserve pre-sizes the table for n files without further rehashing.
func (s *FileSets) Reserve(n int) { s.m.Reserve(n) }

// Nodes returns the file's server set in insertion order, or nil when the
// file has none. The returned slice is a view: it is valid only until the
// next mutating call on s, and must not be modified by the caller.
func (s *FileSets) Nodes(f int32) []int32 {
	e, ok := s.m.Get(f)
	if !ok {
		return nil
	}
	if e.spill < 0 {
		s.one[0] = e.first
		return s.one[:1]
	}
	return s.spill[e.spill]
}

// Modified returns when the file's set last changed (0 for no set).
func (s *FileSets) Modified(f int32) float64 {
	e, _ := s.m.Get(f)
	return e.modified
}

// SetSingle makes the file's set exactly {n}, releasing any spill storage,
// and stamps the modification time.
func (s *FileSets) SetSingle(f int32, n int, now float64) {
	if e, ok := s.m.Get(f); ok && e.spill >= 0 {
		s.release(e.spill)
	}
	s.m.Put(f, fileSet{first: int32(n), spill: -1, modified: now})
}

// Append adds n at the end of the file's set and stamps the modification
// time. Appending to a file with no set creates {n}.
func (s *FileSets) Append(f int32, n int, now float64) {
	e, ok := s.m.Get(f)
	if !ok {
		s.SetSingle(f, n, now)
		return
	}
	if e.spill < 0 {
		idx := s.alloc()
		s.spill[idx] = append(s.spill[idx], e.first, int32(n))
		s.m.Put(f, fileSet{first: e.first, spill: idx, modified: now})
		return
	}
	s.spill[e.spill] = append(s.spill[e.spill], int32(n))
	e.modified = now
	s.m.Put(f, e)
}

// RemoveAt deletes the member at position i (insertion order) from a
// replicated set and stamps the modification time. A set shrunk to one
// member moves back inline and its spill slot is recycled.
func (s *FileSets) RemoveAt(f int32, i int, now float64) {
	e, ok := s.m.Get(f)
	if !ok || e.spill < 0 {
		return
	}
	sp := s.spill[e.spill]
	sp = append(sp[:i], sp[i+1:]...)
	if len(sp) == 1 {
		first := sp[0]
		s.release(e.spill)
		s.m.Put(f, fileSet{first: first, spill: -1, modified: now})
		return
	}
	s.spill[e.spill] = sp
	e.modified = now
	s.m.Put(f, e)
}

// Touch stamps the file's modification time without changing membership.
func (s *FileSets) Touch(f int32, now float64) {
	if e, ok := s.m.Get(f); ok {
		e.modified = now
		s.m.Put(f, e)
	}
}

// RangeSizes calls fn with every file's set size until fn returns false.
// Iteration order is unspecified.
func (s *FileSets) RangeSizes(fn func(f int32, size int) bool) {
	s.m.Range(func(f int32, e fileSet) bool {
		size := 1
		if e.spill >= 0 {
			size = len(s.spill[e.spill])
		}
		return fn(f, size)
	})
}

func (s *FileSets) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.spill = append(s.spill, nil)
	return int32(len(s.spill) - 1)
}

func (s *FileSets) release(idx int32) {
	s.spill[idx] = s.spill[idx][:0]
	s.free = append(s.free, idx)
}
