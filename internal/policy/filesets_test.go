package policy

import (
	"math/rand"
	"testing"
)

// refSets is the slice-per-file representation FileSets replaces, used as
// the differential oracle.
type refSets struct {
	nodes    map[int32][]int32
	modified map[int32]float64
}

func newRefSets() *refSets {
	return &refSets{nodes: map[int32][]int32{}, modified: map[int32]float64{}}
}

// TestFileSetsDifferential drives FileSets and the reference through a long
// random schedule of the exact operations LARD and L2S perform — create,
// replace, append (including duplicate members), positional remove, touch —
// and checks membership order and modification times after every step.
func TestFileSetsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	fs := NewFileSets(0)
	ref := newRefSets()
	now := 0.0
	const files = 60
	for step := 0; step < 40_000; step++ {
		now += rng.Float64()
		f := int32(rng.Intn(files))
		n := rng.Intn(16)
		switch rng.Intn(5) {
		case 0:
			fs.SetSingle(f, n, now)
			ref.nodes[f] = []int32{int32(n)}
			ref.modified[f] = now
		case 1:
			fs.Append(f, n, now)
			ref.nodes[f] = append(ref.nodes[f], int32(n))
			ref.modified[f] = now
		case 2:
			if sz := len(ref.nodes[f]); sz > 1 {
				i := rng.Intn(sz)
				fs.RemoveAt(f, i, now)
				ref.nodes[f] = append(ref.nodes[f][:i], ref.nodes[f][i+1:]...)
				ref.modified[f] = now
			}
		case 3:
			if len(ref.nodes[f]) > 0 {
				fs.Touch(f, now)
				ref.modified[f] = now
			}
		case 4:
			got := fs.Nodes(f)
			want := ref.nodes[f]
			if len(got) != len(want) {
				t.Fatalf("step %d file %d: nodes %v, want %v", step, f, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("step %d file %d: nodes %v, want %v", step, f, got, want)
				}
			}
			if m := fs.Modified(f); m != ref.modified[f] {
				t.Fatalf("step %d file %d: modified %v, want %v", step, f, m, ref.modified[f])
			}
		}
	}
	if fs.Len() != len(ref.nodes) {
		t.Fatalf("Len = %d, want %d", fs.Len(), len(ref.nodes))
	}
	sizes := map[int]int{}
	fs.RangeSizes(func(_ int32, size int) bool {
		sizes[size]++
		return true
	})
	wantSizes := map[int]int{}
	for _, ns := range ref.nodes {
		wantSizes[len(ns)]++
	}
	for k, v := range wantSizes {
		if sizes[k] != v {
			t.Fatalf("size histogram %v, want %v", sizes, wantSizes)
		}
	}
}

// TestFileSetsSpillRecycling pins the memory bound: sets that shrink back
// to one member release their spill slot for reuse, so churn does not grow
// the arena.
func TestFileSetsSpillRecycling(t *testing.T) {
	fs := NewFileSets(0)
	for round := 0; round < 1000; round++ {
		f := int32(round % 10)
		fs.SetSingle(f, 1, 0)
		fs.Append(f, 2, 1)
		fs.Append(f, 3, 2)
		fs.RemoveAt(f, 0, 3)
		fs.RemoveAt(f, 0, 4) // back to a singleton: slot must recycle
		if got := fs.Nodes(f); len(got) != 1 || got[0] != 3 {
			t.Fatalf("round %d: nodes %v, want [3]", round, got)
		}
	}
	if len(fs.spill) > 10 {
		t.Fatalf("spill arena grew to %d slots for 10 files of churn", len(fs.spill))
	}
}

// TestFileSetsReserveNoRehash checks the catalog-sizing path end to end.
func TestFileSetsReserveNoRehash(t *testing.T) {
	fs := NewFileSets(100_000)
	for f := int32(0); f < 100_000; f++ {
		fs.SetSingle(f, int(f%7), 0)
	}
	if fs.m.Grows() != 0 {
		t.Fatalf("%d rehashes after NewFileSets(100000)", fs.m.Grows())
	}
}
