package policy

import (
	"sort"
	"strings"
	"testing"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Errorf("Names() not sorted: %v", names)
	}
	want := []string{"cached-dns", "hashing", "lard", "lard-basic", "lard-dispatch", "random", "traditional"}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("Names() missing %q: %v", w, names)
		}
	}
	if got["trad"] {
		t.Errorf("alias %q must not appear in Names(): %v", "trad", names)
	}
}

func TestUnknownNameListsValid(t *testing.T) {
	_, err := NewNamed("no-such-policy", nil, Options{})
	if err == nil {
		t.Fatal("unknown policy must error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-policy"`) || !strings.Contains(msg, "valid:") {
		t.Errorf("error should name the bad policy and list valid ones: %v", err)
	}
	for _, n := range Names() {
		if !strings.Contains(msg, n) {
			t.Errorf("error listing missing %q: %v", n, err)
		}
	}
}

func TestAliasResolves(t *testing.T) {
	env := newFakeEnv(4)
	d, err := NewNamed("trad", env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "traditional" {
		t.Errorf("alias built %q", d.Name())
	}
}

func TestFactoriesBuildTheRightDistributors(t *testing.T) {
	env := newFakeEnv(4)
	for name, want := range map[string]string{
		"traditional":   "traditional",
		"lard":          "lard",
		"lard-basic":    "lard-basic",
		"lard-dispatch": "lard-dispatch",
		"hashing":       "hashing",
		"random":        "random",
		"cached-dns":    "cached-dns",
	} {
		d, err := NewNamed(name, env, Options{})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if d.Name() != want {
			t.Errorf("%s: built %q, want %q", name, d.Name(), want)
		}
	}
}

func TestLARDBasicDisablesReplication(t *testing.T) {
	opts := Options{LARD: DefaultLARDOptions()}
	opts.LARD.Replication = true
	d, err := NewNamed("lard-basic", newFakeEnv(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "lard-basic" {
		t.Errorf("lard-basic must force Replication=false, built %q", d.Name())
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register must panic")
		}
	}()
	Register("traditional", func(env Env, opts Options) (Distributor, error) {
		return nil, nil
	})
}

func TestLARDOptionsValidate(t *testing.T) {
	good := DefaultLARDOptions()
	if err := good.Validate(); err != nil {
		t.Errorf("defaults must validate: %v", err)
	}
	bad := good
	bad.THigh = good.TLow - 1
	if bad.Validate() == nil {
		t.Error("THigh < TLow must fail validation")
	}
}
