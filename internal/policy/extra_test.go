package policy

import (
	"testing"
)

func TestHashingIsDeterministicAndSpread(t *testing.T) {
	env := newFakeEnv(8)
	p := NewHashing(env)
	seen := make(map[int]int)
	for f := FileID(0); f < 800; f++ {
		a := p.Service(0, f)
		b := p.Service(3, f)
		if a != b {
			t.Fatalf("file %d hashed to %d and %d", f, a, b)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("node %d out of range", a)
		}
		seen[a]++
	}
	// splitmix64 should spread 800 files roughly evenly over 8 nodes.
	for n, c := range seen {
		if c < 50 || c > 150 {
			t.Errorf("node %d got %d files, expected near 100", n, c)
		}
	}
}

func TestHashingRehashesDeadNodes(t *testing.T) {
	env := newFakeEnv(4)
	p := NewHashing(env)
	home := p.Service(0, 7)
	env.dead[home] = true
	alt := p.Service(0, 7)
	if alt == home {
		t.Fatal("dead home node still selected")
	}
	if !env.Alive(alt) {
		t.Fatal("rehash chose a dead node")
	}
}

func TestHashingInitialRoundRobins(t *testing.T) {
	env := newFakeEnv(3)
	p := NewHashing(env)
	if p.Initial(0) != 0 || p.Initial(0) != 1 || p.Initial(0) != 2 {
		t.Fatal("initial nodes must rotate")
	}
	if p.FrontEnd() != -1 || p.Name() != "hashing" {
		t.Fatal("metadata wrong")
	}
}

func TestRandomStaysLocalAndInRange(t *testing.T) {
	env := newFakeEnv(5)
	p := NewRandom(env, 1)
	counts := make([]int, 5)
	for i := 0; i < 1000; i++ {
		n := p.Initial(0)
		if n < 0 || n >= 5 {
			t.Fatalf("node %d out of range", n)
		}
		if p.Service(n, 0) != n {
			t.Fatal("random policy must serve locally")
		}
		counts[n]++
	}
	for n, c := range counts {
		if c < 100 || c > 320 {
			t.Errorf("node %d got %d arrivals, expected near 200", n, c)
		}
	}
}

func TestRandomSkipsDead(t *testing.T) {
	env := newFakeEnv(3)
	env.dead[1] = true
	p := NewRandom(env, 2)
	for i := 0; i < 100; i++ {
		if p.Initial(0) == 1 {
			t.Fatal("random policy selected a dead node")
		}
	}
}

func TestCachedDNSPinsClients(t *testing.T) {
	env := newFakeEnv(4)
	p := NewCachedDNS(env, 10)
	p.SetNextClient(7)
	first := p.Initial(0)
	for i := 0; i < 9; i++ {
		p.SetNextClient(7)
		if got := p.Initial(0); got != first {
			t.Fatalf("request %d moved to %d before TTL expiry, want %d", i, got, first)
		}
	}
	// 11th request: the cached translation expired; the rotation moved on.
	p.SetNextClient(7)
	if got := p.Initial(0); got == first {
		t.Fatal("translation did not refresh after TTL")
	}
}

func TestCachedDNSDistinctClientsRotate(t *testing.T) {
	env := newFakeEnv(4)
	p := NewCachedDNS(env, 100)
	var got []int
	for c := int32(0); c < 4; c++ {
		p.SetNextClient(c)
		got = append(got, p.Initial(0))
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clients pinned to %v, want rotation %v", got, want)
		}
	}
}

func TestCachedDNSAbandonsDeadPins(t *testing.T) {
	env := newFakeEnv(3)
	p := NewCachedDNS(env, 1000)
	p.SetNextClient(1)
	pin := p.Initial(0)
	env.dead[pin] = true
	p.SetNextClient(1)
	if got := p.Initial(0); got == pin {
		t.Fatal("client still pinned to a dead node")
	}
}
