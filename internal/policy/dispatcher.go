package policy

// DispatchLARD is the scalable LARD variant of Aron et al. (USENIX 2000)
// that the paper's Section 6 discusses: client connections are accepted by
// all cluster nodes (round-robin DNS here), but every distribution
// decision is still centralized — the accepting node queries a dedicated
// dispatcher, which runs the LARD/R mapping and names the service node,
// and the connection is then handed off directly.
//
// This removes the original front-end's accept/parse bottleneck (the
// dispatcher only answers tiny queries), but, as the paper argues, keeps
// its other problems: the dispatcher remains a single point of failure and
// a (higher) bottleneck, its cache is still wasted, and every request pays
// a two-way query on top of the hand-off.
type DispatchLARD struct {
	lard *LARD
	rr   *RoundRobin
	env  Env

	// QueryCPUSec is the dispatcher CPU time per decision query.
	QueryCPUSec float64
}

// NewDispatchLARD builds the dispatcher variant: node 0 is the dispatcher,
// nodes 1..N-1 accept and serve.
func NewDispatchLARD(env Env, opts LARDOptions, queryCPU float64) *DispatchLARD {
	return &DispatchLARD{
		lard:        NewLARD(env, opts),
		rr:          NewRoundRobin(env),
		env:         env,
		QueryCPUSec: queryCPU,
	}
}

// ReserveFiles pre-sizes the underlying LARD server-set index.
func (d *DispatchLARD) ReserveFiles(n int) { d.lard.ReserveFiles(n) }

// Name implements Distributor.
func (d *DispatchLARD) Name() string { return "lard-dispatch" }

// FrontEnd implements Distributor: the dispatcher never serves requests,
// but unlike LARD's front-end it does not accept them either, so it is not
// reported as the connection entry point.
func (d *DispatchLARD) FrontEnd() int {
	if d.env.N() == 1 {
		return -1
	}
	return 0
}

// Initial implements Distributor: connections land on the serving nodes
// (1..N-1) round robin.
func (d *DispatchLARD) Initial(f FileID) int {
	n := d.env.N()
	if n == 1 {
		return 0
	}
	for i := 0; i < n; i++ {
		cand := d.rr.Next()
		if cand != 0 {
			return cand
		}
	}
	return 1
}

// Service implements Distributor by consulting the centralized LARD/R
// mapping (the simulator charges the query round trip via Dispatcher).
func (d *DispatchLARD) Service(initial int, f FileID) int {
	return d.lard.Service(0, f)
}

// Dispatcher implements the server.Dispatched hook: every decision costs a
// query to node 0.
func (d *DispatchLARD) Dispatcher() (node int, cpuSec float64) {
	return 0, d.QueryCPUSec
}

// OnAssign implements Distributor.
func (d *DispatchLARD) OnAssign(n int) { d.lard.OnAssign(n) }

// OnComplete implements Distributor.
func (d *DispatchLARD) OnComplete(n int, f FileID) { d.lard.OnComplete(n, f) }
