package policy

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the policy-spec API: the single string form in which every
// CLI and config names a distribution policy together with its tunables,
// replacing ad-hoc flag plumbing into the Options grab bag. A spec reads
//
//	name[:key=value,key=value,...]
//
// e.g. "l2s:T=30,delta=8" or "chash:vnodes=256,load=1.25,d=2". The accepted
// keys are typed and range-checked per policy family: each Register'ed
// factory declares its parameters with RegisterParams, exactly as
// server.ParseProfiles declares the hardware grammar. Parsing never
// constructs a policy; Spec.Build (or New) applies the parsed assignments
// on top of a caller-supplied Options baseline and invokes the registered
// factory, so a spec with no parameters is bit-identical to constructing
// the named policy directly.

// maxSpecLen bounds the accepted spec text; real specs are tens of bytes,
// and the cap keeps hostile inputs (fuzzing, config injection) cheap.
const maxSpecLen = 512

// ParamKind is the type of one spec parameter's value.
type ParamKind int

// The three value shapes a parameter can take.
const (
	IntParam   ParamKind = iota // decimal integer
	FloatParam                  // finite decimal float
	BoolParam                   // true/false/1/0
)

// Param declares one typed, range-checked key a policy family accepts in a
// spec. Values travel as float64 internally (exact for every in-range int
// and bool); Apply writes the validated value into the Options the factory
// will receive.
type Param struct {
	Key  string
	Kind ParamKind
	Doc  string

	// Min and Max bound Int and Float values inclusively; MinExcl makes the
	// lower bound strict (e.g. a bounded-load factor must exceed 1).
	Min, Max float64
	MinExcl  bool

	Apply func(o *Options, v float64)
}

// assignment is one parsed key=value pair of a Spec.
type assignment struct {
	param Param
	val   float64
}

// Spec is a parsed policy spec: the canonical policy name (aliases
// resolved) plus its validated parameter assignments, ready to build
// distributors any number of times.
type Spec struct {
	// Name is the canonical registered policy name.
	Name string

	args []assignment
}

// RegisterParams declares the spec parameters the named policy accepts.
// Like Register it panics on programming errors — an unregistered name, a
// duplicate key, or a missing Apply — because registration happens in init
// functions.
func RegisterParams(name string, params ...Param) {
	registry.Lock()
	defer registry.Unlock()
	if _, ok := registry.factories[name]; !ok {
		panic(fmt.Sprintf("policy: RegisterParams(%q) before Register", name))
	}
	if _, dup := registry.params[name]; dup {
		panic(fmt.Sprintf("policy: duplicate RegisterParams(%q)", name))
	}
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if p.Key == "" || p.Apply == nil {
			panic(fmt.Sprintf("policy: %q declares a parameter without key or Apply", name))
		}
		if seen[p.Key] {
			panic(fmt.Sprintf("policy: %q declares parameter %q twice", name, p.Key))
		}
		seen[p.Key] = true
	}
	registry.params[name] = params
}

// ParseSpec parses and validates a policy spec without constructing a
// policy. Unknown names, unknown keys, malformed values, and out-of-range
// values are all errors that name every accepted alternative.
func ParseSpec(s string) (Spec, error) {
	if len(s) > maxSpecLen {
		return Spec{}, fmt.Errorf("policy: spec longer than %d bytes", maxSpecLen)
	}
	nameText, paramText, hasParams := strings.Cut(s, ":")
	name := strings.TrimSpace(nameText)
	if name == "" {
		return Spec{}, fmt.Errorf("policy: empty policy name in spec %q", s)
	}
	registry.RLock()
	if target, ok := registry.aliases[name]; ok {
		name = target
	}
	_, known := registry.factories[name]
	params := registry.params[name]
	registry.RUnlock()
	if !known {
		return Spec{}, fmt.Errorf("policy: unknown policy %q (valid: %s)",
			name, strings.Join(NamesAndAliases(), ", "))
	}
	spec := Spec{Name: name}
	if !hasParams {
		return spec, nil
	}
	if strings.TrimSpace(paramText) == "" {
		return Spec{}, fmt.Errorf("policy: spec %q has an empty parameter list", s)
	}
	for _, kv := range strings.Split(paramText, ",") {
		keyText, valText, ok := strings.Cut(kv, "=")
		key := strings.TrimSpace(keyText)
		if !ok || key == "" {
			return Spec{}, fmt.Errorf("policy: parameter %q in spec %q is not key=value", kv, s)
		}
		p, found := findParam(params, key)
		if !found {
			return Spec{}, fmt.Errorf("policy: %s has no parameter %q (accepted: %s)",
				name, key, paramKeys(params))
		}
		for _, a := range spec.args {
			if a.param.Key == key {
				return Spec{}, fmt.Errorf("policy: parameter %q repeated in spec %q", key, s)
			}
		}
		v, err := p.parseValue(name, strings.TrimSpace(valText))
		if err != nil {
			return Spec{}, err
		}
		spec.args = append(spec.args, assignment{param: p, val: v})
	}
	return spec, nil
}

// MustParseSpec is ParseSpec for specs known valid at compile time.
func MustParseSpec(s string) Spec {
	spec, err := ParseSpec(s)
	if err != nil {
		panic(err.Error())
	}
	return spec
}

func findParam(params []Param, key string) (Param, bool) {
	for _, p := range params {
		if p.Key == key {
			return p, true
		}
	}
	return Param{}, false
}

func paramKeys(params []Param) string {
	if len(params) == 0 {
		return "none"
	}
	keys := make([]string, len(params))
	for i, p := range params {
		keys[i] = p.Key
	}
	return strings.Join(keys, ", ")
}

// parseValue converts and range-checks one parameter value.
func (p Param) parseValue(policy, text string) (float64, error) {
	switch p.Kind {
	case BoolParam:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return 0, fmt.Errorf("policy: %s parameter %s=%q is not a bool", policy, p.Key, text)
		}
		if b {
			return 1, nil
		}
		return 0, nil
	case IntParam:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("policy: %s parameter %s=%q is not an integer", policy, p.Key, text)
		}
		return p.checkRange(policy, float64(n))
	case FloatParam:
		v, err := strconv.ParseFloat(text, 64)
		if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, fmt.Errorf("policy: %s parameter %s=%q is not a finite number", policy, p.Key, text)
		}
		return p.checkRange(policy, v)
	}
	return 0, fmt.Errorf("policy: %s parameter %s has unknown kind %d", policy, p.Key, p.Kind)
}

func (p Param) checkRange(policy string, v float64) (float64, error) {
	low := v > p.Min || (!p.MinExcl && v == p.Min)
	if !low || v > p.Max {
		open, lo := "[", strconv.FormatFloat(p.Min, 'g', -1, 64)
		if p.MinExcl {
			open = "("
		}
		return 0, fmt.Errorf("policy: %s parameter %s=%s out of range %s%s, %s]",
			policy, p.Key, strconv.FormatFloat(v, 'g', -1, 64),
			open, lo, strconv.FormatFloat(p.Max, 'g', -1, 64))
	}
	return v, nil
}

// String renders the spec canonically: the resolved name, then the
// assignments in their parsed order. ParseSpec(s.String()) reproduces s.
func (s Spec) String() string {
	if len(s.args) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	for i, a := range s.args {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(a.param.Key)
		b.WriteByte('=')
		switch a.param.Kind {
		case BoolParam:
			b.WriteString(strconv.FormatBool(a.val != 0))
		case IntParam:
			b.WriteString(strconv.FormatInt(int64(a.val), 10))
		default:
			b.WriteString(strconv.FormatFloat(a.val, 'g', -1, 64))
		}
	}
	return b.String()
}

// Options applies the spec's assignments on top of a baseline Options and
// returns the result — what Build hands the registered factory. It is also
// the bridge for non-registry consumers (the native l2sd daemon) that need
// the parsed values without constructing a simulator policy.
func (s Spec) Options(base Options) Options {
	for _, a := range s.args {
		a.param.Apply(&base, a.val)
	}
	return base
}

// Build constructs the spec's policy over env, applying its parameters on
// top of the given Options baseline. A spec with no parameters calls the
// factory with the baseline untouched, so plain names build bit-identically
// to the pre-spec API.
func (s Spec) Build(env Env, base Options) (Distributor, error) {
	registry.RLock()
	f, ok := registry.factories[s.Name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (valid: %s)",
			s.Name, strings.Join(NamesAndAliases(), ", "))
	}
	return f(env, s.Options(base))
}

// New constructs the distribution policy a parsed spec describes over env,
// with every un-set tunable at its published default. It is the spec-first
// entrypoint; NewNamed remains for callers that assemble Options directly.
func New(spec Spec, env Env) (Distributor, error) {
	return spec.Build(env, Options{})
}

// NamesAndAliases returns every accepted policy name, sorted: the canonical
// names plus each alias marked with its target, for error messages and CLI
// help that must advertise everything a -policy flag accepts.
func NamesAndAliases() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.factories)+len(registry.aliases))
	for name := range registry.factories {
		names = append(names, name)
	}
	for alias, target := range registry.aliases {
		names = append(names, fmt.Sprintf("%s (= %s)", alias, target))
	}
	sort.Strings(names)
	return names
}

// SplitSpecs splits a comma-separated list of policy specs, re-attaching
// the comma-separated parameters inside each spec: a segment of the form
// key=value (no colon) continues the previous spec rather than starting a
// new one, so "chash:vnodes=64,load=1.25,l2s" is two specs. Policy names
// never contain '='.
func SplitSpecs(s string) []string {
	var specs []string
	for _, seg := range strings.Split(s, ",") {
		if len(specs) > 0 && strings.Contains(seg, "=") && !strings.Contains(seg, ":") {
			specs[len(specs)-1] += "," + seg
			continue
		}
		specs = append(specs, seg)
	}
	return specs
}
