// Package policytest provides a deterministic in-memory policy.Env for
// unit-testing distribution policies without the full simulator.
package policytest

// Env is a fake policy.Env: loads are set directly, and control messages
// deliver immediately unless Deferred is set, in which case they queue
// until Flush.
type Env struct {
	NodeCount int
	Clock     float64
	Loads     []int
	Dead      []bool

	// Deferred queues deliveries until Flush, modeling in-flight messages.
	Deferred bool

	// Sent counts point-to-point control messages (a broadcast counts as
	// N-1).
	Sent int

	queue []func()
}

// New builds an Env with n live, idle nodes.
func New(n int) *Env {
	return &Env{NodeCount: n, Loads: make([]int, n), Dead: make([]bool, n)}
}

// N implements policy.Env.
func (e *Env) N() int { return e.NodeCount }

// Now implements policy.Env.
func (e *Env) Now() float64 { return e.Clock }

// Load implements policy.Env.
func (e *Env) Load(n int) int { return e.Loads[n] }

// Alive implements policy.Env.
func (e *Env) Alive(n int) bool { return !e.Dead[n] }

// SendControl implements policy.Env.
func (e *Env) SendControl(from, to int, onDeliver func()) {
	e.Sent++
	e.deliver(onDeliver)
}

// BroadcastControl implements policy.Env.
func (e *Env) BroadcastControl(from int, onDeliver func()) {
	e.Sent += e.NodeCount - 1
	e.deliver(onDeliver)
}

func (e *Env) deliver(fn func()) {
	if fn == nil {
		return
	}
	if e.Deferred {
		e.queue = append(e.queue, fn)
		return
	}
	fn()
}

// Flush delivers all queued messages in order.
func (e *Env) Flush() {
	q := e.queue
	e.queue = nil
	for _, fn := range q {
		fn()
	}
}

// Pending reports how many deliveries are queued.
func (e *Env) Pending() int { return len(e.queue) }
