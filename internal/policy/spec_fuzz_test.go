package policy

import (
	"strings"
	"testing"
)

// FuzzParseSpec drives the policy-spec parser with hostile input and checks
// the invariants every accepted spec must satisfy: a known canonical name,
// in-range typed values (re-checked through each Param's own range check),
// and a canonical String() form that re-parses to the same spec — the
// parser can never accept something it cannot round-trip.
func FuzzParseSpec(f *testing.F) {
	f.Add("chash:vnodes=128,load=1.25,d=2")
	f.Add("chash-d2")
	f.Add("trad")
	f.Add("lard:tlow=10,thigh=80,shrink=5,batch=2,replication=false")
	f.Add("lard-dispatch:query=0.0001")
	f.Add("random:seed=7")
	f.Add("cached-dns:ttl=50")
	f.Add("chash:prox=true")
	f.Add("chash:")
	f.Add("chash:vnodes")
	f.Add("chash:vnodes=0")
	f.Add("chash:vnodes=5000")
	f.Add("chash:load=1")
	f.Add("chash:load=9")
	f.Add("chash:d=17")
	f.Add("chash:fanout=3")
	f.Add("chash:d=2,d=3")
	f.Add("traditional:x=1")
	f.Add(" chash : vnodes = 64 ")
	f.Add("no-such-policy")
	f.Add(",,,")
	f.Add("chash:load=NaN")
	f.Add("chash:load=+Inf")
	f.Add("random:seed=-1")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if _, known := registry.factories[spec.Name]; !known {
			t.Fatalf("accepted %q with unknown canonical name %q", s, spec.Name)
		}
		if len(spec.String()) > maxSpecLen+16 {
			t.Fatalf("accepted %q with oversized canonical form", s)
		}
		for _, a := range spec.args {
			if a.param.Kind != BoolParam {
				if _, err := a.param.checkRange(spec.Name, a.val); err != nil {
					t.Fatalf("accepted %q with out-of-range %s=%v: %v", s, a.param.Key, a.val, err)
				}
			} else if a.val != 0 && a.val != 1 {
				t.Fatalf("accepted %q with non-boolean %s=%v", s, a.param.Key, a.val)
			}
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted %q does not re-parse: %v", spec, s, err)
		}
		if again.String() != spec.String() {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", s, spec, again)
		}
		if strings.TrimSpace(s) != "" {
			// Building from the accepted spec must never panic; factory
			// errors (cross-field validation) are fine.
			_, _ = New(spec, newFakeEnv(4))
		}
	})
}
