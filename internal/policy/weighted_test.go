package policy_test

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/policy/policytest"
)

func TestWLCPrefersHigherCapacityAtEqualLoad(t *testing.T) {
	env := policytest.New(3)
	env.Loads = []int{4, 4, 4}
	p := policy.NewWLC(env, []float64{0.5, 2, 0.5})
	// Equal raw loads: scaled load 4/w is lowest at the 2x node.
	if got := p.Initial(0); got != 1 {
		t.Fatalf("Initial = %d, want the 2x node 1", got)
	}
	// The 2x node is "full" once its scaled load exceeds the others'.
	env.Loads = []int{4, 17, 4}
	if got := p.Initial(0); got == 1 {
		t.Fatalf("Initial picked the overloaded 2x node")
	}
}

func TestWLCWithoutWeightsMatchesFewestConnections(t *testing.T) {
	mk := func() (*policy.WLC, *policy.FewestConnections, *policytest.Env, *policytest.Env) {
		a, b := policytest.New(4), policytest.New(4)
		return policy.NewWLC(a, nil), policy.NewFewestConnections(b), a, b
	}
	wlc, fc, envA, envB := mk()
	loads := [][]int{
		{0, 0, 0, 0}, {3, 1, 2, 1}, {5, 5, 5, 5}, {2, 9, 0, 4}, {1, 1, 0, 0},
	}
	for step, l := range loads {
		copy(envA.Loads, l)
		copy(envB.Loads, l)
		if a, b := wlc.Initial(0), fc.Initial(0); a != b {
			t.Fatalf("step %d: wlc=%d fewest-connections=%d, want identical with nil weights", step, a, b)
		}
	}
}

func TestWLCSkipsDeadNodes(t *testing.T) {
	env := policytest.New(3)
	env.Dead[1] = true
	p := policy.NewWLC(env, []float64{1, 100, 1})
	for i := 0; i < 4; i++ {
		if got := p.Initial(0); got == 1 {
			t.Fatalf("assigned to a dead node")
		}
	}
}

func TestWLCRejectsWrongSizeWeights(t *testing.T) {
	env := policytest.New(3)
	env.Loads = []int{1, 0, 1}
	p := policy.NewWLC(env, []float64{1, 100}) // wrong length: ignored
	if got := p.Initial(0); got != 1 {
		t.Fatalf("Initial = %d, want plain least-loaded node 1", got)
	}
}

func TestWeightedLARDScalesThresholds(t *testing.T) {
	env := policytest.New(3)
	opts := policy.DefaultLARDOptions()
	// Node 2 has 4x capacity: its effective THigh is 4*65.
	l := policy.NewWeightedLARD(env, opts, []float64{1, 1, 4})
	if l.Name() != "lard-weighted" {
		t.Fatalf("Name = %q", l.Name())
	}

	// First request for file 9 goes to the backend with the lowest scaled
	// load: node 2 at load 80 (scaled 20) still beats node 1 at load 30.
	env.Loads = []int{0, 30, 80}
	for n, ld := range env.Loads {
		for i := 0; i < ld; i++ {
			l.OnAssign(n)
		}
	}
	if got := l.Service(0, 9); got != 2 {
		t.Fatalf("Service = %d, want the high-capacity node 2", got)
	}

	// Plain LARD with the same loads picks node 1 — the weighting is what
	// changed the decision.
	env2 := policytest.New(3)
	env2.Loads = env.Loads
	plain := policy.NewLARD(env2, opts)
	for n, ld := range env2.Loads {
		for i := 0; i < ld; i++ {
			plain.OnAssign(n)
		}
	}
	if got := plain.Service(0, 9); got != 1 {
		t.Fatalf("plain Service = %d, want least-loaded node 1", got)
	}
}

func TestWeightedPoliciesRegistered(t *testing.T) {
	for _, name := range []string{"wlc", "lard-weighted"} {
		env := policytest.New(4)
		d, err := policy.NewNamed(name, env, policy.Options{Weights: []float64{2, 1, 0.5, 0.5}})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, d.Name())
		}
	}
	// Without weights the registered variants still construct and degrade
	// to their unweighted bases (wlc keeps its own name; lard-weighted
	// reports the base algorithm it degraded to).
	d, err := policy.NewNamed("lard-weighted", policytest.New(4), policy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "lard" {
		t.Errorf("unweighted lard-weighted Name = %q, want lard", d.Name())
	}
}

func TestNodeWeightsValidatesLength(t *testing.T) {
	o := policy.Options{Weights: []float64{1, 2}}
	if w := o.NodeWeights(3); w != nil {
		t.Errorf("NodeWeights(3) on a 2-slice = %v, want nil", w)
	}
	if w := o.NodeWeights(2); len(w) != 2 {
		t.Errorf("NodeWeights(2) = %v, want the slice back", w)
	}
}
