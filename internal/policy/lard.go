package policy

import "fmt"

// LARDOptions are the execution parameters of the LARD server. The defaults
// are the values determined by Pai et al. and reused by the paper ("we use
// the same execution parameters as determined by the designers of LARD").
type LARDOptions struct {
	TLow  int // a node below this load is considered lightly loaded (25)
	THigh int // a node above this load is considered overloaded (65)
	// ShrinkAfter is how long a replicated server set must stay unmodified
	// before it is shrunk (LARD/R's K, 20 s).
	ShrinkAfter float64
	// UpdateBatch is how many locally terminated connections a back-end
	// accumulates before refreshing its load at the front-end (Section 5.1
	// of the paper: 4).
	UpdateBatch int
	// Replication enables LARD/R's server sets; plain LARD keeps a single
	// server per target.
	Replication bool
}

// DefaultLARDOptions returns the published parameters with replication on.
func DefaultLARDOptions() LARDOptions {
	return LARDOptions{TLow: 25, THigh: 65, ShrinkAfter: 20, UpdateBatch: 4, Replication: true}
}

// Validate reports option errors.
func (o LARDOptions) Validate() error {
	if o.TLow <= 0 || o.THigh < o.TLow {
		return fmt.Errorf("policy: bad LARD thresholds %+v", o)
	}
	return nil
}

// LARD implements the Locality-Aware Request Distribution server of Pai et
// al. as simulated in the paper: node 0 is a dedicated front-end that
// accepts, parses, and hands off every request to a back-end chosen by the
// LARD (or LARD/R) algorithm. The front-end tracks back-end loads itself:
// it increments its view on every assignment and learns about completions
// through batched update messages from the back-ends.
//
// With a single node there is nothing to distribute: the node serves its
// own requests and no front-end exists.
type LARD struct {
	env  Env
	opts LARDOptions

	backends []int // ids of nodes that service requests
	feLoad   []int // front-end's view of each node's load
	pending  []int // completions not yet reported to the front-end

	// weights holds per-node relative capacities for the lard-weighted
	// variant: loads are compared as load/weight and the imbalance
	// thresholds scale to THigh*w_i / TLow*w_i, so a 2x node triggers
	// migration at twice the load. nil (plain LARD) behaves exactly as
	// published: every comparison divides by exactly 1.0.
	weights []float64

	sets     *FileSets
	assigned uint64
}

// NewLARD builds the LARD policy.
func NewLARD(env Env, opts LARDOptions) *LARD {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	n := env.N()
	var backends []int
	for i := 1; i < n; i++ {
		backends = append(backends, i)
	}
	if n == 1 {
		backends = []int{0}
	}
	return &LARD{
		env:      env,
		opts:     opts,
		backends: backends,
		feLoad:   make([]int, n),
		pending:  make([]int, n),
		sets:     NewFileSets(0),
	}
}

// ReserveFiles pre-sizes the per-file server-set index for n distinct
// files, so catalog-scale runs skip its rehash-doublings.
func (l *LARD) ReserveFiles(n int) { l.sets.Reserve(n) }

// NewWeightedLARD builds LARD with capacity-weighted load comparisons and
// imbalance triggers. weights must have one entry per node, normalized to
// mean 1 (see Options.Weights); nil degrades to plain LARD.
func NewWeightedLARD(env Env, opts LARDOptions, weights []float64) *LARD {
	l := NewLARD(env, opts)
	if len(weights) == env.N() {
		l.weights = weights
	}
	return l
}

// Name implements Distributor.
func (l *LARD) Name() string {
	if l.weights != nil {
		return "lard-weighted"
	}
	if l.opts.Replication {
		return "lard"
	}
	return "lard-basic"
}

// weight returns node n's relative capacity (1 when unweighted).
func (l *LARD) weight(n int) float64 {
	if l.weights == nil {
		return 1
	}
	return l.weights[n]
}

// FrontEnd implements Distributor: node 0, unless the cluster has a single
// node.
func (l *LARD) FrontEnd() int {
	if l.env.N() == 1 {
		return -1
	}
	return 0
}

// Initial implements Distributor: every connection arrives at the
// front-end.
func (l *LARD) Initial(f FileID) int {
	if l.env.N() == 1 {
		return 0
	}
	return 0
}

// Service implements the LARD/R target-to-server-set mapping, executed at
// the front-end with its (slightly stale) view of back-end loads.
func (l *LARD) Service(initial int, f FileID) int {
	if l.env.N() == 1 {
		return 0
	}
	// Weighted comparisons: loads scale by 1/weight, thresholds stay
	// nominal — equivalent to per-node thresholds THigh*w_i / TLow*w_i.
	view := func(n int) float64 { return float64(l.feLoad[n]) / l.weight(n) }
	f32 := int32(f)
	nodes := l.sets.Nodes(f32)
	if len(nodes) == 0 || l.allDead(nodes) {
		n := argminScaled(l.env, l.backends, view)
		if n < 0 {
			return initial // cluster effectively down
		}
		l.sets.SetSingle(f32, n, l.env.Now())
		return n
	}
	n := l.leastLoadedMember(nodes, view)
	cheapest := argminScaled(l.env, l.backends, view)
	overloaded := view(n) > float64(l.opts.THigh) && cheapest >= 0 && view(cheapest) < float64(l.opts.TLow)
	if overloaded || view(n) >= float64(2*l.opts.THigh) {
		if cheapest >= 0 && cheapest != n {
			if l.opts.Replication {
				l.sets.Append(f32, cheapest, l.env.Now())
			} else {
				l.sets.SetSingle(f32, cheapest, l.env.Now())
			}
			n = cheapest
		}
	}
	if l.opts.Replication {
		// Re-read: growth above stamps the modification time.
		nodes = l.sets.Nodes(f32)
		if len(nodes) > 1 && l.env.Now()-l.sets.Modified(f32) > l.opts.ShrinkAfter {
			l.removeMostLoaded(f32, nodes, n, view)
		}
	}
	return n
}

func (l *LARD) allDead(nodes []int32) bool {
	for _, n := range nodes {
		if l.env.Alive(int(n)) {
			return false
		}
	}
	return true
}

func (l *LARD) leastLoadedMember(nodes []int32, view func(int) float64) int {
	if n := argminScaled32(l.env, nodes, view); n >= 0 {
		return n
	}
	return int(nodes[0])
}

func (l *LARD) removeMostLoaded(f int32, nodes []int32, keep int, view func(int) float64) {
	worst, at := -1, -1
	worstLoad := -1.0
	for i, n := range nodes {
		if int(n) == keep {
			continue
		}
		if load := view(int(n)); load > worstLoad {
			worst, worstLoad, at = int(n), load, i
		}
	}
	if worst >= 0 {
		l.sets.RemoveAt(f, at, l.env.Now())
	} else {
		l.sets.Touch(f, l.env.Now())
	}
}

// OnAssign implements Distributor: the front-end made the assignment, so
// its view updates immediately.
func (l *LARD) OnAssign(n int) {
	l.assigned++
	l.feLoad[n]++
}

// OnComplete implements Distributor: the back-end batches UpdateBatch
// completions, then reports them to the front-end in one control message.
func (l *LARD) OnComplete(n int, f FileID) {
	if l.env.N() == 1 {
		return
	}
	l.pending[n]++
	if l.pending[n] >= l.opts.UpdateBatch {
		count := l.pending[n]
		l.pending[n] = 0
		l.env.SendControl(n, 0, func() {
			l.feLoad[n] -= count
			if l.feLoad[n] < 0 {
				l.feLoad[n] = 0
			}
		})
	}
}

// SetSizes returns the distribution of server-set sizes, for diagnostics
// and tests.
func (l *LARD) SetSizes() map[int]int {
	out := make(map[int]int)
	l.sets.RangeSizes(func(_ int32, size int) bool {
		out[size]++
		return true
	})
	return out
}
