// Package policy defines the request-distribution interface of the cluster
// server simulator and implements the baseline policies the paper compares
// against L2S: the traditional fewest-connections server, round-robin DNS,
// and the LARD front-end server with replication (LARD/R) of Pai et al.
package policy

import (
	"math"

	"repro/internal/cache"
)

// FileID aliases the cache package's file identifier.
type FileID = cache.FileID

// Env is the view of the cluster a distribution policy gets: node count,
// the simulation clock, true node loads (a node always knows its own load
// exactly; policies that rely on disseminated values must maintain them via
// control messages), node liveness, and control messaging that charges the
// simulated CPUs and network interfaces.
type Env interface {
	// N returns the number of cluster nodes.
	N() int
	// Now returns the current simulated time in seconds.
	Now() float64
	// Load returns node n's true number of open connections.
	Load(n int) int
	// Alive reports whether node n has not crashed.
	Alive(n int) bool
	// SendControl delivers a small control message from one node to
	// another, charging message costs, then calls onDeliver.
	SendControl(from, to int, onDeliver func())
	// BroadcastControl delivers a small control message from one node to
	// all others, charging message costs, then calls onDeliver once.
	BroadcastControl(from int, onDeliver func())
}

// Distributor decides where connections land and which node services each
// request. Implementations are driven by the server simulator:
//
//	n0 := d.Initial(f)            // connection arrives (switch or DNS)
//	svc := d.Service(n0, f)       // decision after parsing at n0
//	... simulator runs the request, then ...
//	d.OnComplete(svc, f)
//
// The simulator updates true loads around these calls: the service node's
// load is incremented right after Service returns (followed by OnAssign)
// and decremented right before OnComplete.
type Distributor interface {
	// Name identifies the policy in results.
	Name() string
	// FrontEnd returns the id of a dedicated front-end node that cannot
	// service requests, or -1 when all nodes are servers.
	FrontEnd() int
	// Initial returns the node at which the next connection arrives.
	Initial(f FileID) int
	// Service returns the node that will service the request, given that
	// the connection was accepted by node initial.
	Service(initial int, f FileID) int
	// OnAssign notifies that a connection was assigned to node n (its load
	// already incremented).
	OnAssign(n int)
	// OnComplete notifies that a request for f serviced at node n finished
	// (its load already decremented).
	OnComplete(n int, f FileID)
}

// Dispatched is implemented by policies whose decisions require consulting
// a remote dispatcher node (Section 6's scalable LARD variant): before
// Service takes effect, the simulator charges a query round trip to the
// dispatcher plus the given CPU time there.
type Dispatched interface {
	Dispatcher() (node int, cpuSec float64)
}

// ClientAware is implemented by arrival policies that need the identity of
// the client behind the next connection (e.g. CachedDNS). The simulator
// calls SetNextClient immediately before Initial.
type ClientAware interface {
	SetNextClient(c int32)
}

// LoadReportSink receives the payload of a load broadcast once the network
// has delivered it: the reporting node and the load value it announced.
// L2S implements it; see LoadReporter.
type LoadReportSink interface {
	ApplyLoadReport(node, load int)
}

// LoadReporter is optionally implemented by environments that can carry a
// load broadcast's payload through a pooled delivery path: the environment
// charges the same broadcast costs as BroadcastControl and, at delivery
// time, hands (from, load) back to the sink instead of invoking a caller-
// allocated closure. Policies that gossip a load value per broadcast — L2S
// broadcasts one every BroadcastDelta connections of drift, hundreds of
// thousands of times per large run — type-assert for it and fall back to
// BroadcastControl with a closure when the environment does not implement
// it. Delivery semantics are identical either way.
type LoadReporter interface {
	BroadcastLoadReport(from, load int, sink LoadReportSink)
}

// PairRater is optionally implemented by environments that know the
// effective line rate between node pairs (the simulator derives it from the
// per-node hardware profiles). Proximity-aware policies type-assert for it;
// environments without it get plain load-based decisions. Implementations
// return the uncapped intra-node bandwidth when a == b — a local assignment
// crosses no wire.
type PairRater interface {
	PairRateKBps(a, b int) float64
}

// SetNextClient implements ClientAware for CachedDNS.
func (p *CachedDNS) SetNextClient(c int32) { p.NextClient = c }

// argminScaled returns the candidate minimizing load(n), skipping dead
// nodes; ties break on the earlier candidate. It returns -1 if no candidate
// is alive. Weighted policies pass capacity-scaled loads; unweighted ones
// pass plain loads converted to float64, which compares identically.
func argminScaled(env Env, candidates []int, load func(int) float64) int {
	best := -1
	bestLoad := math.Inf(1)
	for _, n := range candidates {
		if !env.Alive(n) {
			continue
		}
		if l := load(n); l < bestLoad {
			best, bestLoad = n, l
		}
	}
	return best
}

// argminScaled32 is argminScaled over the int32 node lists FileSets stores.
func argminScaled32(env Env, candidates []int32, load func(int) float64) int {
	best := -1
	bestLoad := math.Inf(1)
	for _, n := range candidates {
		if !env.Alive(int(n)) {
			continue
		}
		if l := load(int(n)); l < bestLoad {
			best, bestLoad = int(n), l
		}
	}
	return best
}
