package perf

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

// ScalePoint is one point of the scaling trajectory: a full L2S cluster run
// at a given cluster size and catalog size. Unlike the microbenchmarks,
// these measure how cost grows with N and F — the superlinear regressions
// (per-pair broadcast storms, rehash-doubling indexes, unbounded trackers)
// that ns/op at a fixed small N can never catch.
type ScalePoint struct {
	Name     string
	Nodes    int
	Files    int
	Requests int
	// Policy selects the distribution policy spec for this point; empty
	// runs the default L2S server exactly as every pre-existing point does.
	Policy string
	// Headline marks the flagship N=1024, F=10^7, 10^8-request run: it is
	// regenerated only on demand and skipped by comparisons, because it
	// takes minutes where the grid takes seconds.
	Headline bool
}

// scaleGridRequests is the trace length of every grid point: long enough
// that steady state dominates setup, short enough that the whole grid runs
// in `make check`.
const scaleGridRequests = 300_000

// headlineRequests is the flagship run's trace length.
const headlineRequests = 100_000_000

// ScaleGrid returns the N x F grid in a stable order, headline last.
func ScaleGrid() []ScalePoint {
	var pts []ScalePoint
	for _, n := range []int{16, 128, 1024} {
		for _, f := range []int{10_000, 1_000_000, 10_000_000} {
			pts = append(pts, ScalePoint{
				Name:     fmt.Sprintf("N%d-F%s", n, suffix(f)),
				Nodes:    n,
				Files:    f,
				Requests: scaleGridRequests,
			})
		}
	}
	// The consistent-hashing point pins the zero-coordination claim at the
	// largest grid corner: bench-scale-check compares its message count
	// exactly, and its gossip count must stay exactly zero.
	pts = append(pts, ScalePoint{
		Name:     "N1024-F1e7-chash",
		Nodes:    1024,
		Files:    10_000_000,
		Requests: scaleGridRequests,
		Policy:   "chash",
	})
	pts = append(pts, ScalePoint{
		Name:     "headline-N1024-F1e7-R1e8",
		Nodes:    1024,
		Files:    10_000_000,
		Requests: headlineRequests,
		Headline: true,
	})
	return pts
}

func suffix(f int) string {
	switch f {
	case 10_000:
		return "1e4"
	case 1_000_000:
		return "1e6"
	case 10_000_000:
		return "1e7"
	}
	return fmt.Sprintf("%d", f)
}

// ScaleResult is one measured point. Events and Messages are deterministic
// for a given simulator version, so baseline comparisons check them
// exactly: any change in the event or message complexity of a run fails
// the gate even when wall-clock noise hides it.
type ScaleResult struct {
	Nodes        int     `json:"nodes"`
	Files        int     `json:"files"`
	Requests     int     `json:"requests"`
	Policy       string  `json:"policy,omitempty"`
	NsPerRequest float64 `json:"ns_per_request"`
	BytesPerNode uint64  `json:"bytes_per_node"`
	WallSec      float64 `json:"wall_sec"`
	Events       uint64  `json:"events"`
	Messages     uint64  `json:"messages"`
	Gossip       uint64  `json:"gossip,omitempty"`
	Headline     bool    `json:"headline,omitempty"`
}

// scaleTraces caches generated traces by (files, requests): the three
// cluster sizes of one catalog column share a trace, and trace generation
// is setup, not measurement.
var (
	scaleTraceMu sync.Mutex
	scaleTraces  = map[[2]int]*trace.Trace{}
)

func scaleTrace(files, requests int) *trace.Trace {
	scaleTraceMu.Lock()
	defer scaleTraceMu.Unlock()
	key := [2]int{files, requests}
	if tr, ok := scaleTraces[key]; ok {
		return tr
	}
	tr := trace.MustGenerate(trace.GenSpec{
		Name:      fmt.Sprintf("scale-F%d", files),
		Files:     files,
		AvgFileKB: 6,
		Requests:  requests,
		AvgReqKB:  5,
		Alpha:     0.8,
		LocalityP: 0.3,
		Seed:      11,
	})
	scaleTraces[key] = tr
	return tr
}

// DropScaleTraces releases the trace cache (the headline trace alone holds
// ~1 GB).
func DropScaleTraces() {
	scaleTraceMu.Lock()
	defer scaleTraceMu.Unlock()
	scaleTraces = map[[2]int]*trace.Trace{}
}

// RunScalePoint measures one point: wall time per request and the peak heap
// growth per node while the run is in flight (sampled concurrently — the
// simulator itself is single-threaded).
func RunScalePoint(p ScalePoint) (ScaleResult, error) {
	tr := scaleTrace(p.Files, p.Requests)

	// The peak sampler reads the live-heap gauge through runtime/metrics,
	// which is lock-free and does not stop the world — runtime.ReadMemStats
	// would, and on a single-CPU host each read also forcibly preempts the
	// simulator goroutine, so an eager sampler taxes the very number being
	// measured. 25 ms still gives dozens of samples on the shortest grid
	// point, and the heap's high-water mark comes from pool growth early in
	// the run, not from a transient a coarse sampler could miss.
	heapGauge := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	runtime.GC()
	metrics.Read(heapGauge)
	base := heapGauge[0].Value.Uint64()

	var peak atomic.Uint64
	peak.Store(base)
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		ticker := time.NewTicker(25 * time.Millisecond)
		defer ticker.Stop()
		s := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				metrics.Read(s)
				if v := s[0].Value.Uint64(); v > peak.Load() {
					peak.Store(v)
				}
			}
		}
	}()

	cfg := server.NewConfig(server.L2SServer, p.Nodes, server.WithSeed(5))
	if p.Policy != "" {
		cfg = server.NewConfig(server.CustomServer, p.Nodes,
			server.WithPolicy(p.Policy), server.WithSeed(5))
	}
	start := time.Now()
	res, err := server.Run(cfg, tr)
	wall := time.Since(start)
	close(stop)
	<-sampled
	if err != nil {
		return ScaleResult{}, err
	}

	growth := uint64(0)
	if pk := peak.Load(); pk > base {
		growth = pk - base
	}
	return ScaleResult{
		Nodes:        p.Nodes,
		Files:        p.Files,
		Requests:     p.Requests,
		Policy:       p.Policy,
		NsPerRequest: float64(wall.Nanoseconds()) / float64(p.Requests),
		BytesPerNode: growth / uint64(p.Nodes),
		WallSec:      wall.Seconds(),
		Events:       res.Events,
		Messages:     res.ControlMessages,
		Gossip:       res.GossipMessages,
		Headline:     p.Headline,
	}, nil
}
