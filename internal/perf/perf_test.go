package perf

import "testing"

// Wrappers so the hot-path suite runs under the ordinary bench harness:
//
//	go test ./internal/perf -bench . -run '^$'

func BenchmarkEngineScheduleFire(b *testing.B)     { EngineScheduleFire(b) }
func BenchmarkEngineScheduleFireDeep(b *testing.B) { EngineScheduleFireDeep(b) }
func BenchmarkEngineCancel(b *testing.B)           { EngineCancel(b) }
func BenchmarkResourceAcquire(b *testing.B)        { ResourceAcquire(b) }
func BenchmarkLRUAccess(b *testing.B)              { LRUAccess(b) }
func BenchmarkLRUAccessEvict(b *testing.B)         { LRUAccessEvict(b) }
func BenchmarkZipfSample10k(b *testing.B)          { ZipfSample10k(b) }
func BenchmarkZipfSample1M(b *testing.B)           { ZipfSample1M(b) }
func BenchmarkHistAdd(b *testing.B)                { HistAdd(b) }
func BenchmarkGossipBroadcastFlat(b *testing.B)    { GossipBroadcastFlat(b) }
func BenchmarkServerRun(b *testing.B)              { ServerRun(b) }
