// Package perf defines the simulator's hot-path microbenchmarks as plain
// functions so they can run two ways: under `go test -bench` (see
// perf_test.go) and in-process through testing.Benchmark from cmd/benchjson,
// which writes the machine-readable BENCH_simcore.json baseline that future
// performance PRs diff against.
//
// Every benchmark reports allocations: the simulation core is meant to be
// allocation-free in steady state (pooled events, intrusive LRU), and these
// numbers are the regression guard for that property.
package perf

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/zipf"
)

// Bench is one named hot-path benchmark. Requests is the number of
// simulated requests one benchmark op completes (0 when the op is not
// request-shaped); it converts ns/op into requests per wall-clock second.
type Bench struct {
	Name     string
	Fn       func(b *testing.B)
	Requests int
}

// Benchmarks returns the hot-path suite in a stable order.
func Benchmarks() []Bench {
	return []Bench{
		{Name: "EngineScheduleFire", Fn: EngineScheduleFire},
		{Name: "EngineScheduleFireDeep", Fn: EngineScheduleFireDeep},
		{Name: "EngineCancel", Fn: EngineCancel},
		{Name: "ResourceAcquire", Fn: ResourceAcquire},
		{Name: "LRUAccess", Fn: LRUAccess},
		{Name: "LRUAccessEvict", Fn: LRUAccessEvict},
		{Name: "ZipfSample10k", Fn: ZipfSample10k},
		{Name: "ZipfSample1M", Fn: ZipfSample1M},
		{Name: "HistAdd", Fn: HistAdd},
		{Name: "GossipBroadcastFlat", Fn: GossipBroadcastFlat},
		{Name: "ServerRun", Fn: ServerRun, Requests: serverRunRequests},
		{Name: "ServerRunHetero", Fn: ServerRunHetero, Requests: serverRunRequests},
	}
}

func nop() {}

// EngineScheduleFire measures one schedule plus one fire against an empty
// calendar — the pool's steady-state round trip.
func EngineScheduleFire(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, nop)
		e.Step()
	}
}

// EngineScheduleFireDeep measures the same round trip with 1024 events
// pending, so each op pays a realistic sift through the heap.
func EngineScheduleFireDeep(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	rng := rand.New(rand.NewSource(1))
	delays := make([]float64, 4096)
	for i := range delays {
		delays[i] = rng.Float64() * 10
	}
	for i := 0; i < 1024; i++ {
		e.Schedule(delays[i], nop)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(delays[i%len(delays)], nop)
		e.Step()
	}
}

// EngineCancel measures schedule+cancel churn: the cancelled event must be
// reclaimed without firing and without leaking pool slots.
func EngineCancel(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(1, nop)
		e.Schedule(2, nop)
		ev.Cancel()
		e.Step()
	}
}

// GossipBroadcastFlat measures one flattened 256-node gossip round on a
// registered fleet: sender charges, epoch admission, and the single pooled
// delivery event. Rounds run back to back, so after the first each one
// should take the O(1) epoch fast path — the operation the 1024-node
// figure sweeps execute hundreds of thousands of times.
func GossipBroadcastFlat(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	cfg := netsim.DefaultConfig()
	cfg.BatchFanout = 1
	nw := netsim.New(eng, cfg)
	nodes := make([]*cluster.Node, 256)
	for i := range nodes {
		nodes[i] = cluster.NewNode(eng, i, 1<<20)
	}
	nw.RegisterFleet(nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Broadcast(nodes[i%len(nodes)], nodes, 0.004, nil)
		eng.Run()
	}
}

// ResourceAcquire measures the FCFS service-center enqueue/complete cycle,
// the single most frequent operation in a cluster run.
func ResourceAcquire(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	r := sim.NewResource(e, "cpu", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(0.001, nil)
		e.Step()
	}
}

// lruStream is a fixed pseudo-Zipf access stream shared by the LRU benches.
func lruStream() ([]cache.FileID, []int64) {
	rng := rand.New(rand.NewSource(1))
	ids := make([]cache.FileID, 16384)
	sizes := make([]int64, len(ids))
	for i := range ids {
		// Square a uniform draw to skew popularity toward low ids.
		u := rng.Float64()
		ids[i] = cache.FileID(u * u * 4096)
		sizes[i] = int64(rng.Intn(64<<10) + 1<<10)
	}
	return ids, sizes
}

// LRUAccess measures the cache's hit/miss path with capacity evictions
// under a skewed stream.
func LRUAccess(b *testing.B) {
	b.ReportAllocs()
	ids, sizes := lruStream()
	c := cache.NewLRU(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ids)
		c.Access(ids[j], sizes[j])
	}
}

// LRUAccessEvict interleaves accesses with explicit invalidations, the
// pattern cache-coherent policies generate.
func LRUAccessEvict(b *testing.B) {
	b.ReportAllocs()
	ids, sizes := lruStream()
	c := cache.NewLRU(16 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ids)
		c.Access(ids[j], sizes[j])
		if i%4 == 3 {
			c.Evict(ids[(j+len(ids)/2)%len(ids)])
		}
	}
}

// zipfSample measures one popularity draw against a fixed catalog size.
// Run at two sizes two decades apart, the pair demonstrates the guide
// table's O(1) expected cost: ns/op stays flat where the binary-search
// inversion it replaced grew with log F (see the reference benchmarks in
// internal/zipf).
func zipfSample(b *testing.B, files int64) {
	b.ReportAllocs()
	d := zipf.New(0.8, files)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += d.Sample(rng)
	}
	benchSink = sink
}

// ZipfSample10k draws from a 10^4-file catalog.
func ZipfSample10k(b *testing.B) { zipfSample(b, 10_000) }

// ZipfSample1M draws from a 10^6-file catalog.
func ZipfSample1M(b *testing.B) { zipfSample(b, 1_000_000) }

// benchSink defeats dead-code elimination in value-returning benches.
var benchSink int64

// HistAdd measures one latency record into the log2 histogram — paid once
// per completed request in every simulated run.
func HistAdd(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(9))
	samples := make([]float64, 8192)
	for i := range samples {
		samples[i] = rng.ExpFloat64() * 0.05 // latency-shaped: tens of ms
	}
	h := stats.NewHistogram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(samples[i%len(samples)])
	}
}

// serverRunRequests is the trace length of the end-to-end bench, exported
// through Bench.Requests so benchjson can derive requests per second.
const serverRunRequests = 4000

var (
	serverTraceOnce sync.Once
	serverTrace     *trace.Trace
)

func serverRunTrace() *trace.Trace {
	serverTraceOnce.Do(func() {
		serverTrace = trace.MustGenerate(trace.GenSpec{
			Name: "perf", Files: 600, AvgFileKB: 6, Requests: serverRunRequests,
			AvgReqKB: 5, Alpha: 0.8, LocalityP: 0.3, Seed: 3,
		})
	})
	return serverTrace
}

// ServerRun is the end-to-end number: one full L2S cluster run over a small
// fixed-seed trace, allocations included.
func ServerRun(b *testing.B) {
	b.ReportAllocs()
	tr := serverRunTrace()
	cfg := server.NewConfig(server.L2SServer, 8,
		server.WithSeed(5), server.WithCacheBytes(2<<20))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// ServerRunHetero is the profiled counterpart of ServerRun: the same trace
// on a two-tier cluster, so the per-node rate scaling and capacity-weight
// plumbing are on the measured path.
func ServerRunHetero(b *testing.B) {
	b.ReportAllocs()
	tr := serverRunTrace()
	fast := server.NodeProfile{CPUSpeed: 2, DiskSpeed: 8, CacheBytes: 4 << 20}
	slow := server.NodeProfile{CPUSpeed: 1, DiskSpeed: 1, CacheBytes: 2 << 20}
	cfg := server.NewConfig(server.L2SServer, 8,
		server.WithSeed(5), server.WithCacheBytes(2<<20),
		server.Tiered(fast, slow, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Run(cfg, tr); err != nil {
			b.Fatal(err)
		}
	}
}
