package experiments

import (
	"strings"
	"testing"

	"repro/internal/server"
)

func TestTwoTierStudy(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	rows, text, err := TwoTierStudy(testPool(), tr, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	byName := map[string]PolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// Capacity weighting must not lose throughput on tiered hardware.
	if w, u := byName["l2s-weighted"], byName["l2s"]; w.Throughput < u.Throughput*0.98 {
		t.Errorf("l2s-weighted %v below l2s %v on a two-tier cluster", w.Throughput, u.Throughput)
	}
	if !strings.Contains(text, "model bound") || !strings.Contains(text, "two-tier") {
		t.Errorf("render incomplete:\n%s", text)
	}
	if _, _, err := TwoTierStudy(testPool(), tr, 8, 8); err == nil {
		t.Error("degenerate split accepted")
	}
}

func TestSlowNodeStudy(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	rows, text, err := SlowNodeStudy(testPool(), tr, 8, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("want 9 rows, got %d", len(rows))
	}
	byName := map[string]PolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// A slow node must not make the cluster faster than uniform hardware.
	for _, policy := range []string{"l2s", "l2s-weighted", "wlc"} {
		slow, uniform := byName[policy+"/one slow node"], byName[policy+"/uniform"]
		if slow.Throughput > uniform.Throughput*1.02 {
			t.Errorf("%s: slow-node cluster %v beats uniform %v", policy, slow.Throughput, uniform.Throughput)
		}
	}
	if !strings.Contains(text, "slow-node study") {
		t.Errorf("render incomplete:\n%s", text)
	}
	if _, _, err := SlowNodeStudy(testPool(), tr, 8, 8, 0.5); err == nil {
		t.Error("out-of-range slow node accepted")
	}
}

func TestProfileStudy(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	profiles, err := server.ParseProfiles("2xfast:2/8//64MB,6xslow:1/1//32MB")
	if err != nil {
		t.Fatal(err)
	}
	rows, text, err := ProfileStudy(testPool(), tr, profiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	if !strings.Contains(text, "profiled cluster") || !strings.Contains(text, "8 nodes") {
		t.Errorf("render incomplete:\n%s", text)
	}
	if _, _, err := ProfileStudy(testPool(), tr, nil); err == nil {
		t.Error("empty profile set accepted")
	}
}
