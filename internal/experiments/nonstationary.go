package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

// The non-stationary studies ask what the paper's saturation methodology
// could not: how the distribution policies behave when the workload itself
// moves — shot-noise popularity churn (every document's popularity decays
// while new documents arrive), an abrupt hot-set rotation, a sinusoidal
// diurnal load profile driven open loop, and a flash crowd concentrating a
// large traffic fraction on one cold file.

// nonstationaryPolicies are the contenders of both studies: the paper's
// three systems plus the consistent-hashing family of PR 8.
var nonstationaryPolicies = []string{"traditional", "lard", "l2s", "chash", "chash-bounded"}

// ChurnRow is one policy's line of the churn study: the usual comparison
// columns on the shot-noise trace, plus the adaptation lag after an abrupt
// hot-set rotation — the simulated seconds between the rotation cratering
// the cluster hit rate and the hit rate recovering to 90% of its
// pre-rotation mean.
type ChurnRow struct {
	Row      PolicyRow
	AdaptLag float64
}

// ChurnStudy runs the policy comparison on a shot-noise churned workload,
// measures per-policy adaptation lag after a hot-set rotation, and drives a
// diurnal open-loop day through the piecewise arrival schedule. scale
// scales request counts like the figure experiments (1 = full size).
func ChurnStudy(p *runner.Pool, scale float64) ([]ChurnRow, string, error) {
	churnTr, err := trace.Generate(trace.GenSpec{
		Name: "churn", Mode: trace.ModeChurn,
		Files: 12000, AvgFileKB: 16, Requests: reqCount(600_000, scale),
		Horizon: 300, DocLifetime: 12, Seed: 41,
	})
	if err != nil {
		return nil, "", err
	}

	// Phase 1: the comparison table at saturation on the churned trace.
	jobs := make([]runner.Job, len(nonstationaryPolicies))
	for i, name := range nonstationaryPolicies {
		jobs[i] = runner.Job{
			Key: "churn/" + name,
			Config: server.NewConfig(server.CustomServer, 8,
				server.WithPolicy(name), server.WithSeed(5)),
			Trace: churnTr,
		}
	}
	table, err := runRows(p, jobs, func(i int, r server.Result) string { return nonstationaryPolicies[i] })
	if err != nil {
		return nil, "", err
	}

	// Phase 2: adaptation lag after an abrupt rotation. Each job gets its
	// own series recorder (a Series must not be shared across parallel
	// runs); the lag is read off the recorded cluster hit-rate timeline.
	// The rotation catalog (24000 files x ~16KB per half, ~375MB) exceeds
	// the 8-node aggregate cache, so the rotation genuinely craters the
	// cluster hit rate rather than being absorbed by spare capacity.
	rotTr, err := rotationTrace(24000, reqCount(400_000, scale), 47)
	if err != nil {
		return nil, "", err
	}
	recs := make([]*obs.Series, len(nonstationaryPolicies))
	rotJobs := make([]runner.Job, len(nonstationaryPolicies))
	for i, name := range nonstationaryPolicies {
		recs[i] = obs.NewSeries(0.1)
		rotJobs[i] = runner.Job{
			Key: "rotate/" + name,
			Config: server.NewConfig(server.CustomServer, 8,
				server.WithPolicy(name), server.WithSeed(5),
				server.WithWarmFraction(0.1), server.WithSeries(recs[i])),
			Trace: rotTr,
		}
	}
	rows := make([]ChurnRow, len(nonstationaryPolicies))
	for i, jr := range p.Run(rotJobs) {
		if jr.Err != nil {
			return nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		rows[i] = ChurnRow{Row: table[i], AdaptLag: adaptationLag(recs[i])}
	}

	// Phase 3: a diurnal day, open loop — the offered rate follows the
	// sinusoidal schedule and latency is true client-perceived time.
	diurnalSpec := trace.GenSpec{
		Name: "diurnal", Mode: trace.ModeDiurnal,
		Files: 8000, AvgFileKB: 16, Requests: reqCount(400_000, scale),
		AvgReqKB: 12, Alpha: 1.0, LocalityP: 0.2,
		DiurnalAmp: 0.6, DiurnalPeriods: 2, Seed: 49,
	}
	diurnalTr, err := trace.Generate(diurnalSpec)
	if err != nil {
		return nil, "", err
	}
	sched := server.DiurnalSchedule(2000, diurnalSpec.DiurnalAmp, 30, 12)
	dPolicies := []string{"lard", "l2s"}
	dJobs := make([]runner.Job, len(dPolicies))
	for i, name := range dPolicies {
		dJobs[i] = runner.Job{
			Key: "diurnal/" + name,
			Config: server.NewConfig(server.CustomServer, 16,
				server.WithPolicy(name), server.WithSeed(5),
				server.WithArrivalSchedule(sched)),
			Trace: diurnalTr,
		}
	}
	dResults := p.Run(dJobs)

	var b strings.Builder
	fmt.Fprintf(&b, "shot-noise churn on %s (%d docs realized, %d requests): policies at saturation\n",
		churnTr.Name, len(churnTr.Sizes), len(churnTr.Requests))
	fmt.Fprintf(&b, "  %-14s %10s %8s %8s %10s %12s\n",
		"policy", "req/s", "miss%", "fwd%", "imbalance", "adapt-lag s")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %10.0f %8.1f %8.1f %10.2f %12.1f\n",
			r.Row.Policy, r.Row.Throughput, r.Row.MissRate*100,
			r.Row.Forwarded*100, r.Row.Imbalance, r.AdaptLag)
	}
	fmt.Fprintf(&b, "\ndiurnal open loop (mean 2000 req/s, amplitude %.0f%%, 16 nodes)\n",
		diurnalSpec.DiurnalAmp*100)
	fmt.Fprintf(&b, "  %-14s %10s %12s %12s\n", "policy", "req/s", "mean ms", "p99 ms")
	for i, jr := range dResults {
		if jr.Err != nil {
			return nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		fmt.Fprintf(&b, "  %-14s %10.0f %12.2f %12.2f\n", dPolicies[i],
			jr.Result.Throughput, jr.Result.LatencyMean*1000, jr.Result.LatencyP99*1000)
	}
	return rows, b.String(), nil
}

// FlashRow is one policy's line of the flash-crowd study: the comparison
// columns plus the forwarding fraction inside versus outside the crowd
// window and the peak instantaneous load imbalance while the crowd burns.
type FlashRow struct {
	Row           PolicyRow
	FwdIn, FwdOut float64
	PeakImbalance float64
}

// FlashStudy replays a flash-crowd trace — one cold file spiking to 60% of
// traffic for 15% of the stream — through every policy, reading the
// in-window forwarding spike (LARD's replication thrash, chash-bounded's
// spill) and the peak load imbalance off per-run series recordings.
func FlashStudy(p *runner.Pool, scale float64) ([]FlashRow, string, error) {
	spec := trace.GenSpec{
		Name: "flash", Mode: trace.ModeFlash,
		Files: 8000, AvgFileKB: 16, Requests: reqCount(400_000, scale),
		AvgReqKB: 12, Alpha: 1.0, LocalityP: 0.2,
		FlashStart: 0.4, FlashDur: 0.15, FlashFrac: 0.6, Seed: 43,
	}
	tr, err := trace.Generate(spec)
	if err != nil {
		return nil, "", err
	}
	recs := make([]*obs.Series, len(nonstationaryPolicies))
	jobs := make([]runner.Job, len(nonstationaryPolicies))
	for i, name := range nonstationaryPolicies {
		recs[i] = obs.NewSeries(0.5)
		jobs[i] = runner.Job{
			Key: "flash/" + name,
			Config: server.NewConfig(server.CustomServer, 8,
				server.WithPolicy(name), server.WithSeed(5),
				server.WithWarmFraction(0.1), server.WithSeries(recs[i])),
			Trace: tr,
		}
	}
	var rows []FlashRow
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		row := FlashRow{Row: policyRow(nonstationaryPolicies[i], jr.Result)}
		row.FwdIn, row.FwdOut, row.PeakImbalance = flashWindowStats(recs[i], spec.FlashStart, spec.FlashDur)
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flash crowd on %s: one cold file takes %.0f%% of traffic over [%.0f%%, %.0f%%) of the stream\n",
		tr.Name, spec.FlashFrac*100, spec.FlashStart*100, (spec.FlashStart+spec.FlashDur)*100)
	fmt.Fprintf(&b, "  %-14s %10s %8s %10s %10s %10s %12s\n",
		"policy", "req/s", "miss%", "fwd-in%", "fwd-out%", "imbalance", "peak-imbal")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %10.0f %8.1f %10.1f %10.1f %10.2f %12.2f\n",
			r.Row.Policy, r.Row.Throughput, r.Row.MissRate*100,
			r.FwdIn*100, r.FwdOut*100, r.Row.Imbalance, r.PeakImbalance)
	}
	return rows, b.String(), nil
}

// reqCount scales a full-size request budget, with a floor that keeps the
// series-based measurements meaningful at test scales.
func reqCount(full int, scale float64) int {
	n := int(float64(full) * scale)
	if n < 5000 {
		n = 5000
	}
	return n
}

// rotationTrace builds the abrupt hot-set rotation: two stationary Zipf
// halves over disjoint catalogs, concatenated. At the midpoint every
// popular document goes cold at once — the hardest realization of churn.
func rotationTrace(files, requests int, seed int64) (*trace.Trace, error) {
	half := requests / 2
	a, err := trace.Generate(trace.GenSpec{Name: "rotate-a", Files: files, AvgFileKB: 16,
		Requests: half, AvgReqKB: 12, Alpha: 1.0, LocalityP: 0.2, Seed: seed})
	if err != nil {
		return nil, err
	}
	b, err := trace.Generate(trace.GenSpec{Name: "rotate-b", Files: files, AvgFileKB: 16,
		Requests: requests - half, AvgReqKB: 12, Alpha: 1.0, LocalityP: 0.2, Seed: seed + 1})
	if err != nil {
		return nil, err
	}
	t := &trace.Trace{
		Name:     "rotate",
		Alpha:    a.Alpha,
		Sizes:    append(append([]int64(nil), a.Sizes...), b.Sizes...),
		Requests: append([]cache.FileID(nil), a.Requests...),
	}
	for _, id := range b.Requests {
		t.Requests = append(t.Requests, id+cache.FileID(files))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// clusterHitTimeline averages the per-node cache hit-rate samples of each
// probe tick into one cluster-wide timeline.
func clusterHitTimeline(rec *obs.Series) (ts, hits []float64) {
	sum := map[float64]float64{}
	n := map[float64]int{}
	for _, s := range rec.Samples() {
		if s.Metric != server.SeriesCacheHitRate {
			continue
		}
		sum[s.T] += s.V
		n[s.T]++
	}
	for t := range sum {
		ts = append(ts, t)
	}
	sort.Float64s(ts)
	for _, t := range ts {
		hits = append(hits, sum[t]/float64(n[t]))
	}
	return ts, hits
}

// adaptationLag reads the hot-set rotation response off a run's hit-rate
// timeline: the pre-rotation mean is taken over the steady window before
// the crash (the first tick falling under 70% of that running mean), and the
// lag is the time from the crash until recovery to 90% of the pre-rotation
// mean. The timeline is smoothed with a short trailing moving average
// first, so a single lucky tick (temporal locality re-hitting a just-cached
// file) cannot fake a recovery. A run that never crashes reports 0; one
// that never recovers reports the remaining run length.
func adaptationLag(rec *obs.Series) float64 {
	ts, hits := clusterHitTimeline(rec)
	if len(ts) < 8 {
		return 0
	}
	if w := min(5, len(hits)/8); w > 1 {
		sm := make([]float64, len(hits))
		var run float64
		for i, v := range hits {
			run += v
			if i >= w {
				run -= hits[i-w]
				sm[i] = run / float64(w)
			} else {
				sm[i] = run / float64(i+1)
			}
		}
		hits = sm
	}
	skip := len(ts) / 10 // discard cold-start ticks
	var preSum float64
	var preN int
	crash := -1
	for i := skip; i < len(ts); i++ {
		if preN >= 4 && hits[i] < 0.7*preSum/float64(preN) {
			crash = i
			break
		}
		preSum += hits[i]
		preN++
	}
	if crash < 0 {
		return 0
	}
	pre := preSum / float64(preN)
	for i := crash; i < len(ts); i++ {
		if hits[i] >= 0.9*pre {
			return ts[i] - ts[crash]
		}
	}
	return ts[len(ts)-1] - ts[crash]
}

// flashWindowStats reads the crowd response off one run's series: the
// dt-weighted forwarding fraction inside the crowd window versus the
// pre-crowd steady state, and the peak per-tick max/mean load imbalance
// inside the window. The window is located by time fraction — at
// saturation, completions accrue near-uniformly, so the request-index
// window maps onto the same fraction of the run.
func flashWindowStats(rec *obs.Series, fstart, fdur float64) (fwdIn, fwdOut, peakImbal float64) {
	var tEnd float64
	for _, s := range rec.Samples() {
		if s.T > tEnd {
			tEnd = s.T
		}
	}
	inWin := func(t float64) bool { return t >= fstart*tEnd && t < (fstart+fdur)*tEnd }
	preWin := func(t float64) bool { return t >= 0.05*tEnd && t < (fstart-0.02)*tEnd }

	var inSum, inDt, outSum, outDt float64
	loads := map[float64][]float64{}
	for _, s := range rec.Samples() {
		switch s.Metric {
		case server.SeriesForwardFrac:
			if inWin(s.T) {
				inSum += s.V * s.Dt
				inDt += s.Dt
			} else if preWin(s.T) {
				outSum += s.V * s.Dt
				outDt += s.Dt
			}
		case server.SeriesLoad:
			if inWin(s.T) {
				loads[s.T] = append(loads[s.T], s.V)
			}
		}
	}
	if inDt > 0 {
		fwdIn = inSum / inDt
	}
	if outDt > 0 {
		fwdOut = outSum / outDt
	}
	for _, ls := range loads {
		var sum, max float64
		for _, v := range ls {
			sum += v
			if v > max {
				max = v
			}
		}
		if sum > 0 {
			if imbal := max * float64(len(ls)) / sum; imbal > peakImbal {
				peakImbal = imbal
			}
		}
	}
	return fwdIn, fwdOut, peakImbal
}
