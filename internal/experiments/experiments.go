// Package experiments regenerates every table and figure of the paper's
// evaluation: the Table 1 parameter set, the modeling surfaces of Figures
// 3-6 and the Section 3.2 memory/replication studies, the Table 2 trace
// characteristics, the throughput-versus-cluster-size curves of Figures
// 7-10 with their model bounds, and the Section 5.2 secondary metrics
// (miss rates, CPU idle times, forwarding fractions, memory scaling, and
// the L2S sensitivity study).
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/queuemodel"
	"repro/internal/runner"
	"repro/internal/trace"
)

// Options size the experiment runs. Paper scale (Scale=1) replays every
// trace in full, which takes minutes per figure; smaller scales keep the
// curves' shape while running in seconds.
type Options struct {
	// Scale multiplies each trace's request count (1 = the paper's full
	// traces).
	Scale float64
	// Nodes are the cluster sizes of the Figures 7-10 sweeps.
	Nodes []int
	// CacheBytes is the per-node memory (Section 5.1: 32 MB).
	CacheBytes int64
	// Replication is the model curve's replication fraction (paper: 15%).
	Replication float64
	// Workers is how many simulations run concurrently: 0 uses every
	// core, 1 forces the sequential path. Results are identical either
	// way; only wall-clock time changes.
	Workers int
	// Progress, when non-nil, observes each completed simulation.
	Progress func(p runner.Progress)
}

// Pool returns the sweep executor the options describe.
func (o Options) Pool() *runner.Pool {
	p := runner.NewPool(o.Workers)
	p.OnProgress = o.Progress
	return p
}

// DefaultOptions returns a fast-but-faithful configuration: 15% of each
// trace's requests and the paper's cluster sizes.
func DefaultOptions() Options {
	return Options{
		Scale:       0.15,
		Nodes:       []int{1, 2, 4, 8, 12, 16},
		CacheBytes:  32 << 20,
		Replication: 0.15,
	}
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Values []float64 // aligned with the figure's X axis
}

// Figure is a reproduced paper figure: an X axis and one or more series.
type Figure struct {
	ID     string // e.g. "figure7"
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// Render draws the figure as an aligned text table.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%14s", s.Label)
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, "%14.1f", s.Values[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, ",%.2f", s.Values[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table1 renders the model parameters and their default values, the
// content of the paper's Table 1.
func Table1() string {
	p := queuemodel.DefaultParams()
	rows := [][2]string{
		{"N (nodes)", fmt.Sprintf("%d", p.Nodes)},
		{"R (replication)", fmt.Sprintf("%.0f%%", p.Replication*100)},
		{"alpha (Zipf constant)", fmt.Sprintf("%g", p.Alpha)},
		{"mu_r (routing rate)", fmt.Sprintf("%.0f/size ops/s", p.RouterKBps)},
		{"mu_i (request service rate at NI)", fmt.Sprintf("%.0f ops/s", p.NIInRate)},
		{"mu_p (request read/parsing rate)", fmt.Sprintf("%.0f ops/s", p.ParseRate)},
		{"mu_f (request forwarding rate)", fmt.Sprintf("%.0f ops/s", p.ForwardRate)},
		{"mu_m (reply rate, cached)", fmt.Sprintf("1/(%g + S/%g) ops/s", p.ReplyFixed, p.ReplyKBps)},
		{"mu_d (disk access rate)", fmt.Sprintf("1/(%g + S/%g) ops/s", p.DiskFixed, p.DiskKBps)},
		{"mu_o (reply service rate at NI)", fmt.Sprintf("1/(%g + S/%g) ops/s", p.NIOutFixed, p.NIOutKBps)},
		{"C (cache per node)", fmt.Sprintf("%d MB", p.CacheBytes>>20)},
	}
	var b strings.Builder
	b.WriteString("table1: model parameters and default values\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-36s %s\n", r[0], r[1])
	}
	return b.String()
}

// Table2 generates the four paper traces at the given scale and reports
// their characteristics, the content of the paper's Table 2.
func Table2(opts Options) ([]trace.Characteristics, string) {
	var out []trace.Characteristics
	var b strings.Builder
	b.WriteString("table2: trace characteristics\n")
	fmt.Fprintf(&b, "  %-10s %9s %12s %12s %11s %8s %11s\n",
		"trace", "files", "avg file", "requests", "avg req", "alpha", "working set")
	for _, spec := range trace.PaperTraces() {
		tr := trace.MustGenerate(spec.Scaled(opts.Scale))
		ch := trace.Characterize(tr)
		out = append(out, ch)
		fmt.Fprintf(&b, "  %-10s %9d %9.1f KB %12d %8.1f KB %8.2f %8.0f MB\n",
			ch.Name, ch.CatalogFiles, ch.CatalogAvgKB, ch.NumRequests, ch.AvgReqKB,
			ch.Alpha, ch.CatalogMB)
	}
	return out, b.String()
}

// SequentialMissRate measures the miss rate of a single sequential server
// with the given cache over a trace, after warming on the first third —
// the calibration quantity of Section 5.1 (9-28% at 32 MB).
func SequentialMissRate(tr *trace.Trace, cacheBytes int64) float64 {
	return 1 - HitRateAtCapacity(tr, cacheBytes)
}

// HitRateAtCapacity measures the warm LRU hit rate of the trace at a given
// cache capacity. The model curves of Figures 7-10 use it to instantiate
// the paper's hit-rate algebra with the workload's true behavior: Hlo at
// one node's memory, Hlc at the cluster-wide cache Clc = N(1-R)C + RC, and
// h at the replicated slice RC. (The paper's closed-form z(n, F) assumes
// independent Zipf references; real and realistic traces also carry
// temporal locality, which an LRU pass captures and a z-evaluation would
// miss, so anchoring on measured hit rates keeps the model an upper bound.)
func HitRateAtCapacity(tr *trace.Trace, cacheBytes int64) float64 {
	if cacheBytes <= 0 {
		return 0
	}
	c := cache.NewLRU(cacheBytes)
	warm := tr.NumRequests() / 3
	for i, id := range tr.Requests {
		if i < warm {
			c.Warm(id, tr.Size(id))
		} else {
			c.Access(id, tr.Size(id))
		}
	}
	return c.HitRate()
}

// ReuseCurve computes the trace's byte-granular LRU miss-ratio curve in a
// single pass (Mattson's stack algorithm), warmed on the first third:
// Curve.HitRate(C) then equals a direct LRU simulation at any capacity
// larger than the biggest file, so one pass anchors the model's hit rates
// for every cluster size at once.
func ReuseCurve(tr *trace.Trace) *cache.Curve {
	b := cache.NewCurveBuilder(tr.NumRequests())
	warm := tr.NumRequests() / 3
	for i, id := range tr.Requests {
		if i < warm {
			b.Warm(id, tr.Size(id))
		} else {
			b.Add(id, tr.Size(id))
		}
	}
	return b.Curve()
}

// modelBound computes the per-trace "model" curve of Figures 7-10: the
// locality-conscious throughput bound with 15% replication, with all three
// hit rates measured on the workload itself (via its reuse curve).
func modelBound(curve *cache.Curve, ch trace.Characteristics, nodes int, opts Options) float64 {
	p := queuemodel.DefaultParams()
	p.Nodes = nodes
	p.CacheBytes = opts.CacheBytes
	p.Replication = opts.Replication
	p.AvgFileKB = ch.AvgReqKB

	clc := p.TotalConsciousCache()
	hlc := curve.HitRate(int64(clc))
	h := curve.HitRate(int64(opts.Replication * float64(opts.CacheBytes)))
	return p.Bound(hlc, p.ForwardFraction(h)).RequestsPerSec
}
