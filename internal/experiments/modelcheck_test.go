package experiments

import (
	"testing"

	"repro/internal/trace"
)

func TestModelAnchorConsistency(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	curve := ReuseCurve(tr)
	opts := DefaultOptions()
	ch := trace.Characterize(tr)
	for _, n := range []int{1, 8, 16} {
		viaCurve := modelBound(curve, ch, n, opts)
		// Recompute with direct LRU passes.
		p := queuemodelParams(ch, n, opts)
		hlc := HitRateAtCapacity(tr, int64(p.TotalConsciousCache()))
		h := HitRateAtCapacity(tr, int64(opts.Replication*float64(opts.CacheBytes)))
		direct := p.Bound(hlc, p.ForwardFraction(h)).RequestsPerSec
		if viaCurve != direct {
			t.Errorf("n=%d: curve %v != direct %v", n, viaCurve, direct)
		}
		t.Logf("n=%d model=%v", n, viaCurve)
	}
}
