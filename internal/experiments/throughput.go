package experiments

import (
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

// TraceRun holds everything measured for one trace across cluster sizes —
// the raw material of Figures 7-10 and the Section 5.2 metrics.
type TraceRun struct {
	Trace   string
	Char    trace.Characteristics
	SeqMiss float64 // sequential-server miss rate at 32 MB
	Nodes   []int

	Model   []float64                  // model bound per cluster size
	Results map[string][]server.Result // system name -> per-cluster-size results
}

// systems are the three simulated servers, in the paper's plotting order.
var systems = []server.System{server.L2SServer, server.LARDServer, server.Traditional}

// RunTrace simulates all three systems over one paper trace for every
// cluster size in opts and computes the per-size model bound.
func RunTrace(name string, opts Options) (*TraceRun, error) {
	spec, err := trace.PaperTrace(name)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Generate(spec.Scaled(opts.Scale))
	if err != nil {
		return nil, err
	}
	return RunWorkload(tr, opts)
}

// RunWorkload is RunTrace for an arbitrary, already-generated workload.
func RunWorkload(tr *trace.Trace, opts Options) (*TraceRun, error) {
	curve := ReuseCurve(tr)
	run := &TraceRun{
		Trace:   tr.Name,
		Char:    trace.Characterize(tr),
		SeqMiss: curve.MissRate(opts.CacheBytes),
		Nodes:   opts.Nodes,
		Results: make(map[string][]server.Result),
	}
	var jobs []runner.Job
	for _, n := range opts.Nodes {
		run.Model = append(run.Model, modelBound(curve, run.Char, n, opts))
		for _, sys := range systems {
			jobs = append(jobs, runner.Job{
				Key:    fmt.Sprintf("%s/%s/n=%d", tr.Name, sys, n),
				Config: server.NewConfig(sys, n, server.WithCacheBytes(opts.CacheBytes)),
				Trace:  tr,
			})
		}
	}
	// Submission order is (node, system)-major, so reassembling in that
	// order rebuilds each per-system slice aligned with opts.Nodes.
	for _, jr := range opts.Pool().Run(jobs) {
		if jr.Err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		run.Results[jr.Result.System] = append(run.Results[jr.Result.System], jr.Result)
	}
	return run, nil
}

// metric extracts one per-size series for a system.
func (tr *TraceRun) metric(system string, f func(server.Result) float64) []float64 {
	rs := tr.Results[system]
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r)
	}
	return out
}

func nodesAsFloats(nodes []int) []float64 {
	out := make([]float64, len(nodes))
	for i, n := range nodes {
		out[i] = float64(n)
	}
	return out
}

// ThroughputFigure renders the trace's Figure 7-10 curve set: model, L2S,
// LARD, and traditional throughput versus cluster size.
func (tr *TraceRun) ThroughputFigure(id string) Figure {
	return Figure{
		ID:     id,
		Title:  fmt.Sprintf("throughputs for the %s trace", tr.Trace),
		XLabel: "nodes",
		YLabel: "requests/sec",
		X:      nodesAsFloats(tr.Nodes),
		Series: []Series{
			{Label: "model", Values: tr.Model},
			{Label: "l2s", Values: tr.metric("l2s", func(r server.Result) float64 { return r.Throughput })},
			{Label: "lard", Values: tr.metric("lard", func(r server.Result) float64 { return r.Throughput })},
			{Label: "trad", Values: tr.metric("traditional", func(r server.Result) float64 { return r.Throughput })},
		},
	}
}

// MissRateFigure renders the Section 5.2 cache miss rate comparison.
func (tr *TraceRun) MissRateFigure() Figure {
	pct := func(f func(server.Result) float64) func(server.Result) float64 {
		return func(r server.Result) float64 { return f(r) * 100 }
	}
	miss := func(r server.Result) float64 { return r.MissRate }
	return Figure{
		ID:     "missrates-" + tr.Trace,
		Title:  fmt.Sprintf("cache miss rates for the %s trace (%%)", tr.Trace),
		XLabel: "nodes",
		YLabel: "miss %",
		X:      nodesAsFloats(tr.Nodes),
		Series: []Series{
			{Label: "l2s", Values: tr.metric("l2s", pct(miss))},
			{Label: "lard", Values: tr.metric("lard", pct(miss))},
			{Label: "trad", Values: tr.metric("traditional", pct(miss))},
		},
	}
}

// IdleTimeFigure renders the Section 5.2 CPU idle time comparison.
func (tr *TraceRun) IdleTimeFigure() Figure {
	idle := func(r server.Result) float64 { return r.CPUIdle * 100 }
	return Figure{
		ID:     "idletimes-" + tr.Trace,
		Title:  fmt.Sprintf("CPU idle times for the %s trace (%%)", tr.Trace),
		XLabel: "nodes",
		YLabel: "idle %",
		X:      nodesAsFloats(tr.Nodes),
		Series: []Series{
			{Label: "l2s", Values: tr.metric("l2s", idle)},
			{Label: "lard", Values: tr.metric("lard", idle)},
			{Label: "trad", Values: tr.metric("traditional", idle)},
		},
	}
}

// ForwardingFigure renders the Section 5.2 forwarded-request comparison.
func (tr *TraceRun) ForwardingFigure() Figure {
	fwd := func(r server.Result) float64 { return r.ForwardedFrac * 100 }
	return Figure{
		ID:     "forwarding-" + tr.Trace,
		Title:  fmt.Sprintf("forwarded requests for the %s trace (%%)", tr.Trace),
		XLabel: "nodes",
		YLabel: "forwarded %",
		X:      nodesAsFloats(tr.Nodes),
		Series: []Series{
			{Label: "l2s", Values: tr.metric("l2s", fwd)},
			{Label: "lard", Values: tr.metric("lard", fwd)},
		},
	}
}

// Summary condenses a run into the headline comparisons the paper quotes
// at the largest cluster size.
func (tr *TraceRun) Summary() string {
	last := len(tr.Nodes) - 1
	l2s := tr.Results["l2s"][last].Throughput
	lard := tr.Results["lard"][last].Throughput
	trad := tr.Results["traditional"][last].Throughput
	model := tr.Model[last]
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %d nodes: model=%.0f l2s=%.0f lard=%.0f trad=%.0f\n",
		tr.Trace, tr.Nodes[last], model, l2s, lard, trad)
	fmt.Fprintf(&b, "  l2s vs model: %.0f%% below bound\n", (1-l2s/model)*100)
	fmt.Fprintf(&b, "  l2s vs lard: %+.0f%%   l2s vs trad: %+.0f%%\n",
		(l2s/lard-1)*100, (l2s/trad-1)*100)
	fmt.Fprintf(&b, "  sequential 32MB miss rate: %.1f%%\n", tr.SeqMiss*100)
	return b.String()
}

// FigureIDs maps trace names to their paper figure numbers.
var FigureIDs = map[string]string{
	"calgary":  "figure7",
	"clarknet": "figure8",
	"nasa":     "figure9",
	"rutgers":  "figure10",
}
