package experiments

import (
	"fmt"
	"strings"

	"repro/internal/queuemodel"
)

// ModelSurfaces reproduces the modeling figures: Figure 3 (oblivious
// throughput), Figure 4 (conscious throughput), and Figure 5 (their ratio)
// over the default (hit rate, file size) grid.
func ModelSurfaces() (fig3, fig4, fig5 queuemodel.Surface) {
	p := queuemodel.DefaultParams()
	hits, sizes := queuemodel.DefaultGrid()
	return queuemodel.ObliviousSurface(p, hits, sizes),
		queuemodel.ConsciousSurface(p, hits, sizes),
		queuemodel.IncreaseSurface(p, hits, sizes)
}

// Figure6 reproduces the side view of the increase surface: the maximum
// throughput increase at each hit rate.
func Figure6(fig5 queuemodel.Surface) Figure {
	return Figure{
		ID:     "figure6",
		Title:  "throughput increase due to locality (side view)",
		XLabel: "hit_rate",
		YLabel: "max increase",
		X:      fig5.HitRates,
		Series: []Series{{Label: "increase", Values: fig5.SideView()}},
	}
}

// SurfaceSummary condenses a surface into the numbers the paper's prose
// quotes: the peak, its location, and a few named grid points.
func SurfaceSummary(s queuemodel.Surface) string {
	peak, hit, size := s.Max()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: peak %.1f at (Hlo=%.2f, S=%gKB)\n", s.Name, peak, hit, size)
	for _, pt := range [][2]float64{{0.5, 8}, {0.8, 8}, {0.9, 8}, {0.95, 4}, {1.0, 4}, {0.8, 64}} {
		fmt.Fprintf(&b, "  at (Hlo=%.2f, S=%gKB): %.1f\n", pt[0], pt[1], s.At(pt[0], pt[1]))
	}
	return b.String()
}

// MemorySweep reproduces the Section 3.2 memory study: peak and mean
// locality gain for per-node memories of 128, 256, and 512 MB.
func MemorySweep() Figure {
	hits, sizes := queuemodel.DefaultGrid()
	mems := []int64{128 << 20, 256 << 20, 512 << 20}
	fig := Figure{
		ID:     "model-memory",
		Title:  "locality gain vs per-node memory (section 3.2)",
		XLabel: "memory_mb",
		YLabel: "gain",
	}
	var peaks, means []float64
	for _, m := range mems {
		p := queuemodel.DefaultParams()
		p.CacheBytes = m
		s := queuemodel.IncreaseSurface(p, hits, sizes)
		peak, _, _ := s.Max()
		var sum float64
		var n int
		for _, row := range s.Values {
			for _, v := range row {
				sum += v
				n++
			}
		}
		fig.X = append(fig.X, float64(m>>20))
		peaks = append(peaks, peak)
		means = append(means, sum/float64(n))
	}
	fig.Series = []Series{
		{Label: "peak gain", Values: peaks},
		{Label: "mean gain", Values: means},
	}
	return fig
}

// ReplicationSweep reproduces the Section 3.2 replication study: how the
// replication fraction R trades forwarding (Q) against total cache (Hlc),
// at a representative operating point (Hlo=0.7, S=8KB).
func ReplicationSweep() Figure {
	fig := Figure{
		ID:     "model-replication",
		Title:  "replication study at Hlo=0.7, S=8KB (section 3.2)",
		XLabel: "replication",
		YLabel: "value",
	}
	var thr, hlcs, qs []float64
	for _, r := range []float64{0, 0.05, 0.15, 0.30, 0.50, 1.0} {
		p := queuemodel.DefaultParams()
		p.AvgFileKB = 8
		p.Replication = r
		hlc, h := p.HitRates(0.7)
		q := p.ForwardFraction(h)
		fig.X = append(fig.X, r)
		thr = append(thr, p.Conscious(0.7).RequestsPerSec)
		hlcs = append(hlcs, hlc*100)
		qs = append(qs, q*100)
	}
	fig.Series = []Series{
		{Label: "throughput", Values: thr},
		{Label: "Hlc %", Values: hlcs},
		{Label: "forwarded %", Values: qs},
	}
	return fig
}
