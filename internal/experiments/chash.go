package experiments

import (
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

// ChashScaleRow is one line of the web-scale dispatch study: a policy at a
// cluster size, with the control-traffic columns that separate the
// zero-coordination consistent-hashing family from the directory policies.
type ChashScaleRow struct {
	Nodes    int
	Row      PolicyRow
	Messages uint64
	Gossip   uint64
}

// chashScalePolicies are the contenders of the scaling study: the three
// consistent-hashing variants against the two locality-conscious directory
// policies of the paper's evaluation.
var chashScalePolicies = []string{"chash", "chash-bounded", "chash-d", "lard", "l2s"}

// ChashScaleStudy sweeps the consistent-hashing family against LARD and L2S
// on one Zipf workload across cluster sizes — the Figure-7-style scaling
// question asked at web scale (catalogs far beyond any node's cache, node
// counts beyond any broadcast budget). The gossip column is the study's
// point: chash makes every decision from local hashes and true local loads,
// so its policy control traffic is exactly zero at every N, while the
// directory policies pay coordination traffic that grows with the cluster.
func ChashScaleStudy(p *runner.Pool, nodesList []int, files, requests int) (Figure, []ChashScaleRow, string, error) {
	tr, err := trace.Generate(trace.GenSpec{
		Name:      fmt.Sprintf("chash-scale-F%d", files),
		Files:     files,
		AvgFileKB: 6,
		Requests:  requests,
		AvgReqKB:  5,
		Alpha:     0.8,
		LocalityP: 0.3,
		Seed:      11,
	})
	if err != nil {
		return Figure{}, nil, "", err
	}

	var jobs []runner.Job
	var meta []struct {
		nodes  int
		policy string
	}
	for _, n := range nodesList {
		for _, name := range chashScalePolicies {
			meta = append(meta, struct {
				nodes  int
				policy string
			}{n, name})
			jobs = append(jobs, runner.Job{
				Key: fmt.Sprintf("chash-scale/%s/n=%d", name, n),
				Config: server.NewConfig(server.CustomServer, n,
					server.WithPolicy(name), server.WithSeed(5)),
				Trace: tr,
			})
		}
	}

	var rows []ChashScaleRow
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return Figure{}, nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		rows = append(rows, ChashScaleRow{
			Nodes:    meta[i].nodes,
			Row:      policyRow(meta[i].policy, jr.Result),
			Messages: jr.Result.ControlMessages,
			Gossip:   jr.Result.GossipMessages,
		})
	}

	fig := Figure{
		ID:     "chash-scale",
		Title:  fmt.Sprintf("throughput vs cluster size, %d-file Zipf catalog, %d requests", files, requests),
		XLabel: "nodes",
		YLabel: "req/s",
	}
	for _, n := range nodesList {
		fig.X = append(fig.X, float64(n))
	}
	for _, name := range chashScalePolicies {
		s := Series{Label: name}
		for _, r := range rows {
			if r.Row.Policy == name {
				s.Values = append(s.Values, r.Row.Throughput)
			}
		}
		fig.Series = append(fig.Series, s)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "web-scale dispatch on %s: consistent hashing vs directory policies\n", tr.Name)
	fmt.Fprintf(&b, "  %5s %-14s %10s %8s %8s %10s %12s %10s\n",
		"nodes", "policy", "req/s", "miss%", "fwd%", "imbalance", "ctrl msgs", "gossip")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %5d %-14s %10.0f %8.1f %8.1f %10.2f %12d %10d\n",
			r.Nodes, r.Row.Policy, r.Row.Throughput, r.Row.MissRate*100,
			r.Row.Forwarded*100, r.Row.Imbalance, r.Messages, r.Gossip)
	}
	return fig, rows, b.String(), nil
}

// SpecStudy runs caller-supplied policy specs (the cmd/experiments -policy
// flag) side by side on one workload, so any parameterization reachable
// through policy.ParseSpec — "chash:vnodes=64,load=1.5,d=2",
// "lard:thigh=80", "l2s:delta=8" — can be compared without editing code.
func SpecStudy(p *runner.Pool, tr *trace.Trace, specs []string, nodes int) ([]ChashScaleRow, string, error) {
	jobs := make([]runner.Job, len(specs))
	for i, spec := range specs {
		jobs[i] = runner.Job{
			Key: fmt.Sprintf("spec/%s/n=%d", spec, nodes),
			Config: server.NewConfig(server.CustomServer, nodes,
				server.WithPolicy(spec)),
			Trace: tr,
		}
	}
	var rows []ChashScaleRow
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		rows = append(rows, ChashScaleRow{
			Nodes:    nodes,
			Row:      policyRow(specs[i], jr.Result),
			Messages: jr.Result.ControlMessages,
			Gossip:   jr.Result.GossipMessages,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy specs on %s, %d nodes\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-36s %10s %8s %8s %10s %12s %10s\n",
		"spec", "req/s", "miss%", "fwd%", "imbalance", "ctrl msgs", "gossip")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-36s %10.0f %8.1f %8.1f %10.2f %12d %10d\n",
			r.Row.Policy, r.Row.Throughput, r.Row.MissRate*100,
			r.Row.Forwarded*100, r.Row.Imbalance, r.Messages, r.Gossip)
	}
	return rows, b.String(), nil
}
