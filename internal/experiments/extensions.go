package experiments

import (
	"fmt"
	"strings"

	"repro/internal/queuemodel"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

// PolicyRow is one line of the arrival/distribution policy comparison.
type PolicyRow struct {
	Policy     string
	Throughput float64
	MissRate   float64
	Forwarded  float64
	Imbalance  float64
	CPUIdle    float64
}

// policyRow condenses a result into the comparison columns.
func policyRow(name string, r server.Result) PolicyRow {
	return PolicyRow{
		Policy:     name,
		Throughput: r.Throughput,
		MissRate:   r.MissRate,
		Forwarded:  r.ForwardedFrac,
		Imbalance:  r.LoadImbalance,
		CPUIdle:    r.CPUIdle,
	}
}

// runRows executes one job per row label and condenses the results.
func runRows(p *runner.Pool, jobs []runner.Job, label func(i int, r server.Result) string) ([]PolicyRow, error) {
	var rows []PolicyRow
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		rows = append(rows, policyRow(label(i, jr.Result), jr.Result))
	}
	return rows, nil
}

// PolicyComparison contrasts the full policy spectrum on one workload: the
// three servers of the paper's evaluation plus the strawmen its earlier
// sections discuss — strict locality by hashing (Section 1: "can produce
// severe load imbalance"), random arrival, and round-robin DNS with
// translation caching (Section 2: "can cause significant load imbalance").
// Every policy is constructed through the policy registry.
func PolicyComparison(p *runner.Pool, tr *trace.Trace, nodes int) ([]PolicyRow, string, error) {
	names := []string{"l2s", "lard", "traditional", "hashing", "random", "cached-dns"}
	jobs := make([]runner.Job, len(names))
	for i, name := range names {
		jobs[i] = runner.Job{
			Key:    fmt.Sprintf("policies/%s/n=%d", name, nodes),
			Config: server.NewConfig(server.CustomServer, nodes, server.WithPolicy(name)),
			Trace:  tr,
		}
	}
	rows, err := runRows(p, jobs, func(i int, _ server.Result) string { return names[i] })
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy comparison on %s, %d nodes\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-12s %10s %8s %8s %10s %8s\n",
		"policy", "req/s", "miss%", "fwd%", "imbalance", "idle%")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %10.0f %8.1f %8.1f %10.2f %8.1f\n",
			r.Policy, r.Throughput, r.MissRate*100, r.Forwarded*100, r.Imbalance, r.CPUIdle*100)
	}
	return rows, b.String(), nil
}

// LARDVariants contrasts plain LARD (one server per target, reassignment
// only on extreme imbalance) with LARD/R (replicated server sets), the
// distinction Pai et al. draw and the paper inherits. For HTTP/1.0
// workloads the two behave similarly — replication matters when hot
// documents outgrow one node, which the thresholds make rare at these
// loads.
func LARDVariants(p *runner.Pool, tr *trace.Trace, nodes int) ([]PolicyRow, string, error) {
	jobs := []runner.Job{
		{
			Key:    "lard-variants/basic",
			Config: server.NewConfig(server.CustomServer, nodes, server.WithPolicy("lard-basic")),
			Trace:  tr,
		},
		{
			Key:    "lard-variants/replicated",
			Config: server.NewConfig(server.LARDServer, nodes),
			Trace:  tr,
		},
	}
	rows, err := runRows(p, jobs, func(_ int, r server.Result) string { return r.System })
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lard variants on %s, %d nodes\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-12s %10s %8s %10s\n", "variant", "req/s", "miss%", "imbalance")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %10.0f %8.1f %10.2f\n",
			r.Policy, r.Throughput, r.MissRate*100, r.Imbalance)
	}
	return rows, b.String(), nil
}

// PersistentRow is one line of the HTTP/1.0-versus-HTTP/1.1 study.
type PersistentRow struct {
	System     string
	Mode       string
	Throughput float64
	Forwarded  float64
	LatencyP50 float64
}

// PersistentStudy contrasts per-request connections (HTTP/1.0, the paper's
// evaluation setting) with persistent connections handled by back-end
// forwarding (the HTTP/1.1 adaptation Section 4 defers to Aron et al.).
// The headline effect: persistence multiplies LARD's front-end ceiling by
// the requests-per-connection factor, while L2S — which has no per-request
// front-end cost to amortize — holds its throughput and halves latency.
func PersistentStudy(p *runner.Pool, tr *trace.Trace, nodes int, reqsPerConn float64) ([]PersistentRow, string, error) {
	type study struct {
		sys        server.System
		persistent bool
	}
	var cases []study
	var jobs []runner.Job
	for _, sys := range []server.System{server.L2SServer, server.LARDServer, server.Traditional} {
		for _, persistent := range []bool{false, true} {
			opts := []server.Option{}
			mode := "http/1.0"
			if persistent {
				opts = append(opts, server.WithPersistent(reqsPerConn))
				mode = "http/1.1"
			}
			cases = append(cases, study{sys, persistent})
			jobs = append(jobs, runner.Job{
				Key:    fmt.Sprintf("persistent/%s/%s", sys, mode),
				Config: server.NewConfig(sys, nodes, opts...),
				Trace:  tr,
			})
		}
	}
	var rows []PersistentRow
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		mode := "http/1.0"
		if cases[i].persistent {
			mode = "http/1.1"
		}
		rows = append(rows, PersistentRow{
			System:     jr.Result.System,
			Mode:       mode,
			Throughput: jr.Result.Throughput,
			Forwarded:  jr.Result.ForwardedFrac,
			LatencyP50: jr.Result.LatencyP50,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "persistent connections on %s, %d nodes, mean %.0f requests/connection\n",
		tr.Name, nodes, reqsPerConn)
	fmt.Fprintf(&b, "  %-12s %-9s %10s %8s %12s\n", "system", "mode", "req/s", "fwd%", "p50 latency")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %-9s %10.0f %8.1f %9.2f ms\n",
			r.System, r.Mode, r.Throughput, r.Forwarded*100, r.LatencyP50*1000)
	}
	return rows, b.String(), nil
}

// LatencyStudy drives the simulator in open-loop mode across offered loads
// and compares the measured mean response time with the analytic model's
// M/M/1-network Latency at the same loads — the response-time counterpart
// of the throughput bounds (the paper focuses on throughput because WAN
// latencies dwarf server latencies; this study validates the simulator
// against the model's queueing formulas anyway).
func LatencyStudy(p *runner.Pool, tr *trace.Trace, nodes int, rates []float64) (Figure, string, error) {
	ch := trace.Characterize(tr)
	opts := DefaultOptions()
	params := queuemodelParams(ch, nodes, opts)
	hlc := HitRateAtCapacity(tr, int64(params.TotalConsciousCache()))
	h := HitRateAtCapacity(tr, int64(opts.Replication*float64(opts.CacheBytes)))

	jobs := make([]runner.Job, len(rates))
	for i, rate := range rates {
		jobs[i] = runner.Job{
			Key:    fmt.Sprintf("latency/l2s/rate=%g", rate),
			Config: server.NewConfig(server.L2SServer, nodes, server.WithArrivalRate(rate)),
			Trace:  tr,
		}
	}

	fig := Figure{
		ID:     "latency-" + tr.Name,
		Title:  fmt.Sprintf("mean response time vs offered load, %s, %d nodes (ms)", tr.Name, nodes),
		XLabel: "req/s",
		YLabel: "latency ms",
	}
	var sim, model []float64
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return Figure{}, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		rate := rates[i]
		fig.X = append(fig.X, rate)
		sim = append(sim, jr.Result.LatencyMean*1000)
		model = append(model, params.Latency(rate, hlc, params.ForwardFraction(h))*1000)
	}
	fig.Series = []Series{
		{Label: "simulated", Values: sim},
		{Label: "model", Values: model},
	}
	return fig, fig.Render(), nil
}

// queuemodelParams instantiates the model for a characterized workload.
func queuemodelParams(ch trace.Characteristics, nodes int, opts Options) queuemodel.Params {
	p := queuemodel.DefaultParams()
	p.Nodes = nodes
	p.CacheBytes = opts.CacheBytes
	p.Replication = opts.Replication
	p.AvgFileKB = ch.AvgReqKB
	return p
}

// HeterogeneousStudy relaxes the paper's "all cluster nodes are equally
// powerful" assumption: half the cluster runs at full speed, half at the
// given fraction. Connection-count load balancing adapts automatically —
// slower nodes hold their T-connection budget longer, so new work drifts
// to the fast nodes — which is why both L2S and LARD degrade gracefully
// while a speed-oblivious policy would track the slowest node.
func HeterogeneousStudy(p *runner.Pool, tr *trace.Trace, nodes int, slowFactor float64) ([]PolicyRow, string, error) {
	profiles := make([]server.NodeProfile, nodes)
	for i := range profiles {
		profiles[i] = server.NodeProfile{CPUSpeed: 1, DiskSpeed: 1}
		if i >= nodes/2 {
			profiles[i].CPUSpeed = slowFactor
		}
	}
	var names []string
	var jobs []runner.Job
	for _, sys := range []server.System{server.L2SServer, server.LARDServer, server.Traditional} {
		for _, het := range []bool{false, true} {
			opts := []server.Option{}
			name := sys.String() + "/homogeneous"
			if het {
				opts = append(opts, server.WithProfiles(profiles...))
				name = fmt.Sprintf("%s/half at %.0f%%", sys, slowFactor*100)
			}
			names = append(names, name)
			jobs = append(jobs, runner.Job{
				Key:    "heterogeneous/" + name,
				Config: server.NewConfig(sys, nodes, opts...),
				Trace:  tr,
			})
		}
	}
	rows, err := runRows(p, jobs, func(i int, _ server.Result) string { return names[i] })
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "heterogeneous cluster on %s, %d nodes\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-24s %10s %10s\n", "configuration", "req/s", "imbalance")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %10.0f %10.2f\n", r.Policy, r.Throughput, r.Imbalance)
	}
	return rows, b.String(), nil
}

// TwoTierStudy models a common upgrade path the paper's homogeneity
// assumption excludes: a small tier of fast machines with SSD-class disks
// and extra memory in front of a larger tier of older disk-bound nodes.
// Each paper policy runs next to its capacity-weighted variant on the same
// tiered cluster, so the table isolates what speed-awareness in the
// distribution decision is worth. The header reports the heterogeneous
// model bound for the tiered hardware as the capacity yardstick.
func TwoTierStudy(p *runner.Pool, tr *trace.Trace, nodes, fastNodes int) ([]PolicyRow, string, error) {
	if fastNodes < 1 || fastNodes >= nodes {
		return nil, "", fmt.Errorf("experiments: two-tier split %d of %d nodes", fastNodes, nodes)
	}
	fast := server.NodeProfile{CPUSpeed: 2, DiskSpeed: 8, CacheBytes: 64 << 20}
	slow := server.NodeProfile{CPUSpeed: 1, DiskSpeed: 1, CacheBytes: 32 << 20}
	profiles := make([]server.NodeProfile, nodes)
	for i := range profiles {
		if i < fastNodes {
			profiles[i] = fast
		} else {
			profiles[i] = slow
		}
	}

	rows, err := weightedPolicyRows(p, tr, "twotier", profiles)
	if err != nil {
		return nil, "", err
	}

	bound := profileBound(tr, profiles)
	var b strings.Builder
	fmt.Fprintf(&b, "two-tier cluster on %s: %d fast (2x cpu, 8x disk, 64 MB) + %d slow nodes\n",
		tr.Name, fastNodes, nodes-fastNodes)
	fmt.Fprintf(&b, "  model bound %.0f req/s (hit %.2f, bottleneck %v)\n",
		bound.RequestsPerSec, bound.Hit, bound.Bottleneck)
	b.WriteString(weightedPolicyTable(rows))
	return rows, b.String(), nil
}

// ProfileStudy runs each paper policy next to its capacity-weighted
// variant on caller-supplied hardware (the cmd/experiments -profiles
// flag): the profile set fixes the cluster size.
func ProfileStudy(p *runner.Pool, tr *trace.Trace, profiles []server.NodeProfile) ([]PolicyRow, string, error) {
	if len(profiles) == 0 {
		return nil, "", fmt.Errorf("experiments: profile study needs at least one node profile")
	}
	rows, err := weightedPolicyRows(p, tr, "profiles", profiles)
	if err != nil {
		return nil, "", err
	}
	bound := profileBound(tr, profiles)
	var b strings.Builder
	fmt.Fprintf(&b, "profiled cluster on %s, %d nodes\n", tr.Name, len(profiles))
	fmt.Fprintf(&b, "  model bound %.0f req/s (hit %.2f, bottleneck %v)\n",
		bound.RequestsPerSec, bound.Hit, bound.Bottleneck)
	b.WriteString(weightedPolicyTable(rows))
	return rows, b.String(), nil
}

// weightedPolicyRows runs the paper policies and their capacity-weighted
// variants on one profiled cluster.
func weightedPolicyRows(p *runner.Pool, tr *trace.Trace, prefix string, profiles []server.NodeProfile) ([]PolicyRow, error) {
	policies := []string{"l2s", "l2s-weighted", "lard", "lard-weighted", "traditional", "wlc"}
	jobs := make([]runner.Job, len(policies))
	for i, name := range policies {
		jobs[i] = runner.Job{
			Key: prefix + "/" + name,
			Config: server.NewConfig(server.CustomServer, len(profiles),
				server.WithPolicy(name),
				server.WithProfiles(profiles...)),
			Trace: tr,
		}
	}
	return runRows(p, jobs, func(i int, _ server.Result) string { return policies[i] })
}

// profileBound evaluates the heterogeneous locality-conscious model bound
// for a profiled cluster on a characterized workload.
func profileBound(tr *trace.Trace, profiles []server.NodeProfile) queuemodel.HeteroThroughput {
	ch := trace.Characterize(tr)
	params := queuemodel.DefaultParams()
	params.Nodes = len(profiles)
	params.AvgFileKB = ch.AvgReqKB
	return params.HeterogeneousConsciousForCatalog(profiles, int64(ch.CatalogFiles))
}

func weightedPolicyTable(rows []PolicyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-16s %10s %8s %8s %10s\n", "policy", "req/s", "miss%", "fwd%", "imbalance")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-16s %10.0f %8.1f %8.1f %10.2f\n",
			r.Policy, r.Throughput, r.MissRate*100, r.Forwarded*100, r.Imbalance)
	}
	return b.String()
}

// SlowNodeStudy measures how far one degraded machine drags a cluster: a
// uniform baseline, the same cluster with node `slowNode` at the given
// speed fraction, and — reusing the fault injector — the degraded node
// crashing mid-run, which for a weighted policy should *recover* capacity
// because the failover redistribution stops routing to the straggler.
func SlowNodeStudy(p *runner.Pool, tr *trace.Trace, nodes, slowNode int, slowFactor float64) ([]PolicyRow, string, error) {
	if slowNode < 0 || slowNode >= nodes {
		return nil, "", fmt.Errorf("experiments: slow node %d of %d", slowNode, nodes)
	}
	profiles := make([]server.NodeProfile, nodes)
	for i := range profiles {
		profiles[i] = server.NodeProfile{CPUSpeed: 1, DiskSpeed: 1}
	}
	profiles[slowNode] = server.NodeProfile{CPUSpeed: slowFactor, DiskSpeed: slowFactor}

	scenarios := []struct {
		name string
		opts []server.Option
	}{
		{"uniform", nil},
		{"one slow node", []server.Option{server.WithProfiles(profiles...)}},
		{"slow node crashes", []server.Option{
			server.WithProfiles(profiles...),
			server.WithFailure(slowNode, 0.5),
		}},
	}
	var names []string
	var jobs []runner.Job
	for _, policy := range []string{"l2s", "l2s-weighted", "wlc"} {
		for _, sc := range scenarios {
			opts := append([]server.Option{server.WithPolicy(policy)}, sc.opts...)
			names = append(names, policy+"/"+sc.name)
			jobs = append(jobs, runner.Job{
				Key:    "slownode/" + policy + "/" + sc.name,
				Config: server.NewConfig(server.CustomServer, nodes, opts...),
				Trace:  tr,
			})
		}
	}
	rows, err := runRows(p, jobs, func(i int, _ server.Result) string { return names[i] })
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slow-node study on %s, %d nodes: node %d at %.0f%% speed\n",
		tr.Name, nodes, slowNode, slowFactor*100)
	fmt.Fprintf(&b, "  %-30s %10s %10s %8s\n", "configuration", "req/s", "imbalance", "fwd%")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-30s %10.0f %10.2f %8.1f\n",
			r.Policy, r.Throughput, r.Imbalance, r.Forwarded*100)
	}
	return rows, b.String(), nil
}

// FailoverTimeline records throughput over time while one L2S node
// crashes mid-run, producing the time series behind the availability
// claim (rendered with Figure.Chart in cmd/experiments).
func FailoverTimeline(tr *trace.Trace, nodes, failNode int) (Figure, error) {
	const bucket = 0.25
	cfg := server.NewConfig(server.L2SServer, nodes,
		server.WithFailure(failNode, 0.5),
		server.WithTimelineBucket(bucket))
	r, err := server.Run(cfg, tr)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "failover-timeline",
		Title:  fmt.Sprintf("L2S throughput while node %d crashes (%s, %d nodes)", failNode, tr.Name, nodes),
		XLabel: "time_s",
		YLabel: "req/s",
	}
	vals := make([]float64, len(r.Timeline))
	copy(vals, r.Timeline)
	for i := range vals {
		fig.X = append(fig.X, float64(i)*bucket)
	}
	fig.Series = []Series{{Label: "l2s", Values: vals}}
	return fig, nil
}

// Section6Study compares the original LARD front-end, the dispatcher-based
// variant of Aron et al. (USENIX 2000) that the paper's Section 6
// discusses, and L2S. The dispatcher escapes the accept/parse ceiling but
// keeps a central chokepoint; the paper's argument — "L2S has none of
// these problems" — shows up as the ordering of the three columns.
func Section6Study(p *runner.Pool, tr *trace.Trace, nodes int) ([]PolicyRow, string, error) {
	sys := []server.System{server.LARDServer, server.LARDDispatcher, server.L2SServer}
	jobs := make([]runner.Job, len(sys))
	for i, s := range sys {
		jobs[i] = runner.Job{
			Key:    fmt.Sprintf("section6/%s", s),
			Config: server.NewConfig(s, nodes),
			Trace:  tr,
		}
	}
	rows, err := runRows(p, jobs, func(_ int, r server.Result) string { return r.System })
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "section 6: front-end LARD vs dispatcher LARD vs L2S (%s, %d nodes)\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-14s %10s %8s %8s %8s\n", "system", "req/s", "miss%", "fwd%", "idle%")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %10.0f %8.1f %8.1f %8.1f\n",
			r.Policy, r.Throughput, r.MissRate*100, r.Forwarded*100, r.CPUIdle*100)
	}
	return rows, b.String(), nil
}
