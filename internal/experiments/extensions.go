package experiments

import (
	"fmt"
	"strings"

	"repro/internal/policy"
	"repro/internal/queuemodel"
	"repro/internal/server"
	"repro/internal/trace"
)

// PolicyRow is one line of the arrival/distribution policy comparison.
type PolicyRow struct {
	Policy     string
	Throughput float64
	MissRate   float64
	Forwarded  float64
	Imbalance  float64
	CPUIdle    float64
}

// PolicyComparison contrasts the full policy spectrum on one workload: the
// three servers of the paper's evaluation plus the strawmen its earlier
// sections discuss — strict locality by hashing (Section 1: "can produce
// severe load imbalance"), random arrival, and round-robin DNS with
// translation caching (Section 2: "can cause significant load imbalance").
func PolicyComparison(tr *trace.Trace, nodes int) ([]PolicyRow, string, error) {
	type entry struct {
		name string
		cfg  func() server.Config
	}
	custom := func(mk func(env policy.Env) policy.Distributor) func() server.Config {
		return func() server.Config {
			cfg := server.DefaultConfig(server.CustomServer, nodes)
			cfg.CustomPolicy = mk
			return cfg
		}
	}
	entries := []entry{
		{"l2s", func() server.Config { return server.DefaultConfig(server.L2SServer, nodes) }},
		{"lard", func() server.Config { return server.DefaultConfig(server.LARDServer, nodes) }},
		{"traditional", func() server.Config { return server.DefaultConfig(server.Traditional, nodes) }},
		{"hashing", custom(func(env policy.Env) policy.Distributor { return policy.NewHashing(env) })},
		{"random", custom(func(env policy.Env) policy.Distributor { return policy.NewRandom(env, 7) })},
		{"cached-dns", custom(func(env policy.Env) policy.Distributor { return policy.NewCachedDNS(env, 50) })},
	}
	var rows []PolicyRow
	for _, e := range entries {
		r, err := server.Run(e.cfg(), tr)
		if err != nil {
			return nil, "", fmt.Errorf("experiments: policy %s: %w", e.name, err)
		}
		rows = append(rows, PolicyRow{
			Policy:     e.name,
			Throughput: r.Throughput,
			MissRate:   r.MissRate,
			Forwarded:  r.ForwardedFrac,
			Imbalance:  r.LoadImbalance,
			CPUIdle:    r.CPUIdle,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy comparison on %s, %d nodes\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-12s %10s %8s %8s %10s %8s\n",
		"policy", "req/s", "miss%", "fwd%", "imbalance", "idle%")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %10.0f %8.1f %8.1f %10.2f %8.1f\n",
			r.Policy, r.Throughput, r.MissRate*100, r.Forwarded*100, r.Imbalance, r.CPUIdle*100)
	}
	return rows, b.String(), nil
}

// LARDVariants contrasts plain LARD (one server per target, reassignment
// only on extreme imbalance) with LARD/R (replicated server sets), the
// distinction Pai et al. draw and the paper inherits. For HTTP/1.0
// workloads the two behave similarly — replication matters when hot
// documents outgrow one node, which the thresholds make rare at these
// loads.
func LARDVariants(tr *trace.Trace, nodes int) ([]PolicyRow, string, error) {
	var rows []PolicyRow
	for _, replication := range []bool{false, true} {
		cfg := server.DefaultConfig(server.LARDServer, nodes)
		cfg.LARD.Replication = replication
		r, err := server.Run(cfg, tr)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, PolicyRow{
			Policy:     r.System,
			Throughput: r.Throughput,
			MissRate:   r.MissRate,
			Forwarded:  r.ForwardedFrac,
			Imbalance:  r.LoadImbalance,
			CPUIdle:    r.CPUIdle,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "lard variants on %s, %d nodes\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-12s %10s %8s %10s\n", "variant", "req/s", "miss%", "imbalance")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %10.0f %8.1f %10.2f\n",
			r.Policy, r.Throughput, r.MissRate*100, r.Imbalance)
	}
	return rows, b.String(), nil
}

// PersistentRow is one line of the HTTP/1.0-versus-HTTP/1.1 study.
type PersistentRow struct {
	System     string
	Mode       string
	Throughput float64
	Forwarded  float64
	LatencyP50 float64
}

// PersistentStudy contrasts per-request connections (HTTP/1.0, the paper's
// evaluation setting) with persistent connections handled by back-end
// forwarding (the HTTP/1.1 adaptation Section 4 defers to Aron et al.).
// The headline effect: persistence multiplies LARD's front-end ceiling by
// the requests-per-connection factor, while L2S — which has no per-request
// front-end cost to amortize — holds its throughput and halves latency.
func PersistentStudy(tr *trace.Trace, nodes int, reqsPerConn float64) ([]PersistentRow, string, error) {
	var rows []PersistentRow
	for _, sys := range []server.System{server.L2SServer, server.LARDServer, server.Traditional} {
		for _, persistent := range []bool{false, true} {
			cfg := server.DefaultConfig(sys, nodes)
			cfg.Persistent = persistent
			cfg.ReqsPerConn = reqsPerConn
			r, err := server.Run(cfg, tr)
			if err != nil {
				return nil, "", err
			}
			mode := "http/1.0"
			if persistent {
				mode = "http/1.1"
			}
			rows = append(rows, PersistentRow{
				System:     r.System,
				Mode:       mode,
				Throughput: r.Throughput,
				Forwarded:  r.ForwardedFrac,
				LatencyP50: r.LatencyP50,
			})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "persistent connections on %s, %d nodes, mean %.0f requests/connection\n",
		tr.Name, nodes, reqsPerConn)
	fmt.Fprintf(&b, "  %-12s %-9s %10s %8s %12s\n", "system", "mode", "req/s", "fwd%", "p50 latency")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %-9s %10.0f %8.1f %9.2f ms\n",
			r.System, r.Mode, r.Throughput, r.Forwarded*100, r.LatencyP50*1000)
	}
	return rows, b.String(), nil
}

// LatencyStudy drives the simulator in open-loop mode across offered loads
// and compares the measured mean response time with the analytic model's
// M/M/1-network Latency at the same loads — the response-time counterpart
// of the throughput bounds (the paper focuses on throughput because WAN
// latencies dwarf server latencies; this study validates the simulator
// against the model's queueing formulas anyway).
func LatencyStudy(tr *trace.Trace, nodes int, rates []float64) (Figure, string, error) {
	ch := trace.Characterize(tr)
	opts := DefaultOptions()
	p := queuemodelParams(ch, nodes, opts)
	hlc := HitRateAtCapacity(tr, int64(p.TotalConsciousCache()))
	h := HitRateAtCapacity(tr, int64(opts.Replication*float64(opts.CacheBytes)))

	fig := Figure{
		ID:     "latency-" + tr.Name,
		Title:  fmt.Sprintf("mean response time vs offered load, %s, %d nodes (ms)", tr.Name, nodes),
		XLabel: "req/s",
		YLabel: "latency ms",
	}
	var sim, model []float64
	for _, rate := range rates {
		cfg := server.DefaultConfig(server.L2SServer, nodes)
		cfg.ArrivalRate = rate
		r, err := server.Run(cfg, tr)
		if err != nil {
			return Figure{}, "", err
		}
		fig.X = append(fig.X, rate)
		sim = append(sim, r.LatencyMean*1000)
		model = append(model, p.Latency(rate, hlc, p.ForwardFraction(h))*1000)
	}
	fig.Series = []Series{
		{Label: "simulated", Values: sim},
		{Label: "model", Values: model},
	}
	return fig, fig.Render(), nil
}

// queuemodelParams instantiates the model for a characterized workload.
func queuemodelParams(ch trace.Characteristics, nodes int, opts Options) queuemodel.Params {
	p := queuemodel.DefaultParams()
	p.Nodes = nodes
	p.CacheBytes = opts.CacheBytes
	p.Replication = opts.Replication
	p.AvgFileKB = ch.AvgReqKB
	return p
}

// HeterogeneousStudy relaxes the paper's "all cluster nodes are equally
// powerful" assumption: half the cluster runs at full speed, half at the
// given fraction. Connection-count load balancing adapts automatically —
// slower nodes hold their T-connection budget longer, so new work drifts
// to the fast nodes — which is why both L2S and LARD degrade gracefully
// while a speed-oblivious policy would track the slowest node.
func HeterogeneousStudy(tr *trace.Trace, nodes int, slowFactor float64) ([]PolicyRow, string, error) {
	speeds := make([]float64, nodes)
	for i := range speeds {
		speeds[i] = 1
		if i >= nodes/2 {
			speeds[i] = slowFactor
		}
	}
	var rows []PolicyRow
	for _, sys := range []server.System{server.L2SServer, server.LARDServer, server.Traditional} {
		for _, het := range []bool{false, true} {
			cfg := server.DefaultConfig(sys, nodes)
			name := sys.String() + "/homogeneous"
			if het {
				cfg.CPUSpeeds = speeds
				name = fmt.Sprintf("%s/half at %.0f%%", sys, slowFactor*100)
			}
			r, err := server.Run(cfg, tr)
			if err != nil {
				return nil, "", err
			}
			rows = append(rows, PolicyRow{
				Policy:     name,
				Throughput: r.Throughput,
				MissRate:   r.MissRate,
				Imbalance:  r.LoadImbalance,
				CPUIdle:    r.CPUIdle,
			})
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "heterogeneous cluster on %s, %d nodes\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-24s %10s %10s\n", "configuration", "req/s", "imbalance")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %10.0f %10.2f\n", r.Policy, r.Throughput, r.Imbalance)
	}
	return rows, b.String(), nil
}

// FailoverTimeline records throughput over time while one L2S node
// crashes mid-run, producing the time series behind the availability
// claim (rendered with Figure.Chart in cmd/experiments).
func FailoverTimeline(tr *trace.Trace, nodes, failNode int) (Figure, error) {
	cfg := server.DefaultConfig(server.L2SServer, nodes)
	cfg.FailNode = failNode
	cfg.FailAtFrac = 0.5
	cfg.TimelineBucket = 0.25
	r, err := server.Run(cfg, tr)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "failover-timeline",
		Title:  fmt.Sprintf("L2S throughput while node %d crashes (%s, %d nodes)", failNode, tr.Name, nodes),
		XLabel: "time_s",
		YLabel: "req/s",
	}
	vals := make([]float64, len(r.Timeline))
	copy(vals, r.Timeline)
	for i := range vals {
		fig.X = append(fig.X, float64(i)*cfg.TimelineBucket)
	}
	fig.Series = []Series{{Label: "l2s", Values: vals}}
	return fig, nil
}

// Section6Study compares the original LARD front-end, the dispatcher-based
// variant of Aron et al. (USENIX 2000) that the paper's Section 6
// discusses, and L2S. The dispatcher escapes the accept/parse ceiling but
// keeps a central chokepoint; the paper's argument — "L2S has none of
// these problems" — shows up as the ordering of the three columns.
func Section6Study(tr *trace.Trace, nodes int) ([]PolicyRow, string, error) {
	var rows []PolicyRow
	for _, sys := range []server.System{server.LARDServer, server.LARDDispatcher, server.L2SServer} {
		cfg := server.DefaultConfig(sys, nodes)
		r, err := server.Run(cfg, tr)
		if err != nil {
			return nil, "", err
		}
		rows = append(rows, PolicyRow{
			Policy:     r.System,
			Throughput: r.Throughput,
			MissRate:   r.MissRate,
			Forwarded:  r.ForwardedFrac,
			Imbalance:  r.LoadImbalance,
			CPUIdle:    r.CPUIdle,
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "section 6: front-end LARD vs dispatcher LARD vs L2S (%s, %d nodes)\n", tr.Name, nodes)
	fmt.Fprintf(&b, "  %-14s %10s %8s %8s %8s\n", "system", "req/s", "miss%", "fwd%", "idle%")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-14s %10.0f %8.1f %8.1f %8.1f\n",
			r.Policy, r.Throughput, r.MissRate*100, r.Forwarded*100, r.CPUIdle*100)
	}
	return rows, b.String(), nil
}
