package experiments

import (
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/trace"
)

// testPool runs study sweeps on every core; results are identical to
// sequential execution, which TestParallelWorkloadMatchesSequential checks
// end to end.
func testPool() *runner.Pool { return runner.NewPool(0) }

// fastOptions keeps the experiment tests quick: a small slice of each
// trace and three cluster sizes.
func fastOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.08
	o.Nodes = []int{1, 8, 16}
	return o
}

func fastTrace(t *testing.T, name string, scale float64) *trace.Trace {
	t.Helper()
	spec, err := trace.PaperTrace(name)
	if err != nil {
		t.Fatal(err)
	}
	return trace.MustGenerate(spec.Scaled(scale))
}

func TestTable1Renders(t *testing.T) {
	s := Table1()
	for _, want := range []string{"mu_r", "mu_p", "6300", "128 MB", "10000 ops/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	chs, text := Table2(Options{Scale: 0.05})
	if len(chs) != 4 {
		t.Fatalf("got %d traces", len(chs))
	}
	names := map[string]int{"calgary": 8397, "clarknet": 35885, "nasa": 5500, "rutgers": 24098}
	for _, ch := range chs {
		if want, ok := names[ch.Name]; !ok || ch.CatalogFiles != want {
			t.Errorf("%s: files=%d want %d", ch.Name, ch.CatalogFiles, want)
		}
	}
	if !strings.Contains(text, "calgary") {
		t.Error("rendered table missing trace names")
	}
}

func TestModelSurfacesShape(t *testing.T) {
	fig3, fig4, fig5 := ModelSurfaces()
	p3, _, _ := fig3.Max()
	p4, _, _ := fig4.Max()
	p5, _, _ := fig5.Max()
	if p3 < 20000 || p4 < 18000 {
		t.Errorf("surface peaks too low: fig3=%v fig4=%v", p3, p4)
	}
	if p5 < 5.5 || p5 > 8.5 {
		t.Errorf("figure 5 peak %v outside the paper's ~7x", p5)
	}
	fig6 := Figure6(fig5)
	if len(fig6.X) != len(fig5.HitRates) {
		t.Error("figure 6 axis mismatch")
	}
	if !strings.Contains(SurfaceSummary(fig5), "peak") {
		t.Error("summary missing peak")
	}
}

func TestMemorySweepMonotone(t *testing.T) {
	fig := MemorySweep()
	means := fig.Series[1].Values
	for i := 1; i < len(means); i++ {
		if means[i] >= means[i-1] {
			t.Fatalf("mean gain must fall with memory: %v", means)
		}
	}
}

func TestReplicationSweepTradeoffs(t *testing.T) {
	fig := ReplicationSweep()
	hlc := fig.Series[1].Values
	fwd := fig.Series[2].Values
	last := len(fig.X) - 1
	if hlc[0] <= hlc[last] {
		t.Errorf("Hlc should fall as replication rises: %v", hlc)
	}
	if fwd[0] <= fwd[last] {
		t.Errorf("forwarding should fall as replication rises: %v", fwd)
	}
}

func TestSequentialMissRateBands(t *testing.T) {
	for _, name := range []string{"calgary", "nasa"} {
		tr := fastTrace(t, name, 0.1)
		m := SequentialMissRate(tr, 32<<20)
		if m < 0.03 || m > 0.35 {
			t.Errorf("%s: sequential miss %.1f%% far outside the paper band", name, m*100)
		}
	}
}

func TestRunTraceProducesAllSeries(t *testing.T) {
	run, err := RunTrace("calgary", fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	fig := run.ThroughputFigure("figure7")
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 series (model/l2s/lard/trad), got %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Values) != len(fig.X) {
			t.Fatalf("series %s has %d values for %d sizes", s.Label, len(s.Values), len(fig.X))
		}
		for _, v := range s.Values {
			if v <= 0 {
				t.Fatalf("series %s has non-positive throughput", s.Label)
			}
		}
	}
	// Paper shape: at 16 nodes, L2S leads both servers and sits below the
	// model bound.
	last := len(fig.X) - 1
	model, l2s, lard, trad := fig.Series[0].Values[last], fig.Series[1].Values[last],
		fig.Series[2].Values[last], fig.Series[3].Values[last]
	if !(l2s > lard && l2s > trad) {
		t.Errorf("ordering broken at 16 nodes: l2s=%v lard=%v trad=%v", l2s, lard, trad)
	}
	if l2s > model*1.05 {
		t.Errorf("l2s %v exceeds the model bound %v", l2s, model)
	}

	// Secondary figures render with consistent axes.
	for _, f := range []Figure{run.MissRateFigure(), run.IdleTimeFigure(), run.ForwardingFigure()} {
		if len(f.X) != len(fig.X) {
			t.Errorf("%s axis mismatch", f.ID)
		}
		if !strings.Contains(f.Render(), "nodes") {
			t.Errorf("%s render missing axis label", f.ID)
		}
	}
	if !strings.Contains(run.Summary(), "l2s vs lard") {
		t.Error("summary missing comparisons")
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "t", XLabel: "n", YLabel: "v",
		X:      []float64{1, 2},
		Series: []Series{{Label: "a", Values: []float64{3, 4}}},
	}
	if r := fig.Render(); !strings.Contains(r, "x: t") || !strings.Contains(r, "3.0") {
		t.Errorf("render wrong:\n%s", r)
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "n,a\n1,3.00\n") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestL2SSensitivityRobust(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	results, text, err := L2SSensitivity(testPool(), tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's robustness claim covers broadcast frequency, messaging
	// overhead, and network latency/bandwidth: "only slightly affected".
	for _, group := range []string{"broadcast-delta", "messaging-overhead", "network", "staleness"} {
		rows := results[group]
		if len(rows) < 2 {
			t.Fatalf("group %s missing rows", group)
		}
		lo, hi := rows[0].Throughput, rows[0].Throughput
		for _, r := range rows {
			if r.Throughput < lo {
				lo = r.Throughput
			}
			if r.Throughput > hi {
				hi = r.Throughput
			}
		}
		if (hi-lo)/hi > 0.35 {
			t.Errorf("group %s swings %.0f%%: %v", group, (hi-lo)/hi*100, rows)
		}
	}
	// The threshold and window ablations are expected to matter — the
	// paper's values should be at (or near) the best of each sweep.
	for _, group := range []string{"thresholds", "window"} {
		rows := results[group]
		var paper, best float64
		for _, r := range rows {
			if strings.Contains(r.Variant, "paper") || strings.Contains(r.Variant, "default") {
				paper = r.Throughput
			}
			if r.Throughput > best {
				best = r.Throughput
			}
		}
		if paper < best*0.90 {
			t.Errorf("group %s: paper setting %.0f well below best %.0f", group, paper, best)
		}
	}
	if !strings.Contains(text, "sensitivity/broadcast-delta") {
		t.Error("rendered sensitivity output incomplete")
	}
}

func TestMemoryScalingHelpsTraditionalMost(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.2)
	figs, text, err := MemoryScaling(testPool(), tr, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("want 2 memory figures, got %d", len(figs))
	}
	series := func(f Figure, label string) []float64 {
		for _, s := range f.Series {
			if s.Label == label {
				return s.Values
			}
		}
		t.Fatalf("series %s missing", label)
		return nil
	}
	trad32 := series(figs[0], "traditional")
	trad128 := series(figs[1], "traditional")
	l2s32 := series(figs[0], "l2s")
	l2s128 := series(figs[1], "l2s")
	// Traditional gains far more, relatively, than L2S.
	tradGain := trad128[len(trad128)-1] / trad32[len(trad32)-1]
	l2sGain := l2s128[len(l2s128)-1] / l2s32[len(l2s32)-1]
	if tradGain <= l2sGain {
		t.Errorf("traditional gain %.2fx not above l2s gain %.2fx", tradGain, l2sGain)
	}
	if !strings.Contains(text, "128 MB caches") {
		t.Error("render missing titles")
	}
}

func TestFailoverStudy(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	text, err := FailoverStudy(testPool(), tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"l2s, node 3 fails", "lard, front-end fails"} {
		if !strings.Contains(text, want) {
			t.Errorf("failover output missing %q:\n%s", want, text)
		}
	}
}

func TestPolicyComparisonOrdering(t *testing.T) {
	tr := fastTrace(t, "clarknet", 0.05)
	rows, text, err := PolicyComparison(testPool(), tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	if byName["l2s"].Throughput <= byName["random"].Throughput {
		t.Error("L2S must beat random arrival")
	}
	if byName["hashing"].Imbalance <= byName["l2s"].Imbalance {
		t.Errorf("strict hashing (%.2f) should balance worse than L2S (%.2f)",
			byName["hashing"].Imbalance, byName["l2s"].Imbalance)
	}
	if byName["cached-dns"].Throughput > byName["traditional"].Throughput*1.1 {
		t.Error("cached DNS should not beat an ideal least-connections switch")
	}
	if !strings.Contains(text, "policy comparison") {
		t.Error("render missing header")
	}
}

func TestPersistentStudyEffects(t *testing.T) {
	spec, err := trace.PaperTrace("clarknet")
	if err != nil {
		t.Fatal(err)
	}
	spec = spec.Scaled(0.08)
	tr := trace.MustGenerate(spec)
	rows, text, err := PersistentStudy(testPool(), tr, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	get := func(system, mode string) PersistentRow {
		for _, r := range rows {
			if r.System == system && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", system, mode)
		return PersistentRow{}
	}
	if get("lard", "http/1.1").Throughput <= get("lard", "http/1.0").Throughput {
		t.Error("persistence should lift LARD's front-end ceiling")
	}
	if get("l2s", "http/1.1").Throughput < get("l2s", "http/1.0").Throughput*0.7 {
		t.Error("persistence should not collapse L2S")
	}
	if !strings.Contains(text, "http/1.1") {
		t.Error("render incomplete")
	}
}

func TestLARDVariantsClose(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	rows, text, err := LARDVariants(testPool(), tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 variants, got %d", len(rows))
	}
	// For HTTP/1.0 workloads at these thresholds the variants track each
	// other closely (Pai et al. report the same).
	a, b := rows[0].Throughput, rows[1].Throughput
	if a <= 0 || b <= 0 {
		t.Fatal("non-positive throughput")
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff/a > 0.2 {
		t.Errorf("variants diverge by %.0f%%: %v vs %v", diff/a*100, a, b)
	}
	if !strings.Contains(text, "lard variants") {
		t.Error("render missing header")
	}
}

func TestLatencyStudyShape(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.08)
	fig, text, err := LatencyStudy(testPool(), tr, 16, []float64{500, 2000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	sim := fig.Series[0].Values
	model := fig.Series[1].Values
	for i := 1; i < len(sim); i++ {
		if sim[i] <= sim[i-1] {
			t.Errorf("simulated latency not increasing with load: %v", sim)
		}
		if model[i] <= model[i-1] {
			t.Errorf("model latency not increasing with load: %v", model)
		}
	}
	// Both must be in the same ballpark at light load (within 3x: the
	// model ignores contention the simulator has, and vice versa for
	// chunked transmission).
	if sim[0] > model[0]*3 || model[0] > sim[0]*3 {
		t.Errorf("light-load latencies diverge: sim %v vs model %v", sim[0], model[0])
	}
	if !strings.Contains(text, "response time") {
		t.Error("render incomplete")
	}
}

func TestChartRendering(t *testing.T) {
	fig := Figure{
		ID: "c", Title: "chart", XLabel: "x", YLabel: "y",
		X: []float64{1, 2, 3, 4},
		Series: []Series{
			{Label: "up", Values: []float64{10, 20, 30, 40}},
			{Label: "flat", Values: []float64{25, 25, 25, 25}},
		},
	}
	s := fig.Chart(40, 10)
	if !strings.Contains(s, "*=up") || !strings.Contains(s, "o=flat") {
		t.Fatalf("legend missing:\n%s", s)
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Fatalf("marks missing:\n%s", s)
	}
	lines := strings.Split(s, "\n")
	if len(lines) < 12 {
		t.Fatalf("chart too short: %d lines", len(lines))
	}
	// The rising series' mark must appear on the top row of the plot and
	// the bottom-most data row.
	if !strings.Contains(lines[1], "*") {
		t.Errorf("top row missing the maximum point:\n%s", s)
	}
}

func TestChartDegenerate(t *testing.T) {
	if s := (Figure{ID: "e"}).Chart(20, 5); !strings.Contains(s, "no data") {
		t.Fatalf("empty chart: %q", s)
	}
	one := Figure{ID: "one", X: []float64{5}, Series: []Series{{Label: "a", Values: []float64{5}}}}
	if s := one.Chart(2, 2); s == "" {
		t.Fatal("degenerate chart should still render")
	}
}

func TestHeterogeneousStudy(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	rows, text, err := HeterogeneousStudy(testPool(), tr, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	// Within each system, heterogeneous must not beat homogeneous.
	for i := 0; i < len(rows); i += 2 {
		homog, het := rows[i], rows[i+1]
		if het.Throughput > homog.Throughput*1.02 {
			t.Errorf("%s: heterogeneous %v beats homogeneous %v",
				het.Policy, het.Throughput, homog.Throughput)
		}
	}
	if !strings.Contains(text, "heterogeneous cluster") {
		t.Error("render incomplete")
	}
}

func TestFailoverTimeline(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	fig, err := FailoverTimeline(tr, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) < 4 || len(fig.Series[0].Values) != len(fig.X) {
		t.Fatalf("timeline shape wrong: %d points", len(fig.X))
	}
	if !strings.Contains(fig.Chart(40, 8), "l2s") {
		t.Error("chart legend missing")
	}
}

func TestSection6Ordering(t *testing.T) {
	// Small files so the front-end ceiling binds and the Section 6
	// comparison is visible.
	tr := trace.MustGenerate(trace.GenSpec{
		Name: "s6", Files: 1000, AvgFileKB: 5, Requests: 60000,
		AvgReqKB: 4, Alpha: 0.9, LocalityP: 0.3, Seed: 8,
	})
	rows, text, err := Section6Study(testPool(), tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	lard, disp, l2s := rows[0].Throughput, rows[1].Throughput, rows[2].Throughput
	if !(l2s > disp && disp > lard) {
		t.Errorf("section 6 ordering broken: lard=%v dispatch=%v l2s=%v", lard, disp, l2s)
	}
	if !strings.Contains(text, "section 6") {
		t.Error("render incomplete")
	}
}

// The one-pass reuse curve must agree exactly with direct LRU passes at
// the capacities the model anchors use.
func TestReuseCurveMatchesLRUPasses(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	curve := ReuseCurve(tr)
	for _, capMB := range []int64{5, 32, 128, 440} {
		c := capMB << 20
		direct := HitRateAtCapacity(tr, c)
		fast := curve.HitRate(c)
		if direct != fast {
			t.Errorf("capacity %dMB: curve %v != LRU %v", capMB, fast, direct)
		}
	}
}

// TestParallelWorkloadMatchesSequential is the acceptance check for the
// sweep runner: a figure regenerated on eight workers must be byte-for-byte
// the CSV a sequential run produces.
func TestParallelWorkloadMatchesSequential(t *testing.T) {
	tr := fastTrace(t, "calgary", 0.05)
	runFig := func(workers int) string {
		opts := fastOptions()
		opts.Workers = workers
		run, err := RunWorkload(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		return run.ThroughputFigure("figure7").CSV() +
			run.MissRateFigure().CSV() +
			run.IdleTimeFigure().CSV() +
			run.ForwardingFigure().CSV()
	}
	seq := runFig(1)
	par := runFig(8)
	if seq != par {
		t.Fatalf("parallel CSVs differ from sequential:\n--- sequential\n%s\n--- parallel\n%s", seq, par)
	}
}
