package experiments

import (
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

// scaleFigPolicies are the contenders of the large-cluster figure sweep:
// the paper's two directory policies plus the bounded-load consistent-
// hashing variant, the best zero-coordination alternative at these sizes.
var scaleFigPolicies = []string{"l2s", "lard", "chash-bounded"}

// ScaleFigRow is one line of the large-cluster figure sweep.
type ScaleFigRow struct {
	Trace    string
	Nodes    int
	Row      PolicyRow
	Messages uint64
	Gossip   uint64
}

// ScaleFiguresStudy re-asks the paper's Figure 7-10 question — throughput
// versus cluster size on each of the four paper traces — at cluster sizes
// the paper's hardware could never reach. Every simulation goes through
// the deterministic parallel runner; with the flattened gossip path a full
// sweep to N=1024 at -scale 1 is a routine run rather than an overnight
// one, which is the point of committing results/scale-figures.txt. It
// returns one figure per trace (in Figure 7-10 order) plus the combined
// table.
func ScaleFiguresStudy(p *runner.Pool, nodesList []int, scale float64) ([]Figure, []ScaleFigRow, string, error) {
	type job struct {
		trace  string
		nodes  int
		policy string
	}
	var jobs []runner.Job
	var meta []job
	traceNames := make([]string, 0, 4)
	for _, spec := range trace.PaperTraces() {
		tr, err := trace.Generate(spec.Scaled(scale))
		if err != nil {
			return nil, nil, "", err
		}
		traceNames = append(traceNames, spec.Name)
		for _, n := range nodesList {
			for _, name := range scaleFigPolicies {
				meta = append(meta, job{spec.Name, n, name})
				jobs = append(jobs, runner.Job{
					Key: fmt.Sprintf("scalefigs/%s/%s/n=%d", spec.Name, name, n),
					Config: server.NewConfig(server.CustomServer, n,
						server.WithPolicy(name), server.WithSeed(5)),
					Trace: tr,
				})
			}
		}
	}

	var rows []ScaleFigRow
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return nil, nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		rows = append(rows, ScaleFigRow{
			Trace:    meta[i].trace,
			Nodes:    meta[i].nodes,
			Row:      policyRow(meta[i].policy, jr.Result),
			Messages: jr.Result.ControlMessages,
			Gossip:   jr.Result.GossipMessages,
		})
	}

	var figs []Figure
	for _, tn := range traceNames {
		fig := Figure{
			ID:     "scalefigs-" + tn,
			Title:  fmt.Sprintf("throughput vs cluster size, %s trace", tn),
			XLabel: "nodes",
			YLabel: "req/s",
			X:      nodesAsFloats(nodesList),
		}
		for _, name := range scaleFigPolicies {
			s := Series{Label: name}
			for _, r := range rows {
				if r.Trace == tn && r.Row.Policy == name {
					s.Values = append(s.Values, r.Row.Throughput)
				}
			}
			fig.Series = append(fig.Series, s)
		}
		figs = append(figs, fig)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7-10 families at large cluster sizes (scale %g)\n", scale)
	for _, tn := range traceNames {
		fmt.Fprintf(&b, "%s:\n", tn)
		fmt.Fprintf(&b, "  %5s %-14s %10s %8s %8s %10s %12s %12s\n",
			"nodes", "policy", "req/s", "miss%", "fwd%", "imbalance", "ctrl msgs", "gossip")
		for _, r := range rows {
			if r.Trace != tn {
				continue
			}
			fmt.Fprintf(&b, "  %5d %-14s %10.0f %8.1f %8.1f %10.2f %12d %12d\n",
				r.Nodes, r.Row.Policy, r.Row.Throughput, r.Row.MissRate*100,
				r.Row.Forwarded*100, r.Row.Imbalance, r.Messages, r.Gossip)
		}
	}
	return figs, rows, b.String(), nil
}
