package experiments

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/server"
)

// The non-stationary studies at test scale: every policy produces a row, the
// tables carry the headline columns, and the series-derived metrics stay in
// their physical ranges.

func TestChurnStudy(t *testing.T) {
	rows, text, err := ChurnStudy(testPool(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(nonstationaryPolicies) {
		t.Fatalf("got %d rows, want %d", len(rows), len(nonstationaryPolicies))
	}
	for i, r := range rows {
		if r.Row.Policy != nonstationaryPolicies[i] {
			t.Errorf("row %d: policy %q, want %q", i, r.Row.Policy, nonstationaryPolicies[i])
		}
		if r.Row.Throughput <= 0 {
			t.Errorf("%s: throughput %v", r.Row.Policy, r.Row.Throughput)
		}
		if r.Row.MissRate <= 0 || r.Row.MissRate > 1 {
			t.Errorf("%s: miss rate %v outside (0,1]", r.Row.Policy, r.Row.MissRate)
		}
		if r.AdaptLag < 0 {
			t.Errorf("%s: negative adaptation lag %v", r.Row.Policy, r.AdaptLag)
		}
	}
	for _, want := range []string{"shot-noise churn", "adapt-lag", "diurnal open loop", "lard", "l2s"} {
		if !strings.Contains(text, want) {
			t.Errorf("churn table missing %q:\n%s", want, text)
		}
	}
}

func TestFlashStudy(t *testing.T) {
	rows, text, err := FlashStudy(testPool(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(nonstationaryPolicies) {
		t.Fatalf("got %d rows, want %d", len(rows), len(nonstationaryPolicies))
	}
	for _, r := range rows {
		if r.Row.Throughput <= 0 {
			t.Errorf("%s: throughput %v", r.Row.Policy, r.Row.Throughput)
		}
		if r.FwdIn < 0 || r.FwdIn > 1 || r.FwdOut < 0 || r.FwdOut > 1 {
			t.Errorf("%s: forwarding fractions %v/%v outside [0,1]", r.Row.Policy, r.FwdIn, r.FwdOut)
		}
		if r.PeakImbalance < 1 {
			t.Errorf("%s: peak imbalance %v below 1", r.Row.Policy, r.PeakImbalance)
		}
	}
	if !strings.Contains(text, "flash crowd") || !strings.Contains(text, "peak-imbal") {
		t.Errorf("flash table malformed:\n%s", text)
	}
}

// adaptationLag on a hand-built timeline: steady 0.8, crash to 0.2 at t=5,
// recovery to 0.75 at t=8 — lag 3. A flat timeline reports no crash.
func TestAdaptationLag(t *testing.T) {
	rec := obs.NewSeries(1)
	hit := func(t, v float64) { rec.Record(t, 1, 0, server.SeriesCacheHitRate, v) }
	for i := 0; i < 10; i++ {
		hit(float64(i), 0.8)
	}
	if lag := adaptationLag(rec); lag != 0 {
		t.Errorf("flat timeline: lag %v, want 0", lag)
	}

	rec = obs.NewSeries(1)
	for i := 0; i < 5; i++ {
		hit(float64(i), 0.8)
	}
	hit(5, 0.2)
	hit(6, 0.4)
	hit(7, 0.6)
	hit(8, 0.75)
	hit(9, 0.8)
	if lag := adaptationLag(rec); lag != 3 {
		t.Errorf("crash at 5, recovery at 8: lag %v, want 3", lag)
	}

	// Never recovers: lag is the remaining run length.
	rec = obs.NewSeries(1)
	for i := 0; i < 6; i++ {
		hit(float64(i), 0.8)
	}
	hit(6, 0.1)
	hit(7, 0.1)
	hit(8, 0.1)
	if lag := adaptationLag(rec); lag != 2 {
		t.Errorf("no recovery: lag %v, want 2 (remaining length)", lag)
	}
}
