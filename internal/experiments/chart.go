package experiments

import (
	"fmt"
	"math"
	"strings"
)

// chartMarks give each series a distinct plotting glyph.
var chartMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// Chart renders the figure as an ASCII scatter/line chart of the given
// plot-area dimensions — enough to eyeball the curves of Figures 7-10 in a
// terminal without leaving the repository.
func (f Figure) Chart(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(f.X) == 0 || len(f.Series) == 0 {
		return f.ID + ": (no data)\n"
	}

	xmin, xmax := minMax(f.X)
	var ymin, ymax float64 = math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		lo, hi := minMax(s.Values)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if ymin > 0 {
		ymin = 0 // anchor throughput-like charts at zero
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, mark byte) {
		col := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		row := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		row = height - 1 - row // origin at the bottom
		if col >= 0 && col < width && row >= 0 && row < height && grid[row][col] == ' ' {
			// First series wins coincident cells, so every curve stays
			// visible in legend order.
			grid[row][col] = mark
		}
	}
	for si, s := range f.Series {
		mark := chartMarks[si%len(chartMarks)]
		for i, v := range s.Values {
			if i < len(f.X) {
				plot(f.X[i], v, mark)
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	for r, row := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", ymax)
		case height - 1:
			label = fmt.Sprintf("%10.4g", ymin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*g%*g\n", strings.Repeat(" ", 10), width/2, xmin, width-width/2, xmax)
	b.WriteString(strings.Repeat(" ", 12))
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%c=%s  ", chartMarks[si%len(chartMarks)], s.Label)
	}
	b.WriteByte('\n')
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
