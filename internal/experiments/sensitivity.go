package experiments

import (
	"fmt"
	"strings"

	"repro/internal/server"
	"repro/internal/trace"
)

// SensitivityResult is one row of an ablation sweep.
type SensitivityResult struct {
	Variant    string
	Throughput float64
	MissRate   float64
	Forwarded  float64
	Messages   uint64
}

func renderSensitivity(title string, rows []SensitivityResult) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "  %-24s %12s %8s %8s %10s\n", "variant", "req/s", "miss%", "fwd%", "messages")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %12.0f %8.1f %8.1f %10d\n",
			r.Variant, r.Throughput, r.MissRate*100, r.Forwarded*100, r.Messages)
	}
	return b.String()
}

func runVariant(tr *trace.Trace, nodes int, variant string, mutate func(*server.Config)) (SensitivityResult, error) {
	cfg := server.DefaultConfig(server.L2SServer, nodes)
	mutate(&cfg)
	r, err := server.Run(cfg, tr)
	if err != nil {
		return SensitivityResult{}, err
	}
	return SensitivityResult{
		Variant:    variant,
		Throughput: r.Throughput,
		MissRate:   r.MissRate,
		Forwarded:  r.ForwardedFrac,
		Messages:   r.ControlMessages,
	}, nil
}

// L2SSensitivity reproduces the Section 5.2 summary — "the performance of
// L2S is only slightly affected by reasonable parameters of frequency of
// broadcasts, messaging overhead, and network latency and bandwidth" — and
// the design-choice ablations called out in DESIGN.md (gossip staleness,
// thresholds, saturation window).
func L2SSensitivity(tr *trace.Trace, nodes int) (map[string][]SensitivityResult, string, error) {
	out := make(map[string][]SensitivityResult)
	var b strings.Builder

	sweep := func(group string, variants []struct {
		name string
		mut  func(*server.Config)
	}) error {
		for _, v := range variants {
			r, err := runVariant(tr, nodes, v.name, v.mut)
			if err != nil {
				return err
			}
			out[group] = append(out[group], r)
		}
		b.WriteString(renderSensitivity("sensitivity/"+group, out[group]))
		return nil
	}

	type variant = struct {
		name string
		mut  func(*server.Config)
	}

	if err := sweep("broadcast-delta", []variant{
		{"delta=1", func(c *server.Config) { c.L2S.BroadcastDelta = 1 }},
		{"delta=2", func(c *server.Config) { c.L2S.BroadcastDelta = 2 }},
		{"delta=4 (paper)", func(c *server.Config) {}},
		{"delta=8", func(c *server.Config) { c.L2S.BroadcastDelta = 8 }},
		{"delta=16", func(c *server.Config) { c.L2S.BroadcastDelta = 16 }},
	}); err != nil {
		return nil, "", err
	}

	if err := sweep("messaging-overhead", []variant{
		{"0.5x", func(c *server.Config) { c.Net.MsgCPU /= 2; c.Net.MsgNI /= 2 }},
		{"1x (paper)", func(c *server.Config) {}},
		{"2x", func(c *server.Config) { c.Net.MsgCPU *= 2; c.Net.MsgNI *= 2 }},
		{"4x", func(c *server.Config) { c.Net.MsgCPU *= 4; c.Net.MsgNI *= 4 }},
	}); err != nil {
		return nil, "", err
	}

	if err := sweep("network", []variant{
		{"1us switch (paper)", func(c *server.Config) {}},
		{"10us switch", func(c *server.Config) { c.Net.SwitchLatency = 10e-6 }},
		{"100us switch", func(c *server.Config) { c.Net.SwitchLatency = 100e-6 }},
		{"half bandwidth", func(c *server.Config) { c.Net.LinkKBps /= 2 }},
		{"quarter bandwidth", func(c *server.Config) { c.Net.LinkKBps /= 4 }},
	}); err != nil {
		return nil, "", err
	}

	if err := sweep("staleness", []variant{
		{"gossip (paper)", func(c *server.Config) {}},
		{"oracle loads", func(c *server.Config) { c.L2S.Oracle = true }},
	}); err != nil {
		return nil, "", err
	}

	if err := sweep("thresholds", []variant{
		{"T=10 t=5", func(c *server.Config) { c.L2S.T = 10; c.L2S.LowT = 5 }},
		{"T=20 t=10 (paper)", func(c *server.Config) {}},
		{"T=40 t=20", func(c *server.Config) { c.L2S.T = 40; c.L2S.LowT = 20 }},
		{"T=80 t=40", func(c *server.Config) { c.L2S.T = 80; c.L2S.LowT = 40 }},
	}); err != nil {
		return nil, "", err
	}

	if err := sweep("window", []variant{
		{"w=6", func(c *server.Config) { c.WindowPerNode = 6 }},
		{"w=12 (default)", func(c *server.Config) {}},
		{"w=18", func(c *server.Config) { c.WindowPerNode = 18 }},
		{"w=24", func(c *server.Config) { c.WindowPerNode = 24 }},
	}); err != nil {
		return nil, "", err
	}

	return out, b.String(), nil
}

// MemoryScaling reproduces the Section 5.2 memory observation: larger
// memories help the traditional server enormously (its miss rate falls),
// barely move L2S, and can never lift LARD past its front-end ceiling —
// "for some of our traces, the throughput of the traditional server becomes
// higher than that of the LARD server for larger memories (128 MB) and
// numbers of nodes (8 or more)".
func MemoryScaling(tr *trace.Trace, nodes []int) ([]Figure, string, error) {
	var figs []Figure
	var b strings.Builder
	for _, mem := range []int64{32 << 20, 128 << 20} {
		fig := Figure{
			ID:     fmt.Sprintf("memory-%dmb-%s", mem>>20, tr.Name),
			Title:  fmt.Sprintf("throughputs for %s with %d MB caches", tr.Name, mem>>20),
			XLabel: "nodes",
			YLabel: "requests/sec",
			X:      nodesAsFloats(nodes),
		}
		for _, sys := range systems {
			var vals []float64
			for _, n := range nodes {
				cfg := server.DefaultConfig(sys, n)
				cfg.CacheBytes = mem
				r, err := server.Run(cfg, tr)
				if err != nil {
					return nil, "", err
				}
				vals = append(vals, r.Throughput)
			}
			fig.Series = append(fig.Series, Series{Label: sys.String(), Values: vals})
		}
		figs = append(figs, fig)
		b.WriteString(fig.Render())
	}
	return figs, b.String(), nil
}

// FailoverStudy quantifies the availability claim of Section 4: crash one
// node mid-run and compare how much service survives under L2S (any node)
// versus LARD (the front-end).
func FailoverStudy(tr *trace.Trace, nodes int) (string, error) {
	var b strings.Builder
	b.WriteString("failover: one node crashes halfway through the run\n")
	cases := []struct {
		name string
		sys  server.System
		fail int
	}{
		{"l2s, node 3 fails", server.L2SServer, 3},
		{"lard, back-end 3 fails", server.LARDServer, 3},
		{"lard, front-end fails", server.LARDServer, 0},
	}
	for _, c := range cases {
		cfg := server.DefaultConfig(c.sys, nodes)
		cfg.FailNode = c.fail
		cfg.FailAtFrac = 0.5
		r, err := server.Run(cfg, tr)
		if err != nil {
			return "", err
		}
		served := float64(r.Completed) / float64(r.Completed+r.Aborted) * 100
		fmt.Fprintf(&b, "  %-26s served=%5.1f%%  aborted=%d  throughput=%.0f\n",
			c.name, served, r.Aborted, r.Throughput)
	}
	return b.String(), nil
}
