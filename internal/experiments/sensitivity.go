package experiments

import (
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/trace"
)

// SensitivityResult is one row of an ablation sweep.
type SensitivityResult struct {
	Variant    string
	Throughput float64
	MissRate   float64
	Forwarded  float64
	Messages   uint64
}

func renderSensitivity(title string, rows []SensitivityResult) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "  %-24s %12s %8s %8s %10s\n", "variant", "req/s", "miss%", "fwd%", "messages")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %12.0f %8.1f %8.1f %10d\n",
			r.Variant, r.Throughput, r.MissRate*100, r.Forwarded*100, r.Messages)
	}
	return b.String()
}

// sensitivityVariant is one grid point of the ablation: a group, a label,
// and the configuration delta it applies on top of the paper's L2S setup.
type sensitivityVariant struct {
	group, name string
	opt         server.Option
}

// noop leaves the paper's configuration untouched.
func noop(*server.Config) {}

// L2SSensitivity reproduces the Section 5.2 summary — "the performance of
// L2S is only slightly affected by reasonable parameters of frequency of
// broadcasts, messaging overhead, and network latency and bandwidth" — and
// the design-choice ablations called out in DESIGN.md (gossip staleness,
// thresholds, saturation window). All variants across all groups form one
// flat grid executed by the pool.
func L2SSensitivity(p *runner.Pool, tr *trace.Trace, nodes int) (map[string][]SensitivityResult, string, error) {
	groups := []string{"broadcast-delta", "messaging-overhead", "network",
		"staleness", "thresholds", "window"}
	variants := []sensitivityVariant{
		{"broadcast-delta", "delta=1", func(c *server.Config) { c.L2S.BroadcastDelta = 1 }},
		{"broadcast-delta", "delta=2", func(c *server.Config) { c.L2S.BroadcastDelta = 2 }},
		{"broadcast-delta", "delta=4 (paper)", noop},
		{"broadcast-delta", "delta=8", func(c *server.Config) { c.L2S.BroadcastDelta = 8 }},
		{"broadcast-delta", "delta=16", func(c *server.Config) { c.L2S.BroadcastDelta = 16 }},

		{"messaging-overhead", "0.5x", func(c *server.Config) { c.Net.MsgCPU /= 2; c.Net.MsgNI /= 2 }},
		{"messaging-overhead", "1x (paper)", noop},
		{"messaging-overhead", "2x", func(c *server.Config) { c.Net.MsgCPU *= 2; c.Net.MsgNI *= 2 }},
		{"messaging-overhead", "4x", func(c *server.Config) { c.Net.MsgCPU *= 4; c.Net.MsgNI *= 4 }},

		{"network", "1us switch (paper)", noop},
		{"network", "10us switch", func(c *server.Config) { c.Net.SwitchLatency = 10e-6 }},
		{"network", "100us switch", func(c *server.Config) { c.Net.SwitchLatency = 100e-6 }},
		{"network", "half bandwidth", func(c *server.Config) { c.Net.LinkKBps /= 2 }},
		{"network", "quarter bandwidth", func(c *server.Config) { c.Net.LinkKBps /= 4 }},

		{"staleness", "gossip (paper)", noop},
		{"staleness", "oracle loads", func(c *server.Config) { c.L2S.Oracle = true }},

		{"thresholds", "T=10 t=5", func(c *server.Config) { c.L2S.T = 10; c.L2S.LowT = 5 }},
		{"thresholds", "T=20 t=10 (paper)", noop},
		{"thresholds", "T=40 t=20", func(c *server.Config) { c.L2S.T = 40; c.L2S.LowT = 20 }},
		{"thresholds", "T=80 t=40", func(c *server.Config) { c.L2S.T = 80; c.L2S.LowT = 40 }},

		{"window", "w=6", func(c *server.Config) { c.WindowPerNode = 6 }},
		{"window", "w=12 (default)", noop},
		{"window", "w=18", func(c *server.Config) { c.WindowPerNode = 18 }},
		{"window", "w=24", func(c *server.Config) { c.WindowPerNode = 24 }},
	}

	jobs := make([]runner.Job, len(variants))
	for i, v := range variants {
		jobs[i] = runner.Job{
			Key:    "sensitivity/" + v.group + "/" + v.name,
			Config: server.NewConfig(server.L2SServer, nodes, v.opt),
			Trace:  tr,
		}
	}

	out := make(map[string][]SensitivityResult)
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		v := variants[i]
		out[v.group] = append(out[v.group], SensitivityResult{
			Variant:    v.name,
			Throughput: jr.Result.Throughput,
			MissRate:   jr.Result.MissRate,
			Forwarded:  jr.Result.ForwardedFrac,
			Messages:   jr.Result.ControlMessages,
		})
	}

	var b strings.Builder
	for _, g := range groups {
		b.WriteString(renderSensitivity("sensitivity/"+g, out[g]))
	}
	return out, b.String(), nil
}

// MemoryScaling reproduces the Section 5.2 memory observation: larger
// memories help the traditional server enormously (its miss rate falls),
// barely move L2S, and can never lift LARD past its front-end ceiling —
// "for some of our traces, the throughput of the traditional server becomes
// higher than that of the LARD server for larger memories (128 MB) and
// numbers of nodes (8 or more)".
func MemoryScaling(p *runner.Pool, tr *trace.Trace, nodes []int) ([]Figure, string, error) {
	mems := []int64{32 << 20, 128 << 20}
	var jobs []runner.Job
	for _, mem := range mems {
		for _, sys := range systems {
			for _, n := range nodes {
				jobs = append(jobs, runner.Job{
					Key:    fmt.Sprintf("memory/%dmb/%s/n=%d", mem>>20, sys, n),
					Config: server.NewConfig(sys, n, server.WithCacheBytes(mem)),
					Trace:  tr,
				})
			}
		}
	}
	results := p.Run(jobs)

	var figs []Figure
	var b strings.Builder
	idx := 0
	for _, mem := range mems {
		fig := Figure{
			ID:     fmt.Sprintf("memory-%dmb-%s", mem>>20, tr.Name),
			Title:  fmt.Sprintf("throughputs for %s with %d MB caches", tr.Name, mem>>20),
			XLabel: "nodes",
			YLabel: "requests/sec",
			X:      nodesAsFloats(nodes),
		}
		for _, sys := range systems {
			var vals []float64
			for range nodes {
				jr := results[idx]
				idx++
				if jr.Err != nil {
					return nil, "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
				}
				vals = append(vals, jr.Result.Throughput)
			}
			fig.Series = append(fig.Series, Series{Label: sys.String(), Values: vals})
		}
		figs = append(figs, fig)
		b.WriteString(fig.Render())
	}
	return figs, b.String(), nil
}

// FailoverStudy quantifies the availability claim of Section 4: crash one
// node mid-run and compare how much service survives under L2S (any node)
// versus LARD (the front-end).
func FailoverStudy(p *runner.Pool, tr *trace.Trace, nodes int) (string, error) {
	cases := []struct {
		name string
		sys  server.System
		fail int
	}{
		{"l2s, node 3 fails", server.L2SServer, 3},
		{"lard, back-end 3 fails", server.LARDServer, 3},
		{"lard, front-end fails", server.LARDServer, 0},
	}
	jobs := make([]runner.Job, len(cases))
	for i, c := range cases {
		jobs[i] = runner.Job{
			Key:    "failover/" + c.name,
			Config: server.NewConfig(c.sys, nodes, server.WithFailure(c.fail, 0.5)),
			Trace:  tr,
		}
	}
	var b strings.Builder
	b.WriteString("failover: one node crashes halfway through the run\n")
	for i, jr := range p.Run(jobs) {
		if jr.Err != nil {
			return "", fmt.Errorf("experiments: %s: %w", jr.Key, jr.Err)
		}
		r := jr.Result
		served := float64(r.Completed) / float64(r.Completed+r.Aborted) * 100
		fmt.Fprintf(&b, "  %-26s served=%5.1f%%  aborted=%d  throughput=%.0f\n",
			cases[i].name, served, r.Aborted, r.Throughput)
	}
	return b.String(), nil
}
