// Package core implements L2S, the Locality and Load balancing Server that
// is the paper's primary contribution (Section 4): a fully distributed
// locality-conscious request-distribution algorithm in which every node
// accepts, parses, forwards, and services requests — no front-end, no
// single point of failure.
//
// Connections arrive at nodes via round-robin DNS. For each file the
// cluster maintains a server set: the nodes allowed to cache and serve it.
// An initial node services a request itself when it is not overloaded and
// is in the file's server set (or the file has never been requested);
// otherwise the request is forwarded to the least-loaded member of the set.
// When both the initial node and that member are overloaded, the
// least-loaded node in the whole cluster joins the set (replication grows);
// sets shrink again when their assigned node is underloaded and the set has
// been stable for a while.
//
// Nodes learn about each other through periodic control messages: a node
// broadcasts its load whenever it has drifted by BroadcastDelta connections
// since its last broadcast, and every server-set modification is broadcast
// by the node that made it. Distribution decisions therefore use exact
// knowledge of the deciding node's own load but slightly stale views of
// everyone else's — the price of decentralization that Section 5 shows to
// be small.
package core

import (
	"fmt"
	"math"

	"repro/internal/policy"
)

// Options are L2S's tunables with the values used in the paper's
// evaluation.
type Options struct {
	// T is the overload threshold: a node with more than T open
	// connections is overloaded (paper: 20).
	T int
	// LowT is the underload threshold t used when shrinking server sets
	// (paper: 10).
	LowT int
	// BroadcastDelta is the load change, in connections, that triggers a
	// load broadcast (Section 5.1: 4).
	BroadcastDelta int
	// ShrinkAfter is how long a server set must remain unmodified before
	// it may shrink, in seconds.
	ShrinkAfter float64
	// Oracle disables dissemination staleness: decisions read true remote
	// loads. It quantifies the cost of gossip in the sensitivity study and
	// is not part of the paper's L2S.
	Oracle bool
}

// DefaultOptions returns the parameters of the paper's evaluation: T=20,
// t=10, broadcast on a drift of 4 connections, sets stable for 20 s before
// shrinking.
func DefaultOptions() Options {
	return Options{T: 20, LowT: 10, BroadcastDelta: 4, ShrinkAfter: 20}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.T <= 0 || o.LowT < 0 || o.LowT > o.T {
		return fmt.Errorf("core: bad L2S thresholds %+v", o)
	}
	if o.BroadcastDelta <= 0 {
		return fmt.Errorf("core: BroadcastDelta must be positive, got %d", o.BroadcastDelta)
	}
	return nil
}

// init places L2S in the policy registry next to the baselines it is
// evaluated against, so CLIs and sweeps construct every policy through
// policy.New. Options.L2S carries this package's Options.
func init() {
	policy.Register("l2s", func(env policy.Env, popts policy.Options) (policy.Distributor, error) {
		opts := DefaultOptions()
		if popts.L2S != nil {
			o, ok := popts.L2S.(Options)
			if !ok {
				return nil, fmt.Errorf("core: policy Options.L2S has type %T, want core.Options", popts.L2S)
			}
			if o != (Options{}) {
				opts = o
			}
		}
		if err := opts.Validate(); err != nil {
			return nil, err
		}
		l := New(env, opts)
		l.ReserveFiles(popts.Files)
		return l, nil
	})
	// l2s-weighted scales L2S's thresholds and selections by the per-node
	// capacity weights the simulator derives from hardware profiles
	// (Options.Weights); on a homogeneous cluster it is exactly l2s.
	policy.Register("l2s-weighted", func(env policy.Env, popts policy.Options) (policy.Distributor, error) {
		opts := DefaultOptions()
		if popts.L2S != nil {
			o, ok := popts.L2S.(Options)
			if !ok {
				return nil, fmt.Errorf("core: policy Options.L2S has type %T, want core.Options", popts.L2S)
			}
			if o != (Options{}) {
				opts = o
			}
		}
		if err := opts.Validate(); err != nil {
			return nil, err
		}
		l := NewWeighted(env, opts, popts.NodeWeights(env.N()))
		l.ReserveFiles(popts.Files)
		return l, nil
	})
	policy.RegisterParams("l2s", l2sParams()...)
	policy.RegisterParams("l2s-weighted", l2sParams()...)
}

// l2sParams declares the spec parameters of the L2S family (the keys match
// the l2sd daemon's flag names). Each Apply materializes the defaults
// before setting one field, so "l2s:delta=8" keeps T=20, t=10. A foreign
// type already stored in Options.L2S is left untouched for the factory to
// reject.
func l2sParams() []policy.Param {
	set := func(f func(*Options, float64)) func(*policy.Options, float64) {
		return func(po *policy.Options, v float64) {
			opts := DefaultOptions()
			if o, ok := po.L2S.(Options); ok && o != (Options{}) {
				opts = o
			} else if po.L2S != nil {
				if _, foreign := po.L2S.(Options); !foreign {
					return
				}
			}
			f(&opts, v)
			po.L2S = opts
		}
	}
	return []policy.Param{
		{Key: "T", Kind: policy.IntParam, Min: 1, Max: 1e6,
			Doc:   "overload threshold in open connections",
			Apply: set(func(o *Options, v float64) { o.T = int(v) })},
		{Key: "t", Kind: policy.IntParam, Min: 0, Max: 1e6,
			Doc:   "underload threshold for server-set shrinking",
			Apply: set(func(o *Options, v float64) { o.LowT = int(v) })},
		{Key: "delta", Kind: policy.IntParam, Min: 1, Max: 1e6,
			Doc:   "load drift, in connections, that triggers a broadcast",
			Apply: set(func(o *Options, v float64) { o.BroadcastDelta = int(v) })},
		{Key: "shrink", Kind: policy.FloatParam, Min: 0, Max: 1e6,
			Doc:   "seconds a server set stays stable before shrinking",
			Apply: set(func(o *Options, v float64) { o.ShrinkAfter = v })},
		{Key: "oracle", Kind: policy.BoolParam,
			Doc:   "read true remote loads instead of gossiped views",
			Apply: set(func(o *Options, v float64) { o.Oracle = v != 0 })},
	}
}

// L2S implements policy.Distributor.
type L2S struct {
	env  policy.Env
	opts Options

	// weights holds per-node relative capacities for the l2s-weighted
	// variant: loads are compared as load/weight, which makes the overload
	// threshold effectively T*w_i per node, and set growth prefers nodes
	// with spare weighted capacity. nil (plain L2S) behaves exactly as
	// published: every comparison divides by exactly 1.0.
	weights []float64

	// reporter is the environment's pooled load-broadcast delivery path,
	// nil when the environment only offers closure-based BroadcastControl.
	reporter policy.LoadReporter

	rr *policy.RoundRobin

	// seen[n] is the last load value node n broadcast; lastSent[n] is the
	// value at the time of that broadcast (they differ only while a
	// broadcast is in flight).
	seen     []int
	lastSent []int
	inFlight []bool

	sets *policy.FileSets
	all  []int

	// Statistics.
	loadBroadcasts uint64
	setBroadcasts  uint64
	grows, shrinks uint64
}

func contains(nodes []int32, n int) bool {
	for _, v := range nodes {
		if int(v) == n {
			return true
		}
	}
	return false
}

// New builds an L2S distributor over the environment's cluster.
func New(env policy.Env, opts Options) *L2S {
	if err := opts.Validate(); err != nil {
		panic(err.Error())
	}
	n := env.N()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	reporter, _ := env.(policy.LoadReporter)
	return &L2S{
		env:      env,
		opts:     opts,
		reporter: reporter,
		rr:       policy.NewRoundRobin(env),
		seen:     make([]int, n),
		lastSent: make([]int, n),
		inFlight: make([]bool, n),
		sets:     policy.NewFileSets(0),
		all:      all,
	}
}

// ReserveFiles pre-sizes the per-file server-set index for n distinct
// files, so catalog-scale runs skip its rehash-doublings.
func (l *L2S) ReserveFiles(n int) { l.sets.Reserve(n) }

// NewWeighted builds L2S with capacity-weighted thresholds and server-set
// selection. weights must have one entry per node, normalized to mean 1
// (see policy.Options.Weights); nil degrades to plain L2S.
func NewWeighted(env policy.Env, opts Options, weights []float64) *L2S {
	l := New(env, opts)
	if len(weights) == env.N() {
		l.weights = weights
	}
	return l
}

// Name implements policy.Distributor.
func (l *L2S) Name() string {
	if l.weights != nil {
		return "l2s-weighted"
	}
	return "l2s"
}

// weight returns node n's relative capacity (1 when unweighted).
func (l *L2S) weight(n int) float64 {
	if l.weights == nil {
		return 1
	}
	return l.weights[n]
}

// FrontEnd implements policy.Distributor: L2S has none.
func (l *L2S) FrontEnd() int { return -1 }

// Initial implements policy.Distributor: round-robin DNS.
func (l *L2S) Initial(f policy.FileID) int { return l.rr.Next() }

// loadAs returns node n's load as observed from node observer: exact for
// the observer itself, the last broadcast value for everyone else.
func (l *L2S) loadAs(observer, n int) int {
	if n == observer || l.opts.Oracle {
		return l.env.Load(n)
	}
	return l.seen[n]
}

// Service implements the L2S distribution algorithm, executed at the
// initial node with the information visible there.
func (l *L2S) Service(initial int, f policy.FileID) int {
	// Capacity-scaled load view: with nil weights this is the published
	// algorithm (scaling by exactly 1.0); with weights the overload
	// threshold is effectively T*w_i per node.
	view := func(n int) float64 { return float64(l.loadAs(initial, n)) / l.weight(n) }
	overloaded := func(n int) bool { return view(n) > float64(l.opts.T) }

	f32 := int32(f)
	nodes := l.sets.Nodes(f32)
	if len(nodes) == 0 || l.allDead(nodes) {
		// First request for this file (or all its servers crashed): the
		// initial node takes it unless it is overloaded, in which case the
		// least-loaded node in the cluster does.
		svc := initial
		if overloaded(initial) || !l.env.Alive(initial) {
			if m := l.argminAll(view); m >= 0 {
				svc = m
			}
		}
		l.sets.SetSingle(f32, svc, l.env.Now())
		l.broadcastSetChange(initial)
		l.grows++
		return svc
	}

	var svc int
	switch {
	case contains(nodes, initial) && !overloaded(initial) && l.env.Alive(initial):
		// Serve locally: the file is (believed) cached here and we have
		// capacity.
		svc = initial
	default:
		// Forward to the least-loaded member of the server set...
		n := l.leastLoadedMember(nodes, view)
		if overloaded(initial) && overloaded(n) {
			// ... unless everyone relevant is overloaded: grow the set with
			// the least-loaded node in the whole cluster.
			if m := l.argminAll(view); m >= 0 && !contains(nodes, m) {
				l.sets.Append(f32, m, l.env.Now())
				l.broadcastSetChange(initial)
				l.grows++
				n = m
			}
		}
		svc = n
	}

	// Replication control: shrink a stable set whose chosen server is
	// underloaded. Re-read the set: growth above stamps the modification
	// time, which defers shrinking exactly as before.
	nodes = l.sets.Nodes(f32)
	if len(nodes) > 1 && view(svc) < float64(l.opts.LowT) &&
		l.env.Now()-l.sets.Modified(f32) > l.opts.ShrinkAfter {
		l.removeMostLoaded(f32, nodes, svc, view)
		l.broadcastSetChange(initial)
		l.shrinks++
	}
	return svc
}

func (l *L2S) allDead(nodes []int32) bool {
	for _, n := range nodes {
		if l.env.Alive(int(n)) {
			return false
		}
	}
	return true
}

func (l *L2S) argminAll(view func(int) float64) int {
	best := -1
	bestLoad := math.Inf(1)
	for _, n := range l.all {
		if !l.env.Alive(n) {
			continue
		}
		if v := view(n); v < bestLoad {
			best, bestLoad = n, v
		}
	}
	return best
}

func (l *L2S) leastLoadedMember(nodes []int32, view func(int) float64) int {
	best := -1
	bestLoad := math.Inf(1)
	for _, n := range nodes {
		if !l.env.Alive(int(n)) {
			continue
		}
		if v := view(int(n)); v < bestLoad {
			best, bestLoad = int(n), v
		}
	}
	if best < 0 {
		return int(nodes[0])
	}
	return best
}

func (l *L2S) removeMostLoaded(f int32, nodes []int32, keep int, view func(int) float64) {
	worst, at := -1, -1
	worstLoad := math.Inf(-1)
	for i, n := range nodes {
		if int(n) == keep {
			continue
		}
		if v := view(int(n)); v > worstLoad {
			worst, worstLoad, at = int(n), v, i
		}
	}
	if worst >= 0 {
		l.sets.RemoveAt(f, at, l.env.Now())
	} else {
		l.sets.Touch(f, l.env.Now())
	}
}

// broadcastSetChange charges the cost of disseminating a server-set
// modification. Set contents are shared memory in the simulator (the
// real system replicates them), so only the cost and the counter matter.
func (l *L2S) broadcastSetChange(from int) {
	l.setBroadcasts++
	l.env.BroadcastControl(from, nil)
}

// maybeBroadcastLoad broadcasts node n's load if it has drifted by at least
// BroadcastDelta connections since the last broadcast.
func (l *L2S) maybeBroadcastLoad(n int) {
	if l.inFlight[n] || !l.env.Alive(n) {
		return
	}
	cur := l.env.Load(n)
	drift := cur - l.lastSent[n]
	if drift < 0 {
		drift = -drift
	}
	if drift < l.opts.BroadcastDelta {
		return
	}
	l.inFlight[n] = true
	l.lastSent[n] = cur
	l.loadBroadcasts++
	if l.reporter != nil {
		// Pooled delivery: the environment hands (n, cur) back through
		// ApplyLoadReport, sparing a closure allocation per broadcast.
		l.reporter.BroadcastLoadReport(n, cur, l)
		return
	}
	l.env.BroadcastControl(n, func() {
		l.seen[n] = cur
		l.inFlight[n] = false
		// Load may have drifted again while the broadcast was in flight.
		l.maybeBroadcastLoad(n)
	})
}

// ApplyLoadReport implements policy.LoadReportSink: the delivery half of a
// load broadcast sent through the environment's LoadReporter path, with the
// exact statements the closure path runs.
func (l *L2S) ApplyLoadReport(n, load int) {
	l.seen[n] = load
	l.inFlight[n] = false
	// Load may have drifted again while the broadcast was in flight.
	l.maybeBroadcastLoad(n)
}

// OnAssign implements policy.Distributor.
func (l *L2S) OnAssign(n int) { l.maybeBroadcastLoad(n) }

// OnComplete implements policy.Distributor.
func (l *L2S) OnComplete(n int, f policy.FileID) { l.maybeBroadcastLoad(n) }

// Stats summarizes L2S's control behavior.
type Stats struct {
	LoadBroadcasts uint64
	SetBroadcasts  uint64
	SetGrows       uint64
	SetShrinks     uint64
	SetSizes       map[int]int // histogram of current server-set sizes
	ReplicatedFrac float64     // fraction of files with more than one server
}

// Stats returns control-plane statistics.
func (l *L2S) Stats() Stats {
	sizes := make(map[int]int)
	replicated := 0
	l.sets.RangeSizes(func(_ int32, size int) bool {
		sizes[size]++
		if size > 1 {
			replicated++
		}
		return true
	})
	var frac float64
	if l.sets.Len() > 0 {
		frac = float64(replicated) / float64(l.sets.Len())
	}
	return Stats{
		LoadBroadcasts: l.loadBroadcasts,
		SetBroadcasts:  l.setBroadcasts,
		SetGrows:       l.grows,
		SetShrinks:     l.shrinks,
		SetSizes:       sizes,
		ReplicatedFrac: frac,
	}
}

// ServerSet returns a copy of the current server set for a file, for tests.
func (l *L2S) ServerSet(f policy.FileID) []int {
	nodes := l.sets.Nodes(int32(f))
	if nodes == nil {
		return nil
	}
	out := make([]int, len(nodes))
	for i, n := range nodes {
		out[i] = int(n)
	}
	return out
}

var (
	_ policy.Distributor    = (*L2S)(nil)
	_ policy.LoadReportSink = (*L2S)(nil)
)
