package core

import (
	"testing"

	"repro/internal/policy"
	"repro/internal/policy/policytest"
)

// TestWeightedL2SScalesOverloadThreshold: with capacity weights, a fast
// node's overload threshold is effectively T*w, so a load that makes
// plain L2S deflect a first request is still "not overloaded" for the
// weighted variant.
func TestWeightedL2SScalesOverloadThreshold(t *testing.T) {
	mkEnv := func() *policytest.Env {
		env := policytest.New(2)
		env.Loads = []int{30, 0} // node 0 above T=20, below 4*T
		return env
	}

	weighted := NewWeighted(mkEnv(), DefaultOptions(), []float64{4, 1})
	if weighted.Name() != "l2s-weighted" {
		t.Fatalf("Name = %q", weighted.Name())
	}
	if got := weighted.Service(0, 7); got != 0 {
		t.Fatalf("weighted Service = %d, want the 4x initial node 0", got)
	}

	plain := New(mkEnv(), DefaultOptions())
	if got := plain.Service(0, 7); got != 1 {
		t.Fatalf("plain Service = %d, want deflection to idle node 1", got)
	}
}

// TestWeightedL2SNilWeightsIsPlainL2S: the nil-weight variant must be
// byte-for-byte the published algorithm (the golden equivalence test
// checks this end to end; here we check the name and a decision).
func TestWeightedL2SNilWeightsIsPlainL2S(t *testing.T) {
	env := policytest.New(3)
	l := NewWeighted(env, DefaultOptions(), nil)
	if l.Name() != "l2s" {
		t.Fatalf("Name = %q, want l2s for nil weights", l.Name())
	}
	env.Loads = []int{30, 2, 5}
	if got := l.Service(0, 7); got != 1 {
		t.Fatalf("Service = %d, want least-loaded node 1", got)
	}
}

// TestWeightedL2SRegistered: the registry builds the weighted variant
// from Options.Weights and rejects bad tunables like plain l2s.
func TestWeightedL2SRegistered(t *testing.T) {
	env := policytest.New(4)
	d, err := policy.NewNamed("l2s-weighted", env, policy.Options{Weights: []float64{2, 1, 0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "l2s-weighted" {
		t.Errorf("Name = %q", d.Name())
	}
	_, err = policy.NewNamed("l2s-weighted", env, policy.Options{L2S: Options{T: -1, BroadcastDelta: 1}})
	if err == nil {
		t.Error("invalid thresholds accepted")
	}
}
