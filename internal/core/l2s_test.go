package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/policy/policytest"
)

func TestDefaultsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.T != 20 || o.LowT != 10 || o.BroadcastDelta != 4 {
		t.Fatalf("defaults %+v do not match the paper (T=20, t=10, delta=4)", o)
	}
}

func TestFirstRequestServedLocally(t *testing.T) {
	env := policytest.New(4)
	l := New(env, DefaultOptions())
	if svc := l.Service(2, 1); svc != 2 {
		t.Fatalf("first request serviced at %d, want the initial node 2", svc)
	}
	set := l.ServerSet(1)
	if len(set) != 1 || set[0] != 2 {
		t.Fatalf("server set = %v, want [2]", set)
	}
}

func TestFirstRequestOnOverloadedInitialGoesToLeastLoaded(t *testing.T) {
	env := policytest.New(4)
	l := New(env, DefaultOptions())
	env.Loads = []int{30, 5, 30, 7}
	if svc := l.Service(0, 1); svc != 1 {
		t.Fatalf("service at %d, want least-loaded node 1", svc)
	}
}

func TestMemberServesLocallyWhenUnderloaded(t *testing.T) {
	env := policytest.New(4)
	l := New(env, DefaultOptions())
	l.Service(2, 1) // set = {2}
	env.Loads[2] = 10
	if svc := l.Service(2, 1); svc != 2 {
		t.Fatalf("set member under threshold serviced at %d, want 2", svc)
	}
}

func TestNonMemberForwardsToSet(t *testing.T) {
	env := policytest.New(4)
	l := New(env, DefaultOptions())
	l.Service(2, 1) // set = {2}
	if svc := l.Service(0, 1); svc != 2 {
		t.Fatalf("non-member serviced at %d, want set member 2", svc)
	}
}

func TestReplicationRequiresBothOverloaded(t *testing.T) {
	env := policytest.New(4)
	opts := DefaultOptions()
	opts.Oracle = true // read true loads directly for this unit test
	l := New(env, opts)
	l.Service(2, 1) // set = {2}

	// Only the member overloaded: still forwarded to it (initial is fine
	// but does not cache the file).
	env.Loads = []int{0, 0, 25, 0}
	if svc := l.Service(0, 1); svc != 2 {
		t.Fatalf("service at %d, want 2 (initial not overloaded)", svc)
	}
	if len(l.ServerSet(1)) != 1 {
		t.Fatal("set must not grow while the initial node is underloaded")
	}

	// Both initial and member overloaded: the least-loaded node joins.
	env.Loads = []int{25, 3, 25, 9}
	if svc := l.Service(0, 1); svc != 1 {
		t.Fatalf("service at %d, want new member 1", svc)
	}
	set := l.ServerSet(1)
	if len(set) != 2 {
		t.Fatalf("set = %v, want 2 members", set)
	}
}

func TestShrinkAfterStability(t *testing.T) {
	env := policytest.New(4)
	opts := DefaultOptions()
	opts.Oracle = true
	l := New(env, opts)
	l.Service(2, 1)
	env.Loads = []int{25, 3, 25, 9}
	l.Service(0, 1) // replicate: set = {2, 1}

	// Not enough time has passed: no shrink even though loads are low.
	env.Loads = []int{0, 0, 0, 0}
	l.Service(1, 1)
	if len(l.ServerSet(1)) != 2 {
		t.Fatal("set shrank before the stability window")
	}

	env.Clock = opts.ShrinkAfter + 1
	l.Service(1, 1)
	if got := l.ServerSet(1); len(got) != 1 {
		t.Fatalf("set = %v, want shrunk to 1 member", got)
	}
	if l.Stats().SetShrinks != 1 {
		t.Fatalf("shrinks = %d, want 1", l.Stats().SetShrinks)
	}
}

func TestLoadBroadcastOnDelta(t *testing.T) {
	env := policytest.New(4)
	l := New(env, DefaultOptions())
	env.Loads[1] = 3
	l.OnAssign(1)
	if env.Sent != 0 {
		t.Fatalf("broadcast below delta: %d messages", env.Sent)
	}
	env.Loads[1] = 4
	l.OnAssign(1)
	if env.Sent != 3 {
		t.Fatalf("sent %d messages, want 3 (broadcast at delta 4)", env.Sent)
	}
	if l.Stats().LoadBroadcasts != 1 {
		t.Fatalf("LoadBroadcasts = %d, want 1", l.Stats().LoadBroadcasts)
	}
}

func TestLoadViewIsStaleUntilDelivery(t *testing.T) {
	env := policytest.New(3)
	env.Deferred = true
	l := New(env, DefaultOptions())
	env.Loads[1] = 4
	l.OnAssign(1)
	// Node 0's view of node 1 is still 0 while the broadcast is in flight.
	if got := l.loadAs(0, 1); got != 0 {
		t.Fatalf("stale view = %d, want 0", got)
	}
	// The node itself always knows its true load.
	if got := l.loadAs(1, 1); got != 4 {
		t.Fatalf("self view = %d, want 4", got)
	}
	env.Flush()
	if got := l.loadAs(0, 1); got != 4 {
		t.Fatalf("post-delivery view = %d, want 4", got)
	}
}

func TestBroadcastReissuedAfterFurtherDrift(t *testing.T) {
	env := policytest.New(3)
	env.Deferred = true
	l := New(env, DefaultOptions())
	env.Loads[1] = 4
	l.OnAssign(1) // first broadcast in flight
	env.Loads[1] = 9
	l.OnAssign(1) // drifted again, but one broadcast at a time
	if env.Sent != 2 {
		t.Fatalf("sent = %d, want 2 (single in-flight broadcast)", env.Sent)
	}
	env.Flush() // delivery notices the drift and re-broadcasts
	if env.Sent != 4 {
		t.Fatalf("sent = %d, want 4 after re-broadcast", env.Sent)
	}
	env.Flush()
	if got := l.loadAs(0, 1); got != 9 {
		t.Fatalf("view = %d, want 9", got)
	}
}

func TestOracleBypassesStaleness(t *testing.T) {
	env := policytest.New(3)
	opts := DefaultOptions()
	opts.Oracle = true
	l := New(env, opts)
	env.Loads[2] = 17
	if got := l.loadAs(0, 2); got != 17 {
		t.Fatalf("oracle view = %d, want 17", got)
	}
}

func TestFailedNodesAvoided(t *testing.T) {
	env := policytest.New(4)
	l := New(env, DefaultOptions())
	l.Service(2, 1) // set = {2}
	env.Dead[2] = true
	svc := l.Service(0, 1)
	if svc == 2 {
		t.Fatal("request routed to a dead node")
	}
	set := l.ServerSet(1)
	if len(set) != 1 || set[0] == 2 {
		t.Fatalf("set = %v, want rebuilt without node 2", set)
	}
}

func TestRoundRobinArrivals(t *testing.T) {
	env := policytest.New(3)
	l := New(env, DefaultOptions())
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, l.Initial(0))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("arrivals = %v, want %v", got, want)
		}
	}
	if l.FrontEnd() != -1 {
		t.Fatal("L2S must not have a front-end")
	}
}

func TestStatsReplicatedFraction(t *testing.T) {
	env := policytest.New(4)
	opts := DefaultOptions()
	opts.Oracle = true
	l := New(env, opts)
	l.Service(0, 1)
	l.Service(1, 2)
	env.Loads = []int{25, 25, 0, 0}
	l.Service(0, 1) // replicates file 1
	s := l.Stats()
	if s.ReplicatedFrac != 0.5 {
		t.Fatalf("ReplicatedFrac = %v, want 0.5", s.ReplicatedFrac)
	}
	if s.SetSizes[1] != 1 || s.SetSizes[2] != 1 {
		t.Fatalf("SetSizes = %v", s.SetSizes)
	}
}

func TestBadOptionsPanic(t *testing.T) {
	cases := map[string]Options{
		"zero-T":     {T: 0, LowT: 0, BroadcastDelta: 4},
		"t-above-T":  {T: 5, LowT: 9, BroadcastDelta: 4},
		"zero-delta": {T: 20, LowT: 10, BroadcastDelta: 0},
	}
	for name, opts := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			New(policytest.New(2), opts)
		}()
	}
}

// Property: whatever the load pattern and request mix, (a) the chosen
// service node is always alive and valid, (b) server sets only contain
// valid nodes, and (c) every file requested at least once has a non-empty
// server set.
func TestPropertyServiceInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := policytest.New(4 + rng.Intn(12))
		l := New(env, DefaultOptions())
		files := 1 + rng.Intn(50)
		for step := 0; step < 400; step++ {
			for i := range env.Loads {
				env.Loads[i] = rng.Intn(30)
			}
			env.Clock += rng.Float64()
			f := policy.FileID(rng.Intn(files))
			initial := l.Initial(f)
			svc := l.Service(initial, f)
			if svc < 0 || svc >= env.N() || !env.Alive(svc) {
				return false
			}
			env.Loads[svc]++
			l.OnAssign(svc)
			if rng.Intn(2) == 0 && env.Loads[svc] > 0 {
				env.Loads[svc]--
				l.OnComplete(svc, f)
			}
			set := l.ServerSet(f)
			if len(set) == 0 {
				return false
			}
			for _, n := range set {
				if n < 0 || n >= env.N() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: server sets never exceed the cluster size and contain no
// duplicates.
func TestPropertyNoDuplicateMembers(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := policytest.New(5)
		opts := DefaultOptions()
		opts.Oracle = true
		l := New(env, opts)
		for step := 0; step < 500; step++ {
			for i := range env.Loads {
				env.Loads[i] = rng.Intn(40) // frequently above T
			}
			f := policy.FileID(rng.Intn(8))
			l.Service(l.Initial(f), f)
			set := l.ServerSet(f)
			if len(set) > env.N() {
				return false
			}
			seen := map[int]bool{}
			for _, n := range set {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
