package core

import (
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/policy/policytest"
)

// The init-time registry hookup is how every CLI reaches this package;
// these tests pin each branch of that factory.

func TestRegistryConstructsL2S(t *testing.T) {
	d, err := policy.NewNamed("l2s", policytest.New(4), policy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	l, ok := d.(*L2S)
	if !ok {
		t.Fatalf("registry built a %T, want *core.L2S", d)
	}
	if l.Name() != "l2s" {
		t.Fatalf("Name() = %q", l.Name())
	}
	if l.FrontEnd() != -1 {
		t.Fatalf("FrontEnd() = %d, want -1 (no front end)", l.FrontEnd())
	}
	if l.opts != DefaultOptions() {
		t.Fatalf("zero policy.Options gave opts %+v, want defaults", l.opts)
	}
}

func TestRegistryPassesThroughOptions(t *testing.T) {
	want := Options{T: 30, LowT: 15, BroadcastDelta: 2}
	d, err := policy.NewNamed("l2s", policytest.New(4), policy.Options{L2S: want})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.(*L2S).opts; got != want {
		t.Fatalf("opts = %+v, want %+v", got, want)
	}
	// The zero Options value means "unset", not "all thresholds zero".
	d, err = policy.NewNamed("l2s", policytest.New(4), policy.Options{L2S: Options{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.(*L2S).opts; got != DefaultOptions() {
		t.Fatalf("zero Options gave %+v, want defaults", got)
	}
}

func TestRegistryRejectsBadOptions(t *testing.T) {
	_, err := policy.NewNamed("l2s", policytest.New(4), policy.Options{L2S: "not options"})
	if err == nil || !strings.Contains(err.Error(), "want core.Options") {
		t.Fatalf("foreign option type: err = %v", err)
	}
	_, err = policy.NewNamed("l2s", policytest.New(4), policy.Options{L2S: Options{T: -1, BroadcastDelta: 4}})
	if err == nil || !strings.Contains(err.Error(), "thresholds") {
		t.Fatalf("invalid thresholds: err = %v", err)
	}
}

func TestArgminSkipsDeadNodes(t *testing.T) {
	env := policytest.New(4)
	env.Loads = []int{1, 9, 9, 9}
	env.Dead[0] = true // the least-loaded node is down
	l := New(env, DefaultOptions())
	if got := l.argminAll(func(n int) float64 { return float64(env.Loads[n]) }); got == 0 || got < 0 {
		t.Fatalf("argminAll = %d, want a live node", got)
	}
}

func TestLeastLoadedMemberFallsBackWhenAllDead(t *testing.T) {
	env := policytest.New(4)
	l := New(env, DefaultOptions())
	set := []int32{2, 3}
	env.Dead[2], env.Dead[3] = true, true
	// With every member down there is no good answer; the contract is a
	// deterministic fallback to the first member rather than a crash.
	if got := l.leastLoadedMember(set, func(n int) float64 { return float64(env.Loads[n]) }); got != 2 {
		t.Fatalf("all-dead fallback = %d, want first member 2", got)
	}
	env.Dead[2] = false
	env.Loads = []int{0, 0, 7, 1}
	if got := l.leastLoadedMember(set, func(n int) float64 { return float64(env.Loads[n]) }); got != 2 {
		t.Fatalf("member pick = %d, want the only live member 2", got)
	}
}

func TestServerSetUnknownFile(t *testing.T) {
	l := New(policytest.New(2), DefaultOptions())
	if set := l.ServerSet(42); set != nil {
		t.Fatalf("ServerSet of a never-requested file = %v, want nil", set)
	}
	l.Service(0, 42)
	set := l.ServerSet(42)
	if len(set) == 0 {
		t.Fatal("ServerSet empty after a request")
	}
	set[0] = -99 // the copy must not alias internal state
	if l.ServerSet(42)[0] == -99 {
		t.Fatal("ServerSet returned an aliased slice")
	}
}
