// Package runner is the sweep executor behind every figure: it fans
// independent server.Run simulations out across a worker pool while
// keeping results bit-identical to a sequential sweep.
//
// Determinism is by construction. Each job's RNG seed is derived with
// SplitMix64 from the pool's base seed and the job's stable key — never
// from goroutine scheduling order — and each simulation is a pure function
// of its (Config, Trace) pair, so the only thing parallelism changes is
// wall-clock time. Results are reassembled in submission order, and a
// Sequential escape hatch runs the identical code path on the caller's
// goroutine for debugging.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

// Job is one independent simulation in a sweep.
type Job struct {
	// Key is the job's stable identity within the sweep (e.g.
	// "figure7/l2s/n=8"). It labels progress and errors and, together
	// with the pool's base seed, determines the job's RNG seed, so a grid
	// point reproduces exactly no matter how the sweep is scheduled or
	// which subset of the grid is run.
	Key string

	// Config describes the grid point. If Config.Seed is zero the runner
	// fills it with the key-derived seed before running.
	Config server.Config

	// Trace drives the simulation. Traces are read-only during a run and
	// may be shared between jobs.
	Trace *trace.Trace
}

// Result is one job's outcome, reported in submission order.
type Result struct {
	Index  int    // position in the submitted job slice
	Key    string // the job's key
	Seed   int64  // the seed the job ran with
	Result server.Result
	Err    error
	// Elapsed is the job's wall-clock time. It is the only field that
	// depends on scheduling; comparisons of parallel versus sequential
	// sweeps should ignore it.
	Elapsed time.Duration
}

// Progress reports a completed job. Done counts completions so far (in
// completion order); callbacks are serialized by the pool, so handlers may
// touch shared state without locking.
type Progress struct {
	Done, Total int
	Job         Result
}

// Pool executes sweeps. The zero value runs jobs across GOMAXPROCS
// workers with base seed 0.
type Pool struct {
	// Workers is the number of concurrent simulations; values below 1
	// select GOMAXPROCS.
	Workers int

	// Sequential runs jobs one after another on the caller's goroutine —
	// the escape hatch for debugging and for apples-to-apples timing. It
	// produces bit-identical results to the parallel path.
	Sequential bool

	// BaseSeed perturbs every derived job seed; sweeps that must be
	// comparable across runs share a base seed.
	BaseSeed uint64

	// OnProgress, when non-nil, is called after each job completes. Calls
	// are serialized.
	OnProgress func(Progress)
}

// NewPool returns a pool with the given width; workers below 1 selects
// GOMAXPROCS and workers == 1 selects the sequential path.
func NewPool(workers int) *Pool {
	return &Pool{Workers: workers, Sequential: workers == 1}
}

// Run executes every job and returns their results in submission order.
// Job failures (including panics out of the model layers) are isolated in
// the per-job Err fields; Run itself does not fail.
func (p *Pool) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}

	var mu sync.Mutex // serializes progress callbacks and the done counter
	done := 0
	finish := func(i int, r Result) {
		results[i] = r
		if p.OnProgress == nil {
			return
		}
		mu.Lock()
		done++
		p.OnProgress(Progress{Done: done, Total: len(jobs), Job: r})
		mu.Unlock()
	}

	if p.Sequential {
		for i, job := range jobs {
			finish(i, p.runJob(i, job))
		}
		return results
	}

	workers := p.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				finish(i, p.runJob(i, jobs[i]))
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()
	return results
}

// runJob executes one job with its derived seed and timing.
func (p *Pool) runJob(i int, job Job) Result {
	cfg := job.Config
	if cfg.Seed == 0 {
		cfg.Seed = Seed(p.BaseSeed, job.Key)
	}
	out := Result{Index: i, Key: job.Key, Seed: cfg.Seed}
	start := time.Now()
	out.Result, out.Err = run(cfg, job.Trace)
	out.Elapsed = time.Since(start)
	return out
}

// run guards one simulation: server.Run already converts model panics to
// errors, but a panicking CustomPolicy callback or a nil trace would still
// unwind here, and a sweep must not die with hundreds of sibling jobs in
// flight.
func run(cfg server.Config, tr *trace.Trace) (res server.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = server.Result{}, fmt.Errorf("runner: job panicked: %v", r)
		}
	}()
	if tr == nil {
		return server.Result{}, fmt.Errorf("runner: job has no trace")
	}
	return server.Run(cfg, tr)
}

// Seed derives a job seed from a base seed and a stable key: the key is
// folded with FNV-1a and the result finalized with the SplitMix64 mixer,
// so every grid point gets a well-spread, order-independent seed. The
// result is never zero (zero means "unseeded" to server.Config).
func Seed(base uint64, key string) int64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	x := base + h + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	seed := int64(x >> 1) // keep it positive so it reads well in logs
	if seed == 0 {
		seed = 1
	}
	return seed
}
