package runner

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/trace"
)

func testTrace(t testing.TB) *trace.Trace {
	t.Helper()
	return trace.MustGenerate(trace.GenSpec{
		Name: "runner", Files: 600, AvgFileKB: 8, Requests: 12000,
		AvgReqKB: 6, Alpha: 0.9, LocalityP: 0.3, Seed: 11, Clients: 400,
	})
}

// grid builds a sweep that exercises every seeded code path: closed-loop,
// open-loop Poisson arrivals, and persistent connections, across systems
// and cluster sizes.
func grid(tr *trace.Trace) []Job {
	var jobs []Job
	for _, sys := range []server.System{server.Traditional, server.LARDServer, server.L2SServer} {
		for _, n := range []int{1, 4, 8} {
			jobs = append(jobs, Job{
				Key:    fmt.Sprintf("%s/n=%d", sys, n),
				Config: server.NewConfig(sys, n),
				Trace:  tr,
			})
		}
	}
	jobs = append(jobs,
		Job{
			Key:    "openloop/l2s/n=4",
			Config: server.NewConfig(server.L2SServer, 4, server.WithArrivalRate(1500)),
			Trace:  tr,
		},
		Job{
			Key:    "persistent/lard/n=4",
			Config: server.NewConfig(server.LARDServer, 4, server.WithPersistent(7)),
			Trace:  tr,
		},
		Job{
			Key:    "policy/cached-dns/n=8",
			Config: server.NewConfig(server.CustomServer, 8, server.WithPolicy("cached-dns")),
			Trace:  tr,
		},
	)
	return jobs
}

// TestParallelMatchesSequential is the determinism contract: an 8-worker
// sweep and a sequential sweep over the same grid produce identical
// results, field for field (wall-clock timing aside).
func TestParallelMatchesSequential(t *testing.T) {
	tr := testTrace(t)
	jobs := grid(tr)

	seq := (&Pool{Sequential: true}).Run(jobs)
	par := (&Pool{Workers: 8}).Run(jobs)

	if len(seq) != len(jobs) || len(par) != len(jobs) {
		t.Fatalf("got %d sequential and %d parallel results for %d jobs", len(seq), len(par), len(jobs))
	}
	for i := range jobs {
		s, p := seq[i], par[i]
		s.Elapsed, p.Elapsed = 0, 0
		if !reflect.DeepEqual(s, p) {
			t.Errorf("job %q: parallel result diverges from sequential\nseq: %+v\npar: %+v", jobs[i].Key, s, p)
		}
		if s.Err != nil {
			t.Errorf("job %q failed: %v", jobs[i].Key, s.Err)
		}
		if s.Index != i || s.Key != jobs[i].Key {
			t.Errorf("job %d reassembled out of submission order: %+v", i, s)
		}
	}
}

// TestProgressCallbacks checks that overlapping completions deliver
// serialized, monotonically counted progress (run under -race this also
// proves the callback needs no caller-side locking).
func TestProgressCallbacks(t *testing.T) {
	tr := testTrace(t)
	jobs := grid(tr)

	seen := 0
	keys := make(map[string]bool)
	pool := &Pool{
		Workers: 8,
		OnProgress: func(p Progress) {
			seen++ // unsynchronized on purpose: the pool must serialize
			if p.Done != seen {
				t.Errorf("progress out of order: done=%d after %d callbacks", p.Done, seen)
			}
			if p.Total != len(jobs) {
				t.Errorf("progress total = %d, want %d", p.Total, len(jobs))
			}
			keys[p.Job.Key] = true
		},
	}
	pool.Run(jobs)
	if seen != len(jobs) {
		t.Fatalf("got %d progress callbacks for %d jobs", seen, len(jobs))
	}
	for _, j := range jobs {
		if !keys[j.Key] {
			t.Errorf("no progress callback for %q", j.Key)
		}
	}
}

// TestBadJobsAreIsolated mixes invalid grid points into a sweep: each
// fails with its own error while every sibling still completes.
func TestBadJobsAreIsolated(t *testing.T) {
	tr := testTrace(t)
	jobs := []Job{
		{Key: "good", Config: server.NewConfig(server.L2SServer, 4), Trace: tr},
		{Key: "no-nodes", Config: server.NewConfig(server.L2SServer, 0), Trace: tr},
		{Key: "bad-policy", Config: server.NewConfig(server.CustomServer, 4, server.WithPolicy("nope")), Trace: tr},
		{Key: "no-trace", Config: server.NewConfig(server.L2SServer, 4)},
		{Key: "panicky", Config: server.NewConfig(server.CustomServer, 4,
			server.WithCustomPolicy(func(policy.Env) policy.Distributor { panic("boom") })), Trace: tr},
		{Key: "also-good", Config: server.NewConfig(server.Traditional, 2), Trace: tr},
	}
	results := (&Pool{Workers: 4}).Run(jobs)

	for _, key := range []string{"good", "also-good"} {
		for _, r := range results {
			if r.Key == key && r.Err != nil {
				t.Errorf("%s: unexpected error %v", key, r.Err)
			}
		}
	}
	wantErr := map[string]string{
		"no-nodes":   "at least one node",
		"bad-policy": "valid:",
		"no-trace":   "no trace",
		"panicky":    "boom",
	}
	for _, r := range results {
		want, ok := wantErr[r.Key]
		if !ok {
			continue
		}
		if r.Err == nil || !strings.Contains(r.Err.Error(), want) {
			t.Errorf("%s: error %v, want one containing %q", r.Key, r.Err, want)
		}
		if r.Err != nil && !reflect.DeepEqual(r.Result, server.Result{}) {
			t.Errorf("%s: failed job carries a non-zero result", r.Key)
		}
	}
}

// TestSeedDerivation pins the seed contract: stable per (base, key),
// spread across keys, never zero, and independent of sweep composition.
func TestSeedDerivation(t *testing.T) {
	if Seed(0, "a") != Seed(0, "a") {
		t.Error("seed not deterministic")
	}
	if Seed(0, "a") == Seed(0, "b") {
		t.Error("distinct keys share a seed")
	}
	if Seed(0, "a") == Seed(1, "a") {
		t.Error("distinct base seeds share a job seed")
	}
	if Seed(0, "") == 0 || Seed(0, "a") == 0 {
		t.Error("derived seed must never be zero")
	}

	// A job's seed must not depend on where it sits in the grid.
	tr := testTrace(t)
	job := Job{Key: "pinned", Config: server.NewConfig(server.L2SServer, 2), Trace: tr}
	alone := (&Pool{Sequential: true}).Run([]Job{job})
	inGrid := (&Pool{Workers: 4}).Run(append(grid(tr), job))
	if alone[0].Seed != inGrid[len(inGrid)-1].Seed {
		t.Errorf("seed depends on grid composition: %d vs %d", alone[0].Seed, inGrid[len(inGrid)-1].Seed)
	}
}

// TestExplicitSeedWins: a caller-set Config.Seed is never overridden.
func TestExplicitSeedWins(t *testing.T) {
	tr := testTrace(t)
	job := Job{
		Key:    "seeded",
		Config: server.NewConfig(server.L2SServer, 2, server.WithSeed(42)),
		Trace:  tr,
	}
	r := (&Pool{Sequential: true}).Run([]Job{job})[0]
	if r.Seed != 42 {
		t.Fatalf("explicit seed overridden: got %d", r.Seed)
	}
}

func TestEmptySweep(t *testing.T) {
	if got := NewPool(0).Run(nil); len(got) != 0 {
		t.Fatalf("empty sweep returned %d results", len(got))
	}
}
