package runner

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/server"
)

// Worker-count edge cases: the pool must behave with one worker (the
// sequential fast path), zero workers (default to GOMAXPROCS), and more
// workers than jobs.

func smallJobs(t *testing.T, n int) []Job {
	t.Helper()
	tr := testTrace(t)
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Key:    fmt.Sprintf("job-%d", i),
			Config: server.NewConfig(server.L2SServer, 2),
			Trace:  tr,
		}
	}
	return jobs
}

func TestNewPoolOneWorkerIsSequential(t *testing.T) {
	p := NewPool(1)
	if !p.Sequential {
		t.Fatal("NewPool(1) did not select the sequential path")
	}
	results := p.Run(smallJobs(t, 3))
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Key, r.Err)
		}
	}
	if NewPool(2).Sequential {
		t.Fatal("NewPool(2) should run concurrently")
	}
}

func TestZeroWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	jobs := smallJobs(t, 2)
	results := (&Pool{}).Run(jobs) // Workers == 0: derived from GOMAXPROCS
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Key, r.Err)
		}
	}
}

func TestMoreWorkersThanJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	results := (&Pool{Workers: 64}).Run(smallJobs(t, 1))
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
	// The worker count is clamped to the job count, so the pool must not
	// have left a herd of goroutines behind.
	if after := runtime.NumGoroutine(); after > before+8 {
		t.Fatalf("goroutines grew %d -> %d", before, after)
	}
}
