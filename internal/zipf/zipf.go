// Package zipf implements the Zipf-like request popularity distributions
// that the paper (following Breslau et al. [7]) uses for both its analytic
// model and its workload characterization: the probability of a request for
// the i'th most popular of F files is proportional to 1/i^alpha, with alpha
// typically below one for WWW traces.
//
// The package provides the accumulated probability z(n, F) of requesting one
// of the n most popular files, its inverse (solving for the catalog size F
// that yields a target hit rate, as required by the paper's definition of
// the locality-conscious hit rate), and a sampler for trace generation.
package zipf

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// exactLimit is the largest n for which Harmonic sums term by term; beyond
// it an Euler-Maclaurin expansion keeps the error below 1e-10 relative.
const exactLimit = 1 << 10

// Harmonic returns the generalized harmonic number H(alpha, n) =
// sum_{i=1..n} i^-alpha. It accepts any alpha >= 0 and n >= 0.
func Harmonic(alpha float64, n int64) float64 {
	if n <= 0 {
		return 0
	}
	if n <= exactLimit {
		return exactSum(alpha, n)
	}
	base := exactSum(alpha, exactLimit)
	return base + tailSum(alpha, exactLimit, n)
}

func exactSum(alpha float64, n int64) float64 {
	// Sum smallest terms first for floating-point accuracy.
	var s float64
	if alpha == 1 {
		for i := n; i >= 1; i-- {
			s += 1 / float64(i)
		}
		return s
	}
	for i := n; i >= 1; i-- {
		s += math.Pow(float64(i), -alpha)
	}
	return s
}

// tailSum approximates sum_{i=a+1..b} i^-alpha with Euler-Maclaurin:
// integral + boundary + first derivative correction.
func tailSum(alpha float64, a, b int64) float64 {
	fa := math.Pow(float64(a), -alpha)
	fb := math.Pow(float64(b), -alpha)
	var integral float64
	if d := 1 - alpha; d == 0 {
		integral = math.Log(float64(b) / float64(a))
	} else {
		// (b^d - a^d)/d cancels catastrophically as alpha -> 1 (both powers
		// round to 1); a^d * expm1(d*log(b/a))/d is the same integral but
		// stays accurate through the limit.
		integral = math.Pow(float64(a), d) * math.Expm1(d*math.Log(float64(b)/float64(a))) / d
	}
	// sum_{i=a..b} f(i) ~ integral + (fa+fb)/2 + (f'(b)-f'(a))/12, then drop f(a).
	dfa := -alpha * math.Pow(float64(a), -alpha-1)
	dfb := -alpha * math.Pow(float64(b), -alpha-1)
	return integral + (fa+fb)/2 + (dfb-dfa)/12 - fa
}

// Z returns the accumulated probability z(n, F) of a request hitting one of
// the n most popular files out of F, under a Zipf-like law with the given
// alpha. It is 0 for n <= 0 and 1 for n >= F.
func Z(alpha float64, n, files int64) float64 {
	if files <= 0 {
		return 0
	}
	if n <= 0 {
		return 0
	}
	if n >= files {
		return 1
	}
	return Harmonic(alpha, n) / Harmonic(alpha, files)
}

// SolveFiles returns the catalog size F such that z(n, F) is closest to the
// target probability. This is the inverse the paper uses to express the
// locality-conscious hit rate as a function of the locality-oblivious one:
// "f is such that Hlo = z(Clo/S, f)". The result is at least n.
//
// z(n, F) is strictly decreasing in F for fixed n, so a binary search works.
// Targets of 1 (or above) return n; impossible targets (below the limit as
// F -> infinity, which is 0 for alpha <= 1) return the search upper bound.
func SolveFiles(alpha float64, n int64, target float64) int64 {
	if n <= 0 {
		panic(fmt.Sprintf("zipf: SolveFiles needs n >= 1, got %d", n))
	}
	if target >= 1 {
		return n
	}
	if target <= 0 {
		panic(fmt.Sprintf("zipf: SolveFiles target must be positive, got %v", target))
	}
	lo, hi := n, int64(1)<<50
	if hi < lo {
		// n already exceeds the search bound: z(n, F) = 1 for every F we
		// could return, so the smallest valid catalog is n itself.
		return lo
	}
	if Z(alpha, n, hi) > target {
		return hi
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if Z(alpha, n, mid) > target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the smallest F with z <= target; check its neighbor for closeness.
	if lo > n {
		below := Z(alpha, n, lo)
		above := Z(alpha, n, lo-1)
		if math.Abs(above-target) < math.Abs(below-target) {
			return lo - 1
		}
	}
	return lo
}

// Dist is a concrete Zipf-like distribution over ranks 1..F, with a
// precomputed CDF and guide table for O(1) expected sampling and O(1)
// popularity queries.
type Dist struct {
	Alpha float64
	F     int64
	norm  float64   // normalization constant: sum_{i=1..F} i^-alpha
	cdf   []float64 // cdf[i] = P(rank <= i+1)

	// guide is the cutpoint table of the inverse-CDF sampler: guide[j] is
	// the smallest index i with cdf[i] >= j/K, for K = F cutpoints. A draw
	// starts its linear scan at guide[floor(u*K)], which on average leaves
	// O(1) CDF entries to walk regardless of F. nil when F is too large to
	// index with int32; Sample then falls back to binary search.
	guide  []int32
	kscale float64 // float64(K)
}

// New builds the distribution. F must be at least 1; alpha must be >= 0.
func New(alpha float64, files int64) *Dist {
	if files < 1 {
		panic(fmt.Sprintf("zipf: need at least one file, got %d", files))
	}
	if alpha < 0 {
		panic(fmt.Sprintf("zipf: alpha must be >= 0, got %v", alpha))
	}
	cdf := make([]float64, files)
	var sum float64
	for i := int64(0); i < files; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[files-1] = 1 // guard against rounding
	d := &Dist{Alpha: alpha, F: files, norm: sum, cdf: cdf}
	d.buildGuide()
	return d
}

// buildGuide precomputes the cutpoint table in one joint pass over the CDF
// and the K+1 thresholds j/K, both nondecreasing.
func (d *Dist) buildGuide() {
	if d.F > math.MaxInt32-1 {
		return
	}
	k := int(d.F)
	guide := make([]int32, k+1)
	kscale := float64(k)
	j := 0
	for i, c := range d.cdf {
		for j <= k && c >= float64(j)/kscale {
			guide[j] = int32(i)
			j++
		}
	}
	for ; j <= k; j++ {
		guide[j] = int32(len(d.cdf) - 1)
	}
	d.guide = guide
	d.kscale = kscale
}

// P returns the probability of the file with popularity rank i (1-based).
// It is computed directly from the law, i^-alpha / norm: the adjacent-CDF
// difference it replaces cancels catastrophically in the deep tail, where
// both CDF values have rounded to within an ulp of 1.
func (d *Dist) P(rank int64) float64 {
	if rank < 1 || rank > d.F {
		return 0
	}
	return math.Pow(float64(rank), -d.Alpha) / d.norm
}

// CDF returns P(rank <= n).
func (d *Dist) CDF(n int64) float64 {
	if n < 1 {
		return 0
	}
	if n >= d.F {
		return 1
	}
	return d.cdf[n-1]
}

// Sample draws a popularity rank in [1, F]. It consumes exactly one
// uniform draw from rng and returns exactly the rank the binary-search
// inversion returns for that draw (see locate), in O(1) expected time.
func (d *Dist) Sample(rng *rand.Rand) int64 {
	return int64(d.locate(rng.Float64()) + 1)
}

// locate returns the smallest index i with cdf[i] >= u — precisely the
// value of sort.SearchFloat64s(cdf, u) for u in [0, 1). The guide table
// bounds the answer from below: every index before guide[floor(u*K)] has
// cdf < floor(u*K)/K <= u, so a forward scan from there finds the same
// index the binary search would. The backward guard steps exist only for
// the half-ulp case where floor(u*K)/K rounds up past u; they keep the
// equivalence exact for every float64 input rather than almost every one.
func (d *Dist) locate(u float64) int {
	cdf := d.cdf
	if d.guide == nil {
		i := sort.SearchFloat64s(cdf, u)
		if i >= len(cdf) {
			i = len(cdf) - 1
		}
		return i
	}
	j := int(u * d.kscale)
	if j >= len(d.guide) {
		j = len(d.guide) - 1
	}
	i := int(d.guide[j])
	for i > 0 && cdf[i-1] >= u {
		i--
	}
	for cdf[i] < u {
		i++
	}
	return i
}

// locateRef is the binary-search reference inversion, kept for the
// differential test that pins Sample to it.
func (d *Dist) locateRef(u float64) int {
	i := sort.SearchFloat64s(d.cdf, u)
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	return i
}

// FitAlpha estimates the Zipf exponent of an observed popularity
// distribution by least-squares regression of log(frequency) on log(rank),
// the standard procedure used to characterize WWW traces. counts must hold
// per-file request counts (any order); files with zero requests are ignored.
func FitAlpha(counts []int64) float64 {
	freqs := make([]float64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			freqs = append(freqs, float64(c))
		}
	}
	if len(freqs) < 2 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(freqs)))
	var sx, sy, sxx, sxy float64
	n := float64(len(freqs))
	for i, f := range freqs {
		x := math.Log(float64(i + 1))
		y := math.Log(f)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}
