package zipf_test

import (
	"fmt"

	"repro/internal/zipf"
)

// z(n, F): how much of the request stream the n most popular files absorb.
func ExampleZ() {
	// With alpha=1 and a 10,000-file site, the top 100 files carry over
	// half the requests.
	fmt.Printf("top 1%%: %.0f%% of requests\n", zipf.Z(1, 100, 10000)*100)
	fmt.Printf("top 10%%: %.0f%% of requests\n", zipf.Z(1, 1000, 10000)*100)
	// Output:
	// top 1%: 53% of requests
	// top 10%: 76% of requests
}

// SolveFiles inverts z: how large a catalog makes a 1000-file cache hit
// only 60% of the time?
func ExampleSolveFiles() {
	f := zipf.SolveFiles(1, 1000, 0.6)
	fmt.Printf("catalog of about %d files\n", f)
	fmt.Printf("check: z = %.3f\n", zipf.Z(1, 1000, f))
	// Output:
	// catalog of about 147056 files
	// check: z = 0.600
}
