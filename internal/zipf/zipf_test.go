package zipf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	// H(1, 4) = 1 + 1/2 + 1/3 + 1/4 = 25/12
	if got := Harmonic(1, 4); math.Abs(got-25.0/12.0) > 1e-12 {
		t.Fatalf("Harmonic(1,4) = %v, want %v", got, 25.0/12.0)
	}
	// H(0, n) = n
	if got := Harmonic(0, 10); math.Abs(got-10) > 1e-12 {
		t.Fatalf("Harmonic(0,10) = %v, want 10", got)
	}
	// H(2, 3) = 1 + 1/4 + 1/9
	if got := Harmonic(2, 3); math.Abs(got-(1+0.25+1.0/9)) > 1e-12 {
		t.Fatalf("Harmonic(2,3) = %v", got)
	}
	if Harmonic(1, 0) != 0 {
		t.Fatal("Harmonic(_, 0) must be 0")
	}
}

func TestHarmonicLargeMatchesAsymptotic(t *testing.T) {
	// For alpha = 1: H(n) ~ ln(n) + gamma.
	const gamma = 0.5772156649015329
	n := int64(10_000_000)
	want := math.Log(float64(n)) + gamma + 1/(2*float64(n))
	if got := Harmonic(1, n); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Harmonic(1,1e7) = %v, want %v", got, want)
	}
}

func TestHarmonicEulerMaclaurinContinuity(t *testing.T) {
	// The switch from exact summation to the tail expansion must be smooth:
	// compare against brute force just above the exact limit.
	n := int64(exactLimit + 1000)
	for _, alpha := range []float64{0.6, 0.78, 1.0, 1.08, 1.5} {
		var brute float64
		for i := n; i >= 1; i-- {
			brute += math.Pow(float64(i), -alpha)
		}
		got := Harmonic(alpha, n)
		if math.Abs(got-brute)/brute > 1e-10 {
			t.Fatalf("alpha=%v: Harmonic=%v brute=%v", alpha, got, brute)
		}
	}
}

func TestZBoundaries(t *testing.T) {
	if Z(1, 0, 100) != 0 {
		t.Fatal("Z(n=0) must be 0")
	}
	if Z(1, 100, 100) != 1 {
		t.Fatal("Z(n=F) must be 1")
	}
	if Z(1, 200, 100) != 1 {
		t.Fatal("Z(n>F) must be 1")
	}
	if Z(1, 10, 0) != 0 {
		t.Fatal("Z with no files must be 0")
	}
}

// Property: Z is nondecreasing in n and nonincreasing in F.
func TestPropertyZMonotonic(t *testing.T) {
	prop := func(a uint8, n1, n2, f uint16) bool {
		alpha := 0.5 + float64(a%100)/100 // [0.5, 1.5)
		files := int64(f%5000) + 10
		na, nb := int64(n1)%files, int64(n2)%files
		if na > nb {
			na, nb = nb, na
		}
		if Z(alpha, na, files) > Z(alpha, nb, files)+1e-12 {
			return false
		}
		return Z(alpha, na, files) >= Z(alpha, na, files*2)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveFilesInverse(t *testing.T) {
	for _, alpha := range []float64{0.78, 0.91, 1.0, 1.08} {
		for _, files := range []int64{5500, 35885, 1_000_000} {
			n := files / 7
			target := Z(alpha, n, files)
			got := SolveFiles(alpha, n, target)
			// The inverse should recover F within the tolerance of float
			// comparisons on a discrete function.
			if math.Abs(Z(alpha, n, got)-target) > 1e-9 {
				t.Fatalf("alpha=%v files=%d: SolveFiles gave %d with z=%v, want z=%v",
					alpha, files, got, Z(alpha, n, got), target)
			}
		}
	}
}

func TestSolveFilesEdges(t *testing.T) {
	if got := SolveFiles(1, 100, 1.0); got != 100 {
		t.Fatalf("target 1 should return n, got %d", got)
	}
	// Very low target: huge catalog, must not overflow or loop forever.
	got := SolveFiles(1, 10, 0.05)
	if got <= 10 {
		t.Fatalf("low target should give huge F, got %d", got)
	}
}

func TestSolveFilesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-n":      func() { SolveFiles(1, 0, 0.5) },
		"zero-target": func() { SolveFiles(1, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: SolveFiles returns an F whose z is within one discrete step of
// the target for realistic hit-rate targets.
func TestPropertySolveFilesApproximatesTarget(t *testing.T) {
	prop := func(a, nn uint8, tt uint16) bool {
		alpha := 0.6 + float64(a%90)/100
		n := int64(nn)%20000 + 100
		target := 0.1 + 0.89*float64(tt)/65535
		f := SolveFiles(alpha, n, target)
		got := Z(alpha, n, f)
		if limit := Z(alpha, n, int64(1)<<50); target < limit {
			// Unreachable target (alpha > 1 has a positive z limit as
			// F -> infinity): the documented behavior is to return the
			// search upper bound.
			return f == int64(1)<<50
		}
		// Discrete step near the answer bounds the error.
		step := Z(alpha, n, f) - Z(alpha, n, f+1)
		return math.Abs(got-target) <= math.Max(step*2, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDistProbabilitiesSumToOne(t *testing.T) {
	d := New(0.8, 1000)
	var sum float64
	for i := int64(1); i <= d.F; i++ {
		sum += d.P(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if d.P(0) != 0 || d.P(d.F+1) != 0 {
		t.Fatal("out-of-range ranks must have probability 0")
	}
}

func TestDistCDFMatchesZ(t *testing.T) {
	d := New(1.0, 5000)
	for _, n := range []int64{1, 10, 100, 2500, 5000} {
		want := Z(1.0, n, 5000)
		if got := d.CDF(n); math.Abs(got-want) > 1e-9 {
			t.Fatalf("CDF(%d) = %v, want %v", n, got, want)
		}
	}
	if d.CDF(0) != 0 || d.CDF(9999) != 1 {
		t.Fatal("CDF boundaries wrong")
	}
}

func TestDistSampleFrequencies(t *testing.T) {
	d := New(1.0, 100)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int64, 101)
	const n = 500000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	// Rank 1 should appear with probability P(1) ~ 1/H(100).
	want := d.P(1)
	got := float64(counts[1]) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank-1 frequency = %v, want about %v", got, want)
	}
	// Every sample must be in range.
	if counts[0] != 0 {
		t.Fatal("sampled rank 0")
	}
}

func TestDistPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no-files":       func() { New(1, 0) },
		"negative-alpha": func() { New(-0.5, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFitAlphaRecoversExponent(t *testing.T) {
	// Generate ideal Zipf counts and check the regression recovers alpha.
	for _, alpha := range []float64{0.78, 1.0, 1.08} {
		counts := make([]int64, 2000)
		for i := range counts {
			counts[i] = int64(1e7 * math.Pow(float64(i+1), -alpha) / Harmonic(alpha, 2000))
		}
		got := FitAlpha(counts)
		if math.Abs(got-alpha) > 0.05 {
			t.Fatalf("FitAlpha = %v, want about %v", got, alpha)
		}
	}
}

func TestFitAlphaDegenerate(t *testing.T) {
	if FitAlpha(nil) != 0 {
		t.Fatal("FitAlpha(nil) must be 0")
	}
	if FitAlpha([]int64{5}) != 0 {
		t.Fatal("FitAlpha with one file must be 0")
	}
}

func BenchmarkHarmonicLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Harmonic(0.91, 1<<40)
	}
}

func BenchmarkSample(b *testing.B) {
	d := New(0.78, 35885)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}
