package zipf

import (
	"math"
	"math/rand"
	"testing"
)

// TestLocateMatchesReference pins the guide-table inversion to the
// binary-search reference over seeded uniform draws across a grid of
// shapes: every float64 the sampler can consume must land on the same rank.
func TestLocateMatchesReference(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 0.8, 1, 1.5, 3} {
		for _, files := range []int64{1, 2, 3, 17, 1000, 100_000} {
			d := New(alpha, files)
			rng := rand.New(rand.NewSource(files*1000 + int64(alpha*10)))
			for n := 0; n < 20_000; n++ {
				u := rng.Float64()
				got, want := d.locate(u), d.locateRef(u)
				if got != want {
					t.Fatalf("alpha=%v F=%d u=%v: locate=%d ref=%d", alpha, files, u, got, want)
				}
			}
		}
	}
}

// TestLocateEdges exercises the inputs where an inexact guide table would
// betray itself: u=0, u just below 1, exact CDF values (the search must
// return the first index at or above u, including on plateaus), and the
// half-ulp neighborhood of every cutpoint threshold j/K.
func TestLocateEdges(t *testing.T) {
	for _, alpha := range []float64{0, 0.8, 3} {
		for _, files := range []int64{1, 2, 5, 1024} {
			d := New(alpha, files)
			us := []float64{0, math.SmallestNonzeroFloat64, 0.5, 1 - 1e-16, math.Nextafter(1, 0)}
			// Exact CDF values and their float neighbors.
			for i := 0; i < len(d.cdf); i += 1 + len(d.cdf)/64 {
				c := d.cdf[i]
				us = append(us, c, math.Nextafter(c, 0), math.Nextafter(c, 1))
			}
			// Cutpoint thresholds j/K and their neighbors: the one place the
			// guide's lower bound could overshoot by a rounding error.
			k := float64(len(d.guide) - 1)
			for j := 0; j < len(d.guide); j += 1 + len(d.guide)/64 {
				v := float64(j) / k
				us = append(us, v, math.Nextafter(v, 0), math.Nextafter(v, 1))
			}
			for _, u := range us {
				if u < 0 || u >= 1 {
					continue
				}
				got, want := d.locate(u), d.locateRef(u)
				if got != want {
					t.Fatalf("alpha=%v F=%d u=%v: locate=%d ref=%d", alpha, files, u, got, want)
				}
			}
		}
	}
}

// TestLocatePlateau forces a CDF plateau — at alpha=3 over a large catalog
// the tail probabilities vanish below one ulp, so consecutive CDF entries
// are equal — and checks both inversions agree on the first index of it.
func TestLocatePlateau(t *testing.T) {
	d := New(3, 200_000)
	plateau := -1
	for i := 1; i < len(d.cdf); i++ {
		if d.cdf[i] == d.cdf[i-1] {
			plateau = i
			break
		}
	}
	if plateau < 0 {
		t.Skip("no CDF plateau at this shape")
	}
	u := d.cdf[plateau]
	got, want := d.locate(u), d.locateRef(u)
	if got != want {
		t.Fatalf("plateau at %d, u=%v: locate=%d ref=%d", plateau, u, got, want)
	}
	if want > plateau {
		t.Fatalf("reference skipped past the first plateau index: ref=%d plateau=%d", want, plateau)
	}
}

// TestSampleMatchesReferenceStream replays one shared rng stream through
// Sample and checks the ranks equal the reference inversion applied to an
// identical stream: Sample consumes exactly one Float64 per draw.
func TestSampleMatchesReferenceStream(t *testing.T) {
	d := New(0.8, 5000)
	a, b := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	for n := 0; n < 10_000; n++ {
		got := d.Sample(a)
		want := int64(d.locateRef(b.Float64()) + 1)
		if got != want {
			t.Fatalf("draw %d: Sample=%d ref=%d", n, got, want)
		}
	}
}

// TestPTailPrecision is the regression test for the catastrophic
// cancellation in the old adjacent-CDF-difference P: deep in the tail both
// CDF values are within an ulp of 1 and the difference collapses to 0 or a
// single ulp. The direct form must stay within a few ulps of the exact
// ratio at every rank.
func TestPTailPrecision(t *testing.T) {
	const files = 1_000_000
	for _, alpha := range []float64{0.8, 1, 2} {
		d := New(alpha, files)
		norm := Harmonic(alpha, files)
		for _, rank := range []int64{1, 2, files / 2, files - 1, files} {
			got := d.P(rank)
			want := math.Pow(float64(rank), -alpha) / norm
			if got <= 0 {
				t.Fatalf("alpha=%v rank=%d: P collapsed to %v", alpha, rank, got)
			}
			if rel := math.Abs(got-want) / want; rel > 1e-9 {
				t.Fatalf("alpha=%v rank=%d: P=%v want=%v rel=%v", alpha, rank, got, want, rel)
			}
		}
		// The old formulation lost every significant digit here; make sure
		// adjacent tail ranks still have strictly decreasing, positive mass.
		if !(d.P(files-1) > d.P(files)) || d.P(files) <= 0 {
			t.Fatalf("alpha=%v: tail not strictly decreasing: P(F-1)=%v P(F)=%v",
				alpha, d.P(files-1), d.P(files))
		}
	}
}

// TestPSumsToOne checks the direct form still normalizes.
func TestPSumsToOne(t *testing.T) {
	d := New(0.8, 10_000)
	var sum float64
	for r := int64(d.F); r >= 1; r-- { // small terms first
		sum += d.P(r)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum of P = %v", sum)
	}
}

// sampleRefBench draws via the binary-search reference, for the growth
// comparison against the guide-table benches in internal/perf.
func sampleRefBench(b *testing.B, files int64) {
	d := New(0.8, files)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += d.locateRef(rng.Float64())
	}
	refSink = sink
}

var refSink int

func BenchmarkSampleGuide10k(b *testing.B) { sampleGuideBench(b, 10_000) }
func BenchmarkSampleGuide1M(b *testing.B)  { sampleGuideBench(b, 1_000_000) }
func BenchmarkSampleRef10k(b *testing.B)   { sampleRefBench(b, 10_000) }
func BenchmarkSampleRef1M(b *testing.B)    { sampleRefBench(b, 1_000_000) }

func sampleGuideBench(b *testing.B, files int64) {
	d := New(0.8, files)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += d.Sample(rng)
	}
	refSink = int(sink)
}
