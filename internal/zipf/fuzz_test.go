package zipf

import (
	"math"
	"testing"
)

// FuzzSolveFiles: the catalog inversion must be total over its contract
// (n >= 1, target in (0,1), alpha >= 0) and return the best achievable
// integer catalog — no F' adjacent to the answer may land closer to the
// target hit rate, and the documented "result is at least n" floor must
// hold even at the search bound.
func FuzzSolveFiles(f *testing.F) {
	f.Add(1.0, int64(16384), 0.6)   // the paper's operating point shape
	f.Add(1.0, int64(16384), 0.293) // just above the 2^50 reachability edge
	f.Add(0.6, int64(100), 0.5)     // alpha < 1, typical WWW trace fit
	f.Add(0.0, int64(7), 0.25)      // uniform popularity
	f.Add(2.5, int64(3), 0.999)     // steep law, target near 1
	f.Add(1.0, int64(1)<<51, 0.5)   // n beyond the search bound
	f.Add(1.0, int64(1), 1e-12)     // unreachable target saturates at the bound
	f.Fuzz(func(t *testing.T, alpha float64, n int64, target float64) {
		// Outside the documented contract SolveFiles panics by design;
		// the fuzzer only exercises the domain it promises to handle.
		// Alpha is capped where the Euler-Maclaurin tail is accurate.
		if n < 1 || alpha < 0 || alpha > 4 || math.IsNaN(alpha) {
			t.Skip()
		}
		if !(target > 0) || !(target < 1) || math.IsNaN(target) {
			t.Skip()
		}

		got := SolveFiles(alpha, n, target)
		if got < n {
			t.Fatalf("SolveFiles(%v, %d, %v) = %d, below n", alpha, n, target, got)
		}
		const bound = int64(1) << 50
		if got == n || got >= bound {
			// Saturated at an end of the search range: the target is
			// unreachable on that side, nothing more to check.
			return
		}
		// Interior answer: z(n, F) is decreasing in F, so optimality means
		// neither neighbor is strictly closer to the target. The slack
		// covers Harmonic's Euler-Maclaurin tail error (~1e-10 relative),
		// which can flip the comparison when the two distances nearly tie.
		dist := math.Abs(Z(alpha, n, got) - target)
		const eps = 1e-9
		if d := math.Abs(Z(alpha, n, got-1) - target); d < dist-eps {
			t.Fatalf("SolveFiles(%v, %d, %v) = %d (|dz|=%v) but F-1 is closer (|dz|=%v)",
				alpha, n, target, got, dist, d)
		}
		if d := math.Abs(Z(alpha, n, got+1) - target); d < dist-eps {
			t.Fatalf("SolveFiles(%v, %d, %v) = %d (|dz|=%v) but F+1 is closer (|dz|=%v)",
				alpha, n, target, got, dist, d)
		}
	})
}
