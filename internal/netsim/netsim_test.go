package netsim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func makeCluster(eng *sim.Engine, n int) []*cluster.Node {
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		nodes[i] = cluster.NewNode(eng, i, 1<<20)
	}
	return nodes
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	// One-way latency of a 4-byte message: 2*3us CPU + 2*6us NI + 1us
	// switch (+ negligible serialization) = 19us, the M-VIA figure the
	// paper quotes.
	total := 2*c.MsgCPU + 2*c.MsgNI + c.SwitchLatency
	if math.Abs(total-19e-6) > 1e-9 {
		t.Fatalf("one-way message latency = %v, want 19us", total)
	}
	if c.RouterKBps != 500000 || c.LinkKBps != 128000 {
		t.Fatalf("bandwidths wrong: %+v", c)
	}
}

func TestSendDeliversAfterFullPath(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 2)
	var deliveredAt float64
	nw.Send(nodes[0], nodes[1], 0.004, func() { deliveredAt = eng.Now() })
	eng.Run()
	want := 19e-6 + 0.004/128000
	if math.Abs(deliveredAt-want) > 1e-9 {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
	if nw.Messages() != 1 {
		t.Fatalf("Messages = %d, want 1", nw.Messages())
	}
}

func TestSendChargesBothSides(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 2)
	nw.Send(nodes[0], nodes[1], 0.004, nil)
	eng.Run()
	if got := nodes[0].CPU.BusyTime(); math.Abs(got-3e-6) > 1e-12 {
		t.Fatalf("sender CPU busy = %v, want 3us", got)
	}
	if got := nodes[0].NIOut.BusyTime(); math.Abs(got-6e-6) > 1e-12 {
		t.Fatalf("sender NI-out busy = %v, want 6us", got)
	}
	if got := nodes[1].NIIn.BusyTime(); math.Abs(got-6e-6) > 1e-12 {
		t.Fatalf("receiver NI-in busy = %v, want 6us", got)
	}
	if got := nodes[1].CPU.BusyTime(); math.Abs(got-3e-6) > 1e-12 {
		t.Fatalf("receiver CPU busy = %v, want 3us", got)
	}
}

func TestSendToSelfPanics(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	nw.Send(nodes[0], nodes[0], 0.004, nil)
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 5)
	done := false
	nw.Broadcast(nodes[2], nodes, 0.004, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("broadcast completion callback did not fire")
	}
	if nw.Messages() != 4 {
		t.Fatalf("Messages = %d, want 4 point-to-point messages", nw.Messages())
	}
	for i, n := range nodes {
		if i == 2 {
			continue
		}
		if n.CPU.BusyTime() == 0 {
			t.Errorf("node %d received no message cost", i)
		}
	}
}

func TestBroadcastSkipsFailedNodes(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 4)
	nodes[1].Fail()
	done := false
	nw.Broadcast(nodes[0], nodes, 0.004, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("broadcast did not complete")
	}
	if nw.Messages() != 2 {
		t.Fatalf("Messages = %d, want 2 (failed node skipped)", nw.Messages())
	}
}

func TestBroadcastAloneStillCompletes(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 1)
	done := false
	nw.Broadcast(nodes[0], nodes, 0.004, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("single-node broadcast must still invoke the callback")
	}
	if nw.Messages() != 0 {
		t.Fatalf("Messages = %d, want 0", nw.Messages())
	}
}

func TestRouterCharges(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	var doneAt float64
	nw.RouterIn(50, func() { doneAt = eng.Now() })
	eng.Run()
	if want := 50.0 / 500000; math.Abs(doneAt-want) > 1e-12 {
		t.Fatalf("router transfer took %v, want %v", doneAt, want)
	}
}

func TestRouterSerializesTransfers(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	var last float64
	for i := 0; i < 10; i++ {
		nw.RouterOut(500, func() { last = eng.Now() })
	}
	eng.Run()
	if want := 10 * 500.0 / 500000; math.Abs(last-want) > 1e-12 {
		t.Fatalf("10 transfers took %v, want %v (FCFS)", last, want)
	}
}

func TestResetStats(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 2)
	nw.Send(nodes[0], nodes[1], 0.004, nil)
	eng.Run()
	nw.ResetStats()
	if nw.Messages() != 0 {
		t.Fatal("ResetStats must zero the message counter")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-rate config did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}
