package netsim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// batchedConfig returns the default constants with batching forced on for
// every fan-out, so small clusters exercise the batched path in tests.
func batchedConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchFanout = 1
	return cfg
}

// perPairConfig returns the default constants with batching disabled.
func perPairConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchFanout = 0
	return cfg
}

// runBroadcast drives one quiet-network broadcast under the given config and
// returns the network, nodes, and the delivered time.
func runBroadcast(t *testing.T, cfg Config, n int, kb float64) (*Network, []*cluster.Node, float64) {
	t.Helper()
	eng := sim.NewEngine()
	nw := New(eng, cfg)
	nodes := makeCluster(eng, n)
	deliveredAt := -1.0
	nw.Broadcast(nodes[0], nodes, kb, func() { deliveredAt = eng.Now() })
	eng.Run()
	if deliveredAt < 0 {
		t.Fatal("broadcast never delivered")
	}
	return nw, nodes, deliveredAt
}

// TestBroadcastBatchedMatchesPerPair pins the exactness claim: on a quiet
// network, the batched fan-out books the same delivered time, message count,
// control bytes, and per-resource busy time as the per-pair event path, for
// fan-outs on both sides of the default threshold.
func TestBroadcastBatchedMatchesPerPair(t *testing.T) {
	for _, n := range []int{2, 8, 33, 64, 200} {
		for _, kb := range []float64{0.004, 1.5} {
			nwP, nodesP, atP := runBroadcast(t, perPairConfig(), n, kb)
			nwB, nodesB, atB := runBroadcast(t, batchedConfig(), n, kb)
			if math.Abs(atP-atB) > 1e-12 {
				t.Fatalf("n=%d kb=%v: delivered per-pair %v, batched %v", n, kb, atP, atB)
			}
			if nwP.Messages() != nwB.Messages() || nwP.Messages() != uint64(n-1) {
				t.Fatalf("n=%d: messages per-pair %d, batched %d, want %d",
					n, nwP.Messages(), nwB.Messages(), n-1)
			}
			if math.Abs(nwP.ControlKB()-nwB.ControlKB()) > 1e-12 {
				t.Fatalf("n=%d: control KB per-pair %v, batched %v", n, nwP.ControlKB(), nwB.ControlKB())
			}
			for i := range nodesP {
				for _, pair := range [][2]*sim.Resource{
					{nodesP[i].CPU, nodesB[i].CPU},
					{nodesP[i].NIOut, nodesB[i].NIOut},
					{nodesP[i].NIIn, nodesB[i].NIIn},
				} {
					if math.Abs(pair[0].BusyTime()-pair[1].BusyTime()) > 1e-12 {
						t.Fatalf("n=%d node %d %s: busy per-pair %v, batched %v",
							n, i, pair[0].Name(), pair[0].BusyTime(), pair[1].BusyTime())
					}
				}
			}
		}
	}
}

// TestBroadcastBatchedHonorsNodeLinkRates pins that the batched path charges
// per-endpoint wire time: a receiver with a slow NI line rate delays the
// whole broadcast exactly as it does on the per-pair path.
func TestBroadcastBatchedHonorsNodeLinkRates(t *testing.T) {
	build := func(cfg Config) (float64, float64) {
		eng := sim.NewEngine()
		nw := New(eng, cfg)
		nodes := make([]*cluster.Node, 40)
		for i := range nodes {
			p := cluster.DefaultProfile()
			if i == 17 {
				p.LinkKBps = 1000 // 128x slower than the cluster link
			}
			nodes[i] = cluster.NewProfiledNode(eng, i, p)
		}
		deliveredAt := -1.0
		nw.Broadcast(nodes[0], nodes, 2.0, func() { deliveredAt = eng.Now() })
		eng.Run()
		return deliveredAt, nodes[17].NIIn.BusyTime()
	}
	atP, slowBusyP := build(perPairConfig())
	atB, slowBusyB := build(batchedConfig())
	if math.Abs(atP-atB) > 1e-12 {
		t.Fatalf("delivered per-pair %v, batched %v", atP, atB)
	}
	if math.Abs(slowBusyP-slowBusyB) > 1e-12 {
		t.Fatalf("slow-node NI busy per-pair %v, batched %v", slowBusyP, slowBusyB)
	}
	// The slow link must actually dominate: 2 KB at 1000 KB/s is 2 ms.
	if atB < 2e-3 {
		t.Fatalf("delivered %v, want >= 2ms (slow receiver's serialization)", atB)
	}
}

// TestBroadcastBatchedSkipsFailedNodes pins that dead receivers cost
// nothing: no messages, no control bytes, no resource charges.
func TestBroadcastBatchedSkipsFailedNodes(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, batchedConfig())
	nodes := makeCluster(eng, 50)
	for i := 10; i < 20; i++ {
		nodes[i].Fail()
	}
	delivered := 0
	nw.Broadcast(nodes[0], nodes, 0.004, func() { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1", delivered)
	}
	if nw.Messages() != 39 {
		t.Fatalf("Messages = %d, want 39 (49 others minus 10 failed)", nw.Messages())
	}
	for i := 10; i < 20; i++ {
		if nodes[i].NIIn.BusyTime() != 0 || nodes[i].CPU.BusyTime() != 0 {
			t.Fatalf("failed node %d was charged", i)
		}
	}
}

// TestBroadcastBatchedDeliveredOrdering pins callback ordering across
// overlapping broadcasts: completions fire in simulated-time order, and each
// delivered callback runs after every receiver-side charge of its own
// broadcast is booked (the delivered time equals the latest receiver CPU
// finish).
func TestBroadcastBatchedDeliveredOrdering(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, batchedConfig())
	nodes := makeCluster(eng, 65)
	var order []int
	// Three broadcasts with distinct start times and fan-outs. Later start
	// plus smaller fan-out finishes before an earlier giant fan-out would
	// if ordering were FIFO by submission.
	eng.At(0, func() { nw.Broadcast(nodes[0], nodes, 0.5, func() { order = append(order, 0) }) })
	eng.At(1e-6, func() { nw.Broadcast(nodes[1], nodes[:3], 0.004, func() { order = append(order, 1) }) })
	eng.At(2e-6, func() { nw.Broadcast(nodes[2], nodes[:5], 0.004, func() { order = append(order, 2) }) })
	eng.Run()
	want := []int{1, 2, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestBroadcastBatchedEventEconomy pins the point of the tentpole: a
// batched broadcast adds at most one calendar event (zero with a nil
// delivered callback), where the per-pair path fires five per receiver.
func TestBroadcastBatchedEventEconomy(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, batchedConfig())
	nodes := makeCluster(eng, 1024)
	nw.Broadcast(nodes[0], nodes, 0.004, nil)
	eng.Run()
	if eng.Fired() != 0 {
		t.Fatalf("nil-delivered batched broadcast fired %d events, want 0", eng.Fired())
	}
	if nw.Messages() != 1023 {
		t.Fatalf("Messages = %d, want 1023", nw.Messages())
	}

	eng2 := sim.NewEngine()
	nw2 := New(eng2, batchedConfig())
	nodes2 := makeCluster(eng2, 1024)
	nw2.Broadcast(nodes2[0], nodes2, 0.004, func() {})
	eng2.Run()
	if eng2.Fired() != 1 {
		t.Fatalf("batched broadcast fired %d events, want 1", eng2.Fired())
	}

	eng3 := sim.NewEngine()
	nw3 := New(eng3, perPairConfig())
	nodes3 := makeCluster(eng3, 1024)
	nw3.Broadcast(nodes3[0], nodes3, 0.004, func() {})
	eng3.Run()
	if eng3.Fired() != 5*1023 {
		t.Fatalf("per-pair broadcast fired %d events, want %d", eng3.Fired(), 5*1023)
	}
}

// TestBroadcastStorm1024 runs a broadcast storm at full target scale — every
// 16th node of a 1024-node cluster broadcasting to the whole cluster in
// overlapping waves — and checks conservation: every broadcast delivers
// exactly once and the message count is exact. `make race` runs this under
// the race detector.
func TestBroadcastStorm1024(t *testing.T) {
	const n = 1024
	const senders = 64
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, n)
	delivered := 0
	for i := 0; i < senders; i++ {
		s := nodes[i*16]
		eng.At(float64(i)*1e-7, func() {
			nw.Broadcast(s, nodes, 0.004, func() { delivered++ })
		})
	}
	eng.Run()
	if delivered != senders {
		t.Fatalf("delivered %d broadcasts, want %d", delivered, senders)
	}
	if want := uint64(senders * (n - 1)); nw.Messages() != want {
		t.Fatalf("Messages = %d, want %d", nw.Messages(), want)
	}
	// Sender 0's CPU paid MsgCPU per copy of its own fan-out plus MsgCPU
	// for each of the other senders' copies it received.
	wantBusy := float64(n-1)*3e-6 + float64(senders-1)*3e-6
	if got := nodes[0].CPU.BusyTime(); math.Abs(got-wantBusy) > 1e-9 {
		t.Fatalf("sender 0 CPU busy = %v, want %v", got, wantBusy)
	}
}
