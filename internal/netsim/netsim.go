// Package netsim models the cluster's communication infrastructure: the
// bridge/router connecting the cluster to the Internet (4 Gbit/s) and the
// switched intra-cluster network (1 Gbit/s, 1 microsecond switch latency)
// accessed through a user-level messaging layer in the style of M-VIA.
//
// Following Section 5.1 of the paper, sending a small message costs 3
// microseconds of CPU and 6 microseconds of network interface time on each
// side, for a one-way latency of 19 microseconds on 4-byte payloads. All
// CPU and NI costs contend with request processing on the same resources.
package netsim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config holds the communication constants.
type Config struct {
	RouterKBps    float64 // router transfer rate (Table 1: 500000 KB/s)
	LinkKBps      float64 // intra-cluster link bandwidth (128000 KB/s)
	SwitchLatency float64 // switch traversal time (1 us)
	MsgCPU        float64 // per-message CPU overhead per side (3 us)
	MsgNI         float64 // per-message NI overhead per side (6 us)

	// BatchFanout is the receiver count at or above which Broadcast switches
	// from per-pair event scheduling (5 events per message, O(N) events and
	// O(N) heap churn per broadcast) to a batched fan-out that charges every
	// endpoint's resources arithmetically and schedules at most one pooled
	// completion event. Zero disables batching, so Config literals that
	// predate the field keep the exact per-pair behavior.
	BatchFanout int

	// FlattenGossip lets the server register its node fleet with the
	// network (RegisterFleet), flattening batched broadcasts further: the
	// per-receiver resource charges are deferred into dense charge banks
	// (sim.ChargeBank) and the live-receiver count is maintained
	// incrementally instead of rescanned per broadcast. Bit-identical to
	// the batched path; this flag only gates whether the server registers.
	FlattenGossip bool
}

// DefaultBatchFanout is the fan-out at which DefaultConfig starts batching
// broadcasts. Paper-scale clusters (N <= 32) stay on the per-pair path that
// the golden results pin; the batched path takes over where the O(N) event
// storm per broadcast would dominate the calendar.
const DefaultBatchFanout = 32

// DefaultConfig returns the constants used throughout Section 5.
func DefaultConfig() Config {
	return Config{
		RouterKBps:    500000,
		LinkKBps:      128000,
		SwitchLatency: 1e-6,
		MsgCPU:        3e-6,
		MsgNI:         6e-6,
		BatchFanout:   DefaultBatchFanout,
		FlattenGossip: true,
	}
}

// Network is the shared communication substrate of one simulated cluster.
type Network struct {
	cfg    Config
	eng    *sim.Engine
	Router *sim.Resource

	messages     uint64 // intra-cluster messages sent
	controlBytes float64

	// mMessages mirrors the message counter onto a shared observability
	// counter; nil (the default) is the disabled no-op path. Unlike the
	// built-in counter it survives ResetStats.
	mMessages *obs.Counter

	msgPool   []*message   // recycled in-flight message state
	bcastPool []*broadcast // recycled in-flight broadcast state

	flat *fleet // registered node fleet for flat broadcasts, nil otherwise
}

// fleet is the state RegisterFleet builds for flat broadcasts: dense charge
// banks over every node's receive-side resources, the ascending IDs of the
// live nodes (maintained through each node's fail hook, so counting a
// broadcast's receivers is O(1) instead of an O(N) pointer-chase scan), the
// per-node link caps needed to reproduce linkRate without touching the node
// structs, and — for uniform fleets — the gossip epoch state that collapses
// whole broadcast rounds to O(1) bookkeeping (see broadcastEpoch).
type fleet struct {
	nodes   []*cluster.Node
	niIn    *sim.ChargeBank
	cpu     *sim.ChargeBank
	liveIdx []int32   // IDs of live nodes, ascending
	rank    []int32   // position of each node ID in liveIdx, -1 once dead
	linkCap []float64 // per-node profile line rate, 0 for the default
	uniform bool      // no node overrides the link rate

	m, c sim.Time // per-message NI and CPU service (the banks' svc)

	// Gossip epoch state, maintained only for uniform fleets. A broadcast
	// whose receivers are all known idle is recorded as one epoch round —
	// round increments, the round's parameters are stored below — and each
	// node's per-round charges materialize lazily: pending rounds for node
	// i are round-base[i], folded into the charge banks in closed form when
	// the node's resources are next used (prepare) or when membership or
	// round parameters invalidate the closed form (foldAll). Nodes whose
	// resources were touched since their last individual charge sit on the
	// dirty list and are charged one by one each broadcast until they land
	// back on the closed form.
	round      uint64
	base       []uint64 // last round materialized per node; deadBase once failed
	dirty      []int32  // node IDs to charge individually next broadcast
	isDirty    []bool
	epochValid bool     // the fields below describe round `round`
	epochL     sim.Time // sender-side lastNI of the last committed round
	epochWire  float64  // shared wire time of the last committed round
	epochK     int      // receiver count of the last committed round
	epochSRank int32    // sender position in liveIdx (len(liveIdx) if dead)

	fastRounds, slowRounds uint64 // diagnostic: epoch hits vs full walks
}

// deadBase marks a failed node's base: never equal to round, never folded.
const deadBase = ^uint64(0)

// RegisterFleet declares nodes as the cluster's full node set, enabling the
// flat broadcast path for broadcasts addressed to exactly this slice: the
// batched fan-out's per-receiver charges become deferred sequential
// arithmetic on dense arrays (see broadcastFlat), bit-identical to the
// unregistered behavior. Node IDs must equal their slice positions, and
// each node's resources join a charge bank, so a fleet can be registered
// with at most one network, once.
func (nw *Network) RegisterFleet(nodes []*cluster.Node) {
	if nw.flat != nil {
		panic("netsim: fleet already registered")
	}
	f := &fleet{
		nodes:   nodes,
		rank:    make([]int32, len(nodes)),
		linkCap: make([]float64, len(nodes)),
		uniform: true,
		m:       nw.cfg.MsgNI,
		c:       nw.cfg.MsgCPU,
		base:    make([]uint64, len(nodes)),
		isDirty: make([]bool, len(nodes)),
	}
	niIn := make([]*sim.Resource, len(nodes))
	cpu := make([]*sim.Resource, len(nodes))
	for i, n := range nodes {
		if n.ID != i {
			panic(fmt.Sprintf("netsim: fleet node %d has ID %d", i, n.ID))
		}
		niIn[i], cpu[i] = n.NIIn, n.CPU
		if l := n.LinkKBps(); l > 0 {
			f.linkCap[i] = l
			f.uniform = false
		}
		f.rank[i] = -1
		if !n.Failed() {
			f.rank[i] = int32(len(f.liveIdx))
			f.liveIdx = append(f.liveIdx, int32(i))
		} else {
			f.base[i] = deadBase
		}
		id := int32(i)
		n.SetFailHook(func() { f.markDead(id) })
	}
	f.niIn = sim.NewChargeBank(nw.cfg.MsgNI, niIn)
	f.cpu = sim.NewChargeBank(nw.cfg.MsgCPU, cpu)
	if f.uniform {
		// The epoch layer only runs on uniform fleets, and only then may
		// banked charges be tracked outside the banks — so only then does a
		// resource touch need the fold-and-mark hook.
		prep := f.prepare
		f.niIn.Prepare = prep
		f.cpu.Prepare = prep
		// A dirty node's prepare is a no-op (it early-outs on isDirty), and
		// request traffic touches the same node's resources many times
		// between rounds — sharing the dirty flags as the banks' Ready
		// vector lets those repeat touches skip the hook call entirely.
		f.niIn.Ready = f.isDirty
		f.cpu.Ready = f.isDirty
	}
	nw.flat = f
}

// markDead removes a node from the live index. Pending epoch rounds
// reference the old membership's ranks, so they are materialized first;
// dropping epochValid forces the next broadcast through the full walk,
// which re-derives every node's state under the new membership.
func (f *fleet) markDead(id int32) {
	f.foldAll()
	for i, v := range f.liveIdx {
		if v == id {
			f.liveIdx = append(f.liveIdx[:i], f.liveIdx[i+1:]...)
			break
		}
	}
	f.rank[id] = -1
	for p, v := range f.liveIdx {
		f.rank[v] = int32(p)
	}
	f.base[id] = deadBase
	f.epochValid = false
}

// prepare is the charge banks' Prepare hook: it runs before node i's NI or
// CPU resource is used (or its bank flushed), materializes any rounds the
// epoch layer owes the banks, and marks the node dirty — its resource state
// is about to change hands, so the next broadcast must charge it
// individually rather than assume the idle closed form.
func (f *fleet) prepare(i int32) {
	if f.isDirty[i] {
		return // already materialized and queued for individual charging
	}
	if b := f.base[i]; b != f.round {
		if b == deadBase {
			return
		}
		f.fold(i)
	}
	f.isDirty[i] = true
	f.dirty = append(f.dirty, i)
}

// fold materializes node i's pending epoch rounds into the charge banks.
// Every pending round charged the node at or after its previous chain (the
// epoch admission condition, see broadcastEpoch), so each round's finish
// times depend only on that round's parameters — the banks' chains jump
// straight to the last round's closed form, and only the charge count
// remembers the rounds in between.
func (f *fleet) fold(i int32) {
	n := f.round - f.base[i]
	f.base[i] = f.round
	p := f.rank[i]
	j := int(p)
	if p < f.epochSRank {
		j++
	}
	// Exactly broadcastBatched's per-receiver expressions, for the last round.
	depart := f.epochL - float64(f.epochK-j)*f.m
	arrive := depart + f.epochWire
	niChain := arrive + f.m
	if n != uint64(uint32(n)) {
		panic("netsim: epoch fold overflows the charge-count width")
	}
	f.niIn.FoldDeferred(int(i), niChain, uint32(n))
	f.cpu.FoldDeferred(int(i), niChain+f.c, uint32(n))
}

// foldAll materializes every live node's pending epoch rounds, leaving the
// banks self-contained — required before membership or rank changes, and
// before a broadcast that cannot extend the epoch.
func (f *fleet) foldAll() {
	for _, i := range f.liveIdx {
		if f.base[i] != f.round {
			f.fold(i)
		}
	}
}

// member reports whether n is part of the registered fleet.
func (f *fleet) member(n *cluster.Node) bool {
	return n.ID >= 0 && n.ID < len(f.nodes) && f.nodes[n.ID] == n
}

// message is the pooled state of one point-to-point Send: the five hops of
// the M-VIA path run as pre-bound stage callbacks on this struct, so a
// message in steady state allocates nothing. The stage funcs are method
// values created once per pooled object.
type message struct {
	nw        *Network
	from, to  *cluster.Node
	wire      float64
	delivered func()

	afterFromCPU, afterFromNI, afterWire, afterToNI, finish func()
}

func (nw *Network) getMessage() *message {
	if n := len(nw.msgPool); n > 0 {
		m := nw.msgPool[n-1]
		nw.msgPool = nw.msgPool[:n-1]
		return m
	}
	m := &message{nw: nw}
	m.afterFromCPU = func() { m.from.NIOut.Acquire(m.nw.cfg.MsgNI, m.afterFromNI) }
	m.afterFromNI = func() { m.nw.eng.Schedule(m.wire, m.afterWire) }
	m.afterWire = func() { m.to.NIIn.Acquire(m.nw.cfg.MsgNI, m.afterToNI) }
	m.afterToNI = func() { m.to.CPU.Acquire(m.nw.cfg.MsgCPU, m.finish) }
	m.finish = func() {
		delivered := m.delivered
		m.from, m.to, m.delivered = nil, nil, nil
		m.nw.msgPool = append(m.nw.msgPool, m)
		if delivered != nil {
			delivered()
		}
	}
	return m
}

// broadcast is the pooled state of one Broadcast: the arrival count plus
// the caller's completion callback, with a single pre-bound arrive method
// value shared by every receiver. The per-receiver closures this replaces
// were the simulator's largest remaining allocation source.
type broadcast struct {
	nw        *Network
	remaining int
	delivered func()

	arrived func()
}

func (b *broadcast) arrive() {
	b.remaining--
	if b.remaining == 0 {
		delivered := b.delivered
		b.delivered = nil
		b.nw.bcastPool = append(b.nw.bcastPool, b)
		if delivered != nil {
			delivered()
		}
	}
}

func (nw *Network) getBroadcast() *broadcast {
	if n := len(nw.bcastPool); n > 0 {
		b := nw.bcastPool[n-1]
		nw.bcastPool = nw.bcastPool[:n-1]
		return b
	}
	b := &broadcast{nw: nw}
	b.arrived = b.arrive
	return b
}

// New builds the network. The router is a single shared service center.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.RouterKBps <= 0 || cfg.LinkKBps <= 0 {
		panic(fmt.Sprintf("netsim: rates must be positive: %+v", cfg))
	}
	return &Network{cfg: cfg, eng: eng, Router: sim.NewResource(eng, "router", 1)}
}

// Config returns the communication constants in use.
func (nw *Network) Config() Config { return nw.cfg }

// Messages returns the number of intra-cluster messages sent so far.
func (nw *Network) Messages() uint64 { return nw.messages }

// ControlKB returns the kilobytes carried by intra-cluster messages so far.
func (nw *Network) ControlKB() float64 { return nw.controlBytes }

// SetMetrics attaches an observability counter that mirrors the message
// count (nil detaches it).
func (nw *Network) SetMetrics(messages *obs.Counter) { nw.mMessages = messages }

// linkRate returns the serialization rate of a transfer between two nodes:
// the configured link bandwidth, capped by either endpoint's NI line rate
// when a node profile sets one (a transfer is no faster than its slowest
// endpoint). With default profiles this is exactly cfg.LinkKBps, so
// homogeneous runs are unchanged.
func (nw *Network) linkRate(from, to *cluster.Node) float64 {
	rate := nw.cfg.LinkKBps
	if l := from.LinkKBps(); l > 0 && l < rate {
		rate = l
	}
	if l := to.LinkKBps(); l > 0 && l < rate {
		rate = l
	}
	return rate
}

// LinkRate exposes the effective per-pair serialization rate in KB/s for
// proximity-aware dispatch policies; see linkRate.
func (nw *Network) LinkRate(from, to *cluster.Node) float64 {
	return nw.linkRate(from, to)
}

// WireTime returns the wire latency of moving kb kilobytes between two
// nodes: switch traversal plus serialization at the endpoints' effective
// link rate. Bulk-data paths (distributed-file-system reads, back-end
// forwarding) use this so per-node link speeds apply to them too.
func (nw *Network) WireTime(from, to *cluster.Node, kb float64) float64 {
	return nw.cfg.SwitchLatency + kb/nw.linkRate(from, to)
}

// RouterIn charges the router for an inbound transfer of kb kilobytes and
// calls done when it has passed through.
func (nw *Network) RouterIn(kb float64, done func()) {
	nw.Router.Acquire(kb/nw.cfg.RouterKBps, done)
}

// RouterOut charges the router for an outbound transfer of kb kilobytes.
func (nw *Network) RouterOut(kb float64, done func()) {
	nw.Router.Acquire(kb/nw.cfg.RouterKBps, done)
}

// Send transmits a kb-kilobyte message from one node to another over the
// switched network, charging CPU and NI overheads on both sides plus
// serialization and switch latency, and calls delivered at the receiver
// once the receiving CPU has processed the message.
func (nw *Network) Send(from, to *cluster.Node, kb float64, delivered func()) {
	if from == to {
		panic(fmt.Sprintf("netsim: node %d sending a message to itself", from.ID))
	}
	nw.messages++
	nw.controlBytes += kb
	nw.mMessages.Inc()
	m := nw.getMessage()
	m.from, m.to = from, to
	m.wire = nw.WireTime(from, to, kb)
	m.delivered = delivered
	from.CPU.Acquire(nw.cfg.MsgCPU, m.afterFromCPU)
}

// Broadcast sends the message from one node to every other live node
// (implemented, as in the paper's M-VIA setup, as multiple point-to-point
// messages) and calls delivered once, when the last copy has arrived.
//
// At or above cfg.BatchFanout live receivers the fan-out is batched: every
// per-message resource charge is computed arithmetically via ChargeAt and at
// most one completion event is scheduled, instead of the five events per
// message the per-pair path costs. See broadcastBatched for the exactness
// argument.
//
// Broadcast returns the number of point-to-point messages sent (the live
// receiver count), so callers can account gossip traffic exactly.
func (nw *Network) Broadcast(from *cluster.Node, others []*cluster.Node, kb float64, delivered func()) int {
	var remaining int
	flat := false
	if f := nw.flat; f != nil && len(others) == len(f.nodes) &&
		(len(others) == 0 || others[0] == f.nodes[0]) && f.member(from) {
		// Fleet broadcast: the live count is maintained incrementally.
		remaining = len(f.liveIdx)
		if !from.Failed() {
			remaining-- // the sender is in the live index but receives nothing
		}
		flat = true
	} else {
		for _, n := range others {
			if n != from && !n.Failed() {
				remaining++
			}
		}
	}
	if remaining == 0 {
		if delivered != nil {
			// Deliver asynchronously for consistency with the network path.
			nw.eng.Schedule(0, delivered)
		}
		return 0
	}
	if nw.cfg.BatchFanout > 0 && remaining >= nw.cfg.BatchFanout {
		if flat {
			nw.broadcastFlat(from, remaining, kb, delivered)
		} else {
			nw.broadcastBatched(from, others, remaining, kb, delivered)
		}
		return remaining
	}
	b := nw.getBroadcast()
	b.remaining = remaining
	b.delivered = delivered
	for _, n := range others {
		if n == from || n.Failed() {
			continue
		}
		nw.Send(from, n, kb, b.arrived)
	}
	return remaining
}

// broadcastBatched books a k-receiver broadcast with O(k) arithmetic and at
// most one calendar event, against O(k) events each sifting a calendar that
// the per-pair path keeps 5k entries deep.
//
// All k copies are submitted at the same instant, so the sender-side charges
// are exactly what k sequential Sends would book: k CPU overheads queue FCFS
// on the sender CPU (one ChargeAt of k*MsgCPU has identical free/busy
// evolution), and because MsgNI >= MsgCPU the sender NI never goes idle
// between copies — the j-th copy leaves the NI at lastNI-(k-j)*MsgNI, the
// same staggered departure times the per-pair path produces. Each copy then
// crosses the wire at the pair's own rate (per-node line profiles preserved)
// and charges the receiver's NI and CPU from its arrival instant.
//
// The batched timings diverge from per-pair scheduling only when competing
// traffic would have interleaved with the broadcast's own charges at the
// same resource between now and the last departure: charging up front gives
// the broadcast FCFS priority over work submitted later at the same instant
// sequence. Queue-length statistics (InSystem, Completed, mean jobs) do not
// see arithmetic charges; utilization and busy time stay exact.
func (nw *Network) broadcastBatched(from *cluster.Node, others []*cluster.Node, k int, kb float64, delivered func()) {
	nw.messages += uint64(k)
	nw.controlBytes += float64(k) * kb
	nw.mMessages.Add(uint64(k))

	c, m := nw.cfg.MsgCPU, nw.cfg.MsgNI
	now := nw.eng.Now()
	lastCPU := from.CPU.ChargeAt(now, float64(k)*c)
	firstCPU := lastCPU - float64(k-1)*c
	lastNI := from.NIOut.ChargeAt(firstCPU, float64(k)*m)

	var maxDone sim.Time
	j := 0
	for _, n := range others {
		if n == from || n.Failed() {
			continue
		}
		j++
		depart := lastNI - float64(k-j)*m
		arrive := depart + nw.WireTime(from, n, kb)
		niIn := n.NIIn.ChargeAt(arrive, m)
		done := n.CPU.ChargeAt(niIn, c)
		if done > maxDone {
			maxDone = done
		}
	}
	if delivered != nil {
		nw.eng.At(maxDone, delivered)
	}
}

// broadcastFlat is broadcastBatched specialized to a registered fleet: the
// same sender-side charges and the same per-receiver recurrence, but the
// receiver side goes through the fleet's charge banks, and on uniform
// fleets through the epoch layer (broadcastEpoch), which books the common
// case — every receiver idle — as a single O(1) round instead of an O(N)
// walk. Every expression mirrors broadcastBatched operation for operation,
// so events, counters, and all floating-point state are unchanged — pinned
// by TestBroadcastFlatMatchesBatched and TestBroadcastEpochFastPath here
// and the policy-by-policy TestFlattenedGossipEquivalence in
// internal/server.
func (nw *Network) broadcastFlat(from *cluster.Node, k int, kb float64, delivered func()) {
	nw.messages += uint64(k)
	nw.controlBytes += float64(k) * kb
	nw.mMessages.Add(uint64(k))

	c, m := nw.cfg.MsgCPU, nw.cfg.MsgNI
	now := nw.eng.Now()
	// Charging the sender's CPU fires the prepare hook, so by the time the
	// receiver logic runs the sender has been folded and marked dirty —
	// which is exactly right: its CPU chain diverges from the receiver
	// closed form here, so the next broadcast must charge it individually.
	lastCPU := from.CPU.ChargeAt(now, float64(k)*c)
	firstCPU := lastCPU - float64(k-1)*c
	lastNI := from.NIOut.ChargeAt(firstCPU, float64(k)*m)

	f := nw.flat
	fromID := int32(from.ID)
	// The sender-side link cap applies to every pair, as in linkRate.
	senderRate := nw.cfg.LinkKBps
	if l := f.linkCap[fromID]; l > 0 && l < senderRate {
		senderRate = l
	}
	var maxDone sim.Time
	if f.uniform {
		// Homogeneous line rates: the wire time is one shared constant,
		// computed exactly as WireTime would per receiver.
		wire := nw.cfg.SwitchLatency + kb/senderRate
		maxDone = f.broadcastEpoch(fromID, k, lastNI, wire, m, c)
	} else {
		j := 0
		for _, i := range f.liveIdx {
			if i == fromID {
				continue
			}
			j++
			rate := senderRate
			if l := f.linkCap[i]; l > 0 && l < rate {
				rate = l
			}
			wire := nw.cfg.SwitchLatency + kb/rate
			depart := lastNI - float64(k-j)*m
			arrive := depart + wire
			done := f.cpu.ChargeAt(int(i), f.niIn.ChargeAt(int(i), arrive))
			if done > maxDone {
				maxDone = done
			}
		}
	}
	if delivered != nil {
		nw.eng.At(maxDone, delivered)
	}
}

// broadcastEpoch books one uniform-fleet broadcast round and returns the
// last delivery time. The j-th receiver in ascending live order gets NI and
// CPU charges arriving at arrive(j) = (lastNI - (k-j)*m) + wire; when the
// receiver is idle — its NI chain is at or before arrive(j) — the charges
// finish at arrive(j)+m and (arrive(j)+m)+c, independent of all history. So
// a round whose receivers are all known idle needs no per-node work at all:
// round increments, this round's parameters are stored, and per-node
// charges materialize lazily in fold.
//
// Idleness is guaranteed by one scalar test. A receiver's NI chain from the
// previous round is arrive'(j')+m; between consecutive rounds a node's
// (k-j) slot shifts by at most one (the sender moves, or a sender was dead
// on one side), so across every receiver
//
//	arrive(j) - chain' >= (lastNI-L') + (wire-w') - 2m.
//
// Requiring that gap to exceed 2m (plus m/2 of slack, orders of magnitude
// above any accumulated float rounding but well below real inter-round
// spacing) therefore proves every non-dirty receiver idle — for the CPU
// chain too, since MsgCPU <= MsgNI. Measured on the 1024-node scale grid,
// inter-round gaps clear this bound on every round of the run.
//
// Nodes the guarantee cannot cover — anything whose NI or CPU was used
// since its last individual charge (request traffic, stat reads or resets,
// sending a broadcast) — sit on the dirty list: folded on first touch by
// prepare, then charged individually here each round, rejoining the epoch
// the moment both charges land exactly on the idle closed form (equality
// also holds on the chain==arrive boundary, where the max picks the same
// value by either branch). When the scalar test fails, or membership
// changed, the whole round is charged individually instead — the dirty
// list re-forms from the nodes that missed the closed form, so one walk
// re-arms the epoch.
func (f *fleet) broadcastEpoch(fromID int32, k int, lastNI sim.Time, wire float64, m, c sim.Time) sim.Time {
	senderRank := int32(len(f.liveIdx))
	if p := f.rank[fromID]; p >= 0 {
		senderRank = p
	}
	newRound := f.round + 1
	var maxDone sim.Time
	if f.epochValid && (lastNI-f.epochL)+(wire-f.epochWire) > 2*m+m/2 {
		f.fastRounds++
		keep := f.dirty[:0]
		for _, i := range f.dirty {
			p := f.rank[i]
			if p < 0 {
				continue // failed since: drop, never charged again
			}
			f.base[i] = newRound
			if i == fromID {
				// The sender receives nothing and its CPU chain now ends at
				// its own send charges, off the receiver closed form: it
				// stays on the dirty list for the next broadcast.
				keep = append(keep, i)
				continue
			}
			j := int(p)
			if p < senderRank {
				j++
			}
			depart := lastNI - float64(k-j)*m
			arrive := depart + wire
			niDone := f.niIn.ChargeAt(int(i), arrive)
			done := f.cpu.ChargeAt(int(i), niDone)
			if done > maxDone {
				maxDone = done
			}
			if niDone == arrive+m && done == niDone+c {
				f.isDirty[i] = false // back on the closed form: rejoin
			} else {
				keep = append(keep, i)
			}
		}
		f.dirty = keep
		// Every other receiver advances implicitly with the round. Their
		// finish times grow with j, so only the largest-rank epoch member
		// can carry the round's delivery time.
		for p := len(f.liveIdx) - 1; p >= 0; p-- {
			i := f.liveIdx[p]
			if i == fromID || f.isDirty[i] {
				continue
			}
			j := p
			if int32(p) < senderRank {
				j++
			}
			depart := lastNI - float64(k-j)*m
			arrive := depart + wire
			done := (arrive + m) + c
			if done > maxDone {
				maxDone = done
			}
			break
		}
	} else {
		f.slowRounds++
		f.foldAll()
		f.dirty = f.dirty[:0]
		j := 0
		for _, i := range f.liveIdx {
			if i == fromID {
				f.base[i] = newRound
				f.isDirty[i] = true
				f.dirty = append(f.dirty, i)
				continue
			}
			j++
			depart := lastNI - float64(k-j)*m
			arrive := depart + wire
			niDone := f.niIn.ChargeAt(int(i), arrive)
			done := f.cpu.ChargeAt(int(i), niDone)
			if done > maxDone {
				maxDone = done
			}
			f.base[i] = newRound
			if niDone == arrive+m && done == niDone+c {
				f.isDirty[i] = false
			} else {
				f.isDirty[i] = true
				f.dirty = append(f.dirty, i)
			}
		}
		f.epochValid = true
	}
	f.round = newRound
	f.epochL = lastNI
	f.epochWire = wire
	f.epochK = k
	f.epochSRank = senderRank
	return maxDone
}

// ResetStats zeroes message counters (router statistics are reset through
// the resource itself).
func (nw *Network) ResetStats() {
	nw.messages = 0
	nw.controlBytes = 0
	nw.Router.ResetStats()
}
