// Package netsim models the cluster's communication infrastructure: the
// bridge/router connecting the cluster to the Internet (4 Gbit/s) and the
// switched intra-cluster network (1 Gbit/s, 1 microsecond switch latency)
// accessed through a user-level messaging layer in the style of M-VIA.
//
// Following Section 5.1 of the paper, sending a small message costs 3
// microseconds of CPU and 6 microseconds of network interface time on each
// side, for a one-way latency of 19 microseconds on 4-byte payloads. All
// CPU and NI costs contend with request processing on the same resources.
package netsim

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config holds the communication constants.
type Config struct {
	RouterKBps    float64 // router transfer rate (Table 1: 500000 KB/s)
	LinkKBps      float64 // intra-cluster link bandwidth (128000 KB/s)
	SwitchLatency float64 // switch traversal time (1 us)
	MsgCPU        float64 // per-message CPU overhead per side (3 us)
	MsgNI         float64 // per-message NI overhead per side (6 us)

	// BatchFanout is the receiver count at or above which Broadcast switches
	// from per-pair event scheduling (5 events per message, O(N) events and
	// O(N) heap churn per broadcast) to a batched fan-out that charges every
	// endpoint's resources arithmetically and schedules at most one pooled
	// completion event. Zero disables batching, so Config literals that
	// predate the field keep the exact per-pair behavior.
	BatchFanout int
}

// DefaultBatchFanout is the fan-out at which DefaultConfig starts batching
// broadcasts. Paper-scale clusters (N <= 32) stay on the per-pair path that
// the golden results pin; the batched path takes over where the O(N) event
// storm per broadcast would dominate the calendar.
const DefaultBatchFanout = 32

// DefaultConfig returns the constants used throughout Section 5.
func DefaultConfig() Config {
	return Config{
		RouterKBps:    500000,
		LinkKBps:      128000,
		SwitchLatency: 1e-6,
		MsgCPU:        3e-6,
		MsgNI:         6e-6,
		BatchFanout:   DefaultBatchFanout,
	}
}

// Network is the shared communication substrate of one simulated cluster.
type Network struct {
	cfg    Config
	eng    *sim.Engine
	Router *sim.Resource

	messages     uint64 // intra-cluster messages sent
	controlBytes float64

	// mMessages mirrors the message counter onto a shared observability
	// counter; nil (the default) is the disabled no-op path. Unlike the
	// built-in counter it survives ResetStats.
	mMessages *obs.Counter

	msgPool   []*message   // recycled in-flight message state
	bcastPool []*broadcast // recycled in-flight broadcast state
}

// message is the pooled state of one point-to-point Send: the five hops of
// the M-VIA path run as pre-bound stage callbacks on this struct, so a
// message in steady state allocates nothing. The stage funcs are method
// values created once per pooled object.
type message struct {
	nw        *Network
	from, to  *cluster.Node
	wire      float64
	delivered func()

	afterFromCPU, afterFromNI, afterWire, afterToNI, finish func()
}

func (nw *Network) getMessage() *message {
	if n := len(nw.msgPool); n > 0 {
		m := nw.msgPool[n-1]
		nw.msgPool = nw.msgPool[:n-1]
		return m
	}
	m := &message{nw: nw}
	m.afterFromCPU = func() { m.from.NIOut.Acquire(m.nw.cfg.MsgNI, m.afterFromNI) }
	m.afterFromNI = func() { m.nw.eng.Schedule(m.wire, m.afterWire) }
	m.afterWire = func() { m.to.NIIn.Acquire(m.nw.cfg.MsgNI, m.afterToNI) }
	m.afterToNI = func() { m.to.CPU.Acquire(m.nw.cfg.MsgCPU, m.finish) }
	m.finish = func() {
		delivered := m.delivered
		m.from, m.to, m.delivered = nil, nil, nil
		m.nw.msgPool = append(m.nw.msgPool, m)
		if delivered != nil {
			delivered()
		}
	}
	return m
}

// broadcast is the pooled state of one Broadcast: the arrival count plus
// the caller's completion callback, with a single pre-bound arrive method
// value shared by every receiver. The per-receiver closures this replaces
// were the simulator's largest remaining allocation source.
type broadcast struct {
	nw        *Network
	remaining int
	delivered func()

	arrived func()
}

func (b *broadcast) arrive() {
	b.remaining--
	if b.remaining == 0 {
		delivered := b.delivered
		b.delivered = nil
		b.nw.bcastPool = append(b.nw.bcastPool, b)
		if delivered != nil {
			delivered()
		}
	}
}

func (nw *Network) getBroadcast() *broadcast {
	if n := len(nw.bcastPool); n > 0 {
		b := nw.bcastPool[n-1]
		nw.bcastPool = nw.bcastPool[:n-1]
		return b
	}
	b := &broadcast{nw: nw}
	b.arrived = b.arrive
	return b
}

// New builds the network. The router is a single shared service center.
func New(eng *sim.Engine, cfg Config) *Network {
	if cfg.RouterKBps <= 0 || cfg.LinkKBps <= 0 {
		panic(fmt.Sprintf("netsim: rates must be positive: %+v", cfg))
	}
	return &Network{cfg: cfg, eng: eng, Router: sim.NewResource(eng, "router", 1)}
}

// Config returns the communication constants in use.
func (nw *Network) Config() Config { return nw.cfg }

// Messages returns the number of intra-cluster messages sent so far.
func (nw *Network) Messages() uint64 { return nw.messages }

// ControlKB returns the kilobytes carried by intra-cluster messages so far.
func (nw *Network) ControlKB() float64 { return nw.controlBytes }

// SetMetrics attaches an observability counter that mirrors the message
// count (nil detaches it).
func (nw *Network) SetMetrics(messages *obs.Counter) { nw.mMessages = messages }

// linkRate returns the serialization rate of a transfer between two nodes:
// the configured link bandwidth, capped by either endpoint's NI line rate
// when a node profile sets one (a transfer is no faster than its slowest
// endpoint). With default profiles this is exactly cfg.LinkKBps, so
// homogeneous runs are unchanged.
func (nw *Network) linkRate(from, to *cluster.Node) float64 {
	rate := nw.cfg.LinkKBps
	if l := from.LinkKBps(); l > 0 && l < rate {
		rate = l
	}
	if l := to.LinkKBps(); l > 0 && l < rate {
		rate = l
	}
	return rate
}

// LinkRate exposes the effective per-pair serialization rate in KB/s for
// proximity-aware dispatch policies; see linkRate.
func (nw *Network) LinkRate(from, to *cluster.Node) float64 {
	return nw.linkRate(from, to)
}

// WireTime returns the wire latency of moving kb kilobytes between two
// nodes: switch traversal plus serialization at the endpoints' effective
// link rate. Bulk-data paths (distributed-file-system reads, back-end
// forwarding) use this so per-node link speeds apply to them too.
func (nw *Network) WireTime(from, to *cluster.Node, kb float64) float64 {
	return nw.cfg.SwitchLatency + kb/nw.linkRate(from, to)
}

// RouterIn charges the router for an inbound transfer of kb kilobytes and
// calls done when it has passed through.
func (nw *Network) RouterIn(kb float64, done func()) {
	nw.Router.Acquire(kb/nw.cfg.RouterKBps, done)
}

// RouterOut charges the router for an outbound transfer of kb kilobytes.
func (nw *Network) RouterOut(kb float64, done func()) {
	nw.Router.Acquire(kb/nw.cfg.RouterKBps, done)
}

// Send transmits a kb-kilobyte message from one node to another over the
// switched network, charging CPU and NI overheads on both sides plus
// serialization and switch latency, and calls delivered at the receiver
// once the receiving CPU has processed the message.
func (nw *Network) Send(from, to *cluster.Node, kb float64, delivered func()) {
	if from == to {
		panic(fmt.Sprintf("netsim: node %d sending a message to itself", from.ID))
	}
	nw.messages++
	nw.controlBytes += kb
	nw.mMessages.Inc()
	m := nw.getMessage()
	m.from, m.to = from, to
	m.wire = nw.WireTime(from, to, kb)
	m.delivered = delivered
	from.CPU.Acquire(nw.cfg.MsgCPU, m.afterFromCPU)
}

// Broadcast sends the message from one node to every other live node
// (implemented, as in the paper's M-VIA setup, as multiple point-to-point
// messages) and calls delivered once, when the last copy has arrived.
//
// At or above cfg.BatchFanout live receivers the fan-out is batched: every
// per-message resource charge is computed arithmetically via ChargeAt and at
// most one completion event is scheduled, instead of the five events per
// message the per-pair path costs. See broadcastBatched for the exactness
// argument.
//
// Broadcast returns the number of point-to-point messages sent (the live
// receiver count), so callers can account gossip traffic exactly.
func (nw *Network) Broadcast(from *cluster.Node, others []*cluster.Node, kb float64, delivered func()) int {
	remaining := 0
	for _, n := range others {
		if n != from && !n.Failed() {
			remaining++
		}
	}
	if remaining == 0 {
		if delivered != nil {
			// Deliver asynchronously for consistency with the network path.
			nw.eng.Schedule(0, delivered)
		}
		return 0
	}
	if nw.cfg.BatchFanout > 0 && remaining >= nw.cfg.BatchFanout {
		nw.broadcastBatched(from, others, remaining, kb, delivered)
		return remaining
	}
	b := nw.getBroadcast()
	b.remaining = remaining
	b.delivered = delivered
	for _, n := range others {
		if n == from || n.Failed() {
			continue
		}
		nw.Send(from, n, kb, b.arrived)
	}
	return remaining
}

// broadcastBatched books a k-receiver broadcast with O(k) arithmetic and at
// most one calendar event, against O(k) events each sifting a calendar that
// the per-pair path keeps 5k entries deep.
//
// All k copies are submitted at the same instant, so the sender-side charges
// are exactly what k sequential Sends would book: k CPU overheads queue FCFS
// on the sender CPU (one ChargeAt of k*MsgCPU has identical free/busy
// evolution), and because MsgNI >= MsgCPU the sender NI never goes idle
// between copies — the j-th copy leaves the NI at lastNI-(k-j)*MsgNI, the
// same staggered departure times the per-pair path produces. Each copy then
// crosses the wire at the pair's own rate (per-node line profiles preserved)
// and charges the receiver's NI and CPU from its arrival instant.
//
// The batched timings diverge from per-pair scheduling only when competing
// traffic would have interleaved with the broadcast's own charges at the
// same resource between now and the last departure: charging up front gives
// the broadcast FCFS priority over work submitted later at the same instant
// sequence. Queue-length statistics (InSystem, Completed, mean jobs) do not
// see arithmetic charges; utilization and busy time stay exact.
func (nw *Network) broadcastBatched(from *cluster.Node, others []*cluster.Node, k int, kb float64, delivered func()) {
	nw.messages += uint64(k)
	nw.controlBytes += float64(k) * kb
	nw.mMessages.Add(uint64(k))

	c, m := nw.cfg.MsgCPU, nw.cfg.MsgNI
	now := nw.eng.Now()
	lastCPU := from.CPU.ChargeAt(now, float64(k)*c)
	firstCPU := lastCPU - float64(k-1)*c
	lastNI := from.NIOut.ChargeAt(firstCPU, float64(k)*m)

	var maxDone sim.Time
	j := 0
	for _, n := range others {
		if n == from || n.Failed() {
			continue
		}
		j++
		depart := lastNI - float64(k-j)*m
		arrive := depart + nw.WireTime(from, n, kb)
		niIn := n.NIIn.ChargeAt(arrive, m)
		done := n.CPU.ChargeAt(niIn, c)
		if done > maxDone {
			maxDone = done
		}
	}
	if delivered != nil {
		nw.eng.At(maxDone, delivered)
	}
}

// ResetStats zeroes message counters (router statistics are reset through
// the resource itself).
func (nw *Network) ResetStats() {
	nw.messages = 0
	nw.controlBytes = 0
	nw.Router.ResetStats()
}
