package netsim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// buildFleet returns an engine, network, and cluster, with the fleet
// registered when flat is true. BatchFanout is forced to 1 so every
// broadcast takes the batched (or flat) path.
func buildFleet(n int, flat bool, slowNode int) (*sim.Engine, *Network, []*cluster.Node) {
	eng := sim.NewEngine()
	nw := New(eng, batchedConfig())
	nodes := make([]*cluster.Node, n)
	for i := range nodes {
		p := cluster.DefaultProfile()
		if i == slowNode {
			p.LinkKBps = 1000
		}
		nodes[i] = cluster.NewProfiledNode(eng, i, p)
	}
	if flat {
		nw.RegisterFleet(nodes)
	}
	return eng, nw, nodes
}

// stormScript drives an overlapping broadcast storm with mid-run failures
// and statistics reads, the access pattern that exercises every deferred-
// charge flush path, and returns the delivered times.
func stormScript(eng *sim.Engine, nw *Network, nodes []*cluster.Node) []float64 {
	var deliveredAt []float64
	for i := 0; i < 16; i++ {
		s := nodes[(i*7)%len(nodes)]
		eng.At(float64(i)*2e-6, func() {
			nw.Broadcast(s, nodes, 0.004, func() { deliveredAt = append(deliveredAt, eng.Now()) })
		})
	}
	eng.At(9e-6, func() { nodes[3].Fail() })
	eng.At(1.1e-5, func() { _ = nodes[5].CPU.BusyTime() }) // mid-storm flush
	eng.At(1.3e-5, func() { nodes[5].ResetStats() })
	eng.Run()
	return deliveredAt
}

// TestBroadcastFlatMatchesBatched pins the tentpole's exactness claim at the
// netsim layer: with the fleet registered, an overlapping broadcast storm —
// including a mid-storm failure, a heterogeneous link rate, and interleaved
// statistics reads and resets — produces bit-identical (==, not within-
// epsilon) delivered times, event counts, message counters, and per-resource
// busy times to the unregistered batched path.
func TestBroadcastFlatMatchesBatched(t *testing.T) {
	for _, n := range []int{33, 64, 200} {
		for _, slow := range []int{-1, 17} {
			engB, nwB, nodesB := buildFleet(n, false, slow)
			atB := stormScript(engB, nwB, nodesB)
			engF, nwF, nodesF := buildFleet(n, true, slow)
			atF := stormScript(engF, nwF, nodesF)

			if len(atB) != len(atF) {
				t.Fatalf("n=%d slow=%d: deliveries batched %d, flat %d", n, slow, len(atB), len(atF))
			}
			for i := range atB {
				if atB[i] != atF[i] {
					t.Fatalf("n=%d slow=%d delivery %d: batched %v, flat %v", n, slow, i, atB[i], atF[i])
				}
			}
			if engB.Fired() != engF.Fired() {
				t.Fatalf("n=%d slow=%d: events batched %d, flat %d", n, slow, engB.Fired(), engF.Fired())
			}
			if nwB.Messages() != nwF.Messages() || nwB.ControlKB() != nwF.ControlKB() {
				t.Fatalf("n=%d slow=%d: messages batched %d/%v, flat %d/%v",
					n, slow, nwB.Messages(), nwB.ControlKB(), nwF.Messages(), nwF.ControlKB())
			}
			for i := range nodesB {
				for _, pair := range [][2]*sim.Resource{
					{nodesB[i].CPU, nodesF[i].CPU},
					{nodesB[i].NIOut, nodesF[i].NIOut},
					{nodesB[i].NIIn, nodesF[i].NIIn},
				} {
					if pair[0].BusyTime() != pair[1].BusyTime() {
						t.Fatalf("n=%d slow=%d node %d %s: busy batched %v, flat %v",
							n, slow, i, pair[0].Name(), pair[0].BusyTime(), pair[1].BusyTime())
					}
				}
			}
		}
	}
}

// TestBroadcastFlatSpacedStormTakesFastPath pins the epoch fast path: when
// rounds are spaced beyond the admission threshold (the sender's NI
// advancing more than 2.5 message times per round), the fleet records whole
// rounds in O(1) — fastRounds must be nonzero even with request-like
// resource traffic and statistics reads dirtying individual nodes — and the
// results stay bit-identical to the batched walk.
func TestBroadcastFlatSpacedStormTakesFastPath(t *testing.T) {
	script := func(eng *sim.Engine, nw *Network, nodes []*cluster.Node) []float64 {
		var deliveredAt []float64
		for i := 0; i < 12; i++ {
			s := nodes[(i*7)%len(nodes)]
			eng.At(float64(i)*5e-5, func() {
				nw.Broadcast(s, nodes, 0.004, func() { deliveredAt = append(deliveredAt, eng.Now()) })
			})
		}
		// Request-like traffic against individual nodes mid-storm: these
		// dirty the touched nodes but must not evict the rest of the fleet
		// from the epoch.
		eng.At(1.2e-4, func() { nodes[11].CPU.Acquire(2e-6, nil) })
		eng.At(2.3e-4, func() { _ = nodes[5].CPU.BusyTime() })
		eng.At(3.1e-4, func() { nodes[9].ResetStats() })
		eng.Run()
		return deliveredAt
	}

	engB, nwB, nodesB := buildFleet(64, false, -1)
	atB := script(engB, nwB, nodesB)
	engF, nwF, nodesF := buildFleet(64, true, -1)
	atF := script(engF, nwF, nodesF)

	if len(atB) != len(atF) {
		t.Fatalf("deliveries batched %d, flat %d", len(atB), len(atF))
	}
	for i := range atB {
		if atB[i] != atF[i] {
			t.Fatalf("delivery %d: batched %v, flat %v", i, atB[i], atF[i])
		}
	}
	if engB.Fired() != engF.Fired() {
		t.Fatalf("events batched %d, flat %d", engB.Fired(), engF.Fired())
	}
	for i := range nodesB {
		if nodesB[i].NIIn.BusyTime() != nodesF[i].NIIn.BusyTime() ||
			nodesB[i].CPU.BusyTime() != nodesF[i].CPU.BusyTime() {
			t.Fatalf("node %d busy times diverge", i)
		}
	}
	if nwF.flat.fastRounds == 0 {
		t.Fatalf("fastRounds = 0 (slowRounds = %d): spaced storm never took the epoch fast path",
			nwF.flat.slowRounds)
	}
}

// TestBroadcastFlatBelowFanoutUsesPerPair pins that a registered fleet only
// changes how receivers are counted below the batching threshold: the
// per-pair event path still runs, bit-identical to the unregistered network.
func TestBroadcastFlatBelowFanoutUsesPerPair(t *testing.T) {
	run := func(flat bool) (uint64, float64) {
		eng := sim.NewEngine()
		nw := New(eng, DefaultConfig()) // fan-out 7 < DefaultBatchFanout
		nodes := makeCluster(eng, 8)
		if flat {
			nw.RegisterFleet(nodes)
		}
		deliveredAt := -1.0
		nw.Broadcast(nodes[0], nodes, 0.004, func() { deliveredAt = eng.Now() })
		eng.Run()
		return eng.Fired(), deliveredAt
	}
	eventsB, atB := run(false)
	eventsF, atF := run(true)
	if eventsB != eventsF || atB != atF {
		t.Fatalf("per-pair: batched %d events at %v, flat %d events at %v", eventsB, atB, eventsF, atF)
	}
	if eventsF != 5*7 {
		t.Fatalf("events = %d, want %d (per-pair path)", eventsF, 5*7)
	}
}

// TestBroadcastFlatSubsetFallsBack pins that a broadcast addressed to a
// slice that is not the registered fleet — a subset, or a sender outside it
// — falls back to the scanning path and stays correct.
func TestBroadcastFlatSubsetFallsBack(t *testing.T) {
	eng, nw, nodes := buildFleet(64, true, -1)
	delivered := 0
	if got := nw.Broadcast(nodes[0], nodes[:40], 0.004, func() { delivered++ }); got != 39 {
		t.Fatalf("subset broadcast returned %d receivers, want 39", got)
	}
	eng.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d times, want 1", delivered)
	}
	if nw.Messages() != 39 {
		t.Fatalf("Messages = %d, want 39", nw.Messages())
	}
}

// TestBroadcastFlatFailedSender pins the dead-sender edge: a failed sender
// still in the fleet broadcasts to every live node, exactly like the
// scanning count.
func TestBroadcastFlatFailedSender(t *testing.T) {
	eng, nw, nodes := buildFleet(64, true, -1)
	nodes[0].Fail()
	nodes[9].Fail()
	if got := nw.Broadcast(nodes[0], nodes, 0.004, nil); got != 62 {
		t.Fatalf("failed-sender broadcast returned %d receivers, want 62", got)
	}
	eng.Run()
	if nodes[9].NIIn.BusyTime() != 0 {
		t.Fatal("failed receiver was charged")
	}
}

// TestRegisterFleetRejectsMisnumberedNodes pins the registration contract:
// node IDs must equal slice positions, and a second registration panics.
func TestRegisterFleetRejectsMisnumberedNodes(t *testing.T) {
	eng := sim.NewEngine()
	nw := New(eng, DefaultConfig())
	nodes := makeCluster(eng, 4)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("misnumbered", func() {
		nw.RegisterFleet([]*cluster.Node{nodes[1], nodes[0], nodes[2], nodes[3]})
	})
	nw2 := New(eng, DefaultConfig())
	nodes2 := makeCluster(eng, 4)
	nw2.RegisterFleet(nodes2)
	expectPanic("double registration", func() { nw2.RegisterFleet(nodes2) })
}
