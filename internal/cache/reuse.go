package cache

import (
	"fmt"
	"sort"

	"repro/internal/fastmap"
)

// fileState is the per-file record of the curve builder: the latest access
// position (1-based Fenwick index) and the last observed size, stored
// together so a touch pays one index lookup instead of two.
type fileState struct {
	pos  int32
	size int64
}

// CurveBuilder computes byte-granular LRU reuse distances over an access
// stream in one pass (Mattson's stack algorithm with a Fenwick tree): the
// reuse distance of an access is the number of bytes of distinct files
// touched since the previous access to the same file, inclusive. An access
// hits in an LRU cache of capacity C exactly when its reuse distance is at
// most C, so a single pass yields the hit rate at every cache size — the
// miss-ratio curve used to anchor the analytic model's hit rates for all
// cluster sizes at once.
type CurveBuilder struct {
	bit   []int64                 // Fenwick tree over access positions, holding sizes
	files *fastmap.Map[fileState] // latest access position and size per file
	next  int32

	distances []int64 // recorded reuse distances of measured hits-or-misses
	cold      uint64  // measured accesses with no previous reference
}

// maxInitialPositions caps the position space allocated up front. Beyond
// it, the builder relies on compaction (see grow): only the latest access
// position per distinct file carries weight, so a stream of 10^8 requests
// over 10^5 distinct files needs ~10^5 live positions, not 10^8. The cap is
// 2^22 positions (32 MB of Fenwick tree) — large enough that realistic
// catalogs never compact at all.
const maxInitialPositions = 1 << 22

// NewCurveBuilder sizes the builder for a stream of at most accesses
// accesses (additional accesses grow the structure automatically, and dead
// positions are compacted away, so memory is O(distinct files) regardless
// of stream length).
func NewCurveBuilder(accesses int) *CurveBuilder {
	if accesses < 16 {
		accesses = 16
	}
	if accesses > maxInitialPositions {
		accesses = maxInitialPositions
	}
	return &CurveBuilder{
		bit:   make([]int64, accesses+1),
		files: fastmap.New[fileState](0),
	}
}

// Warm processes an access without recording a measurement, as cache
// warm-up does.
func (b *CurveBuilder) Warm(id FileID, size int64) {
	b.touch(id, size, false)
}

// Add processes an access and records its reuse distance.
func (b *CurveBuilder) Add(id FileID, size int64) {
	b.touch(id, size, true)
}

func (b *CurveBuilder) touch(id FileID, size int64, record bool) {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative size %d for file %d", size, id))
	}
	// Make room for this access's position first: grow rebuilds the tree
	// from the file table, and compaction renumbers the positions held
	// there, so both must run while the two structures agree — before this
	// access's old position is retired below.
	if int(b.next)+1 >= len(b.bit) {
		b.grow()
	}
	st, seen := b.files.Get(int32(id))
	if record {
		if !seen {
			b.cold++
		} else {
			// Bytes of distinct files accessed strictly after prev, plus
			// this file itself.
			d := b.suffixSum(int(st.pos)) + st.size
			b.distances = append(b.distances, d)
		}
	}
	if seen {
		b.update(int(st.pos), -st.size)
	}
	b.next++
	b.files.Put(int32(id), fileState{pos: b.next, size: size})
	b.update(int(b.next), size)
}

// grow makes room for more access positions. A position is dead once its
// file is re-accessed further up the stream; when at least half the
// position space is dead, the live positions are renumbered 1..L in stream
// order instead of doubling the tree. Renumbering preserves the relative
// order and sizes of all live positions, and reuse distances are suffix
// sums over exactly those, so every subsequent distance is bit-identical to
// the unbounded tree's — while memory stays O(distinct files) no matter how
// long the stream runs.
func (b *CurveBuilder) grow() {
	if 2*b.files.Len() <= len(b.bit)-1 {
		b.compact()
		return
	}
	b.bit = make([]int64, len(b.bit)*2)
	// Rebuild from per-file positions (only live positions carry weight).
	// The Fenwick updates are additive, so the table's iteration order
	// cannot affect the rebuilt tree.
	b.files.Range(func(_ int32, st fileState) bool {
		b.update(int(st.pos), st.size)
		return true
	})
}

// liveEnt is compact's scratch record: one live (file, position, size).
type liveEnt struct {
	id   int32
	pos  int32
	size int64
}

// compact renumbers live positions 1..L in stream order and rebuilds the
// tree in place.
func (b *CurveBuilder) compact() {
	ents := make([]liveEnt, 0, b.files.Len())
	b.files.Range(func(id int32, st fileState) bool {
		ents = append(ents, liveEnt{id: id, pos: st.pos, size: st.size})
		return true
	})
	sort.Slice(ents, func(i, j int) bool { return ents[i].pos < ents[j].pos })
	for i := range b.bit {
		b.bit[i] = 0
	}
	for i, e := range ents {
		pos := int32(i + 1)
		b.files.Put(e.id, fileState{pos: pos, size: e.size})
		b.update(int(pos), e.size)
	}
	b.next = int32(len(ents))
}

// update adds delta at position i (1-based Fenwick).
func (b *CurveBuilder) update(i int, delta int64) {
	for ; i < len(b.bit); i += i & (-i) {
		b.bit[i] += delta
	}
}

// prefixSum returns the sum of sizes at positions 1..i.
func (b *CurveBuilder) prefixSum(i int) int64 {
	var s int64
	for ; i > 0; i -= i & (-i) {
		s += b.bit[i]
	}
	return s
}

// suffixSum returns the sum of sizes at positions > i.
func (b *CurveBuilder) suffixSum(i int) int64 {
	return b.prefixSum(int(b.next)) - b.prefixSum(i)
}

// Curve is the finished miss-ratio curve.
type Curve struct {
	distances []int64 // sorted reuse distances of re-references
	measured  uint64  // total measured accesses (re-references + cold)
}

// Curve finalizes the builder.
func (b *CurveBuilder) Curve() *Curve {
	ds := append([]int64(nil), b.distances...)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return &Curve{distances: ds, measured: uint64(len(ds)) + b.cold}
}

// HitRate returns the LRU hit rate at the given byte capacity: the
// fraction of measured accesses whose reuse distance fits.
func (c *Curve) HitRate(capacity int64) float64 {
	if c.measured == 0 {
		return 0
	}
	hits := sort.Search(len(c.distances), func(i int) bool {
		return c.distances[i] > capacity
	})
	return float64(hits) / float64(c.measured)
}

// MissRate is 1 - HitRate.
func (c *Curve) MissRate(capacity int64) float64 { return 1 - c.HitRate(capacity) }

// Measured returns how many accesses were recorded.
func (c *Curve) Measured() uint64 { return c.measured }
