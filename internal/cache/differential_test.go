package cache

import (
	"container/list"
	"math/rand"
	"testing"
)

// listLRU is a reference LRU built on container/list — the implementation
// the intrusive cache replaced. The differential test drives both with the
// same randomized Zipf-like stream and demands identical observable
// behavior, event by event.
type listLRU struct {
	capacity int64
	used     int64
	order    *list.List
	items    map[FileID]*list.Element
	onEvict  func(id FileID, size int64)
}

type listEntry struct {
	id   FileID
	size int64
}

func newListLRU(capacity int64) *listLRU {
	return &listLRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[FileID]*list.Element),
	}
}

func (c *listLRU) access(id FileID, size int64) bool {
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		c.remove(c.order.Back())
	}
	c.items[id] = c.order.PushFront(listEntry{id: id, size: size})
	c.used += size
	return false
}

func (c *listLRU) evict(id FileID) bool {
	el, ok := c.items[id]
	if !ok {
		return false
	}
	c.remove(el)
	return true
}

func (c *listLRU) remove(el *list.Element) {
	e := el.Value.(listEntry)
	c.order.Remove(el)
	delete(c.items, e.id)
	c.used -= e.size
	if c.onEvict != nil {
		c.onEvict(e.id, e.size)
	}
}

func (c *listLRU) mostRecent(n int) []FileID {
	if n < 0 {
		n = 0
	}
	out := make([]FileID, 0, n)
	for el := c.order.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(listEntry).id)
	}
	return out
}

// zipfStream returns a skewed access stream: ids drawn Zipf-like over a
// catalog with per-file stable sizes, mimicking the paper's workloads.
func zipfStream(rng *rand.Rand, files, accesses int) ([]FileID, []int64) {
	z := rand.NewZipf(rng, 1.2, 1, uint64(files-1))
	sizes := make([]int64, files)
	for i := range sizes {
		sizes[i] = int64(rng.Intn(40<<10) + 512)
	}
	ids := make([]FileID, accesses)
	szs := make([]int64, accesses)
	for i := range ids {
		id := FileID(z.Uint64())
		ids[i] = id
		szs[i] = sizes[id]
	}
	return ids, szs
}

// TestDifferentialAgainstListLRU drives the intrusive LRU and the
// container/list reference with the same randomized Zipf stream —
// including explicit invalidations — and asserts identical hit/miss
// results, identical eviction sequences (via OnEvict), identical
// MostRecent order, and identical byte accounting at every step.
func TestDifferentialAgainstListLRU(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(rng.Intn(512<<10) + 32<<10)
		got := NewLRU(capacity)
		want := newListLRU(capacity)

		var gotEvicts, wantEvicts []FileID
		got.OnEvict = func(id FileID, size int64) { gotEvicts = append(gotEvicts, id) }
		want.onEvict = func(id FileID, size int64) { wantEvicts = append(wantEvicts, id) }

		ids, sizes := zipfStream(rng, 200, 4000)
		for i, id := range ids {
			if rng.Intn(16) == 0 {
				victim := FileID(rng.Intn(200))
				if got.Evict(victim) != want.evict(victim) {
					t.Fatalf("seed %d step %d: Evict(%d) diverged", seed, i, victim)
				}
			}
			g, w := got.Access(id, sizes[i]), want.access(id, sizes[i])
			if g != w {
				t.Fatalf("seed %d step %d: Access(%d) = %v, reference %v", seed, i, id, g, w)
			}
			if got.Used() != want.used || got.Len() != len(want.items) {
				t.Fatalf("seed %d step %d: used/len %d/%d, reference %d/%d",
					seed, i, got.Used(), got.Len(), want.used, len(want.items))
			}
			if len(gotEvicts) != len(wantEvicts) {
				t.Fatalf("seed %d step %d: %d evictions, reference %d",
					seed, i, len(gotEvicts), len(wantEvicts))
			}
		}
		for i := range gotEvicts {
			if gotEvicts[i] != wantEvicts[i] {
				t.Fatalf("seed %d: eviction %d is %d, reference %d",
					seed, i, gotEvicts[i], wantEvicts[i])
			}
		}
		g, w := got.MostRecent(got.Len()), want.mostRecent(len(want.items))
		if len(g) != len(w) {
			t.Fatalf("seed %d: MostRecent lengths %d vs %d", seed, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("seed %d: MostRecent[%d] = %d, reference %d", seed, i, g[i], w[i])
			}
		}
	}
}

func TestEvictCountsAsInvalidationNotEviction(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 40)
	c.Access(2, 40)
	if !c.Evict(1) {
		t.Fatal("Evict(1) should remove a present file")
	}
	if c.Evictions() != 0 {
		t.Fatalf("Evictions = %d after explicit Evict, want 0", c.Evictions())
	}
	if c.Invalidations() != 1 {
		t.Fatalf("Invalidations = %d, want 1", c.Invalidations())
	}
	c.Access(3, 40)
	c.Access(4, 40) // capacity-evicts 2
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d after capacity eviction, want 1", c.Evictions())
	}
	if c.Invalidations() != 1 {
		t.Fatalf("Invalidations = %d, want 1 still", c.Invalidations())
	}
	c.ResetStats()
	if c.Evictions() != 0 || c.Invalidations() != 0 {
		t.Fatal("ResetStats must zero both counters")
	}
}

func TestMostRecentNegativeN(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 10)
	if got := c.MostRecent(-3); len(got) != 0 {
		t.Fatalf("MostRecent(-3) = %v, want empty", got)
	}
	if got := c.MostRecent(0); len(got) != 0 {
		t.Fatalf("MostRecent(0) = %v, want empty", got)
	}
}

// TestPoolReuseKeepsOrder churns the cache through enough insert/evict
// cycles that every pooled entry slot is recycled, then checks order again.
func TestPoolReuseKeepsOrder(t *testing.T) {
	c := NewLRU(100)
	for round := 0; round < 50; round++ {
		base := FileID(round * 10)
		for i := FileID(0); i < 10; i++ {
			c.Access(base+i, 10)
		}
	}
	got := c.MostRecent(3)
	want := []FileID{499, 498, 497}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("MostRecent after churn = %v, want %v", got, want)
	}
	if c.Used() != 100 || c.Len() != 10 {
		t.Fatalf("Used/Len = %d/%d, want 100/10", c.Used(), c.Len())
	}
}
