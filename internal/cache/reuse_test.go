package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReuseDistanceBasics(t *testing.T) {
	b := NewCurveBuilder(16)
	// A(10) B(20) A: A's reuse distance = 20 + 10 = 30.
	b.Add(1, 10)
	b.Add(2, 20)
	b.Add(1, 10)
	c := b.Curve()
	if c.Measured() != 3 {
		t.Fatalf("measured = %d, want 3", c.Measured())
	}
	// Capacity 30 fits the re-reference; 29 does not. Cold accesses always
	// miss.
	if got := c.HitRate(30); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("HitRate(30) = %v, want 1/3", got)
	}
	if got := c.HitRate(29); got != 0 {
		t.Fatalf("HitRate(29) = %v, want 0", got)
	}
}

func TestReuseWarmSkipsMeasurement(t *testing.T) {
	b := NewCurveBuilder(16)
	b.Warm(1, 10)
	b.Add(1, 10) // distance 10, measured
	c := b.Curve()
	if c.Measured() != 1 {
		t.Fatalf("measured = %d, want 1", c.Measured())
	}
	if c.HitRate(10) != 1 {
		t.Fatalf("HitRate(10) = %v, want 1 (warmed)", c.HitRate(10))
	}
}

func TestReuseCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewCurveBuilder(64)
	for i := 0; i < 2000; i++ {
		b.Add(FileID(rng.Intn(50)), int64(rng.Intn(100)+1))
	}
	c := b.Curve()
	last := -1.0
	for cap := int64(0); cap <= 3000; cap += 100 {
		h := c.HitRate(cap)
		if h < last {
			t.Fatalf("hit rate decreased at capacity %d", cap)
		}
		last = h
	}
}

func TestReuseBuilderGrows(t *testing.T) {
	b := NewCurveBuilder(16) // force several growth cycles
	for i := 0; i < 500; i++ {
		b.Add(FileID(i%7), 10)
	}
	c := b.Curve()
	// With 7 files of 10 bytes, every re-reference fits in 70 bytes.
	if got := c.HitRate(70); math.Abs(got-float64(500-7)/500) > 1e-12 {
		t.Fatalf("HitRate(70) = %v", got)
	}
}

// Property: for any access stream (file sizes below the capacities probed),
// the one-pass curve agrees exactly with a direct LRU simulation at every
// probed capacity, including warm-up handling.
func TestPropertyCurveMatchesLRU(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nfiles := 5 + rng.Intn(40)
		sizes := make([]int64, nfiles)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(200) + 1)
		}
		accesses := make([]FileID, 400)
		for i := range accesses {
			accesses[i] = FileID(rng.Intn(nfiles))
		}
		warm := rng.Intn(200)

		builder := NewCurveBuilder(len(accesses))
		for i, id := range accesses {
			if i < warm {
				builder.Warm(id, sizes[id])
			} else {
				builder.Add(id, sizes[id])
			}
		}
		curve := builder.Curve()

		for _, capacity := range []int64{250, 500, 1000, 4000} {
			lru := NewLRU(capacity)
			for i, id := range accesses {
				if i < warm {
					lru.Warm(id, sizes[id])
				} else {
					lru.Access(id, sizes[id])
				}
			}
			if math.Abs(curve.HitRate(capacity)-lru.HitRate()) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseEmptyCurve(t *testing.T) {
	c := NewCurveBuilder(4).Curve()
	if c.HitRate(1000) != 0 || c.MissRate(1000) != 1 {
		t.Fatal("empty curve should report zero hits")
	}
}

func TestReuseNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	NewCurveBuilder(4).Add(1, -1)
}

func BenchmarkCurveBuilder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ids := make([]FileID, 100000)
	sizes := make([]int64, 100000)
	for i := range ids {
		ids[i] = FileID(rng.Intn(5000))
		sizes[i] = int64(rng.Intn(50000) + 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb := NewCurveBuilder(len(ids))
		for j, id := range ids {
			cb.Add(id, sizes[j])
		}
		cb.Curve()
	}
}
