package cache

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReuseDistanceBasics(t *testing.T) {
	b := NewCurveBuilder(16)
	// A(10) B(20) A: A's reuse distance = 20 + 10 = 30.
	b.Add(1, 10)
	b.Add(2, 20)
	b.Add(1, 10)
	c := b.Curve()
	if c.Measured() != 3 {
		t.Fatalf("measured = %d, want 3", c.Measured())
	}
	// Capacity 30 fits the re-reference; 29 does not. Cold accesses always
	// miss.
	if got := c.HitRate(30); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("HitRate(30) = %v, want 1/3", got)
	}
	if got := c.HitRate(29); got != 0 {
		t.Fatalf("HitRate(29) = %v, want 0", got)
	}
}

func TestReuseWarmSkipsMeasurement(t *testing.T) {
	b := NewCurveBuilder(16)
	b.Warm(1, 10)
	b.Add(1, 10) // distance 10, measured
	c := b.Curve()
	if c.Measured() != 1 {
		t.Fatalf("measured = %d, want 1", c.Measured())
	}
	if c.HitRate(10) != 1 {
		t.Fatalf("HitRate(10) = %v, want 1 (warmed)", c.HitRate(10))
	}
}

func TestReuseCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewCurveBuilder(64)
	for i := 0; i < 2000; i++ {
		b.Add(FileID(rng.Intn(50)), int64(rng.Intn(100)+1))
	}
	c := b.Curve()
	last := -1.0
	for cap := int64(0); cap <= 3000; cap += 100 {
		h := c.HitRate(cap)
		if h < last {
			t.Fatalf("hit rate decreased at capacity %d", cap)
		}
		last = h
	}
}

func TestReuseBuilderGrows(t *testing.T) {
	b := NewCurveBuilder(16) // force several growth cycles
	for i := 0; i < 500; i++ {
		b.Add(FileID(i%7), 10)
	}
	c := b.Curve()
	// With 7 files of 10 bytes, every re-reference fits in 70 bytes.
	if got := c.HitRate(70); math.Abs(got-float64(500-7)/500) > 1e-12 {
		t.Fatalf("HitRate(70) = %v", got)
	}
}

// Property: for any access stream (file sizes below the capacities probed),
// the one-pass curve agrees exactly with a direct LRU simulation at every
// probed capacity, including warm-up handling.
func TestPropertyCurveMatchesLRU(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nfiles := 5 + rng.Intn(40)
		sizes := make([]int64, nfiles)
		for i := range sizes {
			sizes[i] = int64(rng.Intn(200) + 1)
		}
		accesses := make([]FileID, 400)
		for i := range accesses {
			accesses[i] = FileID(rng.Intn(nfiles))
		}
		warm := rng.Intn(200)

		builder := NewCurveBuilder(len(accesses))
		for i, id := range accesses {
			if i < warm {
				builder.Warm(id, sizes[id])
			} else {
				builder.Add(id, sizes[id])
			}
		}
		curve := builder.Curve()

		for _, capacity := range []int64{250, 500, 1000, 4000} {
			lru := NewLRU(capacity)
			for i, id := range accesses {
				if i < warm {
					lru.Warm(id, sizes[id])
				} else {
					lru.Access(id, sizes[id])
				}
			}
			if math.Abs(curve.HitRate(capacity)-lru.HitRate()) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestReuseEmptyCurve(t *testing.T) {
	c := NewCurveBuilder(4).Curve()
	if c.HitRate(1000) != 0 || c.MissRate(1000) != 1 {
		t.Fatal("empty curve should report zero hits")
	}
}

func TestReuseNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	NewCurveBuilder(4).Add(1, -1)
}

func BenchmarkCurveBuilder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ids := make([]FileID, 100000)
	sizes := make([]int64, 100000)
	for i := range ids {
		ids[i] = FileID(rng.Intn(5000))
		sizes[i] = int64(rng.Intn(50000) + 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cb := NewCurveBuilder(len(ids))
		for j, id := range ids {
			cb.Add(id, sizes[j])
		}
		cb.Curve()
	}
}

// refCurveDistances is a quadratic reference Mattson implementation: reuse
// distance of an access is the total size of distinct files touched since
// the previous access to the same file, inclusive.
func refCurveDistances(ids []FileID, sizes []int64) []int64 {
	var out []int64
	last := map[FileID]int{}
	for i, id := range ids {
		if p, ok := last[id]; ok {
			seen := map[FileID]bool{}
			var d int64
			for j := p + 1; j < i; j++ {
				if !seen[ids[j]] && ids[j] != id {
					seen[ids[j]] = true
					d += sizes[j]
				}
			}
			out = append(out, d+sizes[p])
		}
		last[id] = i
	}
	return out
}

// TestReuseCompaction forces many compaction cycles — a tiny builder over a
// long stream with few distinct files — and checks every recorded distance
// against the quadratic reference. This pins the O(distinct files) memory
// bound's exactness claim: renumbering live positions preserves all suffix
// sums.
func TestReuseCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 6000
	ids := make([]FileID, n)
	sizes := make([]int64, n)
	fileSize := map[FileID]int64{}
	for i := range ids {
		// Mixed skew: a hot set of 10 plus a long tail of 300, so prior
		// positions span the whole window when compaction hits.
		var id FileID
		if rng.Intn(2) == 0 {
			id = FileID(rng.Intn(10))
		} else {
			id = FileID(10 + rng.Intn(300))
		}
		if _, ok := fileSize[id]; !ok {
			fileSize[id] = int64(rng.Intn(500) + 1)
		}
		ids[i] = id
		sizes[i] = fileSize[id]
	}
	b := NewCurveBuilder(16) // far under-sized: compacts/doubles repeatedly
	for i := range ids {
		b.Add(ids[i], sizes[i])
	}
	want := refCurveDistances(ids, sizes)
	if len(b.distances) != len(want) {
		t.Fatalf("recorded %d distances, want %d", len(b.distances), len(want))
	}
	for i := range want {
		if b.distances[i] != want[i] {
			t.Fatalf("distance %d = %d, want %d", i, b.distances[i], want[i])
		}
	}
	// The position space must have stayed bounded: 310 distinct files need
	// at most ~1241 positions (compaction keeps live <= half the space),
	// never the 6000 an unbounded tree would use.
	if len(b.bit) >= n {
		t.Fatalf("Fenwick tree grew to %d positions for %d distinct files", len(b.bit), len(fileSize))
	}
}

// TestReuseGrowWithStaleEntry pins a regression: growing the tree during an
// access to an already-seen file used to rebuild from the file table before
// the current file's entry was updated, resurrecting its retired position's
// weight and inflating later distances that spanned it.
func TestReuseGrowWithStaleEntry(t *testing.T) {
	// Builder capacity 17 (16 rounds up). Access files 0..13, then touch 5
	// and 0 again so position 17 triggers growth mid-re-access.
	b := NewCurveBuilder(16)
	for i := 0; i < 14; i++ {
		b.Add(FileID(i), 10)
	}
	b.Add(5, 10) // pos 15
	b.Add(6, 10) // pos 16
	b.Add(0, 10) // pos 17: grow fires during a re-access
	b.Add(1, 10) // prev pos 2 — distance spans file 0's retired pos 1
	ids := []FileID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 5, 6, 0, 1}
	sizes := make([]int64, len(ids))
	for i := range sizes {
		sizes[i] = 10
	}
	want := refCurveDistances(ids, sizes)
	if len(b.distances) != len(want) {
		t.Fatalf("recorded %d distances, want %d", len(b.distances), len(want))
	}
	for i := range want {
		if b.distances[i] != want[i] {
			t.Fatalf("distance %d = %d, want %d", i, b.distances[i], want[i])
		}
	}
}
