// Package cache implements the per-node main-memory file cache of the
// simulated cluster: a byte-accounted LRU over whole files, as assumed by
// both the traditional and the locality-conscious servers in the paper.
//
// The cache does not store file contents (the simulator only needs hits and
// misses); it tracks identities and sizes, charges capacity in bytes, and
// keeps hit/miss/eviction statistics.
//
// The recency list is intrusive: entries live in one slice linked by int32
// prev/next indices with a free list, so hits, inserts, and evictions move
// no memory and allocate nothing once the entry pool has grown to the
// cache's high-water mark. Under the Zipf-like streams of the paper this is
// the hottest data structure in the simulator after the event calendar.
package cache

import (
	"fmt"

	"repro/internal/fastmap"
	"repro/internal/obs"
	"repro/internal/stats"
)

// FileID identifies a file in a trace's catalog (its popularity-agnostic
// index).
type FileID int32

// none marks the absence of a neighbor or free entry in the intrusive list.
const none int32 = -1

// entry is one resident file inside the pooled recency list.
type entry struct {
	id   FileID
	size int64
	prev int32 // toward the MRU end; free-list link while unused
	next int32 // toward the LRU end
}

// LRU is a least-recently-used file cache with a byte capacity.
type LRU struct {
	capacity int64
	used     int64
	entries  []entry
	freeHead int32
	head     int32 // most recently used, none when empty
	tail     int32 // least recently used, none when empty
	items    *fastmap.Map[int32]

	hits          stats.Ratio
	evictions     uint64 // capacity evictions only
	invalidations uint64 // explicit Evict calls that removed a file

	// m mirrors the statistics onto shared observability counters; the
	// zero value (all nil) is the disabled, no-op path.
	m Metrics

	// OnEvict, when non-nil, is called for every removal — capacity
	// evictions and explicit invalidations alike.
	OnEvict func(id FileID, size int64)
}

// Metrics is an optional set of observability counters the cache mirrors
// its statistics onto, on top of the per-cache counters that ResetStats
// zeroes: several caches may share one set, accumulating cluster-wide
// totals. Nil fields are no-ops, so a zero Metrics disables mirroring at
// the cost of one predictable branch per event.
type Metrics struct {
	Hits          *obs.Counter
	Misses        *obs.Counter
	Evictions     *obs.Counter
	Invalidations *obs.Counter
}

// SetMetrics attaches (or, with the zero Metrics, detaches) observability
// counters. Unlike the built-in statistics, attached counters are never
// reset by ResetStats.
func (c *LRU) SetMetrics(m Metrics) { c.m = m }

// NewLRU returns an empty cache holding at most capacity bytes.
func NewLRU(capacity int64) *LRU {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", capacity))
	}
	return &LRU{
		capacity: capacity,
		freeHead: none,
		head:     none,
		tail:     none,
		items:    fastmap.New[int32](0),
	}
}

// Capacity returns the configured byte capacity.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *LRU) Used() int64 { return c.used }

// Len returns the number of cached files.
func (c *LRU) Len() int { return c.items.Len() }

// Contains reports whether the file is cached, without touching LRU order
// or statistics.
func (c *LRU) Contains(id FileID) bool {
	return c.items.Contains(int32(id))
}

// Access simulates serving the file: on a hit the file is refreshed to
// most-recently-used and true is returned; on a miss the file is fetched
// into the cache (evicting LRU entries as needed) and false is returned.
// Files larger than the whole cache are served but never cached.
//
// Statistics are recorded either way; use Warm for statistics-free priming.
func (c *LRU) Access(id FileID, size int64) bool {
	hit := c.touch(id, size)
	c.hits.Observe(hit)
	if hit {
		c.m.Hits.Inc()
	} else {
		c.m.Misses.Inc()
	}
	return hit
}

// Warm performs the same state change as Access without recording
// statistics, for cache warm-up runs.
func (c *LRU) Warm(id FileID, size int64) bool {
	return c.touch(id, size)
}

func (c *LRU) touch(id FileID, size int64) bool {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative size %d for file %d", size, id))
	}
	if i, ok := c.items.Get(int32(id)); ok {
		c.moveToFront(i)
		return true
	}
	if size > c.capacity {
		return false // uncacheable; served straight from disk
	}
	for c.used+size > c.capacity {
		c.evictOldest()
	}
	i := c.alloc()
	e := &c.entries[i]
	e.id = id
	e.size = size
	c.pushFront(i)
	c.items.Put(int32(id), i)
	c.used += size
	return false
}

// Evict removes the file if cached, returning whether it was present. The
// OnEvict callback fires as for capacity evictions, but the removal is
// counted as an invalidation, not an eviction: Evictions measures capacity
// pressure only.
func (c *LRU) Evict(id FileID) bool {
	i, ok := c.items.Get(int32(id))
	if !ok {
		return false
	}
	c.invalidations++
	c.m.Invalidations.Inc()
	c.remove(i)
	return true
}

func (c *LRU) evictOldest() {
	if c.tail == none {
		panic("cache: eviction from empty cache (size accounting bug)")
	}
	c.evictions++
	c.m.Evictions.Inc()
	c.remove(c.tail)
}

// remove unlinks entry i, releases its slot, and fires OnEvict. The caller
// has already counted the removal as an eviction or an invalidation.
func (c *LRU) remove(i int32) {
	e := &c.entries[i]
	id, size := e.id, e.size
	c.unlink(i)
	c.freeEntry(i)
	c.items.Delete(int32(id))
	c.used -= size
	if c.OnEvict != nil {
		c.OnEvict(id, size)
	}
}

// alloc takes an entry slot from the free list, growing the pool when the
// list is empty.
func (c *LRU) alloc() int32 {
	if c.freeHead != none {
		i := c.freeHead
		c.freeHead = c.entries[i].prev
		return i
	}
	c.entries = append(c.entries, entry{})
	return int32(len(c.entries) - 1)
}

func (c *LRU) freeEntry(i int32) {
	c.entries[i].prev = c.freeHead
	c.freeHead = i
}

// pushFront links entry i in as the most recently used.
func (c *LRU) pushFront(i int32) {
	e := &c.entries[i]
	e.prev = none
	e.next = c.head
	if c.head != none {
		c.entries[c.head].prev = i
	}
	c.head = i
	if c.tail == none {
		c.tail = i
	}
}

// unlink removes entry i from the recency list without freeing its slot.
func (c *LRU) unlink(i int32) {
	e := &c.entries[i]
	if e.prev != none {
		c.entries[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next != none {
		c.entries[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
}

// moveToFront refreshes entry i to most recently used.
func (c *LRU) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.unlink(i)
	c.pushFront(i)
}

// HitRate returns the hit fraction since the last ResetStats.
func (c *LRU) HitRate() float64 { return c.hits.Value() }

// Stats returns the raw hit/total counters.
func (c *LRU) Stats() stats.Ratio { return c.hits }

// Evictions returns the number of capacity evictions since the last
// ResetStats; explicit Evict calls are counted by Invalidations.
func (c *LRU) Evictions() uint64 { return c.evictions }

// Invalidations returns the number of files removed by explicit Evict calls
// since the last ResetStats.
func (c *LRU) Invalidations() uint64 { return c.invalidations }

// ResetStats zeroes hit/miss/eviction counters, preserving cache contents;
// call it at the end of warm-up.
func (c *LRU) ResetStats() {
	c.hits = stats.Ratio{}
	c.evictions = 0
	c.invalidations = 0
}

// MostRecent returns up to n most-recently-used file ids, for diagnostics.
// A non-positive n yields an empty slice.
func (c *LRU) MostRecent(n int) []FileID {
	if n < 0 {
		n = 0
	}
	out := make([]FileID, 0, n)
	for i := c.head; i != none && len(out) < n; i = c.entries[i].next {
		out = append(out, c.entries[i].id)
	}
	return out
}
