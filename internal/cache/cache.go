// Package cache implements the per-node main-memory file cache of the
// simulated cluster: a byte-accounted LRU over whole files, as assumed by
// both the traditional and the locality-conscious servers in the paper.
//
// The cache does not store file contents (the simulator only needs hits and
// misses); it tracks identities and sizes, charges capacity in bytes, and
// keeps hit/miss/eviction statistics.
package cache

import (
	"container/list"
	"fmt"

	"repro/internal/stats"
)

// FileID identifies a file in a trace's catalog (its popularity-agnostic
// index).
type FileID int32

// LRU is a least-recently-used file cache with a byte capacity.
type LRU struct {
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	items    map[FileID]*list.Element

	hits      stats.Ratio
	evictions uint64

	// OnEvict, when non-nil, is called for every evicted file.
	OnEvict func(id FileID, size int64)
}

type entry struct {
	id   FileID
	size int64
}

// NewLRU returns an empty cache holding at most capacity bytes.
func NewLRU(capacity int64) *LRU {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", capacity))
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[FileID]*list.Element),
	}
}

// Capacity returns the configured byte capacity.
func (c *LRU) Capacity() int64 { return c.capacity }

// Used returns the bytes currently cached.
func (c *LRU) Used() int64 { return c.used }

// Len returns the number of cached files.
func (c *LRU) Len() int { return len(c.items) }

// Contains reports whether the file is cached, without touching LRU order
// or statistics.
func (c *LRU) Contains(id FileID) bool {
	_, ok := c.items[id]
	return ok
}

// Access simulates serving the file: on a hit the file is refreshed to
// most-recently-used and true is returned; on a miss the file is fetched
// into the cache (evicting LRU entries as needed) and false is returned.
// Files larger than the whole cache are served but never cached.
//
// Statistics are recorded either way; use Warm for statistics-free priming.
func (c *LRU) Access(id FileID, size int64) bool {
	hit := c.touch(id, size)
	c.hits.Observe(hit)
	return hit
}

// Warm performs the same state change as Access without recording
// statistics, for cache warm-up runs.
func (c *LRU) Warm(id FileID, size int64) bool {
	return c.touch(id, size)
}

func (c *LRU) touch(id FileID, size int64) bool {
	if size < 0 {
		panic(fmt.Sprintf("cache: negative size %d for file %d", size, id))
	}
	if el, ok := c.items[id]; ok {
		c.order.MoveToFront(el)
		return true
	}
	if size > c.capacity {
		return false // uncacheable; served straight from disk
	}
	for c.used+size > c.capacity {
		c.evictOldest()
	}
	el := c.order.PushFront(entry{id: id, size: size})
	c.items[id] = el
	c.used += size
	return false
}

// Evict removes the file if cached, returning whether it was present. The
// OnEvict callback fires as for capacity evictions.
func (c *LRU) Evict(id FileID) bool {
	el, ok := c.items[id]
	if !ok {
		return false
	}
	c.remove(el)
	return true
}

func (c *LRU) evictOldest() {
	el := c.order.Back()
	if el == nil {
		panic("cache: eviction from empty cache (size accounting bug)")
	}
	c.remove(el)
}

func (c *LRU) remove(el *list.Element) {
	e := el.Value.(entry)
	c.order.Remove(el)
	delete(c.items, e.id)
	c.used -= e.size
	c.evictions++
	if c.OnEvict != nil {
		c.OnEvict(e.id, e.size)
	}
}

// HitRate returns the hit fraction since the last ResetStats.
func (c *LRU) HitRate() float64 { return c.hits.Value() }

// Stats returns the raw hit/total counters.
func (c *LRU) Stats() stats.Ratio { return c.hits }

// Evictions returns the number of evictions since the last ResetStats.
func (c *LRU) Evictions() uint64 { return c.evictions }

// ResetStats zeroes hit/miss/eviction counters, preserving cache contents;
// call it at the end of warm-up.
func (c *LRU) ResetStats() {
	c.hits = stats.Ratio{}
	c.evictions = 0
}

// MostRecent returns up to n most-recently-used file ids, for diagnostics.
func (c *LRU) MostRecent(n int) []FileID {
	out := make([]FileID, 0, n)
	for el := c.order.Front(); el != nil && len(out) < n; el = el.Next() {
		out = append(out, el.Value.(entry).id)
	}
	return out
}
