package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	c := NewLRU(100)
	if c.Access(1, 40) {
		t.Fatal("first access must miss")
	}
	if !c.Access(1, 40) {
		t.Fatal("second access must hit")
	}
	if c.Used() != 40 || c.Len() != 1 {
		t.Fatalf("Used/Len = %d/%d, want 40/1", c.Used(), c.Len())
	}
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 40)
	c.Access(2, 40)
	c.Access(1, 40) // refresh 1; now 2 is oldest
	c.Access(3, 40) // evicts 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatalf("contents wrong: 1=%v 2=%v 3=%v",
			c.Contains(1), c.Contains(2), c.Contains(3))
	}
	if c.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Evictions())
	}
}

func TestEvictionCallback(t *testing.T) {
	c := NewLRU(50)
	var evicted []FileID
	c.OnEvict = func(id FileID, size int64) { evicted = append(evicted, id) }
	c.Access(1, 30)
	c.Access(2, 30) // evicts 1
	if len(evicted) != 1 || evicted[0] != 1 {
		t.Fatalf("evicted = %v, want [1]", evicted)
	}
}

func TestOversizeFileNeverCached(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 50)
	if c.Access(2, 1000) {
		t.Fatal("oversize access must miss")
	}
	if c.Contains(2) {
		t.Fatal("oversize file must not be cached")
	}
	if !c.Contains(1) {
		t.Fatal("oversize file must not evict others")
	}
}

func TestExplicitEvict(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 10)
	if !c.Evict(1) {
		t.Fatal("Evict of present file must return true")
	}
	if c.Evict(1) {
		t.Fatal("Evict of absent file must return false")
	}
	if c.Used() != 0 {
		t.Fatalf("Used = %d after evict", c.Used())
	}
}

func TestWarmDoesNotRecordStats(t *testing.T) {
	c := NewLRU(100)
	c.Warm(1, 40)
	if c.Stats().Total != 0 {
		t.Fatal("Warm must not record statistics")
	}
	if !c.Access(1, 40) {
		t.Fatal("warmed file must hit")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := NewLRU(100)
	c.Access(1, 40)
	c.ResetStats()
	if c.Stats().Total != 0 || c.Evictions() != 0 {
		t.Fatal("ResetStats must zero counters")
	}
	if !c.Contains(1) {
		t.Fatal("ResetStats must keep contents")
	}
}

func TestMostRecent(t *testing.T) {
	c := NewLRU(1000)
	c.Access(1, 10)
	c.Access(2, 10)
	c.Access(3, 10)
	got := c.MostRecent(2)
	if len(got) != 2 || got[0] != 3 || got[1] != 2 {
		t.Fatalf("MostRecent = %v, want [3 2]", got)
	}
}

func TestZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	if c.Access(1, 10) {
		t.Fatal("zero-capacity cache must always miss")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache must stay empty")
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLRU(-1) did not panic")
		}
	}()
	NewLRU(-1)
}

func TestNegativeSizePanics(t *testing.T) {
	c := NewLRU(10)
	defer func() {
		if recover() == nil {
			t.Fatal("Access with negative size did not panic")
		}
	}()
	c.Access(1, -5)
}

// Property: used bytes never exceed capacity, never go negative, and always
// equal the sum of the sizes of resident files.
func TestPropertyCapacityInvariant(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewLRU(1000)
		sizes := make(map[FileID]int64)
		for i := 0; i < int(n)+50; i++ {
			id := FileID(rng.Intn(40))
			size, ok := sizes[id]
			if !ok {
				size = int64(rng.Intn(300) + 1)
				sizes[id] = size
			}
			c.Access(id, size)
			if c.Used() > c.Capacity() || c.Used() < 0 {
				return false
			}
		}
		var sum int64
		for id, size := range sizes {
			if c.Contains(id) {
				sum += size
			}
		}
		return sum == c.Used()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cache behaves exactly like a reference model (slice-based
// LRU) for arbitrary access sequences.
func TestPropertyMatchesReferenceModel(t *testing.T) {
	type ref struct {
		order []FileID // front = MRU
		sizes map[FileID]int64
		cap   int64
	}
	refAccess := func(r *ref, id FileID, size int64) bool {
		for i, v := range r.order {
			if v == id {
				r.order = append(r.order[:i], r.order[i+1:]...)
				r.order = append([]FileID{id}, r.order...)
				return true
			}
		}
		if size > r.cap {
			return false
		}
		used := func() int64 {
			var u int64
			for _, v := range r.order {
				u += r.sizes[v]
			}
			return u
		}
		for used()+size > r.cap {
			r.order = r.order[:len(r.order)-1]
		}
		r.sizes[id] = size
		r.order = append([]FileID{id}, r.order...)
		return false
	}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewLRU(500)
		r := &ref{sizes: make(map[FileID]int64), cap: 500}
		catalog := make(map[FileID]int64)
		for i := 0; i < 300; i++ {
			id := FileID(rng.Intn(25))
			size, ok := catalog[id]
			if !ok {
				size = int64(rng.Intn(200) + 1)
				catalog[id] = size
			}
			if c.Access(id, size) != refAccess(r, id, size) {
				return false
			}
			if c.Len() != len(r.order) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := NewLRU(32 << 20)
	rng := rand.New(rand.NewSource(1))
	ids := make([]FileID, 10000)
	sizes := make([]int64, 10000)
	for i := range ids {
		ids[i] = FileID(rng.Intn(5000))
		sizes[i] = int64(rng.Intn(100000) + 1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ids)
		c.Access(ids[j], sizes[j])
	}
}
