package queuemodel

import (
	"container/list"
	"math"
	"testing"

	"repro/internal/shotnoise"
)

func snFixed() ShotNoise {
	return ShotNoise{DocRate: 25, MeanRequests: 50, Lifetime: 5}
}

func TestShotNoiseInvalid(t *testing.T) {
	bad := []ShotNoise{
		{},
		{DocRate: -1, MeanRequests: 1, Lifetime: 1},
		{DocRate: math.Inf(1), MeanRequests: 1, Lifetime: 1},
		{DocRate: 1, MeanRequests: 0, Lifetime: 1},
		{DocRate: 1, MeanRequests: 1, Lifetime: -2},
		{DocRate: 1, MeanRequests: 1, Lifetime: 1, WeightShape: 0.8},
		{DocRate: 1, MeanRequests: 1, Lifetime: 1, WeightShape: 1},
	}
	for i, s := range bad {
		if !math.IsNaN(s.RequestRate()) {
			t.Errorf("model %d: RequestRate accepted invalid params", i)
		}
		if !math.IsNaN(s.CharacteristicTime(100)) {
			t.Errorf("model %d: CharacteristicTime accepted invalid params", i)
		}
		if !math.IsNaN(s.LRUMiss(100)) {
			t.Errorf("model %d: LRUMiss accepted invalid params", i)
		}
	}
	good := snFixed()
	for _, x := range []float64{0, -5, math.Inf(1), math.NaN()} {
		if !math.IsNaN(good.CharacteristicTime(x)) {
			t.Errorf("CharacteristicTime(%v) accepted an out-of-domain cache size", x)
		}
	}
}

func TestShotNoiseRequestRate(t *testing.T) {
	if got, want := snFixed().RequestRate(), 25.0*50.0; got != want {
		t.Errorf("RequestRate = %v, want %v", got, want)
	}
}

// TestShotNoiseOccupancyRoundTrip: the characteristic time must invert the
// occupancy constraint — occ(T(x)) = x.
func TestShotNoiseOccupancyRoundTrip(t *testing.T) {
	for _, s := range []ShotNoise{snFixed(), {DocRate: 25, MeanRequests: 50, Lifetime: 5, WeightShape: 1.6}} {
		for _, x := range []float64{10, 150, 1000} {
			T := s.CharacteristicTime(x)
			if !(T > 0) || math.IsInf(T, 0) {
				t.Fatalf("CharacteristicTime(%v) = %v", x, T)
			}
			if got := s.occupancy(T); math.Abs(got-x)/x > 1e-6 {
				t.Errorf("occ(T(%v)) = %v, want the cache size back", x, got)
			}
		}
	}
}

// TestShotNoiseMissLimits: the miss ratio is 1 at a vanishing cache and
// approaches the cold-miss floor (1-e^-V)/V — one compulsory miss per
// document, V requests — as the cache outgrows the working set.
func TestShotNoiseMissLimits(t *testing.T) {
	s := snFixed()
	if m := s.LRUMiss(1e-6); m < 0.999 {
		t.Errorf("miss at a vanishing cache = %v, want ~1", m)
	}
	floor := -math.Expm1(-s.MeanRequests) / s.MeanRequests
	m := s.LRUMiss(1e9)
	if math.Abs(m-floor)/floor > 1e-3 {
		t.Errorf("miss at a huge cache = %v, want the cold-miss floor %v", m, floor)
	}
}

// TestShotNoiseMissMonotone: more cache never hurts.
func TestShotNoiseMissMonotone(t *testing.T) {
	for _, s := range []ShotNoise{snFixed(), {DocRate: 25, MeanRequests: 50, Lifetime: 5, WeightShape: 1.6}} {
		prev := math.Inf(1)
		for _, x := range []float64{5, 40, 320, 2560} {
			m := s.LRUMiss(x)
			if !(m >= 0 && m <= 1) {
				t.Fatalf("LRUMiss(%v) = %v outside [0,1]", x, m)
			}
			if m > prev+1e-12 {
				t.Errorf("LRUMiss(%v) = %v exceeds miss at the smaller cache %v", x, m, prev)
			}
			prev = m
		}
	}
}

// TestShotNoiseParetoApproachesFixed: as the Pareto shape grows the weight
// law collapses onto its mean and the analytic must converge to the
// fixed-weight closed form.
func TestShotNoiseParetoApproachesFixed(t *testing.T) {
	fixed := snFixed()
	wide := fixed
	wide.WeightShape = 200
	for _, x := range []float64{50, 150, 400} {
		a, b := fixed.LRUMiss(x), wide.LRUMiss(x)
		if math.Abs(a-b)/a > 0.02 {
			t.Errorf("cache %v: Pareto(shape 200) miss %v vs fixed-weight %v", x, b, a)
		}
	}
}

// TestPhi: the occupancy helper Phi(b) = EulerGamma + ln b + E1(b) — the
// series and continued-fraction branches must agree at the crossover, the
// small-b limit is b itself, and E1(1) matches the tabulated value.
func TestPhi(t *testing.T) {
	if got := phi(0); got != 0 {
		t.Errorf("phi(0) = %v", got)
	}
	if got := phi(1e-8); math.Abs(got-1e-8)/1e-8 > 1e-6 {
		t.Errorf("phi(b->0) = %v, want ~b", got)
	}
	// Continuity across the series/E1 crossover at b = 1.
	lo, hi := phi(1-1e-9), phi(1+1e-9)
	if math.Abs(lo-hi) > 1e-8 {
		t.Errorf("phi discontinuous at b=1: %v vs %v", lo, hi)
	}
	// Abramowitz & Stegun 5.1.20: E1(1) = 0.2193839344...
	if got, want := expintE1(1.0000001), 0.21938393439552026; math.Abs(got-want) > 1e-6 {
		t.Errorf("E1(1) = %v, want %v", got, want)
	}
	if got := phi(50); math.Abs(got-(0.5772156649015329+math.Log(50))) > 1e-3 {
		t.Errorf("phi(50) = %v, want ~EulerGamma+ln(50) (E1 negligible)", got)
	}
}

// simulateLRUMiss replays a shot-noise realization through an exact LRU of C
// documents and returns the observed miss ratio.
func simulateLRUMiss(p *shotnoise.Process, c int) float64 {
	pos := make(map[int32]*list.Element)
	l := list.New()
	misses := 0
	for _, id := range p.DocOf {
		if e, ok := pos[id]; ok {
			l.MoveToFront(e)
			continue
		}
		misses++
		pos[id] = l.PushFront(id)
		if l.Len() > c {
			back := l.Back()
			delete(pos, back.Value.(int32))
			l.Remove(back)
		}
	}
	return float64(misses) / float64(p.NumRequests())
}

// TestShotNoiseDifferential: the analytic against an exact LRU simulation of
// one long realization. Fixed weights have a closed form and agree to ~1%;
// Pareto weights (infinite variance at shape 1.6) get a loose band.
func TestShotNoiseDifferential(t *testing.T) {
	spec := shotnoise.Spec{Rate: 25, Horizon: 400, MeanRequests: 50, Lifetime: 5, Seed: 9}
	s := ShotNoise{DocRate: spec.Rate, MeanRequests: spec.MeanRequests, Lifetime: spec.Lifetime}
	p := shotnoise.MustGenerate(spec)
	for _, c := range []int{50, 150, 400, 1000} {
		sim := simulateLRUMiss(p, c)
		analytic := s.LRUMiss(float64(c))
		if rel := math.Abs(sim-analytic) / analytic; rel > 0.05 {
			t.Errorf("cache %d: simulated miss %v vs analytic %v (rel %.3f > 0.05)", c, sim, analytic, rel)
		}
	}

	spec.WeightShape = 1.6
	s.WeightShape = 1.6
	p = shotnoise.MustGenerate(spec)
	for _, c := range []int{150, 400} {
		sim := simulateLRUMiss(p, c)
		analytic := s.LRUMiss(float64(c))
		if rel := math.Abs(sim-analytic) / analytic; rel > 0.25 {
			t.Errorf("pareto cache %d: simulated miss %v vs analytic %v (rel %.3f > 0.25)", c, sim, analytic, rel)
		}
	}
}
