package queuemodel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/qnet"
)

func params(sizeKB float64) Params {
	p := DefaultParams()
	p.AvgFileKB = sizeKB
	return p
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.Nodes != 16 || p.Alpha != 1 || p.CacheBytes != 128<<20 {
		t.Fatalf("header defaults wrong: %+v", p)
	}
	// Spot-check the service-rate formulas of Table 1.
	if got := 1 / p.ParseTime(); math.Abs(got-6300) > 1e-9 {
		t.Errorf("mu_p = %v, want 6300", got)
	}
	if got := 1 / p.ForwardTime(); math.Abs(got-10000) > 1e-9 {
		t.Errorf("mu_f = %v, want 10000", got)
	}
	if got := 1 / p.NIInTime(); math.Abs(got-140000) > 1e-9 {
		t.Errorf("mu_i = %v, want 140000", got)
	}
	// mu_m at S=12: 1/(0.0001+0.001) = 909.09 ops/s
	if got := 1 / p.ReplyTime(12); math.Abs(got-1/0.0011) > 1e-6 {
		t.Errorf("mu_m(12KB) = %v", got)
	}
	// mu_d at S=10: 1/(0.028+0.001)
	if got := 1 / p.DiskTime(10); math.Abs(got-1/0.029) > 1e-6 {
		t.Errorf("mu_d(10KB) = %v", got)
	}
	// mu_o at S=128: 1/(3e-6+0.001)
	if got := 1 / p.NIOutTime(128); math.Abs(got-1/0.001003) > 1e-6 {
		t.Errorf("mu_o(128KB) = %v", got)
	}
	// mu_r at size=50: 10000 ops/s
	if got := 1 / p.RouterTime(50); math.Abs(got-10000) > 1e-6 {
		t.Errorf("mu_r(50KB) = %v", got)
	}
}

func TestValidate(t *testing.T) {
	good := params(20)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Nodes = 0 },
		func(p *Params) { p.Replication = -0.1 },
		func(p *Params) { p.Replication = 1.5 },
		func(p *Params) { p.AvgFileKB = 0 },
		func(p *Params) { p.CacheBytes = 0 },
		func(p *Params) { p.Alpha = -1 },
	}
	for i, mutate := range bad {
		p := params(20)
		mutate(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestHitRatesLiftsHitRate(t *testing.T) {
	p := params(8)
	for _, hlo := range []float64{0.2, 0.5, 0.8} {
		hlc, h := p.HitRates(hlo)
		if hlc < hlo {
			t.Errorf("Hlo=%v: Hlc=%v must be >= Hlo", hlo, hlc)
		}
		if h != 0 {
			t.Errorf("R=0 must give h=0, got %v", h)
		}
	}
}

func TestHitRatesWithReplication(t *testing.T) {
	p := params(8)
	p.Replication = 0.15
	hlc, h := p.HitRates(0.6)
	if h <= 0 || h >= 1 {
		t.Fatalf("h = %v, want in (0,1)", h)
	}
	if hlc <= 0.6 {
		t.Fatalf("Hlc = %v, want > Hlo", hlc)
	}
	// Full replication degenerates to the oblivious server: Clc = C.
	p.Replication = 1
	hlc, _ = p.HitRates(0.6)
	if math.Abs(hlc-0.6) > 0.02 {
		t.Fatalf("R=1 should give Hlc ~ Hlo, got %v", hlc)
	}
}

func TestHitRateEdges(t *testing.T) {
	p := params(8)
	if hlc, h := p.HitRates(0); hlc != 0 || h != 0 {
		t.Fatalf("Hlo=0 gave (%v,%v)", hlc, h)
	}
	if hlc, _ := p.HitRates(1); hlc != 1 {
		t.Fatalf("Hlo=1 gave Hlc=%v", hlc)
	}
}

func TestForwardFraction(t *testing.T) {
	p := params(8)
	if q := p.ForwardFraction(0); math.Abs(q-15.0/16.0) > 1e-12 {
		t.Fatalf("Q(h=0) = %v, want 15/16", q)
	}
	if q := p.ForwardFraction(1); q != 0 {
		t.Fatalf("Q(h=1) = %v, want 0", q)
	}
	p.Nodes = 1
	if q := p.ForwardFraction(0); q != 0 {
		t.Fatalf("single node must not forward, Q=%v", q)
	}
}

func TestObliviousBottlenecks(t *testing.T) {
	// Small files, hit rate 1: CPU bound.
	r := params(4).Oblivious(1)
	if r.Bottleneck != CPU {
		t.Fatalf("small files, H=1: bottleneck = %v, want cpu", r.Bottleneck)
	}
	// Low hit rate: disk bound.
	r = params(4).Oblivious(0.2)
	if r.Bottleneck != Disk {
		t.Fatalf("H=0.2: bottleneck = %v, want disk", r.Bottleneck)
	}
}

func TestThroughputKnownValue(t *testing.T) {
	// Hand-computed: oblivious, S=4KB, H=1. CPU demand = 1/6300 +
	// (0.0001 + 4/12000) = 0.00059206..., 16 nodes.
	r := params(4).Oblivious(1)
	cpu := 1/6300.0 + 0.0001 + 4.0/12000
	want := 16 / cpu
	if math.Abs(r.RequestsPerSec-want)/want > 1e-9 {
		t.Fatalf("throughput = %v, want %v", r.RequestsPerSec, want)
	}
}

func TestConsciousBeatsObliviousMidRange(t *testing.T) {
	p := params(8)
	for _, hlo := range []float64{0.5, 0.6, 0.7, 0.8} {
		c := p.Conscious(hlo).RequestsPerSec
		o := p.Oblivious(hlo).RequestsPerSec
		if c <= o {
			t.Errorf("Hlo=%v: conscious %v should beat oblivious %v", hlo, c, o)
		}
	}
}

// The headline modeling result: locality-conscious distribution on 16 nodes
// improves throughput by up to ~7x (Figure 5), and the improvement dips
// below 1 for very high hit rates and small files, where forwarding only
// adds overhead.
func TestFigure5PeakIncrease(t *testing.T) {
	hits, sizes := DefaultGrid()
	s := IncreaseSurface(DefaultParams(), hits, sizes)
	peak, atHit, atSize := s.Max()
	if peak < 5.5 || peak > 8.5 {
		t.Fatalf("peak increase = %.2f at (H=%v, S=%v), paper reports ~7", peak, atHit, atSize)
	}
	if atHit < 0.75 {
		t.Errorf("peak at Hlo=%v, expected high hit rates", atHit)
	}
	if atSize > 32 {
		t.Errorf("peak at S=%vKB, expected small files", atSize)
	}
	// Near Hlo=1 with small files the conscious server pays forwarding for
	// nothing: ratio slightly below 1.
	if v := s.At(1.0, 4); v >= 1 {
		t.Errorf("increase at (1.0, 4KB) = %v, want < 1", v)
	}
}

// Figures 3/4: absolute throughput peaks near 2.5e4 requests/s at small
// files and high hit rates.
func TestFigure34PeakLevels(t *testing.T) {
	hits, sizes := DefaultGrid()
	fig3, _, _ := ObliviousSurface(DefaultParams(), hits, sizes).Max()
	fig4, _, _ := ConsciousSurface(DefaultParams(), hits, sizes).Max()
	if fig3 < 20000 || fig3 > 35000 {
		t.Errorf("figure 3 peak = %v, paper plots ~2.5e4", fig3)
	}
	if fig4 < 18000 || fig4 > 30000 {
		t.Errorf("figure 4 peak = %v, paper plots ~2.5e4", fig4)
	}
}

// Section 3.2: "larger memories reduce the throughput benefit of
// considering locality just about everywhere in the parameter space",
// though significant gains remain. The gain at the exact peak point is
// CPU-bound under the published parameters and does not move; the rest of
// the surface does, so we compare the mean gain over the grid and check
// that large gains survive at 512 MB.
func TestMemorySweepReducesGain(t *testing.T) {
	hits, sizes := DefaultGrid()
	base := DefaultParams()
	big := base
	big.CacheBytes = 512 << 20
	s128 := IncreaseSurface(base, hits, sizes)
	s512 := IncreaseSurface(big, hits, sizes)
	mean := func(s Surface) float64 {
		var sum float64
		var n int
		for _, row := range s.Values {
			for _, v := range row {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	m128, m512 := mean(s128), mean(s512)
	if m512 >= m128 {
		t.Fatalf("512MB mean gain %v should be below 128MB mean gain %v", m512, m128)
	}
	peak512, _, _ := s512.Max()
	if peak512 < 5 {
		t.Errorf("512MB peak = %v, paper reports gains still peaking around 6.5", peak512)
	}
}

// Replication reduces forwarding (Q) and trades total cache for copies.
func TestReplicationEffects(t *testing.T) {
	p := params(8)
	p.Replication = 0.15
	_, h := p.HitRates(0.7)
	q15 := p.ForwardFraction(h)
	p0 := params(8)
	_, h0 := p0.HitRates(0.7)
	q0 := p0.ForwardFraction(h0)
	if q15 >= q0 {
		t.Fatalf("15%% replication should cut forwarding: Q=%v vs %v", q15, q0)
	}
}

// Property: throughput bounds are positive, and monotone in the obvious
// directions (more nodes never hurts; higher hit rate never hurts;
// larger files never help).
func TestPropertyThroughputMonotonic(t *testing.T) {
	prop := func(hRaw, sRaw uint16, nRaw uint8) bool {
		h := float64(hRaw) / 65535
		s := 4 + 124*float64(sRaw)/65535
		n := int(nRaw%16) + 1
		p := params(s)
		p.Nodes = n
		base := p.Oblivious(h).RequestsPerSec
		if base <= 0 || math.IsInf(base, 0) {
			return false
		}
		p2 := p
		p2.Nodes = n + 1
		if p2.Oblivious(h).RequestsPerSec < base-1e-9 {
			return false
		}
		if h < 0.99 && p.Oblivious(math.Min(1, h+0.01)).RequestsPerSec < base-1e-9 {
			return false
		}
		p3 := p
		p3.AvgFileKB = s + 1
		return p3.Oblivious(h).RequestsPerSec <= base+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Conscious never returns a lower hit rate than Oblivious uses,
// and its throughput exceeds oblivious whenever forwarding is free (h=1).
func TestPropertyConsciousHitDominance(t *testing.T) {
	prop := func(hRaw uint16, sRaw uint16) bool {
		h := 0.05 + 0.9*float64(hRaw)/65535
		s := 4 + 60*float64(sRaw)/65535
		p := params(s)
		hlc, _ := p.HitRates(h)
		return hlc >= h-1e-9 && hlc <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyBehavior(t *testing.T) {
	p := params(16)
	cap := p.Oblivious(0.8).RequestsPerSec
	l1 := p.Latency(cap*0.1, 0.8, 0)
	l2 := p.Latency(cap*0.9, 0.8, 0)
	if l1 <= 0 || l2 <= l1 {
		t.Fatalf("latency must grow with load: %v -> %v", l1, l2)
	}
	if !math.IsInf(p.Latency(cap*1.01, 0.8, 0), 1) {
		t.Fatal("latency beyond saturation must be +Inf")
	}
	if p.Latency(0, 0.8, 0) != 0 {
		t.Fatal("zero load should report zero latency")
	}
}

func TestCenterString(t *testing.T) {
	if CPU.String() != "cpu" || Router.String() != "router" {
		t.Fatal("center names wrong")
	}
	if !strings.Contains(Center(99).String(), "99") {
		t.Fatal("unknown center should render its number")
	}
}

func TestSurfaceHelpers(t *testing.T) {
	hits := []float64{0, 0.5, 1}
	sizes := []float64{4, 64}
	s := ObliviousSurface(DefaultParams(), hits, sizes)
	if len(s.Values) != 3 || len(s.Values[0]) != 2 {
		t.Fatalf("surface shape wrong")
	}
	// At() snaps to the nearest grid point.
	if s.At(0.49, 5) != s.Values[1][0] {
		t.Fatal("At() did not snap to nearest point")
	}
	side := s.SideView()
	if len(side) != 3 {
		t.Fatal("side view length wrong")
	}
	var buf strings.Builder
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hit_rate") || len(strings.Split(buf.String(), "\n")) < 4 {
		t.Fatal("CSV output malformed")
	}
}

// Per-trace model curves must scale with node count and saturate: the NASA
// workload (large files) is CPU-transmit bound around 4000 req/s at 16
// nodes under the published parameters.
func TestTraceModelNASALevel(t *testing.T) {
	p := DefaultParams()
	p.CacheBytes = 32 << 20
	p.Replication = 0.15
	p.Alpha = 0.91
	p.AvgFileKB = 47.0
	r := p.ConsciousForCatalog(5500)
	if r.RequestsPerSec < 3000 || r.RequestsPerSec > 4500 {
		t.Fatalf("NASA model bound = %v, expected ~3800", r.RequestsPerSec)
	}
	// And it grows with N below saturation.
	p.Nodes = 8
	r8 := p.ConsciousForCatalog(5500)
	if r8.RequestsPerSec >= r.RequestsPerSec {
		t.Fatalf("8-node bound %v should be below 16-node bound %v",
			r8.RequestsPerSec, r.RequestsPerSec)
	}
}

func BenchmarkConscious(b *testing.B) {
	p := params(8)
	for i := 0; i < b.N; i++ {
		p.Conscious(0.7)
	}
}

func BenchmarkIncreaseSurface(b *testing.B) {
	hits, sizes := DefaultGrid()
	p := DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IncreaseSurface(p, hits, sizes)
	}
}

func TestUtilizationsAtCapacity(t *testing.T) {
	p := params(16)
	r := p.Oblivious(0.8)
	utils := p.Utilizations(r.RequestsPerSec, 0.8, 0)
	// At the bound, the bottleneck center sits at utilization 1 and no
	// center exceeds it.
	if math.Abs(utils[r.Bottleneck]-1) > 1e-9 {
		t.Fatalf("bottleneck %v utilization = %v, want 1", r.Bottleneck, utils[r.Bottleneck])
	}
	for c, u := range utils {
		if u > 1+1e-9 {
			t.Errorf("center %v exceeds saturation: %v", c, u)
		}
	}
	// At half the load, every utilization halves.
	half := p.Utilizations(r.RequestsPerSec/2, 0.8, 0)
	for c := range utils {
		if math.Abs(half[c]-utils[c]/2) > 1e-9 {
			t.Errorf("center %v does not scale linearly", c)
		}
	}
}

// Cross-validation: the simulator's FCFS resources and the model's M/M/1
// formulas agree on utilization by construction; this pins the shared
// demand arithmetic. A request stream at rate lambda with hit rate h puts
// (1-h)*DiskTime(S) demand on the disk; the bound solver must place the
// disk at utilization (lambda/N)*(1-h)*DiskTime(S).
func TestDemandArithmetic(t *testing.T) {
	p := params(32)
	lambda := 1000.0
	utils := p.Utilizations(lambda, 0.7, 0)
	wantDisk := lambda / float64(p.Nodes) * 0.3 * p.DiskTime(32)
	if math.Abs(utils[Disk]-wantDisk) > 1e-12 {
		t.Fatalf("disk utilization = %v, want %v", utils[Disk], wantDisk)
	}
	wantRouter := lambda * p.RouterTime(p.ReqKB+32)
	if math.Abs(utils[Router]-wantRouter) > 1e-12 {
		t.Fatalf("router utilization = %v, want %v", utils[Router], wantRouter)
	}
}

// Cross-validation against the general Jackson-network solver: encode the
// Figure 2 cluster as a qnet network (one aggregated M/M/N station per
// center type, service rate = 1/per-request demand) and check that its
// capacity equals this package's bottleneck throughput.
func TestBoundMatchesQnetCapacity(t *testing.T) {
	for _, tc := range []struct {
		hlo  float64
		size float64
	}{{0.5, 8}, {0.8, 32}, {0.95, 4}, {0.3, 96}} {
		p := params(tc.size)
		r := p.Conscious(tc.hlo)
		d := r.Demands

		var stations []qnet.Station
		var arrivals []float64
		for c := Center(0); c < numCenters; c++ {
			demand := d.PerRequest[c]
			if demand <= 0 {
				continue
			}
			servers := p.Nodes
			if c == Router {
				servers = 1
			}
			stations = append(stations, qnet.Station{
				Name:    c.String(),
				Rate:    1 / demand,
				Servers: servers,
			})
			arrivals = append(arrivals, 1) // one visit per request
		}
		routing := make([][]float64, len(stations))
		for i := range routing {
			routing[i] = make([]float64, len(stations))
		}
		n := &qnet.Network{Stations: stations, Routing: routing, Arrivals: arrivals}
		cap, err := n.Capacity()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cap-r.RequestsPerSec)/r.RequestsPerSec > 1e-9 {
			t.Errorf("Hlo=%v S=%v: qnet capacity %v != model bound %v",
				tc.hlo, tc.size, cap, r.RequestsPerSec)
		}
	}
}
