package queuemodel

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func uniformProfiles(n int) []cluster.Profile {
	out := make([]cluster.Profile, n)
	for i := range out {
		out[i] = cluster.DefaultProfile()
	}
	return out
}

// TestHeterogeneousBoundReducesToBound: with uniform baseline profiles the
// heterogeneous bound must reproduce the homogeneous Section 3 bound —
// same throughput (to summation rounding) and same bottleneck — across
// hit rates that exercise disk-, CPU-, and router-bound regimes.
func TestHeterogeneousBoundReducesToBound(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 8.7
	profiles := uniformProfiles(p.Nodes)
	for _, tc := range []struct{ hit, q float64 }{
		{0.3, 0}, {0.7, 0.1}, {0.97, 0.4}, {1.0, 0.9},
	} {
		want := p.Bound(tc.hit, tc.q)
		got := p.HeterogeneousBound(profiles, tc.hit, tc.q)
		if rel := math.Abs(got.RequestsPerSec-want.RequestsPerSec) / want.RequestsPerSec; rel > 1e-12 {
			t.Errorf("hit %v q %v: hetero %v vs homogeneous %v (rel %v)",
				tc.hit, tc.q, got.RequestsPerSec, want.RequestsPerSec, rel)
		}
		if got.Bottleneck != want.Bottleneck {
			t.Errorf("hit %v q %v: bottleneck %v, want %v", tc.hit, tc.q, got.Bottleneck, want.Bottleneck)
		}
	}
}

// TestHeterogeneousBoundScalesWithSpeed: doubling every node's CPU and
// disk speed doubles a non-router-bound cluster's capacity exactly.
func TestHeterogeneousBoundScalesWithSpeed(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 6
	p.Nodes = 4
	p.RouterKBps = 1e12
	base := p.HeterogeneousBound(uniformProfiles(4), 0.6, 0.2)
	fast := make([]cluster.Profile, 4)
	for i := range fast {
		fast[i] = cluster.Profile{CPUSpeed: 2, DiskSpeed: 2, LinkKBps: 1e12}
	}
	got := p.HeterogeneousBound(fast, 0.6, 0.2)
	// The NI-out fixed cost does not scale with link rate, so allow a hair
	// of slack beyond exact doubling.
	if rel := math.Abs(got.RequestsPerSec-2*base.RequestsPerSec) / (2 * base.RequestsPerSec); rel > 0.02 {
		t.Errorf("2x cluster bound %v, want ~2x %v", got.RequestsPerSec, base.RequestsPerSec)
	}
	if got.RequestsPerSec <= base.RequestsPerSec {
		t.Errorf("2x cluster no faster: %v vs %v", got.RequestsPerSec, base.RequestsPerSec)
	}
}

// TestHeterogeneousBoundSlowNode: one half-speed node in an otherwise
// uniform disk-bound cluster costs exactly half a node of capacity (the
// bound sums per-node capacities — no convoy effect at the bound level)
// and is reported as the bottleneck node.
func TestHeterogeneousBoundSlowNode(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 6
	p.Nodes = 8
	profiles := uniformProfiles(8)
	profiles[5] = cluster.Profile{CPUSpeed: 0.5, DiskSpeed: 0.5}
	uniform := p.HeterogeneousBound(uniformProfiles(8), 0.5, 0.2)
	got := p.HeterogeneousBound(profiles, 0.5, 0.2)
	perNode := uniform.RequestsPerSec / 8
	want := uniform.RequestsPerSec - perNode/2
	if rel := math.Abs(got.RequestsPerSec-want) / want; rel > 1e-9 {
		t.Errorf("slow-node bound %v, want %v", got.RequestsPerSec, want)
	}
	if got.BottleneckNode != 5 {
		t.Errorf("bottleneck node %d, want the slow node 5", got.BottleneckNode)
	}
}

// TestHeterogeneousBoundRouterCap: the shared router caps the sum of
// per-node capacities no matter how fast the nodes are.
func TestHeterogeneousBoundRouterCap(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 6
	p.Nodes = 4
	fast := make([]cluster.Profile, 4)
	for i := range fast {
		fast[i] = cluster.Profile{CPUSpeed: 100, DiskSpeed: 100}
	}
	got := p.HeterogeneousBound(fast, 1.0, 0)
	routerCap := 1 / p.RouterTime(p.ReqKB+p.AvgFileKB)
	if got.Bottleneck != Router || got.BottleneckNode != -1 {
		t.Errorf("bottleneck = %v node %d, want router", got.Bottleneck, got.BottleneckNode)
	}
	if math.Abs(got.RequestsPerSec-routerCap) > 1e-9*routerCap {
		t.Errorf("router-capped bound %v, want %v", got.RequestsPerSec, routerCap)
	}
}

// TestHeterogeneousConsciousCacheAlgebra: with uniform memories the
// generalized cache algebra must reproduce the homogeneous
// locality-conscious bound; shrinking one node's memory can only lower
// the hit rate (the replicated set shrinks to fit the smallest node).
func TestHeterogeneousConsciousCacheAlgebra(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 6
	p.Nodes = 8
	p.Replication = 0.2
	p.CacheBytes = 32 << 20
	const files = 200000

	want := p.ConsciousForCatalog(files)
	got := p.HeterogeneousConsciousForCatalog(uniformProfiles(8), files)
	if rel := math.Abs(got.RequestsPerSec-want.RequestsPerSec) / want.RequestsPerSec; rel > 1e-12 {
		t.Errorf("uniform hetero conscious %v vs homogeneous %v", got.RequestsPerSec, want.RequestsPerSec)
	}
	if math.Abs(got.Hit-want.Hit) > 1e-12 {
		t.Errorf("uniform hetero hit %v vs homogeneous %v", got.Hit, want.Hit)
	}

	mixed := uniformProfiles(8)
	mixed[0] = cluster.Profile{CacheBytes: 8 << 20}
	small := p.HeterogeneousConsciousForCatalog(mixed, files)
	if small.Hit >= got.Hit {
		t.Errorf("shrinking one cache did not lower the hit rate: %v >= %v", small.Hit, got.Hit)
	}
}

// TestNodeCapacitiesLinkScaling: a node with a slower NI line rate gets a
// proportionally slower size-dependent NI-out demand, and a rate above
// the Table 1 baseline does not accelerate past it.
func TestNodeCapacitiesLinkScaling(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 64 // big files so NI-out matters
	slow := p.nodeDemands(cluster.Profile{LinkKBps: p.NIOutKBps / 2}, 1, 0)
	base := p.nodeDemands(cluster.DefaultProfile(), 1, 0)
	fast := p.nodeDemands(cluster.Profile{LinkKBps: 10 * p.NIOutKBps}, 1, 0)
	if slow.PerRequest[NIOut] <= base.PerRequest[NIOut] {
		t.Errorf("half-rate NI demand %v not above baseline %v", slow.PerRequest[NIOut], base.PerRequest[NIOut])
	}
	if fast.PerRequest[NIOut] != base.PerRequest[NIOut] {
		t.Errorf("above-baseline link changed NI demand: %v vs %v", fast.PerRequest[NIOut], base.PerRequest[NIOut])
	}
}
