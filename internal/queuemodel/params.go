// Package queuemodel implements the analytic model of Section 3 of the
// paper: an open queuing network of M/M/1 service centers (router, and per
// node the network interfaces, CPU, and disk) that bounds the throughput of
// locality-oblivious and locality-conscious cluster-based network servers.
//
// The model assumes perfect load balance and no cache replacement, so the
// throughput it computes is an upper bound: the maximum request rate at
// which no service center exceeds full utilization. All parameters and
// default values follow Table 1 of the paper.
package queuemodel

import (
	"fmt"

	"repro/internal/zipf"
)

// Params collects the model parameters of Table 1. Sizes are in KB to match
// the paper's service-rate formulas; memory is in bytes.
type Params struct {
	Nodes       int     // N: number of nodes
	Replication float64 // R: fraction of each memory used for replication
	Alpha       float64 // Zipf constant
	CacheBytes  int64   // C: main-memory cache per node
	AvgFileKB   float64 // S: average size of requested files (KB)
	ReqKB       float64 // size of an inbound request message (KB)

	// Service-center constants (Table 1).
	RouterKBps  float64 // router transfer rate: mu_r = RouterKBps/size ops/s
	NIInRate    float64 // mu_i: request service rate at the NI (ops/s)
	ParseRate   float64 // mu_p: request read/parse rate (ops/s)
	ForwardRate float64 // mu_f: request forwarding rate (ops/s)
	ReplyFixed  float64 // mu_m = 1/(ReplyFixed + S/ReplyKBps)
	ReplyKBps   float64
	DiskFixed   float64 // mu_d = 1/(DiskFixed + S/DiskKBps)
	DiskKBps    float64
	NIOutFixed  float64 // mu_o = 1/(NIOutFixed + S/NIOutKBps)
	NIOutKBps   float64
}

// DefaultParams returns the default values of Table 1: a 16-node cluster
// with 128 MB memories, a 4 Gbit/s router, 1 Gbit/s full-duplex links, the
// 14 ms / 10 MB/s disk of the LARD study, and CPU costs from the Flash and
// LARD papers.
func DefaultParams() Params {
	return Params{
		Nodes:       16,
		Replication: 0,
		Alpha:       1,
		CacheBytes:  128 << 20,
		AvgFileKB:   0, // must be set per workload
		ReqKB:       0.5,
		RouterKBps:  500000,
		NIInRate:    140000,
		ParseRate:   6300,
		ForwardRate: 10000,
		ReplyFixed:  0.0001,
		ReplyKBps:   12000,
		DiskFixed:   0.028,
		DiskKBps:    10000,
		NIOutFixed:  0.000003,
		NIOutKBps:   128000,
	}
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	switch {
	case p.Nodes < 1:
		return fmt.Errorf("queuemodel: need at least one node, got %d", p.Nodes)
	case p.Replication < 0 || p.Replication > 1:
		return fmt.Errorf("queuemodel: replication %v outside [0,1]", p.Replication)
	case p.AvgFileKB <= 0:
		return fmt.Errorf("queuemodel: average file size must be positive, got %v", p.AvgFileKB)
	case p.CacheBytes <= 0:
		return fmt.Errorf("queuemodel: cache size must be positive, got %d", p.CacheBytes)
	case p.Alpha < 0:
		return fmt.Errorf("queuemodel: alpha must be >= 0, got %v", p.Alpha)
	}
	return nil
}

// Per-operation service times in seconds.

// ParseTime is the CPU time to read and parse one request (1/mu_p).
func (p Params) ParseTime() float64 { return 1 / p.ParseRate }

// ForwardTime is the CPU time to forward one request (1/mu_f).
func (p Params) ForwardTime() float64 { return 1 / p.ForwardRate }

// ReplyTime is the CPU time to send a locally-cached reply of s KB (1/mu_m).
func (p Params) ReplyTime(sKB float64) float64 { return p.ReplyFixed + sKB/p.ReplyKBps }

// DiskTime is the disk time to fetch a file of s KB, including the
// directory access (1/mu_d).
func (p Params) DiskTime(sKB float64) float64 { return p.DiskFixed + sKB/p.DiskKBps }

// NIInTime is the network-interface time to receive one request (1/mu_i).
func (p Params) NIInTime() float64 { return 1 / p.NIInRate }

// NIOutTime is the network-interface time to send a reply of s KB (1/mu_o).
func (p Params) NIOutTime(sKB float64) float64 { return p.NIOutFixed + sKB/p.NIOutKBps }

// RouterTime is the router time to move s KB (1/mu_r with size = s).
func (p Params) RouterTime(sKB float64) float64 { return sKB / p.RouterKBps }

// cachedFiles returns how many average-size files fit in capacity bytes.
func (p Params) cachedFiles(capacity float64) int64 {
	n := int64(capacity / (p.AvgFileKB * 1024))
	if n < 0 {
		n = 0
	}
	return n
}

// TotalConsciousCache returns Clc = N*(1-R)*C + R*C bytes: the effective
// cache of a locality-conscious server that replicates an R fraction.
func (p Params) TotalConsciousCache() float64 {
	c := float64(p.CacheBytes)
	return float64(p.Nodes)*(1-p.Replication)*c + p.Replication*c
}

// HitRates derives the model's three hit rates from the locality-oblivious
// hit rate Hlo, following the paper: the catalog size f is solved from
// Hlo = z(Clo/S, f); then Hlc = z(Clc/S, f) and the replicated-file hit
// rate h = z(R*C/S, f).
func (p Params) HitRates(hlo float64) (hlc, h float64) {
	if hlo < 0 || hlo > 1 {
		panic(fmt.Sprintf("queuemodel: Hlo %v outside [0,1]", hlo))
	}
	nLo := p.cachedFiles(float64(p.CacheBytes))
	if nLo < 1 {
		nLo = 1
	}
	if hlo == 0 {
		// Degenerate: an infinite catalog. No locality benefit in hit rate.
		return 0, 0
	}
	f := zipf.SolveFiles(p.Alpha, nLo, hlo)
	return p.hitRatesForCatalog(f)
}

// HitRatesForCatalog computes (Hlo, Hlc, h) directly from a known catalog
// size, as used for the per-trace model curves of Figures 7-10.
func (p Params) HitRatesForCatalog(files int64) (hlo, hlc, h float64) {
	hlc, h = p.hitRatesForCatalog(files)
	hlo = zipf.Z(p.Alpha, p.cachedFiles(float64(p.CacheBytes)), files)
	return hlo, hlc, h
}

func (p Params) hitRatesForCatalog(files int64) (hlc, h float64) {
	nLc := p.cachedFiles(p.TotalConsciousCache())
	nRep := p.cachedFiles(p.Replication * float64(p.CacheBytes))
	hlc = zipf.Z(p.Alpha, nLc, files)
	h = zipf.Z(p.Alpha, nRep, files)
	return hlc, h
}

// ForwardFraction returns Q = (N-1)*(1-h)/N: the fraction of requests a
// locality-conscious server must forward, given the replicated hit rate h.
func (p Params) ForwardFraction(h float64) float64 {
	return float64(p.Nodes-1) * (1 - h) / float64(p.Nodes)
}
