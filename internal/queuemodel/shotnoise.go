package queuemodel

import "math"

// Shot-noise (cluster point process) LRU miss probability, after Olmos,
// Graham & Simonian (Cache Miss Estimation for Non-Stationary Request
// Processes, arXiv:1511.07392).
//
// Documents arrive as a Poisson process of rate gamma; a document of weight
// V emits requests as an inhomogeneous Poisson process with intensity
// V*exp(-a/L)/L at age a (mean lifetime L, expected total volume V). The
// Che/characteristic-time approximation carries over to this non-stationary
// input: a request at age a hits iff the same document was requested within
// the last T time units, which for the document's own Poisson stream has
// probability 1 - exp(-V*(H(a)-H(a-T))) with H the profile CDF
// H(a) = 1 - exp(-a/L).
//
// For the exponential profile both per-document integrals reduce cleanly.
// Writing q = H(T) = 1 - exp(-T/L):
//
//   misses per document  = (1 - exp(-V*q)) / q
//   miss ratio           = E[(1 - exp(-V*q))/q] / E[V]
//
// (substitute u = H(a) on a <= T and w = exp(-a/L) on a > T; both pieces
// integrate to (1 - exp(-V*q)) scaled by 1 and 1/(e^{T/L}-1), and their sum
// telescopes to 1/q). The characteristic time T is fixed by the cache
// occupancy constraint — the expected number of documents requested within
// the last T equals the cache capacity x:
//
//   x = gamma * L * E[ I1(T/L, V) + Phi(V*q) ]
//   I1(tau, V) = Int_0^tau (1 - exp(-V*(1-e^{-s}))) ds
//   Phi(b)     = Int_0^1 (1 - e^{-b*w})/w dw = EulerGamma + ln b + E1(b)
//
// The weight law is either deterministic (WeightShape 0, the closed-form
// case the conformance tests pin) or Pareto with mean MeanRequests
// (WeightShape > 1), in which case the expectations are integrated
// numerically over the weight distribution.
//
// Stationary limit: as L -> infinity with the per-document request rate
// lambda = V/L held fixed, q -> T/L and the miss ratio of an equal-rate
// population recovers the Che fixed-population result — the bridge to the
// Ji/Quan/Tan reference of lru.go that the conformance suite asserts on
// long-lifetime synthesized traces.

// ShotNoise parameterizes the analytic model; fields mirror shotnoise.Spec.
type ShotNoise struct {
	DocRate      float64 // document arrival rate gamma (> 0)
	MeanRequests float64 // E[V], expected requests per document (> 0)
	Lifetime     float64 // mean of the exponential intensity profile (> 0)
	WeightShape  float64 // 0: fixed weights; > 1: Pareto with mean MeanRequests
}

// valid reports whether the parameters are in the model's domain.
func (s ShotNoise) valid() bool {
	return s.DocRate > 0 && !math.IsInf(s.DocRate, 0) &&
		s.MeanRequests > 0 && !math.IsInf(s.MeanRequests, 0) &&
		s.Lifetime > 0 && !math.IsInf(s.Lifetime, 0) &&
		(s.WeightShape == 0 || s.WeightShape > 1)
}

// RequestRate returns the long-run aggregate request rate gamma * E[V].
func (s ShotNoise) RequestRate() float64 {
	if !s.valid() {
		return math.NaN()
	}
	return s.DocRate * s.MeanRequests
}

// CharacteristicTime solves the occupancy constraint for the Che
// characteristic time T of an LRU cache holding x documents.
func (s ShotNoise) CharacteristicTime(x float64) float64 {
	if !s.valid() || !(x > 0) || math.IsInf(x, 0) {
		return math.NaN()
	}
	occ := func(T float64) float64 { return s.occupancy(T) }
	lo, hi := 0.0, s.Lifetime
	for occ(hi) < x {
		lo = hi
		hi *= 2
		if math.IsInf(hi, 0) {
			return math.Inf(1)
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if occ(mid) < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// LRUMiss returns the model's expected miss ratio for an LRU cache holding
// x documents: E[(1-exp(-V*q))/q] / E[V] at the characteristic time fixed
// by the occupancy constraint.
func (s ShotNoise) LRUMiss(x float64) float64 {
	T := s.CharacteristicTime(x)
	if math.IsNaN(T) {
		return math.NaN()
	}
	if math.IsInf(T, 1) {
		T = math.MaxFloat64 // cache bigger than the whole stationary universe
	}
	q := -math.Expm1(-T / s.Lifetime)
	miss := s.expectWeight(func(v float64) float64 {
		return -math.Expm1(-v*q) / q
	})
	return math.Min(miss/s.MeanRequests, 1)
}

// occupancy returns the expected number of documents requested within the
// last T time units — the cache contents under the Che approximation.
func (s ShotNoise) occupancy(T float64) float64 {
	if T <= 0 {
		return 0
	}
	tau := T / s.Lifetime
	q := -math.Expm1(-tau)
	perDoc := s.expectWeight(func(v float64) float64 {
		head := adaptiveSimpson(func(u float64) float64 {
			return -math.Expm1(v * math.Expm1(-u)) // 1 - exp(-v*(1-e^-u))
		}, 0, tau, 1e-8, 40)
		return head + phi(v*q)
	})
	return s.DocRate * s.Lifetime * perDoc
}

// expectWeight integrates f over the weight law: a point mass for fixed
// weights, or the Pareto(shape) law with mean MeanRequests via the
// substitution V = xm * e^(y/shape), y ~ Exp(1).
func (s ShotNoise) expectWeight(f func(v float64) float64) float64 {
	if s.WeightShape == 0 {
		return f(s.MeanRequests)
	}
	k := s.WeightShape
	xm := s.MeanRequests * (k - 1) / k
	return adaptiveSimpson(func(y float64) float64 {
		return f(xm*math.Exp(y/k)) * math.Exp(-y)
	}, 0, 40, 1e-8, 40)
}

// phi returns Int_0^1 (1 - e^{-b*w})/w dw = EulerGamma + ln(b) + E1(b).
func phi(b float64) float64 {
	if b <= 0 {
		return 0
	}
	if b <= 1 {
		// Direct alternating series: sum (-1)^{k+1} b^k / (k * k!).
		sum, term := 0.0, 1.0
		for k := 1; k <= 30; k++ {
			term *= b / float64(k)
			add := term / float64(k)
			if k%2 == 0 {
				add = -add
			}
			sum += add
			if term/float64(k) < 1e-17 {
				break
			}
		}
		return sum
	}
	const eulerGamma = 0.5772156649015328606
	return eulerGamma + math.Log(b) + expintE1(b)
}

// expintE1 evaluates the exponential integral E1(x) for x > 1 by the
// modified Lentz continued fraction (Numerical Recipes expint, n=1).
func expintE1(x float64) float64 {
	const tiny = 1e-300
	b := x + 1
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 200; i++ {
		a := -float64(i) * float64(i)
		b += 2
		d = 1 / (a*d + b)
		c = b + a/c
		del := c * d
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h * math.Exp(-x)
}

// adaptiveSimpson integrates f over [a, b] with the classic recursive
// Simpson refinement to the given absolute tolerance.
func adaptiveSimpson(f func(float64) float64, a, b, tol float64, depth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	s := (b - a) / 6 * (fa + 4*fc + fb)
	return simpsonStep(f, a, b, fa, fb, fc, s, tol, depth)
}

func simpsonStep(f func(float64) float64, a, b, fa, fb, fc, whole, tol float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := (c - a) / 6 * (fa + 4*fl + fc)
	right := (b - c) / 6 * (fc + 4*fr + fb)
	if depth <= 0 || math.Abs(left+right-whole) < 15*tol {
		return left + right + (left+right-whole)/15
	}
	return simpsonStep(f, a, c, fa, fc, fl, left, tol/2, depth-1) +
		simpsonStep(f, c, b, fc, fb, fr, right, tol/2, depth-1)
}
