package queuemodel

import (
	"math"
	"testing"
)

// TestLRUAsymptoticMatchesCheApproximation pins the closed form against the
// numerically solved finite-catalog Che approximation where the theorem's
// regime is sharp (1 << x << m and a thin Zipf tail).
func TestLRUAsymptoticMatchesCheApproximation(t *testing.T) {
	for _, tc := range []struct {
		alpha float64
		m     int
		x     float64
	}{
		{1.5, 200000, 500},
		{1.7, 200000, 1000},
		{2.0, 200000, 1000},
	} {
		got := LRUZipfMissAsymptotic(tc.alpha, tc.m, tc.x)
		ref := LRUZipfMissChe(tc.alpha, tc.m, tc.x)
		if rel := math.Abs(got-ref) / ref; rel > 0.05 {
			t.Errorf("alpha=%v m=%d x=%v: asymptotic %.5f vs Che %.5f (rel %.3f)",
				tc.alpha, tc.m, tc.x, got, ref, rel)
		}
	}
}

// TestLRUAsymptoticConvergesWithCatalog: the closed form drops the
// catalog's truncated tail mass (~ c*m^(1-alpha)/(alpha-1)), so its gap to
// the finite-m Che reference must shrink as the catalog grows at fixed
// cache size — the m -> infinity limit the theorem takes.
func TestLRUAsymptoticConvergesWithCatalog(t *testing.T) {
	alpha, x := 1.5, 2000.0
	rel := func(m int) float64 {
		got := LRUZipfMissAsymptotic(alpha, m, x)
		ref := LRUZipfMissChe(alpha, m, x)
		return math.Abs(got-ref) / ref
	}
	small, large := rel(200000), rel(2000000)
	if large >= small {
		t.Fatalf("gap must shrink with the catalog: m=2e5 rel %.4f, m=2e6 rel %.4f", small, large)
	}
	if large > 0.05 {
		t.Fatalf("at m=2e6 the closed form should be within 5%% of Che, got %.4f", large)
	}
}

// TestLRUAsymptoticPowerLawScaling: M(x) ~ x^(1-alpha), so doubling the
// cache multiplies the miss ratio by exactly 2^(1-alpha).
func TestLRUAsymptoticPowerLawScaling(t *testing.T) {
	alpha, m := 1.5, 1000000
	r := LRUZipfMissAsymptotic(alpha, m, 4000) / LRUZipfMissAsymptotic(alpha, m, 2000)
	if want := math.Pow(2, 1-alpha); math.Abs(r-want) > 1e-12 {
		t.Errorf("scaling ratio %.15f, want %.15f", r, want)
	}
}

func TestLRUAsymptoticDomain(t *testing.T) {
	if !math.IsNaN(LRUZipfMissAsymptotic(1.0, 1000, 10)) {
		t.Error("alpha <= 1 must return NaN (theorem requires alpha > 1)")
	}
	if !math.IsNaN(LRUZipfMissAsymptotic(1.5, 0, 10)) {
		t.Error("empty catalog must return NaN")
	}
	if got := LRUZipfMissAsymptotic(1.5, 100, 0.0001); got > 1 {
		t.Errorf("miss ratio must clamp to 1, got %v", got)
	}
	got := LRUZipfMissAsymptotic(1.5, 200000, 2000)
	if got <= 0 || got >= 1 {
		t.Errorf("miss ratio out of (0,1): %v", got)
	}
	if got := LRUZipfMissChe(1.5, 100, 200); got != 0 {
		t.Errorf("cache larger than catalog must miss nothing, got %v", got)
	}
	if !math.IsNaN(LRUZipfMissChe(1.5, 100, 0)) {
		t.Error("zero cache must return NaN")
	}
}
