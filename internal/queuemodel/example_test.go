package queuemodel_test

import (
	"fmt"

	"repro/internal/queuemodel"
)

// Evaluate the paper's model at one operating point: a 16-node cluster
// serving 8 KB files with an 80% single-node hit rate.
func ExampleParams_Conscious() {
	p := queuemodel.DefaultParams()
	p.AvgFileKB = 8

	oblivious := p.Oblivious(0.8)
	conscious := p.Conscious(0.8)
	fmt.Printf("oblivious: %.0f req/s (%s-bound)\n",
		oblivious.RequestsPerSec, oblivious.Bottleneck)
	fmt.Printf("conscious: %.0f req/s (%s-bound)\n",
		conscious.RequestsPerSec, conscious.Bottleneck)
	fmt.Printf("locality gain: %.1fx\n",
		conscious.RequestsPerSec/oblivious.RequestsPerSec)
	// Output:
	// oblivious: 2778 req/s (disk-bound)
	// conscious: 15699 req/s (cpu-bound)
	// locality gain: 5.7x
}

// The hit-rate algebra of Section 3.1: how much hit rate the cluster-wide
// cache buys over a single node's, and what replication costs.
func ExampleParams_HitRates() {
	p := queuemodel.DefaultParams()
	p.AvgFileKB = 8
	p.Replication = 0.15

	hlc, h := p.HitRates(0.7)
	fmt.Printf("Hlo=0.70 -> Hlc=%.2f, replicated-file hit h=%.2f, forwarded Q=%.2f\n",
		hlc, h, p.ForwardFraction(h))
	// Output:
	// Hlo=0.70 -> Hlc=0.88, replicated-file hit h=0.57, forwarded Q=0.40
}
