package queuemodel

import (
	"fmt"
	"math"
)

// Center names the service centers of the queuing network (Figure 2).
type Center int

// The service centers of the model.
const (
	Router Center = iota
	NIIn
	CPU
	Disk
	NIOut
	numCenters
)

var centerNames = [...]string{"router", "ni-in", "cpu", "disk", "ni-out"}

// String returns the center's name.
func (c Center) String() string {
	if c < 0 || int(c) >= len(centerNames) {
		return fmt.Sprintf("center(%d)", int(c))
	}
	return centerNames[c]
}

// Demands holds the per-request service demand (seconds of service per
// request) placed on each center. Node-local centers are per node, i.e.
// they see 1/N of the request stream.
type Demands struct {
	PerRequest [numCenters]float64
}

// demands computes per-request service demands for a server with cache hit
// rate hit and forwarded fraction q.
func (p Params) demands(hit, q float64) Demands {
	s := p.AvgFileKB
	var d Demands
	// The router moves the inbound request and the outbound reply.
	d.PerRequest[Router] = p.RouterTime(p.ReqKB + s)
	// The initial node receives the request; a forwarded request is also
	// received by the service node's NI.
	d.PerRequest[NIIn] = (1 + q) * p.NIInTime()
	// CPU: parse at the initial node, forwarding for a q fraction, and
	// reply transmit processing at the service node.
	d.PerRequest[CPU] = p.ParseTime() + q*p.ForwardTime() + p.ReplyTime(s)
	// Disk: only on misses.
	d.PerRequest[Disk] = (1 - hit) * p.DiskTime(s)
	// NI out: the reply, plus the hand-off message for forwarded requests.
	d.PerRequest[NIOut] = p.NIOutTime(s) + q*p.NIOutTime(p.ReqKB)
	return d
}

// Throughput is the result of a bound computation.
type Throughput struct {
	RequestsPerSec float64
	Bottleneck     Center
	Demands        Demands

	Hit     float64 // cache hit rate used
	Forward float64 // forwarded fraction used
}

// maxThroughput computes the saturation throughput: the request rate at
// which the most-utilized center reaches utilization 1. The router is a
// single shared center; the others are replicated per node.
func (p Params) maxThroughput(hit, q float64) Throughput {
	d := p.demands(hit, q)
	best := math.Inf(1)
	var bottleneck Center
	for c := Center(0); c < numCenters; c++ {
		demand := d.PerRequest[c]
		if demand <= 0 {
			continue
		}
		capacity := 1 / demand
		if c != Router {
			capacity *= float64(p.Nodes)
		}
		if capacity < best {
			best = capacity
			bottleneck = c
		}
	}
	return Throughput{
		RequestsPerSec: best,
		Bottleneck:     bottleneck,
		Demands:        d,
		Hit:            hit,
		Forward:        q,
	}
}

// Bound returns the saturation throughput for an explicitly given cache
// hit rate and forwarded fraction, bypassing the Zipf hit-rate algebra.
// Use it when hit rates are measured on a concrete workload rather than
// derived from z(n, F).
func (p Params) Bound(hit, q float64) Throughput {
	return p.maxThroughput(hit, q)
}

// Oblivious returns the throughput bound of the traditional,
// locality-oblivious server at the given locality-oblivious hit rate: its
// cache is effectively C bytes (every node caches the same popular files)
// and it never forwards.
func (p Params) Oblivious(hlo float64) Throughput {
	return p.maxThroughput(hlo, 0)
}

// Conscious returns the throughput bound of a locality-conscious server at
// the given locality-oblivious hit rate. Its hit rate is lifted to Hlc via
// the catalog-size inversion of Section 3.1, and it forwards a
// Q = (N-1)(1-h)/N fraction of requests.
func (p Params) Conscious(hlo float64) Throughput {
	hlc, h := p.HitRates(hlo)
	return p.maxThroughput(hlc, p.ForwardFraction(h))
}

// ConsciousForCatalog returns the locality-conscious bound for a concrete
// catalog of files (the per-trace "model" curves of Figures 7-10).
func (p Params) ConsciousForCatalog(files int64) Throughput {
	hlc, h := p.hitRatesForCatalog(files)
	return p.maxThroughput(hlc, p.ForwardFraction(h))
}

// ObliviousForCatalog returns the locality-oblivious bound for a concrete
// catalog of files.
func (p Params) ObliviousForCatalog(files int64) Throughput {
	hlo, _, _ := p.HitRatesForCatalog(files)
	return p.maxThroughput(hlo, 0)
}

// Utilizations returns the per-center utilization at offered load lambda
// (requests/s) for the given hit rate and forwarded fraction. Values above
// 1 mean the center is beyond saturation at that load.
func (p Params) Utilizations(lambda, hit, q float64) map[Center]float64 {
	d := p.demands(hit, q)
	out := make(map[Center]float64, int(numCenters))
	for c := Center(0); c < numCenters; c++ {
		demand := d.PerRequest[c]
		if demand <= 0 {
			out[c] = 0
			continue
		}
		rate := lambda
		if c != Router {
			rate /= float64(p.Nodes)
		}
		out[c] = rate * demand
	}
	return out
}

// Latency returns the mean request residence time at offered load lambda
// (requests/s), treating every center as M/M/1 and summing residence times.
// It returns +Inf at or beyond saturation. The paper focuses on throughput;
// latency is provided for completeness and for sanity checks.
func (p Params) Latency(lambda, hit, q float64) float64 {
	if lambda <= 0 {
		return 0
	}
	d := p.demands(hit, q)
	var w float64
	for c := Center(0); c < numCenters; c++ {
		demand := d.PerRequest[c]
		if demand <= 0 {
			continue
		}
		rate := lambda
		if c != Router {
			rate /= float64(p.Nodes)
		}
		// Residence time of an M/M/1 with utilization rho = rate*demand:
		// demand/(1-rho).
		rho := rate * demand
		if rho >= 1 {
			return math.Inf(1)
		}
		w += demand / (1 - rho)
	}
	return w
}
