package queuemodel

import (
	"fmt"
	"io"
	"math"
)

// Surface is a throughput (or ratio) grid over the (Hlo, S) parameter plane
// used by Figures 3-6: rows are locality-oblivious hit rates, columns are
// average file sizes in KB.
type Surface struct {
	Name     string
	HitRates []float64   // row axis
	SizesKB  []float64   // column axis
	Values   [][]float64 // Values[i][j] at (HitRates[i], SizesKB[j])
}

// DefaultGrid returns the parameter grid of the paper's surface plots: hit
// rates 0 to 1 and average file sizes 4 KB to 128 KB.
func DefaultGrid() (hits, sizes []float64) {
	for h := 0.0; h <= 1.0001; h += 0.05 {
		hits = append(hits, math.Min(h, 1))
	}
	for s := 4.0; s <= 128.0001; s += 4 {
		sizes = append(sizes, s)
	}
	return hits, sizes
}

// evalSurface fills a grid by evaluating fn at every (hit, size) point.
func evalSurface(name string, p Params, hits, sizes []float64, fn func(Params, float64) float64) Surface {
	values := make([][]float64, len(hits))
	for i, h := range hits {
		row := make([]float64, len(sizes))
		for j, s := range sizes {
			q := p
			q.AvgFileKB = s
			row[j] = fn(q, h)
		}
		values[i] = row
	}
	return Surface{Name: name, HitRates: hits, SizesKB: sizes, Values: values}
}

// ObliviousSurface reproduces Figure 3: throughput of a locality-oblivious
// server over the (Hlo, S) plane.
func ObliviousSurface(p Params, hits, sizes []float64) Surface {
	return evalSurface("figure3-oblivious", p, hits, sizes,
		func(q Params, h float64) float64 { return q.Oblivious(h).RequestsPerSec })
}

// ConsciousSurface reproduces Figure 4: throughput of a locality-conscious
// server over the same plane.
func ConsciousSurface(p Params, hits, sizes []float64) Surface {
	return evalSurface("figure4-conscious", p, hits, sizes,
		func(q Params, h float64) float64 { return q.Conscious(h).RequestsPerSec })
}

// IncreaseSurface reproduces Figure 5: the throughput of the
// locality-conscious server divided by that of the locality-oblivious one.
func IncreaseSurface(p Params, hits, sizes []float64) Surface {
	return evalSurface("figure5-increase", p, hits, sizes, func(q Params, h float64) float64 {
		return q.Conscious(h).RequestsPerSec / q.Oblivious(h).RequestsPerSec
	})
}

// SideView reproduces Figure 6: for each hit rate, the range of the
// increase across file sizes collapses to its maximum (the silhouette of
// the Figure 5 surface seen from the size axis).
func (s Surface) SideView() []float64 {
	out := make([]float64, len(s.HitRates))
	for i, row := range s.Values {
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		out[i] = max
	}
	return out
}

// Max returns the largest value on the surface and its coordinates.
func (s Surface) Max() (v, hit, size float64) {
	v = math.Inf(-1)
	for i, row := range s.Values {
		for j, x := range row {
			if x > v {
				v, hit, size = x, s.HitRates[i], s.SizesKB[j]
			}
		}
	}
	return v, hit, size
}

// At returns the value at the grid point nearest to (hit, size).
func (s Surface) At(hit, size float64) float64 {
	return s.Values[nearest(s.HitRates, hit)][nearest(s.SizesKB, size)]
}

func nearest(xs []float64, x float64) int {
	best, bd := 0, math.Inf(1)
	for i, v := range xs {
		if d := math.Abs(v - x); d < bd {
			best, bd = i, d
		}
	}
	return best
}

// WriteCSV renders the surface as a CSV matrix with axis headers, the
// format consumed by external plotting tools.
func (s Surface) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "hit_rate\\size_kb"); err != nil {
		return err
	}
	for _, sz := range s.SizesKB {
		if _, err := fmt.Fprintf(w, ",%g", sz); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, h := range s.HitRates {
		if _, err := fmt.Fprintf(w, "%g", h); err != nil {
			return err
		}
		for _, v := range s.Values[i] {
			if _, err := fmt.Fprintf(w, ",%.2f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
