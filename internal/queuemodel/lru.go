package queuemodel

import "math"

// LRU miss-ratio asymptotics for the consistent-hashing conformance test.
//
// Ji, Quan, and Tan (Asymptotic Miss Ratio of LRU Caching with Consistent
// Hashing, arXiv:1801.02436) prove that when requests over a Zipf(alpha)
// catalog are hash-partitioned across n LRU servers, the aggregate miss
// ratio converges to that of ONE pooled LRU holding the combined capacity —
// splitting both the key space and the cache n ways costs nothing,
// asymptotically, because each shard sees a thinned copy of the same
// power-law. That single-cache limit is the classical Che/characteristic-
// time result, which for alpha > 1 and cache size x with 1 << x << m has
// the closed form
//
//	M(x) ~ (c/alpha) * Gamma(1 - 1/alpha)^alpha * x^(1-alpha)
//
// where c = 1/H_m(alpha) is the Zipf normalizer (p_i = c * i^-alpha,
// H_m(alpha) = sum_{i<=m} i^-alpha): substituting u = c*T/t^alpha in the
// miss integral M = integral c t^-alpha exp(-c T t^-alpha) dt gives
// M = (1/alpha) c^{1/alpha} T^{1/alpha - 1} Gamma(1 - 1/alpha), and the
// cache-occupancy constraint x = integral (1 - exp(-c T t^-alpha)) dt =
// (c T)^{1/alpha} Gamma(1 - 1/alpha) eliminates the characteristic time T.
//
// The simulator's chash policy is exactly the theorem's setting (hash
// partition, per-node LRU), so the conformance test pins the simulated miss
// ratio of an n-node chash cluster — and of the pooled single node — to
// this curve at small cache/catalog ratios.

// LRUZipfMissAsymptotic returns the asymptotic miss ratio of LRU caching
// over an independent-reference Zipf(alpha) stream: catalog of m files,
// total cache capacity of x files. Requires alpha > 1; accuracy needs
// 1 << x << m (the small cache/catalog regime of the theorem). By
// Ji/Quan/Tan the same value is the aggregate miss ratio of that capacity
// split evenly across any number of consistent-hash partitions.
func LRUZipfMissAsymptotic(alpha float64, m int, x float64) float64 {
	if alpha <= 1 || m < 1 || x <= 0 {
		return math.NaN()
	}
	c := 1 / zipfNorm(alpha, m)
	g := math.Gamma(1 - 1/alpha)
	miss := c / alpha * math.Pow(g, alpha) * math.Pow(x, 1-alpha)
	return math.Min(miss, 1)
}

// LRUZipfMissChe returns the miss ratio of the same cache under the full
// finite-catalog Che approximation: the characteristic time T solves
// sum_i (1 - exp(-p_i T)) = x and the miss ratio is sum_i p_i exp(-p_i T).
// This keeps the catalog-truncation mass the m -> infinity closed form
// drops (a tail of weight ~ c*m^(1-alpha)/(alpha-1) that a finite
// simulation still misses on), so it is the tighter reference for
// simulated runs; LRUZipfMissAsymptotic is its x -> infinity, x/m -> 0
// limit. O(m log(range)) time.
func LRUZipfMissChe(alpha float64, m int, x float64) float64 {
	if alpha <= 0 || m < 1 || x <= 0 {
		return math.NaN()
	}
	if x >= float64(m) {
		return 0 // everything fits
	}
	c := 1 / zipfNorm(alpha, m)
	occupancy := func(T float64) float64 {
		s := 0.0
		for i := m; i >= 1; i-- {
			s += 1 - math.Exp(-c*math.Pow(float64(i), -alpha)*T)
		}
		return s
	}
	// occupancy(T) <= sum p_i*T = T, so T >= x always; start there.
	lo, hi := x, 2*x
	for occupancy(hi) < x {
		lo = hi
		hi *= 2
	}
	for k := 0; k < 40; k++ {
		mid := (lo + hi) / 2
		if occupancy(mid) < x {
			lo = mid
		} else {
			hi = mid
		}
	}
	T := (lo + hi) / 2
	miss := 0.0
	for i := m; i >= 1; i-- {
		p := c * math.Pow(float64(i), -alpha)
		miss += p * math.Exp(-p*T)
	}
	return miss
}

// zipfNorm returns H_m(alpha) = sum_{i=1}^{m} i^-alpha, summed smallest
// terms first so the 10^7-file catalogs lose nothing to rounding.
func zipfNorm(alpha float64, m int) float64 {
	sum := 0.0
	for i := m; i >= 1; i-- {
		sum += math.Pow(float64(i), -alpha)
	}
	return sum
}
