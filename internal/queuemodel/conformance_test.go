package queuemodel

import (
	"fmt"
	"testing"
)

// Paper-conformance suite: the qualitative claims of Section 3 that the
// analytic model must reproduce, checked over grids rather than single
// points.
//
// The claims hold in the regime the paper evaluates — the locality-oblivious
// server limited by its disks (small files relative to memory, Hlo < 1).
// Outside it they genuinely fail, not by implementation error: when every
// node already serves from memory, forwarding is pure overhead, so a
// locality-conscious server is slightly *slower* (the paper's own Figure 4
// shows the surfaces converging as Hlo -> 1). The grids below therefore pin
// the disk-bound region and assert the bottleneck to prove they stay in it.

// relTol absorbs the z(n, F) catalog inversion: HitRates solves F from Hlo
// numerically, so Hlc is exact only up to the solver's tolerance.
const relTol = 1e-4

// TestConsciousDominatesOblivious: at every cluster size, a
// locality-conscious server's throughput bound is at least the oblivious
// server's, and strictly better once the cluster is large enough for the
// aggregated cache to matter (Section 3.2's central claim).
func TestConsciousDominatesOblivious(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		for _, hlo := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			for _, s := range []float64{2, 4, 8} {
				t.Run(fmt.Sprintf("N=%d/Hlo=%v/S=%v", n, hlo, s), func(t *testing.T) {
					p := DefaultParams()
					p.Nodes = n
					p.AvgFileKB = s
					ob := p.Oblivious(hlo)
					if ob.Bottleneck != Disk {
						t.Fatalf("grid point not disk-bound (bottleneck %v): the claim is only made there", ob.Bottleneck)
					}
					co := p.Conscious(hlo)
					if co.RequestsPerSec < ob.RequestsPerSec*(1-relTol) {
						t.Errorf("conscious %v < oblivious %v", co.RequestsPerSec, ob.RequestsPerSec)
					}
					// With >= 4 nodes the conscious cache is >= 4x the
					// oblivious one; at moderate-to-high hit rates that must
					// buy a real margin, not just a tie (below Hlo ~ 0.5 the
					// Zipf tail is so heavy that even 4x the cache lifts the
					// hit rate only a few points).
					if n >= 4 && hlo >= 0.5 && hlo <= 0.8 {
						if co.RequestsPerSec < ob.RequestsPerSec*1.1 {
							t.Errorf("conscious %v not clearly above oblivious %v at N=%d",
								co.RequestsPerSec, ob.RequestsPerSec, n)
						}
					}
				})
			}
		}
	}
}

// TestConsciousAtOneNodeIsOblivious: with a single node there is nothing to
// aggregate and nothing to forward, so the two bounds coincide.
func TestConsciousAtOneNodeIsOblivious(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 1
	p.AvgFileKB = 8
	// Hit rates below ~0.3 need a catalog beyond the Zipf solver's 2^50
	// search bound (alpha=1 hit rates fall off logarithmically in catalog
	// size), so the solved Hlc saturates above Hlo there; the identity is
	// checked on the reachable part of the range.
	for _, hlo := range []float64{0.4, 0.6, 0.8} {
		ob, co := p.Oblivious(hlo), p.Conscious(hlo)
		if diff := co.RequestsPerSec/ob.RequestsPerSec - 1; diff > relTol || diff < -relTol {
			t.Errorf("Hlo=%v: N=1 conscious %v != oblivious %v", hlo, co.RequestsPerSec, ob.RequestsPerSec)
		}
		if co.Forward != 0 {
			t.Errorf("Hlo=%v: N=1 forwards a %v fraction", hlo, co.Forward)
		}
	}
}

// TestThroughputMonotoneInMemory: for a fixed catalog, growing each node's
// memory never lowers either bound (more cache -> no fewer hits). The
// conscious bound plateaus once the whole catalog is resident and the CPU
// becomes the bottleneck; it must not dip.
func TestThroughputMonotoneInMemory(t *testing.T) {
	const files = 200000
	p := DefaultParams()
	p.AvgFileKB = 8
	prevC, prevO := 0.0, 0.0
	for _, mb := range []int64{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		p.CacheBytes = mb << 20
		c := p.ConsciousForCatalog(files).RequestsPerSec
		o := p.ObliviousForCatalog(files).RequestsPerSec
		if c < prevC*(1-1e-12) {
			t.Errorf("mem=%dMB: conscious bound fell %v -> %v", mb, prevC, c)
		}
		if o < prevO*(1-1e-12) {
			t.Errorf("mem=%dMB: oblivious bound fell %v -> %v", mb, prevO, o)
		}
		if c < o*(1-relTol) && p.Nodes > 1 && mb <= 512 {
			t.Errorf("mem=%dMB: conscious %v below oblivious %v while catalog exceeds one memory", mb, c, o)
		}
		prevC, prevO = c, o
	}
}

// TestReplicationNeverBeatsUnreplicated: in the disk-bound regime the paper
// studies, spending an R fraction of each memory on replicas shrinks the
// effective cache and can only lower the bound; R=0 is optimal and the
// bound is monotone non-increasing in R (Figure 5's shape).
//
// The disk-bound qualifier is load-bearing: past Hlo ~ 0.8 the conscious
// server turns CPU-bound, and there a little replication *raises* the bound
// (a higher replicated hit rate h means less forwarding work on the
// bottleneck CPU) — so the grid stops at 0.7 and the bottleneck is
// asserted.
func TestReplicationNeverBeatsUnreplicated(t *testing.T) {
	for _, hlo := range []float64{0.3, 0.5, 0.7} {
		p := DefaultParams()
		p.AvgFileKB = 8
		p.Replication = 0
		base := p.Conscious(hlo)
		if base.Bottleneck != Disk {
			t.Fatalf("Hlo=%v: R=0 point not disk-bound (%v)", hlo, base.Bottleneck)
		}
		prev := base.RequestsPerSec
		for _, r := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1} {
			p.Replication = r
			tp := p.Conscious(hlo).RequestsPerSec
			if tp > base.RequestsPerSec*(1+relTol) {
				t.Errorf("Hlo=%v R=%v: %v exceeds the R=0 bound %v", hlo, r, tp, base.RequestsPerSec)
			}
			if tp > prev*(1+relTol) {
				t.Errorf("Hlo=%v R=%v: bound rose %v -> %v (not monotone in R)", hlo, r, prev, tp)
			}
			prev = tp
		}
	}
}

// TestFullReplicationIsOblivious: R=1 makes every cache hold the same files
// — exactly the oblivious server, minus its freedom from forwarding
// bookkeeping. Hit rates must match; throughput must not exceed oblivious.
func TestFullReplicationIsOblivious(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 8
	p.Replication = 1
	for _, hlo := range []float64{0.3, 0.6, 0.9} {
		hlc, h := p.HitRates(hlo)
		if diff := hlc - hlo; diff > relTol || diff < -relTol {
			t.Errorf("Hlo=%v: R=1 Hlc=%v, want Hlo", hlo, hlc)
		}
		if diff := h - hlo; diff > relTol || diff < -relTol {
			t.Errorf("Hlo=%v: R=1 h=%v, want Hlo", hlo, h)
		}
		co := p.Conscious(hlo)
		ob := p.Oblivious(hlo)
		if co.RequestsPerSec > ob.RequestsPerSec*(1+relTol) {
			t.Errorf("Hlo=%v: R=1 conscious %v exceeds oblivious %v", hlo, co.RequestsPerSec, ob.RequestsPerSec)
		}
	}
}
