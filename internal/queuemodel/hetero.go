package queuemodel

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/zipf"
)

// Heterogeneous extension of the Section 3 model: per-node hardware
// profiles (cluster.Profile) scale each node's service demands, the
// cluster-wide saturation bound becomes the sum of per-node capacities
// capped by the shared router, and the effective cache algebra generalizes
// N*(1-R)*C + R*C to unequal memories. The extension is conformance-tested
// against the product-form queueing model of van der Boor & Comte (see
// productform.go): at saturation the product-form cluster throughput
// converges to the heterogeneous bound.

// NodeBound is one node's saturation capacity.
type NodeBound struct {
	Node           int
	RequestsPerSec float64
	Bottleneck     Center
	Demands        Demands
}

// HeteroThroughput is the result of a heterogeneous bound computation.
type HeteroThroughput struct {
	RequestsPerSec float64
	// Bottleneck is Router when the shared router binds; otherwise the
	// bottleneck center of the slowest node.
	Bottleneck Center
	// BottleneckNode is the slowest node, or -1 when the router binds.
	BottleneckNode int
	PerNode        []NodeBound

	Hit     float64 // cache hit rate used
	Forward float64 // forwarded fraction used
}

// niKBps returns a profile's effective NI per-kilobyte rate: the Table 1
// NI rate capped by the node's line rate. Rates above the baseline do not
// accelerate past the Table 1 constants, mirroring the simulator.
func (p Params) niKBps(prof cluster.Profile) float64 {
	rate := p.NIOutKBps
	if prof.LinkKBps > 0 && prof.LinkKBps < rate {
		rate = prof.LinkKBps
	}
	return rate
}

// nodeDemands scales the homogeneous per-request demands by one node's
// profile: CPU and disk demands divide by the node's relative speeds, and
// the size-dependent part of the NI-out demand is serialized at the node's
// line rate. The per-request NI-in constant and the shared router are
// unscaled (the router is not node hardware).
func (p Params) nodeDemands(prof cluster.Profile, hit, q float64) Demands {
	prof = prof.Normalized()
	s := p.AvgFileKB
	ni := p.niKBps(prof)
	niOut := func(sKB float64) float64 { return p.NIOutFixed + sKB/ni }
	var d Demands
	d.PerRequest[Router] = p.RouterTime(p.ReqKB + s)
	d.PerRequest[NIIn] = (1 + q) * p.NIInTime()
	d.PerRequest[CPU] = (p.ParseTime() + q*p.ForwardTime() + p.ReplyTime(s)) / prof.CPUSpeed
	d.PerRequest[Disk] = (1 - hit) * p.DiskTime(s) / prof.DiskSpeed
	d.PerRequest[NIOut] = niOut(s) + q*niOut(p.ReqKB)
	return d
}

// NodeCapacities returns each node's saturation capacity — the request
// rate at which its most-utilized local center reaches utilization 1 —
// for the given hit rate and forwarded fraction.
func (p Params) NodeCapacities(profiles []cluster.Profile, hit, q float64) []NodeBound {
	out := make([]NodeBound, len(profiles))
	for i, prof := range profiles {
		d := p.nodeDemands(prof, hit, q)
		best := math.Inf(1)
		var bottleneck Center
		for c := Center(0); c < numCenters; c++ {
			if c == Router {
				continue // shared, handled at the cluster level
			}
			demand := d.PerRequest[c]
			if demand <= 0 {
				continue
			}
			if capacity := 1 / demand; capacity < best {
				best = capacity
				bottleneck = c
			}
		}
		out[i] = NodeBound{Node: i, RequestsPerSec: best, Bottleneck: bottleneck, Demands: d}
	}
	return out
}

// HeterogeneousBound computes the saturation throughput of a cluster whose
// nodes have the given hardware profiles, assuming a distribution policy
// that can load every node to its own capacity (the heterogeneous analogue
// of the model's perfect-balance assumption): the sum of per-node
// capacities, capped by the shared router. With uniform profiles it
// reduces to Bound.
func (p Params) HeterogeneousBound(profiles []cluster.Profile, hit, q float64) HeteroThroughput {
	per := p.NodeCapacities(profiles, hit, q)
	t := HeteroThroughput{PerNode: per, Hit: hit, Forward: q, BottleneckNode: -1}
	var total float64
	slowest := -1
	for i, nb := range per {
		total += nb.RequestsPerSec
		if slowest < 0 || nb.RequestsPerSec < per[slowest].RequestsPerSec {
			slowest = i
		}
	}
	t.RequestsPerSec = total
	if slowest >= 0 {
		t.Bottleneck = per[slowest].Bottleneck
		t.BottleneckNode = slowest
	}
	if rd := p.RouterTime(p.ReqKB + p.AvgFileKB); rd > 0 {
		if routerCap := 1 / rd; routerCap < total {
			t.RequestsPerSec = routerCap
			t.Bottleneck = Router
			t.BottleneckNode = -1
		}
	}
	return t
}

// heteroCaches resolves per-node cache sizes (profile CacheBytes, with the
// Params cache as the default) and returns their sum, minimum, and count.
func (p Params) heteroCaches(profiles []cluster.Profile) (total, min float64) {
	min = math.Inf(1)
	for _, prof := range profiles {
		c := float64(p.CacheBytes)
		if prof.CacheBytes > 0 {
			c = float64(prof.CacheBytes)
		}
		total += c
		if c < min {
			min = c
		}
	}
	return total, min
}

// HeterogeneousConsciousForCatalog returns the locality-conscious
// heterogeneous bound for a concrete catalog. The effective cache algebra
// generalizes Section 3.1 to unequal memories: each node devotes an R
// fraction of its own memory to the replicated set, which must fit the
// smallest replicated partition, so
//
//	Clc = sum_i (1-R)*C_i + R*min_i C_i,   h = z(R*min_i C_i / S, f)
//
// (with uniform memories this is exactly N*(1-R)*C + R*C and h = z(RC/S, f)).
func (p Params) HeterogeneousConsciousForCatalog(profiles []cluster.Profile, files int64) HeteroThroughput {
	total, minC := p.heteroCaches(profiles)
	clc := (1-p.Replication)*total + p.Replication*minC
	hlc := zipf.Z(p.Alpha, p.cachedFiles(clc), files)
	h := zipf.Z(p.Alpha, p.cachedFiles(p.Replication*minC), files)
	q := float64(len(profiles)-1) * (1 - h) / float64(len(profiles))
	return p.HeterogeneousBound(profiles, hlc, q)
}
