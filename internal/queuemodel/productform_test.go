package queuemodel

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// solveCTMC computes the stationary distribution of a generator matrix by
// Gaussian elimination on Q^T pi = 0 with the last balance equation
// replaced by sum(pi) = 1.
func solveCTMC(t *testing.T, q [][]float64) []float64 {
	t.Helper()
	n := len(q)
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			a[i][j] = q[j][i] // transpose: columns of Q are equations
		}
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	a[n-1][n] = 1
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if a[col][col] == 0 {
			t.Fatalf("singular CTMC system at column %d", col)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = a[i][n] / a[i][i]
	}
	return pi
}

// TestProductFormMatchesBruteForceCTMC checks the closed-form solver
// against a direct stationary solve of the token chain's generator for a
// small asymmetric cluster: 3 servers with rates (1, 2, 0.5), token counts
// (3, 2, 2), lambda 1.7 — 36 states. Every reported metric must agree to
// near machine precision.
func TestProductFormMatchesBruteForceCTMC(t *testing.T) {
	c := TokenCluster{Lambda: 1.7, Rates: []float64{1, 2, 0.5}, Tokens: []int{3, 2, 2}}
	met, err := c.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// Enumerate states x = (x0, x1, x2) with x_i <= l_i in mixed radix.
	dims := []int{c.Tokens[0] + 1, c.Tokens[1] + 1, c.Tokens[2] + 1}
	nStates := dims[0] * dims[1] * dims[2]
	idx := func(x []int) int { return (x[0]*dims[1]+x[1])*dims[2] + x[2] }
	state := func(s int) []int {
		return []int{s / (dims[1] * dims[2]), (s / dims[2]) % dims[1], s % dims[2]}
	}
	total := c.Tokens[0] + c.Tokens[1] + c.Tokens[2]

	q := make([][]float64, nStates)
	for s := range q {
		q[s] = make([]float64, nStates)
	}
	for s := 0; s < nStates; s++ {
		x := state(s)
		jobs := x[0] + x[1] + x[2]
		free := total - jobs
		for i := 0; i < 3; i++ {
			if avail := c.Tokens[i] - x[i]; avail > 0 && free > 0 {
				// Arrival seizes one of server i's tokens with probability
				// avail/free.
				x[i]++
				q[s][idx(x)] += c.Lambda * float64(avail) / float64(free)
				x[i]--
			}
			if x[i] > 0 {
				x[i]--
				q[s][idx(x)] += c.Rates[i]
				x[i]++
			}
		}
		for d := 0; d < nStates; d++ {
			if d != s {
				q[s][s] -= q[s][d]
			}
		}
	}
	pi := solveCTMC(t, q)

	var blocking, meanJobs float64
	busy := make([]float64, 3)
	for s := 0; s < nStates; s++ {
		x := state(s)
		jobs := x[0] + x[1] + x[2]
		if jobs == total {
			blocking += pi[s]
		}
		meanJobs += float64(jobs) * pi[s]
		for i := 0; i < 3; i++ {
			if x[i] > 0 {
				busy[i] += pi[s]
			}
		}
	}

	const tol = 1e-10
	if math.Abs(met.Blocking-blocking) > tol {
		t.Errorf("Blocking = %.15f, CTMC %.15f", met.Blocking, blocking)
	}
	if math.Abs(met.MeanJobs-meanJobs) > tol {
		t.Errorf("MeanJobs = %.15f, CTMC %.15f", met.MeanJobs, meanJobs)
	}
	for i := 0; i < 3; i++ {
		if math.Abs(met.PerServerBusy[i]-busy[i]) > tol {
			t.Errorf("PerServerBusy[%d] = %.15f, CTMC %.15f", i, met.PerServerBusy[i], busy[i])
		}
	}
	if thr := c.Lambda * (1 - blocking); math.Abs(met.Throughput-thr) > tol {
		t.Errorf("Throughput = %.15f, CTMC %.15f", met.Throughput, thr)
	}
}

// TestProductFormFlowConservation checks the solver's internal
// consistency: accepted flow lambda*(1-B) must equal the sum of
// per-server completion rates mu_i*P(busy_i).
func TestProductFormFlowConservation(t *testing.T) {
	c := TokenCluster{
		Lambda: 37.5,
		Rates:  []float64{4, 9, 2.5, 13},
		Tokens: []int{8, 12, 5, 20},
	}
	met, err := c.Solve()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, thr := range met.PerServerThroughput {
		sum += thr
	}
	if rel := math.Abs(sum-met.Throughput) / met.Throughput; rel > 1e-9 {
		t.Errorf("per-server throughput sums to %v, accepted flow %v (rel %v)", sum, met.Throughput, rel)
	}
	if met.Blocking <= 0 || met.Blocking >= 1 {
		t.Errorf("Blocking = %v, want in (0,1) for an overloaded cluster", met.Blocking)
	}
}

// TestHeterogeneousBoundConformsToProductForm is the acceptance check for
// the heterogeneous solver: drive the van der Boor & Comte token model
// with the profile-derived per-node capacities far into overload, and its
// exact product-form throughput must converge to the heterogeneous
// saturation bound (sum of per-node capacities) within 1%.
func TestHeterogeneousBoundConformsToProductForm(t *testing.T) {
	p := DefaultParams()
	p.AvgFileKB = 6
	p.RouterKBps = 1e12 // the token model has no router; uncap it
	profiles := []cluster.Profile{
		{CPUSpeed: 2, DiskSpeed: 4},
		{CPUSpeed: 2, DiskSpeed: 4},
		{CPUSpeed: 1, DiskSpeed: 1},
		{CPUSpeed: 1, DiskSpeed: 1},
		{CPUSpeed: 0.5, DiskSpeed: 0.5, LinkKBps: 64000},
		{CPUSpeed: 1.5, DiskSpeed: 1, CacheBytes: 64 << 20},
	}
	p.Nodes = len(profiles)
	for _, hit := range []float64{0.5, 0.9} {
		bound := p.HeterogeneousBound(profiles, hit, 0.2)
		met, err := p.SaturatedTokenThroughput(bound.PerNode, 80, 20)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(met.Throughput-bound.RequestsPerSec) / bound.RequestsPerSec
		if rel > 0.01 {
			t.Errorf("hit %v: product-form throughput %v vs bound %v (rel %v)",
				hit, met.Throughput, bound.RequestsPerSec, rel)
		}
		// Deep in overload every server must be essentially saturated.
		for i, busy := range met.PerServerBusy {
			if busy < 0.98 {
				t.Errorf("hit %v: server %d busy %v, want ~1 at 20x overload", hit, i, busy)
			}
		}
	}
}

// TestProductFormValidation exercises the error paths.
func TestProductFormValidation(t *testing.T) {
	bad := []TokenCluster{
		{Lambda: 0, Rates: []float64{1}, Tokens: []int{1}},
		{Lambda: 1},
		{Lambda: 1, Rates: []float64{1, 2}, Tokens: []int{1}},
		{Lambda: 1, Rates: []float64{-1}, Tokens: []int{1}},
		{Lambda: 1, Rates: []float64{1}, Tokens: []int{0}},
	}
	for i, c := range bad {
		if _, err := c.Solve(); err == nil {
			t.Errorf("case %d: Solve accepted invalid cluster %+v", i, c)
		}
	}
}
