package queuemodel

import (
	"fmt"
	"math"
)

// Token-based product-form model of a heterogeneous cluster, after van der
// Boor & Comte ("Load balancing in heterogeneous server clusters", arXiv
// 2109.00868): N servers with service rates mu_i hold l_i job slots
// ("tokens") each; jobs arrive Poisson(lambda) and seize one of the
// currently available tokens uniformly at random — the randomized
// token-based assignment a front-end with no load information can
// implement — or are blocked when every token is taken. Server i works off
// its queue at rate mu_i.
//
// The chain is reversible with stationary distribution
//
//	pi(x) ∝ prod_i [(lambda/mu_i)^x_i * l_i!/(l_i-x_i)!] * (L-|x|)!/L!
//
// (L = sum_i l_i), verified by detailed balance: the arrival rate into
// server i from state x is lambda*(l_i-x_i)/(L-|x|), the departure rate is
// mu_i, and pi(x+e_i)/pi(x) matches their ratio. The heterogeneous
// saturation bound (hetero.go) is conformance-tested against this solver:
// as lambda and the token counts grow, the product-form throughput
// converges to sum_i mu_i, the bound's non-router value.

// TokenCluster specifies one product-form model instance.
type TokenCluster struct {
	Lambda float64   // arrival rate (jobs/s)
	Rates  []float64 // mu_i: per-server service rates
	Tokens []int     // l_i: per-server token (slot) counts
}

// Validate reports model errors.
func (c TokenCluster) Validate() error {
	switch {
	case c.Lambda <= 0:
		return fmt.Errorf("queuemodel: token arrival rate must be positive, got %v", c.Lambda)
	case len(c.Rates) == 0:
		return fmt.Errorf("queuemodel: token cluster needs at least one server")
	case len(c.Rates) != len(c.Tokens):
		return fmt.Errorf("queuemodel: %d rates for %d token counts", len(c.Rates), len(c.Tokens))
	}
	for i, mu := range c.Rates {
		if mu <= 0 {
			return fmt.Errorf("queuemodel: server %d has non-positive rate %v", i, mu)
		}
		if c.Tokens[i] < 1 {
			return fmt.Errorf("queuemodel: server %d has %d tokens, need >= 1", i, c.Tokens[i])
		}
	}
	return nil
}

// TokenMetrics are the stationary quantities of a TokenCluster.
type TokenMetrics struct {
	Blocking   float64 // P(arrival finds no token) — by PASTA the loss rate
	Throughput float64 // accepted = completed jobs/s: lambda*(1-Blocking)
	MeanJobs   float64 // E[|x|]

	PerServerBusy       []float64 // P(x_i >= 1): server utilization
	PerServerThroughput []float64 // mu_i * PerServerBusy[i]
}

// Solve computes the stationary metrics exactly from the product form. All
// arithmetic runs in log space: the per-server factors (lambda/mu)^k *
// l!/(l-k)! and the token factor (L-m)!/L! overflow and underflow float64
// long before realistic saturation regimes, but their logs stay small.
// Cost is O(N * L^2) — exact convolution, no truncation.
func (c TokenCluster) Solve() (TokenMetrics, error) {
	if err := c.Validate(); err != nil {
		return TokenMetrics{}, err
	}
	n := len(c.Rates)
	total := 0
	for _, l := range c.Tokens {
		total += l
	}

	// logCoeffs[i][k] = log[(lambda/mu_i)^k * l_i!/(l_i-k)!].
	logCoeffs := make([][]float64, n)
	for i := range logCoeffs {
		l := c.Tokens[i]
		lc := make([]float64, l+1)
		logRho := math.Log(c.Lambda / c.Rates[i])
		for k := 1; k <= l; k++ {
			lc[k] = lc[k-1] + logRho + math.Log(float64(l-k+1))
		}
		logCoeffs[i] = lc
	}

	// logTok[m] = log[(L-m)!/L!] = -sum_{j<m} log(L-j).
	logTok := make([]float64, total+1)
	for m := 1; m <= total; m++ {
		logTok[m] = logTok[m-1] - math.Log(float64(total-m+1))
	}

	// logA[m] = log sum_{|x|=m} prod_i coeff_i(x_i), by convolution.
	logA := []float64{0}
	for _, lc := range logCoeffs {
		logA = logConvolve(logA, lc)
	}
	logTerms := make([]float64, total+1)
	for m := range logTerms {
		logTerms[m] = logA[m] + logTok[m]
	}
	logG := logSumExp(logTerms)

	met := TokenMetrics{
		Blocking:            math.Exp(logTerms[total] - logG),
		PerServerBusy:       make([]float64, n),
		PerServerThroughput: make([]float64, n),
	}
	met.Throughput = c.Lambda * (1 - met.Blocking)

	// E[|x|] = sum_m m * pi(|x|=m), via a shifted log-sum.
	logMean := math.Inf(-1)
	for m := 1; m <= total; m++ {
		logMean = logAdd(logMean, math.Log(float64(m))+logTerms[m])
	}
	met.MeanJobs = math.Exp(logMean - logG)

	// P(x_i = 0): the leave-one-out convolution carries the same token
	// factor (the state still has |x| jobs among L tokens).
	for i := range c.Rates {
		logB := []float64{0}
		for j, lc := range logCoeffs {
			if j != i {
				logB = logConvolve(logB, lc)
			}
		}
		logZero := math.Inf(-1)
		for m := range logB {
			logZero = logAdd(logZero, logB[m]+logTok[m])
		}
		p0 := math.Exp(logZero - logG)
		met.PerServerBusy[i] = 1 - p0
		met.PerServerThroughput[i] = c.Rates[i] * met.PerServerBusy[i]
	}
	return met, nil
}

// logConvolve returns the log-space convolution of two log-coefficient
// vectors: out[m] = log sum_k exp(a[k] + b[m-k]).
func logConvolve(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for m := range out {
		acc := math.Inf(-1)
		lo := m - len(b) + 1
		if lo < 0 {
			lo = 0
		}
		for k := lo; k < len(a) && k <= m; k++ {
			acc = logAdd(acc, a[k]+b[m-k])
		}
		out[m] = acc
	}
	return out
}

// logAdd returns log(exp(a) + exp(b)) without overflow.
func logAdd(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// logSumExp folds logAdd over a slice.
func logSumExp(xs []float64) float64 {
	acc := math.Inf(-1)
	for _, x := range xs {
		acc = logAdd(acc, x)
	}
	return acc
}

// SaturatedTokenThroughput is the conformance bridge between the two
// heterogeneous models: it builds a TokenCluster whose servers are the
// profile-derived per-node capacities (NodeCapacities at the given hit
// rate and forwarded fraction), drives it far into overload, and returns
// its product-form throughput. As tokensPerServer and the overload factor
// grow this converges to HeterogeneousBound's sum-of-capacities value,
// which the conformance tests assert within tolerance.
func (p Params) SaturatedTokenThroughput(bounds []NodeBound, tokensPerServer int, overload float64) (TokenMetrics, error) {
	rates := make([]float64, len(bounds))
	tokens := make([]int, len(bounds))
	var sum float64
	for i, nb := range bounds {
		rates[i] = nb.RequestsPerSec
		tokens[i] = tokensPerServer
		sum += nb.RequestsPerSec
	}
	c := TokenCluster{Lambda: overload * sum, Rates: rates, Tokens: tokens}
	return c.Solve()
}
